module Mem_sim = Mx_mem.Mem_sim
module Mem_arch = Mx_mem.Mem_arch
module Params = Mx_mem.Params
module Channel = Mx_connect.Channel
module Component = Mx_connect.Component
module Conn_arch = Mx_connect.Conn_arch
module Conn_cost = Mx_connect.Conn_cost

let default_sample = (1000, 9000)

type cpu_model = Blocking | Overlap of int

(* A routed leg: which component instance carries a channel and whether
   it is shared (contended). *)
type leg = { comp : Component.t; idx : int; contended : bool }

let route bindings (src : Channel.node) (dst : Channel.node) =
  let probe = { Channel.src; dst; bandwidth = 0.0; txn_bytes = 0.0 } in
  let rec go i = function
    | [] -> None
    | (b : Conn_arch.binding) :: rest ->
      if
        List.exists (Channel.same_endpoints probe)
          b.Conn_arch.cluster.Mx_connect.Cluster.channels
      then
        Some
          {
            comp = b.Conn_arch.component;
            idx = i;
            contended =
              List.length b.Conn_arch.cluster.Mx_connect.Cluster.channels > 1;
          }
      else go (i + 1) rest
  in
  go 0 bindings

let node_of = Serving.node_of
let serving_idx = Serving.index
let module_latency = Serving.module_latency
let module_energy = Serving.module_energy

(* The demand (CPU-blocking) share of an access's off-chip traffic is
   critical-word-first (see {!Serving.critical_bytes}); the simulator
   sizes the LLDMA leg from the observed transfer and falls back to the
   access size when a class has no backing module. *)
let critical_bytes arch serving (o : Mem_sim.outcome) ~size =
  if not o.Mem_sim.dram_critical then 0
  else
    Serving.critical_bytes arch serving ~lldma_bytes:o.Mem_sim.dram_bytes
      ~fallback:size

type bus_stat = {
  component : string;
  carries : string;
  txns : int;
  busy_cycles : int;
  wait_cycles : int;
  utilization : float;
}

(* Does chunk [first, first+len) intersect any "on" window of the
   (on, off) sampling pattern?  Windows repeat with period p = on+off;
   the chunk misses them all only when it sits entirely inside one off
   span. *)
let chunk_has_on_window ~on ~off ~first ~len =
  let p = on + off in
  let r = first mod p in
  r < on || len > p - r

let run_stream_traced ?sample ?(cpu = Blocking) ?(seek = false)
    ~(workload : Mx_trace.Workload.streamed) ~arch ~conn () =
  (match sample with
  | Some (on, off) when on <= 0 || off < 0 ->
    invalid_arg "Cycle_sim.run: bad sampling windows"
  | _ -> ());
  if seek && sample = None then
    invalid_arg "Cycle_sim.run_stream: ~seek requires ~sample";
  let mshrs =
    match cpu with
    | Blocking -> [||]
    | Overlap n ->
      if n <= 0 then invalid_arg "Cycle_sim.run: Overlap needs at least 1 MSHR";
      Array.make n 0
  in
  let bindings = (conn : Conn_arch.t).Conn_arch.bindings in
  let nbind = List.length bindings in
  let busy = Array.make (max 1 nbind) 0 in
  (* per-binding utilisation accounting *)
  let busy_acc = Array.make (max 1 nbind) 0 in
  let wait_acc = Array.make (max 1 nbind) 0 in
  let txn_acc = Array.make (max 1 nbind) 0 in
  let note ~idx ~occ ~wait =
    busy_acc.(idx) <- busy_acc.(idx) + occ;
    wait_acc.(idx) <- wait_acc.(idx) + wait;
    txn_acc.(idx) <- txn_acc.(idx) + 1
  in
  (* routing tables per serving class; with an L2 the cache's off-chip
     traffic flows Cache -> L2 -> DRAM *)
  let has_l2 = arch.Mem_arch.l2 <> None in
  let cpu_leg = Array.make 5 None and dram_leg = Array.make 5 None in
  let l2_leg = if has_l2 then route bindings Channel.Cache Channel.L2 else None in
  List.iter
    (fun sv ->
      let node = node_of sv in
      let i = serving_idx sv in
      cpu_leg.(i) <- route bindings Channel.Cpu node;
      if node <> Channel.Dram then
        let dram_src =
          if sv = Mem_sim.By_cache && has_l2 then Channel.L2 else node
        in
        dram_leg.(i) <- route bindings dram_src Channel.Dram)
    Serving.all;
  let msim =
    Mem_sim.create arch ~regions:workload.Mx_trace.Workload.s_regions
  in
  let stream = workload.Mx_trace.Workload.s_stream in
  let n = Mx_trace.Trace_stream.length stream in
  let ops_rate =
    if n = 0 then 0.0
    else float_of_int workload.Mx_trace.Workload.s_cpu_ops /. float_of_int n
  in
  (* accumulators *)
  let now = ref 0 in
  let ops_acc = ref 0.0 in
  let sampled_accesses = ref 0 in
  let total_lat = ref 0 in
  let total_wait = ref 0 in
  let energy = ref 0.0 in
  let require leg sv =
    match leg with
    | Some l -> l
    | None ->
      invalid_arg
        (Printf.sprintf
           "Cycle_sim.run: connectivity does not implement the %s channel"
           (Channel.node_to_string (node_of sv)))
  in
  let in_on_window i =
    match sample with
    | None -> true
    | Some (on, off) -> i mod (on + off) < on
  in
  let i = ref 0 in
  let per_access ~addr ~size ~kind ~region =
      let write = kind = Mx_trace.Access.Write in
      (* interleaved compute cycles *)
      ops_acc := !ops_acc +. ops_rate;
      let gap = int_of_float !ops_acc in
      ops_acc := !ops_acc -. float_of_int gap;
      let o = Mem_sim.access msim ~now:!i ~addr ~size ~write ~region in
      let sv = o.Mem_sim.serving in
      let k = serving_idx sv in
      if in_on_window !i then begin
        now := !now + gap;
        let l1 = require cpu_leg.(k) sv in
        let start1 = max !now busy.(l1.idx) in
        let wait1 = start1 - !now in
        let lat1 =
          Component.txn_latency l1.comp ~bytes:size ~contended:l1.contended
        in
        let occ1 = Component.occupancy l1.comp ~bytes:size in
        note ~idx:l1.idx ~occ:occ1 ~wait:wait1;
        let mem_lat = module_latency arch sv in
        let crit = critical_bytes arch sv o ~size in
        let bg = o.Mem_sim.dram_bytes - crit in
        (* off-chip leg: By_dram_direct rides its CPU channel, others go
           through their module's DRAM channel *)
        let miss_path = ref 0 in
        (* the L1<->L2 leg comes first on an L1 miss when an L2 exists *)
        if o.Mem_sim.l2_bytes > 0 then begin
          let lm =
            match l2_leg with
            | Some l -> l
            | None ->
              invalid_arg
                "Cycle_sim.run: connectivity does not implement the \
                 cache<->L2 channel"
          in
          let crit_m = min 8 o.Mem_sim.l2_bytes in
          let t_req = !now + wait1 + lat1 in
          let start_m = max t_req busy.(lm.idx) in
          let wait_m = start_m - t_req in
          let lat_m =
            Component.txn_latency lm.comp ~bytes:crit_m ~contended:lm.contended
          in
          let occ_m = Component.occupancy lm.comp ~bytes:crit_m in
          busy.(lm.idx) <- start_m + occ_m;
          note ~idx:lm.idx ~occ:occ_m ~wait:wait_m;
          let bg_m = o.Mem_sim.l2_bytes - crit_m in
          if bg_m > 0 then begin
            let occ_bg = Component.occupancy lm.comp ~bytes:bg_m in
            busy.(lm.idx) <- max busy.(lm.idx) !now + occ_bg;
            note ~idx:lm.idx ~occ:occ_bg ~wait:0
          end;
          let l2_lat =
            match arch.Mem_arch.l2 with
            | Some c -> c.Params.c_latency
            | None -> 0
          in
          miss_path := wait_m + lat_m + l2_lat;
          total_wait := !total_wait + wait_m;
          energy :=
            !energy
            +. (float_of_int o.Mem_sim.l2_bytes
               *. Conn_cost.energy_per_byte lm.comp)
        end;
        if o.Mem_sim.dram_bytes > 0 then begin
          let l2 =
            if sv = Mem_sim.By_dram_direct then l1
            else require dram_leg.(k) sv
          in
          if crit > 0 then begin
            let dram_lat = Mx_mem.Dram.access (Mem_sim.dram msim) ~addr in
            if sv = Mem_sim.By_dram_direct then
              (* the CPU-side transaction itself reaches DRAM; add the
                 core access time only *)
              miss_path := dram_lat
            else begin
              let t_req = !now + wait1 + lat1 + !miss_path in
              let start2 = max t_req busy.(l2.idx) in
              let wait2 = start2 - t_req in
              let lat2 =
                Component.txn_latency l2.comp ~bytes:crit
                  ~contended:l2.contended
              in
              let occ2 = Component.occupancy l2.comp ~bytes:crit in
              busy.(l2.idx) <-
                start2 + occ2
                + (if l2.comp.Component.split_txn then 0 else dram_lat);
              note ~idx:l2.idx ~occ:occ2 ~wait:wait2;
              miss_path := !miss_path + wait2 + lat2 + dram_lat;
              total_wait := !total_wait + wait2
            end
          end;
          if bg > 0 then begin
            (* prefetch/writeback traffic occupies the off-chip leg and
               touches DRAM rows without stalling the CPU *)
            ignore (Mx_mem.Dram.access (Mem_sim.dram msim) ~addr);
            let occ_bg = Component.occupancy l2.comp ~bytes:bg in
            busy.(l2.idx) <- max busy.(l2.idx) !now + occ_bg;
            note ~idx:l2.idx ~occ:occ_bg ~wait:0
          end;
          (* off-chip energy: DRAM core (per burst) + pad/bus switching *)
          energy :=
            !energy
            +. Mx_mem.Energy_model.dram_traffic ~txns:o.Mem_sim.dram_txns
                 ~bytes:o.Mem_sim.dram_bytes
            +. (float_of_int o.Mem_sim.dram_bytes
               *. Conn_cost.energy_per_byte l2.comp)
        end;
        (* hold a non-split CPU-side component for the whole miss *)
        busy.(l1.idx) <-
          start1 + occ1
          + (if l1.comp.Component.split_txn then 0 else !miss_path);
        let latency =
          match cpu with
          | Blocking ->
            wait1 + lat1 + mem_lat + o.Mem_sim.extra_latency + !miss_path
          | Overlap _ ->
            let on_chip = wait1 + lat1 + mem_lat + o.Mem_sim.extra_latency in
            if !miss_path = 0 then on_chip
            else begin
              (* park the miss in an MSHR; stall only when all are busy *)
              let slot = ref 0 in
              Array.iteri
                (fun i t -> if t < mshrs.(!slot) then slot := i)
                mshrs;
              let stall = max 0 (mshrs.(!slot) - !now) in
              mshrs.(!slot) <- !now + stall + on_chip + !miss_path;
              on_chip + stall
            end
        in
        now := !now + latency;
        total_lat := !total_lat + latency;
        total_wait := !total_wait + wait1;
        incr sampled_accesses;
        energy :=
          !energy
          +. module_energy arch sv ~write
          +. o.Mem_sim.extra_energy
          +. (float_of_int size *. Conn_cost.energy_per_byte l1.comp)
      end
      else begin
        (* off window: keep module/DRAM state warm, no timing *)
        if o.Mem_sim.dram_bytes > 0 then
          ignore (Mx_mem.Dram.access (Mem_sim.dram msim) ~addr)
      end;
      incr i
  in
  (* A skipped span must still advance the compute-gap recurrence, so
     the accesses that ARE replayed see the same interleaved gaps as a
     full pass.  Same float ops per access as the live path. *)
  let fast_forward len =
    for _ = 1 to len do
      ops_acc := !ops_acc +. ops_rate;
      let gap = int_of_float !ops_acc in
      ops_acc := !ops_acc -. float_of_int gap
    done;
    i := !i + len
  in
  for ci = 0 to Mx_trace.Trace_stream.chunk_count stream - 1 do
    let clen = Mx_trace.Trace_stream.chunk_length stream ci in
    let skip =
      seek
      &&
      match sample with
      | Some (on, off) ->
        not
          (chunk_has_on_window ~on ~off
             ~first:(Mx_trace.Trace_stream.chunk_start stream ci)
             ~len:clen)
      | None -> false
    in
    if skip then fast_forward clen
    else begin
      let c = Mx_trace.Trace_stream.get_chunk stream ci in
      let open Mx_trace.Trace_stream in
      for k = c.c_off to c.c_off + c.c_len - 1 do
        let meta = c.c_metas.(k) in
        per_access ~addr:c.c_addrs.(k)
          ~size:(Mx_trace.Trace.meta_size meta)
          ~kind:(Mx_trace.Trace.meta_kind meta)
          ~region:(Mx_trace.Trace.meta_region meta)
      done
    end
  done;
  let sampled = max 1 !sampled_accesses in
  let avg_lat = float_of_int !total_lat /. float_of_int sampled in
  let scale = float_of_int n /. float_of_int sampled in
  (* routing statistics are exact even when sampling: the module state
     saw every access *)
  let mstats = Mem_sim.snapshot msim in
  let miss_ratio = Mem_sim.miss_ratio mstats in
  let dram_bytes = mstats.Mem_sim.dram_bytes_total in
  let result =
    {
      Sim_result.accesses = n;
      cycles = int_of_float (float_of_int !now *. scale);
      total_mem_latency = !total_lat;
      avg_mem_latency = avg_lat;
      avg_energy_nj = !energy /. float_of_int sampled;
      miss_ratio;
      bus_wait_cycles = !total_wait;
      dram_bytes;
      exact = sample = None;
    }
  in
  let total_cycles = max 1 !now in
  let stats =
    List.mapi
      (fun idx (b : Conn_arch.binding) ->
        {
          component = b.Conn_arch.component.Component.name;
          carries = Mx_connect.Cluster.describe b.Conn_arch.cluster;
          txns = txn_acc.(idx);
          busy_cycles = busy_acc.(idx);
          wait_cycles = wait_acc.(idx);
          utilization = float_of_int busy_acc.(idx) /. float_of_int total_cycles;
        })
      bindings
  in
  (* One registry deposit per simulation, from whichever domain ran it:
     the per-access loop above never touches the registry. *)
  (if Mx_util.Metrics.is_on Mx_util.Metrics.global then begin
     let m = Mx_util.Metrics.global in
     Mx_util.Metrics.incr m "cycle_sim.runs";
     Mx_util.Metrics.incr m ~by:n "cycle_sim.accesses";
     Mx_util.Metrics.incr m ~by:!sampled_accesses "cycle_sim.sampled_accesses";
     Mx_util.Metrics.incr m ~by:!total_wait "cycle_sim.stall_cycles";
     Mx_util.Metrics.incr m ~by:total_cycles "cycle_sim.cycles";
     Mx_util.Metrics.observe m ~unit_:"cycles" "cycle_sim.avg_mem_latency"
       avg_lat;
     List.iter
       (fun (s : bus_stat) ->
         let pre = "cycle_sim.bus." ^ s.component ^ "." in
         Mx_util.Metrics.incr m ~by:s.txns (pre ^ "txns");
         Mx_util.Metrics.incr m ~by:s.busy_cycles (pre ^ "busy_cycles");
         Mx_util.Metrics.incr m ~by:s.wait_cycles (pre ^ "wait_cycles"))
       stats
   end);
  (result, stats)

let run_stream ?sample ?cpu ?seek ~workload ~arch ~conn () =
  fst (run_stream_traced ?sample ?cpu ?seek ~workload ~arch ~conn ())

(* The in-memory entry points replay through a zero-copy stream with
   the default chunk geometry: same accesses, same order, same float
   accumulation — byte-identical to the pre-stream implementation. *)
let run_traced ?sample ?cpu ~workload ~arch ~conn () =
  let streamed =
    Mx_trace.Workload.streamed ~name:workload.Mx_trace.Workload.name
      ~regions:workload.Mx_trace.Workload.regions
      ~cpu_ops:workload.Mx_trace.Workload.cpu_ops
      (Mx_trace.Trace_stream.of_trace workload.Mx_trace.Workload.trace)
  in
  run_stream_traced ?sample ?cpu ~workload:streamed ~arch ~conn ()

let run ?sample ?cpu ~workload ~arch ~conn () =
  fst (run_traced ?sample ?cpu ~workload ~arch ~conn ())

let record_utilization_gauges ?(registry = Mx_util.Metrics.global) () =
  let snap = Mx_util.Metrics.snapshot registry in
  let cycles =
    List.assoc_opt "cycle_sim.cycles" snap.Mx_util.Metrics.counters
    |> Option.value ~default:0
  in
  if cycles > 0 then
    List.iter
      (fun (name, busy) ->
        let pre = "cycle_sim.bus." and suf = ".busy_cycles" in
        let pl = String.length pre and sl = String.length suf in
        let l = String.length name in
        if
          l > pl + sl
          && String.sub name 0 pl = pre
          && String.sub name (l - sl) sl = suf
        then
          let comp = String.sub name pl (l - pl - sl) in
          Mx_util.Metrics.set_gauge registry
            ("cycle_sim.bus." ^ comp ^ ".utilization")
            (float_of_int busy /. float_of_int cycles))
      snap.Mx_util.Metrics.counters
