(** Serving-class helpers shared by the analytical estimator and the
    cycle simulator.

    Both evaluators reason about the same five serving classes (which
    module answered a CPU access) and agree on the per-class connectivity
    node, module latency/energy, and the critical-word-first demand
    share of an off-chip fill.  Keeping one copy here guarantees the two
    fidelity levels cannot silently diverge on these ground truths. *)

val all : Mx_mem.Mem_sim.serving list
(** Every serving class, in {!index} order. *)

val node_of : Mx_mem.Mem_sim.serving -> Mx_connect.Channel.node
(** The connectivity endpoint a serving class talks through. *)

val index : Mx_mem.Mem_sim.serving -> int
(** Dense 0..4 index, for per-class arrays. *)

val dram_core_latency : unit -> float
(** Average DRAM core latency of the library DRAM part assuming a mixed
    row-hit/miss stream. *)

val cwf_bytes : int
(** Critical-word-first width: the CPU resumes once this many bytes of a
    fill have arrived; the rest streams in behind. *)

val module_latency : Mx_mem.Mem_arch.t -> Mx_mem.Mem_sim.serving -> int
(** On-chip access latency of the module serving this class (0 for a
    direct DRAM access — the DRAM core time is accounted separately). *)

val module_energy :
  Mx_mem.Mem_arch.t -> Mx_mem.Mem_sim.serving -> write:bool -> float
(** Per-access energy of the serving module, in nJ. *)

val critical_bytes :
  Mx_mem.Mem_arch.t ->
  Mx_mem.Mem_sim.serving ->
  lldma_bytes:int ->
  fallback:int ->
  int
(** Demand (CPU-blocking) bytes of an off-chip transfer for this class:
    [min line cwf_bytes] for line-based modules, [min lldma_bytes
    cwf_bytes] for the linked-list DMA (whose transfer unit is dynamic),
    [fallback] when the class has no backing module or hits DRAM
    directly, and [0] for SRAM (never off-chip).  The estimator passes
    the architecture's static element width and a 4-byte fallback; the
    cycle simulator passes the observed transfer size. *)
