(** Result record shared by the cycle simulator, the time-sampling
    estimator and the analytic estimator.

    [avg_mem_latency] is the paper's performance metric (Table 1 /
    Figs. 4 and 6): average cycles the CPU stalls per memory access,
    including both memory-module latency and connectivity latency
    (arbitration waits, serialization beats, bus conflicts).
    [avg_energy_nj] is the paper's energy metric: average nanojoules
    per access across memory modules and connectivity. *)

type t = {
  accesses : int;  (** accesses the timing was measured over *)
  cycles : int;  (** total execution cycles (compute + memory) *)
  total_mem_latency : int;
  avg_mem_latency : float;
  avg_energy_nj : float;
  miss_ratio : float;  (** demand misses / accesses *)
  bus_wait_cycles : int;
      (** cycles lost to connectivity contention (arbitration queues) *)
  dram_bytes : int;
  exact : bool;  (** true for full simulation, false for estimates *)
}

val pp : Format.formatter -> t -> unit

val to_wire : t -> string
(** Single-line byte form used by the persistent result store.  Floats
    are encoded in hexadecimal ([%h]) so every finite double
    round-trips bit-exactly: [of_wire (to_wire r) = Some r]. *)

val of_wire : string -> t option
(** Parse {!to_wire} output; [None] on any malformed input (a corrupt
    or foreign store entry must read as a miss, never as a result). *)
