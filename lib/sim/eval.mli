(** The unified evaluation engine: one entry point for every
    performance/energy evaluation in the exploration funnel, with a
    content-addressed result cache behind it.

    The funnel's three evaluators become one {!fidelity} ladder:

    {v
      Estimate          analytic model from a module-level profile
        |                 (Phase I fan-out; cheapest, least accurate)
      Sampled (on,off)  time-sampled cycle simulation
        |                 (Phase II; Kessler windows)
      Exact             full trace-driven cycle simulation
                          (refinement / final reporting; ground truth)
    v}

    Every call is routed through a process-wide {!Mx_util.Memo_cache}
    keyed by canonical structural fingerprints:

    [workload fingerprint | memory fingerprint | connectivity
    fingerprint | fidelity tag]

    so a design already evaluated at {e equal or higher} fidelity is
    never recomputed: an [Exact] result satisfies a later [Sampled]
    request for the same design (both are produced by the cycle
    simulator; the exact run is strictly better).  [Estimate] results
    are kept separate in both directions — the analytic model is a
    different estimator, and silently substituting simulator output
    would change what the caller asked for (and vice versa).
    [Sampled] entries only satisfy requests with identical windows.

    The cache is single-flight (see {!Mx_util.Memo_cache}): concurrent
    evaluations of the same key across {!Mx_util.Task_pool} domains
    compute once, so per-simulation counters such as [cycle_sim.runs]
    remain identical at every jobs level.  Cache traffic is recorded in
    {!Mx_util.Metrics.global} as [eval.cache.hits], [eval.cache.misses]
    and [eval.cache.evictions]. *)

type fidelity =
  | Estimate  (** {!Estimator.estimate}; requires [~profile] *)
  | Sampled of int * int  (** {!Cycle_sim.run} with [(on, off)] windows *)
  | Exact  (** {!Cycle_sim.run} over the full trace *)

val fidelity_tag : fidelity -> string
(** Canonical short form used in cache keys (stable across runs). *)

val eval :
  fidelity:fidelity ->
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  ?profile:Mx_mem.Mem_sim.stats ->
  ?shard:string ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t
(** Evaluate one (workload, memory, connectivity) design point at the
    requested fidelity, serving it from the cache when an entry of equal
    or higher fidelity exists.

    [?shard] is the structural fingerprint of the design-space shard
    issuing the call ({!Mx_core} [Shard.fingerprint]); when given, the
    cache records which shard computed each entry (in a bounded side
    table) and classifies later hits as [eval.cache.shard_local_hits],
    [eval.cache.shard_remote_hits] (another shard's work served this
    one) or [eval.cache.shard_unknown_hits] counters.  Purely
    observational; all of it lives under the schedule-exempt [cache.]
    metric segment.
    @raise Invalid_argument when [fidelity = Estimate] and no [~profile]
    is supplied, or whenever the underlying evaluator rejects the
    design (unroutable channel, bad sampling windows, empty profile). *)

type provenance =
  | Computed  (** this call ran the evaluator *)
  | Cache_hit  (** served from the hot tier (incl. single-flight waits) *)
  | Disk_hit
      (** served from the persistent tier (see {!open_persist}) and
          promoted into the hot tier *)
  | Promoted
      (** a [Sampled] request served by an [Exact] result, resident in
          either tier *)

val provenance_tag : provenance -> string
(** ["computed"], ["hit"], ["hit_disk"] or ["promoted"] — the stable
    form used in [eval.cache.provenance] events. *)

val eval_prov :
  fidelity:fidelity ->
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  ?profile:Mx_mem.Mem_sim.stats ->
  ?shard:string ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t * provenance
(** {!eval} that also reports where the result came from.  Provenance is
    schedule-dependent (cache contents depend on cross-domain timing),
    so events derived from it must carry a [cache.] segment in their
    name — see {!Mx_util.Event_log.schedule_dependent}.  [?shard] as in
    {!eval}. *)

val eval_stream :
  fidelity:fidelity ->
  ?seek:bool ->
  workload:Mx_trace.Workload.streamed ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t
(** {!eval} for a streamed workload ({!Cycle_sim.run_stream}).  Shares
    the same cache as the in-memory paths: the streamed fingerprint
    equals the materialised workload's {!Mx_trace.Workload.fingerprint},
    so results flow across text-loaded, binary-streamed and in-memory
    evaluations of the same content.  [~seek:true] (cold sampling, see
    {!Cycle_sim.run_stream}) is cached under a distinct key — its
    numbers are a different estimator from warm sampling.
    @raise Invalid_argument for [Estimate] fidelity (the analytic model
    needs a module-level profile, which has no streaming form), for
    [~seek:true] without [Sampled] fidelity, and whenever the simulator
    rejects the design. *)

val eval_stream_prov :
  fidelity:fidelity ->
  ?seek:bool ->
  workload:Mx_trace.Workload.streamed ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t * provenance
(** {!eval_stream} with provenance, as {!eval_prov}. *)

val default_cache_capacity : int
(** 65536 entries — far above the working set of any bundled experiment,
    so nothing is evicted and cache behaviour stays deterministic. *)

val set_cache_capacity : int -> unit
(** Replace the cache with a fresh one of the given capacity (dropping
    all entries; 0 or negative disables caching).  Not safe to call
    concurrently with running evaluations — configure before
    exploring. *)

val cache_capacity : unit -> int

val cache_stats : unit -> Mx_util.Memo_cache.stats
(** Hit/miss/eviction totals since the cache was created or last
    resized ({!clear_cache} keeps counters). *)

val clear_cache : unit -> unit
(** Drop every cached result (counters are kept).  Call between
    independent experiment arms when warm-cache carry-over would blur a
    comparison.  Only empties the hot tier — the persistent tier, when
    open, is untouched (that is what makes warm-start tests honest). *)

(** {2 The persistent tier}

    An optional second cache level backed by {!Mx_util.Persist_cache}:
    hot tier → disk tier → compute, with the single-flight guarantee
    covering all three (the disk probe and the write-back happen inside
    the memo slot, so concurrent requests for one key do one disk read
    and at most one evaluation).  Results are stored in the bit-exact
    {!Sim_result.to_wire} form; an entry that fails {!Sim_result.of_wire}
    reads as a miss.  Disk traffic is counted under
    [eval.cache.disk.{hits,misses,writes}] — a [cache.] segment, exempt
    from the determinism contract like the hot tier's counters. *)

val model_revision : string
(** Version stamp written into every segment the disk tier creates.
    Bumped whenever the estimator, the cycle simulator or the
    fingerprint scheme changes in a result-affecting way; stores written
    under another revision are ignored wholesale on open. *)

val open_persist : dir:string -> (unit, string) result
(** Attach the process-wide disk tier rooted at [dir] (creating it if
    needed), closing any previously attached store first.  [Error]
    reports an unusable directory; a corrupt store is not an error —
    torn or damaged records are skipped on open.  Not safe to call
    concurrently with running evaluations. *)

val close_persist : unit -> unit
(** Flush, [fsync] and detach the disk tier (no-op when none is open).
    Evaluation falls back to two-tier-less operation. *)

val sync_persist : unit -> unit
(** [fsync] the disk tier's active segment without detaching it — the
    graceful-shutdown flush used by [conex serve]. *)

val persist_stats : unit -> Mx_util.Persist_cache.stats option
(** Counters of the attached store; [None] when no store is open. *)
