(** Trace-driven cycle simulation of a combined memory + connectivity
    architecture (the SIMPRESS-replacement).

    Models an in-order CPU that blocks on memory references.  Each
    access travels: CPU -> serving module over the component carrying
    that channel (arbitration wait + serialization beats), then — on a
    demand miss — module -> DRAM over the off-chip component (wait +
    beats + DRAM row-buffer latency).  Non-critical traffic
    (prefetches, writebacks) occupies the off-chip component and
    perturbs later accesses without stalling the CPU.  Components that
    are not split-transaction stay held for the whole miss path.

    Time-sampling mode ([~sample:(on, off)], Kessler-style) keeps
    module state warm on every access but only accumulates timing
    during "on" windows; the paper uses a 1/9 on/off ratio.

    The simulator consumes a {!Mx_trace.Trace_stream.t}: the in-memory
    entry points ({!run}, {!run_traced}) wrap their trace in a
    zero-copy stream, and {!run_stream} replays a file-backed stream
    (e.g. {!Mx_trace.Trace_io.open_stream}) chunk by chunk in constant
    memory.  Both paths walk the identical access sequence with the
    identical arithmetic, so their results are byte-identical —
    including under [~sample]. *)

type cpu_model =
  | Blocking
      (** in-order CPU that stalls on every reference — the paper's
          model *)
  | Overlap of int
      (** non-blocking loads with the given number of MSHRs: a demand
          miss occupies a slot and completes in the background; the CPU
          only stalls when all slots are busy.  An optimistic bound used
          by the MLP ablation ("would the connectivity ranking change if
          the CPU could overlap misses?"). *)

val run :
  ?sample:int * int ->
  ?cpu:cpu_model ->
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t
(** [cpu] defaults to [Blocking].
    @raise Invalid_argument when the trace exercises a channel the
    connectivity architecture does not implement, when sampling windows
    are non-positive, or when [Overlap n] has [n <= 0]. *)

val default_sample : int * int
(** (1000, 9000): the paper's 1/9 on/off time-sampling ratio. *)

(** Per-component-instance utilisation, for designer reports ("which bus
    is the bottleneck?"). *)
type bus_stat = {
  component : string;  (** library component name *)
  carries : string;  (** the cluster (channel set) it implements *)
  txns : int;  (** transactions carried *)
  busy_cycles : int;  (** cycles the component was occupied *)
  wait_cycles : int;  (** cycles CPU-visible requests queued behind it *)
  utilization : float;  (** busy / total execution cycles *)
}

val run_traced :
  ?sample:int * int ->
  ?cpu:cpu_model ->
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t * bus_stat list
(** {!run} plus the per-component utilisation breakdown (one entry per
    connectivity binding, in binding order). *)

val run_stream :
  ?sample:int * int ->
  ?cpu:cpu_model ->
  ?seek:bool ->
  workload:Mx_trace.Workload.streamed ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t
(** Replay a streamed workload.  With [seek:false] (the default) every
    chunk is fetched in order and the result is byte-identical to
    materialising the stream and calling {!run} — the property the
    [trace] check suite pins down.

    [~seek:true] (requires [~sample]) is {e cold sampling}: chunks that
    fall entirely inside "off" windows are never fetched — no I/O, no
    decode, and {e no module-state warming} from the skipped spans
    (compute-gap phase is still advanced exactly).  On a 1/9 sampling
    ratio with the default chunk size this reads under a quarter of the
    file's chunks, at the cost of colder caches in the on-windows than
    warm (seekless) sampling would give; use it for interactive scans
    of very large traces, not for golden numbers.
    @raise Invalid_argument for [~seek:true] without [~sample]. *)

val run_stream_traced :
  ?sample:int * int ->
  ?cpu:cpu_model ->
  ?seek:bool ->
  workload:Mx_trace.Workload.streamed ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Sim_result.t * bus_stat list
(** {!run_stream} plus the per-component utilisation breakdown. *)

val record_utilization_gauges : ?registry:Mx_util.Metrics.t -> unit -> unit
(** Derive [cycle_sim.bus.<component>.utilization] gauges (aggregate
    busy cycles / total simulated cycles, per component type, across
    every simulation recorded so far) from the registry's
    [cycle_sim.bus.*] counters.  Deterministic because it is computed
    from schedule-invariant counters; call it after a run, before
    rendering.  Defaults to {!Mx_util.Metrics.global}. *)
