type t = {
  accesses : int;
  cycles : int;
  total_mem_latency : int;
  avg_mem_latency : float;
  avg_energy_nj : float;
  miss_ratio : float;
  bus_wait_cycles : int;
  dram_bytes : int;
  exact : bool;
}

(* Persistent-cache wire form.  Floats are printed in %h hex notation,
   which round-trips every finite double exactly — cached-vs-fresh
   results must stay byte-identical downstream, so the codec is not
   allowed to lose a single bit. *)
let to_wire r =
  Printf.sprintf "%d %d %d %h %h %h %d %d %b" r.accesses r.cycles
    r.total_mem_latency r.avg_mem_latency r.avg_energy_nj r.miss_ratio
    r.bus_wait_cycles r.dram_bytes r.exact

let of_wire s =
  match String.split_on_char ' ' s with
  | [ acc; cy; tml; aml; ae; mr; bw; db; ex ] -> (
    try
      Some
        {
          accesses = int_of_string acc;
          cycles = int_of_string cy;
          total_mem_latency = int_of_string tml;
          avg_mem_latency = float_of_string aml;
          avg_energy_nj = float_of_string ae;
          miss_ratio = float_of_string mr;
          bus_wait_cycles = int_of_string bw;
          dram_bytes = int_of_string db;
          exact = bool_of_string ex;
        }
    with Failure _ | Invalid_argument _ -> None)
  | _ -> None

let pp fmt r =
  Format.fprintf fmt
    "%s: %d accesses, %d cycles, avg mem latency %.2f cy, avg energy %.2f \
     nJ, miss %.3f, bus wait %d cy"
    (if r.exact then "sim" else "est")
    r.accesses r.cycles r.avg_mem_latency r.avg_energy_nj r.miss_ratio
    r.bus_wait_cycles
