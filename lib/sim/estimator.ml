module Mem_sim = Mx_mem.Mem_sim
module Mem_arch = Mx_mem.Mem_arch
module Params = Mx_mem.Params
module Channel = Mx_connect.Channel
module Component = Mx_connect.Component
module Conn_arch = Mx_connect.Conn_arch
module Conn_cost = Mx_connect.Conn_cost
module Rt = Mx_connect.Reservation_table

let node_of = Serving.node_of

let dram_core_latency = Serving.dram_core_latency

(* the estimator characterises a read-dominated average access *)
let module_energy arch sv = Serving.module_energy arch sv ~write:false

(* critical-word-first demand bytes; without the observed transfer the
   estimator falls back to a 4-byte word, and sizes the LLDMA leg from
   its static element width *)
let critical_bytes_of (arch : Mem_arch.t) sv =
  let lldma_bytes =
    match arch.Mem_arch.lldma with Some l -> l.Params.ll_elem | None -> 4
  in
  Serving.critical_bytes arch sv ~lldma_bytes ~fallback:4

let module_latency = Serving.module_latency

type leg = {
  comp : Component.t;
  binding_id : int;
  contended : bool;
}

let estimate ~workload ~arch ~(profile : Mem_sim.stats) ~conn =
  if profile.Mem_sim.accesses = 0 then
    invalid_arg "Estimator.estimate: empty profile";
  let n = float_of_int profile.Mem_sim.accesses in
  let bindings = Array.of_list (conn : Conn_arch.t).Conn_arch.bindings in
  let find_leg src dst =
    let probe = { Channel.src; dst; bandwidth = 0.0; txn_bytes = 0.0 } in
    let found = ref None in
    Array.iteri
      (fun i (b : Conn_arch.binding) ->
        if
          !found = None
          && List.exists (Channel.same_endpoints probe)
               b.Conn_arch.cluster.Mx_connect.Cluster.channels
        then
          found :=
            Some
              {
                comp = b.Conn_arch.component;
                binding_id = i;
                contended =
                  List.length b.Conn_arch.cluster.Mx_connect.Cluster.channels
                  > 1;
              })
      bindings;
    !found
  in
  (* per-serving traffic characterisation from the profile *)
  let active =
    List.filter (fun sv -> profile.Mem_sim.cpu_accesses sv > 0) Serving.all
  in
  let avg_size sv =
    float_of_int (profile.Mem_sim.cpu_bytes sv)
    /. float_of_int (max 1 (profile.Mem_sim.cpu_accesses sv))
  in
  let has_l2 = profile.Mem_sim.l2_txns_total > 0 in
  let legs =
    List.map
      (fun sv ->
        let node = node_of sv in
        let cpu =
          match find_leg Channel.Cpu node with
          | Some l -> l
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Estimator.estimate: no component carries CPU<->%s"
                 (Channel.node_to_string node))
        in
        let mid =
          if sv = Mem_sim.By_cache && has_l2 then
            match find_leg Channel.Cache Channel.L2 with
            | Some l -> Some l
            | None ->
              invalid_arg
                "Estimator.estimate: no component carries cache<->L2"
          else None
        in
        let dram_src =
          if sv = Mem_sim.By_cache && has_l2 then Channel.L2 else node
        in
        let dram =
          if node = Channel.Dram then Some cpu
          else if profile.Mem_sim.dram_txns_by sv > 0 then
            match find_leg dram_src Channel.Dram with
            | Some l -> Some l
            | None ->
              invalid_arg
                (Printf.sprintf
                   "Estimator.estimate: no component carries %s<->DRAM"
                   (Channel.node_to_string dram_src))
          else None
        in
        (sv, cpu, mid, dram))
      active
  in
  (* reservation-table-derived occupancy of each component instance *)
  let busy = Array.make (Array.length bindings) 0.0 in
  let occupancy comp ~bytes =
    float_of_int (Rt.initiation_interval comp ~bytes:(max 1 bytes))
  in
  List.iter
    (fun (sv, cpu, mid, dram) ->
      let txns = float_of_int (profile.Mem_sim.cpu_accesses sv) in
      busy.(cpu.binding_id) <-
        busy.(cpu.binding_id)
        +. (txns *. occupancy cpu.comp ~bytes:(int_of_float (avg_size sv)));
      (match mid with
      | Some l when profile.Mem_sim.l2_txns_total > 0 ->
        let mtx = float_of_int profile.Mem_sim.l2_txns_total in
        let per_txn =
          float_of_int profile.Mem_sim.l2_bytes_total /. Float.max 1.0 mtx
        in
        busy.(l.binding_id) <-
          busy.(l.binding_id)
          +. (mtx *. occupancy l.comp ~bytes:(int_of_float per_txn))
      | _ -> ());
      match dram with
      | Some l when sv <> Mem_sim.By_dram_direct ->
        let dtxns = float_of_int (profile.Mem_sim.dram_txns_by sv) in
        let per_txn_bytes =
          float_of_int (profile.Mem_sim.dram_bytes_by sv)
          /. Float.max 1.0 dtxns
        in
        let hold =
          if l.comp.Component.split_txn then 0.0 else dram_core_latency ()
        in
        busy.(l.binding_id) <-
          busy.(l.binding_id)
          +. (dtxns
             *. (occupancy l.comp ~bytes:(int_of_float per_txn_bytes) +. hold))
      | _ -> ())
    legs;
  let ops_rate =
    float_of_int workload.Mx_trace.Workload.cpu_ops
    /. Float.max 1.0 (float_of_int (Mx_trace.Trace.length workload.Mx_trace.Workload.trace))
  in
  let wait_of total_cycles binding_id service =
    let rho = Float.min 0.98 (busy.(binding_id) /. Float.max 1.0 total_cycles) in
    service /. 2.0 *. (rho /. (1.0 -. rho))
  in
  (* fixed-point on total time *)
  let latency = ref 5.0 in
  let total = ref (n *. (1.0 +. ops_rate +. !latency)) in
  let bus_wait = ref 0.0 in
  for _ = 1 to 4 do
    bus_wait := 0.0;
    let l_sum =
      List.fold_left
        (fun acc (sv, cpu, mid, dram) ->
          let frac =
            float_of_int (profile.Mem_sim.cpu_accesses sv) /. n
          in
          let size = int_of_float (avg_size sv) in
          let s1 = occupancy cpu.comp ~bytes:size in
          let w1 = wait_of !total cpu.binding_id s1 in
          let t1 =
            float_of_int
              (Component.txn_latency cpu.comp ~bytes:(max 1 size)
                 ~contended:cpu.contended)
          in
          let miss_rate =
            float_of_int (profile.Mem_sim.demand_misses_by sv)
            /. float_of_int (max 1 (profile.Mem_sim.cpu_accesses sv))
          in
          (* the L1<->L2 leg is traversed at the L1 miss rate *)
          let l2_path =
            match mid with
            | None -> 0.0
            | Some l ->
              let l1_miss_rate =
                float_of_int profile.Mem_sim.l2_accesses
                /. float_of_int (max 1 (profile.Mem_sim.cpu_accesses sv))
              in
              let s_m = occupancy l.comp ~bytes:8 in
              let w_m = wait_of !total l.binding_id s_m in
              let t_m =
                float_of_int
                  (Component.txn_latency l.comp ~bytes:8
                     ~contended:l.contended)
              in
              let l2_lat =
                match arch.Mem_arch.l2 with
                | Some c -> float_of_int c.Params.c_latency
                | None -> 0.0
              in
              bus_wait := !bus_wait +. (frac *. l1_miss_rate *. w_m *. n);
              l1_miss_rate *. (w_m +. t_m +. l2_lat)
          in
          let miss_path =
            match dram with
            | None -> 0.0
            | Some l ->
              let crit = critical_bytes_of arch sv in
              let t2 =
                if sv = Mem_sim.By_dram_direct then 0.0
                else
                  float_of_int
                    (Component.txn_latency l.comp ~bytes:(max 1 crit)
                       ~contended:l.contended)
              in
              let s2 = occupancy l.comp ~bytes:(max 1 crit) in
              let w2 =
                if sv = Mem_sim.By_dram_direct then 0.0
                else wait_of !total l.binding_id s2
              in
              bus_wait := !bus_wait +. (frac *. miss_rate *. w2 *. n);
              w2 +. t2 +. dram_core_latency ()
          in
          bus_wait := !bus_wait +. (frac *. w1 *. n);
          acc
          +. (frac
             *. (w1 +. t1
                +. float_of_int (module_latency arch sv)
                +. l2_path
                +. (miss_rate *. miss_path))))
        0.0 legs
    in
    latency := l_sum;
    total := n *. (1.0 +. ops_rate +. !latency)
  done;
  (* energy: contention-independent, computed from exact profile counts *)
  let energy_total =
    List.fold_left
      (fun acc (sv, cpu, mid, dram) ->
        let accs = float_of_int (profile.Mem_sim.cpu_accesses sv) in
        let cpu_bytes = float_of_int (profile.Mem_sim.cpu_bytes sv) in
        let e_mod = accs *. module_energy arch sv in
        let e_conn = cpu_bytes *. Conn_cost.energy_per_byte cpu.comp in
        let e_l2 =
          match mid with
          | Some l ->
            (float_of_int profile.Mem_sim.l2_bytes_total
            *. Conn_cost.energy_per_byte l.comp)
            +. (float_of_int profile.Mem_sim.l2_accesses
               *. (match arch.Mem_arch.l2 with
                  | Some c -> Mx_mem.Energy_model.cache_access c ~write:false
                  | None -> 0.0))
          | None -> 0.0
        in
        let e_dram =
          match dram with
          | None -> 0.0
          | Some l ->
            let bytes = profile.Mem_sim.dram_bytes_by sv in
            let txns = max 1 (profile.Mem_sim.dram_txns_by sv) in
            if bytes = 0 then 0.0
            else
              Mx_mem.Energy_model.dram_traffic ~txns ~bytes
              +. (float_of_int bytes *. Conn_cost.energy_per_byte l.comp)
        in
        acc +. e_mod +. e_conn +. e_l2 +. e_dram)
      0.0 legs
  in
  {
    Sim_result.accesses = profile.Mem_sim.accesses;
    cycles = int_of_float !total;
    total_mem_latency = int_of_float (!latency *. n);
    avg_mem_latency = !latency;
    avg_energy_nj = energy_total /. n;
    miss_ratio = Mem_sim.miss_ratio profile;
    bus_wait_cycles = int_of_float !bus_wait;
    dram_bytes = profile.Mem_sim.dram_bytes_total;
    exact = false;
  }
