module Mem_sim = Mx_mem.Mem_sim
module Mem_arch = Mx_mem.Mem_arch
module Params = Mx_mem.Params
module Channel = Mx_connect.Channel

let all =
  [ Mem_sim.By_cache; Mem_sim.By_sram; Mem_sim.By_sbuf; Mem_sim.By_lldma;
    Mem_sim.By_dram_direct ]

let node_of = function
  | Mem_sim.By_cache -> Channel.Cache
  | Mem_sim.By_sram -> Channel.Sram
  | Mem_sim.By_sbuf -> Channel.Sbuf
  | Mem_sim.By_lldma -> Channel.Lldma
  | Mem_sim.By_dram_direct -> Channel.Dram

let index = function
  | Mem_sim.By_cache -> 0
  | Mem_sim.By_sram -> 1
  | Mem_sim.By_sbuf -> 2
  | Mem_sim.By_lldma -> 3
  | Mem_sim.By_dram_direct -> 4

(* average DRAM core latency assuming a mixed row-hit/miss stream *)
let dram_core_latency () =
  let d = Mx_mem.Module_lib.default_dram in
  float_of_int d.Params.d_cas
  +. (0.5 *. float_of_int (d.Params.d_rcd + d.Params.d_rp))

(* critical-word-first: the CPU resumes after the first 8 bytes *)
let cwf_bytes = 8

let module_latency (arch : Mem_arch.t) = function
  | Mem_sim.By_cache -> (
    match arch.Mem_arch.cache with Some c -> c.Params.c_latency | None -> 0)
  | Mem_sim.By_sram -> (
    match arch.Mem_arch.sram with Some s -> s.Params.s_latency | None -> 1)
  | Mem_sim.By_sbuf -> (
    match arch.Mem_arch.sbuf with Some s -> s.Params.sb_latency | None -> 1)
  | Mem_sim.By_lldma -> (
    match arch.Mem_arch.lldma with Some l -> l.Params.ll_latency | None -> 1)
  | Mem_sim.By_dram_direct -> 0

let module_energy (arch : Mem_arch.t) serving ~write =
  match serving with
  | Mem_sim.By_cache -> (
    match arch.Mem_arch.cache with
    | Some c -> Mx_mem.Energy_model.cache_access c ~write
    | None -> 0.0)
  | Mem_sim.By_sram -> (
    match arch.Mem_arch.sram with
    | Some s -> Mx_mem.Energy_model.sram_access ~size:s.Params.s_size
    | None -> 0.0)
  | Mem_sim.By_sbuf -> (
    match arch.Mem_arch.sbuf with
    | Some s -> Mx_mem.Energy_model.stream_buffer_access s
    | None -> 0.0)
  | Mem_sim.By_lldma -> (
    match arch.Mem_arch.lldma with
    | Some l -> Mx_mem.Energy_model.lldma_access l
    | None -> 0.0)
  | Mem_sim.By_dram_direct -> 0.0

let critical_bytes (arch : Mem_arch.t) serving ~lldma_bytes ~fallback =
  match serving with
  | Mem_sim.By_cache -> (
    match arch.Mem_arch.cache with
    | Some c -> min c.Params.c_line cwf_bytes
    | None -> fallback)
  | Mem_sim.By_sbuf -> (
    match arch.Mem_arch.sbuf with
    | Some s -> min s.Params.sb_line cwf_bytes
    | None -> fallback)
  | Mem_sim.By_lldma -> min lldma_bytes cwf_bytes
  | Mem_sim.By_dram_direct -> fallback
  | Mem_sim.By_sram -> 0
