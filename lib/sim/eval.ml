module Workload = Mx_trace.Workload
module Trace = Mx_trace.Trace
module Mem_arch = Mx_mem.Mem_arch
module Conn_arch = Mx_connect.Conn_arch
module Memo_cache = Mx_util.Memo_cache

type fidelity = Estimate | Sampled of int * int | Exact

let fidelity_tag = function
  | Estimate -> "e"
  | Sampled (on, off) -> Printf.sprintf "s:%d/%d" on off
  | Exact -> "x"

let default_cache_capacity = 65536

let make_cache capacity =
  Memo_cache.create ~metrics_prefix:"eval.cache" ~capacity ()

let cache : Sim_result.t Memo_cache.t ref = ref (make_cache default_cache_capacity)

let set_cache_capacity capacity = cache := make_cache (max 0 capacity)
let cache_capacity () = Memo_cache.capacity !cache
let cache_stats () = Memo_cache.stats !cache
let clear_cache () = Memo_cache.clear !cache

(* Workload fingerprints are O(trace length); exploration evaluates the
   same workload thousands of times, so memoise the last one by physical
   identity (the length re-check guards against in-place Emitter
   appends).  A lock-free single slot is enough: racing domains all
   write the same value. *)
let wl_memo : (Workload.t * int * string) option Atomic.t = Atomic.make None

let workload_fingerprint (w : Workload.t) =
  let len = Trace.length w.Workload.trace in
  match Atomic.get wl_memo with
  | Some (w', len', fp) when w' == w && len' = len -> fp
  | _ ->
    let fp = Workload.fingerprint w in
    Atomic.set wl_memo (Some (w, len, fp));
    fp

let key ~base fidelity = base ^ "|" ^ fidelity_tag fidelity

type provenance = Computed | Cache_hit | Promoted

let provenance_tag = function
  | Computed -> "computed"
  | Cache_hit -> "hit"
  | Promoted -> "promoted"

let prov_of_hit = function true -> Cache_hit | false -> Computed

let eval_prov ~fidelity ~workload ~arch ?profile ~conn () =
  let c = !cache in
  let base =
    workload_fingerprint workload
    ^ "|" ^ Mem_arch.fingerprint arch
    ^ "|" ^ Conn_arch.fingerprint conn
  in
  match fidelity with
  | Estimate ->
    let profile =
      match profile with
      | Some p -> p
      | None -> invalid_arg "Eval.eval: Estimate fidelity requires ~profile"
    in
    let r, hit =
      Memo_cache.find_or_compute_prov c ~key:(key ~base Estimate) (fun () ->
          Estimator.estimate ~workload ~arch ~profile ~conn)
    in
    (r, prov_of_hit hit)
  | Exact ->
    let r, hit =
      Memo_cache.find_or_compute_prov c ~key:(key ~base Exact) (fun () ->
          Cycle_sim.run ~workload ~arch ~conn ())
    in
    (r, prov_of_hit hit)
  | Sampled (on, off) -> (
    (* an exact result for the same design is strictly higher fidelity:
       serve it instead of re-simulating with sampling *)
    match Memo_cache.peek c ~key:(key ~base Exact) with
    | Some r -> (r, Promoted)
    | None ->
      let r, hit =
        Memo_cache.find_or_compute_prov c
          ~key:(key ~base (Sampled (on, off)))
          (fun () -> Cycle_sim.run ~sample:(on, off) ~workload ~arch ~conn ())
      in
      (r, prov_of_hit hit))

let eval ~fidelity ~workload ~arch ?profile ~conn () =
  fst (eval_prov ~fidelity ~workload ~arch ?profile ~conn ())

(* Streamed evaluation shares the cache with the in-memory paths: the
   streamed fingerprint is the same string Workload.fingerprint would
   produce for the materialised trace, so a result computed from a
   binary file serves later in-memory requests for the same workload
   (and vice versa). *)
let eval_stream_prov ~fidelity ?seek ~(workload : Workload.streamed) ~arch
    ~conn () =
  let c = !cache in
  let base =
    Workload.streamed_fingerprint workload
    ^ "|" ^ Mem_arch.fingerprint arch
    ^ "|" ^ Conn_arch.fingerprint conn
  in
  match fidelity with
  | Estimate ->
    invalid_arg
      "Eval.eval_stream: Estimate fidelity needs a module-level profile, \
       which has no streaming form — materialise the workload instead"
  | Exact ->
    if seek = Some true then
      invalid_arg "Eval.eval_stream: ~seek requires Sampled fidelity";
    let r, hit =
      Memo_cache.find_or_compute_prov c ~key:(key ~base Exact) (fun () ->
          Cycle_sim.run_stream ~workload ~arch ~conn ())
    in
    (r, prov_of_hit hit)
  | Sampled (on, off) -> (
    match Memo_cache.peek c ~key:(key ~base Exact) with
    | Some r -> (r, Promoted)
    | None ->
      (* cold (seek) sampling skips module warming in the off-windows,
         so its numbers are a different estimator from warm sampling —
         keep the cache entries apart *)
      let k =
        key ~base (Sampled (on, off))
        ^ if seek = Some true then "|seek" else ""
      in
      let r, hit =
        Memo_cache.find_or_compute_prov c ~key:k (fun () ->
            Cycle_sim.run_stream ~sample:(on, off) ?seek ~workload ~arch ~conn
              ())
      in
      (r, prov_of_hit hit))

let eval_stream ~fidelity ?seek ~workload ~arch ~conn () =
  fst (eval_stream_prov ~fidelity ?seek ~workload ~arch ~conn ())
