module Workload = Mx_trace.Workload
module Trace = Mx_trace.Trace
module Mem_arch = Mx_mem.Mem_arch
module Conn_arch = Mx_connect.Conn_arch
module Memo_cache = Mx_util.Memo_cache
module Persist_cache = Mx_util.Persist_cache
module Metrics = Mx_util.Metrics

type fidelity = Estimate | Sampled of int * int | Exact

let fidelity_tag = function
  | Estimate -> "e"
  | Sampled (on, off) -> Printf.sprintf "s:%d/%d" on off
  | Exact -> "x"

let default_cache_capacity = 65536

let make_cache capacity =
  Memo_cache.create ~metrics_prefix:"eval.cache" ~capacity ()

let cache : Sim_result.t Memo_cache.t ref = ref (make_cache default_cache_capacity)

(* Shard provenance: which shard computed each cache entry.  A bounded
   side table keyed like the cache; purely observational — it feeds the
   [eval.cache.shard_*] counters that say whether a sharded run is
   being served by its own shard's work or by a sibling's.  Everything
   here is timing-dependent, hence the [cache.] metric segment. *)
let producers : (string, string) Hashtbl.t = Hashtbl.create 1024
let producers_mu = Mutex.create ()
let producers_bound = 262_144

let producers_clear () =
  Mutex.lock producers_mu;
  Hashtbl.reset producers;
  Mutex.unlock producers_mu

let set_cache_capacity capacity =
  cache := make_cache (max 0 capacity);
  producers_clear ()

let cache_capacity () = Memo_cache.capacity !cache
let cache_stats () = Memo_cache.stats !cache

let clear_cache () =
  Memo_cache.clear !cache;
  producers_clear ()

(* Workload fingerprints are O(trace length); exploration evaluates the
   same workload thousands of times, so memoise the last one by physical
   identity (the length re-check guards against in-place Emitter
   appends).  A lock-free single slot is enough: racing domains all
   write the same value. *)
let wl_memo : (Workload.t * int * string) option Atomic.t = Atomic.make None

let workload_fingerprint (w : Workload.t) =
  let len = Trace.length w.Workload.trace in
  match Atomic.get wl_memo with
  | Some (w', len', fp) when w' == w && len' = len -> fp
  | _ ->
    let fp = Workload.fingerprint w in
    Atomic.set wl_memo (Some (w, len, fp));
    fp

let key ~base fidelity = base ^ "|" ^ fidelity_tag fidelity

(* The persistent (disk) tier.  Bump the revision whenever a change to
   the estimator, the cycle simulator or the fingerprint scheme can
   alter any evaluation result: segments written under the old revision
   are then ignored on open, so a stale store silently self-invalidates
   instead of serving yesterday's numbers. *)
let model_revision = "conex-eval-1"

let persist : Persist_cache.t option ref = ref None

let close_persist () =
  match !persist with
  | None -> ()
  | Some t ->
    persist := None;
    Persist_cache.close t

let open_persist ~dir =
  close_persist ();
  match
    Persist_cache.open_dir ~metrics_prefix:"eval.cache.disk"
      ~revision:model_revision ~dir ()
  with
  | Ok t ->
    persist := Some t;
    Ok ()
  | Error e -> Error e

let sync_persist () = Option.iter Persist_cache.sync !persist
let persist_stats () = Option.map Persist_cache.stats !persist

let persist_get k =
  match !persist with
  | None -> None
  | Some t -> (
    match Persist_cache.get t ~key:k with
    | None -> None
    | Some wire -> Sim_result.of_wire wire (* unparseable entry = miss *))

let persist_put k r =
  match !persist with
  | None -> ()
  | Some t -> Persist_cache.put t ~key:k (Sim_result.to_wire r)

type provenance = Computed | Cache_hit | Disk_hit | Promoted

let provenance_tag = function
  | Computed -> "computed"
  | Cache_hit -> "hit"
  | Disk_hit -> "hit_disk"
  | Promoted -> "promoted"

(* hot tier -> disk tier -> compute, inside the memo closure so the
   single-flight guarantee covers the disk read and the write-back:
   concurrent requests for one key do one disk probe and at most one
   evaluation, and every waiter sees the same value. *)
let find_via_tiers c ~key:k f =
  let disk = ref false in
  let r, mem_hit =
    Memo_cache.find_or_compute_prov c ~key:k (fun () ->
        match persist_get k with
        | Some r ->
          disk := true;
          r
        | None ->
          let r = f () in
          persist_put k r;
          r)
  in
  let prov = if mem_hit then Cache_hit else if !disk then Disk_hit else Computed in
  (r, prov)

(* Exact-serves-Sampled promotion through the disk tier: when the hot
   tier has no Exact entry, probe the store before settling for a
   sampled simulation, and re-home a disk hit under its Exact key so
   later peeks promote from memory. *)
let promote_from_disk c ~exact_key =
  match persist_get exact_key with
  | None -> None
  | Some r ->
    let r, _ = Memo_cache.find_or_compute_prov c ~key:exact_key (fun () -> r) in
    Some r

let note_shard ~shard ~key prov =
  match shard with
  | None -> ()
  | Some shard -> (
    match prov with
    (* a disk hit made the entry resident on this shard's behalf: for
       shard-locality accounting it is this shard's production *)
    | Computed | Disk_hit ->
      Mutex.lock producers_mu;
      if Hashtbl.length producers >= producers_bound then
        Hashtbl.reset producers;
      Hashtbl.replace producers key shard;
      Mutex.unlock producers_mu
    | Cache_hit | Promoted ->
      Mutex.lock producers_mu;
      let owner = Hashtbl.find_opt producers key in
      Mutex.unlock producers_mu;
      if Metrics.is_on Metrics.global then
        Metrics.incr Metrics.global
          (match owner with
          | Some o when o = shard -> "eval.cache.shard_local_hits"
          | Some _ -> "eval.cache.shard_remote_hits"
          | None -> "eval.cache.shard_unknown_hits"))

let eval_prov ~fidelity ~workload ~arch ?profile ?shard ~conn () =
  let c = !cache in
  let base =
    workload_fingerprint workload
    ^ "|" ^ Mem_arch.fingerprint arch
    ^ "|" ^ Conn_arch.fingerprint conn
  in
  match fidelity with
  | Estimate ->
    let profile =
      match profile with
      | Some p -> p
      | None -> invalid_arg "Eval.eval: Estimate fidelity requires ~profile"
    in
    let k = key ~base Estimate in
    let r, prov =
      find_via_tiers c ~key:k (fun () ->
          Estimator.estimate ~workload ~arch ~profile ~conn)
    in
    note_shard ~shard ~key:k prov;
    (r, prov)
  | Exact ->
    let k = key ~base Exact in
    let r, prov =
      find_via_tiers c ~key:k (fun () -> Cycle_sim.run ~workload ~arch ~conn ())
    in
    note_shard ~shard ~key:k prov;
    (r, prov)
  | Sampled (on, off) -> (
    (* an exact result for the same design is strictly higher fidelity:
       serve it instead of re-simulating with sampling *)
    let exact_key = key ~base Exact in
    match Memo_cache.peek c ~key:exact_key with
    | Some r ->
      note_shard ~shard ~key:exact_key Promoted;
      (r, Promoted)
    | None -> (
      match promote_from_disk c ~exact_key with
      | Some r ->
        note_shard ~shard ~key:exact_key Promoted;
        (r, Promoted)
      | None ->
        let k = key ~base (Sampled (on, off)) in
        let r, prov =
          find_via_tiers c ~key:k (fun () ->
              Cycle_sim.run ~sample:(on, off) ~workload ~arch ~conn ())
        in
        note_shard ~shard ~key:k prov;
        (r, prov)))

let eval ~fidelity ~workload ~arch ?profile ?shard ~conn () =
  fst (eval_prov ~fidelity ~workload ~arch ?profile ?shard ~conn ())

(* Streamed evaluation shares the cache with the in-memory paths: the
   streamed fingerprint is the same string Workload.fingerprint would
   produce for the materialised trace, so a result computed from a
   binary file serves later in-memory requests for the same workload
   (and vice versa). *)
let eval_stream_prov ~fidelity ?seek ~(workload : Workload.streamed) ~arch
    ~conn () =
  let c = !cache in
  let base =
    Workload.streamed_fingerprint workload
    ^ "|" ^ Mem_arch.fingerprint arch
    ^ "|" ^ Conn_arch.fingerprint conn
  in
  match fidelity with
  | Estimate ->
    invalid_arg
      "Eval.eval_stream: Estimate fidelity needs a module-level profile, \
       which has no streaming form — materialise the workload instead"
  | Exact ->
    if seek = Some true then
      invalid_arg "Eval.eval_stream: ~seek requires Sampled fidelity";
    find_via_tiers c ~key:(key ~base Exact) (fun () ->
        Cycle_sim.run_stream ~workload ~arch ~conn ())
  | Sampled (on, off) -> (
    let exact_key = key ~base Exact in
    match Memo_cache.peek c ~key:exact_key with
    | Some r -> (r, Promoted)
    | None -> (
      match promote_from_disk c ~exact_key with
      | Some r -> (r, Promoted)
      | None ->
        (* cold (seek) sampling skips module warming in the off-windows,
           so its numbers are a different estimator from warm sampling —
           keep the cache entries apart *)
        let k =
          key ~base (Sampled (on, off))
          ^ if seek = Some true then "|seek" else ""
        in
        find_via_tiers c ~key:k (fun () ->
            Cycle_sim.run_stream ~sample:(on, off) ?seek ~workload ~arch ~conn
              ())))

let eval_stream ~fidelity ?seek ~workload ~arch ~conn () =
  fst (eval_stream_prov ~fidelity ?seek ~workload ~arch ~conn ())
