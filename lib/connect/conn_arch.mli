(** A connectivity architecture: an assignment of every logical
    connection (cluster) to a physical component instance from the
    library — e.g. Fig. 2(b) of the paper: two AMBA buses, one
    dedicated connection, one off-chip bus. *)

type binding = { cluster : Cluster.t; component : Component.t }

type t = private {
  bindings : binding list;
  cost_gates : int;  (** total connectivity area *)
}

val make : (Cluster.t * Component.t) list -> t
(** @raise Invalid_argument when a component cannot legally carry its
    cluster (fan-in exceeded, or boundary class mismatch). *)

val feasible : Cluster.t -> Component.t -> bool
(** The static legality check [make] enforces per binding. *)

val lookup : t -> Channel.t -> binding
(** The binding that carries a channel (by endpoints).
    @raise Not_found when the channel is not in any cluster. *)

val sharers : t -> Channel.t -> int
(** Number of channels sharing the component that carries this
    channel. *)

val fingerprint : t -> string
(** Canonical structural fingerprint, insensitive to the order of
    bindings and of channels within a cluster (and to channel
    direction): two architectures binding the same channel sets to the
    same library components fingerprint identically, however they were
    assembled.  Changing a component or moving a channel between
    clusters changes the fingerprint.  Safe as a content-address for
    evaluation results. *)

val describe : t -> string
(** e.g. ["ahb32{CPU<->cache} + off32{cache<->DRAM}"]. *)

val pp : Format.formatter -> t -> unit
