module Metrics = Mx_util.Metrics
module Event_log = Mx_util.Event_log

let choices ~onchip ~offchip (cl : Cluster.t) =
  let pool = if cl.Cluster.offchip then offchip else onchip in
  List.filter (Conn_arch.feasible cl) pool

(* Saturating product of the per-cluster choice counts: the size the
   cartesian enumeration would have without the [max_designs] cap. *)
let full_space per_cluster =
  List.fold_left
    (fun acc (_, cs) ->
      let n = List.length cs in
      if n = 0 then 0
      else if acc > max_int / max 1 n then max_int
      else acc * n)
    1 per_cluster

let enumerate ?(max_designs = max_int) ~onchip ~offchip clusters =
  let per_cluster = List.map (fun cl -> (cl, choices ~onchip ~offchip cl)) clusters in
  if List.exists (fun (_, cs) -> cs = []) per_cluster then begin
    Metrics.incr Metrics.global "assign.infeasible_levels";
    if Event_log.is_on Event_log.global then
      Event_log.emit Event_log.global ~stage:"assign" "assign.level_infeasible"
        [
          ("clusters", Event_log.Int (List.length clusters));
          ("reason", Event_log.Str "no_feasible_component");
        ];
    []
  end
  else begin
    let out = ref [] and count = ref 0 in
    let rec go acc = function
      | [] ->
        if !count < max_designs then begin
          out := Conn_arch.make (List.rev acc) :: !out;
          incr count
        end
      | (cl, cs) :: rest ->
        List.iter (fun c -> if !count < max_designs then go ((cl, c) :: acc) rest) cs
    in
    go [] per_cluster;
    if Metrics.is_on Metrics.global then begin
      Metrics.incr Metrics.global ~by:!count "assign.enumerated";
      Metrics.incr Metrics.global
        ~by:(max 0 (full_space per_cluster - !count))
        "assign.cap_pruned"
    end;
    if Event_log.is_on Event_log.global then
      Event_log.emit Event_log.global ~stage:"assign" "assign.level"
        [
          ("clusters", Event_log.Int (List.length clusters));
          ("enumerated", Event_log.Int !count);
          ("cap_pruned", Event_log.Int (max 0 (full_space per_cluster - !count)));
        ];
    List.rev !out
  end

let enumerate_levels ?(order = Cluster.Lowest_bandwidth_first)
    ?(max_designs_per_level = max_int) ~onchip ~offchip channels =
  let seen = Hashtbl.create 64 in
  let levels = Cluster.levels_ordered order channels in
  Metrics.incr Metrics.global ~by:(List.length levels) "assign.levels";
  let kept =
    levels
    |> List.concat_map (fun level ->
           enumerate ~max_designs:max_designs_per_level ~onchip ~offchip level)
    |> List.filter (fun arch ->
           let key = Conn_arch.describe arch in
           if Hashtbl.mem seen key then begin
             Metrics.incr Metrics.global "assign.dedup_pruned";
             if Event_log.is_on Event_log.global then
               Event_log.emit Event_log.global ~stage:"assign" "assign.rejected"
                 [
                   ("conn", Event_log.Str key);
                   ("reason", Event_log.Str "duplicate");
                 ];
             false
           end
           else begin
             Hashtbl.add seen key ();
             if Event_log.is_on Event_log.global then
               Event_log.emit Event_log.global ~stage:"assign" "assign.kept"
                 [ ("conn", Event_log.Str key) ];
             true
           end)
  in
  Metrics.incr Metrics.global ~by:(List.length kept) "assign.kept";
  kept

let count_levels channels = List.length (Cluster.levels channels)
