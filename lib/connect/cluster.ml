type t = { channels : Channel.t list; bandwidth : float; offchip : bool }

let of_channel (c : Channel.t) =
  { channels = [ c ]; bandwidth = c.bandwidth; offchip = Channel.crosses_chip c }

let initial channels = List.map of_channel channels

let describe t =
  let names = List.map Channel.endpoints_to_string t.channels in
  Printf.sprintf "{%s}" (String.concat ", " names)

let merge a b =
  if a.offchip <> b.offchip then
    invalid_arg "Cluster.merge: cannot mix on-chip and off-chip channels";
  Mx_util.Metrics.incr Mx_util.Metrics.global "cluster.merges";
  let merged =
    {
      channels = a.channels @ b.channels;
      bandwidth = a.bandwidth +. b.bandwidth;
      offchip = a.offchip;
    }
  in
  (let log = Mx_util.Event_log.global in
   if Mx_util.Event_log.is_on log then
     Mx_util.Event_log.emit log ~stage:"cluster" "cluster.merge"
       [
         ("a", Mx_util.Event_log.Str (describe a));
         ("b", Mx_util.Event_log.Str (describe b));
         ("bandwidth", Mx_util.Event_log.Float merged.bandwidth);
         ("offchip", Mx_util.Event_log.Bool merged.offchip);
       ]);
  merged

type order =
  | Lowest_bandwidth_first
  | Highest_bandwidth_first
  | Random_order of int

let merge_step_ordered order clusters =
  (* candidate pair: the two lowest-bandwidth clusters within one
     boundary class; among the two classes pick the pair with the
     smaller combined bandwidth (the paper merges lowest-requirement
     channels first) *)
  let pair_of cls =
    match order with
    | Lowest_bandwidth_first | Highest_bandwidth_first -> (
      let cmp a b = Float.compare a.bandwidth b.bandwidth in
      let sorted =
        match order with
        | Highest_bandwidth_first -> List.stable_sort (fun a b -> cmp b a) cls
        | _ -> List.stable_sort cmp cls
      in
      match sorted with a :: b :: _ -> Some (a, b) | _ -> None)
    | Random_order seed -> (
      match cls with
      | _ :: _ :: _ ->
        (* a deterministic pseudo-random pair derived from the seed and
           the current cluster population *)
        let n = List.length cls in
        let g = Mx_util.Prng.create ~seed:(seed + (n * 7919)) in
        let i = Mx_util.Prng.int g ~bound:n in
        let j0 = Mx_util.Prng.int g ~bound:(n - 1) in
        let j = if j0 >= i then j0 + 1 else j0 in
        Some (List.nth cls i, List.nth cls j)
      | _ -> None)
  in
  let lowest_pair = pair_of in
  let onchip = List.filter (fun c -> not c.offchip) clusters
  and offchip = List.filter (fun c -> c.offchip) clusters in
  let pick =
    match (lowest_pair onchip, lowest_pair offchip) with
    | None, None -> None
    | Some p, None | None, Some p -> Some p
    | Some (a1, b1), Some (a2, b2) -> (
      match order with
      | Lowest_bandwidth_first ->
        if a1.bandwidth +. b1.bandwidth <= a2.bandwidth +. b2.bandwidth then
          Some (a1, b1)
        else Some (a2, b2)
      | Highest_bandwidth_first ->
        if a1.bandwidth +. b1.bandwidth >= a2.bandwidth +. b2.bandwidth then
          Some (a1, b1)
        else Some (a2, b2)
      | Random_order _ -> Some (a1, b1))
  in
  match pick with
  | None -> None
  | Some (a, b) ->
    let merged = merge a b in
    let rest = List.filter (fun c -> c != a && c != b) clusters in
    Some (merged :: rest)

let merge_step clusters = merge_step_ordered Lowest_bandwidth_first clusters

let levels_ordered order channels =
  let rec go level acc =
    match merge_step_ordered order level with
    | None -> List.rev (level :: acc)
    | Some next -> go next (level :: acc)
  in
  let ls = go (initial channels) [] in
  Mx_util.Metrics.observe Mx_util.Metrics.global ~unit_:"levels"
    "cluster.levels_per_brg"
    (float_of_int (List.length ls));
  ls

let levels channels = levels_ordered Lowest_bandwidth_first channels

let pp fmt t =
  Format.fprintf fmt "%s bw %.4f%s" (describe t) t.bandwidth
    (if t.offchip then " (off-chip)" else "")
