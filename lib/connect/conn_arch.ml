type binding = { cluster : Cluster.t; component : Component.t }

type t = { bindings : binding list; cost_gates : int }

let feasible (cl : Cluster.t) (c : Component.t) =
  List.length cl.Cluster.channels <= c.Component.max_channels
  && cl.Cluster.offchip = c.Component.offchip

let make pairs =
  let bindings =
    List.map
      (fun (cluster, component) ->
        if not (feasible cluster component) then
          invalid_arg
            (Printf.sprintf "Conn_arch.make: %s cannot carry %s"
               component.Component.name (Cluster.describe cluster));
        { cluster; component })
      pairs
  in
  let cost_gates =
    List.fold_left
      (fun acc b ->
        acc
        + Conn_cost.cost_gates b.component
            ~channels:(List.length b.cluster.Cluster.channels))
      0 bindings
  in
  { bindings; cost_gates }

let lookup t (ch : Channel.t) =
  match
    List.find_opt
      (fun b -> List.exists (Channel.same_endpoints ch) b.cluster.Cluster.channels)
      t.bindings
  with
  | Some b -> b
  | None -> raise Not_found

let sharers t ch = List.length (lookup t ch).cluster.Cluster.channels

(* Canonical order-insensitive fingerprint.  A channel is identified by
   its endpoint pair (direction-insensitive, like [Channel.same_endpoints]);
   channels within a cluster and bindings within the architecture are
   sorted, so two architectures assembled in different orders — or from
   differently-ordered clusters — fingerprint identically iff they bind
   the same channel sets to the same component types. *)
let fingerprint t =
  let channel (ch : Channel.t) =
    let a = Channel.node_to_string ch.Channel.src
    and b = Channel.node_to_string ch.Channel.dst in
    if String.compare a b <= 0 then a ^ "-" ^ b else b ^ "-" ^ a
  in
  let binding b =
    let chans =
      List.sort String.compare (List.map channel b.cluster.Cluster.channels)
    in
    b.component.Component.name ^ "{" ^ String.concat "," chans ^ "}"
  in
  "conn:"
  ^ String.concat "+" (List.sort String.compare (List.map binding t.bindings))

let describe t =
  t.bindings
  |> List.map (fun b ->
         Printf.sprintf "%s%s" b.component.Component.name
           (Cluster.describe b.cluster))
  |> String.concat " + "

let pp fmt t =
  Format.fprintf fmt "%s (%d gates)" (describe t) t.cost_gates
