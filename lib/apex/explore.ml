module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Profile = Mx_trace.Profile
module Region = Mx_trace.Region

type candidate = {
  arch : Mem_arch.t;
  cost_gates : int;
  miss_ratio : float;
  profile : Mem_sim.stats;
}

type config = {
  caches : Params.cache list;
  include_no_cache : bool;
  sbufs : Params.stream_buffer list;
  lldmas : Params.lldma list;
  l2s : Params.cache list;
  victims : Params.victim list;
  write_buffers : Params.write_buffer list;
  sram_budget : int;
  max_selected : int;
}

let default_config =
  {
    caches = Mx_mem.Module_lib.caches;
    include_no_cache = true;
    sbufs = Mx_mem.Module_lib.stream_buffers;
    lldmas = Mx_mem.Module_lib.lldmas;
    l2s = Mx_mem.Module_lib.l2_caches;
    victims = Mx_mem.Module_lib.victims;
    write_buffers = Mx_mem.Module_lib.write_buffers;
    sram_budget = 16 * 1024;
    max_selected = 5;
  }

let reduced_config =
  {
    caches =
      List.filteri (fun i _ -> i mod 3 = 0) Mx_mem.Module_lib.caches;
    include_no_cache = false;
    sbufs = [ List.hd Mx_mem.Module_lib.stream_buffers ];
    lldmas = [ List.hd Mx_mem.Module_lib.lldmas ];
    l2s = [];
    victims = [];
    write_buffers = [];
    sram_budget = 8 * 1024;
    max_selected = 4;
  }

(* Regions a scratchpad mapping would take, greedily by traffic density,
   within the budget. *)
let sram_plan cfg (p : Profile.t) =
  if cfg.sram_budget <= 0 then ([], 0)
  else begin
    let indexed =
      Array.to_list p.Profile.per_region
      |> List.filter (fun (s : Profile.region_stats) ->
             Profile.pattern p s.region = Region.Indexed
             && s.footprint > 0
             && s.footprint <= cfg.sram_budget)
      |> List.sort (fun (a : Profile.region_stats) b ->
             compare
               (float_of_int b.bytes /. float_of_int (max 1 b.footprint))
               (float_of_int a.bytes /. float_of_int (max 1 a.footprint)))
    in
    let rec take used acc = function
      | [] -> (List.rev acc, used)
      | (s : Profile.region_stats) :: rest ->
        if used + s.footprint <= cfg.sram_budget then
          take (used + s.footprint) (s.region :: acc) rest
        else take used acc rest
    in
    take 0 [] indexed
  end

let regions_with cfg (p : Profile.t) pat =
  ignore cfg;
  Array.to_list p.Profile.per_region
  |> List.filter_map (fun (s : Profile.region_stats) ->
         if Profile.pattern p s.region = pat then Some s.region else None)

let label_of ~cache ~sram ~sbuf ~lldma ~l2 ~victim ~wbuf =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        Option.map
          (fun (c : Params.cache) ->
            (* non-default policies are part of the design's identity,
               so they show in the label; the default stays "C%dK" so
               existing output is unchanged *)
            if c.c_policy = Params.default_policy then
              Printf.sprintf "C%dK" (c.c_size / 1024)
            else
              Printf.sprintf "C%dK-%s" (c.c_size / 1024)
                (Params.policy_to_string c.c_policy))
          cache;
        (if sram then Some "SP" else None);
        Option.map
          (fun (s : Params.stream_buffer) ->
            Printf.sprintf "SB%d" s.sb_streams)
          sbuf;
        Option.map
          (fun (l : Params.lldma) -> Printf.sprintf "LL%d" l.ll_entries)
          lldma;
        Option.map
          (fun (c : Params.cache) -> Printf.sprintf "L2-%dK" (c.c_size / 1024))
          l2;
        Option.map
          (fun (v : Params.victim) -> Printf.sprintf "V%d" v.v_entries)
          victim;
        Option.map
          (fun (w : Params.write_buffer) -> Printf.sprintf "WB%d" w.wb_entries)
          wbuf;
      ]
  in
  if parts = [] then "none" else String.concat "+" parts

let build_arch (p : Profile.t) ~cache ~sram_regions ~sram_bytes ~sbuf ~lldma
    ~l2 ~victim ~wbuf =
  let nregions = List.length p.Profile.workload.Mx_trace.Workload.regions in
  let bindings = Array.make nregions Mem_arch.To_cache in
  let set pat binding =
    Array.iter
      (fun (s : Profile.region_stats) ->
        if Profile.pattern p s.region = pat then
          bindings.(s.region.Region.id) <- binding)
      p.Profile.per_region
  in
  if sbuf <> None then set Region.Stream Mem_arch.To_sbuf;
  if lldma <> None then set Region.Self_indirect Mem_arch.To_lldma;
  List.iter
    (fun (r : Region.t) -> bindings.(r.Region.id) <- Mem_arch.To_sram)
    sram_regions;
  let sram =
    if sram_regions = [] then None
    else Some (Mx_mem.Module_lib.sram_for_bytes sram_bytes)
  in
  Mem_arch.make
    ~label:
      (label_of ~cache ~sram:(sram <> None) ~sbuf ~lldma ~l2 ~victim ~wbuf)
    ?cache ?sbuf ?lldma ?sram ?l2 ?victim ?wbuf ~bindings ()

let candidates cfg (p : Profile.t) =
  let streams = regions_with cfg p Region.Stream in
  let chases = regions_with cfg p Region.Self_indirect in
  let sram_regions, sram_bytes = sram_plan cfg p in
  let cache_opts =
    (if cfg.include_no_cache then [ None ] else [])
    @ List.map (fun c -> Some c) cfg.caches
  in
  let sbuf_opts =
    if streams = [] then [ None ]
    else None :: List.map (fun s -> Some s) cfg.sbufs
  in
  let lldma_opts =
    if chases = [] then [ None ]
    else None :: List.map (fun l -> Some l) cfg.lldmas
  in
  let sram_opts =
    if sram_regions = [] then [ false ] else [ false; true ]
  in
  List.concat_map
    (fun cache ->
      List.concat_map
        (fun sbuf ->
          List.concat_map
            (fun lldma ->
              List.concat_map
                (fun use_sram ->
                  let sram_regions =
                    if use_sram then sram_regions else []
                  in
                  (* the completely empty architecture (no modules at
                     all) is not a design, just the off-chip baseline *)
                  if
                    cache = None && sbuf = None && lldma = None
                    && sram_regions = []
                  then []
                  else begin
                    (* victim buffers only make sense behind a cache;
                       write buffers only where direct DRAM stores occur
                       (cache-less architectures) *)
                    let victim_opts =
                      if cache = None then [ None ]
                      else None :: List.map (fun v -> Some v) cfg.victims
                    and wbuf_opts =
                      if cache <> None then [ None ]
                      else None :: List.map (fun w -> Some w) cfg.write_buffers
                    and l2_opts =
                      match cache with
                      | None -> [ None ]
                      | Some (c : Params.cache) ->
                        None
                        :: List.filter_map
                             (fun (l2 : Params.cache) ->
                               if
                                 l2.c_size >= c.c_size
                                 && l2.c_line >= c.c_line
                               then Some (Some l2)
                               else None)
                             cfg.l2s
                    in
                    List.concat_map
                      (fun victim ->
                        List.concat_map
                          (fun wbuf ->
                            List.map
                              (fun l2 ->
                                build_arch p ~cache ~sram_regions ~sram_bytes
                                  ~sbuf ~lldma ~l2 ~victim ~wbuf)
                              l2_opts)
                          wbuf_opts)
                      victim_opts
                  end)
                sram_opts)
            lldma_opts)
        sbuf_opts)
    cache_opts

let evaluate (p : Profile.t) arch =
  let w = p.Profile.workload in
  let msim = Mem_sim.create arch ~regions:w.Mx_trace.Workload.regions in
  let stats = Mem_sim.run msim w.Mx_trace.Workload.trace in
  {
    arch;
    cost_gates = Mem_arch.cost_gates arch;
    miss_ratio = Mem_sim.miss_ratio stats;
    profile = stats;
  }

let explore ?(config = default_config) p =
  List.map (evaluate p) (candidates config p)

let pareto cands =
  Mx_util.Pareto.front2
    ~x:(fun c -> float_of_int c.cost_gates)
    ~y:(fun c -> c.miss_ratio)
    cands

let thin ~max_selected pts =
  let n = List.length pts in
  if n <= max_selected || max_selected <= 0 then pts
  else begin
    let arr = Array.of_list pts in
    (* evenly spaced indices, always keeping both extremes *)
    List.init max_selected (fun i ->
        arr.(i * (n - 1) / (max_selected - 1)))
  end

let is_traditional (c : candidate) =
  c.arch.Mem_arch.cache <> None
  && c.arch.Mem_arch.l2 = None
  && c.arch.Mem_arch.sbuf = None
  && c.arch.Mem_arch.lldma = None
  && c.arch.Mem_arch.sram = None
  && c.arch.Mem_arch.victim = None
  && c.arch.Mem_arch.wbuf = None

let select ?(config = default_config) p =
  let all = explore ~config p in
  let front = pareto all in
  (* The paper excludes "designs exhibiting very bad performance (many
     times worse than the best designs)" from further exploration; keep
     the front within a band of the best miss ratio. *)
  let best =
    List.fold_left (fun acc c -> Float.min acc c.miss_ratio) infinity front
  in
  let keep c =
    c.miss_ratio <= Float.max (2.0 *. best) (best +. 0.02)
  in
  let banded = List.filter keep front in
  let banded = if banded = [] then front else banded in
  let thinned = thin ~max_selected:config.max_selected banded in
  (* Always hand ConEx a traditional cache-only architecture: the
     paper's exploration keeps the conventional design as its baseline
     (designs a/b of Fig. 6). *)
  if List.exists is_traditional thinned then thinned
  else
    match
      List.filter is_traditional all
      |> List.sort (fun a b -> Float.compare a.miss_ratio b.miss_ratio)
    with
    | [] -> thinned
    | best_traditional :: _ ->
      Mx_util.Pareto.sort_by
        (fun c -> float_of_int c.cost_gates)
        (best_traditional :: thinned)
