(* Manifests are small JSON documents rendered by hand (like every
   other emitter in the repo) and read back through Mx_util.Json.  The
   canonical/exempt split mirrors the metrics determinism contract so
   the whole observability surface tells one story: anything named
   timing/cache/sched may vary between schedules, nothing else may. *)

module Json = Mx_util.Json
module Metrics = Mx_util.Metrics

type front_point = { f_cost : float; f_latency : float; f_energy : float }

type manifest = {
  version : int;
  run_id : string;
  kind : string;
  created_at : string;
  workload_name : string;
  workload_fp : string;
  config_kv : (string * string) list;
  sched_kv : (string * string) list;
  counters : (string * int) list;
  n_estimates : int;
  n_simulations : int;
  front : front_point list;
  interrupted : bool;
  wall_seconds : float;
  cache_hits : int;
  cache_misses : int;
}

let schema_version = 1

(* -- run identity --------------------------------------------------------- *)

(* FNV-1a 64-bit over the canonical identity: kind, workload
   fingerprint, deterministic config.  Same exploration, same id —
   whatever the schedule. *)
let fnv1a64 s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let run_id_of ~kind ~workload_fp ~config_kv =
  let b = Buffer.create 128 in
  Buffer.add_string b kind;
  Buffer.add_char b '\n';
  Buffer.add_string b workload_fp;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\n';
      Buffer.add_string b (k ^ "=" ^ v))
    config_kv;
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents b))

(* -- construction --------------------------------------------------------- *)

let sort_kv kv = List.sort (fun (a, _) (b, _) -> String.compare a b) kv

let has_segment needle name =
  let nl = String.length needle and l = String.length name in
  let rec go i =
    if i + nl > l then false
    else if String.sub name i nl = needle && (i = 0 || name.[i - 1] = '.')
    then true
    else go (i + 1)
  in
  go 0

let timestamp_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let make ~kind ~config_kv ~sched_kv ~(result : Explore.result) =
  let config_kv = sort_kv config_kv and sched_kv = sort_kv sched_kv in
  let workload_fp = Mx_trace.Workload.fingerprint result.Explore.workload in
  (* shard.* and task_pool.* describe the execution engine and vary
     with --shards, so they stay out of the (schedule-invariant)
     manifest even though they pass the jobs-parity filter *)
  let counters =
    Metrics.deterministic_counters (Metrics.snapshot Metrics.global)
    |> List.filter (fun (name, _) ->
           not (has_segment "shard." name || has_segment "task_pool." name))
  in
  let front =
    result.Explore.pareto_cost_perf
    |> List.map (fun d ->
           {
             f_cost = Design.cost d;
             f_latency = Design.latency d;
             f_energy = Design.energy d;
           })
    |> List.sort (fun a b ->
           match Float.compare a.f_cost b.f_cost with
           | 0 -> Float.compare a.f_latency b.f_latency
           | c -> c)
  in
  {
    version = schema_version;
    run_id = run_id_of ~kind ~workload_fp ~config_kv;
    kind;
    created_at = timestamp_now ();
    workload_name = result.Explore.workload.Mx_trace.Workload.name;
    workload_fp;
    config_kv;
    sched_kv;
    counters;
    n_estimates = result.Explore.n_estimates;
    n_simulations = result.Explore.n_simulations;
    front;
    interrupted = result.Explore.interrupted;
    wall_seconds = result.Explore.wall_seconds;
    cache_hits = Metrics.counter_value Metrics.global "eval.cache.hits";
    cache_misses = Metrics.counter_value Metrics.global "eval.cache.misses";
  }

let cache_hit_rate m =
  let total = m.cache_hits + m.cache_misses in
  if total > 0 then float_of_int m.cache_hits /. float_of_int total else 0.0

(* -- serialisation -------------------------------------------------------- *)

let num = Json.number

let add_canonical b m =
  Buffer.add_string b
    (Printf.sprintf "{\"version\": %d, \"run_id\": \"%s\", \"kind\": \"%s\",\n"
       m.version (Json.escape m.run_id) (Json.escape m.kind));
  Buffer.add_string b
    (Printf.sprintf
       " \"workload\": {\"name\": \"%s\", \"fingerprint\": \"%s\"},\n"
       (Json.escape m.workload_name)
       (Json.escape m.workload_fp));
  let kv_obj name kv render =
    Buffer.add_string b (Printf.sprintf " \"%s\": {" name);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf "\"%s\": %s" (Json.escape k) (render v)))
      kv;
    Buffer.add_string b "}"
  in
  kv_obj "config" m.config_kv (fun v -> "\"" ^ Json.escape v ^ "\"");
  Buffer.add_string b ",\n";
  kv_obj "counters" m.counters string_of_int;
  Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       " \"funnel\": {\"n_estimates\": %d, \"n_simulations\": %d, \
        \"interrupted\": %b},\n"
       m.n_estimates m.n_simulations m.interrupted);
  Buffer.add_string b " \"front\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"cost\": %s, \"latency\": %s, \"energy\": %s}"
           (num p.f_cost) (num p.f_latency) (num p.f_energy)))
    m.front;
  Buffer.add_string b "]"

let canonical_json m =
  let b = Buffer.create 1024 in
  add_canonical b m;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_json m =
  let b = Buffer.create 1024 in
  add_canonical b m;
  Buffer.add_string b
    (Printf.sprintf ",\n \"created_at\": \"%s\",\n" (Json.escape m.created_at));
  Buffer.add_string b
    (Printf.sprintf " \"timing\": {\"wall_seconds\": %s},\n"
       (num m.wall_seconds));
  Buffer.add_string b
    (Printf.sprintf " \"cache\": {\"hits\": %d, \"misses\": %d},\n"
       m.cache_hits m.cache_misses);
  Buffer.add_string b " \"sched\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": \"%s\"" (Json.escape k) (Json.escape v)))
    m.sched_kv;
  Buffer.add_string b "}}\n";
  Buffer.contents b

let of_json text =
  match Json.parse (String.trim text) with
  | Error m -> Error m
  | Ok doc ->
    let ( let* ) r f = Result.bind r f in
    let str_field ?inside k =
      let v =
        match inside with
        | None -> Json.member k doc
        | Some outer -> Option.bind (Json.member outer doc) (Json.member k)
      in
      match Option.bind v Json.to_string_opt with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "missing or non-string %S" k)
    in
    let int_field ?inside k =
      let v =
        match inside with
        | None -> Json.member k doc
        | Some outer -> Option.bind (Json.member outer doc) (Json.member k)
      in
      match Option.bind v Json.to_int_opt with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "missing or non-integer %S" k)
    in
    let kv_of k conv =
      match Json.member k doc with
      | Some (Json.Obj fields) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (key, v) :: rest -> (
            match conv v with
            | Some v -> go ((key, v) :: acc) rest
            | None -> Error (Printf.sprintf "bad value in %S for %S" k key))
        in
        go [] fields
      | Some _ -> Error (Printf.sprintf "%S is not an object" k)
      | None -> Ok []
    in
    let* version = int_field "version" in
    let* run_id = str_field "run_id" in
    let* kind = str_field "kind" in
    let* workload_name = str_field ~inside:"workload" "name" in
    let* workload_fp = str_field ~inside:"workload" "fingerprint" in
    let* config_kv = kv_of "config" Json.to_string_opt in
    let* sched_kv = kv_of "sched" Json.to_string_opt in
    let* counters = kv_of "counters" Json.to_int_opt in
    let* n_estimates = int_field ~inside:"funnel" "n_estimates" in
    let* n_simulations = int_field ~inside:"funnel" "n_simulations" in
    let interrupted =
      Option.value ~default:false
        (Option.bind
           (Option.bind (Json.member "funnel" doc)
              (Json.member "interrupted"))
           Json.to_bool_opt)
    in
    let* front =
      match Json.member "front" doc with
      | Some (Json.Arr ps) ->
        let point p =
          let f k =
            Option.value ~default:0.0
              (Option.bind (Json.member k p) Json.to_float_opt)
          in
          { f_cost = f "cost"; f_latency = f "latency"; f_energy = f "energy" }
        in
        Ok (List.map point ps)
      | Some _ -> Error "\"front\" is not an array"
      | None -> Ok []
    in
    let created_at =
      Option.value ~default:""
        (Option.bind (Json.member "created_at" doc) Json.to_string_opt)
    in
    let wall_seconds =
      Option.value ~default:0.0
        (Option.bind
           (Option.bind (Json.member "timing" doc)
              (Json.member "wall_seconds"))
           Json.to_float_opt)
    in
    let cache_int k =
      Option.value ~default:0
        (Option.bind
           (Option.bind (Json.member "cache" doc) (Json.member k))
           Json.to_int_opt)
    in
    Ok
      {
        version;
        run_id;
        kind;
        created_at;
        workload_name;
        workload_fp;
        config_kv;
        sched_kv;
        counters;
        n_estimates;
        n_simulations;
        front;
        interrupted;
        wall_seconds;
        cache_hits = cache_int "hits";
        cache_misses = cache_int "misses";
      }

(* -- the ledger directory ------------------------------------------------- *)

let ensure_dir dir =
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  match mk dir with
  | () -> if Sys.is_directory dir then Ok () else Error (dir ^ ": not a directory")
  | exception Unix.Unix_error (e, _, _) ->
    Error (dir ^ ": " ^ Unix.error_message e)

let compact_timestamp s =
  String.to_seq s
  |> Seq.filter (fun c ->
         match c with '0' .. '9' -> true | 'T' -> true | _ -> false)
  |> Seq.map (fun c -> if c = 'T' then '-' else c)
  |> String.of_seq

let save ~dir m =
  match ensure_dir dir with
  | Error e -> Error e
  | Ok () ->
    let base =
      Printf.sprintf "run-%s-%s" (compact_timestamp m.created_at) m.run_id
    in
    let rec fresh i =
      let name =
        if i = 0 then base ^ ".json" else Printf.sprintf "%s-%d.json" base i
      in
      let path = Filename.concat dir name in
      if Sys.file_exists path then fresh (i + 1) else path
    in
    let path = fresh 0 in
    let tmp = path ^ ".tmp" in
    (match
       let oc = open_out tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (to_json m));
       Sys.rename tmp path
     with
    | () -> Ok path
    | exception Sys_error e -> Error e)

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match of_json text with
    | Ok m -> Ok m
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let list ~dir =
  if not (Sys.file_exists dir) then Ok []
  else
    match Sys.readdir dir with
    | exception Sys_error e -> Error e
    | names ->
      let names = Array.to_list names |> List.sort String.compare in
      Ok
        (List.filter_map
           (fun name ->
             if
               String.length name > 9
               && String.sub name 0 4 = "run-"
               && Filename.check_suffix name ".json"
             then
               match load ~path:(Filename.concat dir name) with
               | Ok m -> Some (name, m)
               | Error _ -> None
             else None)
           names)

(* -- comparison ----------------------------------------------------------- *)

type thresholds = {
  max_wall_ratio : float;
  max_hit_drop : float;
  min_front_coverage : float;
}

let default_thresholds =
  { max_wall_ratio = 1.25; max_hit_drop = 10.0; min_front_coverage = 0.99 }

type diff = {
  a : manifest;
  b : manifest;
  comparable : bool;
  wall_ratio : float;
  hit_drop_pp : float;
  front_coverage : float;
  wall_regressed : bool;
  hit_regressed : bool;
  front_regressed : bool;
}

(* Fraction of A's front weakly dominated by B's: every point of a
   healthy B reaches (or beats) the quality A demonstrated. *)
let coverage ~of_:fa ~by:fb =
  match fa with
  | [] -> 1.0
  | fa ->
    let covered p =
      List.exists
        (fun q -> q.f_cost <= p.f_cost && q.f_latency <= p.f_latency)
        fb
    in
    float_of_int (List.length (List.filter covered fa))
    /. float_of_int (List.length fa)

let compare_runs ?(thresholds = default_thresholds) a b =
  let comparable =
    a.kind = b.kind && a.workload_fp = b.workload_fp
    && a.config_kv = b.config_kv
  in
  let wall_ratio =
    if a.wall_seconds > 0.0 then b.wall_seconds /. a.wall_seconds else 1.0
  in
  let hit_drop_pp = 100.0 *. (cache_hit_rate a -. cache_hit_rate b) in
  let front_coverage = coverage ~of_:a.front ~by:b.front in
  {
    a;
    b;
    comparable;
    wall_ratio;
    hit_drop_pp;
    front_coverage;
    wall_regressed = comparable && wall_ratio > thresholds.max_wall_ratio;
    hit_regressed = comparable && hit_drop_pp > thresholds.max_hit_drop;
    front_regressed =
      comparable && front_coverage < thresholds.min_front_coverage;
  }

let regressed d = d.wall_regressed || d.hit_regressed || d.front_regressed

let render_diff d =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let ident tag m =
    line "%s %s  %s  workload %s%s" tag m.run_id m.kind m.workload_name
      (if m.interrupted then "  (interrupted)" else "")
  in
  ident "A" d.a;
  ident "B" d.b;
  if not d.comparable then
    line
      "  runs are not comparable (different kind, workload or config) — \
       no thresholds applied";
  let verdict regressed = if regressed then "REGRESSION" else "ok" in
  line "  wall time   %.2fs -> %.2fs  (x%.2f)  %s" d.a.wall_seconds
    d.b.wall_seconds d.wall_ratio
    (verdict d.wall_regressed);
  line "  cache hits  %.1f%% -> %.1f%%  (%+.1fpp)  %s"
    (100.0 *. cache_hit_rate d.a)
    (100.0 *. cache_hit_rate d.b)
    (-.d.hit_drop_pp) (verdict d.hit_regressed);
  line "  front       %d -> %d points, coverage %.2f  %s"
    (List.length d.a.front) (List.length d.b.front) d.front_coverage
    (verdict d.front_regressed);
  line "  funnel      estimates %d -> %d, simulations %d -> %d"
    d.a.n_estimates d.b.n_estimates d.a.n_simulations d.b.n_simulations;
  Buffer.contents b
