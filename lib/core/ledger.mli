(** The persistent run ledger: versioned manifests of finished (or
    interrupted) explorations, written into a directory by
    [conex explore --run-dir] and the bench harness, listed and
    compared by [conex runs list] / [conex runs diff].

    A manifest records what a run {e was} — workload fingerprint,
    deterministic configuration, funnel counts, the final
    cost/performance front — and what it {e cost} — wall time, cache
    hit rate, the jobs/shards schedule.  The first group is the
    {b canonical} part: for the same workload and configuration it is
    byte-identical across every [--shards x --jobs] combination
    ({!canonical_json}; the run id is derived from it).  The second
    group lives in explicitly exempt [timing] / [cache] / [sched]
    sections, mirroring the {!Mx_util.Metrics} determinism contract.

    {!diff} compares two manifests and flags regressions — wall time,
    cache hit rate, front coverage — against thresholds, which is what
    turns a directory of manifests into tracked perf history. *)

type front_point = { f_cost : float; f_latency : float; f_energy : float }

type manifest = {
  version : int;  (** schema version, currently {!schema_version} *)
  run_id : string;
      (** 16 hex digits derived from kind, workload fingerprint and the
          deterministic config — identical runs share an id *)
  kind : string;  (** ["explore"], ["strategies:Pruned"], ["bench:..."] *)
  created_at : string;  (** UTC [YYYY-MM-DDThh:mm:ssZ]; exempt *)
  workload_name : string;
  workload_fp : string;  (** {!Mx_trace.Workload.fingerprint} *)
  config_kv : (string * string) list;
      (** deterministic configuration, sorted by key — everything that
          shapes the result (scale, seed, caps, sampling, eps...) *)
  sched_kv : (string * string) list;
      (** schedule-only knobs, sorted by key — jobs, shards...; exempt *)
  counters : (string * int) list;
      (** final deterministic metrics counters
          ({!Mx_util.Metrics.deterministic_counters}), minus the
          [shard.] namespace (shard counts legitimately vary with
          [--shards]); sorted *)
  n_estimates : int;
  n_simulations : int;
  front : front_point list;  (** final cost/perf front, cost-sorted *)
  interrupted : bool;
  wall_seconds : float;  (** exempt *)
  cache_hits : int;  (** exempt *)
  cache_misses : int;  (** exempt *)
}

val schema_version : int

val make :
  kind:string ->
  config_kv:(string * string) list ->
  sched_kv:(string * string) list ->
  result:Explore.result ->
  manifest
(** Build a manifest from a finished {!Explore.run} result.  Cache
    counters and the deterministic counter set are read from
    {!Mx_util.Metrics.global} (zeros when metrics are off); the
    timestamp is taken now. *)

val cache_hit_rate : manifest -> float
(** hits / (hits + misses); 0 when the cache was never consulted. *)

(** {1 Serialisation} *)

val to_json : manifest -> string
val of_json : string -> (manifest, string) result
val canonical_json : manifest -> string
(** The canonical part only — no [created_at], [timing], [cache] or
    [sched] — byte-comparable across schedule settings. *)

(** {1 The ledger directory} *)

val save : dir:string -> manifest -> (string, string) result
(** Write the manifest into [dir] (created if missing) as
    [run-<created_at compact>-<run_id>.json], atomically
    (write-temp + rename), suffixing the name on collision.  Returns
    the path written. *)

val load : path:string -> (manifest, string) result

val list : dir:string -> ((string * manifest) list, string) result
(** Every [run-*.json] manifest in [dir] as [(filename, manifest)],
    sorted by filename (which orders by creation time); unreadable or
    alien files are skipped.  An absent directory is an empty
    ledger. *)

(** {1 Comparison} *)

type thresholds = {
  max_wall_ratio : float;
      (** B regresses when [wall_b > wall_a *. max_wall_ratio]
          (default 1.25) *)
  max_hit_drop : float;
      (** B regresses when its hit rate drops by more than this many
          percentage points (default 10.0) *)
  min_front_coverage : float;
      (** B regresses when it covers less than this fraction of A's
          front (default 0.99) *)
}

val default_thresholds : thresholds

type diff = {
  a : manifest;
  b : manifest;
  comparable : bool;
      (** same kind, workload fingerprint and deterministic config —
          thresholds only apply to comparable pairs *)
  wall_ratio : float;  (** [wall_b / wall_a]; 1 when [wall_a = 0] *)
  hit_drop_pp : float;  (** hit-rate drop in percentage points *)
  front_coverage : float;
      (** fraction of A's front points weakly dominated (cost and
          latency both no worse) by some point of B's front; 1 when A's
          front is empty *)
  wall_regressed : bool;
  hit_regressed : bool;
  front_regressed : bool;
}

val compare_runs : ?thresholds:thresholds -> manifest -> manifest -> diff

val regressed : diff -> bool
(** Any threshold tripped (always false for incomparable pairs —
    render makes the mismatch loud instead). *)

val render_diff : diff -> string
(** Human-readable comparison: identity lines for both runs, a
    config-mismatch warning for incomparable pairs, then one verdict
    line per tracked dimension plus the funnel-count deltas. *)
