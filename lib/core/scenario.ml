type t =
  | Power_constrained of float
  | Cost_constrained of float
  | Perf_constrained of float

let to_string = function
  | Power_constrained e -> Printf.sprintf "power-constrained (<= %.2f nJ)" e
  | Cost_constrained c -> Printf.sprintf "cost-constrained (<= %.0f gates)" c
  | Perf_constrained l -> Printf.sprintf "perf-constrained (<= %.2f cycles)" l

let frontier_axes = function
  | Power_constrained _ -> (Design.cost, Design.latency)
  | Cost_constrained _ -> (Design.latency, Design.energy)
  | Perf_constrained _ -> (Design.cost, Design.energy)

let constraint_holds t d =
  match t with
  | Power_constrained e -> Design.energy d <= e
  | Cost_constrained c -> Design.cost d <= c
  | Perf_constrained l -> Design.latency d <= l

let select t designs =
  let x, y = frontier_axes t in
  let chosen =
    designs |> List.filter (constraint_holds t) |> Mx_util.Pareto.front2 ~x ~y
  in
  (let log = Mx_util.Event_log.global in
   if Mx_util.Event_log.is_on log then
     List.iter
       (fun (d : Design.t) ->
         Mx_util.Event_log.emit log ~stage:"select" "design.selected"
           [
             ("design", Mx_util.Event_log.Str (Design.structural_key d));
             ("scenario", Mx_util.Event_log.Str (to_string t));
           ])
       chosen);
  chosen
