module Component = Mx_connect.Component
module Conn_arch = Mx_connect.Conn_arch
module Cluster = Mx_connect.Cluster
module Assign = Mx_connect.Assign
module Ev = Mx_util.Event_log
module Metrics = Mx_util.Metrics

(* Saturating arithmetic: design spaces are cartesian products and
   overflow a 63-bit int long before they overflow the planner. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let sat_add a b = if a > max_int - b then max_int else a + b
let space_of counts = List.fold_left sat_mul 1 counts

type descriptor = {
  workload_fp : string;
  arch_label : string;
  arch_fp : string;
  level : int;
  prefix : string list;
  space : int;
  cap : int;
}

let fingerprint d =
  Printf.sprintf "shard:%s|%s|L%d|p=%s|n=%d/%d" d.workload_fp d.arch_fp
    d.level
    (String.concat "," d.prefix)
    d.space d.cap

(* -- wire format -------------------------------------------------------------

   One shard per line, tab-separated:

     shard <TAB> 1 <TAB> workload_fp <TAB> arch_label <TAB> arch_fp
           <TAB> level <TAB> prefix(comma-joined) <TAB> space <TAB> cap

   Fingerprints and component names never contain tabs; the format is
   what an external worker process would consume, so [of_line]
   validates everything it can without the architecture context
   (fingerprint agreement is [resolve]'s job). *)

let magic = "shard"
let version = "1"

let to_line d =
  String.concat "\t"
    [
      magic;
      version;
      d.workload_fp;
      d.arch_label;
      d.arch_fp;
      string_of_int d.level;
      String.concat "," d.prefix;
      string_of_int d.space;
      string_of_int d.cap;
    ]

let of_line line =
  match String.split_on_char '\t' line with
  | [ m; v; workload_fp; arch_label; arch_fp; level; prefix; space; cap ] ->
    if m <> magic then Error (Printf.sprintf "bad magic %S" m)
    else if v <> version then Error (Printf.sprintf "unsupported version %S" v)
    else if workload_fp = "" || arch_fp = "" then
      Error "empty fingerprint field"
    else (
      match
        (int_of_string_opt level, int_of_string_opt space, int_of_string_opt cap)
      with
      | Some level, Some space, Some cap
        when level >= 0 && space >= 0 && cap >= 0 ->
        let prefix =
          if prefix = "" then [] else String.split_on_char ',' prefix
        in
        Ok { workload_fp; arch_label; arch_fp; level; prefix; space; cap }
      | _ -> Error "malformed level/space/cap field")
  | fields ->
    Error (Printf.sprintf "expected 9 tab-separated fields, got %d"
             (List.length fields))

let save ~path descs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun d ->
          output_string oc (to_line d);
          output_char oc '\n')
        descs)

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go n acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (n + 1) acc
          | line -> (
            match of_line line with
            | Ok d -> go (n + 1) (d :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
        in
        go 1 [])

(* -- planning ----------------------------------------------------------------

   A resolved shard carries, besides its portable descriptor, the live
   pointers its enumeration needs: the prefix clusters bound to their
   chosen component and the remaining clusters with their full choice
   lists.  Concatenating the enumerations of one level's shards in plan
   order yields exactly the designs (and the order) of the monolithic
   [Assign.enumerate] over that level with the same cap — that identity
   is what makes the final front byte-stable in the shard count. *)

type resolved = {
  desc : descriptor;
  bound : (Cluster.t * Component.t) list;
  rest : (Cluster.t * Component.t list) list;
}

let descriptor r = r.desc

type pending = {
  bound_rev : (Cluster.t * Component.t) list;
  prest : (Cluster.t * Component.t list) list;
  pspace : int;
}

let rest_space rest = space_of (List.map (fun (_, cs) -> List.length cs) rest)

(* Split one shard at its first multi-choice cluster (descending
   through forced single-choice clusters), one child per choice, in
   choice order — so children concatenate back to the parent. *)
let expand p =
  let rec go bound_rev = function
    | [] -> assert false (* pspace >= 2 implies a multi-choice cluster *)
    | (cl, [ c ]) :: rest -> go ((cl, c) :: bound_rev) rest
    | (cl, cs) :: rest ->
      let child_space = rest_space rest in
      List.map
        (fun c ->
          { bound_rev = (cl, c) :: bound_rev; prest = rest;
            pspace = child_space })
        cs
  in
  go p.bound_rev p.prest

(* Breadth-first split of one level into at least [target] shards when
   the space allows it: repeatedly expand the shard with the largest
   projected size (earliest in plan order on ties), children replacing
   their parent in place. *)
let split ~target per_cluster =
  let shards =
    ref [ { bound_rev = []; prest = per_cluster; pspace = rest_space per_cluster } ]
  in
  let progress = ref true in
  while List.length !shards < target && !progress do
    let best = ref None in
    List.iteri
      (fun i s ->
        if s.pspace >= 2 then
          match !best with
          | Some (_, bs) when bs.pspace >= s.pspace -> ()
          | _ -> best := Some (i, s))
      !shards;
    match !best with
    | None -> progress := false
    | Some (i, s) ->
      shards :=
        List.concat
          (List.mapi (fun j x -> if j = i then expand s else [ x ]) !shards)
  done;
  !shards

let plan ?(shards = 1) ?(max_designs_per_level = max_int) ~workload_fp
    ~arch_label ~arch_fp ~onchip ~offchip levels =
  if shards < 1 then invalid_arg "Shard.plan: shards < 1";
  if max_designs_per_level < 0 then
    invalid_arg "Shard.plan: max_designs_per_level < 0";
  Metrics.incr Metrics.global ~by:(List.length levels) "assign.levels";
  let out = ref [] in
  List.iteri
    (fun li level ->
      let per_cluster =
        List.map (fun cl -> (cl, Assign.choices ~onchip ~offchip cl)) level
      in
      if List.exists (fun (_, cs) -> cs = []) per_cluster then begin
        (* same accounting as the monolithic [Assign.enumerate] *)
        Metrics.incr Metrics.global "assign.infeasible_levels";
        if Ev.is_on Ev.global then
          Ev.emit Ev.global ~stage:"assign" "assign.level_infeasible"
            [
              ("clusters", Ev.Int (List.length level));
              ("reason", Ev.Str "no_feasible_component");
            ]
      end
      else begin
        let space = rest_space per_cluster in
        let enumerated = min space max_designs_per_level in
        if Metrics.is_on Metrics.global then begin
          Metrics.incr Metrics.global ~by:enumerated "assign.enumerated";
          Metrics.incr Metrics.global
            ~by:(max 0 (space - enumerated))
            "assign.cap_pruned"
        end;
        if Ev.is_on Ev.global then
          Ev.emit Ev.global ~stage:"assign" "assign.level"
            [
              ("clusters", Ev.Int (List.length level));
              ("enumerated", Ev.Int enumerated);
              ("cap_pruned", Ev.Int (max 0 (space - enumerated)));
            ];
        let pendings = split ~target:shards per_cluster in
        (* The level cap flows through the shards in plan order: each
           one may emit exactly the designs the monolithic enumeration
           would take from its slice of the product, so no shard
           computes a design the merge would discard. *)
        let consumed = ref 0 in
        List.iter
          (fun p ->
            let budget = max 0 (max_designs_per_level - !consumed) in
            let cap = min p.pspace budget in
            consumed := sat_add !consumed cap;
            if cap > 0 then begin
              let bound = List.rev p.bound_rev in
              let desc =
                {
                  workload_fp;
                  arch_label;
                  arch_fp;
                  level = li;
                  prefix = List.map (fun (_, c) -> c.Component.name) bound;
                  space = p.pspace;
                  cap;
                }
              in
              out := { desc; bound; rest = p.prest } :: !out
            end)
          pendings
      end)
    levels;
  let planned = List.rev !out in
  Metrics.incr Metrics.global ~by:(List.length planned) "shard.planned";
  if Ev.is_on Ev.global then
    List.iter
      (fun r ->
        Ev.emit Ev.global ~stage:"shard" "shard.planned"
          [
            ("shard", Ev.Str (fingerprint r.desc));
            ("arch", Ev.Str r.desc.arch_label);
            ("level", Ev.Int r.desc.level);
            ("prefix", Ev.Str (String.concat "," r.desc.prefix));
            ("space", Ev.Int r.desc.space);
            ("cap", Ev.Int r.desc.cap);
          ])
      planned;
  planned

(* Silent prefixed enumeration: no events, no metrics — shards run on
   pool workers, where emission would be schedule-dependent.  All
   bookkeeping happens at plan time and at ordered commit time. *)
let enumerate r =
  let out = ref [] and count = ref 0 in
  let cap = r.desc.cap in
  let rec go acc = function
    | [] ->
      if !count < cap then begin
        out := Conn_arch.make (List.rev acc) :: !out;
        incr count
      end
    | (cl, cs) :: rest ->
      List.iter (fun c -> if !count < cap then go ((cl, c) :: acc) rest) cs
  in
  go (List.rev r.bound) r.rest;
  List.rev !out

let resolve ~workload_fp ~arch_label ~arch_fp ~onchip ~offchip ~levels desc =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if desc.workload_fp <> workload_fp then
    err "workload fingerprint mismatch: shard has %s" desc.workload_fp
  else if desc.arch_fp <> arch_fp then
    err "architecture fingerprint mismatch: shard has %s" desc.arch_fp
  else if desc.arch_label <> arch_label then
    err "architecture label mismatch: shard has %s" desc.arch_label
  else
    match List.nth_opt levels desc.level with
    | None -> err "level %d out of range (%d levels)" desc.level
                (List.length levels)
    | Some level ->
      let per_cluster =
        List.map (fun cl -> (cl, Assign.choices ~onchip ~offchip cl)) level
      in
      let rec bind acc prefix per_cluster =
        match (prefix, per_cluster) with
        | [], rest -> Ok (List.rev acc, rest)
        | name :: ps, (cl, cs) :: rest -> (
          match
            List.find_opt (fun c -> c.Component.name = name) cs
          with
          | Some c -> bind ((cl, c) :: acc) ps rest
          | None -> err "prefix component %s infeasible for its cluster" name)
        | _ :: _, [] -> err "prefix longer than the level's cluster list"
      in
      Result.bind (bind [] desc.prefix per_cluster) (fun (bound, rest) ->
          let space = rest_space rest in
          if space <> desc.space then
            err "space mismatch: descriptor says %d, level yields %d"
              desc.space space
          else Ok { desc; bound; rest })
