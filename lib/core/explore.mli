(** ConEx: the Connectivity Exploration algorithm (Section 5 of the
    paper).

    {b Procedure ConnectivityExploration} (per memory architecture):
    profile the memory-modules architecture, construct the Bandwidth
    Requirement Graph, then walk the hierarchical clustering levels —
    at each level enumerate feasible assignments of logical connections
    to physical components from the connectivity library and estimate
    each candidate's cost, performance and power.

    {b Algorithm ConEx} (two phases): Phase I runs the procedure for
    every APEX-selected memory architecture and keeps only each
    architecture's locally most promising (pareto) points; Phase II
    fully simulates the combined survivors and selects the global
    pareto designs. *)

type config = {
  apex : Mx_apex.Explore.config;
  onchip : Mx_connect.Component.t list;
  offchip : Mx_connect.Component.t list;
  max_designs_per_level : int;
      (** cap on assignments enumerated per clustering level *)
  phase1_keep : int;
      (** cap on locally-kept designs per memory architecture *)
  sample : (int * int) option;
      (** when set, Phase II uses time-sampled simulation at this
          on/off ratio instead of exact simulation (the paper's 1/9
          sampling); [None] = exact *)
  refine_top : int;
      (** when [sample] is set and [refine_top > 0], the designs on the
          sampled cost/performance front are re-simulated exactly (up to
          this many) — the paper's "we then use full simulation for the
          most promising designs, to further refine the tradeoff
          choices"; ignored when [sample = None] *)
  jobs : int;
      (** number of domains used for the Phase I estimate fan-out, the
          Phase II simulations and the refinement pass, via
          {!Mx_util.Task_pool}.  [jobs <= 1] runs everything serially on
          the calling domain.  Results are bit-identical at every jobs
          level (same designs, same order, same pareto front).  Defaults
          to {!Mx_util.Task_pool.default_jobs}. *)
}

val default_config : config
val reduced_config : config
(** Trimmed module and component catalogues so that even the Full
    strategy terminates quickly; used by Table 2 and the test suite. *)

type result = {
  workload : Mx_trace.Workload.t;
  apex_selected : Mx_apex.Explore.candidate list;
  estimated : Design.t list;
      (** every Phase I estimate across all memory architectures *)
  simulated : Design.t list;  (** Phase II simulated survivors *)
  pareto_cost_perf : Design.t list;
      (** cost/performance front of the simulated designs *)
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
}

val fidelity_of_sample : (int * int) option -> Mx_sim.Eval.fidelity
(** [None] is {!Mx_sim.Eval.Exact}, [Some (on, off)] is
    {!Mx_sim.Eval.Sampled} — how a [config.sample] maps onto the
    evaluation-engine ladder. *)

val connectivity_exploration :
  config ->
  Mx_trace.Workload.t ->
  Mx_apex.Explore.candidate ->
  Design.t list
(** One memory architecture: BRG, clustering levels, feasible
    assignments, estimation.  Returns estimated (unsimulated) design
    points. *)

val thin_by_cost : keep:int -> Design.t list -> Design.t list
(** Even cost-spread subsample of [keep] designs (the cheapest and the
    most expensive always survive; [keep = 1] returns the single
    cheapest).  Identity when the list already fits or [keep <= 0]. *)

val local_promising : config -> Design.t list -> Design.t list
(** Phase I selection: the 3-objective (cost, latency, energy) pareto
    front of one architecture's estimates, thinned to
    [config.phase1_keep].  With the event log enabled, emits the
    terminal Phase I verdict for every input design ([design.kept] /
    [design.thinned] / [design.pruned] with its dominating
    competitor). *)

val evaluate_designs :
  config ->
  Mx_trace.Workload.t ->
  stage:string ->
  fidelity:Mx_sim.Eval.fidelity ->
  Design.t list ->
  Design.t list
(** Evaluate each design at the given fidelity on the task pool
    ([config.jobs], one design per dispatch) and attach the result with
    {!Design.with_sim}.  Emits [design.evaluated] and
    [eval.cache.provenance] events under [stage] for every design — all
    emission happens serially after the parallel map, in input order,
    so event sequences are identical at every jobs level.  Used by
    Phase II ([stage = "phase2"]), refinement ([stage = "refine"]) and
    the strategy harness. *)

val run : ?config:config -> Mx_trace.Workload.t -> result
(** The full two-phase ConEx algorithm: APEX selection, per-architecture
    connectivity exploration, local selection, full simulation of the
    combined set, global pareto. *)
