(** ConEx: the Connectivity Exploration algorithm (Section 5 of the
    paper).

    {b Procedure ConnectivityExploration} (per memory architecture):
    profile the memory-modules architecture, construct the Bandwidth
    Requirement Graph, then walk the hierarchical clustering levels —
    at each level enumerate feasible assignments of logical connections
    to physical components from the connectivity library and estimate
    each candidate's cost, performance and power.

    {b Algorithm ConEx} (two phases): Phase I runs the procedure for
    every APEX-selected memory architecture and keeps only each
    architecture's locally most promising (pareto) points; Phase II
    fully simulates the combined survivors and selects the global
    pareto designs.

    {b Sharded, anytime execution.}  Phase I is organised as a
    work-queue of design-space {!Shard}s (cluster-level ×
    assignment-prefix slices, one queue across all selected
    architectures) consumed by the {!Mx_util.Task_pool}; results commit
    in queue order, so the design stream — and therefore the final
    front — is byte-identical at every [shards] and [jobs] setting.
    Phase II feeds every committed simulation into a
    {!Mx_util.Pareto.Archive}, so the cost/latency front can be emitted
    at any moment: interrupt a run (see [?interrupt] on {!run}) and the
    returned front is a valid pareto front of exactly the work
    committed so far. *)

type config = {
  apex : Mx_apex.Explore.config;
  onchip : Mx_connect.Component.t list;
  offchip : Mx_connect.Component.t list;
  max_designs_per_level : int;
      (** cap on assignments enumerated per clustering level *)
  phase1_keep : int;
      (** cap on locally-kept designs per memory architecture *)
  sample : (int * int) option;
      (** when set, Phase II uses time-sampled simulation at this
          on/off ratio instead of exact simulation (the paper's 1/9
          sampling); [None] = exact *)
  refine_top : int;
      (** when [sample] is set and [refine_top > 0], the designs on the
          sampled cost/performance front are re-simulated exactly (up to
          this many) — the paper's "we then use full simulation for the
          most promising designs, to further refine the tradeoff
          choices"; ignored when [sample = None] *)
  jobs : int;
      (** number of domains used for the shard queue, the Phase I
          estimate fan-out, the Phase II simulations and the refinement
          pass, via {!Mx_util.Task_pool}.  [jobs <= 1] runs everything
          serially on the calling domain.  Results are bit-identical at
          every jobs level (same designs, same order, same pareto
          front).  Defaults to {!Mx_util.Task_pool.default_jobs}. *)
  shards : int;
      (** target number of prefix-shards each clustering level is split
          into for the Phase I work-queue (see {!Shard.plan}); the
          front is byte-identical at every value.  Default 1. *)
  archive_eps : float;
      (** ε-dominance slack of the anytime archive (see
          {!Mx_util.Pareto.Archive.create}); 0 (the default) keeps the
          exact front. *)
  archive_capacity : int option;
      (** optional bound on the anytime archive's size; [None] (the
          default) keeps every non-dominated point. *)
}

val default_config : config
val reduced_config : config
(** Trimmed module and component catalogues so that even the Full
    strategy terminates quickly; used by Table 2 and the test suite. *)

type result = {
  workload : Mx_trace.Workload.t;
  apex_selected : Mx_apex.Explore.candidate list;
  estimated : Design.t list;
      (** every Phase I estimate across all memory architectures *)
  simulated : Design.t list;  (** Phase II simulated survivors *)
  pareto_cost_perf : Design.t list;
      (** cost/performance front of the simulated designs — with the
          default archive settings, exactly
          [Pareto.front2 ~x:cost ~y:latency simulated] *)
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
  interrupted : bool;
      (** true when [?interrupt] stopped the run early; the fronts and
          counts then describe the committed prefix of the work *)
}

val fidelity_of_sample : (int * int) option -> Mx_sim.Eval.fidelity
(** [None] is {!Mx_sim.Eval.Exact}, [Some (on, off)] is
    {!Mx_sim.Eval.Sampled} — how a [config.sample] maps onto the
    evaluation-engine ladder. *)

val phase1 :
  ?interrupt:(unit -> bool) ->
  config ->
  Mx_trace.Workload.t ->
  Mx_apex.Explore.candidate list ->
  Design.t list list option
(** Phase I over the shard work-queue: plan every candidate
    architecture into shards (serially — cluster.*, assign.* and
    [shard.planned] records are deterministic), enumerate the combined
    queue on the task pool, then merge, dedup and estimate per
    architecture in candidate order.  Returns one estimate list per
    candidate, byte-identical at every [shards]/[jobs] setting, or
    [None] when [interrupt] fired while the queue was draining. *)

val connectivity_exploration :
  config ->
  Mx_trace.Workload.t ->
  Mx_apex.Explore.candidate ->
  Design.t list
(** One memory architecture: BRG, clustering levels, feasible
    assignments, estimation — {!phase1} with a single candidate.
    Returns estimated (unsimulated) design points. *)

val thin_by_cost : keep:int -> Design.t list -> Design.t list
(** Even cost-spread subsample of [keep] designs (the cheapest and the
    most expensive always survive; [keep = 1] returns the single
    cheapest).  Identity when the list already fits or [keep <= 0]. *)

val local_promising : config -> Design.t list -> Design.t list
(** Phase I selection: the 3-objective (cost, latency, energy) pareto
    front of one architecture's estimates, thinned to
    [config.phase1_keep].  With the event log enabled, emits the
    terminal Phase I verdict for every input design ([design.kept] /
    [design.thinned] / [design.pruned] with its dominating
    competitor). *)

val evaluate_designs :
  config ->
  Mx_trace.Workload.t ->
  stage:string ->
  fidelity:Mx_sim.Eval.fidelity ->
  ?interrupt:(unit -> bool) ->
  ?archive:Design.t Mx_util.Pareto.Archive.t ->
  Design.t list ->
  Design.t list
(** Evaluate each design at the given fidelity on the task pool
    ([config.jobs], one design per dispatch) and attach the result with
    {!Design.with_sim}.  Results commit on the calling domain in input
    order ({!Mx_util.Task_pool.parallel_map_commit}): each commit emits
    the [design.evaluated] and [eval.cache.provenance] events under
    [stage] and inserts the design into [?archive] when given (emitting
    [archive.insert] / [archive.reject] / [archive.evict] events), so
    event sequences and archive contents are identical at every jobs
    level.  When [?interrupt] returns true the evaluation stops at a
    clean input prefix and the committed designs are returned (the
    result is shorter than the input).  Used by Phase II
    ([stage = "phase2"]), refinement ([stage = "refine"]) and the
    strategy harness. *)

val run :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  Mx_trace.Workload.t ->
  result
(** The full two-phase ConEx algorithm: APEX selection, sharded
    per-architecture connectivity exploration, local selection, full
    simulation of the combined set, global pareto via the anytime
    archive.

    [?interrupt] (polled between units of committed work, never from
    workers) makes the run {e anytime}: when it returns true the run
    stops at the next commit boundary and returns [interrupted = true]
    with a valid result for the committed prefix — in particular
    [pareto_cost_perf] is the archive's current front (empty when the
    interrupt fired before any simulation committed). *)
