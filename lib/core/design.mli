(** A combined memory-modules + connectivity design point — the object
    ConEx explores, prunes, simulates and finally hands to the
    designer. *)

type t = {
  workload_name : string;
  mem : Mx_mem.Mem_arch.t;
  conn : Mx_connect.Conn_arch.t;
  cost_gates : int;  (** memory modules + connectivity *)
  est : Mx_sim.Sim_result.t option;  (** Phase I estimate *)
  sim : Mx_sim.Sim_result.t option;  (** Phase II full simulation *)
}

val make :
  workload_name:string ->
  mem:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  ?est:Mx_sim.Sim_result.t ->
  ?sim:Mx_sim.Sim_result.t ->
  unit ->
  t

val with_sim : t -> Mx_sim.Sim_result.t -> t

val best_result : t -> Mx_sim.Sim_result.t
(** The most accurate metrics available: simulation when present, else
    the estimate.  @raise Invalid_argument when the design has
    neither. *)

val cost : t -> float
(** Cost axis (gates, as float for pareto machinery). *)

val latency : t -> float
(** Performance axis: average memory latency from {!best_result}. *)

val energy : t -> float
(** Power axis: average nJ/access from {!best_result}. *)

val id : t -> string
(** Structural identity (memory label + connectivity description) —
    stable across estimate/simulate, used for pareto-coverage
    matching. *)

val structural_key : t -> string
(** Canonical structural identity: the memory label plus the
    {!Mx_mem.Mem_arch.fingerprint} and {!Mx_connect.Conn_arch.fingerprint}
    of the design's two halves.  Insensitive to evaluation state ([est]
    and [sim] never participate) and to the assembly order of the
    connectivity; any parameter change produces a different key.  Use it
    to index designs in hash tables during splice/merge passes. *)

val equal_structure : t -> t -> bool
(** [structural_key] equality: same architecture, whatever has (or has
    not) been evaluated on it. *)

val pp : Format.formatter -> t -> unit
