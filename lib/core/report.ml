let design_table ?(title = "") designs =
  ignore title;
  let t =
    Mx_util.Table.create
      ~headers:
        [ "cost [gates]"; "avg mem latency [cycles]"; "avg energy [nJ]";
          "architecture" ]
  in
  List.iter
    (fun d ->
      Mx_util.Table.add_row t
        [
          string_of_int d.Design.cost_gates;
          Printf.sprintf "%.2f" (Design.latency d);
          Printf.sprintf "%.2f" (Design.energy d);
          Design.id d;
        ])
    (Mx_util.Pareto.sort_by Design.cost designs);
  t

let print_designs ~title designs =
  print_endline title;
  Mx_util.Table.print (design_table designs)

let annotate designs =
  let sorted = Mx_util.Pareto.sort_by Design.cost designs in
  List.mapi
    (fun i d ->
      let label =
        if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
        else Printf.sprintf "a%d" (i - 25)
      in
      (label, d))
    sorted

let scatter ~x ~y designs = List.map (fun d -> (x d, y d)) designs

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv designs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "workload,memory,connectivity,cost_gates,avg_mem_latency_cycles,avg_energy_nj,miss_ratio,exact\n";
  List.iter
    (fun d ->
      let r = Design.best_result d in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%.4f,%.4f,%.6f,%b\n"
           (csv_field d.Design.workload_name)
           (csv_field d.Design.mem.Mx_mem.Mem_arch.label)
           (csv_field (Mx_connect.Conn_arch.describe d.Design.conn))
           d.Design.cost_gates r.Mx_sim.Sim_result.avg_mem_latency
           r.Mx_sim.Sim_result.avg_energy_nj r.Mx_sim.Sim_result.miss_ratio
           r.Mx_sim.Sim_result.exact))
    (Mx_util.Pareto.sort_by Design.cost designs);
  Buffer.contents buf

(* split one CSV line on unquoted commas; doubled quotes inside a quoted
   field collapse back to one *)
let parse_csv_row line =
  let fields = ref [] and buf = Buffer.create 32 in
  let in_q = ref false in
  String.iter
    (fun c ->
      if c = '"' then in_q := not !in_q
      else if c = ',' && not !in_q then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    line;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let parse_csv content =
  match
    content
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  with
  | [] | [ _ ] -> []
  | _header :: data ->
    List.filter_map
      (fun line ->
        match parse_csv_row line with
        | [ _wl; mem; conn; cost; lat; energy; _miss; _exact ] -> (
          try
            Some
              ( mem ^ " | " ^ conn,
                float_of_string cost,
                float_of_string lat,
                float_of_string energy )
          with Failure _ -> None)
        | _ -> None)
      data

let save_csv designs ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv designs))

let ascii_scatter ?(width = 72) ?(height = 20) ~x ~y ~highlight designs =
  if designs = [] then "(no designs)\n"
  else begin
    let xs = List.map x designs and ys = List.map y designs in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs
    and ymin = List.fold_left Float.min infinity ys
    and ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0
    and yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot ch d =
      let cx =
        int_of_float ((x d -. xmin) /. xspan *. float_of_int (width - 1))
      and cy =
        int_of_float ((y d -. ymin) /. yspan *. float_of_int (height - 1))
      in
      (* y grows upward in the plot *)
      grid.(height - 1 - cy).(cx) <- ch
    in
    List.iter (plot '.') designs;
    List.iter (plot '#') highlight;
    let buf = Buffer.create (width * height) in
    Buffer.add_string buf
      (Printf.sprintf "%.4g .. %.4g (y)  vs  %.4g .. %.4g (x)\n" ymin ymax
         xmin xmax);
    Array.iter
      (fun row ->
        Buffer.add_char buf '|';
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
