(** Funnel reconstruction from a saved event log.

    [conex explain] loads a JSONL event stream written by
    [conex explore --events-out] (or [strategies --events-out]) and
    answers the two provenance questions the log exists for: {e what
    did the funnel do} ({!summary} — per-stage survivor counts), and
    {e why did this particular design survive or die}
    ({!lifecycle}). *)

val summary : ?truncated:bool -> Mx_util.Event_log.event list -> string
(** Human-readable funnel reconstruction: cluster merges, assignment
    enumeration (levels, cap-pruned, duplicates), Phase I verdicts
    (created / kept / thinned / dominated), Phase II simulations,
    refinements, per-scenario selections, strategy outcomes, and —
    marked as schedule-dependent — the cache provenance mix.
    [truncated:true] (a tail-truncated log, see
    {!Mx_util.Event_log.load_jsonl}) adds a one-line notice to the
    header. *)

val lifecycle :
  Mx_util.Event_log.event list -> key:string -> (string, string) result
(** The full event lifecycle of one design, in canonical order.  [key]
    is a {!Design.structural_key}, matched exactly first and then as a
    unique prefix (keys are long fingerprints; a short prefix is enough
    on the command line).  For a pruned design the dominating
    competitor's key — and its human-readable id when the log recorded
    its creation — is shown.  [Error] reports an unknown or ambiguous
    key with the candidates. *)
