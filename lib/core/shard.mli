(** Design-space shards: the unit of work for sharded exploration.

    A shard is one slice of Phase I's connectivity enumeration for a
    single memory architecture — one clustering level restricted to a
    fixed {e assignment prefix} (the first [k] clusters bound to named
    components).  Concatenating the enumerations of a level's shards in
    plan order reproduces the monolithic [Assign.enumerate] over that
    level {e exactly} — same designs, same order, same cap — which is
    what makes the final pareto front byte-stable in the shard count.

    Shards carry a portable {!descriptor} with a structural
    {!fingerprint} built from the PR 3 fingerprint scheme
    ([Workload.fingerprint], [Mem_arch.fingerprint]), so they are
    restartable, memo-cache-friendly and identical across runs; the
    line-based wire format ({!to_line} / {!of_line} / {!save} /
    {!load}) is what an external worker process would consume. *)

type descriptor = {
  workload_fp : string;  (** [Mx_trace.Workload.fingerprint] *)
  arch_label : string;   (** human label of the memory architecture *)
  arch_fp : string;      (** [Mx_mem.Mem_arch.fingerprint] *)
  level : int;           (** clustering-level index, 0-based *)
  prefix : string list;  (** component names bound to the first clusters *)
  space : int;           (** uncapped enumeration size (saturating) *)
  cap : int;             (** designs this shard emits toward the level cap *)
}

val fingerprint : descriptor -> string
(** Canonical structural key of a shard (excludes the label, like
    [Mem_arch.fingerprint]): equal fingerprints enumerate equal design
    slices. *)

val to_line : descriptor -> string
(** One-line, tab-separated serialization (fields never contain tabs). *)

val of_line : string -> (descriptor, string) result
(** Parse {!to_line} output; validates field count, magic/version and
    integer ranges.  Context-dependent validation (do the fingerprints
    match the architecture at hand?) is {!resolve}'s job. *)

val save : path:string -> descriptor list -> unit
(** Write a queue of shards, one {!to_line} per line. *)

val load : path:string -> (descriptor list, string) result
(** Read a queue written by {!save}, skipping blank lines; the error
    carries [path:line:] context. *)

type resolved
(** A descriptor resolved against live clustering levels and component
    libraries — ready to enumerate. *)

val descriptor : resolved -> descriptor

val plan :
  ?shards:int ->
  ?max_designs_per_level:int ->
  workload_fp:string ->
  arch_label:string ->
  arch_fp:string ->
  onchip:Mx_connect.Component.t list ->
  offchip:Mx_connect.Component.t list ->
  Mx_connect.Cluster.t list list ->
  resolved list
(** [plan ~shards ~max_designs_per_level ... levels] partitions every
    clustering level of one architecture into up to [shards] (default
    1) prefix-shards: each level starts as a single empty-prefix shard
    and the largest shard (earliest on ties) is repeatedly split at its
    first multi-choice cluster, children replacing the parent in place,
    until the level has [shards] pieces or only singleton slices
    remain.  The per-level design cap then flows through the shards in
    plan order, so each shard's [cap] is exactly the number of designs
    the monolithic enumeration would take from its slice — no shard
    enumerates a design the merge would discard, and levels whose slice
    falls wholly beyond the cap produce no shards.

    Emits the same [assign.level] / [assign.level_infeasible] events
    and [assign.levels] / [assign.enumerated] / [assign.cap_pruned] /
    [assign.infeasible_levels] metrics as the monolithic enumeration
    (computed from the level's full space), plus one [shard.planned]
    event and the [shard.planned] counter — all on the calling domain,
    so the planning record is deterministic.

    @raise Invalid_argument if [shards < 1] or
    [max_designs_per_level < 0]. *)

val enumerate : resolved -> Mx_connect.Conn_arch.t list
(** Enumerate one shard's slice — the prefix clusters fixed, the
    cartesian product of the remaining choices in choice order, capped
    at [cap].  Silent: no events, no metrics — safe to run on pool
    workers; bookkeeping happens at plan time and at ordered commit
    time. *)

val resolve :
  workload_fp:string ->
  arch_label:string ->
  arch_fp:string ->
  onchip:Mx_connect.Component.t list ->
  offchip:Mx_connect.Component.t list ->
  levels:Mx_connect.Cluster.t list list ->
  descriptor ->
  (resolved, string) result
(** Re-attach a (possibly deserialized) descriptor to live context —
    the inverse of {!descriptor}.  Fails with a human-readable reason
    when the workload/architecture fingerprints disagree, the level
    index is out of range, a prefix component is not feasible for its
    cluster, or the remaining space does not match the descriptor. *)
