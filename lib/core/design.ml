type t = {
  workload_name : string;
  mem : Mx_mem.Mem_arch.t;
  conn : Mx_connect.Conn_arch.t;
  cost_gates : int;
  est : Mx_sim.Sim_result.t option;
  sim : Mx_sim.Sim_result.t option;
}

let make ~workload_name ~mem ~conn ?est ?sim () =
  {
    workload_name;
    mem;
    conn;
    cost_gates =
      Mx_mem.Mem_arch.cost_gates mem
      + conn.Mx_connect.Conn_arch.cost_gates;
    est;
    sim;
  }

let with_sim t sim = { t with sim = Some sim }

let best_result t =
  match (t.sim, t.est) with
  | Some s, _ -> s
  | None, Some e -> e
  | None, None -> invalid_arg "Design.best_result: unevaluated design"

let cost t = float_of_int t.cost_gates
let latency t = (best_result t).Mx_sim.Sim_result.avg_mem_latency
let energy t = (best_result t).Mx_sim.Sim_result.avg_energy_nj

let id t =
  t.mem.Mx_mem.Mem_arch.label ^ " | "
  ^ Mx_connect.Conn_arch.describe t.conn

(* The label is kept alongside the structural fingerprints so that two
   APEX candidates that happen to share a structure (but were selected
   as distinct points) never collapse into one design. *)
let structural_key t =
  t.mem.Mx_mem.Mem_arch.label ^ "|"
  ^ Mx_mem.Mem_arch.fingerprint t.mem
  ^ "|"
  ^ Mx_connect.Conn_arch.fingerprint t.conn

let equal_structure a b = structural_key a = structural_key b

let pp fmt t =
  let r = best_result t in
  Format.fprintf fmt "%-60s %8d gates  %7.2f cy  %6.2f nJ%s" (id t)
    t.cost_gates r.Mx_sim.Sim_result.avg_mem_latency
    r.Mx_sim.Sim_result.avg_energy_nj
    (if t.sim <> None then "" else " (est)")
