module Ev = Mx_util.Event_log

let attr_str (e : Ev.event) k =
  match List.assoc_opt k e.Ev.attrs with Some (Ev.Str s) -> Some s | _ -> None

let attr_int (e : Ev.event) k =
  match List.assoc_opt k e.Ev.attrs with Some (Ev.Int i) -> Some i | _ -> None

let value_to_string = function
  | Ev.Str s -> s
  | Ev.Int i -> string_of_int i
  | Ev.Float f -> Printf.sprintf "%g" f
  | Ev.Bool b -> string_of_bool b

(* a long structural key is unreadable inline: show a fixed-width
   prefix with an ellipsis *)
let abbrev ?(width = 24) k =
  if String.length k <= width then k else String.sub k 0 width ^ "..."

let summary ?(truncated = false) events =
  let count name =
    List.length (List.filter (fun (e : Ev.event) -> e.Ev.name = name) events)
  in
  let count_in stage name =
    List.length
      (List.filter
         (fun (e : Ev.event) -> e.Ev.name = name && e.Ev.stage = stage)
         events)
  in
  let sum_attr name k =
    List.fold_left
      (fun acc (e : Ev.event) ->
        if e.Ev.name = name then acc + Option.value ~default:0 (attr_int e k)
        else acc)
      0 events
  in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "Funnel summary (%d events%s)" (List.length events)
    (if truncated then ", truncated tail ignored" else "");
  (List.filter (fun (e : Ev.event) -> e.Ev.name = "strategy.begin") events
  |> List.iter (fun e ->
         line "  Strategy: %s" (Option.value ~default:"?" (attr_str e "kind"))));
  (List.filter (fun (e : Ev.event) -> e.Ev.name = "strategy.full.projection")
     events
  |> List.iter (fun e ->
         line "  Full projection: %d simulations against a budget of %d"
           (Option.value ~default:0 (attr_int e "projected"))
           (Option.value ~default:0 (attr_int e "budget"))));
  if count "strategy.full.infeasible" > 0 then
    line "  Full strategy ABORTED: projection exceeds the budget";
  line "  Clustering: %d merges" (count "cluster.merge");
  line
    "  Assignment: %d levels (%d infeasible), %d enumerated, %d cap-pruned, \
     %d kept, %d duplicates rejected"
    (count "assign.level" + count "assign.level_infeasible")
    (count "assign.level_infeasible")
    (sum_attr "assign.level" "enumerated")
    (sum_attr "assign.level" "cap_pruned")
    (count "assign.kept") (count "assign.rejected");
  (* shard work-queue: planned at clustering time, finished in commit
     order; stolen/started records live under sched. and are dropped
     from canonical dumps, so only report them when present *)
  if count "shard.planned" > 0 then
    line
      "  Shard queue: %d shards planned (%d designs capped), %d finished \
       carrying %d designs%s"
      (count "shard.planned")
      (sum_attr "shard.planned" "cap")
      (count "shard.finished")
      (sum_attr "shard.finished" "designs")
      (match count "shard.sched.stolen" with
      | 0 -> ""
      | n -> Printf.sprintf ", %d stolen by pool workers" n);
  line
    "  Phase I: %d designs created -> %d kept, %d thinned (cost spread), %d \
     pruned (dominated)%s"
    (count "design.created") (count "design.kept") (count "design.thinned")
    (count "design.pruned")
    (match count "design.neighbor" with
    | 0 -> ""
    | n -> Printf.sprintf ", +%d neighbors re-added" n);
  line "  Phase II: %d designs simulated" (count_in "phase2" "design.evaluated");
  (* the anytime archive: every simulation is offered as it commits *)
  if count "archive.insert" + count "archive.reject" > 0 then begin
    let evict reason =
      List.length
        (List.filter
           (fun (e : Ev.event) ->
             e.Ev.name = "archive.evict" && attr_str e "reason" = Some reason)
           events)
    in
    line
      "  Archive: %d inserted, %d rejected (dominated on arrival), %d \
       displaced, %d evicted (capacity)"
      (count "archive.insert") (count "archive.reject") (evict "dominated")
      (evict "capacity")
  end;
  if count "design.refined" > 0 then
    line "  Refinement: %d designs re-simulated exactly" (count "design.refined");
  let sels =
    List.filter (fun (e : Ev.event) -> e.Ev.name = "design.selected") events
  in
  line "  Selected: %d designs" (List.length sels);
  let scenarios =
    List.fold_left
      (fun acc e ->
        match attr_str e "scenario" with
        | Some sc when not (List.mem sc acc) -> sc :: acc
        | _ -> acc)
      [] sels
    |> List.rev
  in
  List.iter
    (fun sc ->
      line "    %s: %d" sc
        (List.length
           (List.filter (fun e -> attr_str e "scenario" = Some sc) sels)))
    scenarios;
  let prov =
    List.filter
      (fun (e : Ev.event) -> e.Ev.name = "eval.cache.provenance")
      events
  in
  if prov <> [] then begin
    let by src =
      List.length (List.filter (fun e -> attr_str e "source" = Some src) prov)
    in
    line "  Cache (schedule-dependent): %d computed, %d hits, %d promoted"
      (by "computed") (by "hit") (by "promoted")
  end;
  (List.filter (fun (e : Ev.event) -> e.Ev.name = "strategy.end") events
  |> List.iter (fun e ->
         line "  Strategy %s finished: %d estimates, %d simulations"
           (Option.value ~default:"?" (attr_str e "kind"))
           (Option.value ~default:0 (attr_int e "estimates"))
           (Option.value ~default:0 (attr_int e "simulations"))));
  Buffer.contents b

let design_keys events =
  List.fold_left
    (fun acc (e : Ev.event) ->
      match attr_str e "design" with
      | Some k when not (List.mem k acc) -> k :: acc
      | _ -> acc)
    [] events
  |> List.rev

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let resolve_key events ~key =
  let keys = design_keys events in
  if List.mem key keys then Ok key
  else
    match List.filter (is_prefix ~prefix:key) keys with
    | [ k ] -> Ok k
    | [] ->
      Error
        (Printf.sprintf "no design in the log matches %S (%d designs logged)"
           key (List.length keys))
    | ks ->
      Error
        (Printf.sprintf "ambiguous key %S: %d designs match, e.g. %s" key
           (List.length ks)
           (String.concat ", "
              (List.filteri (fun i _ -> i < 3) ks |> List.map abbrev)))

let lifecycle events ~key =
  match resolve_key events ~key with
  | Error _ as e -> e
  | Ok k ->
    (* map every created design to its human-readable id, to name
       dominating competitors *)
    let ids = Hashtbl.create 64 in
    List.iter
      (fun (e : Ev.event) ->
        if e.Ev.name = "design.created" then
          match (attr_str e "design", attr_str e "id") with
          | Some dk, Some id -> Hashtbl.replace ids dk id
          | _ -> ())
      events;
    let evs =
      Ev.canonical_sort
        (List.filter (fun e -> attr_str e "design" = Some k) events)
    in
    let b = Buffer.create 512 in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string b s;
          Buffer.add_char b '\n')
        fmt
    in
    line "Design %s" k;
    (match Hashtbl.find_opt ids k with
    | Some id -> line "  id: %s" id
    | None -> ());
    List.iter
      (fun (e : Ev.event) ->
        match e.Ev.name with
        | "design.pruned" ->
          let dom = Option.value ~default:"" (attr_str e "dominated_by") in
          if dom = "" then
            line "  [%-7s #%d] pruned (dominated; no single competitor)"
              e.Ev.stage e.Ev.seq
          else
            line "  [%-7s #%d] pruned — dominated by %s%s" e.Ev.stage e.Ev.seq
              (abbrev dom)
              (match Hashtbl.find_opt ids dom with
              | Some id -> Printf.sprintf " (%s)" id
              | None -> "")
        | _ ->
          let rest =
            e.Ev.attrs
            |> List.filter (fun (k', _) -> k' <> "design")
            |> List.map (fun (k', v) ->
                   Printf.sprintf "%s=%s" k' (value_to_string v))
          in
          line "  [%-7s #%d] %s%s" e.Ev.stage e.Ev.seq e.Ev.name
            (if rest = [] then "" else " " ^ String.concat " " rest))
      evs;
    if evs = [] then line "  (no events)";
    Ok (Buffer.contents b)
