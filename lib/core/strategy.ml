module Ev = Mx_util.Event_log

type kind = Pruned | Neighborhood | Full

exception Full_infeasible of { projected_sims : int; budget : int }

type outcome = {
  kind : kind;
  designs : Design.t list;
  pareto_cost_perf : Design.t list;
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
}

let kind_to_string = function
  | Pruned -> "Pruned"
  | Neighborhood -> "Neighborhood"
  | Full -> "Full"

(* nearest non-selected estimates around each selected point, measured
   on span-normalised (cost, latency, energy) axes *)
let neighbors_of ~k selected all =
  let axes = [ Design.cost; Design.latency; Design.energy ] in
  let spans =
    List.map
      (fun f ->
        let vs = List.map f all in
        let lo = List.fold_left Float.min infinity vs
        and hi = List.fold_left Float.max neg_infinity vs in
        let s = hi -. lo in
        if s <= 0.0 then 1.0 else s)
      axes
  in
  let dist2 a b =
    List.fold_left2
      (fun acc f s ->
        let d = (f a -. f b) /. s in
        acc +. (d *. d))
      0.0 axes spans
  in
  let rest =
    List.filter
      (fun d -> not (List.exists (Design.equal_structure d) selected))
      all
  in
  List.concat_map
    (fun p ->
      rest
      |> List.map (fun d -> (dist2 p d, d))
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
      |> List.filteri (fun i _ -> i < k)
      |> List.map snd)
    selected
  |> List.fold_left
       (fun acc d ->
         if List.exists (Design.equal_structure d) acc then acc else d :: acc)
       []
  |> List.rev

(* [front] is the strategy's cost/latency front — the anytime archive's
   emission for the sweeps that feed one ({!Explore.evaluate_designs}
   with [~archive]), which with the default (exact, unbounded) archive
   settings equals [Pareto.front2] over [simulated]. *)
let finish kind ~n_estimates ~t0 ~front simulated =
  let m = Mx_util.Metrics.global in
  let label = String.lowercase_ascii (kind_to_string kind) in
  Mx_util.Metrics.incr m ("strategy." ^ label ^ ".runs");
  Mx_util.Metrics.incr m ~by:n_estimates ("strategy." ^ label ^ ".estimates");
  Mx_util.Metrics.incr m ~by:(List.length simulated)
    ("strategy." ^ label ^ ".simulations");
  (* no wall seconds in the event: timings are never deterministic *)
  if Ev.is_on Ev.global then
    Ev.emit Ev.global ~stage:"strategy" "strategy.end"
      [
        ("kind", Ev.Str label);
        ("estimates", Ev.Int n_estimates);
        ("simulations", Ev.Int (List.length simulated));
      ];
  {
    kind;
    designs = simulated;
    pareto_cost_perf = front;
    n_estimates;
    n_simulations = List.length simulated;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let run ?(config = Explore.default_config) ?(neighbors = 2)
    ?(full_budget = 300_000) kind workload =
  Mx_util.Metrics.with_span Mx_util.Metrics.global
    ("strategy." ^ String.lowercase_ascii (kind_to_string kind))
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Mx_util.Snapshot.set_phase
    ("strategy." ^ String.lowercase_ascii (kind_to_string kind));
  if Ev.is_on Ev.global then
    Ev.emit Ev.global ~stage:"strategy" "strategy.begin"
      [ ("kind", Ev.Str (String.lowercase_ascii (kind_to_string kind))) ];
  match kind with
  | Pruned ->
    let r = Explore.run ~config workload in
    finish Pruned ~n_estimates:r.Explore.n_estimates ~t0
      ~front:r.Explore.pareto_cost_perf r.Explore.simulated
  | Neighborhood ->
    let profile = Mx_trace.Profile.analyze workload in
    (* widen the memory-architecture net: the full APEX pareto front *)
    let apex_front =
      Mx_apex.Explore.explore ~config:config.Explore.apex profile
      |> Mx_apex.Explore.pareto
    in
    (* one shard queue across every front architecture *)
    let per_arch =
      match Explore.phase1 config workload apex_front with
      | Some ests -> ests
      | None -> assert false (* no interrupt hook on strategies *)
    in
    let n_estimates =
      List.fold_left (fun acc ests -> acc + List.length ests) 0 per_arch
    in
    let survivors =
      List.concat_map
        (fun ests ->
          let selected = Explore.local_promising config ests in
          let nbrs = neighbors_of ~k:neighbors selected ests in
          if Ev.is_on Ev.global then
            List.iter
              (fun (d : Design.t) ->
                Ev.emit Ev.global ~stage:"phase1" "design.neighbor"
                  [ ("design", Ev.Str (Design.structural_key d)) ])
              nbrs;
          selected @ nbrs)
        per_arch
    in
    let archive =
      Mx_util.Pareto.Archive.create
        ~axes:[ Design.cost; Design.latency ]
        ~eps:config.Explore.archive_eps
        ?capacity:config.Explore.archive_capacity ()
    in
    let simulated =
      Explore.evaluate_designs config workload ~stage:"phase2"
        ~fidelity:(Explore.fidelity_of_sample config.Explore.sample)
        ~archive survivors
    in
    finish Neighborhood ~n_estimates ~t0
      ~front:(Mx_util.Pareto.Archive.front archive)
      simulated
  | Full ->
    let profile = Mx_trace.Profile.analyze workload in
    let all_archs =
      Mx_apex.Explore.explore ~config:config.Explore.apex profile
    in
    (* project the simulation count before committing *)
    let per_arch =
      List.map
        (fun (cand : Mx_apex.Explore.candidate) ->
          let brg =
            Mx_connect.Brg.build cand.Mx_apex.Explore.arch
              cand.Mx_apex.Explore.profile
          in
          let conns =
            Mx_connect.Assign.enumerate_levels
              ~max_designs_per_level:config.Explore.max_designs_per_level
              ~onchip:config.Explore.onchip ~offchip:config.Explore.offchip
              brg.Mx_connect.Brg.channels
          in
          (cand, conns))
        all_archs
    in
    let projected =
      List.fold_left (fun acc (_, cs) -> acc + List.length cs) 0 per_arch
    in
    if Ev.is_on Ev.global then
      Ev.emit Ev.global ~stage:"strategy" "strategy.full.projection"
        [ ("projected", Ev.Int projected); ("budget", Ev.Int full_budget) ];
    if projected > full_budget then begin
      if Ev.is_on Ev.global then
        Ev.emit Ev.global ~stage:"strategy" "strategy.full.infeasible"
          [ ("projected", Ev.Int projected); ("budget", Ev.Int full_budget) ];
      raise (Full_infeasible { projected_sims = projected; budget = full_budget })
    end;
    (* design records are built serially so their [design.created]
       events carry deterministic sequence numbers; only the
       simulations themselves fan out *)
    let designs =
      List.concat_map
        (fun ((cand : Mx_apex.Explore.candidate), conns) ->
          List.map
            (fun conn ->
              let d =
                Design.make ~workload_name:workload.Mx_trace.Workload.name
                  ~mem:cand.Mx_apex.Explore.arch ~conn ()
              in
              if Ev.is_on Ev.global then
                Ev.emit Ev.global ~stage:"phase1" "design.created"
                  [
                    ("design", Ev.Str (Design.structural_key d));
                    ("id", Ev.Str (Design.id d));
                    ( "arch",
                      Ev.Str cand.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label );
                  ];
              d)
            conns)
        per_arch
    in
    let archive =
      Mx_util.Pareto.Archive.create
        ~axes:[ Design.cost; Design.latency ]
        ~eps:config.Explore.archive_eps
        ?capacity:config.Explore.archive_capacity ()
    in
    let simulated =
      Explore.evaluate_designs config workload ~stage:"phase2"
        ~fidelity:(Explore.fidelity_of_sample config.Explore.sample)
        ~archive designs
    in
    finish Full ~n_estimates:0 ~t0
      ~front:(Mx_util.Pareto.Archive.front archive)
      simulated
