(** Paper-style reporting of exploration results: the rows of Table 1,
    the point clouds of Figs. 3/4 and the annotated pareto designs of
    Fig. 6. *)

val design_table :
  ?title:string -> Design.t list -> Mx_util.Table.t
(** Columns: cost [gates], avg mem latency [cycles], avg energy [nJ],
    architecture description — the paper's Table 1 plus the identity
    column.  Rows sorted by increasing cost. *)

val print_designs : title:string -> Design.t list -> unit

val annotate : Design.t list -> (string * Design.t) list
(** Label the designs [a], [b], [c], ... in increasing-cost order, as
    Fig. 6 labels its pareto architectures. *)

val scatter :
  x:(Design.t -> float) ->
  y:(Design.t -> float) ->
  Design.t list ->
  (float * float) list
(** Raw series for external plotting. *)

val to_csv : Design.t list -> string
(** CSV rows: workload, memory architecture, connectivity, cost [gates],
    avg memory latency [cycles], avg energy [nJ], miss ratio, and
    whether the metrics come from exact simulation.  Fields containing
    commas or quotes are quoted per RFC 4180. *)

val save_csv : Design.t list -> path:string -> unit
(** Write {!to_csv} output to a file (overwrites). *)

val parse_csv : string -> (string * float * float * float) list
(** Parse a {!to_csv} document back into
    [(id, cost, latency, energy)] rows, where [id] is
    ["<memory> | <connectivity>"] ({!Design.id}).  The header line is
    skipped; quoted fields may contain commas; malformed rows are
    dropped.  Inverse of {!to_csv} for these four columns — the
    [conex select] subcommand and the round-trip tests both build on
    this. *)

val ascii_scatter :
  ?width:int -> ?height:int ->
  x:(Design.t -> float) ->
  y:(Design.t -> float) ->
  highlight:Design.t list ->
  Design.t list ->
  string
(** Terminal scatter plot: ['.'] for explored designs, ['#'] for
    highlighted (pareto) ones.  Axes are linearly scaled to the data
    range. *)
