module Component = Mx_connect.Component
module Conn_arch = Mx_connect.Conn_arch
module Brg = Mx_connect.Brg
module Assign = Mx_connect.Assign
module Ev = Mx_util.Event_log

type config = {
  apex : Mx_apex.Explore.config;
  onchip : Component.t list;
  offchip : Component.t list;
  max_designs_per_level : int;
  phase1_keep : int;
  sample : (int * int) option;
  refine_top : int;
  jobs : int;
}

let default_config =
  {
    apex = Mx_apex.Explore.default_config;
    onchip = Component.onchip_library;
    offchip = Component.offchip_library;
    max_designs_per_level = 4096;
    phase1_keep = 24;
    sample = None;
    refine_top = 16;
    jobs = Mx_util.Task_pool.default_jobs ();
  }

let reduced_config =
  {
    apex = Mx_apex.Explore.reduced_config;
    onchip =
      List.filter
        (fun (c : Component.t) ->
          List.mem c.Component.name [ "mux32"; "apb32"; "asb32"; "ahb32" ])
        Component.onchip_library;
    offchip =
      List.filter
        (fun (c : Component.t) -> c.Component.name = "off32")
        Component.offchip_library;
    max_designs_per_level = 1024;
    phase1_keep = 12;
    sample = None;
    refine_top = 8;
    jobs = Mx_util.Task_pool.default_jobs ();
  }

type result = {
  workload : Mx_trace.Workload.t;
  apex_selected : Mx_apex.Explore.candidate list;
  estimated : Design.t list;
  simulated : Design.t list;
  pareto_cost_perf : Design.t list;
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
}

(* Estimates are cheap (micro- to milliseconds each), so chunk them to
   amortise dispatch; simulations are seconds each, so they are
   dispatched one by one for load balance. *)
let estimate_chunk = 32

(* Events are never emitted from inside pool workers: workers return
   [(design, provenance)] pairs, and all emission happens afterwards on
   the calling domain in [parallel_map]'s deterministic input order, so
   auto-assigned sequence numbers are identical at every jobs level.
   Cache provenance still depends on cross-domain timing, so it goes in
   a separate [eval.cache.provenance] event that the determinism
   contract exempts (the ["cache."] segment rule). *)
let emit_evaluated ~stage ~fidelity pairs =
  if Ev.is_on Ev.global then begin
    let ftag = Mx_sim.Eval.fidelity_tag fidelity in
    List.iter
      (fun ((d : Design.t), prov) ->
        let key = Design.structural_key d in
        Ev.emit Ev.global ~stage "design.evaluated"
          [ ("design", Ev.Str key); ("fidelity", Ev.Str ftag) ];
        Ev.emit Ev.global ~stage "eval.cache.provenance"
          [
            ("design", Ev.Str key);
            ("fidelity", Ev.Str ftag);
            ("source", Ev.Str (Mx_sim.Eval.provenance_tag prov));
          ])
      pairs
  end

let connectivity_exploration cfg workload (cand : Mx_apex.Explore.candidate) =
  let brg = Brg.build cand.Mx_apex.Explore.arch cand.Mx_apex.Explore.profile in
  let conns =
    Assign.enumerate_levels ~max_designs_per_level:cfg.max_designs_per_level
      ~onchip:cfg.onchip ~offchip:cfg.offchip brg.Brg.channels
  in
  let pairs =
    Mx_util.Task_pool.parallel_map ~jobs:cfg.jobs ~chunk:estimate_chunk
      (fun conn ->
        let est, prov =
          Mx_sim.Eval.eval_prov ~fidelity:Mx_sim.Eval.Estimate ~workload
            ~arch:cand.Mx_apex.Explore.arch
            ~profile:cand.Mx_apex.Explore.profile ~conn ()
        in
        ( Design.make ~workload_name:workload.Mx_trace.Workload.name
            ~mem:cand.Mx_apex.Explore.arch ~conn ~est (),
          prov ))
      conns
  in
  if Ev.is_on Ev.global then
    List.iter
      (fun ((d : Design.t), _) ->
        Ev.emit Ev.global ~stage:"phase1" "design.created"
          [
            ("design", Ev.Str (Design.structural_key d));
            ("id", Ev.Str (Design.id d));
            ( "arch",
              Ev.Str cand.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label );
          ])
      pairs;
  emit_evaluated ~stage:"phase1" ~fidelity:Mx_sim.Eval.Estimate pairs;
  List.map fst pairs

let axes = [ Design.cost; Design.latency; Design.energy ]

let thin_by_cost ~keep designs =
  let n = List.length designs in
  if n <= keep || keep <= 0 then designs
  else begin
    let arr = Array.of_list (Mx_util.Pareto.sort_by Design.cost designs) in
    if keep = 1 then [ arr.(0) ]
    else List.init keep (fun i -> arr.(i * (n - 1) / (keep - 1)))
  end

let local_promising cfg designs =
  let front = Mx_util.Pareto.front ~axes designs in
  let kept = thin_by_cost ~keep:cfg.phase1_keep front in
  if Mx_util.Metrics.is_on Mx_util.Metrics.global then begin
    Mx_util.Metrics.observe Mx_util.Metrics.global ~unit_:"designs"
      "explore.local_front_size"
      (float_of_int (List.length front));
    Mx_util.Metrics.incr Mx_util.Metrics.global ~by:(List.length kept)
      "explore.phase1_kept"
  end;
  (* terminal Phase I verdict for every input design: kept, thinned off
     the front by the cost subsample, or pruned — with the competitor
     that dominates it (pareto fronts preserve physical identity, so
     [memq] is the membership test) *)
  if Ev.is_on Ev.global then
    List.iter
      (fun (d : Design.t) ->
        let key = Design.structural_key d in
        if List.memq d kept then
          Ev.emit Ev.global ~stage:"phase1" "design.kept"
            [ ("design", Ev.Str key) ]
        else if List.memq d front then
          Ev.emit Ev.global ~stage:"phase1" "design.thinned"
            [ ("design", Ev.Str key) ]
        else begin
          let dominator =
            match
              List.find_opt
                (fun e -> e != d && Mx_util.Pareto.dominates ~axes e d)
                designs
            with
            | Some e -> Design.structural_key e
            | None -> ""
          in
          Ev.emit Ev.global ~stage:"phase1" "design.pruned"
            [ ("design", Ev.Str key); ("dominated_by", Ev.Str dominator) ]
        end)
      designs;
  kept

let fidelity_of_sample = function
  | None -> Mx_sim.Eval.Exact
  | Some (on, off) -> Mx_sim.Eval.Sampled (on, off)

let evaluate_designs cfg workload ~stage ~fidelity designs =
  let pairs =
    Mx_util.Task_pool.parallel_map ~jobs:cfg.jobs ~chunk:1
      (fun (d : Design.t) ->
        let sim, prov =
          Mx_sim.Eval.eval_prov ~fidelity ~workload ~arch:d.Design.mem
            ~conn:d.Design.conn ()
        in
        (Design.with_sim d sim, prov))
      designs
  in
  emit_evaluated ~stage ~fidelity pairs;
  List.map fst pairs

let run ?(config = default_config) workload =
  let metrics = Mx_util.Metrics.global in
  Mx_util.Metrics.with_span metrics
    ("explore.run:" ^ workload.Mx_trace.Workload.name)
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let apex_selected =
    Mx_util.Metrics.with_span metrics "apex.select" (fun () ->
        let profile = Mx_trace.Profile.analyze workload in
        Mx_apex.Explore.select ~config:config.apex profile)
  in
  Mx_util.Metrics.incr metrics ~by:(List.length apex_selected)
    "explore.architectures";
  (* Phase I: estimate the connectivity space of each selected memory
     architecture and keep the locally promising points.  The estimate
     fan-out inside [connectivity_exploration] runs on the task pool;
     the per-architecture loop stays serial so the pool is never asked
     to nest. *)
  let per_arch, survivors =
    Mx_util.Metrics.with_span metrics "explore.phase1" (fun () ->
        let per_arch =
          List.map
            (fun (cand : Mx_apex.Explore.candidate) ->
              Mx_util.Metrics.with_span metrics
                ("phase1:" ^ cand.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label)
                (fun () ->
                  let ests =
                    connectivity_exploration config workload cand
                  in
                  Mx_util.Metrics.incr metrics ~by:(List.length ests)
                    "explore.estimates";
                  ests))
            apex_selected
        in
        (per_arch, List.concat_map (local_promising config) per_arch))
  in
  let estimated = List.concat per_arch in
  (* Phase II: simulation of the combined candidates (optionally
     time-sampled), then the global selection; with sampling enabled the
     most promising sampled designs are refined by exact simulation, as
     in the paper *)
  let simulated =
    Mx_util.Metrics.with_span metrics "explore.phase2" (fun () ->
        Mx_util.Metrics.incr metrics ~by:(List.length survivors)
          "explore.simulations";
        evaluate_designs config workload ~stage:"phase2"
          ~fidelity:(fidelity_of_sample config.sample)
          survivors)
  in
  let simulated =
    match config.sample with
    | Some _ when config.refine_top > 0 ->
      Mx_util.Metrics.with_span metrics "explore.refine" (fun () ->
          let front =
            Mx_util.Pareto.front2 ~x:Design.cost ~y:Design.latency simulated
          in
          let to_refine =
            List.filteri (fun i _ -> i < config.refine_top) front
          in
          Mx_util.Metrics.incr metrics ~by:(List.length to_refine)
            "explore.refined";
          if Ev.is_on Ev.global then
            List.iter
              (fun (d : Design.t) ->
                Ev.emit Ev.global ~stage:"refine" "design.refined"
                  [ ("design", Ev.Str (Design.structural_key d)) ])
              to_refine;
          (* re-simulate only the chosen designs, then splice the exact
             results back over their sampled counterparts by structural
             key — the rest of the population is untouched *)
          let refined =
            evaluate_designs config workload ~stage:"refine"
              ~fidelity:Mx_sim.Eval.Exact to_refine
          in
          let by_key = Hashtbl.create (List.length refined) in
          List.iter
            (fun d -> Hashtbl.replace by_key (Design.structural_key d) d)
            refined;
          List.map
            (fun d ->
              match Hashtbl.find_opt by_key (Design.structural_key d) with
              | Some r -> r
              | None -> d)
            simulated)
    | _ -> simulated
  in
  let pareto_cost_perf =
    Mx_util.Pareto.front2 ~x:Design.cost ~y:Design.latency simulated
  in
  Mx_util.Metrics.incr metrics ~by:(List.length pareto_cost_perf)
    "explore.pareto_points";
  if Ev.is_on Ev.global then
    List.iter
      (fun (d : Design.t) ->
        Ev.emit Ev.global ~stage:"select" "design.selected"
          [
            ("design", Ev.Str (Design.structural_key d));
            ("scenario", Ev.Str "cost_perf");
          ])
      pareto_cost_perf;
  {
    workload;
    apex_selected;
    estimated;
    simulated;
    pareto_cost_perf;
    n_estimates = List.length estimated;
    n_simulations = List.length simulated;
    wall_seconds = Unix.gettimeofday () -. t0;
  }
