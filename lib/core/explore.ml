module Component = Mx_connect.Component
module Conn_arch = Mx_connect.Conn_arch
module Cluster = Mx_connect.Cluster
module Brg = Mx_connect.Brg
module Ev = Mx_util.Event_log
module Pareto = Mx_util.Pareto

type config = {
  apex : Mx_apex.Explore.config;
  onchip : Component.t list;
  offchip : Component.t list;
  max_designs_per_level : int;
  phase1_keep : int;
  sample : (int * int) option;
  refine_top : int;
  jobs : int;
  shards : int;
  archive_eps : float;
  archive_capacity : int option;
}

let default_config =
  {
    apex = Mx_apex.Explore.default_config;
    onchip = Component.onchip_library;
    offchip = Component.offchip_library;
    max_designs_per_level = 4096;
    phase1_keep = 24;
    sample = None;
    refine_top = 16;
    jobs = Mx_util.Task_pool.default_jobs ();
    shards = 1;
    archive_eps = 0.0;
    archive_capacity = None;
  }

let reduced_config =
  {
    apex = Mx_apex.Explore.reduced_config;
    onchip =
      List.filter
        (fun (c : Component.t) ->
          List.mem c.Component.name [ "mux32"; "apb32"; "asb32"; "ahb32" ])
        Component.onchip_library;
    offchip =
      List.filter
        (fun (c : Component.t) -> c.Component.name = "off32")
        Component.offchip_library;
    max_designs_per_level = 1024;
    phase1_keep = 12;
    sample = None;
    refine_top = 8;
    jobs = Mx_util.Task_pool.default_jobs ();
    shards = 1;
    archive_eps = 0.0;
    archive_capacity = None;
  }

type result = {
  workload : Mx_trace.Workload.t;
  apex_selected : Mx_apex.Explore.candidate list;
  estimated : Design.t list;
  simulated : Design.t list;
  pareto_cost_perf : Design.t list;
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
  interrupted : bool;
}

let never = fun () -> false

(* Estimates are cheap (micro- to milliseconds each), so chunk them to
   amortise dispatch; simulations are seconds each, so they are
   dispatched one by one for load balance. *)
let estimate_chunk = 32

(* -- the anytime archive ------------------------------------------------------

   Phase II results are inserted into a [Pareto.Archive] as they commit
   (in deterministic input order — see [Task_pool.parallel_map_commit]),
   so the cost/latency front can be emitted at any moment and an
   interrupted run still returns a valid front of exactly the committed
   prefix.  With the default [eps = 0] / unbounded configuration the
   final front is byte-identical to [Pareto.front2] over the full
   population — the pre-shard behaviour. *)

let front_axes = [ Design.cost; Design.latency ]

let make_archive cfg =
  Pareto.Archive.create ~axes:front_axes ~eps:cfg.archive_eps
    ?capacity:cfg.archive_capacity ()

(* Archive lifecycle events are emitted at commit time on the calling
   domain, so their order — like every design.* event — is a pure
   function of the input stream and stays identical across jobs
   levels. *)
let archive_insert archive (d : Design.t) =
  let outcome = Pareto.Archive.insert archive d in
  let m = Mx_util.Metrics.global in
  (match outcome with
  | Pareto.Archive.Rejected -> Mx_util.Metrics.incr m "explore.archive.rejects"
  | Pareto.Archive.Added { removed; evicted } ->
    Mx_util.Metrics.incr m "explore.archive.inserts";
    Mx_util.Metrics.incr m
      ~by:(List.length removed + List.length evicted)
      "explore.archive.evictions");
  if Ev.is_on Ev.global then begin
    let key = Design.structural_key d in
    match outcome with
    | Pareto.Archive.Rejected ->
      Ev.emit Ev.global ~stage:"archive" "archive.reject"
        [ ("design", Ev.Str key) ]
    | Pareto.Archive.Added { removed; evicted } ->
      Ev.emit Ev.global ~stage:"archive" "archive.insert"
        [ ("design", Ev.Str key) ];
      List.iter
        (fun (r : Design.t) ->
          Ev.emit Ev.global ~stage:"archive" "archive.evict"
            [
              ("design", Ev.Str (Design.structural_key r));
              ("reason", Ev.Str "dominated");
              ("by", Ev.Str key);
            ])
        removed;
      List.iter
        (fun (r : Design.t) ->
          Ev.emit Ev.global ~stage:"archive" "archive.evict"
            [
              ("design", Ev.Str (Design.structural_key r));
              ("reason", Ev.Str "capacity");
            ])
        evicted
  end

(* -- Phase I: the shard work-queue --------------------------------------------

   Each selected memory architecture is planned (serially, on the
   calling domain: BRG, clustering levels, shard split — so cluster.*,
   assign.* and shard.planned events are deterministic), the shards of
   every architecture are concatenated into one work-queue, and the
   queue is consumed by the task pool.  Shard enumeration is silent on
   the workers; results commit in queue order, so the merged per-
   architecture design stream is byte-identical to the monolithic
   [Assign.enumerate_levels] whatever the shard count or jobs level. *)

type planned = {
  cand : Mx_apex.Explore.candidate;
  shards : Shard.resolved list;
}

let plan_candidate (cfg : config) ~workload_fp
    (cand : Mx_apex.Explore.candidate) =
  let arch = cand.Mx_apex.Explore.arch in
  let brg = Brg.build arch cand.Mx_apex.Explore.profile in
  let levels =
    Cluster.levels_ordered Cluster.Lowest_bandwidth_first brg.Brg.channels
  in
  let shards =
    Shard.plan ~shards:cfg.shards
      ~max_designs_per_level:cfg.max_designs_per_level ~workload_fp
      ~arch_label:arch.Mx_mem.Mem_arch.label
      ~arch_fp:(Mx_mem.Mem_arch.fingerprint arch)
      ~onchip:cfg.onchip ~offchip:cfg.offchip levels
  in
  { cand; shards }

let phase1 ?(interrupt = never) cfg workload cands =
  let metrics = Mx_util.Metrics.global in
  let workload_fp = Mx_trace.Workload.fingerprint workload in
  let planned =
    Mx_util.Metrics.with_span metrics "explore.plan" (fun () ->
        List.map (plan_candidate cfg ~workload_fp) cands)
  in
  (* the global queue: every architecture's shards, in plan order *)
  let queue =
    List.concat_map
      (fun p -> List.map (fun s -> (p.cand, s)) p.shards)
      planned
  in
  let n_shards = List.length queue in
  Mx_util.Snapshot.add_shards_planned n_shards;
  let slices = Array.make (max 1 n_shards) [] in
  let committed =
    Mx_util.Task_pool.parallel_map_commit ~jobs:cfg.jobs ~chunk:1
      ~should_stop:interrupt
      ~commit:(fun i (_, shard) conns ->
        slices.(i) <- conns;
        Mx_util.Snapshot.shard_committed ();
        Mx_util.Metrics.incr metrics "shard.finished";
        if Ev.is_on Ev.global then
          Ev.emit Ev.global ~stage:"shard" "shard.finished"
            [
              ("shard", Ev.Str (Shard.fingerprint (Shard.descriptor shard)));
              ("designs", Ev.Int (List.length conns));
            ])
      (fun (_, shard) ->
        (* which domain ran a shard — and whether a pool worker stole it
           from the caller — is scheduling, hence the sched. segment; it
           gets its own stage so the per-stage seq numbering of the
           deterministic shard.* records is not perturbed by it *)
        if Ev.is_on Ev.global then
          Ev.emit Ev.global ~stage:"sched"
            (if Mx_util.Task_pool.in_worker_domain () then
               "shard.sched.stolen"
             else "shard.sched.started")
            [
              ("shard", Ev.Str (Shard.fingerprint (Shard.descriptor shard)));
              ("domain", Ev.Int (Domain.self () :> int));
            ];
        Shard.enumerate shard)
      queue
  in
  if committed < n_shards then None
  else
    (* merge, dedup and estimate per architecture, in candidate order *)
    let offset = ref 0 in
    Some
      (List.map
         (fun p ->
           let label = p.cand.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label in
           Mx_util.Metrics.with_span metrics ("phase1:" ^ label) @@ fun () ->
           let stream =
             List.concat_map
               (fun shard ->
                 let i = !offset in
                 incr offset;
                 let fp = Shard.fingerprint (Shard.descriptor shard) in
                 List.map (fun conn -> (fp, conn)) slices.(i))
               p.shards
           in
           (* cross-level dedup, first occurrence wins — the monolithic
              [Assign.enumerate_levels] contract, now at merge time *)
           let seen = Hashtbl.create 64 in
           let kept =
             List.filter
               (fun (_, conn) ->
                 let key = Conn_arch.describe conn in
                 if Hashtbl.mem seen key then begin
                   Mx_util.Metrics.incr metrics "assign.dedup_pruned";
                   if Ev.is_on Ev.global then
                     Ev.emit Ev.global ~stage:"assign" "assign.rejected"
                       [
                         ("conn", Ev.Str key);
                         ("reason", Ev.Str "duplicate");
                       ];
                   false
                 end
                 else begin
                   Hashtbl.add seen key ();
                   if Ev.is_on Ev.global then
                     Ev.emit Ev.global ~stage:"assign" "assign.kept"
                       [ ("conn", Ev.Str key) ];
                   true
                 end)
               stream
           in
           Mx_util.Metrics.incr metrics ~by:(List.length kept) "assign.kept";
           let pairs =
             Mx_util.Task_pool.parallel_map ~jobs:cfg.jobs
               ~chunk:estimate_chunk
               (fun (shard_fp, conn) ->
                 let est, prov =
                   Mx_sim.Eval.eval_prov ~fidelity:Mx_sim.Eval.Estimate
                     ~workload ~arch:p.cand.Mx_apex.Explore.arch
                     ~profile:p.cand.Mx_apex.Explore.profile ~shard:shard_fp
                     ~conn ()
                 in
                 ( Design.make ~workload_name:workload.Mx_trace.Workload.name
                     ~mem:p.cand.Mx_apex.Explore.arch ~conn ~est (),
                   prov,
                   shard_fp ))
               kept
           in
           if Ev.is_on Ev.global then begin
             List.iter
               (fun ((d : Design.t), _, _) ->
                 Ev.emit Ev.global ~stage:"phase1" "design.created"
                   [
                     ("design", Ev.Str (Design.structural_key d));
                     ("id", Ev.Str (Design.id d));
                     ("arch", Ev.Str label);
                   ])
               pairs;
             let ftag = Mx_sim.Eval.fidelity_tag Mx_sim.Eval.Estimate in
             List.iter
               (fun ((d : Design.t), prov, shard_fp) ->
                 let key = Design.structural_key d in
                 Ev.emit Ev.global ~stage:"phase1" "design.evaluated"
                   [ ("design", Ev.Str key); ("fidelity", Ev.Str ftag) ];
                 Ev.emit Ev.global ~stage:"phase1" "eval.cache.provenance"
                   [
                     ("design", Ev.Str key);
                     ("fidelity", Ev.Str ftag);
                     ("source", Ev.Str (Mx_sim.Eval.provenance_tag prov));
                     ("shard", Ev.Str shard_fp);
                   ])
               pairs
           end;
           let ests = List.map (fun (d, _, _) -> d) pairs in
           Mx_util.Snapshot.eval_committed ~by:(List.length ests) ();
           Mx_util.Metrics.incr metrics ~by:(List.length ests)
             "explore.estimates";
           ests)
         planned)

let connectivity_exploration cfg workload (cand : Mx_apex.Explore.candidate) =
  match phase1 cfg workload [ cand ] with
  | Some [ ests ] -> ests
  | _ -> assert false (* never interrupts, one candidate in = one list out *)

let axes = [ Design.cost; Design.latency; Design.energy ]

let thin_by_cost ~keep designs =
  let n = List.length designs in
  if n <= keep || keep <= 0 then designs
  else begin
    let arr = Array.of_list (Mx_util.Pareto.sort_by Design.cost designs) in
    if keep = 1 then [ arr.(0) ]
    else List.init keep (fun i -> arr.(i * (n - 1) / (keep - 1)))
  end

let local_promising cfg designs =
  let front = Mx_util.Pareto.front ~axes designs in
  let kept = thin_by_cost ~keep:cfg.phase1_keep front in
  if Mx_util.Metrics.is_on Mx_util.Metrics.global then begin
    Mx_util.Metrics.observe Mx_util.Metrics.global ~unit_:"designs"
      "explore.local_front_size"
      (float_of_int (List.length front));
    Mx_util.Metrics.incr Mx_util.Metrics.global ~by:(List.length kept)
      "explore.phase1_kept"
  end;
  (* terminal Phase I verdict for every input design: kept, thinned off
     the front by the cost subsample, or pruned — with the competitor
     that dominates it (pareto fronts preserve physical identity, so
     [memq] is the membership test) *)
  if Ev.is_on Ev.global then
    List.iter
      (fun (d : Design.t) ->
        let key = Design.structural_key d in
        if List.memq d kept then
          Ev.emit Ev.global ~stage:"phase1" "design.kept"
            [ ("design", Ev.Str key) ]
        else if List.memq d front then
          Ev.emit Ev.global ~stage:"phase1" "design.thinned"
            [ ("design", Ev.Str key) ]
        else begin
          let dominator =
            match
              List.find_opt
                (fun e -> e != d && Mx_util.Pareto.dominates ~axes e d)
                designs
            with
            | Some e -> Design.structural_key e
            | None -> ""
          in
          Ev.emit Ev.global ~stage:"phase1" "design.pruned"
            [ ("design", Ev.Str key); ("dominated_by", Ev.Str dominator) ]
        end)
      designs;
  kept

let fidelity_of_sample = function
  | None -> Mx_sim.Eval.Exact
  | Some (on, off) -> Mx_sim.Eval.Sampled (on, off)

let evaluate_designs cfg workload ~stage ~fidelity ?(interrupt = never)
    ?archive designs =
  let ftag = Mx_sim.Eval.fidelity_tag fidelity in
  let acc = ref [] in
  let _committed =
    Mx_util.Task_pool.parallel_map_commit ~jobs:cfg.jobs ~chunk:1
      ~should_stop:interrupt
      ~commit:(fun _ _ ((d : Design.t), prov) ->
        if Ev.is_on Ev.global then begin
          let key = Design.structural_key d in
          Ev.emit Ev.global ~stage "design.evaluated"
            [ ("design", Ev.Str key); ("fidelity", Ev.Str ftag) ];
          Ev.emit Ev.global ~stage "eval.cache.provenance"
            [
              ("design", Ev.Str key);
              ("fidelity", Ev.Str ftag);
              ("source", Ev.Str (Mx_sim.Eval.provenance_tag prov));
            ]
        end;
        Option.iter (fun a -> archive_insert a d) archive;
        Mx_util.Snapshot.eval_committed
          ?archive:(Option.map Pareto.Archive.size archive) ();
        acc := d :: !acc)
      (fun (d : Design.t) ->
        let sim, prov =
          Mx_sim.Eval.eval_prov ~fidelity ~workload ~arch:d.Design.mem
            ~conn:d.Design.conn ()
        in
        (Design.with_sim d sim, prov))
      designs
  in
  List.rev !acc

let run ?(config = default_config) ?(interrupt = never) workload =
  let metrics = Mx_util.Metrics.global in
  Mx_util.Metrics.with_span metrics
    ("explore.run:" ^ workload.Mx_trace.Workload.name)
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let apex_selected =
    Mx_util.Snapshot.set_phase "apex.select";
    Mx_util.Metrics.with_span metrics "apex.select" (fun () ->
        let profile = Mx_trace.Profile.analyze workload in
        Mx_apex.Explore.select ~config:config.apex profile)
  in
  Mx_util.Metrics.incr metrics ~by:(List.length apex_selected)
    "explore.architectures";
  (* Phase I: the sharded connectivity enumeration of every selected
     memory architecture runs on the task pool; merge, dedup and the
     estimate fan-out happen per architecture in deterministic order. *)
  let per_arch =
    Mx_util.Snapshot.set_phase "explore.phase1";
    Mx_util.Metrics.with_span metrics "explore.phase1" (fun () ->
        phase1 ~interrupt config workload apex_selected)
  in
  match per_arch with
  | None ->
    (* interrupted while the shard queue was draining: there are no
       simulated designs yet, so the valid anytime front is empty *)
    Mx_util.Snapshot.set_phase "interrupted";
    {
      workload;
      apex_selected;
      estimated = [];
      simulated = [];
      pareto_cost_perf = [];
      n_estimates = 0;
      n_simulations = 0;
      wall_seconds = Unix.gettimeofday () -. t0;
      interrupted = true;
    }
  | Some per_arch ->
    let survivors = List.concat_map (local_promising config) per_arch in
    let estimated = List.concat per_arch in
    (* Phase II: simulation of the combined candidates (optionally
       time-sampled); every committed result feeds the anytime archive,
       so interrupting mid-phase still leaves a valid front of the
       committed prefix *)
    let archive = make_archive config in
    let simulated =
      Mx_util.Snapshot.set_phase "explore.phase2";
      Mx_util.Metrics.with_span metrics "explore.phase2" (fun () ->
          let sims =
            evaluate_designs config workload ~stage:"phase2"
              ~fidelity:(fidelity_of_sample config.sample)
              ~interrupt ~archive survivors
          in
          Mx_util.Metrics.incr metrics ~by:(List.length sims)
            "explore.simulations";
          sims)
    in
    let phase2_interrupted = List.length simulated < List.length survivors in
    (* with sampling enabled the most promising sampled designs are
       refined by exact simulation, as in the paper *)
    let simulated, pareto_cost_perf, interrupted =
      match config.sample with
      | Some _ when config.refine_top > 0 && not phase2_interrupted ->
        Mx_util.Snapshot.set_phase "explore.refine";
        Mx_util.Metrics.with_span metrics "explore.refine" (fun () ->
            let front = Pareto.Archive.front archive in
            let to_refine =
              List.filteri (fun i _ -> i < config.refine_top) front
            in
            Mx_util.Metrics.incr metrics ~by:(List.length to_refine)
              "explore.refined";
            if Ev.is_on Ev.global then
              List.iter
                (fun (d : Design.t) ->
                  Ev.emit Ev.global ~stage:"refine" "design.refined"
                    [ ("design", Ev.Str (Design.structural_key d)) ])
                to_refine;
            (* re-simulate only the chosen designs, then splice the exact
               results back over their sampled counterparts by structural
               key — the rest of the population is untouched *)
            let refined =
              evaluate_designs config workload ~stage:"refine"
                ~fidelity:Mx_sim.Eval.Exact ~interrupt to_refine
            in
            let refine_interrupted =
              List.length refined < List.length to_refine
            in
            let by_key = Hashtbl.create (max 1 (List.length refined)) in
            List.iter
              (fun d -> Hashtbl.replace by_key (Design.structural_key d) d)
              refined;
            let spliced =
              List.map
                (fun d ->
                  match
                    Hashtbl.find_opt by_key (Design.structural_key d)
                  with
                  | Some r -> r
                  | None -> d)
                simulated
            in
            (* the splice invalidated the archived sampled results:
               replay the spliced stream through a fresh (silent)
               archive with the same thinning parameters *)
            let replay =
              Pareto.Archive.of_list ~axes:front_axes
                ~eps:config.archive_eps ?capacity:config.archive_capacity
                spliced
            in
            (spliced, Pareto.Archive.front replay, refine_interrupted))
      | _ -> (simulated, Pareto.Archive.front archive, phase2_interrupted)
    in
    Mx_util.Snapshot.set_phase (if interrupted then "interrupted" else "done");
    Mx_util.Metrics.incr metrics ~by:(List.length pareto_cost_perf)
      "explore.pareto_points";
    if Ev.is_on Ev.global then
      List.iter
        (fun (d : Design.t) ->
          Ev.emit Ev.global ~stage:"select" "design.selected"
            [
              ("design", Ev.Str (Design.structural_key d));
              ("scenario", Ev.Str "cost_perf");
            ])
        pareto_cost_perf;
    {
      workload;
      apex_selected;
      estimated;
      simulated;
      pareto_cost_perf;
      n_estimates = List.length estimated;
      n_simulations = List.length simulated;
      wall_seconds = Unix.gettimeofday () -. t0;
      interrupted;
    }
