(* The tracker mirrors the Metrics/Event_log idiom: one ambient
   instance, disabled at program start, a single atomic load on every
   tick's fast path.  The watchdog is its own domain so snapshots keep
   flowing — and the stall flag can trip — even when the commit loop
   has stopped committing.  State mutation happens under one mutex;
   file I/O happens outside it. *)

type progress = {
  shards_planned : int;
  shards_committed : int;
  evals_committed : int;
  archive_size : int;
}

type timing = {
  elapsed_s : float;
  eval_rate : float;
  eta_s : float option;
  last_commit_age_s : float;
  stalled : bool;
}

type cache = { hits : int; misses : int; hit_rate : float }
type domain_util = { dom_id : int; busy_s : float; utilization : float }

type t = {
  version : int;
  phase : string;
  progress : progress;
  timing : timing;
  cache : cache;
  domains : domain_util list;
}

let schema_version = 1

(* -- rendering ------------------------------------------------------------ *)

let num = Json.number

let to_json s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\": %d, \"phase\": \"%s\",\n" s.version
       (Json.escape s.phase));
  Buffer.add_string b
    (Printf.sprintf
       " \"progress\": {\"shards_planned\": %d, \"shards_committed\": %d, \
        \"evals_committed\": %d, \"archive_size\": %d},\n"
       s.progress.shards_planned s.progress.shards_committed
       s.progress.evals_committed s.progress.archive_size);
  Buffer.add_string b
    (Printf.sprintf
       " \"timing\": {\"elapsed_s\": %s, \"eval_rate\": %s, \"eta_s\": %s, \
        \"last_commit_age_s\": %s, \"stalled\": %b},\n"
       (num s.timing.elapsed_s) (num s.timing.eval_rate)
       (match s.timing.eta_s with Some e -> num e | None -> "null")
       (num s.timing.last_commit_age_s)
       s.timing.stalled);
  Buffer.add_string b
    (Printf.sprintf
       " \"cache\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %s},\n"
       s.cache.hits s.cache.misses (num s.cache.hit_rate));
  Buffer.add_string b " \"sched\": {\"domains\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"id\": %d, \"busy_s\": %s, \"utilization\": %s}"
           d.dom_id (num d.busy_s) (num d.utilization)))
    s.domains;
  Buffer.add_string b "]}}\n";
  Buffer.contents b

let canonical_json s =
  Printf.sprintf
    "{\"version\": %d, \"phase\": \"%s\", \"progress\": {\"shards_planned\": \
     %d, \"shards_committed\": %d, \"evals_committed\": %d, \
     \"archive_size\": %d}}\n"
    s.version (Json.escape s.phase) s.progress.shards_planned
    s.progress.shards_committed s.progress.evals_committed
    s.progress.archive_size

let of_json text =
  match Json.parse (String.trim text) with
  | Error m -> Error m
  | Ok doc ->
    let ( let* ) r f = Result.bind r f in
    let int_at ?(default = None) path =
      let rec walk v = function
        | [] -> Json.to_int_opt v
        | k :: rest -> Option.bind (Json.member k v) (fun v -> walk v rest)
      in
      match (walk doc path, default) with
      | Some i, _ -> Ok i
      | None, Some d -> Ok d
      | None, None ->
        Error
          (Printf.sprintf "missing or non-integer %S"
             (String.concat "." path))
    in
    let float_at path =
      let rec walk v = function
        | [] -> Json.to_float_opt v
        | k :: rest -> Option.bind (Json.member k v) (fun v -> walk v rest)
      in
      Option.value ~default:0.0 (walk doc path)
    in
    let* version = int_at [ "version" ] in
    let* phase =
      match Option.bind (Json.member "phase" doc) Json.to_string_opt with
      | Some p -> Ok p
      | None -> Error "missing or non-string \"phase\""
    in
    let* shards_planned = int_at [ "progress"; "shards_planned" ] in
    let* shards_committed = int_at [ "progress"; "shards_committed" ] in
    let* evals_committed = int_at [ "progress"; "evals_committed" ] in
    let* archive_size = int_at [ "progress"; "archive_size" ] in
    let eta_s =
      Option.bind
        (Option.bind (Json.member "timing" doc) (Json.member "eta_s"))
        Json.to_float_opt
    in
    let stalled =
      Option.value ~default:false
        (Option.bind
           (Option.bind (Json.member "timing" doc) (Json.member "stalled"))
           Json.to_bool_opt)
    in
    let* hits = int_at ~default:(Some 0) [ "cache"; "hits" ] in
    let* misses = int_at ~default:(Some 0) [ "cache"; "misses" ] in
    let domains =
      match
        Option.bind (Json.member "sched" doc) (Json.member "domains")
      with
      | Some (Json.Arr ds) ->
        List.filter_map
          (fun d ->
            match Option.bind (Json.member "id" d) Json.to_int_opt with
            | None -> None
            | Some dom_id ->
              Some
                {
                  dom_id;
                  busy_s =
                    Option.value ~default:0.0
                      (Option.bind (Json.member "busy_s" d) Json.to_float_opt);
                  utilization =
                    Option.value ~default:0.0
                      (Option.bind
                         (Json.member "utilization" d)
                         Json.to_float_opt);
                })
          ds
      | _ -> []
    in
    Ok
      {
        version;
        phase;
        progress =
          { shards_planned; shards_committed; evals_committed; archive_size };
        timing =
          {
            elapsed_s = float_at [ "timing"; "elapsed_s" ];
            eval_rate = float_at [ "timing"; "eval_rate" ];
            eta_s;
            last_commit_age_s = float_at [ "timing"; "last_commit_age_s" ];
            stalled;
          };
        cache =
          { hits; misses; hit_rate = float_at [ "cache"; "hit_rate" ] };
        domains;
      }

let to_text s =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf
      (fun x ->
        Buffer.add_string b x;
        Buffer.add_char b '\n')
      fmt
  in
  line "phase %s%s" s.phase
    (if s.timing.stalled then
       Printf.sprintf "  [STALLED: no commit for %.0fs]"
         s.timing.last_commit_age_s
     else "");
  let p = s.progress in
  (if p.shards_planned > 0 then begin
     let width = 24 in
     let filled =
       max 0
         (min width (width * p.shards_committed / max 1 p.shards_planned))
     in
     line "  shards   %d/%d committed  [%s%s]%s" p.shards_committed
       p.shards_planned (String.make filled '=')
       (String.make (width - filled) ' ')
       (match s.timing.eta_s with
       | Some e -> Printf.sprintf "  ETA %.1fs" e
       | None -> "")
   end);
  line "  evals    %d committed, archive %d" p.evals_committed p.archive_size;
  line "  rate     %.1f evals/s, elapsed %.1fs, last commit %.1fs ago"
    s.timing.eval_rate s.timing.elapsed_s s.timing.last_commit_age_s;
  line "  cache    %d hits, %d misses (%.1f%% hit rate)" s.cache.hits
    s.cache.misses
    (100.0 *. s.cache.hit_rate);
  if s.domains <> [] then
    line "  domains  %s"
      (String.concat "  "
         (List.map
            (fun d ->
              Printf.sprintf "%d: %.0f%%" d.dom_id (100.0 *. d.utilization))
            s.domains));
  Buffer.contents b

(* -- the ambient tracker -------------------------------------------------- *)

type tracker = {
  on : bool Atomic.t;
  mu : Mutex.t;
  mutable path : string;
  mutable interval : float;
  mutable stall_after : float;
  mutable phase : string;
  mutable shards_planned : int;
  mutable shards_committed : int;
  mutable evals_committed : int;
  mutable archive_size : int;
  mutable started_at : float;
  mutable last_commit : float;
  mutable stop : bool;
  mutable watchdog : unit Domain.t option;
}

let tracker =
  {
    on = Atomic.make false;
    mu = Mutex.create ();
    path = "";
    interval = 1.0;
    stall_after = 30.0;
    phase = "";
    shards_planned = 0;
    shards_committed = 0;
    evals_committed = 0;
    archive_size = 0;
    started_at = 0.0;
    last_commit = 0.0;
    stop = false;
    watchdog = None;
  }

let active () = Atomic.get tracker.on

let domain_busy_prefix = "task_pool.sched.domain_busy_s."

let capture () =
  let tr = tracker in
  Mutex.lock tr.mu;
  let phase = tr.phase
  and shards_planned = tr.shards_planned
  and shards_committed = tr.shards_committed
  and evals_committed = tr.evals_committed
  and archive_size = tr.archive_size
  and started_at = tr.started_at
  and last_commit = tr.last_commit
  and stall_after = tr.stall_after in
  Mutex.unlock tr.mu;
  let now = Unix.gettimeofday () in
  let elapsed_s = if started_at > 0.0 then now -. started_at else 0.0 in
  let last_commit_age_s =
    if last_commit > 0.0 then now -. last_commit else elapsed_s
  in
  let eval_rate =
    if elapsed_s > 0.0 then float_of_int evals_committed /. elapsed_s else 0.0
  in
  let eta_s =
    if shards_committed > 0 && shards_planned >= shards_committed then
      Some
        (elapsed_s /. float_of_int shards_committed
        *. float_of_int (shards_planned - shards_committed))
    else None
  in
  let hits = Metrics.counter_value Metrics.global "eval.cache.hits"
  and misses = Metrics.counter_value Metrics.global "eval.cache.misses" in
  let hit_rate =
    if hits + misses > 0 then
      float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  let domains =
    let ms = Metrics.snapshot Metrics.global in
    List.filter_map
      (fun (name, (h : Metrics.hist)) ->
        let pl = String.length domain_busy_prefix in
        if
          String.length name > pl
          && String.sub name 0 pl = domain_busy_prefix
        then
          match
            int_of_string_opt (String.sub name pl (String.length name - pl))
          with
          | None -> None
          | Some dom_id ->
            let busy_s = h.Metrics.sum in
            Some
              {
                dom_id;
                busy_s;
                utilization =
                  (if elapsed_s > 0.0 then
                     Float.min 1.0 (Float.max 0.0 (busy_s /. elapsed_s))
                   else 0.0);
              }
        else None)
      ms.Metrics.histograms
    |> List.sort (fun a b -> compare a.dom_id b.dom_id)
  in
  {
    version = schema_version;
    phase;
    progress =
      { shards_planned; shards_committed; evals_committed; archive_size };
    timing =
      {
        elapsed_s;
        eval_rate;
        eta_s;
        last_commit_age_s;
        stalled = last_commit_age_s > stall_after;
      };
    cache = { hits; misses; hit_rate };
    domains;
  }

(* Write-temp + rename in the target's directory: a concurrent reader
   of [path] sees either the previous document or this one, whole. *)
let atomic_write ~path content =
  let tmp = path ^ ".tmp" in
  match open_out tmp with
  | exception Sys_error _ -> ()
  | oc ->
    let ok =
      match
        output_string oc content;
        close_out oc
      with
      | () -> true
      | exception Sys_error _ ->
        (try close_out_noerr oc with _ -> ());
        false
    in
    if ok then ( try Sys.rename tmp path with Sys_error _ -> ())

let write_now () =
  if active () then atomic_write ~path:tracker.path (to_json (capture ()))

let rec watchdog_loop last_write =
  let tr = tracker in
  Mutex.lock tr.mu;
  let stop = tr.stop and interval = tr.interval in
  Mutex.unlock tr.mu;
  if not stop then begin
    let now = Unix.gettimeofday () in
    let last_write =
      if now -. last_write >= interval then begin
        write_now ();
        now
      end
      else last_write
    in
    Unix.sleepf (Float.min 0.05 interval);
    watchdog_loop last_write
  end

let finish () =
  if active () then begin
    let tr = tracker in
    Mutex.lock tr.mu;
    tr.stop <- true;
    let wd = tr.watchdog in
    tr.watchdog <- None;
    Mutex.unlock tr.mu;
    (match wd with Some d -> Domain.join d | None -> ());
    write_now ();
    Atomic.set tr.on false;
    Mutex.lock tr.mu;
    tr.phase <- "";
    tr.shards_planned <- 0;
    tr.shards_committed <- 0;
    tr.evals_committed <- 0;
    tr.archive_size <- 0;
    tr.started_at <- 0.0;
    tr.last_commit <- 0.0;
    tr.stop <- false;
    Mutex.unlock tr.mu
  end

let start ?(interval = 1.0) ?(stall_after = 30.0) ~path () =
  finish ();
  let tr = tracker in
  let now = Unix.gettimeofday () in
  Mutex.lock tr.mu;
  tr.path <- path;
  tr.interval <- Float.max 0.05 interval;
  tr.stall_after <- stall_after;
  tr.phase <- "starting";
  tr.shards_planned <- 0;
  tr.shards_committed <- 0;
  tr.evals_committed <- 0;
  tr.archive_size <- 0;
  tr.started_at <- now;
  tr.last_commit <- now;
  tr.stop <- false;
  Mutex.unlock tr.mu;
  Atomic.set tr.on true;
  write_now ();
  let d = Domain.spawn (fun () -> watchdog_loop (Unix.gettimeofday ())) in
  Mutex.lock tr.mu;
  tr.watchdog <- Some d;
  Mutex.unlock tr.mu

(* -- ticks ---------------------------------------------------------------- *)

let with_state f =
  if Atomic.get tracker.on then begin
    Mutex.lock tracker.mu;
    f tracker;
    Mutex.unlock tracker.mu
  end

let set_phase p = with_state (fun tr -> tr.phase <- p)

let add_shards_planned n =
  with_state (fun tr -> tr.shards_planned <- tr.shards_planned + n)

let shard_committed ?archive () =
  with_state (fun tr ->
      tr.shards_committed <- tr.shards_committed + 1;
      (match archive with Some a -> tr.archive_size <- a | None -> ());
      tr.last_commit <- Unix.gettimeofday ())

let eval_committed ?(by = 1) ?archive () =
  with_state (fun tr ->
      tr.evals_committed <- tr.evals_committed + by;
      (match archive with Some a -> tr.archive_size <- a | None -> ());
      tr.last_commit <- Unix.gettimeofday ())
