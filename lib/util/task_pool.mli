(** A reusable fixed-size pool of worker domains for data-parallel maps.

    Domains are spawned lazily on the first parallel call and reused by
    every subsequent call (spawning a domain costs ~100µs and each one
    owns a minor heap, so a pool must be long-lived).  The pool only
    ever grows, up to the largest [jobs] ever requested, and is torn
    down automatically at program exit.

    Concurrency contract for work items: the mapped function receives
    elements of the input list and must not share {e mutable} state with
    other invocations — immutable (frozen) structures may be shared
    freely across domains.  [parallel_map] called from inside a worker
    (nested parallelism) silently degrades to [List.map], so it is safe
    but not faster. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1.  One domain is
    reserved for the caller, which also participates in the map. *)

val pool_size : unit -> int
(** Number of worker domains currently alive (0 until the first
    parallel call). *)

val in_worker_domain : unit -> bool
(** True when called from inside a pool worker domain (where nested
    parallel calls degrade to serial).  Useful for labelling
    schedule-dependent ([sched.]) observability records. *)

val parallel_map : jobs:int -> chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs ~chunk f xs] is [List.map f xs] computed with up
    to [jobs] domains (the caller plus [jobs - 1] pool workers).  The
    input is split into contiguous chunks of [chunk] elements ([chunk]
    is clamped to at least 1) that are dispatched to the pool; the
    caller executes chunks too, so no domain idles.

    Guarantees:
    - {b ordering}: the result list is in input order, identical to
      [List.map f xs] — chunking and scheduling are invisible;
    - {b exceptions}: if any [f x] raises, the first exception in input
      order is re-raised in the caller after all in-flight chunks have
      drained (other chunks may have run: [f] should be effect-free);
    - {b serial fallback}: [jobs <= 1], a singleton or empty [xs], or a
      call from inside a pool worker runs plain [List.map f xs] on the
      calling domain and spawns nothing.

    @raise Invalid_argument if [jobs < 0]. *)

val parallel_map_commit :
  jobs:int ->
  chunk:int ->
  ?should_stop:(unit -> bool) ->
  commit:(int -> 'a -> 'b -> unit) ->
  ('a -> 'b) ->
  'a list ->
  int
(** [parallel_map_commit ~jobs ~chunk ?should_stop ~commit f xs] maps
    [f] over [xs] with the same pool, chunking and serial-fallback rules
    as {!parallel_map}, but instead of returning the results it hands
    each one to [commit idx x (f x)] — {b only on the calling domain,
    in strict input-index order, each element exactly once}.  Anything
    [commit] does (event emission, archive insertion, accumulation) is
    therefore a pure function of the input list, independent of [jobs]
    and scheduling.  Returns the number of committed elements.

    [should_stop] (default: never) is polled on the calling domain
    before each element is committed (and before each element is
    computed on the serial path).  Once it returns true: no further
    elements are committed, chunks not yet started are skipped,
    in-flight chunks drain, and the call returns the length of the
    committed prefix — an {e anytime} map that always stops at a clean
    input prefix.

    If some [f x] raises, the first exception in commit order is
    re-raised after the committed prefix [0 .. i) is preserved and the
    remaining work is cancelled/drained.  [commit] itself must not
    raise and must not call back into the pool.

    @raise Invalid_argument if [jobs < 0]. *)
