(** A reusable fixed-size pool of worker domains for data-parallel maps.

    Domains are spawned lazily on the first parallel call and reused by
    every subsequent call (spawning a domain costs ~100µs and each one
    owns a minor heap, so a pool must be long-lived).  The pool only
    ever grows, up to the largest [jobs] ever requested, and is torn
    down automatically at program exit.

    Concurrency contract for work items: the mapped function receives
    elements of the input list and must not share {e mutable} state with
    other invocations — immutable (frozen) structures may be shared
    freely across domains.  [parallel_map] called from inside a worker
    (nested parallelism) silently degrades to [List.map], so it is safe
    but not faster. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1.  One domain is
    reserved for the caller, which also participates in the map. *)

val pool_size : unit -> int
(** Number of worker domains currently alive (0 until the first
    parallel call). *)

val parallel_map : jobs:int -> chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs ~chunk f xs] is [List.map f xs] computed with up
    to [jobs] domains (the caller plus [jobs - 1] pool workers).  The
    input is split into contiguous chunks of [chunk] elements ([chunk]
    is clamped to at least 1) that are dispatched to the pool; the
    caller executes chunks too, so no domain idles.

    Guarantees:
    - {b ordering}: the result list is in input order, identical to
      [List.map f xs] — chunking and scheduling are invisible;
    - {b exceptions}: if any [f x] raises, the first exception in input
      order is re-raised in the caller after all in-flight chunks have
      drained (other chunks may have run: [f] should be effect-free);
    - {b serial fallback}: [jobs <= 1], a singleton or empty [xs], or a
      call from inside a pool worker runs plain [List.map f xs] on the
      calling domain and spawns nothing.

    @raise Invalid_argument if [jobs < 0]. *)
