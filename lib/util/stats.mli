(** Small statistics helpers shared by the profiler, the estimators and
    the reporting code. *)

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val variance : t -> float
  (** Population variance; 0.0 for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)
end

val mean : float list -> float
(** 0.0 on the empty list. *)

val percentile : float list -> p:float -> float option
(** [percentile xs ~p] with [p] in [\[0,100\]], nearest-rank method.
    [None] on the empty list; a singleton is its own every-percentile. *)

val stddev : float list -> float
(** Population standard deviation; total: 0.0 on zero or one element. *)

val spearman : float list -> float list -> float option
(** Spearman rank correlation in [\[-1, 1\]], with fractional ranks for
    ties.  [None] when the lists' lengths differ, fewer than two pairs
    are given, or either side is constant (correlation undefined). *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0.0 on the empty list. *)

val ratio_pct : float -> float -> float
(** [ratio_pct a b] is [100 * (b - a) / b]: the percentage improvement of
    [a] over [b] when lower is better.  0.0 when [b = 0]. *)
