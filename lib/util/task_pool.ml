(* A single process-wide pool guarded by one mutex: workers block on
   [cond] waiting for tasks; completions are signalled on the same
   condition variable (waiters re-check their own predicate, so shared
   wakeups are only spurious, never lost). *)

type task = unit -> unit

let mutex = Mutex.create ()
let cond = Condition.create ()
let queue : task Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let stopping = ref false

(* Workers mark their domain so that nested [parallel_map] calls degrade
   to serial maps instead of deadlocking the pool on itself. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let in_worker_domain () = Domain.DLS.get in_worker

let pool_size () =
  Mutex.lock mutex;
  let n = List.length !workers in
  Mutex.unlock mutex;
  n

let worker_loop () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock mutex;
    while Queue.is_empty queue && not !stopping do
      Condition.wait cond mutex
    done;
    match Queue.take_opt queue with
    | None -> Mutex.unlock mutex (* stopping and drained: exit *)
    | Some task ->
      Mutex.unlock mutex;
      task ();
      loop ()
  in
  loop ()

(* Tear the pool down when the main domain exits so the runtime never
   waits on workers parked in [Condition.wait]. *)
let () =
  at_exit (fun () ->
      Mutex.lock mutex;
      stopping := true;
      let ws = !workers in
      workers := [];
      Condition.broadcast cond;
      Mutex.unlock mutex;
      List.iter Domain.join ws)

(* Grow the pool to [n] workers; caller holds [mutex]. *)
let ensure_workers n =
  let have = List.length !workers in
  for _ = have + 1 to n do
    workers := Domain.spawn worker_loop :: !workers
  done

(* Items and calls are schedule-invariant; everything about how the
   work was split or who ran it lives under the sched. namespace (see
   the Metrics determinism contract). *)
let note_call xs =
  if Metrics.is_on Metrics.global then begin
    Metrics.incr Metrics.global "task_pool.calls";
    Metrics.incr Metrics.global ~by:(List.length xs) "task_pool.items"
  end

let parallel_map ~jobs ~chunk f xs =
  if jobs < 0 then invalid_arg "Task_pool.parallel_map: jobs < 0";
  let chunk = max 1 chunk in
  note_call xs;
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 || Domain.DLS.get in_worker -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let nchunks = (n + chunk - 1) / chunk in
    (* per-call completion state; [results] and [remaining] are only
       touched under [mutex] *)
    let results : ('b list, exn) result option array = Array.make nchunks None in
    let remaining = ref nchunks in
    let run_chunk ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) - 1 in
      let traced = Metrics.is_on Metrics.global in
      let t0 = if traced then Unix.gettimeofday () else 0.0 in
      let r =
        try
          (* explicit left-to-right order within the chunk *)
          let rec go i acc =
            if i > hi then List.rev acc else go (i + 1) (f arr.(i) :: acc)
          in
          Ok (go lo [])
        with e -> Error e
      in
      if traced then
        (* per-domain busy time: which domain ran the chunk is a
           scheduling artifact, hence sched. *)
        Metrics.observe Metrics.global ~unit_:"s"
          (Printf.sprintf "task_pool.sched.domain_busy_s.%d"
             (Domain.self () :> int))
          (Unix.gettimeofday () -. t0);
      Mutex.lock mutex;
      results.(ci) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast cond;
      Mutex.unlock mutex
    in
    if Metrics.is_on Metrics.global then
      Metrics.incr Metrics.global ~by:(nchunks - 1)
        "task_pool.sched.dispatched_chunks";
    Mutex.lock mutex;
    ensure_workers (min (jobs - 1) (nchunks - 1));
    for ci = nchunks - 1 downto 1 do
      Queue.push (fun () -> run_chunk ci) queue
    done;
    Condition.broadcast cond;
    Mutex.unlock mutex;
    (* the caller is a full participant: run chunk 0, then keep draining
       the queue; block only when every remaining chunk is in flight *)
    run_chunk 0;
    let rec help () =
      Mutex.lock mutex;
      if !remaining = 0 then Mutex.unlock mutex
      else
        match Queue.take_opt queue with
        | Some task ->
          Mutex.unlock mutex;
          task ();
          help ()
        | None ->
          while !remaining > 0 do
            Condition.wait cond mutex
          done;
          Mutex.unlock mutex
    in
    help ();
    let out = ref [] in
    let error = ref None in
    for ci = nchunks - 1 downto 0 do
      match results.(ci) with
      | Some (Ok ys) -> out := ys @ !out
      | Some (Error e) -> error := Some e
      | None -> assert false
    done;
    (match !error with Some e -> raise e | None -> ());
    !out

(* Ordered-commit variant: chunk results are handed back to the caller
   domain strictly in input-index order, so everything done inside
   [commit] (event emission, archive insertion, accumulation) is a pure
   function of the input list — independent of jobs, chunking and
   scheduling.  A [should_stop] signal turns the call into an anytime
   map: committing halts at a clean prefix, chunks not yet started are
   skipped, and in-flight chunks drain before the call returns. *)

type 'b chunk_cell = CPending | CDone of ('b list, exn) result | CSkipped

let parallel_map_commit ~jobs ~chunk ?(should_stop = fun () -> false) ~commit
    f xs =
  if jobs < 0 then invalid_arg "Task_pool.parallel_map_commit: jobs < 0";
  let chunk = max 1 chunk in
  note_call xs;
  let serial xs =
    let rec go i committed = function
      | [] -> committed
      | x :: rest ->
        if should_stop () then committed
        else begin
          let y = f x in
          commit i x y;
          go (i + 1) (committed + 1) rest
        end
    in
    go 0 0 xs
  in
  match xs with
  | [] -> 0
  | [ _ ] -> serial xs
  | _ when jobs <= 1 || Domain.DLS.get in_worker -> serial xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let nchunks = (n + chunk - 1) / chunk in
    (* per-call state; [cells], [remaining] and [cancelled] are only
       touched under [mutex] *)
    let cells = Array.make nchunks CPending in
    let remaining = ref nchunks in
    let cancelled = ref false in
    let finish_chunk ci st =
      Mutex.lock mutex;
      cells.(ci) <- st;
      decr remaining;
      Condition.broadcast cond;
      Mutex.unlock mutex
    in
    let compute_chunk ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) - 1 in
      let traced = Metrics.is_on Metrics.global in
      let t0 = if traced then Unix.gettimeofday () else 0.0 in
      let r =
        try
          let rec go i acc =
            if i > hi then List.rev acc else go (i + 1) (f arr.(i) :: acc)
          in
          Ok (go lo [])
        with e -> Error e
      in
      if traced then
        Metrics.observe Metrics.global ~unit_:"s"
          (Printf.sprintf "task_pool.sched.domain_busy_s.%d"
             (Domain.self () :> int))
          (Unix.gettimeofday () -. t0);
      finish_chunk ci (CDone r)
    in
    let run_chunk ci =
      (* queued work re-checks the cancel flag before computing, so a
         stop (or an error) abandons every chunk not yet started *)
      Mutex.lock mutex;
      let skip = !cancelled in
      Mutex.unlock mutex;
      if skip then finish_chunk ci CSkipped else compute_chunk ci
    in
    if Metrics.is_on Metrics.global then
      Metrics.incr Metrics.global ~by:(nchunks - 1)
        "task_pool.sched.dispatched_chunks";
    Mutex.lock mutex;
    ensure_workers (min (jobs - 1) (nchunks - 1));
    (* ascending dispatch: completion tends to follow commit order *)
    for ci = 1 to nchunks - 1 do
      Queue.push (fun () -> run_chunk ci) queue
    done;
    Condition.broadcast cond;
    Mutex.unlock mutex;
    (* chunk 0 commits first, so the caller always computes it *)
    compute_chunk 0;
    let committed = ref 0 in
    let next = ref 0 in
    let error = ref None in
    let stopped = ref false in
    let cancel_rest () =
      Mutex.lock mutex;
      cancelled := true;
      Mutex.unlock mutex
    in
    let commit_chunk ci ys =
      let lo = ci * chunk in
      List.iteri
        (fun k y ->
          if !error = None && not !stopped then
            if should_stop () then begin
              stopped := true;
              cancel_rest ()
            end
            else begin
              commit (lo + k) arr.(lo + k) y;
              incr committed
            end)
        ys
    in
    (* Caller-only loop: commit finished chunks in strict index order;
       help execute queued chunks while the next one is pending. *)
    let rec drive () =
      Mutex.lock mutex;
      let rec take_ready acc =
        if !next < nchunks && !error = None && not !stopped then
          match cells.(!next) with
          | CDone r ->
            let ci = !next in
            incr next;
            take_ready ((ci, r) :: acc)
          | CSkipped ->
            incr next;
            take_ready acc
          | CPending -> List.rev acc
        else List.rev acc
      in
      let ready = take_ready [] in
      if ready <> [] then begin
        Mutex.unlock mutex;
        List.iter
          (fun (ci, r) ->
            match r with
            | Ok ys -> commit_chunk ci ys
            | Error e ->
              if !error = None then begin
                error := Some e;
                cancel_rest ()
              end)
          ready;
        drive ()
      end
      else if !remaining = 0 then Mutex.unlock mutex
      else if !error <> None || !stopped then (
        (* nothing more to commit: drain the in-flight chunks (helping
           with still-queued ones, which will skip themselves) *)
        match Queue.take_opt queue with
        | Some task ->
          Mutex.unlock mutex;
          task ();
          drive ()
        | None ->
          while !remaining > 0 do
            Condition.wait cond mutex
          done;
          Mutex.unlock mutex)
      else
        match Queue.take_opt queue with
        | Some task ->
          Mutex.unlock mutex;
          task ();
          drive ()
        | None ->
          (* every remaining chunk is in flight; wait for one *)
          Condition.wait cond mutex;
          Mutex.unlock mutex;
          drive ()
    in
    drive ();
    (match !error with Some e -> raise e | None -> ());
    !committed
