(* A single process-wide pool guarded by one mutex: workers block on
   [cond] waiting for tasks; completions are signalled on the same
   condition variable (waiters re-check their own predicate, so shared
   wakeups are only spurious, never lost). *)

type task = unit -> unit

let mutex = Mutex.create ()
let cond = Condition.create ()
let queue : task Queue.t = Queue.create ()
let workers : unit Domain.t list ref = ref []
let stopping = ref false

(* Workers mark their domain so that nested [parallel_map] calls degrade
   to serial maps instead of deadlocking the pool on itself. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let pool_size () =
  Mutex.lock mutex;
  let n = List.length !workers in
  Mutex.unlock mutex;
  n

let worker_loop () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock mutex;
    while Queue.is_empty queue && not !stopping do
      Condition.wait cond mutex
    done;
    match Queue.take_opt queue with
    | None -> Mutex.unlock mutex (* stopping and drained: exit *)
    | Some task ->
      Mutex.unlock mutex;
      task ();
      loop ()
  in
  loop ()

(* Tear the pool down when the main domain exits so the runtime never
   waits on workers parked in [Condition.wait]. *)
let () =
  at_exit (fun () ->
      Mutex.lock mutex;
      stopping := true;
      let ws = !workers in
      workers := [];
      Condition.broadcast cond;
      Mutex.unlock mutex;
      List.iter Domain.join ws)

(* Grow the pool to [n] workers; caller holds [mutex]. *)
let ensure_workers n =
  let have = List.length !workers in
  for _ = have + 1 to n do
    workers := Domain.spawn worker_loop :: !workers
  done

(* Items and calls are schedule-invariant; everything about how the
   work was split or who ran it lives under the sched. namespace (see
   the Metrics determinism contract). *)
let note_call xs =
  if Metrics.is_on Metrics.global then begin
    Metrics.incr Metrics.global "task_pool.calls";
    Metrics.incr Metrics.global ~by:(List.length xs) "task_pool.items"
  end

let parallel_map ~jobs ~chunk f xs =
  if jobs < 0 then invalid_arg "Task_pool.parallel_map: jobs < 0";
  let chunk = max 1 chunk in
  note_call xs;
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 || Domain.DLS.get in_worker -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let nchunks = (n + chunk - 1) / chunk in
    (* per-call completion state; [results] and [remaining] are only
       touched under [mutex] *)
    let results : ('b list, exn) result option array = Array.make nchunks None in
    let remaining = ref nchunks in
    let run_chunk ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) - 1 in
      let traced = Metrics.is_on Metrics.global in
      let t0 = if traced then Unix.gettimeofday () else 0.0 in
      let r =
        try
          (* explicit left-to-right order within the chunk *)
          let rec go i acc =
            if i > hi then List.rev acc else go (i + 1) (f arr.(i) :: acc)
          in
          Ok (go lo [])
        with e -> Error e
      in
      if traced then
        (* per-domain busy time: which domain ran the chunk is a
           scheduling artifact, hence sched. *)
        Metrics.observe Metrics.global ~unit_:"s"
          (Printf.sprintf "task_pool.sched.domain_busy_s.%d"
             (Domain.self () :> int))
          (Unix.gettimeofday () -. t0);
      Mutex.lock mutex;
      results.(ci) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast cond;
      Mutex.unlock mutex
    in
    if Metrics.is_on Metrics.global then
      Metrics.incr Metrics.global ~by:(nchunks - 1)
        "task_pool.sched.dispatched_chunks";
    Mutex.lock mutex;
    ensure_workers (min (jobs - 1) (nchunks - 1));
    for ci = nchunks - 1 downto 1 do
      Queue.push (fun () -> run_chunk ci) queue
    done;
    Condition.broadcast cond;
    Mutex.unlock mutex;
    (* the caller is a full participant: run chunk 0, then keep draining
       the queue; block only when every remaining chunk is in flight *)
    run_chunk 0;
    let rec help () =
      Mutex.lock mutex;
      if !remaining = 0 then Mutex.unlock mutex
      else
        match Queue.take_opt queue with
        | Some task ->
          Mutex.unlock mutex;
          task ();
          help ()
        | None ->
          while !remaining > 0 do
            Condition.wait cond mutex
          done;
          Mutex.unlock mutex
    in
    help ();
    let out = ref [] in
    let error = ref None in
    for ci = nchunks - 1 downto 0 do
      match results.(ci) with
      | Some (Ok ys) -> out := ys @ !out
      | Some (Error e) -> error := Some e
      | None -> assert false
    done;
    (match !error with Some e -> raise e | None -> ());
    !out
