(* A bounded, thread-safe, content-addressed result cache.

   Entries are keyed by canonical strings (structural fingerprints) and
   live in one hash table guarded by a mutex.  Lookups that miss insert
   a [Pending] marker and compute outside the lock; concurrent lookups
   of the same key block on a condition variable until the first
   computation publishes ([Ready]) — the "single-flight" property that
   makes compute counts identical at every Task_pool jobs level.

   Eviction is LRU-ish: each entry carries a last-use tick and the
   least recently used [Ready] entry is dropped when an insert pushes
   the table past capacity.  [Pending] entries are never evicted (a
   waiter may hold a reference to them). *)

type 'a state = Pending | Ready of 'a

type 'a entry = { mutable state : 'a state; mutable last_use : int }

type stats = { hits : int; misses : int; evictions : int; size : int }

type 'a t = {
  capacity : int;
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  registry : Metrics.t;
  prefix : string option;
}

let create ?(registry = Metrics.global) ?metrics_prefix ~capacity () =
  {
    capacity;
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create (max 16 (min 4096 capacity));
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    registry;
    prefix = metrics_prefix;
  }

let capacity t = t.capacity
let enabled t = t.capacity > 0

let record t what =
  match t.prefix with
  | None -> ()
  | Some p -> Metrics.incr t.registry (p ^ "." ^ what)

let hit t =
  Atomic.incr t.hits;
  record t "hits"

let miss t =
  Atomic.incr t.misses;
  record t "misses"

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

(* Drop the least-recently-used Ready entries until the table fits the
   capacity again.  Called with [t.mu] held. *)
let evict_to_capacity t =
  while
    Hashtbl.length t.tbl > t.capacity
    &&
    (* find the Ready entry with the smallest last-use tick *)
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match e.state with
        | Pending -> ()
        | Ready _ -> (
          match !victim with
          | Some (_, best) when best <= e.last_use -> ()
          | _ -> victim := Some (key, e.last_use)))
      t.tbl;
    match !victim with
    | None -> false (* everything pending: tolerate the overshoot *)
    | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      Atomic.incr t.evictions;
      record t "evictions";
      true
  do
    ()
  done

let find_or_compute_prov t ~key f =
  if not (enabled t) then begin
    miss t;
    (f (), false)
  end
  else begin
    Mutex.lock t.mu;
    let rec lookup () =
      match Hashtbl.find_opt t.tbl key with
      | Some ({ state = Ready v; _ } as e) ->
        touch t e;
        Mutex.unlock t.mu;
        hit t;
        (v, true)
      | Some { state = Pending; _ } ->
        (* another domain is computing this key: wait for it *)
        Condition.wait t.cond t.mu;
        lookup ()
      | None ->
        let e = { state = Pending; last_use = t.tick } in
        Hashtbl.add t.tbl key e;
        Mutex.unlock t.mu;
        miss t;
        (match f () with
        | v ->
          Mutex.lock t.mu;
          e.state <- Ready v;
          touch t e;
          evict_to_capacity t;
          Condition.broadcast t.cond;
          Mutex.unlock t.mu;
          (v, false)
        | exception exn ->
          (* never cache a failure: drop the marker so a later call
             retries, and wake the waiters (they will recompute) *)
          Mutex.lock t.mu;
          Hashtbl.remove t.tbl key;
          Condition.broadcast t.cond;
          Mutex.unlock t.mu;
          raise exn)
    in
    lookup ()
  end

let find_or_compute t ~key f = fst (find_or_compute_prov t ~key f)

let peek t ~key =
  if not (enabled t) then None
  else begin
    Mutex.lock t.mu;
    let r =
      match Hashtbl.find_opt t.tbl key with
      | Some ({ state = Ready v; _ } as e) ->
        touch t e;
        Some v
      | Some { state = Pending; _ } | None -> None
    in
    Mutex.unlock t.mu;
    if r <> None then hit t;
    r
  end

let length t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    size = length t;
  }

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  (* no waiter can be parked on a cleared Pending entry's key without
     the computing domain still holding the entry record: it publishes
     into its own record and broadcasts, so waiters re-check and simply
     miss afterwards *)
  Condition.broadcast t.cond;
  Mutex.unlock t.mu
