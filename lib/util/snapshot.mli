(** Live run telemetry: periodic, atomically-published status snapshots.

    A long sharded exploration ([conex explore --shards N]) is opaque
    while it runs; this module gives it a heartbeat.  The exploration
    side ticks the ambient {!val-tracker} from its commit loop
    ({!set_phase}, {!add_shards_planned}, {!shard_committed},
    {!eval_committed} — all near-free while tracking is off), and a
    watchdog domain renders the current state to a status file on a
    fixed cadence.  [conex status FILE] reads the file back.

    {b Atomic publication.}  Every write goes to a temporary file in
    the status file's directory and is renamed over the target, so a
    concurrent reader sees either the previous snapshot or the new one,
    never a torn write.  The watchdog keeps writing on its own clock,
    which is what makes {e stalls} visible: when the commit loop stops
    committing, the snapshot's commit age keeps growing and the
    [stalled] flag trips after [stall_after] seconds.

    {b Determinism contract.}  The snapshot document splits into a
    deterministic part — [version], [phase], the [progress] counters —
    that must be byte-identical across [--shards x --jobs] levels for
    the same exploration, and explicitly exempt [timing], [cache] and
    [sched] sections (wall-clock, cache hit patterns and per-domain
    utilization are schedule-dependent by nature).  {!canonical_json}
    renders exactly the deterministic part; the test suite compares it
    across jobs levels. *)

(** {1 The snapshot document} *)

type progress = {
  shards_planned : int;
  shards_committed : int;
  evals_committed : int;  (** designs evaluated (estimates + simulations) *)
  archive_size : int;  (** current Pareto archive population *)
}

type timing = {
  elapsed_s : float;  (** since {!start} *)
  eval_rate : float;  (** evals committed per second of elapsed time *)
  eta_s : float option;
      (** projected seconds to finish the current shard plan, from the
          mean committed-shard duration; [None] until the first commit
          or outside a shard phase *)
  last_commit_age_s : float;  (** seconds since the last commit tick *)
  stalled : bool;  (** [last_commit_age_s > stall_after] *)
}

type cache = {
  hits : int;
  misses : int;
  hit_rate : float;  (** 0 when the cache was never consulted *)
}

type domain_util = {
  dom_id : int;
  busy_s : float;  (** summed busy time from the task-pool histograms *)
  utilization : float;  (** [busy_s / elapsed_s], clamped to [0, 1] *)
}

type t = {
  version : int;  (** schema version, currently {!schema_version} *)
  phase : string;  (** e.g. ["explore.phase1"] *)
  progress : progress;
  timing : timing;  (** exempt from the determinism contract *)
  cache : cache;  (** exempt *)
  domains : domain_util list;  (** exempt; sorted by [dom_id] *)
}

val schema_version : int

val to_json : t -> string
(** The full document, newline-terminated:
    {v
    { "version": n, "phase": s,
      "progress": {"shards_planned": n, "shards_committed": n,
                   "evals_committed": n, "archive_size": n},
      "timing":   {"elapsed_s": x, "eval_rate": x, "eta_s": x|null,
                   "last_commit_age_s": x, "stalled": b},
      "cache":    {"hits": n, "misses": n, "hit_rate": x},
      "sched":    {"domains": [{"id": n, "busy_s": x,
                                "utilization": x}, ...]} }
    v} *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json}; tolerates missing exempt sections (they read
    as zeros) but requires [version], [phase] and [progress]. *)

val canonical_json : t -> string
(** Only the deterministic part — [version], [phase], [progress] —
    rendered with sorted, fixed keys; byte-comparable across jobs and
    shard levels. *)

val to_text : t -> string
(** Human-readable rendering for [conex status]: one header line
    (phase, stall warning), progress with a shard bar and ETA, then
    throughput, cache and per-domain utilization lines. *)

(** {1 The ambient tracker} *)

val start :
  ?interval:float -> ?stall_after:float -> path:string -> unit -> unit
(** Begin tracking and spawn the watchdog writer.  [interval] (default
    1s, clamped to at least 0.05) is the write cadence; [stall_after]
    (default 30s) the commit age that trips [stalled].  The first
    snapshot is written immediately.  Calling {!start} while already
    active finishes the previous tracker first. *)

val active : unit -> bool

val finish : unit -> unit
(** Stop the watchdog (joining its domain), write one final snapshot,
    and reset the tracker.  No-op when not active. *)

(** {1 Ticks} — all no-ops while the tracker is inactive. *)

val set_phase : string -> unit

val add_shards_planned : int -> unit
(** Extend the shard plan; resets nothing else. *)

val shard_committed : ?archive:int -> unit -> unit
(** One shard committed; [archive] updates the archive population. *)

val eval_committed : ?by:int -> ?archive:int -> unit -> unit
(** [by] (default 1) designs evaluated and committed. *)

val capture : unit -> t
(** The tracker's current state as a snapshot document (all-zero when
    inactive).  Cache counters and per-domain busy time are read from
    {!Metrics.global} ([eval.cache.hits]/[misses] and the
    [task_pool.sched.domain_busy_s.*] histograms). *)

val write_now : unit -> unit
(** Force one atomic write outside the cadence (no-op when
    inactive). *)
