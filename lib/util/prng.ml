(* SplitMix64.  Reference: Steele, Lea, Flood, OOPSLA 2014.  The zipf
   sampler caches one CDF per (n, s) pair per generator, which is enough
   for the workload kernels (each region uses a single distribution). *)

type zipf_cache = { zn : int; zs : float; cdf : float array }

type t = { mutable state : int64; mutable zcache : zipf_cache option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed; zcache = None }

let copy g = { state = g.state; zcache = g.zcache }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = next_int64 g in
  { state = mix64 s; zcache = None }

let subseed master i =
  (* two mixing rounds so that both nearby masters and nearby indices
     land on unrelated streams; keep 62 bits so the seed is a
     non-negative OCaml int *)
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int master) golden_gamma)
         (mix64 (Int64.of_int i)))
  in
  Int64.to_int (Int64.shift_right_logical z 2)

let int g ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit signed int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g ~bound:(hi - lo + 1)

let float g =
  (* 53 high-quality bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool g ~p =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  float g < p

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g ~bound:(Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric g ~p =
  let p = if p < 1e-9 then 1e-9 else if p > 1.0 -. 1e-9 then 1.0 -. 1e-9 else p in
  let u = float g in
  int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))

let zipf_cdf n s =
  let w = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    let x = 1.0 /. Float.pow (float_of_int (r + 1)) s in
    total := !total +. x;
    w.(r) <- !total
  done;
  let t = !total in
  Array.map (fun x -> x /. t) w

let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let cdf =
    match g.zcache with
    | Some c when c.zn = n && c.zs = s -> c.cdf
    | _ ->
      let cdf = zipf_cdf n s in
      g.zcache <- Some { zn = n; zs = s; cdf };
      cdf
  in
  let u = float g in
  (* binary search for the first index with cdf.(i) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let gaussian g ~mu ~sigma =
  let u1 = Float.max 1e-300 (float g) in
  let u2 = float g in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)
