(** Decision-provenance event log: {e why} the funnel kept, pruned or
    refined each design, not just how much work each stage did.

    Where {!Metrics} aggregates (counters, histograms, spans), the
    event log records the individual decisions of an exploration as a
    bounded stream of structured events: every cluster merge, every
    enumerated or rejected assignment, and the full lifecycle of every
    design — created, evaluated (with fidelity and cache provenance),
    pruned-dominated-by / thinned / kept, refined, selected.  The
    [conex explain] subcommand reconstructs the funnel from a saved
    log.

    {b Cost discipline.}  Like the metrics registry, the ambient log
    ({!global}) is disabled at program start; every {!emit} begins with
    one atomic load and returns immediately when off.  Callers that
    build attribute lists should guard with {!is_on} so a disabled log
    allocates nothing.

    {b Bounding.}  The log is a ring of at most [capacity] events: when
    full, the oldest event is dropped (and counted in {!dropped}), so
    the latest — terminal — decisions always survive.

    {b Sequencing and determinism.}  Every event carries a [(stage,
    seq)] pair: [seq] is a stable integer sequence {e per logical
    stage}, assigned at emission (or supplied explicitly by callers
    that emit from parallel workers and know the deterministic index of
    their work item).  Wall-clock offsets ([t_ms]) are informational
    only and never part of the canonical form.  The determinism
    contract extends the {!Metrics} one: after {!canonical_sort}, the
    deterministic subset ({!deterministic_events} — every event whose
    name contains no [sched.] or [cache.] segment) of a [jobs=1] and a
    [jobs=N] run of the same exploration is byte-identical
    ({!canonical_dump}).  Cache-provenance events ([eval.cache.*]) are
    exempt because hit/miss patterns depend on cross-domain timing.

    {b Domain safety.}  Events may be emitted from any domain; the ring
    and the per-stage sequence counters live behind one mutex (emission
    is per-decision — per design, per merge — never per access). *)

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  stage : string;  (** logical funnel stage, e.g. ["phase1"] *)
  seq : int;  (** stable sequence within [stage] *)
  name : string;  (** event kind, e.g. ["design.kept"] *)
  attrs : (string * value) list;  (** payload, in emission order *)
  t_ms : float;
      (** milliseconds since the log's creation or last {!reset};
          informational only, excluded from the canonical form *)
}

type t

val default_capacity : int
(** 1,048,576 events — comfortably above any bundled exploration. *)

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** Fresh log, disabled unless [enabled:true].  [capacity] (default
    {!default_capacity}, clamped to at least 1) bounds resident
    events. *)

val global : t
(** The ambient log all built-in instrumentation emits to.  Disabled at
    program start. *)

val set_enabled : t -> bool -> unit
val is_on : t -> bool
val capacity : t -> int

val reset : t -> unit
(** Drop every event, zero the per-stage sequences and the drop count,
    and restart the [t_ms] clock (the enabled flag is left as is). *)

(** {1 Emission} *)

val emit : t -> stage:string -> ?seq:int -> string -> (string * value) list -> unit
(** [emit t ~stage name attrs] appends one event.  Without [?seq] the
    stage's next sequence number is assigned (serial emitters); pass
    [?seq] explicitly when emitting from parallel workers that know
    their deterministic item index.  No-op while the log is
    disabled. *)

(** {1 Reading} *)

val events : t -> event list
(** Resident events, oldest first (emission order). *)

val length : t -> int
val dropped : t -> int
(** Events lost to the ring bound since the last {!reset}. *)

(** {1 The determinism contract} *)

val schedule_dependent : event -> bool
(** Whether the event's name contains a [sched.] or [cache.] segment —
    the subset allowed to differ between jobs levels. *)

val canonical_sort : event list -> event list
(** Stable sort by [(stage, seq, name)]. *)

val deterministic_events : event list -> event list
(** The canonical comparable subset: schedule-dependent events removed,
    then {!canonical_sort}. *)

val canonical_dump : event list -> string
(** JSONL rendering of {!deterministic_events}, timestamps stripped —
    byte-identical between [jobs=1] and [jobs=N] runs of the same
    exploration (enforced by the test suite). *)

(** {1 JSONL exporter / importer} *)

val line_of_event : ?time:bool -> event -> string
(** One JSON object, no trailing newline:
    {v {"stage": s, "seq": n, "t_ms": x, "event": s, "attrs": {...}} v}
    [time:false] omits ["t_ms"] (the canonical form). *)

val to_jsonl : t -> string
(** Every resident event in emission order, one {!line_of_event} per
    line, each terminated by a newline. *)

val event_of_line : string -> (event, string) result
(** Parse one JSONL line back into an event (inverse of
    {!line_of_event}; a missing ["t_ms"] reads as [0.]). *)

type loaded = {
  events : event list;
  truncated : bool;
      (** the file's final non-blank line failed to parse and was
          dropped — the tail of a run that died mid-write *)
}

val load_jsonl : path:string -> (loaded, string) result
(** Read a file of JSONL events; blank lines are skipped.  A parse
    failure on the {e final} non-blank line is tolerated (the event is
    dropped and [truncated] is reported true) so the log of a run killed
    mid-write stays readable; a failure on any earlier line is an
    [Error], as is an I/O problem — both diagnostics carry the line
    number. *)

(** {1 Chrome trace exporter} *)

val to_chrome_trace : snapshot:Metrics.snapshot -> event list -> string
(** A Chrome trace-event JSON document (loadable in Perfetto or
    [chrome://tracing]): the snapshot's span forest becomes complete
    ([ph:"X"]) slices positioned by their start offsets, and each event
    becomes an instant ([ph:"i"]) with its attributes as [args].  Both
    clocks are relative to their registry's reset, so resetting metrics
    and events together (as the CLI does) aligns them. *)
