(** An on-disk, fingerprint-keyed result store: the persistent tier
    under the in-memory {!Memo_cache}.

    Values are arbitrary byte strings keyed by canonical fingerprint
    strings, stored in {e append-only segment files} under one
    directory.  A full in-memory index (key → segment/offset) is
    rebuilt on {!open_dir} by scanning the segments; values are read
    back from disk on {!get}.

    {b Durability discipline.}  Every record carries an MD5 digest over
    its framing and payload; a record is {e committed} once its bytes
    have reached the segment file (each {!put} flushes the channel;
    {!sync} and {!close} additionally [fsync]).  On open, a segment is
    scanned record by record and the scan stops at the first record
    that fails framing or digest verification — a torn tail from a
    crash mid-append loses at most the record being written, never a
    committed prefix, and a corrupt record is never served.  New
    segment files are created with the write-temp + rename discipline
    of {!Snapshot}, so a crash during creation never leaves a
    half-written segment header behind.

    {b Revision stamping.}  Each segment header carries the
    [~revision] string it was written under.  Opening a directory with
    a different revision silently ignores the stale segments (counted
    in {!stats}), so results computed by an older model self-invalidate
    without any deletion pass.

    {b Concurrency.}  One process may write at a time (the store is
    mutex-guarded internally, so any number of {!Task_pool} domains of
    that process can share it); any number of other processes may
    {!open_dir} the same directory read-only and will observe a valid
    committed prefix.

    {b Counters.}  When [metrics_prefix] is given, traffic is recorded
    into {!Metrics.global} as [<prefix>.hits], [<prefix>.misses] and
    [<prefix>.writes].  Give the prefix a [cache.] segment: disk-tier
    traffic depends on what earlier runs left behind and is exempt
    from the determinism contract, exactly like the memory tier. *)

type t

type stats = {
  entries : int;  (** distinct keys resident in the index *)
  segments : int;  (** live (same-revision) segment files *)
  appended : int;  (** records written since {!open_dir} *)
  recovered : int;  (** records loaded from disk at {!open_dir} *)
  skipped_records : int;
      (** torn/corrupt records (and their segment tails) skipped at open *)
  stale_segments : int;  (** segments ignored for carrying another revision *)
  get_hits : int;
  get_misses : int;
}

val open_dir :
  ?segment_max_bytes:int ->
  ?metrics_prefix:string ->
  revision:string ->
  dir:string ->
  unit ->
  (t, string) result
(** Open (creating the directory if needed) the store rooted at [dir].
    The active segment rotates once it exceeds [segment_max_bytes]
    (default 8 MiB); rotation seals the old file with an [fsync].
    [revision] must not contain newlines.  [Error] reports an unusable
    directory (permissions, not a directory, ...) — never a corrupt
    segment, which is a recoverable condition counted in {!stats}. *)

val get : t -> key:string -> string option
(** The most recently {!put} value under [key], reading it back from
    its segment file; [None] when the key is unknown (or was only
    present in stale or torn records). *)

val put : t -> key:string -> string -> unit
(** Append a record binding [key] to the value (last write wins) and
    flush it to the OS.  Keys and values are arbitrary bytes.
    @raise Sys_error when the underlying file I/O fails. *)

val mem : t -> key:string -> bool
(** Index lookup only: no disk read, no counter traffic. *)

val sync : t -> unit
(** Flush and [fsync] the active segment — after this returns, every
    record {!put} so far survives a machine crash, not just a process
    crash. *)

val close : t -> unit
(** {!sync}, then close every file handle.  The store must not be used
    afterwards; double-close is harmless. *)

val length : t -> int
(** Distinct keys resident in the index. *)

val stats : t -> stats
val dir : t -> string
val revision : t -> string

(** Fault-injection hooks for the crash-recovery test harness.  Never
    used by production code paths. *)
module Testing : sig
  exception Injected_crash of string
  (** Raised by the faults below at their trigger point. *)

  type fault =
    | Torn_write of int
        (** the next {!put} writes only the first [n] bytes of the
            record, flushes them, then raises {!Injected_crash} — a
            crash mid-append *)
    | Corrupt_record
        (** the next {!put} flips one payload byte {e after} the digest
            was computed: the record lands on disk whole but fails CRC
            verification on the next open *)
    | Fail_fsync
        (** the next [fsync] (from {!sync}, {!close} or rotation)
            raises {!Injected_crash} after the channel flush *)

  val set_fault : t -> fault option -> unit
  (** Arm (or clear) a one-shot fault on the store. *)

  val segment_files : t -> string list
  (** Absolute paths of the live segment files, oldest first (the last
      one is the active segment). *)

  val truncate_file : path:string -> at:int -> unit
  (** Truncate a file to [at] bytes — simulates a crash that tore the
      tail off a segment. *)

  val flip_byte : path:string -> at:int -> unit
  (** XOR the byte at offset [at] with 0xFF — simulates media
      corruption under a committed record. *)

  val open_unverified :
    revision:string -> dir:string -> unit -> (t, string) result
  (** {!open_dir} with digest verification disabled: corrupt records
      are loaded and served as-is.  Exists only so the [persist-selftest]
      check suite can prove the differential harness catches a broken
      store; never use it for real data. *)
end
