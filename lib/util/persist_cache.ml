(* Append-only segment files + an in-memory index, rebuilt on open.

   Layout: [dir/seg-NNNNNN.mxps], each
     "MXPS1\n" <revision> "\n"            segment header
     (0xC5 keylen:u32le vallen:u32le key value md5:16B)*   records

   The scan on open stops at the first record that fails framing or
   digest verification: everything before it is the committed prefix,
   everything after is an untrusted tail (a torn append, or garbage
   behind a flipped byte) and is skipped.  A reopened store never
   appends to an old segment — it always starts a fresh one — so a
   skipped tail can never be "continued" into accidental validity.

   The writer flushes the channel on every put (a committed record
   survives a process crash) and fsyncs on rotation, sync and close (a
   synced record survives a machine crash).  Readers use their own
   in_channels, so other processes opening the directory read-only see
   a valid prefix of the same bytes. *)

exception Injected_crash of string

type fault = Torn_write of int | Corrupt_record | Fail_fsync

type segment = { idx : int; path : string; mutable reader : in_channel option }

type t = {
  dir : string;
  revision : string;
  segment_max_bytes : int;
  verify : bool;
  metrics_prefix : string option;
  mu : Mutex.t;
  index : (string, int * int * int) Hashtbl.t;
      (* key -> (segment idx, value offset, value length) *)
  segments : (int, segment) Hashtbl.t;
  mutable active : (int * out_channel) option;
  mutable active_bytes : int;
  mutable next_idx : int;
  mutable fault : fault option;
  mutable closed : bool;
  mutable appended : int;
  mutable recovered : int;
  mutable skipped_records : int;
  mutable stale_segments : int;
  mutable get_hits : int;
  mutable get_misses : int;
}

type stats = {
  entries : int;
  segments : int;
  appended : int;
  recovered : int;
  skipped_records : int;
  stale_segments : int;
  get_hits : int;
  get_misses : int;
}

let magic = "MXPS1\n"
let record_magic = '\xC5'
let max_key_len = 1 lsl 20
let max_val_len = 1 lsl 26
let digest_len = 16

let record_metric t what =
  match t.metrics_prefix with
  | None -> ()
  | Some p -> Metrics.incr Metrics.global (p ^ "." ^ what)

(* -- encoding ------------------------------------------------------------ *)

let add_u32 b n =
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff))

let read_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* magic byte, key length, value length, key, value — digest appended
   over all of it *)
let build_record ~key value =
  let b =
    Buffer.create (9 + String.length key + String.length value + digest_len)
  in
  Buffer.add_char b record_magic;
  add_u32 b (String.length key);
  add_u32 b (String.length value);
  Buffer.add_string b key;
  Buffer.add_string b value;
  let body = Buffer.contents b in
  body ^ Digest.string body

(* -- segment files ------------------------------------------------------- *)

let segment_path dir idx = Filename.concat dir (Printf.sprintf "seg-%06d.mxps" idx)

let segment_idx_of_name name =
  if
    String.length name = 15
    && String.sub name 0 4 = "seg-"
    && Filename.check_suffix name ".mxps"
  then int_of_string_opt (String.sub name 4 6)
  else None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Scan one segment, filling the index with its valid records.  Stops
   at the first framing/digest failure; returns true when a tail was
   skipped. *)
let scan_segment t (seg : segment) =
  let ic = open_in_bin seg.path in
  seg.reader <- Some ic;
  let file_len = in_channel_length ic in
  let stale = ref false and skipped = ref false in
  (try
     let m = really_input_string ic (String.length magic) in
     if m <> magic then skipped := true
     else begin
       let rev = input_line ic in
       if rev <> t.revision then stale := true
       else begin
         let pos = ref (pos_in ic) in
         let stop = ref false in
         while not !stop do
           if file_len - !pos < 9 + digest_len then begin
             if file_len > !pos then skipped := true;
             stop := true
           end
           else begin
             let header = really_input_string ic 9 in
             let key_len = read_u32 header 1 and val_len = read_u32 header 5 in
             if
               header.[0] <> record_magic
               || key_len < 0 || key_len > max_key_len
               || val_len < 0 || val_len > max_val_len
               || file_len - !pos < 9 + key_len + val_len + digest_len
             then begin
               skipped := true;
               stop := true
             end
             else begin
               let payload = really_input_string ic (key_len + val_len) in
               let digest = really_input_string ic digest_len in
               if t.verify && Digest.string (header ^ payload) <> digest then begin
                 skipped := true;
                 stop := true
               end
               else begin
                 let key = String.sub payload 0 key_len in
                 Hashtbl.replace t.index key
                   (seg.idx, !pos + 9 + key_len, val_len);
                 t.recovered <- t.recovered + 1;
                 pos := !pos + 9 + key_len + val_len + digest_len
               end
             end
           end
         done
       end
     end
   with End_of_file -> skipped := true);
  if !stale then begin
    t.stale_segments <- t.stale_segments + 1;
    (* a stale segment's reader is never consulted *)
    close_in ic;
    seg.reader <- None;
    Hashtbl.remove t.segments seg.idx
  end;
  if !skipped then t.skipped_records <- t.skipped_records + 1

let open_dir_internal ?(segment_max_bytes = 8 * 1024 * 1024) ?metrics_prefix
    ~verify ~revision ~dir () =
  if String.contains revision '\n' then
    invalid_arg "Persist_cache.open_dir: revision must not contain newlines";
  match
    (try
       mkdir_p dir;
       if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
       else Ok ()
     with
    | Unix.Unix_error (e, _, _) -> Error (dir ^ ": " ^ Unix.error_message e)
    | Sys_error m -> Error m)
  with
  | Error e -> Error e
  | Ok () ->
    let t =
      {
        dir;
        revision;
        segment_max_bytes = max 4096 segment_max_bytes;
        verify;
        metrics_prefix;
        mu = Mutex.create ();
        index = Hashtbl.create 1024;
        segments = Hashtbl.create 16;
        active = None;
        active_bytes = 0;
        next_idx = 0;
        fault = None;
        closed = false;
        appended = 0;
        recovered = 0;
        skipped_records = 0;
        stale_segments = 0;
        get_hits = 0;
        get_misses = 0;
      }
    in
    (try
       let idxs =
         Sys.readdir dir |> Array.to_list
         |> List.filter_map segment_idx_of_name
         |> List.sort compare
       in
       List.iter
         (fun idx ->
           let seg = { idx; path = segment_path dir idx; reader = None } in
           Hashtbl.replace t.segments idx seg;
           scan_segment t seg;
           t.next_idx <- max t.next_idx (idx + 1))
         idxs;
       Ok t
     with Sys_error m -> Error m)

let open_dir ?segment_max_bytes ?metrics_prefix ~revision ~dir () =
  open_dir_internal ?segment_max_bytes ?metrics_prefix ~verify:true ~revision
    ~dir ()

(* -- the write path ------------------------------------------------------ *)

let do_fsync t oc =
  flush oc;
  match t.fault with
  | Some Fail_fsync ->
    t.fault <- None;
    raise (Injected_crash "fsync failed")
  | _ -> ( try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ())

(* Seal the active segment: flush, fsync, close.  The next put starts a
   fresh segment. *)
let seal_active t =
  match t.active with
  | None -> ()
  | Some (_, oc) ->
    t.active <- None;
    t.active_bytes <- 0;
    do_fsync t oc;
    close_out oc

(* New segments are born with the Snapshot write-temp + rename
   discipline: the header goes to seg-N.mxps.tmp, is fsynced, and only
   then renamed into place — a crash during creation leaves a .tmp that
   the scanner never looks at, not a headerless segment. *)
let ensure_active t =
  match t.active with
  | Some a -> a
  | None ->
    let idx = t.next_idx in
    t.next_idx <- idx + 1;
    let path = segment_path t.dir idx in
    let tmp = path ^ ".tmp" in
    let header = magic ^ t.revision ^ "\n" in
    let oc = open_out_bin tmp in
    output_string oc header;
    do_fsync t oc;
    close_out oc;
    Sys.rename tmp path;
    let oc =
      open_out_gen [ Open_append; Open_wronly; Open_binary ] 0o644 path
    in
    Hashtbl.replace t.segments idx { idx; path; reader = None };
    t.active <- Some (idx, oc);
    t.active_bytes <- String.length header;
    (idx, oc)

let put t ~key value =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if t.closed then invalid_arg "Persist_cache.put: store is closed";
      let idx, oc = ensure_active t in
      let record = build_record ~key value in
      (match t.fault with
      | Some (Torn_write n) ->
        t.fault <- None;
        let n = min (max 0 n) (String.length record) in
        output_string oc (String.sub record 0 n);
        flush oc;
        t.active_bytes <- t.active_bytes + n;
        raise (Injected_crash (Printf.sprintf "torn write after %d bytes" n))
      | Some Corrupt_record ->
        t.fault <- None;
        (* flip one payload byte after the digest was computed: the
           record lands whole, framing intact, CRC wrong *)
        let b = Bytes.of_string record in
        let at = 9 + String.length key in
        let at = if at < Bytes.length b - digest_len then at else 9 in
        Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
        output_bytes oc b;
        flush oc
      | Some Fail_fsync | None -> output_string oc record; flush oc);
      t.active_bytes <- t.active_bytes + String.length record;
      Hashtbl.replace t.index key
        (idx, t.active_bytes - String.length record + 9 + String.length key,
         String.length value);
      t.appended <- t.appended + 1;
      record_metric t "writes";
      if t.active_bytes >= t.segment_max_bytes then seal_active t)

(* -- the read path ------------------------------------------------------- *)

let reader_of (t : t) idx =
  match Hashtbl.find_opt t.segments idx with
  | None -> None
  | Some seg -> (
    match seg.reader with
    | Some ic -> Some ic
    | None ->
      let ic = open_in_bin seg.path in
      seg.reader <- Some ic;
      Some ic)

let get t ~key =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match Hashtbl.find_opt t.index key with
      | None ->
        t.get_misses <- t.get_misses + 1;
        record_metric t "misses";
        None
      | Some (idx, off, len) -> (
        match reader_of t idx with
        | None ->
          t.get_misses <- t.get_misses + 1;
          record_metric t "misses";
          None
        | Some ic ->
          seek_in ic off;
          let v = really_input_string ic len in
          t.get_hits <- t.get_hits + 1;
          record_metric t "hits";
          Some v))

let mem t ~key =
  Mutex.lock t.mu;
  let r = Hashtbl.mem t.index key in
  Mutex.unlock t.mu;
  r

let sync t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () -> match t.active with None -> () | Some (_, oc) -> do_fsync t oc)

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then begin
        seal_active t;
        Hashtbl.iter
          (fun _ seg ->
            match seg.reader with
            | Some ic ->
              close_in_noerr ic;
              seg.reader <- None
            | None -> ())
          t.segments;
        t.closed <- true
      end)

let length t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.index in
  Mutex.unlock t.mu;
  n

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      entries = Hashtbl.length t.index;
      segments = Hashtbl.length t.segments;
      appended = t.appended;
      recovered = t.recovered;
      skipped_records = t.skipped_records;
      stale_segments = t.stale_segments;
      get_hits = t.get_hits;
      get_misses = t.get_misses;
    }
  in
  Mutex.unlock t.mu;
  s

let dir t = t.dir
let revision t = t.revision

module Testing = struct
  exception Injected_crash = Injected_crash

  type nonrec fault = fault = Torn_write of int | Corrupt_record | Fail_fsync

  let set_fault t f =
    Mutex.lock t.mu;
    t.fault <- f;
    Mutex.unlock t.mu

  let segment_files t =
    Mutex.lock t.mu;
    let files =
      Hashtbl.fold (fun _ seg acc -> seg.path :: acc) t.segments []
      |> List.sort compare
    in
    Mutex.unlock t.mu;
    files

  let truncate_file ~path ~at =
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> Unix.ftruncate fd at)

  let flip_byte ~path ~at =
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        ignore (Unix.lseek fd at Unix.SEEK_SET);
        let b = Bytes.create 1 in
        if Unix.read fd b 0 1 = 1 then begin
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
          ignore (Unix.lseek fd at Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1)
        end)

  let open_unverified ~revision ~dir () =
    open_dir_internal ~verify:false ~revision ~dir ()
end
