(** Deterministic pseudo-random number generation.

    All randomness in MemorEx flows through this module so that every
    experiment is reproducible from an explicit integer seed.  The core
    generator is SplitMix64 (Steele, Lea, Flood: "Fast splittable
    pseudorandom number generators", OOPSLA 2014), which is small, fast,
    and passes BigCrush for the purposes of workload synthesis. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Two generators created with
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator with [g]'s current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output.  Used to give
    each workload region its own stream without coupling. *)

val subseed : int -> int -> int
(** [subseed master i] is a non-negative derived seed for the [i]-th
    child stream of [master] — a pure function of its two arguments, so
    callers that enumerate cases (the {!Mx_check} property runner) can
    reproduce case [i] from [master] alone without replaying the
    previous [i - 1] draws.  Distinct [(master, i)] pairs map to
    unrelated seeds. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in g ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** [bool g ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> p:float -> int
(** [geometric g ~p] is the number of failures before the first success
    of a Bernoulli([p]) process; mean [(1-p)/p].  [p] is clamped away
    from 0 and 1. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] samples ranks [0 .. n-1] with probability proportional
    to [1/(rank+1)^s].  Used for skewed (hot/cold) data-structure access
    synthesis.  Sampling is by inversion over a lazily cached CDF, so
    repeated draws with the same [(n, s)] are O(log n). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)
