module Running = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mu in
    t.mu <- t.mu +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mu));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mu
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.lo
  let max t = t.hi
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs ~p =
  match xs with
  | [] -> None
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    Some a.(idx)

let stddev xs =
  let r = Running.create () in
  List.iter (Running.add r) xs;
  Running.stddev r

let spearman xs ys =
  let n = List.length xs in
  if n <> List.length ys || n < 2 then None
  else begin
    (* fractional (average) ranks, so ties do not bias the correlation *)
    let ranks vs =
      let a = Array.of_list vs in
      let idx = Array.init n (fun i -> i) in
      Array.sort (fun i j -> Float.compare a.(i) a.(j)) idx;
      let r = Array.make n 0.0 in
      let i = ref 0 in
      while !i < n do
        let j = ref !i in
        while !j + 1 < n && a.(idx.(!j + 1)) = a.(idx.(!i)) do
          incr j
        done;
        let avg = float_of_int (!i + !j) /. 2.0 in
        for k = !i to !j do
          r.(idx.(k)) <- avg
        done;
        i := !j + 1
      done;
      r
    in
    let rx = ranks xs and ry = ranks ys in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then None
    else Some (!sxy /. sqrt (!sxx *. !syy))
  end

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (s /. float_of_int (List.length xs))

let ratio_pct a b = if b = 0.0 then 0.0 else 100.0 *. (b -. a) /. b
