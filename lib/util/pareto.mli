(** Pareto-front machinery for multi-objective design-space exploration.

    All objectives are minimised: costs, latencies and energies are all
    "lower is better".  A design [a] {e dominates} [b] when [a] is no
    worse than [b] on every axis and strictly better on at least one.
    A design is on the pareto front of a set when no member dominates
    it — the paper's definition (Section 6, footnote 3). *)

type 'a axis = 'a -> float
(** An objective projection; lower values are better. *)

val dominates : axes:'a axis list -> 'a -> 'a -> bool
(** [dominates ~axes a b] is true iff [a] dominates [b]. *)

val front : axes:'a axis list -> 'a list -> 'a list
(** [front ~axes designs] returns the non-dominated subset, preserving
    first-occurrence order.  Duplicate objective vectors are all kept
    (they dominate nothing and are dominated by nothing). *)

val front2 : x:'a axis -> y:'a axis -> 'a list -> 'a list
(** Two-objective front, returned sorted by increasing [x].  O(n log n)
    sweep rather than the generic O(n^2) filter. *)

val sort_by : 'a axis -> 'a list -> 'a list
(** Stable ascending sort by one axis. *)

(** Coverage of a reference front by an explored point set — the metric
    of the paper's Table 2. *)
module Coverage : sig
  type report = {
    total : int;          (** size of the reference pareto front *)
    found : int;          (** reference points matched exactly *)
    coverage_pct : float; (** [100 * found / total]; 100.0 when [total = 0] *)
    avg_dist_pct : float array;
        (** per-axis average percentile deviation between each {e missed}
            reference point and the explored point nearest to it
            (normalised Euclidean nearest); length = number of axes;
            all zeros when nothing is missed *)
  }

  val eval :
    axes:'a axis list ->
    equal:('a -> 'a -> bool) ->
    reference:'a list ->
    explored:'a list ->
    report
  (** [eval ~axes ~equal ~reference ~explored] measures how well
      [explored] covers the [reference] front.  [equal] decides whether
      an explored design {e is} a given reference design (typically
      structural equality on the architecture, not on metrics).  When
      [explored] is empty every reference point is missed: the report
      has [found = 0] (0% coverage for a non-empty reference) and
      all-zero [avg_dist_pct], since there is no nearest explored point
      to measure a distance to. *)
end

(** Bounded, incrementally-updated pareto archive with ε-dominance
    thinning.  Feed it evaluated designs one at a time; [front] emits
    the current non-dominated set {e at any moment} — the core of the
    anytime exploration contract: interrupt a run after any prefix of
    insertions and the emitted front is a valid pareto front of exactly
    that prefix.

    Determinism: the archive's state is a pure function of the
    insertion sequence (no clocks, no randomness), so identical
    insertion streams yield byte-identical fronts regardless of how the
    evaluations that produced them were scheduled.

    With [eps = 0] and no [capacity] (the defaults), the final [front]
    over a full insertion stream equals [front2 ~x ~y] of the same list
    for two axes (same members, same order, duplicates included), and
    the non-dominated subset of [front ~axes] for any axis count. *)
module Archive : sig
  type 'a t

  type 'a outcome =
    | Added of { removed : 'a list; evicted : 'a list }
        (** Inserted.  [removed] = previously archived members now
            dominated by the new point (ascending insertion order);
            [evicted] = members dropped by capacity thinning (possibly
            including the new point itself). *)
    | Rejected  (** (ε-)dominated by an archived member; not inserted. *)

  type stats = {
    size : int;      (** current member count *)
    inserts : int;   (** accepted insertions *)
    rejects : int;   (** (ε-)dominated insertions *)
    removed : int;   (** members displaced by dominating inserts *)
    evicted : int;   (** members dropped by capacity thinning *)
  }

  val create :
    axes:'a axis list -> ?eps:float -> ?capacity:int -> unit -> 'a t
  (** [create ~axes ?eps ?capacity ()] makes an empty archive.  [eps]
      (default 0) is the relative ε-dominance slack: an incoming point
      is rejected when an archived member is within a [(1 + eps)]
      multiplicative factor of it on every axis and strictly inside
      that slack on at least one (axes are assumed non-negative when
      [eps > 0]).  [capacity] bounds the member count; when exceeded,
      the most crowded member (smallest span-normalised crowding
      distance; extremes never) is dropped, ties evicting the newest.
      @raise Invalid_argument on empty [axes], [eps < 0] or
      [capacity < 1]. *)

  val insert : 'a t -> 'a -> 'a outcome
  (** Offer one point.  O(size) dominance scan (plus an O(size log
      size) crowding pass when capacity-thinning triggers). *)

  val front : 'a t -> 'a list
  (** Current non-dominated set, sorted by the axes in order (first
      axis ascending, ties by the next, ...) and finally by insertion
      order — for two axes this is exactly [front2]'s output order. *)

  val size : 'a t -> int
  val stats : 'a t -> stats

  val of_list :
    axes:'a axis list -> ?eps:float -> ?capacity:int -> 'a list -> 'a t
  (** [of_list ~axes vs] inserts [vs] in order into a fresh archive. *)
end
