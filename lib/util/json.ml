(* The reader used to live inside Event_log; it is shared here so the
   status snapshots and run manifests can parse their own documents
   without growing a dependency.  Recursive descent over a string with
   one mutable cursor — the documents involved are lines to a few
   hundred KB, never streamed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_err of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let bad fmt = Printf.ksprintf (fun m -> raise (Parse_err m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> incr pos
    | Some x -> bad "expected %C at %d, got %C" c !pos x
    | None -> bad "expected %C at %d, got end of input" c !pos
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> bad "unterminated string at %d" !pos
      | Some '"' ->
        incr pos;
        closed := true
      | Some '\\' -> (
        incr pos;
        match peek () with
        | Some '"' -> incr pos; Buffer.add_char b '"'
        | Some '\\' -> incr pos; Buffer.add_char b '\\'
        | Some '/' -> incr pos; Buffer.add_char b '/'
        | Some 'b' -> incr pos; Buffer.add_char b '\b'
        | Some 'f' -> incr pos; Buffer.add_char b '\012'
        | Some 'n' -> incr pos; Buffer.add_char b '\n'
        | Some 'r' -> incr pos; Buffer.add_char b '\r'
        | Some 't' -> incr pos; Buffer.add_char b '\t'
        | Some 'u' ->
          incr pos;
          if !pos + 4 > n then bad "bad \\u escape at %d" !pos;
          let hex = String.sub s !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> bad "bad \\u escape at %d" !pos
          in
          pos := !pos + 4;
          (* the emitters only escape control chars this way *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
        | _ -> bad "bad escape at %d" !pos)
      | Some c ->
        incr pos;
        Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> bad "bad number at %d" start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let continue = ref true in
        while !continue do
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            continue := false
          | _ -> bad "expected ',' or '}' at %d" !pos
        done;
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let continue = ref true in
        while !continue do
          items := value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            continue := false
          | _ -> bad "expected ',' or ']' at %d" !pos
        done;
        Arr (List.rev !items)
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some c -> bad "unexpected %C at %d" c !pos
    | None -> bad "unexpected end of input at %d" !pos
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage at %d" !pos;
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Parse_err m -> Error m

(* -- accessors ------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | _ -> None

(* -- rendering helpers ---------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"
