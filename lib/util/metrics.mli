(** Observability: counters, gauges, histograms and timed span trees.

    Every layer of the exploration stack reports into a {e registry} —
    normally the ambient {!global} one — which renders to human text
    ({!to_text}) or machine JSON ({!to_json}).  The registry is
    disabled by default: every recording operation first reads one
    atomic flag and returns, so instrumentation left in hot paths is
    near-free until someone opts in ([conex explore --metrics ...],
    [--trace-out], or the bench harness).

    {b Domain safety.}  All primitives may be called concurrently from
    any domain: counters are atomics, gauges and histograms update
    under the registry mutex, and spans nest per-domain (each domain
    owns its span stack; finished root spans merge into the registry).

    {b Determinism contract.}  Metric names containing the [sched.]
    segment (e.g. [task_pool.sched.dispatched]) are allowed to depend
    on scheduling — how work was split across domains, who ran what,
    elapsed time.  Every other counter must be {e schedule-invariant}:
    a serial ([jobs=1]) and a parallel ([jobs=N]) run of the same
    exploration must report identical values.  {!deterministic_counters}
    selects exactly that comparable subset; the test suite enforces the
    contract. *)

type t
(** A metrics registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry, disabled unless [enabled:true]. *)

val global : t
(** The ambient registry all built-in instrumentation reports to.
    Disabled at program start. *)

val set_enabled : t -> bool -> unit
val is_on : t -> bool

val reset : t -> unit
(** Drop every recorded metric and finished span (the enabled flag is
    left as is).  Call between runs that must be compared. *)

(** {1 Recording} — all no-ops while the registry is disabled. *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at 0. *)

val set_gauge : t -> string -> float -> unit
(** Set the named gauge (last write wins). *)

val observe : t -> ?unit_:string -> string -> float -> unit
(** Record one sample into the named histogram
    (count/sum/min/max/percentiles).  [unit_] labels the sample
    dimension, e.g. ["s"], ["cycles"], ["designs"]; it is fixed by the
    first observation.  Samples are retained for exact percentiles —
    observe per chunk or per shard, never per access. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] times [f ()] as a span.  Spans opened while
    another span is running {e on the same domain} become its children,
    forming a trace tree; a span with no parent is a root of the
    registry's trace forest.  The span is closed (and recorded) even
    when [f] raises. *)

(** {1 Reading} *)

type hist = {
  h_unit : string;
  count : int;
  sum : float;
  min_v : float;  (** +inf when [count = 0] *)
  max_v : float;  (** -inf when [count = 0] *)
  p50 : float;  (** nearest-rank percentiles over every recorded
                    sample; 0 when [count = 0] *)
  p95 : float;
  p99 : float;
}

type span = {
  span_name : string;
  start : float;
      (** open instant in seconds relative to the registry's creation or
          last {!reset} — together with [seconds] this is enough to
          rebuild the run's timeline (e.g. as a Chrome trace) *)
  seconds : float;  (** wall-clock duration *)
  children : span list;  (** in open order *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * hist) list;  (** sorted by name *)
  spans : span list;  (** roots, in completion order *)
}

val snapshot : t -> snapshot
(** Consistent copy of everything recorded so far.  Spans still open at
    snapshot time are not included. *)

val counter_value : t -> string -> int
(** Current value of a counter; 0 when it was never incremented. *)

val deterministic_counters : snapshot -> (string * int) list
(** The counters whose names contain no [sched.] or [cache.] segment —
    the subset required to be identical between serial and parallel
    runs.  [cache.] counters are excluded because once a result cache
    overflows its capacity, which entry is evicted (and therefore the
    later hit/miss pattern) depends on cross-domain lookup order. *)

val to_text : t -> string
(** Human-readable rendering: counters, gauges, histograms, then the
    span forest indented two spaces per level. *)

val to_json : t -> string
(** One JSON object:
    {v
    { "counters":   {"name": int, ...},
      "gauges":     {"name": float, ...},
      "histograms": {"name": {"unit": s, "count": n, "sum": x,
                              "min": x, "max": x, "mean": x,
                              "p50": x, "p95": x, "p99": x}, ...},
      "spans":      [{"name": s, "start": x, "seconds": x,
                      "children": [...]}, ...] }
    v}
    Keys are sorted; floats are finite decimals (inf/nan render as
    [null]); the document ends with a newline. *)
