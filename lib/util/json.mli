(** A minimal JSON value, reader and rendering helpers, shared by every
    observability format in the repo: the event-log JSONL lines
    ({!Event_log}), the metrics document ({!Metrics.to_json}), the live
    status snapshots ({!Snapshot}) and the run-ledger manifests
    ([Conex.Ledger]).

    The reader accepts exactly the JSON these emitters produce (objects,
    arrays, strings, finite numbers, booleans, null, the standard
    escapes) — it is a round-trip companion, not a general validator.
    Duplicate object keys are kept in document order; {!member} returns
    the first. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON document; [Error] carries a position-tagged
    diagnostic.  Trailing garbage after the document is an error. *)

(** {1 Accessors} — all total, [None]/default on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
val to_bool_opt : t -> bool option

val to_int_opt : t -> int option
(** [Num] values that are integral and safely representable. *)

(** {1 Rendering helpers} *)

val escape : string -> string
(** Escape a string's content for inclusion between double quotes:
    ["\""], ["\\"], newline and the other control characters. *)

val number : float -> string
(** Finite floats as short decimals (%.6g); inf/nan render as [null]. *)
