(* A bounded ring of structured events behind one mutex.  Emission is
   per-decision (per design, per merge), never per memory access, so a
   coarse lock is fine; the disabled path is a single atomic load.  The
   buffer starts small and grows geometrically up to the capacity, at
   which point it wraps and drops the oldest event. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  stage : string;
  seq : int;
  name : string;
  attrs : (string * value) list;
  t_ms : float;
}

type t = {
  on : bool Atomic.t;
  mu : Mutex.t;
  cap : int;
  mutable buf : event option array;
  mutable first : int;  (* index of the oldest event *)
  mutable len : int;
  mutable n_dropped : int;
  seqs : (string, int ref) Hashtbl.t;
  mutable epoch : float;
}

let default_capacity = 1 lsl 20

let initial_alloc cap = min cap 1024

let create ?(capacity = default_capacity) ?(enabled = false) () =
  let cap = max 1 capacity in
  {
    on = Atomic.make enabled;
    mu = Mutex.create ();
    cap;
    buf = Array.make (initial_alloc cap) None;
    first = 0;
    len = 0;
    n_dropped = 0;
    seqs = Hashtbl.create 16;
    epoch = Unix.gettimeofday ();
  }

let global = create ()
let set_enabled t b = Atomic.set t.on b
let is_on t = Atomic.get t.on
let capacity t = t.cap

let reset t =
  Mutex.lock t.mu;
  t.buf <- Array.make (initial_alloc t.cap) None;
  t.first <- 0;
  t.len <- 0;
  t.n_dropped <- 0;
  Hashtbl.reset t.seqs;
  t.epoch <- Unix.gettimeofday ();
  Mutex.unlock t.mu

(* Called with [t.mu] held. *)
let push t e =
  let alloc = Array.length t.buf in
  if t.len = alloc && alloc < t.cap then begin
    (* grow: re-layout oldest-first into a bigger array *)
    let bigger = Array.make (min t.cap (2 * alloc)) None in
    for i = 0 to t.len - 1 do
      bigger.(i) <- t.buf.((t.first + i) mod alloc)
    done;
    t.buf <- bigger;
    t.first <- 0
  end;
  let alloc = Array.length t.buf in
  if t.len < alloc then begin
    t.buf.((t.first + t.len) mod alloc) <- Some e;
    t.len <- t.len + 1
  end
  else begin
    (* full at capacity: overwrite the oldest *)
    t.buf.(t.first) <- Some e;
    t.first <- (t.first + 1) mod alloc;
    t.n_dropped <- t.n_dropped + 1
  end

let emit t ~stage ?seq name attrs =
  if Atomic.get t.on then begin
    let now = Unix.gettimeofday () in
    Mutex.lock t.mu;
    let seq =
      match seq with
      | Some s -> s
      | None ->
        let r =
          match Hashtbl.find_opt t.seqs stage with
          | Some r -> r
          | None ->
            let r = ref 0 in
            Hashtbl.add t.seqs stage r;
            r
        in
        let s = !r in
        incr r;
        s
    in
    push t { stage; seq; name; attrs; t_ms = (now -. t.epoch) *. 1000.0 };
    Mutex.unlock t.mu
  end

let events t =
  Mutex.lock t.mu;
  let alloc = Array.length t.buf in
  let out =
    List.init t.len (fun i ->
        match t.buf.((t.first + i) mod alloc) with
        | Some e -> e
        | None -> assert false)
  in
  Mutex.unlock t.mu;
  out

let length t =
  Mutex.lock t.mu;
  let n = t.len in
  Mutex.unlock t.mu;
  n

let dropped t =
  Mutex.lock t.mu;
  let n = t.n_dropped in
  Mutex.unlock t.mu;
  n

(* -- the determinism contract -------------------------------------------- *)

(* Same segment rule as Metrics.deterministic_counters: [needle] must
   end with '.' and match at the start or after a dot. *)
let has_segment needle name =
  let nl = String.length needle and l = String.length name in
  let rec go i =
    if i + nl > l then false
    else if String.sub name i nl = needle && (i = 0 || name.[i - 1] = '.')
    then true
    else go (i + 1)
  in
  go 0

let schedule_dependent e =
  has_segment "sched." e.name || has_segment "cache." e.name

let canonical_sort evs =
  List.stable_sort
    (fun a b ->
      match String.compare a.stage b.stage with
      | 0 -> (
        match compare a.seq b.seq with
        | 0 -> String.compare a.name b.name
        | c -> c)
      | c -> c)
    evs

let deterministic_events evs =
  canonical_sort (List.filter (fun e -> not (schedule_dependent e)) evs)

(* -- JSONL rendering ------------------------------------------------------ *)

let escape = Json.escape
let json_float = Json.number

let value_to_json = function
  | Str s -> "\"" ^ escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b

let line_of_event ?(time = true) e =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"stage\": \"%s\"" (escape e.stage));
  Buffer.add_string b (Printf.sprintf ", \"seq\": %d" e.seq);
  if time then
    Buffer.add_string b (Printf.sprintf ", \"t_ms\": %s" (json_float e.t_ms));
  Buffer.add_string b (Printf.sprintf ", \"event\": \"%s\"" (escape e.name));
  Buffer.add_string b ", \"attrs\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (escape k) (value_to_json v)))
    e.attrs;
  Buffer.add_string b "}}";
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (line_of_event e);
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let canonical_dump evs =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (line_of_event ~time:false e);
      Buffer.add_char b '\n')
    (deterministic_events evs);
  Buffer.contents b

(* -- JSONL parsing (via the shared Mx_util.Json reader) ------------------- *)

let event_of_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok (Json.Obj fields) ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing or non-string %S field" k)
    in
    let ( let* ) r f = Result.bind r f in
    let* stage = str "stage" in
    let* name = str "event" in
    let* seq =
      match Option.bind (List.assoc_opt "seq" fields) Json.to_int_opt with
      | Some s -> Ok s
      | None -> Error "missing or non-numeric \"seq\" field"
    in
    let t_ms =
      match List.assoc_opt "t_ms" fields with
      | Some (Json.Num f) -> f
      | _ -> 0.0
    in
    let* attrs =
      match List.assoc_opt "attrs" fields with
      | None -> Ok []
      | Some (Json.Obj kvs) ->
        let rec convert acc = function
          | [] -> Ok (List.rev acc)
          | (k, v) :: rest -> (
            match v with
            | Json.Str s -> convert ((k, Str s) :: acc) rest
            | Json.Bool b -> convert ((k, Bool b) :: acc) rest
            | Json.Num f when Float.is_integer f && Float.abs f < 1e15 ->
              convert ((k, Int (int_of_float f)) :: acc) rest
            | Json.Num f -> convert ((k, Float f) :: acc) rest
            | _ -> Error (Printf.sprintf "attr %S is not a scalar" k))
        in
        convert [] kvs
      | Some _ -> Error "\"attrs\" is not an object"
    in
    Ok { stage; seq; name; attrs; t_ms }
  | Ok _ -> Error "event line is not a JSON object"

type loaded = { events : event list; truncated : bool }

let load_jsonl ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* A parse error on the file's last non-blank line is the
           signature of a run that died mid-write; tolerate exactly
           that (reporting [truncated = true]) and fail on anything
           earlier — a corrupt middle means the file is not a tail-
           truncated log but a damaged one. *)
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok { events = List.rev acc; truncated = false }
          | line ->
            if String.trim line = "" then go (lineno + 1) acc
            else (
              match event_of_line line with
              | Ok e -> go (lineno + 1) (e :: acc)
              | Error m ->
                let rec rest_blank () =
                  match input_line ic with
                  | exception End_of_file -> true
                  | l -> String.trim l = "" && rest_blank ()
                in
                if rest_blank () then
                  Ok { events = List.rev acc; truncated = true }
                else Error (Printf.sprintf "%s: line %d: %s" path lineno m))
        in
        go 1 [])

(* -- Chrome trace exporter ------------------------------------------------ *)

let to_chrome_trace ~(snapshot : Metrics.snapshot) evs =
  let b = Buffer.create 8192 in
  let first = ref true in
  let entry s =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b ("    " ^ s)
  in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let rec span (sp : Metrics.span) =
    entry
      (Printf.sprintf
         "{\"name\": \"%s\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": %.3f, \
          \"dur\": %.3f, \"pid\": 1, \"tid\": 1}"
         (escape sp.Metrics.span_name)
         (sp.Metrics.start *. 1e6)
         (sp.Metrics.seconds *. 1e6));
    List.iter span sp.Metrics.children
  in
  List.iter span snapshot.Metrics.spans;
  List.iter
    (fun e ->
      let args =
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\": %s" (escape k) (value_to_json v))
             e.attrs)
      in
      entry
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, \
            \"pid\": 1, \"tid\": 1, \"s\": \"t\", \"args\": {%s}}"
           (escape e.name) (escape e.stage) (e.t_ms *. 1e3) args))
    evs;
  Buffer.add_string b "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents b
