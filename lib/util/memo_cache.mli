(** A bounded, thread-safe, content-addressed result cache.

    Values are keyed by canonical {e fingerprint} strings; callers are
    responsible for keys being injective over the inputs of the cached
    computation (two different computations must never share a key).

    {b Single-flight.}  Concurrent {!find_or_compute} calls for the same
    key from different {!Task_pool} domains run the computation exactly
    once: the first caller computes, the others block until the result
    is published and then return it as a hit.  Consequently the number
    of computations — and therefore every counter the computation
    itself records — is identical at every jobs level, preserving the
    Metrics determinism contract for the cached code.

    {b Eviction.}  Capacity is a bound on resident entries.  When an
    insert exceeds it, the least-recently-used completed entry is
    dropped (LRU on lookup order).  Entries still being computed are
    never evicted.  Because the lookup order across domains depends on
    scheduling, {e which} entry is evicted — and thus the hit/miss
    pattern of a run that overflows the capacity — may differ between
    jobs levels; size the cache to the working set when bit-identical
    counter parity matters.

    {b Failures} are never cached: if the computation raises, the
    in-flight marker is removed, the exception propagates to the
    computing caller, and waiting callers retry the computation.

    {b Counters.}  Hits, misses and evictions are counted locally
    ({!stats}) and, when [metrics_prefix] is given, also recorded into
    the registry as [<prefix>.hits], [<prefix>.misses] and
    [<prefix>.evictions]. *)

type 'a t

type stats = {
  hits : int;  (** lookups served from the cache (including waiters) *)
  misses : int;  (** lookups that ran the computation *)
  evictions : int;  (** entries dropped by the capacity bound *)
  size : int;  (** entries currently resident *)
}

val create :
  ?registry:Metrics.t -> ?metrics_prefix:string -> capacity:int -> unit -> 'a t
(** [registry] defaults to {!Metrics.global}; counters are only
    recorded there when [metrics_prefix] is given (local {!stats} are
    always maintained).  [capacity <= 0] creates a disabled cache:
    every {!find_or_compute} runs the computation (counted as a miss)
    and nothing is retained. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** The cached value under [key], computing (and caching) it on a miss.
    The computation runs outside the cache lock; see the single-flight
    and failure notes above. *)

val find_or_compute_prov : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** {!find_or_compute} that also reports provenance: [true] when the
    value was served from the cache (including single-flight waiters
    that parked while another domain computed it), [false] when this
    call ran the computation. *)

val peek : 'a t -> key:string -> 'a option
(** The completed value under [key] if resident: counts a hit and
    refreshes recency when found, records nothing when absent.  Never
    blocks and never computes ([Pending] entries read as absent). *)

val capacity : 'a t -> int
val enabled : 'a t -> bool
(** [capacity t > 0]. *)

val length : 'a t -> int
(** Resident entries (including in-flight computations). *)

val stats : 'a t -> stats

val clear : 'a t -> unit
(** Drop every resident entry (counters are kept).  In-flight
    computations complete normally but are not retained. *)
