type 'a axis = 'a -> float

let dominates ~axes a b =
  let no_worse = List.for_all (fun f -> f a <= f b) axes in
  let strictly = List.exists (fun f -> f a < f b) axes in
  no_worse && strictly

let front ~axes designs =
  let arr = Array.of_list designs in
  let n = Array.length arr in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    let d = arr.(i) in
    let dominated = ref false in
    for j = 0 to n - 1 do
      if (not !dominated) && j <> i && dominates ~axes arr.(j) d then
        dominated := true
    done;
    if not !dominated then kept := d :: !kept
  done;
  !kept

let sort_by f l = List.stable_sort (fun a b -> Float.compare (f a) (f b)) l

let front2 ~x ~y designs =
  (* Sweep by increasing x, then increasing y; a point survives iff its y
     is strictly below every y seen so far (equal-x points: only the best
     y survives unless tied). *)
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare (x a) (x b) with
        | 0 -> Float.compare (y a) (y b)
        | c -> c)
      designs
  in
  let rec sweep best_y acc = function
    | [] -> List.rev acc
    | d :: rest ->
      if y d < best_y then sweep (y d) (d :: acc) rest
      else if y d = best_y && best_y < infinity then
        (* keep ties on y only when x also ties with the last kept point *)
        (match acc with
        | last :: _ when x last = x d -> sweep best_y (d :: acc) rest
        | _ -> sweep best_y acc rest)
      else sweep best_y acc rest
  in
  sweep infinity [] sorted

module Coverage = struct
  type report = {
    total : int;
    found : int;
    coverage_pct : float;
    avg_dist_pct : float array;
  }

  let eval ~axes ~equal ~reference ~explored =
    let naxes = List.length axes in
    let total = List.length reference in
    let missed =
      List.filter (fun r -> not (List.exists (equal r) explored)) reference
    in
    let found = total - List.length missed in
    let avg_dist = Array.make naxes 0.0 in
    (* An empty explored set covers nothing: report 0% (for a non-empty
       reference) with zero distances — there is no nearest explored
       point to measure against. *)
    (if missed <> [] && explored <> [] then begin
       (* Normalise each axis by the reference front's span so the
          nearest-neighbour search is scale-free. *)
       let spans =
         List.map
           (fun f ->
             let vs = List.map f reference in
             let lo = List.fold_left Float.min infinity vs in
             let hi = List.fold_left Float.max neg_infinity vs in
             let s = hi -. lo in
             if s <= 0.0 then 1.0 else s)
           axes
       in
       let dist2 a b =
         List.fold_left2
           (fun acc f s ->
             let d = (f a -. f b) /. s in
             acc +. (d *. d))
           0.0 axes spans
       in
       List.iter
         (fun r ->
           let nearest =
             List.fold_left
               (fun best e ->
                 match best with
                 | None -> Some e
                 | Some b -> if dist2 r e < dist2 r b then Some e else best)
               None explored
           in
           match nearest with
           | None -> assert false
           | Some e ->
             List.iteri
               (fun i f ->
                 let rv = f r in
                 let denom = if Float.abs rv > 1e-12 then Float.abs rv else 1.0 in
                 avg_dist.(i) <-
                   avg_dist.(i) +. (100.0 *. Float.abs (f e -. rv) /. denom))
               axes)
         missed;
       let m = float_of_int (List.length missed) in
       Array.iteri (fun i v -> avg_dist.(i) <- v /. m) avg_dist
     end);
    {
      total;
      found;
      coverage_pct =
        (if total = 0 then 100.0
         else 100.0 *. float_of_int found /. float_of_int total);
      avg_dist_pct = avg_dist;
    }
end

module Archive = struct
  type 'a t = {
    axes : 'a axis list;
    eps : float;
    capacity : int option;
    (* (insertion seq, value); list order is irrelevant — [seq] is the
       authoritative tie-breaker everywhere. *)
    mutable members : (int * 'a) list;
    mutable next_seq : int;
    mutable inserts : int;
    mutable rejects : int;
    mutable removed : int;
    mutable evicted : int;
  }

  type 'a outcome = Added of { removed : 'a list; evicted : 'a list } | Rejected

  type stats = {
    size : int;
    inserts : int;
    rejects : int;
    removed : int;
    evicted : int;
  }

  let create ~axes ?(eps = 0.0) ?capacity () =
    if axes = [] then invalid_arg "Pareto.Archive.create: no axes";
    if not (eps >= 0.0) then invalid_arg "Pareto.Archive.create: eps < 0";
    (match capacity with
    | Some c when c < 1 -> invalid_arg "Pareto.Archive.create: capacity < 1"
    | _ -> ());
    {
      axes;
      eps;
      capacity;
      members = [];
      next_seq = 0;
      inserts = 0;
      rejects = 0;
      removed = 0;
      evicted = 0;
    }

  (* Relaxed dominance for thinning: [m] eps-dominates [v] when m is
     within a (1+eps) multiplicative slack of v on every axis and
     strictly inside it on at least one.  With [eps = 0] this is exactly
     [dominates] (so equal objective vectors are kept, matching [front]
     and [front2]); with [eps > 0] near-duplicates of an archived point
     are rejected.  Axes are assumed non-negative when [eps > 0]. *)
  let eps_dominates ~axes ~eps a b =
    let relax v = (1.0 +. eps) *. v in
    List.for_all (fun f -> f a <= relax (f b)) axes
    && List.exists (fun f -> f a < relax (f b)) axes

  let compare_members axes (sa, a) (sb, b) =
    let rec go = function
      | [] -> compare sa sb
      | f :: rest -> (
        match Float.compare (f a) (f b) with 0 -> go rest | c -> c)
    in
    go axes

  let front t =
    List.map snd (List.sort (compare_members t.axes) t.members)

  let size t = List.length t.members

  let stats t =
    {
      size = size t;
      inserts = t.inserts;
      rejects = t.rejects;
      removed = t.removed;
      evicted = t.evicted;
    }

  (* Capacity thinning: drop the most crowded member — smallest
     NSGA-II-style crowding distance (sum over axes of the span-
     normalised gap between its neighbours in that axis's order);
     extreme points score infinity and always survive.  Ties evict the
     newest (highest seq), so eviction is a pure function of the
     insertion sequence. *)
  let evict_one t =
    let arr = Array.of_list t.members in
    let n = Array.length arr in
    let crowd = Array.make n 0.0 in
    List.iter
      (fun f ->
        let idx = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            match Float.compare (f (snd arr.(i))) (f (snd arr.(j))) with
            | 0 -> compare (fst arr.(i)) (fst arr.(j))
            | c -> c)
          idx;
        let lo = f (snd arr.(idx.(0))) and hi = f (snd arr.(idx.(n - 1))) in
        let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
        crowd.(idx.(0)) <- infinity;
        crowd.(idx.(n - 1)) <- infinity;
        for k = 1 to n - 2 do
          let gap =
            (f (snd arr.(idx.(k + 1))) -. f (snd arr.(idx.(k - 1)))) /. span
          in
          crowd.(idx.(k)) <- crowd.(idx.(k)) +. gap
        done)
      t.axes;
    let victim = ref 0 in
    for i = 1 to n - 1 do
      let c = Float.compare crowd.(i) crowd.(!victim) in
      if c < 0 || (c = 0 && fst arr.(i) > fst arr.(!victim)) then victim := i
    done;
    let _, v = arr.(!victim) in
    let vi = !victim in
    t.members <- List.filteri (fun i _ -> i <> vi) t.members;
    v

  let insert t v =
    if List.exists (fun (_, m) -> eps_dominates ~axes:t.axes ~eps:t.eps m v)
         t.members
    then begin
      t.rejects <- t.rejects + 1;
      Rejected
    end
    else begin
      let dominated, kept =
        List.partition (fun (_, m) -> dominates ~axes:t.axes v m) t.members
      in
      let removed =
        List.map snd
          (List.sort (fun (a, _) (b, _) -> compare a b) dominated)
      in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.inserts <- t.inserts + 1;
      t.members <- (seq, v) :: kept;
      let evicted =
        match t.capacity with
        | None -> []
        | Some c ->
          let out = ref [] in
          while List.length t.members > c do
            out := evict_one t :: !out
          done;
          List.rev !out
      in
      t.removed <- t.removed + List.length removed;
      t.evicted <- t.evicted + List.length evicted;
      Added { removed; evicted }
    end

  let of_list ~axes ?eps ?capacity vs =
    let t = create ~axes ?eps ?capacity () in
    List.iter (fun v -> ignore (insert t v)) vs;
    t
end
