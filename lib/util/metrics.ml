(* Counters are atomics so any domain may bump them lock-free; gauges,
   histograms and the finished-span forest live behind one registry
   mutex (all updates there are coarse-grained — per run or per chunk,
   never per access).  Span stacks are domain-local: nesting is only
   meaningful within one domain, and a root finishing on any domain
   merges into the shared forest under the mutex. *)

type hist = {
  h_unit : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* The accumulator behind a histogram keeps every sample so the
   snapshot can report exact nearest-rank percentiles.  Observation is
   per-chunk / per-shard — coarse by design (see the header comment) —
   so retention is a few thousand floats per run, not per-access
   volume. *)
type hist_acc = {
  a_unit : string;
  mutable a_count : int;
  mutable a_sum : float;
  mutable a_min : float;
  mutable a_max : float;
  mutable a_samples : float list;  (* newest first *)
}

type span = {
  span_name : string;
  start : float;
  seconds : float;
  children : span list;
}

(* A span being built: children accumulate in reverse. *)
type open_span = {
  o_name : string;
  o_start : float;
  mutable o_children : span list;
}

type t = {
  on : bool Atomic.t;
  mu : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  histograms : (string, hist_acc) Hashtbl.t;
  mutable roots : span list;  (* reversed *)
  mutable epoch : float;  (* creation/reset instant; span starts are
                             reported relative to it *)
  stack : open_span list ref Domain.DLS.key;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
  spans : span list;
}

let create ?(enabled = false) () =
  {
    on = Atomic.make enabled;
    mu = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    roots = [];
    epoch = Unix.gettimeofday ();
    stack = Domain.DLS.new_key (fun () -> ref []);
  }

let global = create ()
let set_enabled t b = Atomic.set t.on b
let is_on t = Atomic.get t.on

let reset t =
  Mutex.lock t.mu;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.roots <- [];
  t.epoch <- Unix.gettimeofday ();
  Mutex.unlock t.mu

(* -- recording ----------------------------------------------------------- *)

let counter_cell t name =
  Mutex.lock t.mu;
  let c =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.add t.counters name c;
      c
  in
  Mutex.unlock t.mu;
  c

let incr t ?(by = 1) name =
  if Atomic.get t.on then ignore (Atomic.fetch_and_add (counter_cell t name) by)

let set_gauge t name v =
  if Atomic.get t.on then begin
    Mutex.lock t.mu;
    Hashtbl.replace t.gauges name v;
    Mutex.unlock t.mu
  end

let observe t ?(unit_ = "") name v =
  if Atomic.get t.on then begin
    Mutex.lock t.mu;
    let a =
      match Hashtbl.find_opt t.histograms name with
      | Some a -> a
      | None ->
        let a =
          { a_unit = unit_; a_count = 0; a_sum = 0.0; a_min = infinity;
            a_max = neg_infinity; a_samples = [] }
        in
        Hashtbl.add t.histograms name a;
        a
    in
    a.a_count <- a.a_count + 1;
    a.a_sum <- a.a_sum +. v;
    a.a_min <- Float.min a.a_min v;
    a.a_max <- Float.max a.a_max v;
    a.a_samples <- v :: a.a_samples;
    Mutex.unlock t.mu
  end

let with_span t name f =
  if not (Atomic.get t.on) then f ()
  else begin
    let stack = Domain.DLS.get t.stack in
    let sp = { o_name = name; o_start = Unix.gettimeofday (); o_children = [] } in
    stack := sp :: !stack;
    let finish () =
      let closed =
        {
          span_name = sp.o_name;
          start = sp.o_start -. t.epoch;
          seconds = Unix.gettimeofday () -. sp.o_start;
          children = List.rev sp.o_children;
        }
      in
      (* pop back down to [sp] even if an inner span leaked open *)
      let rec pop = function
        | top :: rest when top == sp -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack;
      match !stack with
      | parent :: _ -> parent.o_children <- closed :: parent.o_children
      | [] ->
        Mutex.lock t.mu;
        t.roots <- closed :: t.roots;
        Mutex.unlock t.mu
    in
    Fun.protect ~finally:finish f
  end

(* -- reading ------------------------------------------------------------- *)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Called with [t.mu] held.  Percentiles are exact nearest-rank over the
   retained samples (Stats.percentile is total: None only when empty). *)
let hist_of_acc a =
  let pct p = Option.value ~default:0.0 (Stats.percentile a.a_samples ~p) in
  {
    h_unit = a.a_unit;
    count = a.a_count;
    sum = a.a_sum;
    min_v = a.a_min;
    max_v = a.a_max;
    p50 = pct 50.0;
    p95 = pct 95.0;
    p99 = pct 99.0;
  }

let snapshot t =
  Mutex.lock t.mu;
  let s =
    {
      counters = sorted_bindings t.counters Atomic.get;
      gauges = sorted_bindings t.gauges Fun.id;
      histograms = sorted_bindings t.histograms hist_of_acc;
      spans = List.rev t.roots;
    }
  in
  Mutex.unlock t.mu;
  s

let counter_value t name =
  Mutex.lock t.mu;
  let v =
    match Hashtbl.find_opt t.counters name with
    | Some c -> Atomic.get c
    | None -> 0
  in
  Mutex.unlock t.mu;
  v

(* Does [name] contain [needle] as a segment (at the start or after a
   dot)?  [needle] must end with '.'. *)
let has_segment needle name =
  let nl = String.length needle and l = String.length name in
  let rec go i =
    if i + nl > l then false
    else if
      String.sub name i nl = needle && (i = 0 || name.[i - 1] = '.')
    then true
    else go (i + 1)
  in
  go 0

(* [sched.] counters measure scheduling itself; [cache.] counters can
   depend on eviction order, which is scheduling-dependent once a cache
   overflows its capacity.  Both are excluded from the parity
   contract. *)
let deterministic_counters (s : snapshot) =
  List.filter
    (fun (name, _) ->
      not (has_segment "sched." name || has_segment "cache." name))
    s.counters

(* -- rendering ----------------------------------------------------------- *)

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let to_text t =
  let s = snapshot t in
  let b = Buffer.create 1024 in
  let section name = function
    | [] -> ()
    | rows ->
      Buffer.add_string b (name ^ ":\n");
      List.iter (fun r -> Buffer.add_string b ("  " ^ r ^ "\n")) rows
  in
  section "counters"
    (List.map (fun (k, v) -> Printf.sprintf "%-46s %d" k v) s.counters);
  section "gauges"
    (List.map (fun (k, v) -> Printf.sprintf "%-46s %.6g" k v) s.gauges);
  section "histograms"
    (List.map
       (fun (k, h) ->
         Printf.sprintf
           "%-46s n=%d sum=%.6g min=%.6g max=%.6g mean=%.6g p50=%.6g \
            p95=%.6g p99=%.6g %s"
           k h.count h.sum
           (if h.count = 0 then 0.0 else h.min_v)
           (if h.count = 0 then 0.0 else h.max_v)
           (hist_mean h) h.p50 h.p95 h.p99 h.h_unit)
       s.histograms);
  (if s.spans <> [] then begin
     Buffer.add_string b "spans:\n";
     let rec render indent (sp : span) =
       Buffer.add_string b
         (Printf.sprintf "%s%-*s %.4fs\n" indent
            (max 1 (48 - String.length indent))
            sp.span_name sp.seconds);
       List.iter (render (indent ^ "  ")) sp.children
     in
     List.iter (render "  ") s.spans
   end);
  Buffer.contents b

let escape = Json.escape
let json_float = Json.number

let to_json t =
  let s = snapshot t in
  let b = Buffer.create 2048 in
  let obj name rows render =
    Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\n    \"%s\": %s" (escape k) (render v)))
      rows;
    Buffer.add_string b (if rows = [] then "}" else "\n  }")
  in
  Buffer.add_string b "{\n";
  obj "counters" s.counters string_of_int;
  Buffer.add_string b ",\n";
  obj "gauges" s.gauges json_float;
  Buffer.add_string b ",\n";
  obj "histograms" s.histograms (fun h ->
      Printf.sprintf
        "{\"unit\": \"%s\", \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": \
         %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}"
        (escape h.h_unit) h.count (json_float h.sum)
        (json_float (if h.count = 0 then 0.0 else h.min_v))
        (json_float (if h.count = 0 then 0.0 else h.max_v))
        (json_float (hist_mean h)) (json_float h.p50) (json_float h.p95)
        (json_float h.p99));
  Buffer.add_string b ",\n  \"spans\": [";
  let rec span_json (sp : span) =
    Printf.sprintf
      "{\"name\": \"%s\", \"start\": %s, \"seconds\": %s, \"children\": [%s]}"
      (escape sp.span_name) (json_float sp.start) (json_float sp.seconds)
      (String.concat ", " (List.map span_json sp.children))
  in
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b ("\n    " ^ span_json sp))
    s.spans;
  Buffer.add_string b (if s.spans = [] then "]\n" else "\n  ]\n");
  Buffer.add_string b "}\n";
  Buffer.contents b
