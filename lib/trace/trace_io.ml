exception Parse_error of { line : int; message : string }

let fail ~line message = raise (Parse_error { line; message })

(* Binary-codec errors carry no line numbers; surface them on line 0
   with the codec's message. *)
let with_corrupt f =
  try f () with Trace_codec.Corrupt message -> fail ~line:0 message

let pattern_to_tag = function
  | Region.Stream -> "stream"
  | Region.Self_indirect -> "self-indirect"
  | Region.Indexed -> "indexed"
  | Region.Random_access -> "random"
  | Region.Mixed -> "mixed"

let pattern_of_tag ~line = function
  | "stream" -> Region.Stream
  | "self-indirect" -> Region.Self_indirect
  | "indexed" -> Region.Indexed
  | "random" -> Region.Random_access
  | "mixed" -> Region.Mixed
  | tag -> fail ~line (Printf.sprintf "unknown pattern %S" tag)

(* -- text format (v1) --------------------------------------------------- *)

let to_string (w : Workload.t) =
  let buf = Buffer.create (Trace.length w.Workload.trace * 16) in
  Buffer.add_string buf "# memorex-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "workload %s\n" w.Workload.name);
  Buffer.add_string buf (Printf.sprintf "cpu_ops %d\n" w.Workload.cpu_ops);
  List.iter
    (fun (r : Region.t) ->
      Buffer.add_string buf
        (Printf.sprintf "region %d %s 0x%x %d %d %s\n" r.Region.id
           r.Region.name r.Region.base r.Region.size r.Region.elem_size
           (pattern_to_tag r.Region.hint)))
    w.Workload.regions;
  Buffer.add_string buf
    (Printf.sprintf "trace %d\n" (Trace.length w.Workload.trace));
  Trace.iter_packed w.Workload.trace ~f:(fun ~addr ~size ~kind ~region ->
      Buffer.add_string buf
        (Printf.sprintf "%c 0x%x %d %d\n"
           (match kind with Access.Read -> 'R' | Access.Write -> 'W')
           addr size region));
  Buffer.contents buf

let of_text_string s =
  let lines = String.split_on_char '\n' s in
  let name = ref None and cpu_ops = ref 0 in
  (* regions keep their declaration line so post-parse validation can
     point at the offending line rather than "line 0" *)
  let regions = ref [] in
  let trace = Trace.create () in
  let expected = ref (-1) in
  let trace_header_line = ref 0 in
  let lineno = ref 0 in
  let parse_int ~line v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail ~line (Printf.sprintf "expected an integer, got %S" v)
  in
  List.iter
    (fun raw ->
      incr lineno;
      let line = !lineno in
      (* trim also strips the '\r' of CRLF input, keeping both parsing
         and reported line numbers identical to the LF form *)
      let l = String.trim raw in
      if l = "" || l.[0] = '#' then ()
      else
        match String.split_on_char ' ' l with
        | [ "workload"; n ] -> name := Some n
        | [ "cpu_ops"; n ] -> cpu_ops := parse_int ~line n
        | [ "region"; id; rname; base; size; elem; hint ] ->
          regions :=
            ( line,
              {
                Region.id = parse_int ~line id;
                name = rname;
                base = parse_int ~line base;
                size = parse_int ~line size;
                elem_size = parse_int ~line elem;
                hint = pattern_of_tag ~line hint;
              } )
            :: !regions
        | [ "trace"; n ] ->
          trace_header_line := line;
          expected := parse_int ~line n
        | [ kind; addr; size; region ] when kind = "R" || kind = "W" ->
          Trace.add trace ~addr:(parse_int ~line addr)
            ~size:(parse_int ~line size)
            ~kind:(if kind = "R" then Access.Read else Access.Write)
            ~region:(parse_int ~line region)
        | _ -> fail ~line (Printf.sprintf "unrecognised line %S" l))
    lines;
  let name =
    match !name with
    | Some n -> n
    | None -> fail ~line:1 "missing 'workload' header"
  in
  if !expected >= 0 && Trace.length trace <> !expected then
    fail ~line:!trace_header_line
      (Printf.sprintf "trace length mismatch: header says %d, found %d"
         !expected (Trace.length trace));
  let regions =
    List.sort
      (fun (_, (a : Region.t)) (_, b) -> compare a.Region.id b.Region.id)
      !regions
  in
  List.iteri
    (fun i (line, (r : Region.t)) ->
      if r.Region.id <> i then
        fail ~line (Printf.sprintf "region ids not contiguous at %d" i))
    regions;
  { Workload.name; regions = List.map snd regions; trace; cpu_ops = !cpu_ops }

(* -- binary format (v2) ------------------------------------------------- *)

(* Slots of per-region delta state the codec needs: enough for the
   region table and for any region id the trace actually carries
   (Trace.add does not force ids into the table). *)
let slots_for (w : Workload.t) =
  let n = Trace.length w.Workload.trace in
  let _, metas = Trace.backing w.Workload.trace in
  let slots = ref (List.length w.Workload.regions) in
  for i = 0 to n - 1 do
    let r = metas.(i) lsr 3 in
    if r >= !slots then slots := r + 1
  done;
  !slots

let to_binary_string ?(chunk_cap = Trace_codec.default_chunk_cap)
    (w : Workload.t) =
  if chunk_cap <= 0 then
    invalid_arg "Trace_io.to_binary_string: non-positive chunk capacity";
  let n = Trace.length w.Workload.trace in
  let addrs, metas = Trace.backing w.Workload.trace in
  let header =
    {
      Trace_codec.h_name = w.Workload.name;
      h_cpu_ops = w.Workload.cpu_ops;
      h_regions = w.Workload.regions;
      h_slots = slots_for w;
      h_accesses = n;
      h_chunk_cap = chunk_cap;
    }
  in
  let buf = Buffer.create (65536 + (n * 2)) in
  Trace_codec.encode_header buf header;
  let bases = Trace_codec.bases_of_header header in
  let n_chunks = (n + chunk_cap - 1) / chunk_cap in
  let f_lens = Array.make n_chunks 0 and f_counts = Array.make n_chunks 0 in
  for i = 0 to n_chunks - 1 do
    let pos = i * chunk_cap in
    let len = min chunk_cap (n - pos) in
    let before = Buffer.length buf in
    Trace_codec.encode_chunk buf ~bases ~addrs ~metas ~pos ~len;
    f_lens.(i) <- Buffer.length buf - before;
    f_counts.(i) <- len
  done;
  let footer_offset = Buffer.length buf in
  Trace_codec.encode_footer buf { Trace_codec.f_lens; f_counts };
  Trace_codec.encode_trailer buf ~footer_offset;
  Buffer.contents buf

(* Locate header end, footer and per-chunk offsets of an encoded binary
   trace.  Shared by whole-string decode and the file-backed stream;
   every structural inconsistency is a [Trace_codec.Corrupt]. *)
let binary_layout ~total_len ~data_start (footer : Trace_codec.footer)
    ~footer_offset ~accesses ~chunk_cap =
  let n_chunks = Array.length footer.Trace_codec.f_lens in
  if
    footer_offset < data_start
    || footer_offset > total_len - Trace_codec.trailer_bytes
  then raise (Trace_codec.Corrupt "footer offset out of range");
  let offs = Array.make (n_chunks + 1) data_start in
  let total = ref 0 in
  for i = 0 to n_chunks - 1 do
    offs.(i + 1) <- offs.(i) + footer.Trace_codec.f_lens.(i);
    let c = footer.Trace_codec.f_counts.(i) in
    if c < 0 || c > chunk_cap then
      raise (Trace_codec.Corrupt "chunk access count exceeds the chunk capacity");
    total := !total + c
  done;
  if offs.(n_chunks) <> footer_offset then
    raise (Trace_codec.Corrupt "chunk byte lengths do not reach the footer");
  if !total <> accesses then
    raise
      (Trace_codec.Corrupt
         (Printf.sprintf "chunk counts sum to %d, header says %d accesses"
            !total accesses));
  offs

let decode_one_chunk ~bases ~(footer : Trace_codec.footer) ~chunk_data i =
  let count = footer.Trace_codec.f_counts.(i) in
  let a = Array.make (max 1 count) 0 and m = Array.make (max 1 count) 0 in
  let cr = Trace_codec.reader_of_string chunk_data in
  Trace_codec.decode_chunk cr ~bases ~count ~into_addrs:a ~into_metas:m;
  if !(cr.Trace_codec.consumed) <> footer.Trace_codec.f_lens.(i) then
    raise
      (Trace_codec.Corrupt
         (Printf.sprintf "chunk %d decoded to a different byte length" i));
  (a, m, count)

let of_binary_string s =
  with_corrupt (fun () ->
      let total_len = String.length s in
      let r = Trace_codec.reader_of_string s in
      Trace_codec.check_magic r;
      let h = Trace_codec.decode_header r in
      let data_start = !(r.Trace_codec.consumed) in
      if total_len < data_start + Trace_codec.trailer_bytes then
        raise (Trace_codec.Corrupt "truncated binary trace (no trailer)");
      let footer_offset =
        Trace_codec.decode_trailer
          (String.sub s
             (total_len - Trace_codec.trailer_bytes)
             Trace_codec.trailer_bytes)
      in
      if footer_offset > total_len - Trace_codec.trailer_bytes then
        raise (Trace_codec.Corrupt "footer offset out of range");
      let footer =
        Trace_codec.decode_footer
          (Trace_codec.reader_of_string ~pos:footer_offset s)
      in
      let offs =
        binary_layout ~total_len ~data_start footer ~footer_offset
          ~accesses:h.Trace_codec.h_accesses
          ~chunk_cap:h.Trace_codec.h_chunk_cap
      in
      let bases = Trace_codec.bases_of_header h in
      let trace =
        Trace.create ~capacity:(max 16 h.Trace_codec.h_accesses) ()
      in
      Array.iteri
        (fun i len ->
          let chunk_data = String.sub s offs.(i) len in
          let a, m, count = decode_one_chunk ~bases ~footer ~chunk_data i in
          for k = 0 to count - 1 do
            Trace.add_packed trace ~addr:a.(k) ~meta:m.(k)
          done)
        footer.Trace_codec.f_lens;
      {
        Workload.name = h.Trace_codec.h_name;
        regions = h.Trace_codec.h_regions;
        trace;
        cpu_ops = h.Trace_codec.h_cpu_ops;
      })

let is_binary s =
  String.length s >= String.length Trace_codec.magic
  && String.sub s 0 (String.length Trace_codec.magic) = Trace_codec.magic

let of_string s = if is_binary s then of_binary_string s else of_text_string s

(* -- files -------------------------------------------------------------- *)

type format = Text | Binary

let save ?(format = Text) ?chunk_cap w ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | Text -> output_string oc (to_string w)
      | Binary -> output_string oc (to_binary_string ?chunk_cap w))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

let open_stream ~path =
  let ic = open_in_bin path in
  let probe =
    let n = min (in_channel_length ic) (String.length Trace_codec.magic) in
    really_input_string ic n
  in
  if not (is_binary probe) then begin
    (* text (or empty) file: no random access to give — materialise and
       wrap, so callers get one code path for both formats *)
    close_in ic;
    let w = load ~path in
    Workload.streamed ~name:w.Workload.name ~regions:w.Workload.regions
      ~cpu_ops:w.Workload.cpu_ops
      (Trace_stream.of_trace w.Workload.trace)
  end
  else
    match
      with_corrupt (fun () ->
          seek_in ic 0;
          let r = Trace_codec.reader_of_channel ic in
          Trace_codec.check_magic r;
          let h = Trace_codec.decode_header r in
          let data_start = !(r.Trace_codec.consumed) in
          let total_len = in_channel_length ic in
          if total_len < data_start + Trace_codec.trailer_bytes then
            raise (Trace_codec.Corrupt "truncated binary trace (no trailer)");
          seek_in ic (total_len - Trace_codec.trailer_bytes);
          let footer_offset =
            Trace_codec.decode_trailer
              (really_input_string ic Trace_codec.trailer_bytes)
          in
          if footer_offset > total_len - Trace_codec.trailer_bytes then
            raise (Trace_codec.Corrupt "footer offset out of range");
          seek_in ic footer_offset;
          let fr = Trace_codec.reader_of_channel ic in
          let footer = Trace_codec.decode_footer fr in
          let footer_bytes = !(fr.Trace_codec.consumed) in
          let offs =
            binary_layout ~total_len ~data_start footer ~footer_offset
              ~accesses:h.Trace_codec.h_accesses
              ~chunk_cap:h.Trace_codec.h_chunk_cap
          in
          (h, footer, footer_bytes, offs, data_start))
    with
    | exception e ->
      close_in_noerr ic;
      raise e
    | h, footer, footer_bytes, offs, data_start ->
      let bases = Trace_codec.bases_of_header h in
      let n_chunks = Array.length footer.Trace_codec.f_lens in
      let starts = Array.make (n_chunks + 1) 0 in
      for i = 0 to n_chunks - 1 do
        starts.(i + 1) <- starts.(i) + footer.Trace_codec.f_counts.(i)
      done;
      let fetch i =
        with_corrupt (fun () ->
            seek_in ic offs.(i);
            let chunk_data =
              try really_input_string ic footer.Trace_codec.f_lens.(i)
              with End_of_file ->
                raise (Trace_codec.Corrupt "truncated binary trace chunk")
            in
            let a, m, count = decode_one_chunk ~bases ~footer ~chunk_data i in
            {
              Trace_stream.c_first = starts.(i);
              c_len = count;
              c_off = 0;
              c_addrs = a;
              c_metas = m;
            })
      in
      let stream =
        Trace_stream.make ~length:h.Trace_codec.h_accesses
          ~chunk_cap:h.Trace_codec.h_chunk_cap
          ~counts:footer.Trace_codec.f_counts ~fetch
          ~chunk_bytes:(fun i -> footer.Trace_codec.f_lens.(i))
          ~file_backed:true
          ~close:(fun () -> close_in_noerr ic)
          ()
      in
      Trace_stream.account_raw_read stream
        (data_start + footer_bytes + Trace_codec.trailer_bytes);
      Workload.streamed ~name:h.Trace_codec.h_name
        ~regions:h.Trace_codec.h_regions ~cpu_ops:h.Trace_codec.h_cpu_ops
        stream
