(* A chunked access source: the one interface behind which an
   in-memory Trace.t and a file-backed binary trace look identical to
   the cycle simulator.  Chunks are fetched on demand, so a consumer
   that seeks (time-sampled simulation) never pays for the spans it
   skips. *)

type chunk = {
  c_first : int;
  c_len : int;
  c_off : int;
  c_addrs : int array;
  c_metas : int array;
}

type io_stats = {
  mutable bytes_read : int;
  mutable chunks_fetched : int;
  mutable chunks_seeked : int;
  mutable chunks_skipped : int;
}

type t = {
  length : int;
  chunk_cap : int;
  starts : int array;  (* starts.(i) = global index of chunk i's first access *)
  fetch : int -> chunk;
  chunk_bytes : int -> int;  (* encoded size; 0 for in-memory sources *)
  file_backed : bool;
  stats : io_stats;
  mutable last_chunk : int;
  mutable closed : bool;
  close_fn : unit -> unit;
}

let make ~length ~chunk_cap ~counts ~fetch ~chunk_bytes ~file_backed ~close ()
    =
  let n = Array.length counts in
  let starts = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    starts.(i + 1) <- starts.(i) + counts.(i)
  done;
  if starts.(n) <> length then
    invalid_arg "Trace_stream.make: chunk counts do not sum to the length";
  {
    length;
    chunk_cap;
    starts;
    fetch;
    chunk_bytes;
    file_backed;
    stats =
      { bytes_read = 0; chunks_fetched = 0; chunks_seeked = 0;
        chunks_skipped = 0 };
    last_chunk = -1;
    closed = false;
    close_fn = close;
  }

let length t = t.length
let chunk_cap t = t.chunk_cap
let chunk_count t = Array.length t.starts - 1

let chunk_start t i =
  if i < 0 || i >= chunk_count t then
    invalid_arg "Trace_stream.chunk_start: chunk index out of bounds";
  t.starts.(i)

let chunk_length t i =
  if i < 0 || i >= chunk_count t then
    invalid_arg "Trace_stream.chunk_length: chunk index out of bounds";
  t.starts.(i + 1) - t.starts.(i)

let io_stats t =
  { t.stats with bytes_read = t.stats.bytes_read }

(* The streaming counters obey the metrics determinism contract: how
   many chunks a run fetches/skips depends only on the trace, the
   chunking and the sampling windows — never on domain scheduling. *)
let note_io ~bytes ~seeked ~skipped =
  let m = Mx_util.Metrics.global in
  if Mx_util.Metrics.is_on m then begin
    if bytes > 0 then Mx_util.Metrics.incr m ~by:bytes "trace.io.bytes_read";
    if seeked > 0 then
      Mx_util.Metrics.incr m ~by:seeked "trace.io.chunks_seeked";
    if skipped > 0 then
      Mx_util.Metrics.incr m ~by:skipped "trace.io.chunks_skipped"
  end

(* Called by the file-backed constructor for header/footer reads. *)
let account_raw_read t bytes =
  t.stats.bytes_read <- t.stats.bytes_read + bytes;
  if t.file_backed then note_io ~bytes ~seeked:0 ~skipped:0

let get_chunk t i =
  if t.closed then invalid_arg "Trace_stream.get_chunk: stream is closed";
  if i < 0 || i >= chunk_count t then
    invalid_arg "Trace_stream.get_chunk: chunk index out of bounds";
  if t.file_backed then begin
    let bytes = t.chunk_bytes i in
    let seeked = if i <> t.last_chunk + 1 then 1 else 0 in
    let skipped = if i > t.last_chunk + 1 then i - t.last_chunk - 1 else 0 in
    t.stats.bytes_read <- t.stats.bytes_read + bytes;
    t.stats.chunks_fetched <- t.stats.chunks_fetched + 1;
    t.stats.chunks_seeked <- t.stats.chunks_seeked + seeked;
    t.stats.chunks_skipped <- t.stats.chunks_skipped + skipped;
    note_io ~bytes ~seeked ~skipped
  end
  else t.stats.chunks_fetched <- t.stats.chunks_fetched + 1;
  t.last_chunk <- i;
  t.fetch i

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let iter_chunks t ~f =
  for i = 0 to chunk_count t - 1 do
    f (get_chunk t i)
  done

let iter_packed t ~f =
  iter_chunks t ~f:(fun c ->
      for k = c.c_off to c.c_off + c.c_len - 1 do
        let meta = c.c_metas.(k) in
        f ~addr:c.c_addrs.(k) ~size:(Trace.meta_size meta)
          ~kind:(Trace.meta_kind meta)
          ~region:(Trace.meta_region meta)
      done)

let to_trace t =
  let out = Trace.create ~capacity:(max 16 t.length) () in
  iter_chunks t ~f:(fun c ->
      for k = c.c_off to c.c_off + c.c_len - 1 do
        Trace.add_packed out ~addr:c.c_addrs.(k) ~meta:c.c_metas.(k)
      done);
  out

let content_hash t =
  let h = ref Trace.hash_basis in
  iter_chunks t ~f:(fun c ->
      for k = c.c_off to c.c_off + c.c_len - 1 do
        h := Trace.hash_step !h ~addr:c.c_addrs.(k) ~meta:c.c_metas.(k)
      done);
  Trace.hash_finish !h

let of_trace ?(chunk_cap = Trace_codec.default_chunk_cap) trace =
  if chunk_cap <= 0 then
    invalid_arg "Trace_stream.of_trace: non-positive chunk capacity";
  let n = Trace.length trace in
  let n_chunks = (n + chunk_cap - 1) / chunk_cap in
  let counts =
    Array.init n_chunks (fun i ->
        min chunk_cap (n - (i * chunk_cap)))
  in
  let addrs, metas = Trace.backing trace in
  let fetch i =
    {
      c_first = i * chunk_cap;
      c_len = counts.(i);
      c_off = i * chunk_cap;
      c_addrs = addrs;
      c_metas = metas;
    }
  in
  make ~length:n ~chunk_cap ~counts ~fetch
    ~chunk_bytes:(fun _ -> 0)
    ~file_backed:false
    ~close:(fun () -> ())
    ()
