type t = {
  name : string;
  regions : Region.t list;
  trace : Trace.t;
  cpu_ops : int;
}

let access_count t = Trace.length t.trace

let concat ~name = function
  | [] -> invalid_arg "Workload.concat: empty list"
  | first :: rest as all ->
    List.iter
      (fun w ->
        if w.regions <> first.regions then
          invalid_arg "Workload.concat: region tables differ")
      rest;
    let trace =
      Trace.create
        ~capacity:(List.fold_left (fun a w -> a + Trace.length w.trace) 0 all)
        ()
    in
    List.iter
      (fun w ->
        Trace.iter_packed w.trace ~f:(fun ~addr ~size ~kind ~region ->
            Trace.add trace ~addr ~size ~kind ~region))
      all;
    {
      name;
      regions = first.regions;
      trace;
      cpu_ops = List.fold_left (fun a w -> a + w.cpu_ops) 0 all;
    }

(* Regions are replayed in table order by every consumer, so the region
   list is canonical as-is; the trace itself is folded to its FNV-1a
   content hash rather than inlined.  O(trace length) — callers that
   evaluate one workload many times should compute this once. *)
let fingerprint_parts ~name ~length ~hash ~cpu_ops ~regions =
  let region (r : Region.t) =
    Printf.sprintf "%d:%s:%d:%d:%d:%s" r.Region.id r.Region.name r.Region.base
      r.Region.size r.Region.elem_size
      (Region.pattern_to_string r.Region.hint)
  in
  Printf.sprintf "wl:%s;n=%d;h=%x;ops=%d;r=%s" name length hash cpu_ops
    (String.concat "," (List.map region regions))

let fingerprint t =
  fingerprint_parts ~name:t.name ~length:(Trace.length t.trace)
    ~hash:(Trace.content_hash t.trace) ~cpu_ops:t.cpu_ops ~regions:t.regions

type streamed = {
  s_name : string;
  s_regions : Region.t list;
  s_cpu_ops : int;
  s_stream : Trace_stream.t;
  mutable s_fp : string option;
}

let streamed ~name ~regions ~cpu_ops stream =
  { s_name = name; s_regions = regions; s_cpu_ops = cpu_ops;
    s_stream = stream; s_fp = None }

(* The stream hashes with the same FNV-1a fold as Trace.content_hash,
   so this fingerprint equals [fingerprint (of_streamed s)] without
   ever materialising the trace.  Memoised: hashing reads the whole
   stream, and the eval cache asks for the fingerprint repeatedly. *)
let streamed_fingerprint s =
  match s.s_fp with
  | Some fp -> fp
  | None ->
    let fp =
      fingerprint_parts ~name:s.s_name
        ~length:(Trace_stream.length s.s_stream)
        ~hash:(Trace_stream.content_hash s.s_stream)
        ~cpu_ops:s.s_cpu_ops ~regions:s.s_regions
    in
    s.s_fp <- Some fp;
    fp

let of_streamed s =
  {
    name = s.s_name;
    regions = s.s_regions;
    trace = Trace_stream.to_trace s.s_stream;
    cpu_ops = s.s_cpu_ops;
  }

let region_by_name t name =
  match List.find_opt (fun r -> r.Region.name = name) t.regions with
  | Some r -> r
  | None -> raise Not_found

module Emitter = struct
  type e = { trace : Trace.t; mutable cpu_ops : int }

  let create () = { trace = Trace.create ~capacity:65536 (); cpu_ops = 0 }

  let clamp_size s = if s = 1 || s = 2 || s = 4 || s = 8 then s else 4

  let read e (r : Region.t) i =
    Trace.add e.trace ~addr:(Region.elem_addr r i)
      ~size:(clamp_size r.elem_size) ~kind:Access.Read ~region:r.id

  let write e (r : Region.t) i =
    Trace.add e.trace ~addr:(Region.elem_addr r i)
      ~size:(clamp_size r.elem_size) ~kind:Access.Write ~region:r.id

  let byte_access e (r : Region.t) ~byte_off ~size ~kind =
    let addr = r.base + byte_off in
    if byte_off < 0 || byte_off + size > r.size then
      invalid_arg
        (Printf.sprintf "Emitter: byte access outside region %s" r.name);
    Trace.add e.trace ~addr ~size ~kind ~region:r.id

  let read_bytes e r ~byte_off ~size =
    byte_access e r ~byte_off ~size ~kind:Access.Read

  let write_bytes e r ~byte_off ~size =
    byte_access e r ~byte_off ~size ~kind:Access.Write

  let ops e n = e.cpu_ops <- e.cpu_ops + max 0 n

  let trace_length e = Trace.length e.trace

  let finish e ~name ~regions =
    { name; regions; trace = e.trace; cpu_ops = e.cpu_ops }
end
