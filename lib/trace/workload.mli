(** A workload: named regions plus the memory trace an instrumented
    kernel produced over them.

    This is the unit of input to the whole exploration flow — the
    stand-in for "the application in C" of the paper. *)

type t = {
  name : string;
  regions : Region.t list;
  trace : Trace.t;
  cpu_ops : int;
      (** number of non-memory CPU operations the kernel performed,
          used to interleave compute cycles between accesses in the
          cycle simulator *)
}

val access_count : t -> int

val concat : name:string -> t list -> t
(** Multi-phase workload: run the given workloads' traces back to back.
    All inputs must share the same region table (same ids, names and
    extents) — i.e. be instances of the same kernel.
    @raise Invalid_argument on an empty list or mismatched regions. *)

val fingerprint : t -> string
(** Canonical content fingerprint: name, trace length, trace content
    hash (see {!Trace.content_hash}), cpu op count, and the full region
    table.  Two workloads with equal fingerprints behave identically
    under estimation and simulation (up to hash collision on the trace
    stream).  O(trace length) — compute once per workload, not per
    evaluation. *)

val fingerprint_parts :
  name:string ->
  length:int ->
  hash:int ->
  cpu_ops:int ->
  regions:Region.t list ->
  string
(** The fingerprint format itself, usable from any trace source that
    knows its length and content hash.  [fingerprint t] is
    [fingerprint_parts] applied to [t]'s fields. *)

val region_by_name : t -> string -> Region.t
(** @raise Not_found when the workload has no such region. *)

(** {2 Streamed workloads}

    A workload whose trace lives behind a {!Trace_stream.t} — possibly
    a file never loaded into memory.  The cycle simulator replays it
    directly ({!Mx_sim.Cycle_sim.run_stream}); the fingerprint is
    computed by streaming, and matches the materialised workload's
    {!fingerprint} exactly, so evaluation caches are shared across
    in-memory, text-loaded and binary-streamed paths. *)

type streamed = {
  s_name : string;
  s_regions : Region.t list;
  s_cpu_ops : int;
  s_stream : Trace_stream.t;
  mutable s_fp : string option;  (** memoised {!streamed_fingerprint} *)
}

val streamed :
  name:string ->
  regions:Region.t list ->
  cpu_ops:int ->
  Trace_stream.t ->
  streamed

val streamed_fingerprint : streamed -> string
(** Equal to [fingerprint (of_streamed s)], computed without
    materialising the trace.  Reads the whole stream once; memoised. *)

val of_streamed : streamed -> t
(** Materialise the stream into an ordinary in-memory workload. *)

(** Instrumentation helper for kernels: counts CPU work and appends
    element-level reads/writes to the trace. *)
module Emitter : sig
  type e

  val create : unit -> e

  val read : e -> Region.t -> int -> unit
  (** [read e r i] records a read of element [i] of region [r] at the
      region's natural element width. *)

  val write : e -> Region.t -> int -> unit

  val read_bytes : e -> Region.t -> byte_off:int -> size:int -> unit
  (** Sub-element access at an explicit byte offset. *)

  val write_bytes : e -> Region.t -> byte_off:int -> size:int -> unit

  val ops : e -> int -> unit
  (** [ops e n] records [n] units of pure CPU work (ALU/branch). *)

  val trace_length : e -> int
  (** Number of accesses emitted so far — lets kernels run "until the
      trace is big enough". *)

  val finish : e -> name:string -> regions:Region.t list -> t
end
