(** Byte-level codec of the memorex binary trace format (v2).

    Shared by {!Trace_io} (whole-file save/load) and {!Trace_stream}
    (chunk-at-a-time reading).  See the implementation header and
    DESIGN.md §11 for the exact layout:

    {v
    "MXTB" v2 | header | chunk* | footer (per-chunk len+count) | trailer
    v}

    Every chunk is independently decodable — the per-region zig-zag
    delta state resets to the region bases at each chunk boundary — so
    a reader holding the footer index can fetch any chunk with one
    seek.  Records are run-length escaped: a repeated (meta, stride)
    pair is stored once with a repeat count. *)

exception Corrupt of string
(** Malformed or truncated binary input.  {!Trace_io} maps this to its
    public [Parse_error]. *)

val magic : string
(** ["MXTB"] — the file's first four bytes. *)

val trailer_magic : string
val version : int

val trailer_bytes : int
(** Fixed size of the trailer (u64-LE footer offset + magic). *)

val default_chunk_cap : int
(** 1024 accesses per chunk.  Small enough that seek-mode sampling
    (1/9 on/off windows of 1000/9000) skips most chunks, large enough
    that the footer stays negligible. *)

(** {2 Primitive readers/writers} *)

type reader = {
  next_byte : unit -> int;  (** @raise Corrupt at end of input *)
  consumed : int ref;  (** bytes read so far *)
}

val reader_of_string : ?pos:int -> string -> reader
val reader_of_channel : in_channel -> reader

val write_varint : Buffer.t -> int -> unit
val write_zigzag : Buffer.t -> int -> unit
val read_varint : reader -> int
val read_zigzag : reader -> int

(** {2 Header} *)

type header = {
  h_name : string;
  h_cpu_ops : int;
  h_regions : Region.t list;  (** sorted by id, ids contiguous from 0 *)
  h_slots : int;  (** delta-state slots: 1 + the largest region id *)
  h_accesses : int;
  h_chunk_cap : int;
}

val encode_header : Buffer.t -> header -> unit
(** Writes magic and version too. *)

val decode_header : reader -> header
(** The reader must be positioned just after the magic/version bytes
    (see {!check_magic}). *)

val check_magic : reader -> unit
(** Consume and validate the 5 magic/version bytes. *)

val bases_of_header : header -> int array
(** The pristine per-region delta state (region bases; never empty). *)

(** {2 Chunks} *)

val encode_chunk :
  Buffer.t ->
  bases:int array ->
  addrs:int array ->
  metas:int array ->
  pos:int ->
  len:int ->
  unit
(** Encode accesses [pos .. pos+len-1] of a packed trace as one chunk.
    @raise Invalid_argument on a region id outside [bases]. *)

val decode_chunk :
  reader ->
  bases:int array ->
  count:int ->
  into_addrs:int array ->
  into_metas:int array ->
  unit
(** Decode exactly [count] accesses into the target arrays (indices
    [0 .. count-1]).  @raise Corrupt on malformed records. *)

(** {2 Footer and trailer} *)

type footer = {
  f_lens : int array;  (** encoded byte length of each chunk *)
  f_counts : int array;  (** access count of each chunk *)
}

val encode_footer : Buffer.t -> footer -> unit
val decode_footer : reader -> footer

val encode_trailer : Buffer.t -> footer_offset:int -> unit

val decode_trailer : string -> int
(** [decode_trailer s] takes the file's last {!trailer_bytes} bytes and
    returns the footer offset.  @raise Corrupt on a bad magic — the
    truncation check. *)
