(* meta layout: bit 0 = kind (0 read / 1 write), bits 1-2 = size code,
   bits 3.. = region id. *)

type t = {
  mutable addrs : int array;
  mutable metas : int array;
  mutable len : int;
}

let create ?(capacity = 4096) () =
  let capacity = max 16 capacity in
  { addrs = Array.make capacity 0; metas = Array.make capacity 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.addrs in
  let ncap = cap * 2 in
  let na = Array.make ncap 0 and nm = Array.make ncap 0 in
  Array.blit t.addrs 0 na 0 t.len;
  Array.blit t.metas 0 nm 0 t.len;
  t.addrs <- na;
  t.metas <- nm

let pack_meta ~size ~kind ~region =
  if region < 0 then invalid_arg "Trace.pack_meta: negative region id";
  let kbit = match kind with Access.Read -> 0 | Access.Write -> 1 in
  (region lsl 3) lor (Access.size_code size lsl 1) lor kbit

let meta_kind meta = if meta land 1 = 0 then Access.Read else Access.Write
let meta_size meta = Access.size_of_code ((meta lsr 1) land 3)
let meta_region meta = meta lsr 3

let add_packed t ~addr ~meta =
  if t.len = Array.length t.addrs then grow t;
  t.addrs.(t.len) <- addr;
  t.metas.(t.len) <- meta;
  t.len <- t.len + 1

let add t ~addr ~size ~kind ~region =
  if region < 0 then invalid_arg "Trace.add: negative region id";
  add_packed t ~addr ~meta:(pack_meta ~size ~kind ~region)

let decode meta =
  let kind = if meta land 1 = 0 then Access.Read else Access.Write in
  let size = Access.size_of_code ((meta lsr 1) land 3) in
  let region = meta lsr 3 in
  (size, kind, region)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  let size, kind, region = decode t.metas.(i) in
  { Access.addr = t.addrs.(i); size; kind; region }

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let iter_packed t ~f =
  for i = 0 to t.len - 1 do
    let meta = t.metas.(i) in
    let kind = if meta land 1 = 0 then Access.Read else Access.Write in
    let size = Access.size_of_code ((meta lsr 1) land 3) in
    f ~addr:t.addrs.(i) ~size ~kind ~region:(meta lsr 3)
  done

let iteri_packed t ~f =
  for i = 0 to t.len - 1 do
    let meta = t.metas.(i) in
    let kind = if meta land 1 = 0 then Access.Read else Access.Write in
    let size = Access.size_of_code ((meta lsr 1) land 3) in
    f i ~addr:t.addrs.(i) ~size ~kind ~region:(meta lsr 3)
  done

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Trace.sub: window out of bounds";
  let nt = create ~capacity:(max 16 len) () in
  Array.blit t.addrs pos nt.addrs 0 len;
  Array.blit t.metas pos nt.metas 0 len;
  nt.len <- len;
  nt

(* FNV-1a over the packed arrays (both words of every access), entirely
   in native-int arithmetic: deterministic across runs and domains,
   sensitive to any single-access change.  The offset basis is the FNV-1a
   64-bit basis truncated to OCaml's 63-bit native int.  The three hash_*
   primitives are exposed so {!Trace_stream} can fold the identical hash
   over a chunked source without materialising it. *)
let hash_basis = 0x3bf29ce484222325

let hash_step h ~addr ~meta =
  let h = (h lxor addr) * 0x100000001b3 in
  (h lxor meta) * 0x100000001b3

let hash_finish h = h land max_int

let content_hash t =
  let h = ref hash_basis in
  for i = 0 to t.len - 1 do
    h := hash_step !h ~addr:t.addrs.(i) ~meta:t.metas.(i)
  done;
  hash_finish !h

let backing t = (t.addrs, t.metas)

let total_bytes t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc := !acc + Access.size_of_code ((t.metas.(i) lsr 1) land 3)
  done;
  !acc
