(** A chunked, seekable stream of packed accesses — the abstraction
    that lets {!Mx_sim.Cycle_sim} replay a trace without requiring it
    in memory.

    Two implementations exist: {!of_trace} wraps an in-memory
    {!Trace.t} (zero-copy — chunks alias the trace's backing arrays),
    and {!Trace_io.open_stream} reads the chunked binary format
    decoding one chunk at a time.  Both expose the same chunk
    geometry, so a consumer written against this interface produces
    byte-identical results on either.

    {b Streaming contract.}  Chunks partition the access stream in
    order: chunk [i] covers global indices [chunk_start i ..
    chunk_start i + chunk_length i - 1].  [get_chunk] may be called in
    any order and any number of times; each call re-fetches (the
    stream does not cache decoded chunks).  A consumer that skips
    chunks skips their I/O and decode cost entirely — the basis of the
    sampling-seek guarantee in {!Mx_sim.Cycle_sim}. *)

type chunk = {
  c_first : int;  (** global index of the chunk's first access *)
  c_len : int;  (** number of accesses in the chunk *)
  c_off : int;  (** offset of the first access within the arrays *)
  c_addrs : int array;
  c_metas : int array;  (** packed {!Trace} metadata words *)
}
(** A decoded chunk.  Valid entries are indices [c_off .. c_off +
    c_len - 1] of [c_addrs]/[c_metas]; for in-memory streams the
    arrays alias the whole trace and must not be mutated. *)

type io_stats = {
  mutable bytes_read : int;  (** file bytes read (header, footer, chunks) *)
  mutable chunks_fetched : int;  (** [get_chunk] calls *)
  mutable chunks_seeked : int;  (** fetches that were not sequential *)
  mutable chunks_skipped : int;  (** chunks jumped over by forward seeks *)
}

type t

val make :
  length:int ->
  chunk_cap:int ->
  counts:int array ->
  fetch:(int -> chunk) ->
  chunk_bytes:(int -> int) ->
  file_backed:bool ->
  close:(unit -> unit) ->
  unit ->
  t
(** Generic constructor used by the implementations; [counts] must sum
    to [length].  [chunk_bytes i] is the encoded size of chunk [i]
    (for I/O accounting; return 0 for in-memory sources). *)

val length : t -> int
val chunk_cap : t -> int
(** Maximum accesses per chunk (every chunk but the last is full). *)

val chunk_count : t -> int
val chunk_start : t -> int -> int
val chunk_length : t -> int -> int

val get_chunk : t -> int -> chunk
(** Fetch (decode) one chunk.  File-backed streams record the read in
    {!io_stats} and, when the global registry is enabled, in the
    [trace.io.{bytes_read,chunks_seeked,chunks_skipped}] counters —
    all schedule-invariant, so they fall under the metrics determinism
    contract.  @raise Invalid_argument out of bounds or after
    {!close}. *)

val iter_chunks : t -> f:(chunk -> unit) -> unit
val iter_packed :
  t -> f:(addr:int -> size:int -> kind:Access.kind -> region:int -> unit) -> unit
(** Sequential whole-stream iteration (fetches every chunk). *)

val to_trace : t -> Trace.t
(** Materialise the stream as an in-memory trace. *)

val content_hash : t -> int
(** Equals {!Trace.content_hash} of the materialised trace, by
    construction (same FNV-1a fold) — what makes a fingerprint
    computed from a stream interchangeable with one computed from a
    {!Trace.t}.  Reads the whole stream. *)

val io_stats : t -> io_stats
(** Snapshot of the stream's I/O counters (zeros for in-memory
    streams except [chunks_fetched]). *)

val account_raw_read : t -> int -> unit
(** Record non-chunk file bytes (header/footer) — used by the
    file-backed constructor. *)

val close : t -> unit
(** Release the underlying file handle; idempotent.  In-memory streams
    ignore it. *)

val of_trace : ?chunk_cap:int -> Trace.t -> t
(** Zero-copy in-memory stream over a trace, chunked at [chunk_cap]
    (default {!Trace_codec.default_chunk_cap}) — the same default
    geometry as the binary format, so in-memory and file-backed replay
    visit identical chunk boundaries.
    @raise Invalid_argument on a non-positive [chunk_cap]. *)
