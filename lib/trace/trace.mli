(** A recorded memory-reference stream.

    Stored as a compact struct-of-arrays (one [int] of address and one
    [int] of packed metadata per access) so that multi-hundred-thousand
    access traces iterate quickly during design-space exploration, where
    the same trace is replayed through thousands of candidate
    architectures. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val add : t -> addr:int -> size:int -> kind:Access.kind -> region:int -> unit
(** Append one access.  @raise Invalid_argument on an unsupported access
    width (see {!Access.size_code}) or a negative region id. *)

(** {2 Packed-meta codec}

    One access is stored as two native ints: the byte address and a
    packed metadata word [region lsl 3 lor size_code lsl 1 lor kind].
    The codec is exposed so the binary trace format ({!Trace_io}) and
    the chunked reader ({!Trace_stream}) can move packed words without
    re-encoding per access. *)

val pack_meta : size:int -> kind:Access.kind -> region:int -> int
(** @raise Invalid_argument as for {!add}. *)

val meta_size : int -> int
val meta_kind : int -> Access.kind
val meta_region : int -> int

val add_packed : t -> addr:int -> meta:int -> unit
(** Append one access given an already-packed metadata word. *)

val backing : t -> int array * int array
(** The underlying (addresses, metas) arrays — only the first
    {!length} entries are meaningful, and callers must not mutate
    them.  Lets {!Trace_stream.of_trace} expose a trace chunk-by-chunk
    without copying. *)

val get : t -> int -> Access.t
(** Random access; @raise Invalid_argument out of bounds. *)

val iter : t -> f:(Access.t -> unit) -> unit
(** Record-building iteration — convenient, allocates one record per
    access; use {!iter_packed} in hot paths. *)

val iter_packed :
  t -> f:(addr:int -> size:int -> kind:Access.kind -> region:int -> unit) -> unit
(** Allocation-free iteration over the whole trace. *)

val iteri_packed :
  t ->
  f:(int -> addr:int -> size:int -> kind:Access.kind -> region:int -> unit) ->
  unit
(** Like {!iter_packed} with the access index, used by the time-sampling
    estimator to window the trace. *)

val sub : t -> pos:int -> len:int -> t
(** Copy of a window of the trace.  @raise Invalid_argument when the
    window falls outside the trace. *)

val content_hash : t -> int
(** Non-negative FNV-1a hash of the packed access stream (address and
    metadata of every access, in order).  O(length); deterministic
    across runs and domains.  Any single-access change — address, size,
    kind, region or position — changes the hash with overwhelming
    probability. *)

val hash_basis : int
(** FNV-1a offset basis of {!content_hash}. *)

val hash_step : int -> addr:int -> meta:int -> int
(** Fold one packed access into a running {!content_hash}.  Folding
    every access of a trace from {!hash_basis} and finishing with
    {!hash_finish} is exactly [content_hash] — the contract that lets a
    streamed source ({!Trace_stream.content_hash}) hash to the same
    value as the materialised trace. *)

val hash_finish : int -> int
(** Clamp a running hash to the non-negative range. *)

val total_bytes : t -> int
(** Sum of access widths — the raw CPU-side traffic. *)
