(** A recorded memory-reference stream.

    Stored as a compact struct-of-arrays (one [int] of address and one
    [int] of packed metadata per access) so that multi-hundred-thousand
    access traces iterate quickly during design-space exploration, where
    the same trace is replayed through thousands of candidate
    architectures. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val add : t -> addr:int -> size:int -> kind:Access.kind -> region:int -> unit
(** Append one access.  @raise Invalid_argument on an unsupported access
    width (see {!Access.size_code}) or a negative region id. *)

val get : t -> int -> Access.t
(** Random access; @raise Invalid_argument out of bounds. *)

val iter : t -> f:(Access.t -> unit) -> unit
(** Record-building iteration — convenient, allocates one record per
    access; use {!iter_packed} in hot paths. *)

val iter_packed :
  t -> f:(addr:int -> size:int -> kind:Access.kind -> region:int -> unit) -> unit
(** Allocation-free iteration over the whole trace. *)

val iteri_packed :
  t ->
  f:(int -> addr:int -> size:int -> kind:Access.kind -> region:int -> unit) ->
  unit
(** Like {!iter_packed} with the access index, used by the time-sampling
    estimator to window the trace. *)

val sub : t -> pos:int -> len:int -> t
(** Copy of a window of the trace.  @raise Invalid_argument when the
    window falls outside the trace. *)

val content_hash : t -> int
(** Non-negative FNV-1a hash of the packed access stream (address and
    metadata of every access, in order).  O(length); deterministic
    across runs and domains.  Any single-access change — address, size,
    kind, region or position — changes the hash with overwhelming
    probability. *)

val total_bytes : t -> int
(** Sum of access widths — the raw CPU-side traffic. *)
