(* Byte-level codec of the memorex binary trace format (v2).

   File layout:

     "MXTB" | u8 version=2
     header:  varint |name| name, varint cpu_ops,
              varint n_regions,
              per region: varint id, varint |rname| rname, varint base,
                          varint size, varint elem_size, u8 hint,
              varint slots, varint accesses, varint chunk_cap
     chunks:  n_chunks encoded chunks, back to back
     footer:  varint n_chunks, per chunk: varint byte_len, varint count
     trailer: u64-LE footer_offset, "MXTE"           (12 bytes, fixed)

   Each chunk holds up to [chunk_cap] accesses and is decodable on its
   own: the per-region delta state resets to the region bases at every
   chunk boundary, which is what lets {!Trace_stream} seek to an
   arbitrary chunk without replaying its predecessors.  One record is

     varint meta2, zigzag-varint delta [, varint run]

   with [meta2 = region lsl 4 lor run_bit lsl 3 lor size_code lsl 1
   lor kind].  [delta] is relative to the previous address *of the same
   region* (initially the region base), so strided streams cost one or
   two bytes per access even when regions interleave.  When [run_bit]
   is set the (meta, delta) pair repeats [run] more times, each repeat
   advancing the address by [delta] again — a run-length escape that
   collapses pure streaming spans to a few bytes per chunk. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "MXTB"
let trailer_magic = "MXTE"
let version = 2
let trailer_bytes = 12
let default_chunk_cap = 1024

(* -- varints ----------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Trace_codec.write_varint: negative";
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (!n land 0x7f lor 0x80));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

(* zig-zag: small magnitudes of either sign become small varints *)
let write_zigzag buf n = write_varint buf ((n lsl 1) lxor (n asr 62))

type reader = {
  next_byte : unit -> int;  (* @raise Corrupt at end of input *)
  consumed : int ref;  (* bytes read so far *)
}

let reader_of_string ?(pos = 0) s =
  let i = ref pos and consumed = ref 0 in
  let next_byte () =
    if !i >= String.length s then corrupt "truncated input at byte %d" !i;
    let b = Char.code (String.unsafe_get s !i) in
    incr i;
    incr consumed;
    b
  in
  { next_byte; consumed }

let reader_of_channel ic =
  let consumed = ref 0 in
  let next_byte () =
    match input_byte ic with
    | b ->
      incr consumed;
      b
    | exception End_of_file -> corrupt "truncated input (unexpected end of file)"
  in
  { next_byte; consumed }

let read_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflows the native int range";
    let b = r.next_byte () in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag r =
  let z = read_varint r in
  (z lsr 1) lxor (- (z land 1))

(* -- header ------------------------------------------------------------ *)

type header = {
  h_name : string;
  h_cpu_ops : int;
  h_regions : Region.t list;  (* sorted by id, ids contiguous from 0 *)
  h_slots : int;  (* delta-state slots: 1 + the largest region id seen *)
  h_accesses : int;
  h_chunk_cap : int;
}

let hint_code = function
  | Region.Stream -> 0
  | Region.Self_indirect -> 1
  | Region.Indexed -> 2
  | Region.Random_access -> 3
  | Region.Mixed -> 4

let hint_of_code = function
  | 0 -> Region.Stream
  | 1 -> Region.Self_indirect
  | 2 -> Region.Indexed
  | 3 -> Region.Random_access
  | 4 -> Region.Mixed
  | c -> corrupt "unknown region pattern code %d" c

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_varint r in
  if n > 0xFFFF then corrupt "implausible string length %d" n;
  String.init n (fun _ -> Char.chr (r.next_byte ()))

let encode_header buf (h : header) =
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  write_string buf h.h_name;
  write_varint buf h.h_cpu_ops;
  write_varint buf (List.length h.h_regions);
  List.iter
    (fun (r : Region.t) ->
      write_varint buf r.Region.id;
      write_string buf r.Region.name;
      write_varint buf r.Region.base;
      write_varint buf r.Region.size;
      write_varint buf r.Region.elem_size;
      Buffer.add_char buf (Char.chr (hint_code r.Region.hint)))
    h.h_regions;
  write_varint buf h.h_slots;
  write_varint buf h.h_accesses;
  write_varint buf h.h_chunk_cap

(* [r] must be positioned right after the 5 magic/version bytes. *)
let decode_header r =
  let h_name = read_string r in
  let h_cpu_ops = read_varint r in
  let n_regions = read_varint r in
  if n_regions > 0xFFFF then corrupt "implausible region count %d" n_regions;
  let h_regions =
    List.init n_regions (fun i ->
        let id = read_varint r in
        if id <> i then corrupt "region ids not contiguous at %d" i;
        let name = read_string r in
        let base = read_varint r in
        let size = read_varint r in
        let elem_size = read_varint r in
        let hint = hint_of_code (r.next_byte ()) in
        { Region.id; name; base; size; elem_size; hint })
  in
  let h_slots = read_varint r in
  if h_slots < n_regions then corrupt "delta slots %d < region count" h_slots;
  let h_accesses = read_varint r in
  let h_chunk_cap = read_varint r in
  if h_chunk_cap <= 0 then corrupt "non-positive chunk capacity";
  { h_name; h_cpu_ops; h_regions; h_slots; h_accesses; h_chunk_cap }

let check_magic r =
  String.iter
    (fun c -> if r.next_byte () <> Char.code c then corrupt "bad magic (not a binary trace)")
    magic;
  let v = r.next_byte () in
  if v <> version then corrupt "unsupported binary trace version %d" v

(* The per-region initial delta state: the region's base address, so
   the first access of a region in every chunk encodes as a small
   offset into the region. *)
let bases_of_header (h : header) =
  let bases = Array.make (max 1 h.h_slots) 0 in
  List.iter
    (fun (r : Region.t) ->
      if r.Region.id < Array.length bases then
        bases.(r.Region.id) <- r.Region.base)
    h.h_regions;
  bases

(* -- chunks ------------------------------------------------------------ *)

let encode_chunk buf ~bases ~addrs ~metas ~pos ~len =
  let last = Array.copy bases in
  let stop = pos + len in
  let i = ref pos in
  while !i < stop do
    let addr = addrs.(!i) and meta = metas.(!i) in
    let r = meta lsr 3 in
    if r >= Array.length last then
      invalid_arg "Trace_codec.encode_chunk: region id out of range";
    let delta = addr - last.(r) in
    (* run-length lookahead: same meta, constant stride [delta] *)
    let j = ref (!i + 1) and prev = ref addr in
    while !j < stop && metas.(!j) = meta && addrs.(!j) - !prev = delta do
      prev := addrs.(!j);
      incr j
    done;
    let run = !j - !i - 1 in
    let meta2 =
      (r lsl 4) lor ((if run > 0 then 1 else 0) lsl 3) lor (meta land 7)
    in
    write_varint buf meta2;
    write_zigzag buf delta;
    if run > 0 then write_varint buf run;
    last.(r) <- !prev;
    i := !j
  done

(* Decode [count] accesses into [into_addrs]/[into_metas] starting at 0.
   @raise Corrupt on malformed or truncated records. *)
let decode_chunk r ~bases ~count ~into_addrs ~into_metas =
  let last = Array.copy bases in
  let k = ref 0 in
  while !k < count do
    let meta2 = read_varint r in
    let reg = meta2 lsr 4 in
    if reg >= Array.length last then
      corrupt "region id %d out of range in chunk record" reg;
    let meta = (reg lsl 3) lor (meta2 land 7) in
    let delta = read_zigzag r in
    let addr = ref (last.(reg) + delta) in
    into_addrs.(!k) <- !addr;
    into_metas.(!k) <- meta;
    incr k;
    if (meta2 lsr 3) land 1 = 1 then begin
      let run = read_varint r in
      if !k + run > count then
        corrupt "run of %d overflows the chunk's %d accesses" run count;
      for _ = 1 to run do
        addr := !addr + delta;
        into_addrs.(!k) <- !addr;
        into_metas.(!k) <- meta;
        incr k
      done
    end;
    last.(reg) <- !addr
  done

(* -- footer and trailer ------------------------------------------------- *)

type footer = {
  f_lens : int array;  (* encoded byte length of each chunk *)
  f_counts : int array;  (* access count of each chunk *)
}

let encode_footer buf (f : footer) =
  let n = Array.length f.f_lens in
  write_varint buf n;
  for i = 0 to n - 1 do
    write_varint buf f.f_lens.(i);
    write_varint buf f.f_counts.(i)
  done

let decode_footer r =
  let n = read_varint r in
  if n > 0x7FFFFFF then corrupt "implausible chunk count %d" n;
  let f_lens = Array.make n 0 and f_counts = Array.make n 0 in
  for i = 0 to n - 1 do
    f_lens.(i) <- read_varint r;
    f_counts.(i) <- read_varint r
  done;
  { f_lens; f_counts }

let encode_trailer buf ~footer_offset =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((footer_offset lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string buf trailer_magic

(* [trailer] is the last [trailer_bytes] of the file. *)
let decode_trailer trailer =
  if String.length trailer <> trailer_bytes then
    corrupt "truncated trailer (%d bytes)" (String.length trailer);
  if String.sub trailer 8 4 <> trailer_magic then
    corrupt "bad trailer magic (truncated or corrupt binary trace)";
  let off = ref 0 in
  for i = 7 downto 0 do
    off := (!off lsl 8) lor Char.code trailer.[i]
  done;
  if !off < 0 then corrupt "negative footer offset";
  !off
