(** Workload (trace + region table) persistence.

    Two on-disk formats share one loader:

    {b Text (v1)} — a simple line-oriented format so users can bring
    traces from external tools (or ship a captured trace with a bug
    report):

    {v
    # memorex-trace v1
    workload <name>
    cpu_ops <count>
    region <id> <name> <base-hex> <size> <elem_size> <pattern>
    ...
    trace <count>
    R <addr-hex> <size> <region-id>
    W <addr-hex> <size> <region-id>
    ...
    v}

    {b Binary (v2, "MXTB")} — the compact chunked format of
    {!Trace_codec} (delta/run-length encoded, with a footer index),
    ~10–30× smaller than text and readable chunk-at-a-time through
    {!open_stream} without materialising the trace.  [load] and
    [of_string] detect the format from the first bytes. *)

exception Parse_error of { line : int; message : string }
(** [line] is 1-based for text input (stable across CRLF line endings
    and trailing blank lines) and 0 for binary input, where the message
    describes the corruption instead. *)

type format = Text | Binary

val save : ?format:format -> ?chunk_cap:int -> Workload.t -> path:string -> unit
(** Write a workload to [path] (overwrites).  [format] defaults to
    [Text]; [chunk_cap] (binary only) defaults to
    {!Trace_codec.default_chunk_cap}. *)

val load : path:string -> Workload.t
(** Load either format, detected by content.  @raise Parse_error on
    malformed input — including truncated binary files, which fail with
    a trailer/layout message rather than an escaping [End_of_file];
    @raise Sys_error on I/O failures. *)

val open_stream : path:string -> Workload.streamed
(** Open a trace file as a streamed workload.  Binary files are read
    chunk-at-a-time — only the header and footer index are parsed up
    front, and {!Trace_stream.get_chunk} seeks directly to any chunk —
    so a multi-gigabyte trace simulates in constant memory.  Text files
    have no chunk index; they are loaded whole and wrapped via
    {!Trace_stream.of_trace}, preserving the uniform interface.

    The returned stream owns the file handle; {!Trace_stream.close} it
    when done.  @raise Parse_error on malformed input (chunk corruption
    is reported lazily, by the fetch that hits it). *)

val to_string : Workload.t -> string
(** Text serialisation (used by [save ~format:Text] and the tests). *)

val of_string : string -> Workload.t
(** Parse either format, detected by content.
    @raise Parse_error as for [load]. *)

val to_binary_string : ?chunk_cap:int -> Workload.t -> string
(** Binary serialisation.  @raise Invalid_argument on a non-positive
    [chunk_cap]. *)

val of_binary_string : string -> Workload.t
(** @raise Parse_error as for [load]. *)
