module Prng = Mx_util.Prng
module Stats = Mx_util.Stats
module Pareto = Mx_util.Pareto
module Ev = Mx_util.Event_log
module Channel = Mx_connect.Channel
module Cluster = Mx_connect.Cluster
module Component = Mx_connect.Component
module Assign = Mx_connect.Assign
module Conn_arch = Mx_connect.Conn_arch
module Brg = Mx_connect.Brg
module Params = Mx_mem.Params
module Cache = Mx_mem.Cache
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Workload = Mx_trace.Workload
module Trace = Mx_trace.Trace
module Sim_result = Mx_sim.Sim_result
module Serving = Mx_sim.Serving
module Eval = Mx_sim.Eval
module Explore = Conex.Explore
module Design = Conex.Design
module R = Runner

(* -- shared helpers ----------------------------------------------------- *)

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs b)

(* First divergence between two simulation results, or [None] when they
   agree (integers exactly, floats within a relative tolerance). *)
let result_mismatch ?tol (a : Sim_result.t) (b : Sim_result.t) =
  let ints =
    [
      ("accesses", a.accesses, b.accesses);
      ("cycles", a.cycles, b.cycles);
      ("total_mem_latency", a.total_mem_latency, b.total_mem_latency);
      ("bus_wait_cycles", a.bus_wait_cycles, b.bus_wait_cycles);
      ("dram_bytes", a.dram_bytes, b.dram_bytes);
    ]
  and floats =
    [
      ("avg_mem_latency", a.avg_mem_latency, b.avg_mem_latency);
      ("avg_energy_nj", a.avg_energy_nj, b.avg_energy_nj);
      ("miss_ratio", a.miss_ratio, b.miss_ratio);
    ]
  in
  match List.find_opt (fun (_, x, y) -> x <> y) ints with
  | Some (f, x, y) -> Some (Printf.sprintf "%s: %d vs %d" f x y)
  | None -> (
    match List.find_opt (fun (_, x, y) -> not (feq ?tol x y)) floats with
    | Some (f, x, y) -> Some (Printf.sprintf "%s: %.12g vs %.12g" f x y)
    | None ->
      if a.exact <> b.exact then
        Some (Printf.sprintf "exact: %b vs %b" a.exact b.exact)
      else None)

let sorted l = List.sort compare l

(* -- pareto -------------------------------------------------------------- *)

let axes_of_dim dim = List.init dim (fun i (p : float array) -> p.(i))

let front_vs_oracle name points =
  R.prop name (fun ~seed ~size ->
      let g = Prng.create ~seed in
      let dim = 2 + Prng.int g ~bound:2 in
      let axes = axes_of_dim dim in
      let pts = points g ~size ~dim in
      let got = Pareto.front ~axes pts
      and want = Oracle.pareto_front ~axes pts in
      R.check (got = want) "front differs from quadratic oracle on %d points"
        (List.length pts))

let pareto_suite =
  [
    front_vs_oracle "front matches quadratic oracle (tied grid points)"
      Gen.grid_points;
    front_vs_oracle "front matches quadratic oracle (continuous points)"
      Gen.continuous_points;
    R.prop "front is idempotent" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let axes = axes_of_dim 3 in
        let front = Pareto.front ~axes (Gen.grid_points g ~size ~dim:3) in
        R.check
          (Pareto.front ~axes front = front)
          "front (front pts) <> front pts");
    R.prop "front is permutation-invariant as a set" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let axes = axes_of_dim 3 in
        let pts = Gen.grid_points g ~size ~dim:3 in
        let arr = Array.of_list pts in
        Prng.shuffle g arr;
        R.check
          (sorted (Pareto.front ~axes pts)
          = sorted (Pareto.front ~axes (Array.to_list arr)))
          "shuffling the input changed the front");
    R.prop "front2 agrees with the generic front" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let x (p : float array) = p.(0) and y (p : float array) = p.(1) in
        let pts = Gen.continuous_points g ~size ~dim:2 in
        R.check
          (sorted (Pareto.front2 ~x ~y pts)
          = sorted (Pareto.front ~axes:[ x; y ] pts))
          "two-objective sweep disagrees with the quadratic filter");
  ]

(* -- cluster ------------------------------------------------------------- *)

let canon_levels levels = List.map (List.map Oracle.cluster_canon) levels

let level_invariants ~what chans levels =
  let n = List.length chans in
  let total_bw =
    List.fold_left (fun acc (c : Channel.t) -> acc +. c.Channel.bandwidth) 0.0
      chans
  in
  let finest_ok =
    match levels with
    | [] -> R.failf "%s: no levels" what
    | finest :: _ ->
      R.check
        (List.length finest = n)
        "%s: finest level has %d clusters for %d channels" what
        (List.length finest) n
  in
  let rec steps = function
    | a :: (b :: _ as rest) ->
      if List.length b <> List.length a - 1 then
        R.failf "%s: a merge step went from %d to %d clusters" what
          (List.length a) (List.length b)
      else steps rest
    | _ -> R.Pass
  in
  let per_level level =
    let bw =
      List.fold_left (fun acc (c : Cluster.t) -> acc +. c.Cluster.bandwidth)
        0.0 level
    and nch =
      List.fold_left
        (fun acc (c : Cluster.t) -> acc + List.length c.Cluster.channels)
        0 level
    in
    R.all_of
      [
        R.check (bw = total_bw) "%s: bandwidth not conserved (%g vs %g)" what
          bw total_bw;
        R.check (nch = n) "%s: channels not conserved (%d vs %d)" what nch n;
        R.check
          (List.for_all
             (fun (cl : Cluster.t) ->
               cl.Cluster.bandwidth
               = List.fold_left
                   (fun acc (ch : Channel.t) -> acc +. ch.Channel.bandwidth)
                   0.0 cl.Cluster.channels
               && List.for_all
                    (fun ch -> Channel.crosses_chip ch = cl.Cluster.offchip)
                    cl.Cluster.channels)
             level)
          "%s: a cluster mislabels its bandwidth or boundary class" what;
      ]
  in
  R.all_of (finest_ok :: steps levels :: List.map per_level levels)

let cluster_suite =
  [
    R.prop "levels match the naive bottom-up oracle" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let chans = Gen.channels g ~size in
        R.check
          (canon_levels (Cluster.levels chans)
          = canon_levels (Oracle.cluster_levels chans))
          "clustering hierarchy diverges from the oracle on %d channels"
          (List.length chans));
    R.prop "levels satisfy the conservation laws" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let chans = Gen.channels g ~size in
        let levels = Cluster.levels chans in
        R.all_of
          [
            level_invariants ~what:"levels" chans levels;
            R.check
              (Cluster.merge_step (List.nth levels (List.length levels - 1))
              = None)
              "the coarsest level still has a legal merge";
          ]);
    R.prop "ordered variants satisfy the conservation laws"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let chans = Gen.channels g ~size in
        R.all_of
          (List.map
             (fun (what, order) ->
               level_invariants ~what chans (Cluster.levels_ordered order chans))
             [
               ("highest-first", Cluster.Highest_bandwidth_first);
               ("random-order", Cluster.Random_order seed);
             ]));
    R.prop "merge is additive and rejects class mixing" (fun ~seed ~size:_ ->
        let g = Prng.create ~seed in
        let a = Cluster.of_channel (Gen.channel g)
        and b = Cluster.of_channel (Gen.channel g) in
        if a.Cluster.offchip = b.Cluster.offchip then begin
          let m = Cluster.merge a b in
          R.check
            (m.Cluster.bandwidth = a.Cluster.bandwidth +. b.Cluster.bandwidth
            && List.length m.Cluster.channels
               = List.length a.Cluster.channels
                 + List.length b.Cluster.channels)
            "merge is not additive in bandwidth and channels"
        end
        else
          R.check
            (try
               ignore (Cluster.merge a b);
               false
             with Invalid_argument _ -> true)
            "merging on-chip with off-chip was not rejected");
  ]

(* -- assign -------------------------------------------------------------- *)

let small_onchip =
  lazy
    [
      Component.by_name "ded32"; Component.by_name "mux32";
      Component.by_name "ahb32";
    ]

let small_offchip =
  lazy [ Component.by_name "off32"; Component.by_name "off16" ]

let assign_suite =
  [
    R.prop "enumerate matches the cartesian oracle" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let onchip = Lazy.force small_onchip
        and offchip = Lazy.force small_offchip in
        let cls = Gen.clusters g ~size in
        let describe l = sorted (List.map Conn_arch.describe l) in
        let got = Assign.enumerate ~onchip ~offchip cls
        and want = Oracle.assign_enumerate ~onchip ~offchip cls in
        R.all_of
          [
            R.check
              (List.length got = List.length want)
              "enumerated %d designs, oracle enumerates %d" (List.length got)
              (List.length want);
            R.check (describe got = describe want)
              "enumerated design set differs from the oracle";
          ]);
    R.prop "choices match the direct feasibility filter" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let onchip = Lazy.force small_onchip
        and offchip = Lazy.force small_offchip in
        let cls = Gen.clusters g ~size in
        R.all_of
          (List.map
             (fun cl ->
               R.check
                 (Assign.choices ~onchip ~offchip cl
                 = Oracle.assign_feasible ~onchip ~offchip cl)
                 "choices differ from the oracle filter for %s"
                 (Cluster.describe cl))
             cls));
    R.prop "an infeasible cluster empties the level" (fun ~seed:_ ~size:_ ->
        let ch src dst =
          { Channel.src; dst; bandwidth = 1.0; txn_bytes = 4.0 }
        in
        let wide =
          Cluster.merge
            (Cluster.of_channel (ch Channel.Cpu Channel.Cache))
            (Cluster.of_channel (ch Channel.Cpu Channel.Sram))
        in
        (* ded32 carries a single channel; the merged cluster has two *)
        R.check
          (Assign.enumerate
             ~onchip:[ Component.by_name "ded32" ]
             ~offchip:(Lazy.force small_offchip)
             [ wide ]
          = [])
          "a level with an unassignable cluster was not rejected");
    R.prop "enumerate_levels returns no duplicate designs" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let conns =
          Assign.enumerate_levels ~max_designs_per_level:64
            ~onchip:(Lazy.force small_onchip)
            ~offchip:(Lazy.force small_offchip)
            (Gen.channels g ~size)
        in
        let keys = List.map Conn_arch.describe conns in
        R.check
          (List.length keys = List.length (List.sort_uniq compare keys))
          "duplicate designs survived cross-level deduplication");
  ]

(* -- trace --------------------------------------------------------------- *)

let trace_suite =
  [
    R.prop ~cost:2 "Trace_io round-trip preserves the workload"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let w2 = Mx_trace.Trace_io.of_string (Mx_trace.Trace_io.to_string w) in
        R.all_of
          [
            R.check
              (Workload.fingerprint w2 = Workload.fingerprint w)
              "round-tripped workload fingerprints differently";
            R.check
              (w2.Workload.name = w.Workload.name
              && w2.Workload.cpu_ops = w.Workload.cpu_ops
              && w2.Workload.regions = w.Workload.regions)
              "round-trip changed the name, cpu_ops or region table";
            R.check
              (Trace.length w2.Workload.trace = Trace.length w.Workload.trace
              && Trace.content_hash w2.Workload.trace
                 = Trace.content_hash w.Workload.trace)
              "round-trip changed the trace content";
          ]);
    R.prop ~cost:2 "Trace_io serialisation is a fixpoint" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let s = Mx_trace.Trace_io.to_string w in
        R.check
          (Mx_trace.Trace_io.to_string (Mx_trace.Trace_io.of_string s) = s)
          "to_string (of_string s) <> s");
    R.prop ~cost:2 "binary round-trip preserves the workload" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let chunk_cap = 1 + Prng.int g ~bound:256 in
        let s = Mx_trace.Trace_io.to_binary_string ~chunk_cap w in
        let w2 = Mx_trace.Trace_io.of_binary_string s in
        R.all_of
          [
            R.check
              (Workload.fingerprint w2 = Workload.fingerprint w)
              "binary round-trip changed the workload fingerprint";
            R.check
              (w2.Workload.name = w.Workload.name
              && w2.Workload.cpu_ops = w.Workload.cpu_ops
              && w2.Workload.regions = w.Workload.regions)
              "binary round-trip changed the name, cpu_ops or region table";
            R.check
              (Mx_trace.Trace_io.to_binary_string ~chunk_cap w2 = s)
              "binary serialisation is not a fixpoint at chunk_cap %d"
              chunk_cap;
          ]);
    R.prop ~cost:3
      "fingerprint agrees across in-memory, text and binary paths"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let fp = Workload.fingerprint w in
        let text = Mx_trace.Trace_io.to_string w in
        let bin =
          Mx_trace.Trace_io.to_binary_string
            ~chunk_cap:(1 + Prng.int g ~bound:128)
            w
        in
        let path = Filename.temp_file "conex_check_fp" ".mxtb" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let oc = open_out_bin path in
            output_string oc bin;
            close_out oc;
            let sw = Mx_trace.Trace_io.open_stream ~path in
            let sfp = Workload.streamed_fingerprint sw in
            Mx_trace.Trace_stream.close sw.Workload.s_stream;
            let mem_stream =
              Workload.streamed ~name:w.Workload.name
                ~regions:w.Workload.regions ~cpu_ops:w.Workload.cpu_ops
                (Mx_trace.Trace_stream.of_trace w.Workload.trace)
            in
            R.all_of
              [
                R.check
                  (Workload.fingerprint (Mx_trace.Trace_io.of_string text)
                  = fp)
                  "text-loaded fingerprint differs";
                R.check
                  (Workload.fingerprint
                     (Mx_trace.Trace_io.of_binary_string bin)
                  = fp)
                  "binary-loaded fingerprint differs";
                R.check (sfp = fp) "file-streamed fingerprint differs";
                R.check
                  (Workload.streamed_fingerprint mem_stream = fp)
                  "in-memory streamed fingerprint differs";
              ]));
    R.prop ~cost:5
      "streamed replay is byte-identical to the in-memory simulator"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        let conn = Gen.conn g p.Gen.p_brg in
        let path = Filename.temp_file "conex_check_stream" ".mxtb" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            Mx_trace.Trace_io.save ~format:Mx_trace.Trace_io.Binary
              ~chunk_cap:(1 + Prng.int g ~bound:64)
              w ~path;
            R.all_of
              (List.map
                 (fun (label, sample, cpu) ->
                   let mat =
                     Mx_sim.Cycle_sim.run ?sample ~cpu ~workload:w ~arch ~conn
                       ()
                   in
                   let sw = Mx_trace.Trace_io.open_stream ~path in
                   let str =
                     Mx_sim.Cycle_sim.run_stream ?sample ~cpu ~workload:sw
                       ~arch ~conn ()
                   in
                   Mx_trace.Trace_stream.close sw.Workload.s_stream;
                   match result_mismatch ~tol:0.0 mat str with
                   | None -> R.Pass
                   | Some diff ->
                     R.failf "streamed replay diverges under %s (%s)" label
                       diff)
                 [
                   ("Blocking", None, Mx_sim.Cycle_sim.Blocking);
                   ("Overlap", None, Mx_sim.Cycle_sim.Overlap 4);
                   ("Blocking+sample", Some (7, 23), Mx_sim.Cycle_sim.Blocking);
                   ("Overlap+sample", Some (7, 23), Mx_sim.Cycle_sim.Overlap 4);
                 ])));
    R.prop ~cost:2 "truncated binary input is rejected with Parse_error"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let s = Mx_trace.Trace_io.to_binary_string w in
        let n = String.length s in
        let cut = 1 + Prng.int g ~bound:(n - 1) in
        match Mx_trace.Trace_io.of_binary_string (String.sub s 0 cut) with
        | _ -> R.failf "truncation to %d of %d bytes parsed successfully" cut n
        | exception Mx_trace.Trace_io.Parse_error _ -> R.Pass
        | exception e ->
          R.failf "truncation to %d of %d bytes leaked %s" cut n
            (Printexc.to_string e));
  ]

(* -- stats --------------------------------------------------------------- *)

let stats_suite =
  [
    R.prop "percentile matches the sort-and-index oracle" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let xs = Gen.floats g ~size:(1 + Prng.int g ~bound:(5 * size)) in
        let p = float_of_int (Prng.int g ~bound:101) in
        R.check
          (Stats.percentile xs ~p = Oracle.percentile xs ~p)
          "percentile %.0f differs from the oracle on %d samples" p
          (List.length xs));
    R.prop "percentile is total on degenerate inputs" (fun ~seed ~size:_ ->
        let g = Prng.create ~seed in
        let x = Prng.float g *. 100.0 in
        R.all_of
          [
            R.check (Stats.percentile [] ~p:50.0 = None)
              "empty input did not yield None";
            R.all_of
              (List.map
                 (fun p ->
                   R.check
                     (Stats.percentile [ x ] ~p = Some x)
                     "singleton is not its own %.0fth percentile" p)
                 [ 0.0; 50.0; 100.0 ]);
          ]);
    R.prop "stddev matches the two-pass oracle" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let xs = Gen.floats g ~size:(Prng.int g ~bound:(5 * size)) in
        let got = Stats.stddev xs and want = Oracle.stddev xs in
        R.check
          (feq ~tol:1e-6 got want)
          "stddev %.9g differs from oracle %.9g on %d samples" got want
          (List.length xs));
    R.prop "spearman matches the closed form on distinct values"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let n = size + 2 in
        let permuted () =
          let arr = Array.init n float_of_int in
          Prng.shuffle g arr;
          Array.to_list arr
        in
        let xs = permuted () and ys = permuted () in
        match Stats.spearman xs ys with
        | None -> R.failf "spearman undefined on %d distinct pairs" n
        | Some rho ->
          let want = Oracle.spearman_distinct xs ys in
          R.check
            (feq ~tol:1e-9 rho want)
            "spearman %.12g differs from closed form %.12g" rho want);
    R.prop "spearman is invariant under monotone transforms"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let n = size + 2 in
        let xs = Gen.floats g ~size:n and ys = Gen.floats g ~size:n in
        let xs' = List.map (fun x -> (2.0 *. x) +. 1.0) xs in
        match (Stats.spearman xs ys, Stats.spearman xs' ys) with
        | Some a, Some b ->
          R.check (feq ~tol:1e-12 a b)
            "rank correlation changed under x -> 2x + 1 (%.12g vs %.12g)" a b
        | a, b ->
          R.check ((a = None) = (b = None))
            "definedness changed under a monotone transform");
  ]

(* -- fingerprint --------------------------------------------------------- *)

let fingerprint_suite =
  [
    R.prop "memory fingerprint ignores the label" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let g2 = Prng.copy g in
        let a = Gen.mem_arch_spec g w ~label:"alpha"
        and b = Gen.mem_arch_spec g2 w ~label:"beta" in
        R.check
          (Mem_arch.fingerprint a = Mem_arch.fingerprint b)
          "relabeling the same structure changed the fingerprint");
    R.prop "memory fingerprint is sensitive to structure" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let bindings =
          Array.make (List.length w.Workload.regions) Mem_arch.To_cache
        in
        let cache = Gen.cache g in
        let base = Mem_arch.make ~label:"base" ~cache ~bindings () in
        let bigger =
          Mem_arch.make ~label:"base"
            ~cache:{ cache with Params.c_size = cache.Params.c_size * 2 }
            ~bindings ()
        and with_sbuf =
          Mem_arch.make ~label:"base" ~cache
            ~sbuf:(List.hd Mx_mem.Module_lib.stream_buffers)
            ~bindings ()
        in
        R.all_of
          [
            R.check
              (Mem_arch.fingerprint base <> Mem_arch.fingerprint bigger)
              "doubling the cache did not change the fingerprint";
            R.check
              (Mem_arch.fingerprint base <> Mem_arch.fingerprint with_sbuf)
              "adding a stream buffer did not change the fingerprint";
          ]);
    R.prop ~cost:2 "connectivity fingerprint ignores assembly order"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let pairs =
          List.map
            (fun (b : Conn_arch.binding) ->
              (b.Conn_arch.cluster, b.Conn_arch.component))
            conn.Conn_arch.bindings
        in
        let reversed = Conn_arch.make (List.rev pairs) in
        R.check
          (Conn_arch.fingerprint reversed = Conn_arch.fingerprint conn)
          "reversing the binding order changed the fingerprint");
    R.prop ~cost:2 "workload fingerprint is content-addressed"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let again = Gen.workload (Prng.create ~seed) ~size in
        let renamed = { w with Workload.name = w.Workload.name ^ "x" } in
        R.all_of
          [
            R.check
              (Workload.fingerprint again = Workload.fingerprint w)
              "regenerating from the same seed changed the fingerprint";
            R.check
              (Workload.fingerprint renamed <> Workload.fingerprint w)
              "renaming the workload did not change the fingerprint";
          ]);
  ]

(* -- sim ----------------------------------------------------------------- *)

let sim_suite =
  [
    R.prop ~cost:4 "cycle simulator matches the straight-line replay oracle"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        let conn = Gen.conn g p.Gen.p_brg in
        let sim = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn ()
        and orc = Oracle.replay ~workload:w ~arch ~conn () in
        (match result_mismatch sim orc with
        | None -> R.Pass
        | Some diff ->
          R.failf "simulator diverges from the replay oracle: %s" diff));
    R.prop ~cost:4 "cycle simulator is deterministic" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let run () =
          Mx_sim.Cycle_sim.run ~workload:p.Gen.p_workload ~arch:p.Gen.p_arch
            ~conn ()
        in
        R.check (run () = run ()) "two identical runs disagree");
    R.prop ~cost:4 "sampled simulation is a fidelity-bounded estimate"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        let conn = Gen.conn g p.Gen.p_brg in
        let exact = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn ()
        and sampled =
          Mx_sim.Cycle_sim.run ~sample:(50, 450) ~workload:w ~arch ~conn ()
        in
        R.all_of
          [
            R.check (exact.Sim_result.exact && not sampled.Sim_result.exact)
              "exactness flags are wrong";
            R.check
              (sampled.Sim_result.accesses = exact.Sim_result.accesses)
              "sampling changed the functional access count";
            R.check
              (sampled.Sim_result.miss_ratio = exact.Sim_result.miss_ratio
              && sampled.Sim_result.dram_bytes = exact.Sim_result.dram_bytes)
              "sampling changed functional outcomes (misses / traffic)";
            (let e = exact.Sim_result.avg_mem_latency
             and s = sampled.Sim_result.avg_mem_latency in
             R.check
               (s >= e /. 10.0 && s <= (e *. 10.0) +. 1.0)
               "sampled latency %.3f is out of band around exact %.3f" s e);
          ]);
  ]

(* -- eval ---------------------------------------------------------------- *)

let with_default_cache f =
  Fun.protect
    ~finally:(fun () -> Eval.set_cache_capacity Eval.default_cache_capacity)
    f

let eval_fidelities = [ Eval.Estimate; Eval.Sampled (100, 900); Eval.Exact ]

let fid_name = Eval.fidelity_tag

let eval_suite =
  [
    R.prop ~cost:5 "eval matches direct recomputation at every fidelity"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let w = p.Gen.p_workload
        and arch = p.Gen.p_arch
        and profile = p.Gen.p_profile in
        R.all_of
          (List.map
             (fun fidelity ->
               Eval.clear_cache ();
               let via_cache =
                 Eval.eval ~fidelity ~workload:w ~arch ~profile ~conn ()
               and direct =
                 Oracle.eval_direct ~fidelity ~workload:w ~arch ~profile ~conn
                   ()
               in
               R.check (via_cache = direct)
                 "cached eval differs from direct recomputation at %s"
                 (fid_name fidelity))
             eval_fidelities));
    R.prop ~cost:5 "disabling the cache does not change results"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        with_default_cache (fun () ->
            Eval.set_cache_capacity 0;
            let off =
              Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
            in
            Eval.set_cache_capacity Eval.default_cache_capacity;
            let on1 =
              Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
            and on2 =
              Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
            in
            R.check (off = on1 && on1 = on2)
              "cache-on and cache-off evaluations disagree"));
    R.prop ~cost:5 "an Exact result is promoted to serve Sampled requests"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        Eval.clear_cache ();
        let exact = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
        let r, prov =
          Eval.eval_prov ~fidelity:(Eval.Sampled (100, 900)) ~workload:w ~arch
            ~conn ()
        in
        R.all_of
          [
            R.check (prov = Eval.Promoted)
              "Sampled after Exact was %s, not promoted"
              (Eval.provenance_tag prov);
            R.check (r = exact) "the promoted result differs from the Exact one";
          ]);
    R.prop ~cost:5 "a repeated evaluation is a cache hit with equal result"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        Eval.clear_cache ();
        let r1, p1 =
          Eval.eval_prov ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
        in
        let r2, p2 =
          Eval.eval_prov ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
        in
        R.all_of
          [
            R.check (p1 = Eval.Computed) "first evaluation was not computed";
            R.check (p2 = Eval.Cache_hit) "second evaluation missed the cache";
            R.check (r1 = r2) "hit returned a different result";
          ]);
  ]

(* -- pipeline ------------------------------------------------------------ *)

let pipeline_suite =
  [
    R.prop ~cost:3 "per-serving profile partitions the trace"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let s = p.Gen.p_profile in
        let total =
          List.fold_left
            (fun acc sv -> acc + s.Mem_sim.cpu_accesses sv)
            0 Serving.all
        in
        R.all_of
          [
            R.check
              (total = s.Mem_sim.accesses)
              "serving classes sum to %d but the trace has %d accesses" total
              s.Mem_sim.accesses;
            R.check
              (s.Mem_sim.demand_misses <= s.Mem_sim.accesses)
              "more demand misses (%d) than accesses (%d)"
              s.Mem_sim.demand_misses s.Mem_sim.accesses;
          ]);
    R.prop ~cost:3 "cycle simulation is finite and positive"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let r =
          Mx_sim.Cycle_sim.run ~workload:p.Gen.p_workload ~arch:p.Gen.p_arch
            ~conn ()
        in
        R.check
          (Float.is_finite r.Sim_result.avg_mem_latency
          && r.Sim_result.avg_mem_latency > 0.0
          && Float.is_finite r.Sim_result.avg_energy_nj
          && r.Sim_result.avg_energy_nj >= 0.0
          && r.Sim_result.cycles >= r.Sim_result.accesses)
          "cycle simulation produced non-finite or non-positive metrics");
    R.prop ~cost:3 "estimator is finite on any pipeline" (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let e =
          Mx_sim.Estimator.estimate ~workload:p.Gen.p_workload
            ~arch:p.Gen.p_arch ~profile:p.Gen.p_profile ~conn
        in
        R.check
          (Float.is_finite e.Sim_result.avg_mem_latency
          && e.Sim_result.avg_mem_latency > 0.0
          && Float.is_finite e.Sim_result.avg_energy_nj)
          "estimator produced non-finite or non-positive metrics");
    R.prop ~cost:3 "every enumerated assignment is internally feasible"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conns =
          Assign.enumerate_levels ~max_designs_per_level:64
            ~onchip:Component.onchip_library
            ~offchip:Component.offchip_library
            p.Gen.p_brg.Brg.channels
        in
        R.all_of
          [
            R.check (conns <> []) "full library enumerated no designs";
            R.check
              (List.for_all
                 (fun (c : Conn_arch.t) ->
                   List.for_all
                     (fun (b : Conn_arch.binding) ->
                       Conn_arch.feasible b.Conn_arch.cluster
                         b.Conn_arch.component)
                     c.Conn_arch.bindings)
                 conns)
              "an enumerated design carries an infeasible binding";
          ]);
  ]

(* -- explore ------------------------------------------------------------- *)

let small_config ~jobs =
  {
    Explore.reduced_config with
    apex = { Mx_apex.Explore.reduced_config with max_selected = 2 };
    max_designs_per_level = 64;
    phase1_keep = 6;
    refine_top = 0;
    jobs;
  }

let design_keys (ds : Design.t list) =
  List.map
    (fun d -> (Design.structural_key d, Design.cost d, Design.latency d,
               Design.energy d))
    ds

let run_summary (r : Explore.result) =
  ( r.Explore.n_estimates,
    r.Explore.n_simulations,
    design_keys r.Explore.simulated,
    design_keys r.Explore.pareto_cost_perf )

let kernel_rank_floor (name, generate, floor) =
  R.prop ~cost:1_000_000 ~max_size:1
    (Printf.sprintf "estimate ranks track exact simulation (%s)" name)
    (fun ~seed:_ ~size:_ ->
      let w = generate ~scale:4000 ~seed:7 in
      let cache =
        { Params.c_size = 1024; c_line = 16; c_assoc = 2; c_latency = 1;
          c_policy = Params.default_policy }
      in
      let bindings =
        Array.make (List.length w.Workload.regions) Mem_arch.To_cache
      in
      let arch = Mem_arch.make ~label:(name ^ "-cache") ~cache ~bindings () in
      let msim = Mem_sim.create arch ~regions:w.Workload.regions in
      let profile = Mem_sim.run msim w.Workload.trace in
      let brg = Brg.build arch profile in
      let conns =
        Assign.enumerate_levels ~max_designs_per_level:16
          ~onchip:
            [
              Component.by_name "ded32"; Component.by_name "mux32";
              Component.by_name "apb32"; Component.by_name "ahb32";
            ]
          ~offchip:(Lazy.force small_offchip) brg.Brg.channels
      in
      let ests =
        List.map
          (fun conn ->
            (Mx_sim.Estimator.estimate ~workload:w ~arch ~profile ~conn)
              .Sim_result.avg_mem_latency)
          conns
      and exacts =
        List.map
          (fun conn ->
            (Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn ())
              .Sim_result.avg_mem_latency)
          conns
      in
      match Stats.spearman ests exacts with
      | None ->
        R.failf "rank correlation undefined over %d connectivities"
          (List.length conns)
      | Some rho ->
        R.check (rho >= floor)
          "spearman %.3f below the pinned floor %.2f over %d connectivities"
          rho floor (List.length conns))

let explore_suite ~jobs =
  [
    R.prop ~cost:60 ~max_size:2 "cache-on and cache-off explorations agree"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let config = small_config ~jobs:1 in
        with_default_cache (fun () ->
            Eval.set_cache_capacity Eval.default_cache_capacity;
            let on = Explore.run ~config w in
            Eval.set_cache_capacity 0;
            let off = Explore.run ~config w in
            R.check
              (run_summary on = run_summary off)
              "caching changed the exploration outcome"));
    R.prop ~cost:60 ~max_size:2 "jobs=1 and jobs=N explorations agree"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        with_default_cache (fun () ->
            (* disable the cache so the parallel arm cannot be served
               results computed by the serial one *)
            Eval.set_cache_capacity 0;
            let serial = Explore.run ~config:(small_config ~jobs:1) w in
            let parallel =
              Explore.run ~config:(small_config ~jobs:(max 2 jobs)) w
            in
            R.check
              (run_summary serial = run_summary parallel)
              "jobs=1 and jobs=%d disagree" (max 2 jobs)));
    kernel_rank_floor
      ("compress", Mx_trace.Kern_compress.generate, 0.8);
    kernel_rank_floor ("fft", Mx_trace.Kern_fft.generate, 0.9);
    R.prop ~cost:60 ~max_size:2
      "every phase-1 design gets exactly one terminal verdict"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let was = Ev.is_on Ev.global in
        Ev.reset Ev.global;
        Ev.set_enabled Ev.global true;
        Fun.protect
          ~finally:(fun () ->
            Ev.set_enabled Ev.global was;
            Ev.reset Ev.global)
          (fun () ->
            ignore (Explore.run ~config:(small_config ~jobs:1) w);
            let evs = Ev.events Ev.global in
            let count name =
              List.length
                (List.filter
                   (fun (e : Ev.event) ->
                     e.Ev.stage = "phase1" && e.Ev.name = name)
                   evs)
            in
            let created = count "design.created"
            and kept = count "design.kept"
            and thinned = count "design.thinned"
            and pruned = count "design.pruned" in
            R.all_of
              [
                R.check (created > 0) "no phase-1 designs were created";
                R.check
                  (created = kept + thinned + pruned)
                  "%d designs created but %d verdicts (%d kept, %d thinned, \
                   %d pruned)"
                  created
                  (kept + thinned + pruned)
                  kept thinned pruned;
              ]));
  ]

(* -- shard ---------------------------------------------------------------- *)

(* The sharded work-queue must be invisible in the results: same
   designs, same order, same front, whatever the shard count or jobs
   level — and the anytime archive must agree with the collect-then-
   filter front it replaced. *)

module Shard = Conex.Shard

let shard_config ~shards ~jobs = { (small_config ~jobs) with Explore.shards }

let shard_onchip =
  lazy
    [ Component.by_name "ded32"; Component.by_name "mux32";
      Component.by_name "apb32"; Component.by_name "ahb32" ]

let shard_offchip = lazy [ Component.by_name "off32" ]

(* One planned shard queue (plus the context needed to resolve it)
   for a generated pipeline. *)
let shard_plan_of_pipeline g (p : Gen.pipeline) =
  let levels =
    Mx_connect.Cluster.levels_ordered Mx_connect.Cluster.Lowest_bandwidth_first
      p.Gen.p_brg.Brg.channels
  in
  let cap = 1 + Prng.int g ~bound:48 in
  let k = 1 + Prng.int g ~bound:8 in
  let onchip = Lazy.force shard_onchip and offchip = Lazy.force shard_offchip in
  let workload_fp = Mx_trace.Workload.fingerprint p.Gen.p_workload in
  let arch_fp = Mem_arch.fingerprint p.Gen.p_arch in
  let arch_label = p.Gen.p_arch.Mem_arch.label in
  let shards =
    Shard.plan ~shards:k ~max_designs_per_level:cap ~workload_fp ~arch_label
      ~arch_fp ~onchip ~offchip levels
  in
  (shards, `Ctx (workload_fp, arch_label, arch_fp, onchip, offchip, levels, cap))

let dedup_by_describe conns =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let key = Conn_arch.describe c in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    conns

let shard_suite ~jobs =
  let x (p : float array) = p.(0) and y (p : float array) = p.(1) in
  let axes2 = [ x; y ] in
  [
    R.prop ~cost:80 ~max_size:2
      "sharded and monolithic explorations agree (shards x jobs)"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        with_default_cache (fun () ->
            (* cache off so no arm is served results computed by another *)
            Eval.set_cache_capacity 0;
            let base =
              Explore.run ~config:(shard_config ~shards:1 ~jobs:1) w
            in
            R.all_of
              (List.map
                 (fun (shards, jobs) ->
                   let r = Explore.run ~config:(shard_config ~shards ~jobs) w in
                   R.check
                     (run_summary r = run_summary base)
                     "shards=%d jobs=%d diverges from the monolithic run"
                     shards jobs)
                 [ (4, 1); (1, max 2 jobs); (4, max 2 jobs) ])));
    R.prop ~cost:10 "shard plan concatenation = monolithic enumeration"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let shards, `Ctx (_, _, _, onchip, offchip, _, cap) =
          shard_plan_of_pipeline g p
        in
        let mono =
          Assign.enumerate_levels ~max_designs_per_level:cap ~onchip ~offchip
            p.Gen.p_brg.Brg.channels
        in
        let merged =
          dedup_by_describe (List.concat_map Shard.enumerate shards)
        in
        R.check
          (List.map Conn_arch.describe merged
          = List.map Conn_arch.describe mono)
          "merged shard slices (%d shards, cap %d) differ from the \
           monolithic stream (%d vs %d designs)"
          (List.length shards) cap (List.length merged) (List.length mono));
    R.prop ~cost:10 "shard descriptors survive the wire format and resolve"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let shards, `Ctx (workload_fp, arch_label, arch_fp, onchip, offchip,
                          levels, _) =
          shard_plan_of_pipeline g p
        in
        R.all_of
          (List.map
             (fun r ->
               let d = Shard.descriptor r in
               match Shard.of_line (Shard.to_line d) with
               | Error e -> R.failf "of_line rejected a planned shard: %s" e
               | Ok d' ->
                 if d' <> d then
                   R.failf "wire round-trip changed %s into %s"
                     (Shard.fingerprint d) (Shard.fingerprint d')
                 else (
                   match
                     Shard.resolve ~workload_fp ~arch_label ~arch_fp ~onchip
                       ~offchip ~levels d'
                   with
                   | Error e -> R.failf "resolve failed: %s" e
                   | Ok r' ->
                     R.check
                       (List.map Conn_arch.describe (Shard.enumerate r')
                       = List.map Conn_arch.describe (Shard.enumerate r))
                       "a resolved shard enumerates a different slice (%s)"
                       (Shard.fingerprint d)))
             shards));
    R.prop "exact unbounded archive front = front2"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let pts = Gen.grid_points g ~size ~dim:2 in
        let a = Pareto.Archive.of_list ~axes:axes2 pts in
        R.check
          (Pareto.Archive.front a = Pareto.front2 ~x ~y pts)
          "incremental archive and collect-then-filter front disagree on %d \
           points"
          (List.length pts));
    R.prop "every exact-front point is eps-covered by the eps-archive"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let pts = Gen.continuous_points g ~size ~dim:2 in
        let eps = 0.05 +. (0.2 *. Prng.float g) in
        let members = Pareto.Archive.front (Pareto.Archive.of_list ~axes:axes2 ~eps pts) in
        let covered p =
          List.exists
            (fun m ->
              List.for_all (fun f -> f m <= (1.0 +. eps) *. f p) axes2)
            members
        in
        match List.find_opt (fun p -> not (covered p)) (Pareto.front2 ~x ~y pts) with
        | None -> R.check true "covered"
        | Some p ->
          R.failf "front point (%.4f, %.4f) not within (1+%.3f) of any of %d \
                   archive members"
            (x p) (y p) eps (List.length members));
    R.prop "capacity-bounded archive keeps the axis extremes"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let pts = Gen.continuous_points g ~size ~dim:2 in
        let capacity = 2 + Prng.int g ~bound:6 in
        let a = Pareto.Archive.of_list ~axes:axes2 ~capacity pts in
        let members = Pareto.Archive.front a in
        let minimum f = List.fold_left (fun acc p -> Float.min acc (f p)) infinity pts in
        let mutually_nondominated =
          List.for_all
            (fun m ->
              not
                (List.exists
                   (fun m' -> m' != m && Pareto.dominates ~axes:axes2 m' m)
                   members))
            members
        in
        R.all_of
          [
            R.check (List.length members <= capacity)
              "archive holds %d members over its capacity %d"
              (List.length members) capacity;
            R.check
              (List.exists (fun m -> x m = minimum x) members
              && List.exists (fun m -> y m = minimum y) members)
              "capacity thinning evicted an axis extreme";
            R.check mutually_nondominated "archive members dominate each other";
          ]);
    R.prop ~cost:80 ~max_size:2
      "an interrupted run returns a valid committed prefix"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        with_default_cache (fun () ->
            Eval.set_cache_capacity 0;
            let config = shard_config ~shards:2 ~jobs:1 in
            let full = Explore.run ~config w in
            let budget =
              Prng.int g
                ~bound:(2 * (full.Explore.n_estimates + full.Explore.n_simulations) + 2)
            in
            let polls = ref 0 in
            let interrupt () =
              incr polls;
              !polls > budget
            in
            let r = Explore.run ~config ~interrupt w in
            let keys = design_keys r.Explore.simulated in
            let full_keys = design_keys full.Explore.simulated in
            let is_prefix =
              List.length keys <= List.length full_keys
              && keys
                 = List.filteri (fun i _ -> i < List.length keys) full_keys
            in
            R.all_of
              [
                R.check
                  (r.Explore.interrupted || run_summary r = run_summary full)
                  "an uninterrupted run (budget %d) diverges from the plain \
                   run"
                  budget;
                R.check is_prefix
                  "the interrupted run's %d simulations are not a prefix of \
                   the full run's %d"
                  (List.length keys) (List.length full_keys);
                R.check
                  (design_keys r.Explore.pareto_cost_perf
                  = design_keys
                      (Pareto.front2 ~x:Design.cost ~y:Design.latency
                         r.Explore.simulated))
                  "the anytime front is not the pareto front of the committed \
                   prefix";
              ]));
  ]

(* -- replacement --------------------------------------------------------- *)

(* Replay an (addr, write) stream through the production cache and
   project each access onto the oracle's event type. *)
let repl_events_of_cache geometry stream =
  let c = Cache.create geometry in
  List.map
    (fun (addr, write) ->
      let r = Cache.access c ~addr ~write in
      {
        Oracle.o_hit = r.Cache.hit;
        o_writeback = r.Cache.writeback;
        o_evicted_line = r.Cache.evicted_line;
      })
    stream

let repl_event_str (e : Oracle.repl_event) =
  Printf.sprintf "{hit=%b;wb=%b;evict=%s}" e.Oracle.o_hit e.Oracle.o_writeback
    (match e.Oracle.o_evicted_line with
    | None -> "-"
    | Some l -> string_of_int l)

(* Full-sequence differential comparison; the failure message names the
   first diverging access. *)
let repl_compare ~(cache_geo : Params.cache) ~(oracle_geo : Params.cache)
    stream =
  let got = repl_events_of_cache cache_geo stream
  and want = Oracle.repl_cache oracle_geo stream in
  let rec first i ga wa =
    match (ga, wa) with
    | [], [] -> R.check true "agree"
    | a :: ga', b :: wa' ->
      if a = b then first (i + 1) ga' wa'
      else
        R.failf "access %d of %d: cache %s <> oracle %s (%s, %d sets x %d ways)"
          i (List.length stream) (repl_event_str a) (repl_event_str b)
          (Params.policy_to_string oracle_geo.Params.c_policy)
          (oracle_geo.Params.c_size / oracle_geo.Params.c_line
          / oracle_geo.Params.c_assoc)
          oracle_geo.Params.c_assoc
    | _, _ -> R.failf "event-sequence length mismatch"
  in
  first 0 got want

let repl_policy_vs_oracle policy =
  R.prop
    (Printf.sprintf "%s matches its reference oracle"
       (Params.policy_to_string policy))
    (fun ~seed ~size ->
      let g = Prng.create ~seed in
      let geometry =
        { (Gen.repl_geometry g ~size) with Params.c_policy = policy }
      in
      let stream = Gen.repl_stream g ~size ~geometry in
      repl_compare ~cache_geo:geometry ~oracle_geo:geometry stream)

let first_touch_flags lines =
  let seen = Hashtbl.create 64 in
  List.map
    (fun l ->
      if Hashtbl.mem seen l then false
      else begin
        Hashtbl.add seen l ();
        true
      end)
    lines

let replacement_suite =
  List.map repl_policy_vs_oracle Params.all_policies
  @ [
      R.prop "random policy/geometry pairs match the oracle"
        (fun ~seed ~size ->
          (* the cross-product sweep: a fresh policy draw per case, so
             long fuzz runs cover policy/geometry pairs the per-policy
             props reach more slowly *)
          let g = Prng.create ~seed in
          let geometry =
            { (Gen.repl_geometry g ~size) with
              Params.c_policy = Gen.repl_policy g }
          in
          let stream = Gen.repl_stream g ~size ~geometry in
          repl_compare ~cache_geo:geometry ~oracle_geo:geometry stream);
      R.prop "fully-associative true-lru matches the stack-distance oracle"
        (fun ~seed ~size ->
          let g = Prng.create ~seed in
          let ways = 1 lsl Prng.int g ~bound:(min 4 (1 + size)) in
          let line = 16 in
          let geometry =
            { Params.c_size = ways * line; c_line = line; c_assoc = ways;
              c_latency = 1; c_policy = Params.True_lru }
          in
          let stream = Gen.repl_stream g ~size ~geometry in
          let cache_hits =
            List.map
              (fun e -> e.Oracle.o_hit)
              (repl_events_of_cache geometry stream)
          and stack =
            Oracle.stack_hits ~capacity:ways
              (List.map (fun (addr, _) -> addr / line) stream)
          in
          R.check (cache_hits = stack)
            "single-set %d-way true-lru diverges from the stack algorithm \
             on %d accesses"
            ways (List.length stream));
      R.prop "all policies agree on compulsory misses" (fun ~seed ~size ->
          let g = Prng.create ~seed in
          let geometry = Gen.repl_geometry g ~size in
          let stream = Gen.repl_stream g ~size ~geometry in
          let compulsory =
            first_touch_flags
              (List.map (fun (a, _) -> a / geometry.Params.c_line) stream)
          in
          R.all_of
            (List.map
               (fun policy ->
                 let evs =
                   repl_events_of_cache
                     { geometry with Params.c_policy = policy }
                     stream
                 in
                 R.check
                   (List.for_all2
                      (fun first e -> (not first) || not e.Oracle.o_hit)
                      compulsory evs)
                   "%s hits a first-touch line"
                   (Params.policy_to_string policy))
               Params.all_policies));
      R.prop "true-lru misses are monotone in associativity" (fun ~seed ~size ->
          (* LRU inclusion: doubling the ways at a fixed set count (so
             the line-to-set mapping is unchanged) can only remove
             misses *)
          let g = Prng.create ~seed in
          let ways = 1 lsl Prng.int g ~bound:3 in
          let sets = 1 lsl Prng.int g ~bound:3 in
          let line = 16 in
          let mk ways =
            { Params.c_size = sets * ways * line; c_line = line;
              c_assoc = ways; c_latency = 1; c_policy = Params.True_lru }
          in
          let stream = Gen.repl_stream g ~size ~geometry:(mk ways) in
          let misses geo =
            List.length
              (List.filter
                 (fun e -> not e.Oracle.o_hit)
                 (repl_events_of_cache geo stream))
          in
          let small = misses (mk ways) and big = misses (mk (2 * ways)) in
          R.check (big <= small)
            "%d->%d ways at %d sets raised misses %d -> %d" ways (2 * ways)
            sets small big);
    ]

(* Deliberately-broken policy for the failure-path contract: the
   production true-lru cache is compared against a promotion-blind
   (FIFO) oracle, so any stream where a hit promotion changes a later
   eviction is a counterexample.  Hidden like [selftest]: reachable by
   name, excluded from {!all}. *)
let replacement_selftest_suite =
  [
    R.prop "true-lru matches a (deliberately wrong) promotion-blind oracle"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let geometry =
          { (Gen.repl_geometry g ~size) with Params.c_policy = Params.True_lru }
        in
        let stream = Gen.repl_stream g ~size ~geometry in
        repl_compare ~cache_geo:geometry
          ~oracle_geo:{ geometry with Params.c_policy = Params.Fifo }
          stream);
  ]

(* -- persist ------------------------------------------------------------- *)

module Persist = Mx_util.Persist_cache

(* A unique scratch directory per case; the store creates it, the
   finally block removes it (and detaches any store the property left
   attached to Eval, so one case can never leak disk state into the
   next). *)
let with_store f =
  let dir = Filename.temp_file "conex-check-persist" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      Eval.close_persist ();
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let persist_revision = "check-r1"

(* On-disk segment geometry, mirrored from the documented format
   (DESIGN.md): the differential properties below aim their faults at
   exact byte offsets, so they must know where records live. *)
let persist_header_len rev = 6 + String.length rev + 1
let persist_record_len k v = 9 + String.length k + String.length v + 16

let persist_kvs g ~n =
  List.init n (fun i ->
      ( Printf.sprintf "key-%d" i,
        Printf.sprintf "value-%d-%d" i (Prng.int g ~bound:1_000_000) ))

let persist_fill ~dir kvs =
  match Persist.open_dir ~revision:persist_revision ~dir () with
  | Error e -> Error e
  | Ok t ->
    List.iter (fun (k, v) -> Persist.put t ~key:k v) kvs;
    let seg = List.nth (Persist.Testing.segment_files t) 0 in
    Persist.close t;
    Ok seg

let persist_suite ~jobs:_ =
  [
    R.prop ~cost:60 ~max_size:2
      "a warm-start exploration equals the cold run and is served from disk"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let w = Gen.workload g ~size in
        let config = small_config ~jobs:1 in
        with_store (fun dir ->
            with_default_cache (fun () ->
                match Eval.open_persist ~dir with
                | Error e -> R.failf "cannot open the store: %s" e
                | Ok () -> (
                  let cold = Explore.run ~config w in
                  (* a fresh process: empty hot tier, reopened store *)
                  match Eval.open_persist ~dir with
                  | Error e -> R.failf "cannot reopen the store: %s" e
                  | Ok () ->
                    Eval.set_cache_capacity Eval.default_cache_capacity;
                    let warm = Explore.run ~config w in
                    let stats = Eval.persist_stats () in
                    Eval.close_persist ();
                    R.all_of
                      [
                        R.check
                          (run_summary cold = run_summary warm)
                          "the warm-start run changed the exploration outcome";
                        (match stats with
                        | None -> R.failf "the disk tier detached itself"
                        | Some s ->
                          R.check
                            (s.Persist.get_hits > 0)
                            "the warm run never read the disk tier");
                      ]))));
    R.prop ~cost:5 "an Exact result on disk is promoted to serve Sampled"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let p = Gen.pipeline g ~size in
        let conn = Gen.conn g p.Gen.p_brg in
        let w = p.Gen.p_workload and arch = p.Gen.p_arch in
        with_store (fun dir ->
            with_default_cache (fun () ->
                match Eval.open_persist ~dir with
                | Error e -> R.failf "cannot open the store: %s" e
                | Ok () ->
                  Eval.clear_cache ();
                  let exact =
                    Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn ()
                  in
                  (* drop the hot tier; only the disk copy remains *)
                  Eval.clear_cache ();
                  let r, prov =
                    Eval.eval_prov ~fidelity:(Eval.Sampled (100, 900))
                      ~workload:w ~arch ~conn ()
                  in
                  Eval.close_persist ();
                  R.all_of
                    [
                      R.check (prov = Eval.Promoted)
                        "Sampled after a disk-resident Exact was %s"
                        (Eval.provenance_tag prov);
                      R.check (r = exact)
                        "the promoted result differs from the Exact one";
                    ])));
    R.prop "a store written under another revision reads as empty"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let n = 1 + Prng.int g ~bound:(1 + (size * 3)) in
        let kvs = persist_kvs g ~n in
        with_store (fun dir ->
            match persist_fill ~dir kvs with
            | Error e -> R.failf "cannot open the store: %s" e
            | Ok _ -> (
              match
                Persist.open_dir ~revision:(persist_revision ^ "-bumped") ~dir
                  ()
              with
              | Error e -> R.failf "cannot reopen the store: %s" e
              | Ok t2 ->
                let stale_reads =
                  List.filter
                    (fun (k, _) -> Persist.get t2 ~key:k <> None)
                    kvs
                in
                let s2 = Persist.stats t2 in
                Persist.close t2;
                R.all_of
                  [
                    R.check (stale_reads = [])
                      "%d stale-revision entries were served"
                      (List.length stale_reads);
                    R.check
                      (s2.Persist.stale_segments >= 1)
                      "the foreign segment was not counted as stale";
                    (* the old revision still owns its data *)
                    (match Persist.open_dir ~revision:persist_revision ~dir ()
                     with
                    | Error e -> R.failf "cannot reopen at revision A: %s" e
                    | Ok t3 ->
                      let intact =
                        List.for_all
                          (fun (k, v) -> Persist.get t3 ~key:k = Some v)
                          kvs
                      in
                      Persist.close t3;
                      R.check intact
                        "a revision bump destroyed the original entries");
                  ])));
    R.prop "a torn segment tail loses only the uncommitted record"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let n = 2 + Prng.int g ~bound:(2 + (size * 2)) in
        let kvs = persist_kvs g ~n in
        with_store (fun dir ->
            match persist_fill ~dir kvs with
            | Error e -> R.failf "cannot open the store: %s" e
            | Ok seg ->
              let last_k, _ = List.nth kvs (n - 1) in
              let full_len =
                List.fold_left
                  (fun acc (k, v) -> acc + persist_record_len k v)
                  (persist_header_len persist_revision)
                  kvs
              in
              let last_len =
                let k, v = List.nth kvs (n - 1) in
                persist_record_len k v
              in
              (* cut strictly inside the last record *)
              let cut = full_len - 1 - Prng.int g ~bound:(last_len - 1) in
              Persist.Testing.truncate_file ~path:seg ~at:cut;
              (match Persist.open_dir ~revision:persist_revision ~dir () with
              | Error e -> R.failf "cannot reopen the torn store: %s" e
              | Ok t ->
                let prefix_intact =
                  List.for_all
                    (fun (k, v) -> Persist.get t ~key:k = Some v)
                    (List.filteri (fun i _ -> i < n - 1) kvs)
                in
                let torn_gone = Persist.get t ~key:last_k = None in
                let s = Persist.stats t in
                Persist.close t;
                R.all_of
                  [
                    R.check prefix_intact
                      "a committed record was lost to a torn tail";
                    R.check torn_gone "the torn record was served";
                    R.check
                      (s.Persist.skipped_records >= 1)
                      "the torn tail was not counted";
                  ])));
    R.prop "a corrupt record and its tail are skipped, the prefix survives"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let n = 2 + Prng.int g ~bound:(2 + (size * 2)) in
        let kvs = persist_kvs g ~n in
        with_store (fun dir ->
            match persist_fill ~dir kvs with
            | Error e -> R.failf "cannot open the store: %s" e
            | Ok seg ->
              (* flip one byte inside the value of record j *)
              let j = Prng.int g ~bound:n in
              let off_of_record j =
                List.fold_left
                  (fun acc (k, v) -> acc + persist_record_len k v)
                  (persist_header_len persist_revision)
                  (List.filteri (fun i _ -> i < j) kvs)
              in
              let k_j, v_j = List.nth kvs j in
              let at =
                off_of_record j + 9 + String.length k_j
                + Prng.int g ~bound:(String.length v_j)
              in
              Persist.Testing.flip_byte ~path:seg ~at;
              (match Persist.open_dir ~revision:persist_revision ~dir () with
              | Error e -> R.failf "cannot reopen the corrupt store: %s" e
              | Ok t ->
                (* the scan stops at the first bad record, so the
                   corrupted record and everything behind it must read
                   as absent — anything served is either the corrupted
                   bytes themselves or a record framed out of garbage *)
                let bad =
                  List.filteri (fun i _ -> i >= j) kvs
                  |> List.filter (fun (k, _) -> Persist.get t ~key:k <> None)
                in
                let prefix_intact =
                  List.for_all
                    (fun (k, v) -> Persist.get t ~key:k = Some v)
                    (List.filteri (fun i _ -> i < j) kvs)
                in
                let s = Persist.stats t in
                Persist.close t;
                R.all_of
                  [
                    R.check (bad = [])
                      "%d records at or behind the corruption were served"
                      (List.length bad);
                    R.check prefix_intact
                      "a record before the corruption was lost";
                    R.check
                      (s.Persist.skipped_records >= 1)
                      "the corruption was not counted";
                  ])));
  ]

(* Broken-store failure path, mirroring [replacement-selftest]: the
   digest check is deliberately disabled, so a flipped byte that the
   verifying scan would quarantine is read back and served — the
   written-vs-read comparison must fail.  Hidden: reachable by name,
   excluded from {!all}. *)
let persist_selftest_suite =
  [
    R.prop "an unverified read of a corrupted store matches what was written"
      (fun ~seed ~size:_ ->
        let g = Prng.create ~seed in
        let value = Printf.sprintf "payload-%d" (Prng.int g ~bound:1_000_000) in
        with_store (fun dir ->
            match persist_fill ~dir [ ("k", value) ] with
            | Error e -> R.failf "cannot open the store: %s" e
            | Ok seg -> (
              let at = persist_header_len persist_revision + 9 + 1 in
              Persist.Testing.flip_byte ~path:seg ~at;
              match
                Persist.Testing.open_unverified ~revision:persist_revision
                  ~dir ()
              with
              | Error e -> R.failf "cannot reopen the store: %s" e
              | Ok t ->
                let got = Persist.get t ~key:"k" in
                Persist.close t;
                R.check (got = Some value)
                  "read back %s"
                  (match got with
                  | None -> "nothing"
                  | Some v -> Printf.sprintf "%S instead of %S" v value))));
  ]

(* -- selftest ------------------------------------------------------------ *)

(* Intentionally broken oracle (sample instead of population variance):
   passes at size 1, fails at any size with two spread samples, so the
   runner must shrink every failure to size 2.  Used by the CLI contract
   tests to exercise the failure path end to end. *)
let selftest_suite =
  [
    R.prop "stddev matches a (deliberately wrong) sample-variance oracle"
      (fun ~seed ~size ->
        let g = Prng.create ~seed in
        let xs = Gen.floats g ~size in
        let n = List.length xs in
        let broken =
          if n < 2 then 0.0
          else begin
            let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
            let ss =
              List.fold_left
                (fun acc x -> acc +. ((x -. mean) *. (x -. mean)))
                0.0 xs
            in
            sqrt (ss /. float_of_int (n - 1))
          end
        in
        let got = Stats.stddev xs in
        R.check
          (feq ~tol:1e-9 got broken)
          "stddev %.9g <> oracle %.9g on %d samples" got broken n);
  ]

(* -- registry ------------------------------------------------------------ *)

let names =
  [
    "pareto"; "cluster"; "assign"; "trace"; "stats"; "fingerprint"; "sim";
    "eval"; "pipeline"; "explore"; "shard"; "replacement"; "persist";
  ]

let all ?(jobs = Mx_util.Task_pool.default_jobs ()) () =
  [
    ("pareto", pareto_suite);
    ("cluster", cluster_suite);
    ("assign", assign_suite);
    ("trace", trace_suite);
    ("stats", stats_suite);
    ("fingerprint", fingerprint_suite);
    ("sim", sim_suite);
    ("eval", eval_suite);
    ("pipeline", pipeline_suite);
    ("explore", explore_suite ~jobs);
    ("shard", shard_suite ~jobs);
    ("replacement", replacement_suite);
    ("persist", persist_suite ~jobs);
  ]

let find ?jobs name =
  if name = "selftest" then Some selftest_suite
  else if name = "replacement-selftest" then Some replacement_selftest_suite
  else if name = "persist-selftest" then Some persist_selftest_suite
  else List.assoc_opt name (all ?jobs ())
