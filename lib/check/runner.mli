(** Deterministic property runner with integrated shrinking.

    Every case of every property is identified by a [(seed, size)]
    pair: the property regenerates its inputs from those two integers
    alone (via the {!Gen} generators), so a failure is reproduced —
    across runs, machines and CLI invocations — by re-running the
    suite with [CONEX_CHECK_SEED] and [CONEX_CHECK_SIZE] set.

    Shrinking exploits the same structure: a failing [(seed, size)]
    case is re-run at the same seed with every smaller size, and the
    first size that still fails is reported as the minimal
    counterexample.  No value-level shrinker is needed because size is
    the complexity knob of every generator. *)

type outcome = Pass | Fail of string

type prop = {
  name : string;
  cost : int;
      (** relative cost of one case; a property runs [count / cost]
          cases (at least one), so expensive properties scale down *)
  max_size : int;  (** sizes cycle through [1 .. max_size] *)
  run : seed:int -> size:int -> outcome;
}

val prop :
  ?cost:int -> ?max_size:int -> string -> (seed:int -> size:int -> outcome) ->
  prop
(** [cost] defaults to 1, [max_size] to 10. *)

val failf : ('a, unit, string, outcome) format4 -> 'a
(** [Fail] with a formatted message. *)

val check : bool -> ('a, unit, string, outcome) format4 -> 'a
(** [check cond fmt ...] is [Pass] when [cond] holds, else the
    formatted [Fail]. *)

val all_of : outcome list -> outcome
(** First failure, or [Pass]. *)

type failure = {
  prop_name : string;
  seed : int;
  size : int;  (** minimal failing size found by shrinking *)
  shrunk_from : int;  (** size of the originally observed failure *)
  message : string;  (** failure message at the shrunk size *)
}

type report = {
  suite : string;
  props : int;  (** properties run *)
  cases : int;  (** total generated cases (shrink re-runs excluded) *)
  failures : failure list;
}

val case_seed : master:int -> prop_name:string -> int -> int
(** The seed of case [i] of a property under a master seed — a pure
    function, so any case can be replayed without running its
    predecessors. *)

val run_suite :
  ?fixed:int * int -> master:int -> count:int -> string * prop list -> report
(** Run one suite.  Each property runs [max 1 (count / cost)] cases,
    stopping (and shrinking) at its first failure.  With [fixed =
    (seed, size)] every property instead runs exactly that one case,
    with no shrinking — the reproduction mode. *)

val repro : suite:string -> failure -> string
(** The one-line reproduction command for a failure:
    [CONEX_CHECK_SEED=... CONEX_CHECK_SIZE=... conex check --suite ...]. *)

val env_fixed : unit -> (int * int) option
(** The [(seed, size)] override from [CONEX_CHECK_SEED] /
    [CONEX_CHECK_SIZE] (size defaults to 1 when only the seed is set);
    [None] when the seed variable is unset or unparsable. *)
