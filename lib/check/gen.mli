(** Structured generators for the correctness harness.

    Every generator draws from an explicit {!Mx_util.Prng.t} (no global
    randomness) and is scaled by an explicit [size], so a failing case
    is fully reproduced by its [(seed, size)] pair and the {!Runner}
    can shrink by regenerating at the same seed with smaller sizes.
    Smaller sizes yield structurally simpler values: fewer points,
    fewer channels, fewer regions, shorter traces. *)

val grid_points : Mx_util.Prng.t -> size:int -> dim:int -> float array list
(** Points on a coarse integer grid (coordinates in [0..5]): forces
    ties and duplicate objective vectors, the cases where dominance
    logic usually goes wrong.  Between 1 and [5 * size] points. *)

val continuous_points :
  Mx_util.Prng.t -> size:int -> dim:int -> float array list
(** Points with uniform coordinates in [\[0, 1)]; ties have
    probability ~0.  Between 1 and [5 * size] points. *)

val floats : Mx_util.Prng.t -> size:int -> float list
(** Exactly [size] floats in [\[0, 100)]. *)

val channel : Mx_util.Prng.t -> Mx_connect.Channel.t
(** One BRG arc with a dyadic bandwidth (so cross-level bandwidth sums
    are float-exact) and a standard transaction size; off-chip with
    probability 0.3. *)

val channels : Mx_util.Prng.t -> size:int -> Mx_connect.Channel.t list
(** Between 1 and [min 8 (size + 1)] channels. *)

val clusters : Mx_util.Prng.t -> size:int -> Mx_connect.Cluster.t list
(** A valid partial clustering of a random channel set: singleton
    clusters plus a few random same-boundary-class merges. *)

val workload : Mx_util.Prng.t -> size:int -> Mx_trace.Workload.t
(** A synthetic workload of 1..min 4 size regions across the pattern
    classes, with a trace of roughly [200 * size] accesses. *)

val cache : Mx_util.Prng.t -> Mx_mem.Params.cache
(** A valid cache geometry: power-of-two size (512B..16KB), line
    (16..64B) and associativity (clamped to the number of lines). *)

val repl_policy : Mx_util.Prng.t -> Mx_mem.Params.policy
(** One of {!Mx_mem.Params.all_policies}, uniformly. *)

val repl_geometry : Mx_util.Prng.t -> size:int -> Mx_mem.Params.cache
(** A tiny cache geometry for replacement-policy differential tests:
    1..8 ways (power of two, growing with [size]), 1..4 sets, 16 B
    lines, default policy (callers re-policy with a record update). *)

val repl_stream :
  Mx_util.Prng.t -> size:int -> geometry:Mx_mem.Params.cache ->
  (int * bool) list
(** An [(addr, write)] access stream over a line universe of twice the
    geometry's capacity (so reuse and conflict are both frequent);
    roughly [8 * size] to [16 * size] accesses. *)

val mem_arch_spec :
  Mx_util.Prng.t -> Mx_trace.Workload.t -> label:string -> Mx_mem.Mem_arch.t
(** A random valid memory architecture for the workload (cache
    geometry, optional stream buffer / LLDMA / scratchpad bound by
    region hints; never an L2, so the straight-line replay oracle
    applies).  The same generator state builds the same structure
    under any [label] — used by the fingerprint relabeling suite. *)

val mem_arch : Mx_util.Prng.t -> Mx_trace.Workload.t -> Mx_mem.Mem_arch.t
(** [mem_arch_spec ~label:"gen"]. *)

val conn :
  Mx_util.Prng.t -> Mx_connect.Brg.t -> Mx_connect.Conn_arch.t
(** A random feasible connectivity for the BRG, drawn from the
    enumerated clustering levels over a small component library — so
    shared (contended) buses and dedicated links both occur. *)

type pipeline = {
  p_workload : Mx_trace.Workload.t;
  p_arch : Mx_mem.Mem_arch.t;
  p_profile : Mx_mem.Mem_sim.stats;
  p_brg : Mx_connect.Brg.t;
}

val pipeline : Mx_util.Prng.t -> size:int -> pipeline
(** Workload + architecture + module-level profile + BRG, the common
    prefix of the simulation and evaluation suites. *)
