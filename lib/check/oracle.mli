(** Obviously-correct reference implementations ("oracles") for the
    optimised algorithms of the exploration flow.

    Each oracle trades all performance for directness: quadratic
    filters, exhaustive enumeration, straight-line replay.  The
    invariant suites ({!Suites}) run the production code and the
    oracle on the same generated inputs and compare results — any
    divergence is a bug in one of the two, and the shrunk
    counterexample usually makes it obvious in which. *)

val dominates : axes:('a -> float) list -> 'a -> 'a -> bool
(** Textbook dominance: no worse on every axis, strictly better on at
    least one.  Independent of {!Mx_util.Pareto.dominates}. *)

val pareto_front : axes:('a -> float) list -> 'a list -> 'a list
(** Quadratic front by definition: every point no input point
    dominates, in first-occurrence order (duplicates all kept) —
    the specification of {!Mx_util.Pareto.front}. *)

val cluster_canon : Mx_connect.Cluster.t -> string * float * bool
(** Canonical comparable form of a cluster: (description, bandwidth,
    off-chip flag). *)

val cluster_levels :
  Mx_connect.Channel.t list -> Mx_connect.Cluster.t list list
(** Naive bottom-up clustering mirroring the documented merge rule:
    per boundary class the two lowest-bandwidth clusters (stable on
    ties), across classes the pair with the smaller combined bandwidth
    (ties to on-chip), merged cluster placed at the head.  The
    specification of {!Mx_connect.Cluster.levels}. *)

val assign_feasible :
  onchip:Mx_connect.Component.t list ->
  offchip:Mx_connect.Component.t list ->
  Mx_connect.Cluster.t ->
  Mx_connect.Component.t list
(** Feasible components for one cluster by direct filtering — the
    specification of {!Mx_connect.Assign.choices}. *)

val assign_enumerate :
  onchip:Mx_connect.Component.t list ->
  offchip:Mx_connect.Component.t list ->
  Mx_connect.Cluster.t list ->
  Mx_connect.Conn_arch.t list
(** Exhaustive cartesian product of per-cluster feasible components
    (empty when some cluster is infeasible) — the specification of
    {!Mx_connect.Assign.enumerate} without a cap. *)

val replay :
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Mx_sim.Sim_result.t
(** Straight-line, single-pass replay of the cycle simulator's timing
    model for the paper's configuration: blocking CPU, no sampling, no
    L2.  Reuses {!Mx_mem.Mem_sim} for functional outcomes (hits,
    misses, traffic) and recomputes all connectivity timing
    (arbitration waits, serialization, bus holds) with plain
    sequential code and no accounting machinery.
    @raise Invalid_argument on an architecture with an L2 (outside the
    oracle's scope) or an unrouted channel. *)

val eval_direct :
  fidelity:Mx_sim.Eval.fidelity ->
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  ?profile:Mx_mem.Mem_sim.stats ->
  conn:Mx_connect.Conn_arch.t ->
  unit ->
  Mx_sim.Sim_result.t
(** Direct recomputation of {!Mx_sim.Eval.eval}: calls the underlying
    evaluator for the fidelity with no cache involved. *)

type repl_event = {
  o_hit : bool;
  o_writeback : bool;
  o_evicted_line : int option;  (** global line number, as {!Mx_mem.Cache} *)
}

val repl_cache :
  Mx_mem.Params.cache -> (int * bool) list -> repl_event list
(** Per-policy reference cache simulator: replays an [(addr, write)]
    stream through a naive model of the geometry's replacement policy
    and returns the full hit/writeback/evict sequence — the
    specification of {!Mx_mem.Cache.access}.  True LRU and FIFO sets
    are recency/fill-ordered lists (no way indexes at all); tree-PLRU
    uses a recursive binary tree; QLRU and MRU_N transcribe their
    age/bit rules directly.  @raise Invalid_argument on a malformed
    geometry. *)

val stack_hits : capacity:int -> int list -> bool list
(** Fully-associative LRU by stack distance over a line-number stream:
    a reference hits iff its line was seen before with fewer than
    [capacity] distinct lines touched since — the classical
    stack-algorithm specification of single-set true LRU. *)

val percentile : float list -> p:float -> float option
(** Nearest-rank percentile by direct sort-and-index — the
    specification of {!Mx_util.Stats.percentile}. *)

val stddev : float list -> float
(** Two-pass population standard deviation (0.0 below two elements) —
    the specification of {!Mx_util.Stats.stddev}. *)

val spearman_distinct : float list -> float list -> float
(** Closed-form Spearman [1 - 6 sum d^2 / (n (n^2 - 1))] over integer
    ranks; only valid when each list's values are pairwise distinct —
    the tie-free specification of {!Mx_util.Stats.spearman}. *)
