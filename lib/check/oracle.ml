module Channel = Mx_connect.Channel
module Cluster = Mx_connect.Cluster
module Conn_arch = Mx_connect.Conn_arch
module Component = Mx_connect.Component
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Serving = Mx_sim.Serving

(* -- pareto ------------------------------------------------------------ *)

let dominates ~axes a b =
  List.for_all (fun f -> f a <= f b) axes
  && List.exists (fun f -> f a < f b) axes

let pareto_front ~axes pts =
  List.filter (fun p -> not (List.exists (fun q -> dominates ~axes q p) pts)) pts

(* -- clustering -------------------------------------------------------- *)

let cluster_canon (c : Cluster.t) =
  (Cluster.describe c, c.Cluster.bandwidth, c.Cluster.offchip)

(* the two lowest-bandwidth clusters of one class, stable on ties *)
let two_lowest indexed =
  match
    List.stable_sort
      (fun (_, (a : Cluster.t)) (_, (b : Cluster.t)) ->
        Float.compare a.Cluster.bandwidth b.Cluster.bandwidth)
      indexed
  with
  | a :: b :: _ -> Some (a, b)
  | _ -> None

let merge_once clusters =
  let indexed = List.mapi (fun i c -> (i, c)) clusters in
  let on = List.filter (fun (_, c) -> not c.Cluster.offchip) indexed
  and off = List.filter (fun (_, c) -> c.Cluster.offchip) indexed in
  let combined ((_, a), (_, b)) = a.Cluster.bandwidth +. b.Cluster.bandwidth in
  let pick =
    match (two_lowest on, two_lowest off) with
    | None, None -> None
    | Some p, None | None, Some p -> Some p
    | Some p_on, Some p_off ->
      (* smaller combined bandwidth wins; ties go on-chip *)
      if combined p_on <= combined p_off then Some p_on else Some p_off
  in
  match pick with
  | None -> None
  | Some ((i, a), (j, b)) ->
    let merged =
      {
        Cluster.channels = a.Cluster.channels @ b.Cluster.channels;
        bandwidth = a.Cluster.bandwidth +. b.Cluster.bandwidth;
        offchip = a.Cluster.offchip;
      }
    in
    Some
      (merged
      :: List.filter_map
           (fun (k, c) -> if k = i || k = j then None else Some c)
           indexed)

let cluster_levels channels =
  let finest =
    List.map
      (fun (ch : Channel.t) ->
        {
          Cluster.channels = [ ch ];
          bandwidth = ch.Channel.bandwidth;
          offchip = Channel.crosses_chip ch;
        })
      channels
  in
  let rec go level acc =
    match merge_once level with
    | None -> List.rev (level :: acc)
    | Some next -> go next (level :: acc)
  in
  go finest []

(* -- assignment enumeration -------------------------------------------- *)

let assign_feasible ~onchip ~offchip cluster =
  List.filter (fun comp -> Conn_arch.feasible cluster comp) (onchip @ offchip)

let assign_enumerate ~onchip ~offchip clusters =
  let choices = List.map (assign_feasible ~onchip ~offchip) clusters in
  if List.exists (fun cs -> cs = []) choices then []
  else begin
    let rec product = function
      | [] -> [ [] ]
      | (cluster, comps) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun comp -> List.map (fun t -> (cluster, comp) :: t) tails)
          comps
    in
    List.map Conn_arch.make (product (List.combine clusters choices))
  end

(* -- straight-line cycle replay ----------------------------------------- *)

(* One routed leg: the component instance that carries a channel. *)
type leg = { comp : Component.t; idx : int; contended : bool }

let route bindings (src : Channel.node) (dst : Channel.node) =
  let probe = { Channel.src; dst; bandwidth = 0.0; txn_bytes = 0.0 } in
  let rec go i = function
    | [] -> None
    | (b : Conn_arch.binding) :: rest ->
      if
        List.exists (Channel.same_endpoints probe)
          b.Conn_arch.cluster.Cluster.channels
      then
        Some
          {
            comp = b.Conn_arch.component;
            idx = i;
            contended =
              List.length b.Conn_arch.cluster.Cluster.channels > 1;
          }
      else go (i + 1) rest
  in
  go 0 bindings

let replay ~workload ~arch ~conn () =
  if arch.Mem_arch.l2 <> None then
    invalid_arg "Oracle.replay: L2 architectures are outside the oracle scope";
  let bindings = (conn : Conn_arch.t).Conn_arch.bindings in
  let busy = Array.make (max 1 (List.length bindings)) 0 in
  let cpu_leg = Array.make 5 None and dram_leg = Array.make 5 None in
  List.iter
    (fun sv ->
      let node = Serving.node_of sv in
      let i = Serving.index sv in
      cpu_leg.(i) <- route bindings Channel.Cpu node;
      if node <> Channel.Dram then
        dram_leg.(i) <- route bindings node Channel.Dram)
    Serving.all;
  let require leg sv =
    match leg with
    | Some l -> l
    | None ->
      invalid_arg
        (Printf.sprintf
           "Oracle.replay: connectivity does not implement the %s channel"
           (Channel.node_to_string (Serving.node_of sv)))
  in
  let msim =
    Mem_sim.create arch ~regions:workload.Mx_trace.Workload.regions
  in
  let trace = workload.Mx_trace.Workload.trace in
  let n = Mx_trace.Trace.length trace in
  let ops_rate =
    if n = 0 then 0.0
    else float_of_int workload.Mx_trace.Workload.cpu_ops /. float_of_int n
  in
  let now = ref 0 in
  let ops_acc = ref 0.0 in
  let total_lat = ref 0 in
  let total_wait = ref 0 in
  let energy = ref 0.0 in
  let i = ref 0 in
  Mx_trace.Trace.iter_packed trace ~f:(fun ~addr ~size ~kind ~region ->
      let write = kind = Mx_trace.Access.Write in
      ops_acc := !ops_acc +. ops_rate;
      let gap = int_of_float !ops_acc in
      ops_acc := !ops_acc -. float_of_int gap;
      let o = Mem_sim.access msim ~now:!i ~addr ~size ~write ~region in
      let sv = o.Mem_sim.serving in
      let k = Serving.index sv in
      if o.Mem_sim.l2_bytes > 0 then
        invalid_arg "Oracle.replay: unexpected L2 traffic";
      now := !now + gap;
      (* CPU-side leg: queue behind the component, pay the transaction *)
      let l1 = require cpu_leg.(k) sv in
      let start1 = max !now busy.(l1.idx) in
      let wait1 = start1 - !now in
      let lat1 =
        Component.txn_latency l1.comp ~bytes:size ~contended:l1.contended
      in
      let occ1 = Component.occupancy l1.comp ~bytes:size in
      let mem_lat = Serving.module_latency arch sv in
      let crit =
        if not o.Mem_sim.dram_critical then 0
        else
          Serving.critical_bytes arch sv ~lldma_bytes:o.Mem_sim.dram_bytes
            ~fallback:size
      in
      let bg = o.Mem_sim.dram_bytes - crit in
      let miss_path = ref 0 in
      if o.Mem_sim.dram_bytes > 0 then begin
        let l2 =
          if sv = Mem_sim.By_dram_direct then l1 else require dram_leg.(k) sv
        in
        if crit > 0 then begin
          let dram_lat = Mx_mem.Dram.access (Mem_sim.dram msim) ~addr in
          if sv = Mem_sim.By_dram_direct then miss_path := dram_lat
          else begin
            let t_req = !now + wait1 + lat1 in
            let start2 = max t_req busy.(l2.idx) in
            let wait2 = start2 - t_req in
            let lat2 =
              Component.txn_latency l2.comp ~bytes:crit ~contended:l2.contended
            in
            busy.(l2.idx) <-
              start2
              + Component.occupancy l2.comp ~bytes:crit
              + (if l2.comp.Component.split_txn then 0 else dram_lat);
            miss_path := wait2 + lat2 + dram_lat;
            total_wait := !total_wait + wait2
          end
        end;
        if bg > 0 then begin
          ignore (Mx_mem.Dram.access (Mem_sim.dram msim) ~addr);
          busy.(l2.idx) <-
            max busy.(l2.idx) !now + Component.occupancy l2.comp ~bytes:bg
        end;
        energy :=
          !energy
          +. Mx_mem.Energy_model.dram_traffic ~txns:o.Mem_sim.dram_txns
               ~bytes:o.Mem_sim.dram_bytes
          +. (float_of_int o.Mem_sim.dram_bytes
             *. Mx_connect.Conn_cost.energy_per_byte l2.comp)
      end;
      busy.(l1.idx) <-
        start1 + occ1
        + (if l1.comp.Component.split_txn then 0 else !miss_path);
      let latency = wait1 + lat1 + mem_lat + o.Mem_sim.extra_latency + !miss_path in
      now := !now + latency;
      total_lat := !total_lat + latency;
      total_wait := !total_wait + wait1;
      energy :=
        !energy
        +. Serving.module_energy arch sv ~write
        +. o.Mem_sim.extra_energy
        +. (float_of_int size *. Mx_connect.Conn_cost.energy_per_byte l1.comp);
      incr i);
  let sampled = max 1 n in
  let mstats = Mem_sim.snapshot msim in
  {
    Mx_sim.Sim_result.accesses = n;
    cycles = !now;
    total_mem_latency = !total_lat;
    avg_mem_latency = float_of_int !total_lat /. float_of_int sampled;
    avg_energy_nj = !energy /. float_of_int sampled;
    miss_ratio = Mem_sim.miss_ratio mstats;
    bus_wait_cycles = !total_wait;
    dram_bytes = mstats.Mem_sim.dram_bytes_total;
    exact = true;
  }

(* -- evaluation without the cache ---------------------------------------- *)

let eval_direct ~fidelity ~workload ~arch ?profile ~conn () =
  match (fidelity : Mx_sim.Eval.fidelity) with
  | Mx_sim.Eval.Estimate -> (
    match profile with
    | Some profile -> Mx_sim.Estimator.estimate ~workload ~arch ~profile ~conn
    | None -> invalid_arg "Oracle.eval_direct: Estimate requires a profile")
  | Mx_sim.Eval.Sampled (on, off) ->
    Mx_sim.Cycle_sim.run ~sample:(on, off) ~workload ~arch ~conn ()
  | Mx_sim.Eval.Exact -> Mx_sim.Cycle_sim.run ~workload ~arch ~conn ()

(* -- statistics --------------------------------------------------------- *)

let percentile xs ~p =
  match List.sort Float.compare xs with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    Some (List.nth sorted (max 0 (min (n - 1) (rank - 1))))

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let ss =
      List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
    in
    sqrt (ss /. float_of_int n)
  end

let spearman_distinct xs ys =
  let n = List.length xs in
  let rank vs v =
    1 + List.length (List.filter (fun u -> u < v) vs)
  in
  let d2 =
    List.fold_left2
      (fun acc x y ->
        let d = float_of_int (rank xs x - rank ys y) in
        acc +. (d *. d))
      0.0 xs ys
  in
  1.0 -. (6.0 *. d2 /. (float_of_int n *. float_of_int ((n * n) - 1)))
