module Channel = Mx_connect.Channel
module Cluster = Mx_connect.Cluster
module Conn_arch = Mx_connect.Conn_arch
module Component = Mx_connect.Component
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Serving = Mx_sim.Serving

(* -- pareto ------------------------------------------------------------ *)

let dominates ~axes a b =
  List.for_all (fun f -> f a <= f b) axes
  && List.exists (fun f -> f a < f b) axes

let pareto_front ~axes pts =
  List.filter (fun p -> not (List.exists (fun q -> dominates ~axes q p) pts)) pts

(* -- clustering -------------------------------------------------------- *)

let cluster_canon (c : Cluster.t) =
  (Cluster.describe c, c.Cluster.bandwidth, c.Cluster.offchip)

(* the two lowest-bandwidth clusters of one class, stable on ties *)
let two_lowest indexed =
  match
    List.stable_sort
      (fun (_, (a : Cluster.t)) (_, (b : Cluster.t)) ->
        Float.compare a.Cluster.bandwidth b.Cluster.bandwidth)
      indexed
  with
  | a :: b :: _ -> Some (a, b)
  | _ -> None

let merge_once clusters =
  let indexed = List.mapi (fun i c -> (i, c)) clusters in
  let on = List.filter (fun (_, c) -> not c.Cluster.offchip) indexed
  and off = List.filter (fun (_, c) -> c.Cluster.offchip) indexed in
  let combined ((_, a), (_, b)) = a.Cluster.bandwidth +. b.Cluster.bandwidth in
  let pick =
    match (two_lowest on, two_lowest off) with
    | None, None -> None
    | Some p, None | None, Some p -> Some p
    | Some p_on, Some p_off ->
      (* smaller combined bandwidth wins; ties go on-chip *)
      if combined p_on <= combined p_off then Some p_on else Some p_off
  in
  match pick with
  | None -> None
  | Some ((i, a), (j, b)) ->
    let merged =
      {
        Cluster.channels = a.Cluster.channels @ b.Cluster.channels;
        bandwidth = a.Cluster.bandwidth +. b.Cluster.bandwidth;
        offchip = a.Cluster.offchip;
      }
    in
    Some
      (merged
      :: List.filter_map
           (fun (k, c) -> if k = i || k = j then None else Some c)
           indexed)

let cluster_levels channels =
  let finest =
    List.map
      (fun (ch : Channel.t) ->
        {
          Cluster.channels = [ ch ];
          bandwidth = ch.Channel.bandwidth;
          offchip = Channel.crosses_chip ch;
        })
      channels
  in
  let rec go level acc =
    match merge_once level with
    | None -> List.rev (level :: acc)
    | Some next -> go next (level :: acc)
  in
  go finest []

(* -- assignment enumeration -------------------------------------------- *)

let assign_feasible ~onchip ~offchip cluster =
  List.filter (fun comp -> Conn_arch.feasible cluster comp) (onchip @ offchip)

let assign_enumerate ~onchip ~offchip clusters =
  let choices = List.map (assign_feasible ~onchip ~offchip) clusters in
  if List.exists (fun cs -> cs = []) choices then []
  else begin
    let rec product = function
      | [] -> [ [] ]
      | (cluster, comps) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun comp -> List.map (fun t -> (cluster, comp) :: t) tails)
          comps
    in
    List.map Conn_arch.make (product (List.combine clusters choices))
  end

(* -- straight-line cycle replay ----------------------------------------- *)

(* One routed leg: the component instance that carries a channel. *)
type leg = { comp : Component.t; idx : int; contended : bool }

let route bindings (src : Channel.node) (dst : Channel.node) =
  let probe = { Channel.src; dst; bandwidth = 0.0; txn_bytes = 0.0 } in
  let rec go i = function
    | [] -> None
    | (b : Conn_arch.binding) :: rest ->
      if
        List.exists (Channel.same_endpoints probe)
          b.Conn_arch.cluster.Cluster.channels
      then
        Some
          {
            comp = b.Conn_arch.component;
            idx = i;
            contended =
              List.length b.Conn_arch.cluster.Cluster.channels > 1;
          }
      else go (i + 1) rest
  in
  go 0 bindings

let replay ~workload ~arch ~conn () =
  if arch.Mem_arch.l2 <> None then
    invalid_arg "Oracle.replay: L2 architectures are outside the oracle scope";
  let bindings = (conn : Conn_arch.t).Conn_arch.bindings in
  let busy = Array.make (max 1 (List.length bindings)) 0 in
  let cpu_leg = Array.make 5 None and dram_leg = Array.make 5 None in
  List.iter
    (fun sv ->
      let node = Serving.node_of sv in
      let i = Serving.index sv in
      cpu_leg.(i) <- route bindings Channel.Cpu node;
      if node <> Channel.Dram then
        dram_leg.(i) <- route bindings node Channel.Dram)
    Serving.all;
  let require leg sv =
    match leg with
    | Some l -> l
    | None ->
      invalid_arg
        (Printf.sprintf
           "Oracle.replay: connectivity does not implement the %s channel"
           (Channel.node_to_string (Serving.node_of sv)))
  in
  let msim =
    Mem_sim.create arch ~regions:workload.Mx_trace.Workload.regions
  in
  let trace = workload.Mx_trace.Workload.trace in
  let n = Mx_trace.Trace.length trace in
  let ops_rate =
    if n = 0 then 0.0
    else float_of_int workload.Mx_trace.Workload.cpu_ops /. float_of_int n
  in
  let now = ref 0 in
  let ops_acc = ref 0.0 in
  let total_lat = ref 0 in
  let total_wait = ref 0 in
  let energy = ref 0.0 in
  let i = ref 0 in
  Mx_trace.Trace.iter_packed trace ~f:(fun ~addr ~size ~kind ~region ->
      let write = kind = Mx_trace.Access.Write in
      ops_acc := !ops_acc +. ops_rate;
      let gap = int_of_float !ops_acc in
      ops_acc := !ops_acc -. float_of_int gap;
      let o = Mem_sim.access msim ~now:!i ~addr ~size ~write ~region in
      let sv = o.Mem_sim.serving in
      let k = Serving.index sv in
      if o.Mem_sim.l2_bytes > 0 then
        invalid_arg "Oracle.replay: unexpected L2 traffic";
      now := !now + gap;
      (* CPU-side leg: queue behind the component, pay the transaction *)
      let l1 = require cpu_leg.(k) sv in
      let start1 = max !now busy.(l1.idx) in
      let wait1 = start1 - !now in
      let lat1 =
        Component.txn_latency l1.comp ~bytes:size ~contended:l1.contended
      in
      let occ1 = Component.occupancy l1.comp ~bytes:size in
      let mem_lat = Serving.module_latency arch sv in
      let crit =
        if not o.Mem_sim.dram_critical then 0
        else
          Serving.critical_bytes arch sv ~lldma_bytes:o.Mem_sim.dram_bytes
            ~fallback:size
      in
      let bg = o.Mem_sim.dram_bytes - crit in
      let miss_path = ref 0 in
      if o.Mem_sim.dram_bytes > 0 then begin
        let l2 =
          if sv = Mem_sim.By_dram_direct then l1 else require dram_leg.(k) sv
        in
        if crit > 0 then begin
          let dram_lat = Mx_mem.Dram.access (Mem_sim.dram msim) ~addr in
          if sv = Mem_sim.By_dram_direct then miss_path := dram_lat
          else begin
            let t_req = !now + wait1 + lat1 in
            let start2 = max t_req busy.(l2.idx) in
            let wait2 = start2 - t_req in
            let lat2 =
              Component.txn_latency l2.comp ~bytes:crit ~contended:l2.contended
            in
            busy.(l2.idx) <-
              start2
              + Component.occupancy l2.comp ~bytes:crit
              + (if l2.comp.Component.split_txn then 0 else dram_lat);
            miss_path := wait2 + lat2 + dram_lat;
            total_wait := !total_wait + wait2
          end
        end;
        if bg > 0 then begin
          ignore (Mx_mem.Dram.access (Mem_sim.dram msim) ~addr);
          busy.(l2.idx) <-
            max busy.(l2.idx) !now + Component.occupancy l2.comp ~bytes:bg
        end;
        energy :=
          !energy
          +. Mx_mem.Energy_model.dram_traffic ~txns:o.Mem_sim.dram_txns
               ~bytes:o.Mem_sim.dram_bytes
          +. (float_of_int o.Mem_sim.dram_bytes
             *. Mx_connect.Conn_cost.energy_per_byte l2.comp)
      end;
      busy.(l1.idx) <-
        start1 + occ1
        + (if l1.comp.Component.split_txn then 0 else !miss_path);
      let latency = wait1 + lat1 + mem_lat + o.Mem_sim.extra_latency + !miss_path in
      now := !now + latency;
      total_lat := !total_lat + latency;
      total_wait := !total_wait + wait1;
      energy :=
        !energy
        +. Serving.module_energy arch sv ~write
        +. o.Mem_sim.extra_energy
        +. (float_of_int size *. Mx_connect.Conn_cost.energy_per_byte l1.comp);
      incr i);
  let sampled = max 1 n in
  let mstats = Mem_sim.snapshot msim in
  {
    Mx_sim.Sim_result.accesses = n;
    cycles = !now;
    total_mem_latency = !total_lat;
    avg_mem_latency = float_of_int !total_lat /. float_of_int sampled;
    avg_energy_nj = !energy /. float_of_int sampled;
    miss_ratio = Mem_sim.miss_ratio mstats;
    bus_wait_cycles = !total_wait;
    dram_bytes = mstats.Mem_sim.dram_bytes_total;
    exact = true;
  }

(* -- evaluation without the cache ---------------------------------------- *)

let eval_direct ~fidelity ~workload ~arch ?profile ~conn () =
  match (fidelity : Mx_sim.Eval.fidelity) with
  | Mx_sim.Eval.Estimate -> (
    match profile with
    | Some profile -> Mx_sim.Estimator.estimate ~workload ~arch ~profile ~conn
    | None -> invalid_arg "Oracle.eval_direct: Estimate requires a profile")
  | Mx_sim.Eval.Sampled (on, off) ->
    Mx_sim.Cycle_sim.run ~sample:(on, off) ~workload ~arch ~conn ()
  | Mx_sim.Eval.Exact -> Mx_sim.Cycle_sim.run ~workload ~arch ~conn ()

(* -- replacement-policy reference simulators ----------------------------- *)

module Params = Mx_mem.Params

type repl_event = {
  o_hit : bool;
  o_writeback : bool;
  o_evicted_line : int option;
}

(* Each set is modelled the most direct way its policy allows:

   - True_lru / Fifo are order-based: a set is a plain list of lines in
     recency (resp. fill) order, no way indexes at all — the victim is
     simply the last element.  This is deliberately a different
     representation from the production per-way stamp arrays.
   - Tree_plru / QLRU / MRU_N depend on way placement, so their sets
     are an array of slots (filled lowest index first, like the
     production cache) plus the policy's state written as a naive
     direct transcription of its specification: a recursive binary
     tree for PLRU, explicit age normalisation for QLRU, explicit
     saturation clearing for MRU_N. *)

(* recursive PLRU tree over way ranges; [toward_right] is where the
   next victim walk goes *)
type ptree =
  | Pleaf
  | Pnode of { mutable toward_right : bool; left : ptree; right : ptree }

let rec ptree_make ways =
  if ways <= 1 then Pleaf
  else
    Pnode
      { toward_right = false; left = ptree_make (ways / 2);
        right = ptree_make (ways / 2) }

let rec ptree_victim t ~lo ~ways =
  match t with
  | Pleaf -> lo
  | Pnode n ->
    let half = ways / 2 in
    if n.toward_right then ptree_victim n.right ~lo:(lo + half) ~ways:half
    else ptree_victim n.left ~lo ~ways:half

let rec ptree_touch t ~lo ~ways ~way =
  match t with
  | Pleaf -> ()
  | Pnode n ->
    let half = ways / 2 in
    if way < lo + half then begin
      n.toward_right <- true;
      ptree_touch n.left ~lo ~ways:half ~way
    end
    else begin
      n.toward_right <- false;
      ptree_touch n.right ~lo:(lo + half) ~ways:half ~way
    end

type repl_slot = { mutable s_tag : int; mutable s_dirty : bool }

type repl_set =
  (* most recent first; (tag, dirty) *)
  | Order of { mutable entries : (int * bool) list; promote_on_hit : bool }
  | Slotted of {
      slots : repl_slot array; (* s_tag = -1 when free *)
      pstate : pstate;
    }

and pstate =
  | Ptree of ptree
  | Pages of { ages : int array; hit_ages : int array; fill_age : int }
  | Pbits of bool array

let repl_cache (p : Params.cache) stream =
  Params.validate_cache p;
  let ways = p.Params.c_assoc in
  let sets = p.Params.c_size / p.Params.c_line / ways in
  let make_set () =
    match p.Params.c_policy with
    | Params.True_lru -> Order { entries = []; promote_on_hit = true }
    | Params.Fifo -> Order { entries = []; promote_on_hit = false }
    | Params.Tree_plru ->
      Slotted
        {
          slots = Array.init ways (fun _ -> { s_tag = -1; s_dirty = false });
          pstate = Ptree (ptree_make ways);
        }
    | Params.Qlru_h11_m1 | Params.Qlru_h00_m0 ->
      Slotted
        {
          slots = Array.init ways (fun _ -> { s_tag = -1; s_dirty = false });
          pstate =
            Pages
              {
                ages = Array.make ways 3;
                hit_ages =
                  (if p.Params.c_policy = Params.Qlru_h11_m1 then
                     [| 0; 0; 1; 1 |]
                   else [| 0; 0; 0; 0 |]);
                fill_age =
                  (if p.Params.c_policy = Params.Qlru_h11_m1 then 1 else 0);
              };
        }
    | Params.Mru_n ->
      Slotted
        {
          slots = Array.init ways (fun _ -> { s_tag = -1; s_dirty = false });
          pstate = Pbits (Array.make ways false);
        }
  in
  let table = Array.init sets (fun _ -> make_set ()) in
  let global_line ~set tag = (tag * sets) + set in
  let access (addr, write) =
    let line = addr / p.Params.c_line in
    let set = line mod sets in
    let tag = line / sets in
    match table.(set) with
    | Order o -> (
      match List.assoc_opt tag o.entries with
      | Some dirty ->
        let dirty = dirty || write in
        if o.promote_on_hit then
          o.entries <- (tag, dirty) :: List.remove_assoc tag o.entries
        else
          o.entries <-
            List.map
              (fun (t, d) -> if t = tag then (t, dirty) else (t, d))
              o.entries;
        { o_hit = true; o_writeback = false; o_evicted_line = None }
      | None ->
        if List.length o.entries < ways then begin
          o.entries <- (tag, write) :: o.entries;
          { o_hit = false; o_writeback = false; o_evicted_line = None }
        end
        else begin
          (* the victim is the last entry: least recently used, or
             oldest fill *)
          let rec split_last acc = function
            | [] -> assert false
            | [ last ] -> (List.rev acc, last)
            | e :: rest -> split_last (e :: acc) rest
          in
          let kept, (vtag, vdirty) = split_last [] o.entries in
          o.entries <- (tag, write) :: kept;
          {
            o_hit = false;
            o_writeback = vdirty;
            o_evicted_line = Some (global_line ~set vtag);
          }
        end)
    | Slotted s -> (
      let hit_way = ref (-1) in
      Array.iteri
        (fun i slot -> if slot.s_tag = tag then hit_way := i)
        s.slots;
      let touch way =
        match s.pstate with
        | Ptree t -> ptree_touch t ~lo:0 ~ways ~way
        | Pages q -> q.ages.(way) <- q.hit_ages.(q.ages.(way))
        | Pbits bits ->
          bits.(way) <- true;
          if Array.for_all Fun.id bits then begin
            Array.fill bits 0 ways false;
            bits.(way) <- true
          end
      and fill way =
        match s.pstate with
        | Ptree t -> ptree_touch t ~lo:0 ~ways ~way
        | Pages q -> q.ages.(way) <- q.fill_age
        | Pbits bits -> bits.(way) <- false
      and victim () =
        match s.pstate with
        | Ptree t -> ptree_victim t ~lo:0 ~ways
        | Pages q ->
          let max_age = Array.fold_left max 0 q.ages in
          if max_age < 3 then
            Array.iteri (fun i a -> q.ages.(i) <- a + (3 - max_age)) q.ages;
          let rec first i = if q.ages.(i) = 3 then i else first (i + 1) in
          first 0
        | Pbits bits ->
          let rec first i =
            if i >= ways then 0 else if not bits.(i) then i else first (i + 1)
          in
          first 0
      in
      if !hit_way >= 0 then begin
        let slot = s.slots.(!hit_way) in
        slot.s_dirty <- slot.s_dirty || write;
        touch !hit_way;
        { o_hit = true; o_writeback = false; o_evicted_line = None }
      end
      else begin
        let free = ref (-1) in
        for i = ways - 1 downto 0 do
          if s.slots.(i).s_tag = -1 then free := i
        done;
        let way = if !free >= 0 then !free else victim () in
        let slot = s.slots.(way) in
        let evicted =
          if slot.s_tag = -1 then None
          else Some (global_line ~set slot.s_tag)
        in
        let wb = slot.s_tag <> -1 && slot.s_dirty in
        slot.s_tag <- tag;
        slot.s_dirty <- write;
        fill way;
        { o_hit = false; o_writeback = wb; o_evicted_line = evicted }
      end)
  in
  List.map access stream

(* fully-associative LRU by stack distance: a reference hits iff its
   line was used before and at most [capacity - 1] distinct lines were
   used since *)
let stack_hits ~capacity lines =
  let stack = ref [] in
  List.map
    (fun line ->
      let rec split depth acc = function
        | [] -> (None, List.rev acc)
        | x :: rest when x = line -> (Some depth, List.rev_append acc rest)
        | x :: rest -> split (depth + 1) (x :: acc) rest
      in
      let depth, rest = split 0 [] !stack in
      stack := line :: rest;
      match depth with Some d -> d < capacity | None -> false)
    lines

(* -- statistics --------------------------------------------------------- *)

let percentile xs ~p =
  match List.sort Float.compare xs with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    Some (List.nth sorted (max 0 (min (n - 1) (rank - 1))))

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let ss =
      List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
    in
    sqrt (ss /. float_of_int n)
  end

let spearman_distinct xs ys =
  let n = List.length xs in
  let rank vs v =
    1 + List.length (List.filter (fun u -> u < v) vs)
  in
  let d2 =
    List.fold_left2
      (fun acc x y ->
        let d = float_of_int (rank xs x - rank ys y) in
        acc +. (d *. d))
      0.0 xs ys
  in
  1.0 -. (6.0 *. d2 /. (float_of_int n *. float_of_int ((n * n) - 1)))
