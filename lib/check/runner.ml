module Prng = Mx_util.Prng

type outcome = Pass | Fail of string

type prop = {
  name : string;
  cost : int;
  max_size : int;
  run : seed:int -> size:int -> outcome;
}

let prop ?(cost = 1) ?(max_size = 10) name run =
  if cost < 1 || max_size < 1 then invalid_arg "Runner.prop";
  { name; cost; max_size; run }

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

let check cond fmt =
  Printf.ksprintf (fun s -> if cond then Pass else Fail s) fmt

let rec all_of = function
  | [] -> Pass
  | Pass :: rest -> all_of rest
  | (Fail _ as f) :: _ -> f

type failure = {
  prop_name : string;
  seed : int;
  size : int;
  shrunk_from : int;
  message : string;
}

type report = {
  suite : string;
  props : int;
  cases : int;
  failures : failure list;
}

let case_seed ~master ~prop_name i =
  Prng.subseed (Prng.subseed master (Hashtbl.hash prop_name)) i

(* A generator bug must read as a failure of the property that drew it,
   never as a crash of the whole run. *)
let run_case p ~seed ~size =
  try p.run ~seed ~size with
  | exn -> Fail (Printf.sprintf "uncaught %s" (Printexc.to_string exn))

let shrink p ~seed ~size ~message =
  let rec scan s =
    if s >= size then
      { prop_name = p.name; seed; size; shrunk_from = size; message }
    else
      match run_case p ~seed ~size:s with
      | Fail msg ->
        { prop_name = p.name; seed; size = s; shrunk_from = size;
          message = msg }
      | Pass -> scan (s + 1)
  in
  scan 1

let run_prop ~master ~count p =
  let iters = max 1 (count / p.cost) in
  let rec loop i =
    if i >= iters then (iters, None)
    else begin
      let seed = case_seed ~master ~prop_name:p.name i in
      let size = 1 + (i mod p.max_size) in
      match run_case p ~seed ~size with
      | Pass -> loop (i + 1)
      | Fail message -> (i + 1, Some (shrink p ~seed ~size ~message))
    end
  in
  loop 0

let run_fixed ~seed ~size p =
  match run_case p ~seed ~size with
  | Pass -> None
  | Fail message ->
    Some { prop_name = p.name; seed; size; shrunk_from = size; message }

let run_suite ?fixed ~master ~count (suite, props) =
  let cases = ref 0 and failures = ref [] in
  List.iter
    (fun p ->
      let n, failure =
        match fixed with
        | Some (seed, size) -> (1, run_fixed ~seed ~size p)
        | None -> run_prop ~master ~count p
      in
      cases := !cases + n;
      Option.iter (fun f -> failures := f :: !failures) failure)
    props;
  { suite; props = List.length props; cases = !cases;
    failures = List.rev !failures }

let repro ~suite f =
  Printf.sprintf "CONEX_CHECK_SEED=%d CONEX_CHECK_SIZE=%d conex check --suite %s"
    f.seed f.size suite

let env_fixed () =
  match Option.bind (Sys.getenv_opt "CONEX_CHECK_SEED") int_of_string_opt with
  | None -> None
  | Some seed ->
    let size =
      match
        Option.bind (Sys.getenv_opt "CONEX_CHECK_SIZE") int_of_string_opt
      with
      | Some s when s >= 1 -> s
      | _ -> 1
    in
    Some (seed, size)
