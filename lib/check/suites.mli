(** The invariant/metamorphic/oracle catalogue run by [conex check].

    Each suite bundles the properties of one subsystem:

    - [pareto]      front vs quadratic oracle, idempotence, permutation
                    invariance, front2/front agreement
    - [cluster]     levels vs naive bottom-up oracle, conservation laws,
                    ordered-variant invariants
    - [assign]      enumeration vs exhaustive cartesian oracle,
                    feasibility, deduplication
    - [trace]       Trace_io round-trips
    - [stats]       percentile/stddev/spearman vs naive oracles,
                    totality on degenerate inputs
    - [fingerprint] relabeling invariance, mutation sensitivity,
                    assembly-order insensitivity, content addressing
    - [sim]         cycle simulator vs straight-line replay oracle,
                    determinism, sampled-vs-exact bounds
    - [eval]        cached evaluation vs direct recomputation,
                    cache-on/off equality, Exact-promotes-Sampled
    - [pipeline]    whole-flow sanity under random workloads and
                    architectures (never crashes, metrics finite)
    - [explore]     cache-on/off and jobs=1/jobs=N run parity,
                    estimate-vs-exact rank correlation floors,
                    event-log terminal-verdict coverage
    - [replacement] per-policy differential fuzz of {!Mx_mem.Cache}
                    against the {!Oracle.repl_cache} reference
                    simulators (identical hit/writeback/evict
                    sequences for every policy), plus metamorphic
                    cross-policy invariants: fully-associative
                    true-LRU equals the stack-distance oracle, all
                    policies agree on compulsory misses, true-LRU
                    misses are monotone in associativity
    - [persist]     the persistent evaluation store: warm-start
                    {!Conex.Explore.run} equals the cold run and is
                    served from disk, Exact-serves-Sampled promotion
                    survives the disk tier, stale-revision segments
                    read as empty while the original revision keeps
                    its data, torn tails lose only the uncommitted
                    record, corrupt records and everything behind
                    them are quarantined

    Three hidden suites (reachable by name, excluded from {!all}) carry
    intentionally broken oracle comparisons used by the CLI contract
    tests to exercise the failure path end to end — counterexample
    found, shrunk, reproduction line printed, exit 1: [selftest]
    (sample-variance stddev oracle), [replacement-selftest] (a
    promotion-blind true-LRU oracle) and [persist-selftest] (digest
    verification disabled over a corrupted store). *)

val names : string list
(** The public suite names, in the order {!all} runs them. *)

val all : ?jobs:int -> unit -> (string * Runner.prop list) list
(** Every public suite.  [jobs] (default
    {!Mx_util.Task_pool.default_jobs}) is the parallel arm width used
    by the jobs-parity properties of the [explore] suite. *)

val find : ?jobs:int -> string -> Runner.prop list option
(** Look up one suite by name; resolves the hidden [selftest] and
    [replacement-selftest] suites too. *)
