module Prng = Mx_util.Prng
module Region = Mx_trace.Region
module Synthetic = Mx_trace.Synthetic
module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Channel = Mx_connect.Channel
module Cluster = Mx_connect.Cluster

let grid_points g ~size ~dim =
  let n = 1 + Prng.int g ~bound:(5 * size) in
  List.init n (fun _ ->
      Array.init dim (fun _ -> float_of_int (Prng.int g ~bound:6)))

let continuous_points g ~size ~dim =
  let n = 1 + Prng.int g ~bound:(5 * size) in
  List.init n (fun _ -> Array.init dim (fun _ -> Prng.float g))

let floats g ~size = List.init size (fun _ -> Prng.float g *. 100.0)

let onchip_nodes =
  [| Channel.Cpu; Channel.Cache; Channel.Sram; Channel.Sbuf; Channel.Lldma |]

let channel g =
  (* dyadic bandwidths (k/8) keep cross-level sums float-exact *)
  let bandwidth = float_of_int (1 + Prng.int g ~bound:64) /. 8.0 in
  let txn_bytes = Prng.pick g [| 4.0; 8.0; 16.0; 32.0 |] in
  if Prng.bool g ~p:0.3 then
    { Channel.src = Prng.pick g onchip_nodes; dst = Channel.Dram;
      bandwidth; txn_bytes }
  else begin
    let src = Prng.pick g onchip_nodes in
    let rec pick_dst () =
      let d = Prng.pick g onchip_nodes in
      if d = src then pick_dst () else d
    in
    { Channel.src; dst = pick_dst (); bandwidth; txn_bytes }
  end

let channels g ~size =
  List.init (1 + Prng.int g ~bound:(min 8 (size + 1))) (fun _ -> channel g)

let clusters g ~size =
  let cls = ref (Cluster.initial (channels g ~size)) in
  for _ = 1 to Prng.int g ~bound:4 do
    let arr = Array.of_list !cls in
    if Array.length arr >= 2 then begin
      let i = Prng.int g ~bound:(Array.length arr) in
      let j = Prng.int g ~bound:(Array.length arr) in
      if i <> j && arr.(i).Cluster.offchip = arr.(j).Cluster.offchip then
        cls :=
          Cluster.merge arr.(i) arr.(j)
          :: List.filteri (fun k _ -> k <> i && k <> j) !cls
    end
  done;
  !cls

let pattern g =
  Prng.pick g
    [| Region.Stream; Region.Indexed; Region.Random_access;
       Region.Self_indirect; Region.Mixed |]

let workload g ~size =
  let nspecs = 1 + Prng.int g ~bound:(min 4 size) in
  let specs =
    List.init nspecs (fun i ->
        Synthetic.spec
          ~name:(Printf.sprintf "r%d" i)
          ~elems:(16 + Prng.int g ~bound:1024)
          ~share:(0.1 +. (Prng.float g *. 3.9))
          ~write_frac:(Prng.float g)
          ~skew:(0.2 +. Prng.float g)
          (pattern g))
  in
  let scale = (200 * size) + 100 + Prng.int g ~bound:200 in
  Synthetic.generate ~name:"gen" ~specs ~scale
    ~seed:(Prng.int g ~bound:1_000_000)

let cache g =
  let size_log = 9 + Prng.int g ~bound:6 in
  let line_log = 4 + Prng.int g ~bound:3 in
  let assoc =
    max 1 (min (1 lsl Prng.int g ~bound:3) (1 lsl (size_log - line_log)))
  in
  { Params.c_size = 1 lsl size_log; c_line = 1 lsl line_log;
    c_assoc = assoc; c_latency = 1; c_policy = Params.default_policy }

(* -- replacement-policy differential cases ------------------------------ *)

let repl_policy g =
  Prng.pick g (Array.of_list Params.all_policies)

let repl_geometry g ~size =
  (* tiny power-of-two geometries (1..8 ways, 1..4 sets) so short
     streams still fill sets and force evictions; associativity is
     always a power of two, keeping every policy (tree-plru included)
     applicable to the same geometry *)
  let ways = 1 lsl Prng.int g ~bound:(min 4 (1 + size)) in
  let sets = 1 lsl Prng.int g ~bound:3 in
  let line = 16 in
  { Params.c_size = sets * ways * line; c_line = line; c_assoc = ways;
    c_latency = 1; c_policy = Params.default_policy }

let repl_stream g ~size ~(geometry : Params.cache) =
  let lines = geometry.Params.c_size / geometry.Params.c_line in
  (* a line universe of twice the capacity keeps both reuse (hits) and
     conflict (evictions) frequent *)
  let universe = max 2 (2 * lines) in
  let n = (8 * size) + 1 + Prng.int g ~bound:(8 * size) in
  List.init n (fun _ ->
      let line = Prng.int g ~bound:universe in
      let addr =
        (line * geometry.Params.c_line)
        + Prng.int g ~bound:geometry.Params.c_line
      in
      (addr, Prng.bool g ~p:0.3))

let mem_arch_spec g (w : Mx_trace.Workload.t) ~label =
  let regions = w.Mx_trace.Workload.regions in
  let bindings = Array.make (List.length regions) Mem_arch.To_cache in
  let cache = cache g in
  let sbuf =
    if Prng.bool g ~p:0.5 then Some (List.hd Mx_mem.Module_lib.stream_buffers)
    else None
  and lldma =
    if Prng.bool g ~p:0.5 then Some (List.hd Mx_mem.Module_lib.lldmas)
    else None
  and want_sram = Prng.bool g ~p:0.3 in
  let sram_bytes = ref 0 in
  List.iter
    (fun (r : Region.t) ->
      match r.Region.hint with
      | Region.Stream when sbuf <> None ->
        bindings.(r.Region.id) <- Mem_arch.To_sbuf
      | Region.Self_indirect when lldma <> None ->
        bindings.(r.Region.id) <- Mem_arch.To_lldma
      | Region.Indexed when want_sram && r.Region.size <= 4096 ->
        bindings.(r.Region.id) <- Mem_arch.To_sram;
        sram_bytes := !sram_bytes + r.Region.size
      | _ -> ())
    regions;
  let sram =
    if !sram_bytes > 0 then Some (Mx_mem.Module_lib.sram_for_bytes !sram_bytes)
    else None
  in
  Mem_arch.make ~label ~cache ?sbuf ?lldma ?sram ~bindings ()

let mem_arch g w = mem_arch_spec g w ~label:"gen"

let conn_onchip =
  lazy
    [ Mx_connect.Component.by_name "ded32";
      Mx_connect.Component.by_name "mux32";
      Mx_connect.Component.by_name "ahb32" ]

let conn_offchip = lazy [ Mx_connect.Component.by_name "off32" ]

let conn g (brg : Mx_connect.Brg.t) =
  let conns =
    Mx_connect.Assign.enumerate_levels ~max_designs_per_level:32
      ~onchip:(Lazy.force conn_onchip) ~offchip:(Lazy.force conn_offchip)
      brg.Mx_connect.Brg.channels
  in
  match conns with
  | [] -> invalid_arg "Gen.conn: no feasible connectivity for this BRG"
  | l -> List.nth l (Prng.int g ~bound:(List.length l))

type pipeline = {
  p_workload : Mx_trace.Workload.t;
  p_arch : Mx_mem.Mem_arch.t;
  p_profile : Mx_mem.Mem_sim.stats;
  p_brg : Mx_connect.Brg.t;
}

let pipeline g ~size =
  let w = workload g ~size in
  let arch = mem_arch g w in
  let msim = Mx_mem.Mem_sim.create arch ~regions:w.Mx_trace.Workload.regions in
  let profile = Mx_mem.Mem_sim.run msim w.Mx_trace.Workload.trace in
  let brg = Mx_connect.Brg.build arch profile in
  { p_workload = w; p_arch = arch; p_profile = profile; p_brg = brg }
