(** Parameter records for every module in the memory IP library.

    These are the "IP datasheet" values APEX mixes and matches.  All
    latencies are in CPU cycles; sizes in bytes.  The library instances
    in {!Module_lib} provide the standard catalogue explored by the
    paper-scale experiments. *)

(** Replacement policy families (see {!Replacement} for semantics).
    [True_lru] is the historical behaviour and the default; the others
    are the reverse-engineered CPU families: FIFO, tree pseudo-LRU,
    two quad-age LRU variants and bit-pseudo-LRU with new-block
    insertion. *)
type policy =
  | True_lru
  | Fifo
  | Tree_plru
  | Qlru_h11_m1
  | Qlru_h00_m0
  | Mru_n

type cache = {
  c_size : int;  (** total data capacity in bytes; power of two *)
  c_line : int;  (** line size in bytes; power of two *)
  c_assoc : int;  (** associativity; [c_size / c_line] must be divisible *)
  c_latency : int;  (** hit latency, cycles *)
  c_policy : policy;  (** victim-selection policy; [True_lru] by default *)
}

val default_policy : policy
(** [True_lru]. *)

val all_policies : policy list
(** Every implemented policy, in a fixed presentation order. *)

val policy_to_string : policy -> string
(** Lower-case stable name, e.g. ["tree_plru"]. *)

val policy_tag : policy -> string
(** Short unambiguous code used inside structural fingerprints
    (["L"], ["F"], ["P"], ["Q1"], ["Q0"], ["M"]). *)

val policy_presets : (string * policy) list
(** CPU-style preset names (["haswell"], ["skylake"], ...) mapping a
    microarchitecture to its reverse-engineered replacement family. *)

val policy_of_string : string -> policy option
(** Parse a policy or preset name, case-insensitive, accepting ['-']
    for ['_']. *)

type sram = {
  s_size : int;  (** scratchpad capacity in bytes *)
  s_latency : int;  (** access latency, cycles *)
}

type stream_buffer = {
  sb_streams : int;  (** number of concurrent stream slots *)
  sb_line : int;  (** fetch granularity in bytes *)
  sb_depth : int;  (** prefetch depth in lines per stream *)
  sb_latency : int;  (** hit latency, cycles *)
}

type lldma = {
  ll_entries : int;  (** element buffer capacity *)
  ll_elem : int;  (** element size the DMA is programmed for, bytes *)
  ll_max_gap : int;
      (** how many intervening CPU accesses the DMA can tolerate while
          staying ahead of a pointer chase; beyond this the chase is
          considered restarted (miss) *)
  ll_latency : int;  (** hit latency, cycles *)
}

type victim = {
  v_entries : int;  (** fully-associative victim-cache lines *)
  v_latency : int;  (** extra cycles on a victim hit *)
}

type write_buffer = {
  wb_entries : int;  (** coalescing line-granular slots *)
  wb_drain : int;
      (** one slot drains to DRAM every [wb_drain] CPU accesses *)
}

type dram = {
  d_banks : int;
  d_row : int;  (** row-buffer size in bytes *)
  d_cas : int;  (** column access, cycles (row hit) *)
  d_rcd : int;  (** RAS-to-CAS, cycles *)
  d_rp : int;  (** precharge, cycles *)
}

val validate_cache : cache -> unit
(** @raise Invalid_argument on a malformed geometry (including a
    [Tree_plru] policy with non-power-of-two associativity). *)

val validate_dram : dram -> unit
val validate_victim : victim -> unit
val validate_write_buffer : write_buffer -> unit
val pp_cache : Format.formatter -> cache -> unit
val pp_sram : Format.formatter -> sram -> unit
val pp_stream_buffer : Format.formatter -> stream_buffer -> unit
val pp_lldma : Format.formatter -> lldma -> unit
val pp_victim : Format.formatter -> victim -> unit
val pp_write_buffer : Format.formatter -> write_buffer -> unit
