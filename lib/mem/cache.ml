type t = {
  p : Params.cache;
  sets : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  dirty : bool array;
  repl : Replacement.t array; (* one policy state per set *)
  mutable n_access : int;
  mutable n_miss : int;
  mutable n_wb : int;
}

type result = { hit : bool; fill : bool; writeback : bool; evicted_line : int option }

let create p =
  Params.validate_cache p;
  let sets = p.Params.c_size / p.Params.c_line / p.Params.c_assoc in
  let ways = sets * p.Params.c_assoc in
  {
    p;
    sets;
    tags = Array.make ways (-1);
    dirty = Array.make ways false;
    repl =
      Array.init sets (fun _ ->
          Replacement.create p.Params.c_policy ~ways:p.Params.c_assoc);
    n_access = 0;
    n_miss = 0;
    n_wb = 0;
  }

let params t = t.p

let access t ~addr ~write =
  t.n_access <- t.n_access + 1;
  let line = addr / t.p.Params.c_line in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let base = set * t.p.Params.c_assoc in
  let assoc = t.p.Params.c_assoc in
  let repl = t.repl.(set) in
  (* look for a hit *)
  let way = ref (-1) in
  for i = base to base + assoc - 1 do
    if t.tags.(i) = tag then way := i
  done;
  if !way >= 0 then begin
    Replacement.touch repl ~way:(!way - base);
    if write then t.dirty.(!way) <- true;
    { hit = true; fill = false; writeback = false; evicted_line = None }
  end
  else begin
    t.n_miss <- t.n_miss + 1;
    (* choose victim: lowest-index invalid way; only a full set consults
       the replacement policy *)
    let victim = ref (-1) in
    (try
       for i = base to base + assoc - 1 do
         if t.tags.(i) = -1 then begin
           victim := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !victim < 0 then victim := base + Replacement.victim repl;
    let had_line = t.tags.(!victim) <> -1 in
    let wb = had_line && t.dirty.(!victim) in
    if wb then t.n_wb <- t.n_wb + 1;
    let evicted_line =
      if had_line then Some ((t.tags.(!victim) * t.sets) + set) else None
    in
    t.tags.(!victim) <- tag;
    t.dirty.(!victim) <- write;
    Replacement.fill repl ~way:(!victim - base);
    { hit = false; fill = true; writeback = wb; evicted_line }
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.iter Replacement.reset t.repl;
  t.n_access <- 0;
  t.n_miss <- 0;
  t.n_wb <- 0

let accesses t = t.n_access
let misses t = t.n_miss

let miss_ratio t =
  if t.n_access = 0 then 0.0
  else float_of_int t.n_miss /. float_of_int t.n_access

let writebacks t = t.n_wb
