(** A memory-modules architecture: which modules exist and which data
    region is served by which module.

    This is the object APEX produces (the labelled points of the paper's
    Fig. 3) and the starting point of ConEx.  [To_cache] bindings fall
    through to off-chip DRAM when the architecture has no cache, which
    models the degenerate all-off-chip designs. *)

type binding =
  | To_cache  (** served by the cache (or directly by DRAM if none) *)
  | To_sram  (** mapped into the on-chip scratchpad *)
  | To_sbuf  (** served by the stream buffer *)
  | To_lldma  (** served by the linked-list DMA *)

type t = private {
  label : string;
  cache : Params.cache option;
  sbuf : Params.stream_buffer option;
  lldma : Params.lldma option;
  sram : Params.sram option;
  l2 : Params.cache option;
      (** unified second-level cache between the L1 cache and DRAM
          (requires [cache]; its line must be >= the L1 line) *)
  victim : Params.victim option;
      (** victim buffer behind the cache (requires [cache]) *)
  wbuf : Params.write_buffer option;
      (** posted-write buffer for direct off-chip stores *)
  bindings : binding array;  (** indexed by region id *)
}

val make :
  label:string ->
  ?cache:Params.cache ->
  ?sbuf:Params.stream_buffer ->
  ?lldma:Params.lldma ->
  ?sram:Params.sram ->
  ?l2:Params.cache ->
  ?victim:Params.victim ->
  ?wbuf:Params.write_buffer ->
  bindings:binding array ->
  unit ->
  t
(** @raise Invalid_argument when a binding targets a module the
    architecture does not contain, when a victim buffer is requested
    without a cache, or when parameters are malformed. *)

val cost_gates : t -> int
(** Total on-chip memory cost (off-chip DRAM is not on-chip area). *)

val has_module : t -> binding -> bool
(** Whether the module class targeted by this binding kind exists. *)

val binding_of : t -> region:int -> binding
(** @raise Invalid_argument for an out-of-range region id. *)

val fingerprint : t -> string
(** Canonical structural fingerprint: every parameter of every present
    module plus the binding table, in one fixed field order — injective
    over structure, so it is safe as a content-address for evaluation
    results.  The [label] is excluded: identically-structured
    architectures fingerprint identically whatever they are called.
    Any single parameter change produces a different fingerprint. *)

val describe : t -> string
(** Short human description, e.g. ["cache 8KB/32/2 + sbuf(4) + lldma"]. *)

val pp : Format.formatter -> t -> unit
