(** Gate-count cost model for memory modules.

    Follows the "basic gates" accounting of the paper (Figures 3/6 and
    Table 1 report cost in gates): an SRAM bit costs a calibrated number
    of gate equivalents, plus per-module overheads for decoders, tag
    comparators and control.  Calibrated so that the cache-only compress
    architecture lands near the paper's ~0.48 M gates. *)

val gates_per_bit : float
(** Gate equivalents per on-chip SRAM bit (includes sense/decode
    amortisation). *)

val cache : Params.cache -> int
(** Data + tag + status bits, comparators, replacement state and
    control.  Replacement state is policy-aware
    ({!Replacement.state_bits_per_set}): true LRU pays
    [ways * log2 ways] stamp bits per set, tree-PLRU [ways - 1],
    QLRU [2 * ways], MRU_N [ways], FIFO [log2 ways]. *)

val sram : Params.sram -> int
val stream_buffer : Params.stream_buffer -> int
val lldma : Params.lldma -> int
(** Element buffer plus the pointer-dereference engine. *)

val victim : Params.victim -> line:int -> int
(** Fully-associative line buffer: data, full tags, comparators. *)

val write_buffer : Params.write_buffer -> int
(** Coalescing slots plus drain control. *)
