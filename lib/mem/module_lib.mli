(** The memory IP library: the standard catalogue of module instances
    that APEX mixes and matches during exploration. *)

val caches : Params.cache list
(** Direct-mapped through 4-way caches from 2 KB to 64 KB. *)

val stream_buffers : Params.stream_buffer list
val lldmas : Params.lldma list

val l2_caches : Params.cache list
(** Unified second-level cache options (larger line, slower access). *)

val victims : Params.victim list
(** Victim-buffer options explored behind caches. *)

val write_buffers : Params.write_buffer list
(** Posted-write-buffer options for direct off-chip stores. *)

val with_policy : Params.policy -> Params.cache -> Params.cache
(** The same geometry under another replacement policy — the
    [--policies] cross-product over the cache catalogue. *)

val default_dram : Params.dram
(** SDRAM-class off-chip part used by all experiments. *)

val sram_latency : int
(** Scratchpad access latency (cycles). *)

val sram_for_bytes : int -> Params.sram
(** Scratchpad instance sized (rounded up to 64 B) for a footprint.
    @raise Invalid_argument for a non-positive footprint. *)
