let caches =
  let mk size line assoc latency =
    { Params.c_size = size; c_line = line; c_assoc = assoc;
      c_latency = latency; c_policy = Params.default_policy }
  in
  [
    mk (2 * 1024) 16 1 1;
    mk (4 * 1024) 16 1 1;
    mk (4 * 1024) 32 2 1;
    mk (8 * 1024) 32 1 1;
    mk (8 * 1024) 32 2 1;
    mk (16 * 1024) 32 2 1;
    mk (16 * 1024) 32 4 2;
    mk (32 * 1024) 32 2 2;
    mk (32 * 1024) 64 4 2;
    mk (64 * 1024) 64 4 2;
  ]

let stream_buffers =
  let mk streams line depth latency =
    { Params.sb_streams = streams; sb_line = line; sb_depth = depth;
      sb_latency = latency }
  in
  [ mk 2 32 2 1; mk 4 32 4 1; mk 4 64 4 1 ]

let lldmas =
  let mk entries elem gap latency =
    { Params.ll_entries = entries; ll_elem = elem; ll_max_gap = gap;
      ll_latency = latency }
  in
  [ mk 16 8 6 1; mk 64 8 6 1 ]

let l2_caches =
  [ { Params.c_size = 64 * 1024; c_line = 64; c_assoc = 4; c_latency = 4;
      c_policy = Params.default_policy } ]

let victims = [ { Params.v_entries = 8; v_latency = 1 } ]

let write_buffers = [ { Params.wb_entries = 4; wb_drain = 4 } ]

let default_dram =
  { Params.d_banks = 4; d_row = 2048; d_cas = 10; d_rcd = 8; d_rp = 8 }

(* Re-policy a catalogue cache; explore's --policies cross-product. *)
let with_policy policy (c : Params.cache) = { c with Params.c_policy = policy }

let sram_latency = 1

let sram_for_bytes bytes =
  if bytes <= 0 then invalid_arg "Module_lib.sram_for_bytes: non-positive size";
  let rounded = (bytes + 63) / 64 * 64 in
  { Params.s_size = rounded; s_latency = sram_latency }
