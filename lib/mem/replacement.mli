(** Pluggable per-set cache replacement policies.

    One [t] tracks the victim-selection state of a single cache set;
    {!Cache} owns an array of them, one per set.  Implemented families
    (the reverse-engineered CPU policies from the CacheTrace line of
    work, plus the two classical baselines):

    - {b True_lru} — per-way last-use stamps from a per-set clock; the
      victim is the lowest stamp.  Bit-for-bit the historical cache
      behaviour.  [ways * log2 ways] state bits per set.
    - {b Fifo} — stamps written on fill only, hits do not promote; the
      victim is the oldest fill.  [log2 ways] bits per set (a fill
      pointer in hardware).
    - {b Tree_plru} — the binary-tree pseudo-LRU of Core 2-era L1s:
      [ways - 1] direction bits per set, each pointing the victim walk
      away from the recently used subtree.  Requires power-of-two ways.
    - {b Qlru_h11_m1} / {b Qlru_h00_m0} — quad-age LRU (Haswell /
      Coffee Lake style): one 2-bit age per way, hits rewriting the age
      through a hit table (H11: ages 2,3 drop to 1; H00: any hit drops
      to 0), fills inserting at age 1 (M1) or 0 (M0); the victim is the
      lowest-index way of age 3 after normalising the set's maximum age
      up to 3.  [2 * ways] bits per set.
    - {b Mru_n} — bit-PLRU with new-block insertion (Nehalem / Sandy
      Bridge style): one bit per way, set on hit (clearing the others
      when the set would saturate) and left clear on fill; the victim
      is the lowest-index clear bit.  [ways] bits per set.

    Contract with {!Cache.access}: [touch] on every hit; [victim] only
    when every way holds a valid line (the cache claims invalid ways
    itself, lowest index first); [fill] on every miss fill.  All
    transitions are deterministic and every victim choice breaks
    remaining ties toward the lowest way index. *)

type t

val create : Params.policy -> ways:int -> t
(** @raise Invalid_argument on non-positive [ways], or non-power-of-two
    [ways] for [Tree_plru]. *)

val policy : t -> Params.policy
val ways : t -> int

val touch : t -> way:int -> unit
(** Record a hit on [way].  @raise Invalid_argument on a bad way. *)

val fill : t -> way:int -> unit
(** Record a miss fill into [way].  @raise Invalid_argument on a bad
    way. *)

val victim : t -> int
(** The way to evict, assuming every way is valid.  May advance
    internal state (QLRU age normalisation); calling it repeatedly
    without an intervening [fill] returns the same way. *)

val reset : t -> unit
(** Return to the post-[create] state. *)

val state_bits_per_set : Params.policy -> ways:int -> int
(** Hardware state bits one set of [ways] ways costs under the policy
    (see the per-family accounting above).  For [True_lru] this equals
    the historical per-line [log2 assoc] charge summed over a set, so
    default-policy gate counts are unchanged.
    @raise Invalid_argument on non-positive [ways]. *)
