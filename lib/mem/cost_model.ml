let gates_per_bit = 1.7

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let of_bits bits = int_of_float (float_of_int bits *. gates_per_bit)

let cache (c : Params.cache) =
  Params.validate_cache c;
  let data_bits = c.c_size * 8 in
  let lines = c.c_size / c.c_line in
  let sets = lines / c.c_assoc in
  let tag_bits_per_line = 32 - log2i sets - log2i c.c_line in
  (* +2 status bits (valid, dirty) per line; replacement state is
     charged per set by the policy's own accounting (true LRU's
     ways*log2(ways) stamp bits per set equal the historical
     log2(assoc) bits per line, so default costs are unchanged) *)
  let line_meta = tag_bits_per_line + 2 in
  let repl_bits =
    sets * Replacement.state_bits_per_set c.c_policy ~ways:c.c_assoc
  in
  let comparators = c.c_assoc * tag_bits_per_line * 6 in
  let control = 3000 + (c.c_assoc * 500) in
  of_bits (data_bits + (lines * line_meta) + repl_bits) + comparators + control

let sram (s : Params.sram) =
  if s.s_size <= 0 then invalid_arg "Cost_model.sram: non-positive size";
  of_bits (s.s_size * 8) + 1500

let stream_buffer (s : Params.stream_buffer) =
  let data_bits = s.sb_streams * s.sb_depth * s.sb_line * 8 in
  of_bits data_bits + (s.sb_streams * 800) + 2000

let lldma (l : Params.lldma) =
  let data_bits = l.ll_entries * l.ll_elem * 8 in
  of_bits data_bits + 4500

let victim (v : Params.victim) ~line =
  Params.validate_victim v;
  let data_bits = v.v_entries * line * 8 in
  let tag_bits = v.v_entries * 28 in
  of_bits (data_bits + tag_bits) + (v.v_entries * 28 * 6) + 800

let write_buffer (w : Params.write_buffer) =
  Params.validate_write_buffer w;
  (* 16-byte coalescing slots plus address CAM and drain control *)
  of_bits (w.wb_entries * 16 * 8) + (w.wb_entries * 28 * 6) + 600
