(** Set-associative write-back, write-allocate cache with a pluggable
    replacement policy ({!Params.cache.c_policy}, true LRU by default).

    The workhorse on-chip module of every traditional architecture in
    the paper (designs [a]/[b] of Fig. 6 are cache-only).  The simulator
    is state-accurate: hits, misses, fills and dirty evictions are all
    derived from the actual tag array, so miss ratios respond correctly
    to size, line, associativity and policy changes.

    {b Victim tie-breaking contract} (load-bearing for determinism, and
    pinned by regression tests):

    - on a miss, invalid ways are claimed first, in ascending way-index
      order, before the replacement policy is consulted;
    - only a set whose every way holds a valid line asks
      {!Replacement.victim} for the eviction way, and every policy
      breaks its remaining ties toward the lowest way index (for
      [True_lru], equal stamps — which only arise before the set has
      been filled — resolve to the lowest way).

    Together these make the full hit/miss/evict sequence a pure
    function of the access stream and the cache parameters. *)

type t

type result = {
  hit : bool;
  fill : bool;  (** a line was fetched from the next level *)
  writeback : bool;  (** a dirty line was evicted to the next level *)
  evicted_line : int option;
      (** global line number of the displaced line, if any (feeds the
          victim cache) *)
}

val create : Params.cache -> t
(** @raise Invalid_argument via {!Params.validate_cache}. *)

val params : t -> Params.cache

val access : t -> addr:int -> write:bool -> result
(** One CPU reference.  Aligned internally to the line size. *)

val reset : t -> unit
(** Invalidate all lines (drops dirty data — used between independent
    experiment runs only). *)

val accesses : t -> int
val misses : t -> int

val miss_ratio : t -> float
(** 0.0 before any access. *)

val writebacks : t -> int
