(* Pluggable per-set victim selection.  One [t] tracks the way state of
   a single cache set; the cache owns an array of them, one per set.

   The contract with Cache.access:
   - [touch] is called on every hit, with the hit way;
   - [victim] is consulted only when every way of the set holds a valid
     line (the cache claims invalid ways itself, lowest index first);
   - [fill] is called on every miss fill, with the filled way (whether
     it was an invalid way or the policy's victim).

   All state transitions are deterministic, and all victim choices
   break remaining ties toward the lowest way index. *)

type state =
  (* True LRU and FIFO share the stamp representation: a per-set clock
     and one stamp per way.  True_lru restamps on touch and fill (last
     use); Fifo restamps on fill only (insertion order). *)
  | Stamps of { stamps : int array; mutable clock : int; on_touch : bool }
  (* Tree-PLRU: ways-1 bits, heap-indexed (node n has children 2n+1 /
     2n+2; leaf k is heap index ways-1+k).  A false bit sends the
     victim walk left, true right; touching a way points every bit on
     its root path at the sibling subtree. *)
  | Plru of { bits : bool array }
  (* QLRU: one 2-bit age per way.  A hit rewrites the age through the
     4-entry hit table; a fill inserts at the fill age.  The victim is
     the lowest-index way of age 3, after shifting all ages up by
     (3 - max age) when no way is at age 3. *)
  | Qlru of { ages : int array; hit_ages : int array; fill_age : int }
  (* MRU_N (bit-PLRU with new-block insertion): one bit per way.  A hit
     sets the way's bit, clearing all others first if that would
     saturate the set; a fill leaves the new block's bit clear.  The
     victim is the lowest-index way with a clear bit. *)
  | Mru of { bits : bool array }

type t = { policy : Params.policy; ways : int; state : state }

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create policy ~ways =
  if ways <= 0 then invalid_arg "Replacement.create: non-positive ways";
  let state =
    match (policy : Params.policy) with
    | Params.True_lru ->
      Stamps { stamps = Array.make ways 0; clock = 0; on_touch = true }
    | Params.Fifo ->
      Stamps { stamps = Array.make ways 0; clock = 0; on_touch = false }
    | Params.Tree_plru ->
      if not (is_pow2 ways) then
        invalid_arg "Replacement.create: tree-plru needs power-of-two ways";
      Plru { bits = Array.make (max 0 (ways - 1)) false }
    | Params.Qlru_h11_m1 ->
      Qlru { ages = Array.make ways 3; hit_ages = [| 0; 0; 1; 1 |]; fill_age = 1 }
    | Params.Qlru_h00_m0 ->
      Qlru { ages = Array.make ways 3; hit_ages = [| 0; 0; 0; 0 |]; fill_age = 0 }
    | Params.Mru_n -> Mru { bits = Array.make ways false }
  in
  { policy; ways; state }

let policy t = t.policy
let ways t = t.ways

let plru_touch bits ways ~way =
  let n = ref (ways - 1 + way) in
  while !n > 0 do
    let parent = (!n - 1) / 2 in
    (* point the parent at the sibling subtree *)
    bits.(parent) <- !n = (2 * parent) + 1;
    n := parent
  done

let mru_set bits ~way =
  bits.(way) <- true;
  if Array.for_all (fun b -> b) bits then begin
    Array.fill bits 0 (Array.length bits) false;
    bits.(way) <- true
  end

let touch t ~way =
  if way < 0 || way >= t.ways then invalid_arg "Replacement.touch: bad way";
  match t.state with
  | Stamps s ->
    if s.on_touch then begin
      s.clock <- s.clock + 1;
      s.stamps.(way) <- s.clock
    end
  | Plru p -> plru_touch p.bits t.ways ~way
  | Qlru q -> q.ages.(way) <- q.hit_ages.(q.ages.(way))
  | Mru m -> mru_set m.bits ~way

let fill t ~way =
  if way < 0 || way >= t.ways then invalid_arg "Replacement.fill: bad way";
  match t.state with
  | Stamps s ->
    s.clock <- s.clock + 1;
    s.stamps.(way) <- s.clock
  | Plru p -> plru_touch p.bits t.ways ~way
  | Qlru q -> q.ages.(way) <- q.fill_age
  | Mru m -> m.bits.(way) <- false

let victim t =
  match t.state with
  | Stamps s ->
    (* lowest stamp; the strict < keeps the lowest index on ties *)
    let v = ref 0 in
    for i = 1 to t.ways - 1 do
      if s.stamps.(i) < s.stamps.(!v) then v := i
    done;
    !v
  | Plru p ->
    let n = ref 0 in
    while !n < t.ways - 1 do
      n := (2 * !n) + 1 + (if p.bits.(!n) then 1 else 0)
    done;
    !n - (t.ways - 1)
  | Qlru q ->
    let max_age = Array.fold_left max 0 q.ages in
    if max_age < 3 then begin
      let d = 3 - max_age in
      Array.iteri (fun i a -> q.ages.(i) <- a + d) q.ages
    end;
    let v = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if q.ages.(i) = 3 then begin
           v := i;
           raise Exit
         end
       done
     with Exit -> ());
    !v
  | Mru m ->
    let v = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if not m.bits.(i) then begin
           v := i;
           raise Exit
         end
       done
     with Exit -> ());
    !v

let reset t =
  match t.state with
  | Stamps s ->
    Array.fill s.stamps 0 t.ways 0;
    s.clock <- 0
  | Plru p -> Array.fill p.bits 0 (Array.length p.bits) false
  | Qlru q -> Array.fill q.ages 0 t.ways 3
  | Mru m -> Array.fill m.bits 0 t.ways false

(* Hardware state-bit budget per set, charged by the cost model.  For
   True_lru this is [ways * log2 ways] stamp bits per set — exactly the
   historical [log2 assoc] bits per line — so default-policy gate counts
   are unchanged by the policy refactor. *)
let state_bits_per_set (policy : Params.policy) ~ways =
  if ways <= 0 then invalid_arg "Replacement.state_bits_per_set";
  match policy with
  | Params.True_lru -> ways * log2i ways
  | Params.Fifo -> log2i ways
  | Params.Tree_plru -> ways - 1
  | Params.Qlru_h11_m1 | Params.Qlru_h00_m0 -> 2 * ways
  | Params.Mru_n -> ways
