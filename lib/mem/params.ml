type policy =
  | True_lru
  | Fifo
  | Tree_plru
  | Qlru_h11_m1
  | Qlru_h00_m0
  | Mru_n

type cache = {
  c_size : int;
  c_line : int;
  c_assoc : int;
  c_latency : int;
  c_policy : policy;
}

let default_policy = True_lru

let all_policies =
  [ True_lru; Fifo; Tree_plru; Qlru_h11_m1; Qlru_h00_m0; Mru_n ]

let policy_to_string = function
  | True_lru -> "true_lru"
  | Fifo -> "fifo"
  | Tree_plru -> "tree_plru"
  | Qlru_h11_m1 -> "qlru_h11_m1"
  | Qlru_h00_m0 -> "qlru_h00_m0"
  | Mru_n -> "mru_n"

(* Short unambiguous code used inside structural fingerprints. *)
let policy_tag = function
  | True_lru -> "L"
  | Fifo -> "F"
  | Tree_plru -> "P"
  | Qlru_h11_m1 -> "Q1"
  | Qlru_h00_m0 -> "Q0"
  | Mru_n -> "M"

(* CPU-style preset names (CacheTrace's --cpu= switch): each maps a
   microarchitecture to the replacement family reverse-engineered for
   its L1/L2. *)
let policy_presets =
  [
    ("core2", Tree_plru);
    ("nehalem", Mru_n);
    ("sandybridge", Mru_n);
    ("haswell", Qlru_h11_m1);
    ("skylake", Qlru_h11_m1);
    ("coffeelake", Qlru_h00_m0);
  ]

let policy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let canon =
    String.map (function '-' -> '_' | c -> c) s
  in
  match
    List.find_opt (fun p -> policy_to_string p = canon) all_policies
  with
  | Some p -> Some p
  | None -> List.assoc_opt canon policy_presets
type sram = { s_size : int; s_latency : int }

type stream_buffer = {
  sb_streams : int;
  sb_line : int;
  sb_depth : int;
  sb_latency : int;
}

type lldma = { ll_entries : int; ll_elem : int; ll_max_gap : int; ll_latency : int }
type victim = { v_entries : int; v_latency : int }
type write_buffer = { wb_entries : int; wb_drain : int }
type dram = { d_banks : int; d_row : int; d_cas : int; d_rcd : int; d_rp : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_cache c =
  if not (is_pow2 c.c_size) then invalid_arg "cache size must be a power of two";
  if not (is_pow2 c.c_line) then invalid_arg "cache line must be a power of two";
  if c.c_line > c.c_size then invalid_arg "cache line larger than cache";
  if c.c_assoc <= 0 then invalid_arg "cache associativity must be positive";
  let lines = c.c_size / c.c_line in
  if lines mod c.c_assoc <> 0 then
    invalid_arg "cache lines not divisible by associativity";
  if c.c_latency <= 0 then invalid_arg "cache latency must be positive";
  if c.c_policy = Tree_plru && not (is_pow2 c.c_assoc) then
    invalid_arg "tree-plru requires a power-of-two associativity"

let validate_dram d =
  if d.d_banks <= 0 || not (is_pow2 d.d_banks) then
    invalid_arg "dram banks must be a positive power of two";
  if not (is_pow2 d.d_row) then invalid_arg "dram row must be a power of two";
  if d.d_cas <= 0 || d.d_rcd < 0 || d.d_rp < 0 then
    invalid_arg "dram timings must be non-negative (cas positive)"

let validate_victim v =
  if v.v_entries <= 0 || v.v_latency < 0 then
    invalid_arg "victim cache geometry must be positive"

let validate_write_buffer w =
  if w.wb_entries <= 0 || w.wb_drain <= 0 then
    invalid_arg "write buffer geometry must be positive"

let pp_cache fmt c =
  (* the default policy is left implicit so pre-policy output (labels,
     logs, golden pins) is unchanged for existing designs *)
  if c.c_policy = default_policy then
    Format.fprintf fmt "cache(%dKB,%dB line,%d-way,%dcy)" (c.c_size / 1024)
      c.c_line c.c_assoc c.c_latency
  else
    Format.fprintf fmt "cache(%dKB,%dB line,%d-way,%dcy,%s)" (c.c_size / 1024)
      c.c_line c.c_assoc c.c_latency
      (policy_to_string c.c_policy)

let pp_sram fmt s =
  Format.fprintf fmt "sram(%dB,%dcy)" s.s_size s.s_latency

let pp_stream_buffer fmt s =
  Format.fprintf fmt "sbuf(%dx%dB,depth %d,%dcy)" s.sb_streams s.sb_line
    s.sb_depth s.sb_latency

let pp_lldma fmt l =
  Format.fprintf fmt "lldma(%d entries,%dB elem,gap %d,%dcy)" l.ll_entries
    l.ll_elem l.ll_max_gap l.ll_latency

let pp_victim fmt v =
  Format.fprintf fmt "victim(%d lines,%dcy)" v.v_entries v.v_latency

let pp_write_buffer fmt w =
  Format.fprintf fmt "wbuf(%d slots,drain %d)" w.wb_entries w.wb_drain
