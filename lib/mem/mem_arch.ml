type binding = To_cache | To_sram | To_sbuf | To_lldma

type t = {
  label : string;
  cache : Params.cache option;
  sbuf : Params.stream_buffer option;
  lldma : Params.lldma option;
  sram : Params.sram option;
  l2 : Params.cache option;
  victim : Params.victim option;
  wbuf : Params.write_buffer option;
  bindings : binding array;
}

let make ~label ?cache ?sbuf ?lldma ?sram ?l2 ?victim ?wbuf ~bindings () =
  Option.iter Params.validate_cache cache;
  Option.iter Params.validate_cache l2;
  Option.iter Params.validate_victim victim;
  Option.iter Params.validate_write_buffer wbuf;
  if victim <> None && cache = None then
    invalid_arg "Mem_arch.make: victim buffer requires a cache";
  (match (l2, cache) with
  | Some _, None -> invalid_arg "Mem_arch.make: L2 requires an L1 cache"
  | Some l2p, Some l1p ->
    if l2p.Params.c_line < l1p.Params.c_line then
      invalid_arg "Mem_arch.make: L2 line must be >= L1 line";
    if l2p.Params.c_size < l1p.Params.c_size then
      invalid_arg "Mem_arch.make: L2 must be at least as large as L1"
  | None, _ -> ());
  Array.iteri
    (fun i b ->
      let missing name =
        invalid_arg
          (Printf.sprintf
             "Mem_arch.make: region %d bound to absent module %s" i name)
      in
      match b with
      | To_cache -> () (* falls through to DRAM when cache is absent *)
      | To_sram -> if sram = None then missing "sram"
      | To_sbuf -> if sbuf = None then missing "stream buffer"
      | To_lldma -> if lldma = None then missing "lldma")
    bindings;
  { label; cache; sbuf; lldma; sram; l2; victim; wbuf; bindings }

let cost_gates t =
  let opt f = function Some p -> f p | None -> 0 in
  let victim_cost =
    match (t.victim, t.cache) with
    | Some v, Some c -> Cost_model.victim v ~line:c.Params.c_line
    | _ -> 0
  in
  opt Cost_model.cache t.cache
  + opt Cost_model.cache t.l2
  + opt Cost_model.stream_buffer t.sbuf
  + opt Cost_model.lldma t.lldma
  + opt Cost_model.sram t.sram
  + victim_cost
  + opt Cost_model.write_buffer t.wbuf

let has_module t = function
  | To_cache -> t.cache <> None
  | To_sram -> t.sram <> None
  | To_sbuf -> t.sbuf <> None
  | To_lldma -> t.lldma <> None

let binding_of t ~region =
  if region < 0 || region >= Array.length t.bindings then
    invalid_arg "Mem_arch.binding_of: region id out of range";
  t.bindings.(region)

(* Canonical structural fingerprint: every parameter of every present
   module plus the region binding table, one unambiguous field order.
   The label is deliberately excluded — two architectures with the same
   modules and bindings behave identically whatever they are called, so
   they may share evaluation-cache entries. *)
let fingerprint t =
  let b = Buffer.create 96 in
  let opt tag f = function
    | None -> Buffer.add_string b (tag ^ "=-;")
    | Some p -> Buffer.add_string b (Printf.sprintf "%s=%s;" tag (f p))
  in
  let cache (c : Params.cache) =
    Printf.sprintf "%d/%d/%d/%d/%s" c.c_size c.c_line c.c_assoc c.c_latency
      (Params.policy_tag c.c_policy)
  in
  Buffer.add_string b "mem:";
  opt "c" cache t.cache;
  opt "l2" cache t.l2;
  opt "sb"
    (fun (s : Params.stream_buffer) ->
      Printf.sprintf "%d/%d/%d/%d" s.sb_streams s.sb_line s.sb_depth
        s.sb_latency)
    t.sbuf;
  opt "ll"
    (fun (l : Params.lldma) ->
      Printf.sprintf "%d/%d/%d/%d" l.ll_entries l.ll_elem l.ll_max_gap
        l.ll_latency)
    t.lldma;
  opt "sr"
    (fun (s : Params.sram) -> Printf.sprintf "%d/%d" s.s_size s.s_latency)
    t.sram;
  opt "v"
    (fun (v : Params.victim) -> Printf.sprintf "%d/%d" v.v_entries v.v_latency)
    t.victim;
  opt "wb"
    (fun (w : Params.write_buffer) ->
      Printf.sprintf "%d/%d" w.wb_entries w.wb_drain)
    t.wbuf;
  Buffer.add_string b "b=";
  Array.iter
    (fun bind ->
      Buffer.add_char b
        (match bind with
        | To_cache -> 'c'
        | To_sram -> 's'
        | To_sbuf -> 'b'
        | To_lldma -> 'l'))
    t.bindings;
  Buffer.contents b

let describe t =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        Option.map
          (fun (c : Params.cache) ->
            if c.c_policy = Params.default_policy then
              Printf.sprintf "cache %dKB/%d/%d" (c.c_size / 1024) c.c_line
                c.c_assoc
            else
              Printf.sprintf "cache %dKB/%d/%d/%s" (c.c_size / 1024) c.c_line
                c.c_assoc
                (Params.policy_to_string c.c_policy))
          t.cache;
        Option.map
          (fun (s : Params.sram) -> Printf.sprintf "sram %dB" s.s_size)
          t.sram;
        Option.map
          (fun (c : Params.cache) ->
            if c.c_policy = Params.default_policy then
              Printf.sprintf "L2 %dKB/%d/%d" (c.c_size / 1024) c.c_line
                c.c_assoc
            else
              Printf.sprintf "L2 %dKB/%d/%d/%s" (c.c_size / 1024) c.c_line
                c.c_assoc
                (Params.policy_to_string c.c_policy))
          t.l2;
        Option.map
          (fun (s : Params.stream_buffer) ->
            Printf.sprintf "sbuf %dx%dB" s.sb_streams s.sb_line)
          t.sbuf;
        Option.map
          (fun (l : Params.lldma) -> Printf.sprintf "lldma %d" l.ll_entries)
          t.lldma;
        Option.map
          (fun (v : Params.victim) -> Printf.sprintf "victim %d" v.v_entries)
          t.victim;
        Option.map
          (fun (w : Params.write_buffer) ->
            Printf.sprintf "wbuf %d" w.wb_entries)
          t.wbuf;
      ]
  in
  if parts = [] then "off-chip only" else String.concat " + " parts

let pp fmt t = Format.fprintf fmt "%s [%s]" t.label (describe t)
