(* Energy-aware selection for an embedded GSM vocoder: the paper's three
   constrained scenarios (Section 5, Phase II).

   A battery-powered voice codec cares about nJ/access first; a
   cost-driven consumer part caps the gate budget; a real-time part must
   hit a latency target.  Each scenario yields a different pareto menu
   from the same exploration.

   Run with:  dune exec examples/vocoder_power.exe *)

let print_menu title designs =
  Printf.printf "\n%s\n" title;
  if designs = [] then print_endline "  (no design satisfies the constraint)"
  else
    List.iter
      (fun d ->
        Printf.printf "  %8d gates  %6.2f cy  %5.2f nJ   %s\n"
          d.Conex.Design.cost_gates (Conex.Design.latency d)
          (Conex.Design.energy d) (Conex.Design.id d))
      designs

let () =
  let workload = Mx_trace.Kern_vocoder.generate ~scale:80_000 ~seed:11 in
  let result = Conex.Explore.run workload in
  let designs = result.Conex.Explore.simulated in
  Printf.printf "vocoder: %d simulated designs\n" (List.length designs);

  (* designs is non-empty here (the explore run just produced it) *)
  let p50 xs = Option.get (Mx_util.Stats.percentile xs ~p:50.0) in
  let e_limit = p50 (List.map Conex.Design.energy designs) in
  let c_limit = p50 (List.map Conex.Design.cost designs) in
  let l_limit = p50 (List.map Conex.Design.latency designs) in

  print_menu
    (Printf.sprintf
       "(a) power-constrained (energy <= %.2f nJ/access): cost/perf pareto"
       e_limit)
    (Conex.Scenario.select (Conex.Scenario.Power_constrained e_limit) designs);
  print_menu
    (Printf.sprintf
       "(b) cost-constrained (cost <= %.0f gates): perf/power pareto" c_limit)
    (Conex.Scenario.select (Conex.Scenario.Cost_constrained c_limit) designs);
  print_menu
    (Printf.sprintf
       "(c) perf-constrained (latency <= %.2f cycles): cost/power pareto"
       l_limit)
    (Conex.Scenario.select (Conex.Scenario.Perf_constrained l_limit) designs)
