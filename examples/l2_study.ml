(* Two-level hierarchy study: when does adding an L2 beat simply growing
   the L1, and how does the answer depend on connectivity?

   This is the kind of question the extended module library answers: the
   L2 introduces two new BRG channels (cache<->L2 on-chip, L2<->DRAM
   off-chip), so the connectivity choice interacts with the hierarchy
   choice.

   Run with:  dune exec examples/l2_study.exe *)

module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch

let () =
  let w = Mx_trace.Kern_compress.generate ~scale:80_000 ~seed:9 in
  let regions = w.Mx_trace.Workload.regions in
  let bindings = Array.make (List.length regions) Mem_arch.To_cache in
  let l1_small = { Params.c_size = 4096; c_line = 32; c_assoc = 2; c_latency = 1; c_policy = Params.default_policy } in
  let l1_big = { Params.c_size = 32768; c_line = 32; c_assoc = 2; c_latency = 2; c_policy = Params.default_policy } in
  let l2 = List.hd Mx_mem.Module_lib.l2_caches in
  let archs =
    [
      Mem_arch.make ~label:"small L1" ~cache:l1_small ~bindings ();
      Mem_arch.make ~label:"big L1" ~cache:l1_big ~bindings ();
      Mem_arch.make ~label:"small L1 + L2" ~cache:l1_small ~l2 ~bindings ();
    ]
  in
  let t =
    Mx_util.Table.create
      ~headers:
        [ "hierarchy"; "cost [gates]"; "miss ratio"; "best latency [cy]";
          "worst latency [cy]"; "conn candidates" ]
  in
  List.iter
    (fun arch ->
      let msim = Mx_mem.Mem_sim.create arch ~regions in
      let stats = Mx_mem.Mem_sim.run msim w.Mx_trace.Workload.trace in
      let brg = Mx_connect.Brg.build arch stats in
      let conns =
        Mx_connect.Assign.enumerate_levels ~max_designs_per_level:256
          ~onchip:Mx_connect.Component.onchip_library
          ~offchip:Mx_connect.Component.offchip_library
          brg.Mx_connect.Brg.channels
      in
      let latencies =
        List.map
          (fun conn ->
            (Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn ())
              .Mx_sim.Sim_result.avg_mem_latency)
          conns
      in
      Mx_util.Table.add_row t
        [
          arch.Mem_arch.label;
          string_of_int (Mem_arch.cost_gates arch);
          Printf.sprintf "%.4f" (Mx_mem.Mem_sim.miss_ratio stats);
          Printf.sprintf "%.2f" (List.fold_left Float.min infinity latencies);
          Printf.sprintf "%.2f"
            (List.fold_left Float.max neg_infinity latencies);
          string_of_int (List.length conns);
        ])
    archs;
  Mx_util.Table.print t;
  print_endline
    "\nNote how the L2 architecture exposes a wider connectivity space (two\n\
     extra channels) and a wider best-to-worst latency spread: hierarchy\n\
     and connectivity must be explored together, which is the paper's\n\
     core argument.";
  (* where does the L2 config sit on its bus utilisations? *)
  let arch = List.nth archs 2 in
  let msim = Mx_mem.Mem_sim.create arch ~regions in
  let stats = Mx_mem.Mem_sim.run msim w.Mx_trace.Workload.trace in
  let brg = Mx_connect.Brg.build arch stats in
  let conn =
    Mx_connect.Conn_arch.make
      (List.map
         (fun ch ->
           ( Mx_connect.Cluster.of_channel ch,
             if Mx_connect.Channel.crosses_chip ch then
               Mx_connect.Component.by_name "off32"
             else Mx_connect.Component.by_name "mux32" ))
         brg.Mx_connect.Brg.channels)
  in
  let _, stats = Mx_sim.Cycle_sim.run_traced ~workload:w ~arch ~conn () in
  print_endline "\nbus utilisation (small L1 + L2, mux + off32 everywhere):";
  List.iter
    (fun (b : Mx_sim.Cycle_sim.bus_stat) ->
      Printf.printf "  %-8s %-18s %6d txns  %5.1f%% utilised\n"
        b.Mx_sim.Cycle_sim.component b.Mx_sim.Cycle_sim.carries
        b.Mx_sim.Cycle_sim.txns
        (100.0 *. b.Mx_sim.Cycle_sim.utilization))
    stats
