(* Command-line driver for the MemorEx/ConEx exploration flow.

     conex profile   -w compress           profile a workload
     conex apex      -w li                 memory-modules exploration
     conex explore   -w vocoder            full two-phase ConEx
     conex strategies -w compress          Pruned/Neighborhood/Full comparison *)

open Cmdliner

let workload_names =
  [ "compress"; "li"; "vocoder"; "jpeg"; "fft"; "dijkstra"; "mixed" ]

(* User errors exit 2, I/O errors exit 1 — never an uncaught exception
   (cmdliner would report "internal error" and exit 125). *)
let die_usage fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let die_io fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let check_workload_name name =
  if not (List.mem name workload_names) then
    die_usage "unknown workload %S (expected %s)" name
      (String.concat "|" workload_names)

let make_workload name ~scale ~seed =
  match name with
  | "compress" -> Mx_trace.Kern_compress.generate ~scale ~seed
  | "li" -> Mx_trace.Kern_li.generate ~scale ~seed
  | "vocoder" -> Mx_trace.Kern_vocoder.generate ~scale ~seed
  | "jpeg" -> Mx_trace.Kern_jpeg.generate ~scale ~seed
  | "fft" -> Mx_trace.Kern_fft.generate ~scale ~seed
  | "dijkstra" -> Mx_trace.Kern_graph.generate ~scale ~seed
  | "mixed" ->
    Mx_trace.Synthetic.generate ~name:"mixed" ~scale ~seed
      ~specs:
        [
          Mx_trace.Synthetic.spec ~name:"stream" ~elems:8192 ~share:2.0
            Mx_trace.Region.Stream;
          Mx_trace.Synthetic.spec ~name:"hot" ~elems:128 ~share:2.0 ~skew:1.2
            Mx_trace.Region.Indexed;
          Mx_trace.Synthetic.spec ~name:"table" ~elems:16384 ~share:1.5
            ~skew:0.2 Mx_trace.Region.Random_access;
          Mx_trace.Synthetic.spec ~name:"list" ~elems:8192 ~share:1.5
            Mx_trace.Region.Self_indirect;
        ]
  | other ->
    die_usage "unknown workload %S (expected %s)" other
      (String.concat "|" workload_names)

(* common options *)

let workload_arg =
  let doc =
    "Workload: compress, li, vocoder, jpeg, fft, dijkstra or mixed."
  in
  Arg.(value & opt string "compress" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let trace_in_arg =
  let doc = "Load the workload from a saved trace file instead of a kernel." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let resolve_workload name scale seed trace_in =
  match trace_in with
  | Some path -> (
    try Mx_trace.Trace_io.load ~path with
    | Sys_error msg -> die_io "cannot load trace: %s" msg
    | Mx_trace.Trace_io.Parse_error { line; message } ->
      die_io "cannot load trace %s: line %d: %s" path line message)
  | None -> make_workload name ~scale ~seed

let scale_arg =
  let doc = "Trace length (number of memory accesses)." in
  Arg.(value & opt int 100_000 & info [ "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let reduced_arg =
  let doc = "Use the reduced module/component catalogue (much faster)." in
  Arg.(value & flag & info [ "reduced" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains used for estimation and simulation (default: cores \
     minus one, at least 1).  Results are identical at every jobs level."
  in
  Arg.(
    value
    & opt int (Mx_util.Task_pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_size_arg =
  let doc =
    "Capacity of the evaluation result cache, in entries (0 disables it).  \
     Cached evaluations are keyed by structural fingerprints, so re-evaluating \
     a design already estimated or simulated — including across strategies in \
     one run — is free; cache traffic appears as $(b,eval.cache.*) counters \
     under --metrics."
  in
  Arg.(
    value
    & opt int Mx_sim.Eval.default_cache_capacity
    & info [ "cache-size" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Directory of the persistent evaluation store (created if missing): \
     results land on disk as they are computed and later runs with the same \
     $(docv) warm-start from them, byte-identically.  Entries are keyed by \
     structural fingerprints and stamped with the evaluator revision, so a \
     store written by an older model is ignored wholesale.  Disk traffic \
     appears as $(b,eval.cache.disk.*) counters under --metrics."
  in
  Arg.(
    value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let persist_begin cache_dir =
  Option.iter
    (fun dir ->
      match Mx_sim.Eval.open_persist ~dir with
      | Ok () -> ()
      | Error e -> die_io "cannot open cache dir: %s" e)
    cache_dir

(* the one-line summary is load-bearing for tests and CI: "disk hits >
   0 on the second run" greps for it *)
let persist_end cache_dir =
  Option.iter
    (fun dir ->
      (match Mx_sim.Eval.persist_stats () with
      | Some s ->
        Printf.printf
          "persistent cache: %d disk hits, %d writes, %d recovered (dir %s)\n"
          s.Mx_util.Persist_cache.get_hits s.Mx_util.Persist_cache.appended
          s.Mx_util.Persist_cache.recovered dir
      | None -> ());
      Mx_sim.Eval.close_persist ())
    cache_dir

let shards_arg =
  let doc =
    "Number of prefix-shards each clustering level is split into for the \
     Phase I work-queue.  The design stream and the pareto front are \
     byte-identical at every value; more shards give the parallel queue \
     finer grains to balance."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let config_of_reduced ?(shards = 1) reduced jobs =
  if shards <= 0 then die_usage "--shards must be positive (got %d)" shards;
  let base =
    if reduced then Conex.Explore.reduced_config
    else Conex.Explore.default_config
  in
  { base with Conex.Explore.jobs = max 1 jobs; shards }

(* -- observability ----------------------------------------------------- *)

let metrics_arg =
  let doc =
    "Collect exploration metrics and print them after the run, as $(b,text) \
     or $(b,json) (counters, gauges, histograms and the span trace tree)."
  in
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let trace_out_arg =
  let doc =
    "Collect exploration metrics and write the JSON document (same schema as \
     --metrics json) to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let events_out_arg =
  let doc =
    "Record the decision-provenance event stream (cluster merges, assignment \
     verdicts, per-design lifecycle) and write it as JSONL to $(docv); \
     inspect it with $(b,conex explain)."
  in
  Arg.(
    value & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)

let chrome_out_arg =
  let doc =
    "Write a Chrome trace-event JSON timeline (span slices plus event \
     instants) to $(docv); load it in Perfetto or chrome://tracing."
  in
  Arg.(
    value & opt (some string) None & info [ "chrome-out" ] ~docv:"FILE" ~doc)

let status_out_arg =
  let doc =
    "Write a live status snapshot (phase, shard progress, eval throughput, \
     cache hit rate, per-domain utilization, ETA, stall flag) to $(docv) on \
     a cadence, atomically (write-temp + rename); read it any time with \
     $(b,conex status)."
  in
  Arg.(
    value & opt (some string) None & info [ "status-out" ] ~docv:"FILE" ~doc)

let status_interval_arg =
  let doc = "Seconds between status snapshot writes (with --status-out)." in
  Arg.(value & opt float 1.0 & info [ "status-interval" ] ~docv:"SECONDS" ~doc)

let stall_after_arg =
  let doc =
    "Seconds without a commit before the status snapshot reports the run as \
     stalled (with --status-out)."
  in
  Arg.(value & opt float 30.0 & info [ "stall-after" ] ~docv:"SECONDS" ~doc)

let run_dir_arg =
  let doc =
    "Record a versioned run manifest (config, workload fingerprint, final \
     metrics, front summary, wall time, interrupted flag) into the ledger \
     directory $(docv) when the run completes or is interrupted; inspect \
     the ledger with $(b,conex runs list) and $(b,conex runs diff)."
  in
  Arg.(value & opt (some string) None & info [ "run-dir" ] ~docv:"DIR" ~doc)

(* The snapshot and the manifest both read the eval.cache counters and
   the task-pool busy histograms from the ambient registry, so any
   telemetry sink implies metrics collection (without forcing the
   --metrics report; runs after [metrics_begin], which resets). *)
let status_begin status_out status_interval stall_after run_dir =
  if status_interval <= 0.0 then
    die_usage "--status-interval must be positive (got %g)" status_interval;
  if stall_after <= 0.0 then
    die_usage "--stall-after must be positive (got %g)" stall_after;
  if status_out <> None || run_dir <> None then begin
    let m = Mx_util.Metrics.global in
    if not (Mx_util.Metrics.is_on m) then begin
      Mx_util.Metrics.reset m;
      Mx_util.Metrics.set_enabled m true
    end
  end;
  Option.iter
    (fun path ->
      Mx_util.Snapshot.start ~interval:status_interval ~stall_after ~path ())
    status_out

let status_end status_out =
  if status_out <> None then Mx_util.Snapshot.finish ()

let ledger_record run_dir ~kind ~config_kv ~sched_kv result =
  Option.iter
    (fun dir ->
      let m = Conex.Ledger.make ~kind ~config_kv ~sched_kv ~result in
      match Conex.Ledger.save ~dir m with
      | Ok path -> Printf.printf "run manifest written to %s\n" path
      | Error e -> die_io "cannot write run manifest: %s" e)
    run_dir

(* Check every output path before any exploration work: a typo'd
   directory must fail in milliseconds (exit 2, a usage error), not
   after hours of simulation. *)
let validate_out_path = function
  | None -> ()
  | Some path -> (
    try
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      close_out oc
    with Sys_error msg -> die_usage "cannot write to output path: %s" msg)

(* Enable (and clear) the ambient registry before the run when any
   metrics sink was requested.  The Chrome exporter is built from the
   metrics span forest, so --chrome-out implies collection too. *)
let metrics_begin metrics trace_out chrome_out =
  if metrics <> None || trace_out <> None || chrome_out <> None then begin
    Mx_util.Metrics.reset Mx_util.Metrics.global;
    Mx_util.Metrics.set_enabled Mx_util.Metrics.global true
  end

let events_begin events_out chrome_out =
  if events_out <> None || chrome_out <> None then begin
    Mx_util.Event_log.reset Mx_util.Event_log.global;
    Mx_util.Event_log.set_enabled Mx_util.Event_log.global true
  end

(* Runs before [metrics_end] so the --metrics JSON document stays the
   last thing on stdout. *)
let events_end events_out chrome_out =
  if events_out <> None || chrome_out <> None then begin
    let log = Mx_util.Event_log.global in
    Mx_util.Event_log.set_enabled log false;
    Option.iter
      (fun path ->
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc (Mx_util.Event_log.to_jsonl log))
         with Sys_error msg -> die_io "cannot write events: %s" msg);
        Printf.printf "%d events written to %s%s\n"
          (Mx_util.Event_log.length log)
          path
          (match Mx_util.Event_log.dropped log with
          | 0 -> ""
          | n -> Printf.sprintf " (%d oldest dropped by the ring bound)" n))
      events_out;
    Option.iter
      (fun path ->
        let snapshot = Mx_util.Metrics.snapshot Mx_util.Metrics.global in
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc
                 (Mx_util.Event_log.to_chrome_trace ~snapshot
                    (Mx_util.Event_log.events log)))
         with Sys_error msg -> die_io "cannot write chrome trace: %s" msg);
        Printf.printf "chrome trace written to %s\n" path)
      chrome_out
  end

let metrics_end metrics trace_out chrome_out =
  if metrics <> None || trace_out <> None || chrome_out <> None then begin
    let m = Mx_util.Metrics.global in
    Mx_sim.Cycle_sim.record_utilization_gauges ();
    Option.iter
      (fun path ->
        (try
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () -> output_string oc (Mx_util.Metrics.to_json m))
         with Sys_error msg -> die_io "cannot write metrics trace: %s" msg);
        Printf.printf "metrics trace written to %s\n" path)
      trace_out;
    (* the JSON document is the last thing on stdout, so scripts can
       split it off the human-readable report above *)
    match metrics with
    | Some `Text ->
      print_newline ();
      print_string (Mx_util.Metrics.to_text m);
      let hits = Mx_util.Metrics.counter_value m "eval.cache.hits" in
      let misses = Mx_util.Metrics.counter_value m "eval.cache.misses" in
      let total = hits + misses in
      Printf.printf "eval.cache: %d hits, %d misses (%.1f%% hit rate)\n" hits
        misses
        (if total = 0 then 0.0
         else 100.0 *. float_of_int hits /. float_of_int total)
    | Some `Json ->
      print_newline ();
      print_string (Mx_util.Metrics.to_json m)
    | None -> ()
  end

(* -- profile ---------------------------------------------------------- *)

let profile_cmd =
  let run name scale seed trace_in save_trace =
    let w = resolve_workload name scale seed trace_in in
    let p = Mx_trace.Profile.analyze w in
    Format.printf "%a@." Mx_trace.Profile.pp_summary p;
    Option.iter
      (fun path ->
        Mx_trace.Trace_io.save w ~path;
        Printf.printf "trace saved to %s\n" path)
      save_trace
  in
  let save_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"Also save the generated workload trace to a file.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Profile a workload's access patterns")
    Term.(
      const run $ workload_arg $ scale_arg $ seed_arg $ trace_in_arg
      $ save_trace_arg)

(* -- apex ------------------------------------------------------------- *)

let apex_cmd =
  let run name scale seed reduced =
    let w = make_workload name ~scale ~seed in
    let p = Mx_trace.Profile.analyze w in
    let config =
      if reduced then Mx_apex.Explore.reduced_config
      else Mx_apex.Explore.default_config
    in
    let sel = Mx_apex.Explore.select ~config p in
    let t =
      Mx_util.Table.create
        ~headers:[ "#"; "architecture"; "cost [gates]"; "miss ratio" ]
    in
    List.iteri
      (fun i (c : Mx_apex.Explore.candidate) ->
        Mx_util.Table.add_row t
          [
            string_of_int (i + 1);
            c.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label;
            string_of_int c.Mx_apex.Explore.cost_gates;
            Printf.sprintf "%.4f" c.Mx_apex.Explore.miss_ratio;
          ])
      sel;
    Mx_util.Table.print t
  in
  Cmd.v
    (Cmd.info "apex"
       ~doc:"Memory-modules exploration: the selected architectures")
    Term.(const run $ workload_arg $ scale_arg $ seed_arg $ reduced_arg)

(* -- explore ----------------------------------------------------------- *)

let scenario_arg =
  let doc =
    "Constrained selection: power=<nJ>, cost=<gates> or perf=<cycles>."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"KIND=V" ~doc)

let parse_scenario s =
  let bad () = die_usage "bad --scenario %S (power=X | cost=X | perf=X)" s in
  let num v = match float_of_string_opt v with Some f -> f | None -> bad () in
  match String.split_on_char '=' s with
  | [ "power"; v ] -> Conex.Scenario.Power_constrained (num v)
  | [ "cost"; v ] -> Conex.Scenario.Cost_constrained (num v)
  | [ "perf"; v ] -> Conex.Scenario.Perf_constrained (num v)
  | _ -> bad ()

let parse_policies s =
  let all_names =
    String.concat "|" (List.map Mx_mem.Params.policy_to_string
                         Mx_mem.Params.all_policies)
  and preset_names =
    String.concat "|" (List.map fst Mx_mem.Params.policy_presets)
  in
  let toks =
    List.filter (fun t -> t <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if toks = [] then die_usage "--policies needs at least one policy name";
  let policies =
    List.map
      (fun tok ->
        match Mx_mem.Params.policy_of_string tok with
        | Some p -> p
        | None ->
          die_usage "unknown policy %S (expected %s, or a preset: %s)" tok
            all_names preset_names)
      toks
  in
  (* presets may alias (haswell and skylake are both qlru_h11_m1):
     dedupe so the cross-product has no identical design points *)
  List.fold_left
    (fun acc p -> if List.mem p acc then acc else acc @ [ p ])
    [] policies

let config_with_policies config = function
  | None -> config
  | Some policies ->
    let cross cs =
      List.concat_map
        (fun c ->
          List.map (fun p -> Mx_mem.Module_lib.with_policy p c) policies)
        cs
    in
    let apex = config.Conex.Explore.apex in
    {
      config with
      Conex.Explore.apex =
        {
          apex with
          Mx_apex.Explore.caches = cross apex.Mx_apex.Explore.caches;
          l2s = cross apex.Mx_apex.Explore.l2s;
        };
    }

let explore_cmd =
  let run name scale seed reduced jobs shards cache_size cache_dir policies
      scenario plot trace_in csv front_out bus_report metrics trace_out
      events_out chrome_out status_out status_interval stall_after run_dir =
    (* validate cheap inputs before hours of exploration *)
    let scenario = Option.map parse_scenario scenario in
    let policies = Option.map parse_policies policies in
    if trace_in = None then check_workload_name name;
    List.iter validate_out_path
      [ csv; front_out; trace_out; events_out; chrome_out; status_out ];
    let w = resolve_workload name scale seed trace_in in
    Mx_sim.Eval.set_cache_capacity cache_size;
    persist_begin cache_dir;
    metrics_begin metrics trace_out chrome_out;
    events_begin events_out chrome_out;
    status_begin status_out status_interval stall_after run_dir;
    let config =
      config_with_policies (config_of_reduced ~shards reduced jobs) policies
    in
    (* anytime mode: with --front-out, SIGINT asks the run to stop at
       the next commit boundary instead of killing the process — the
       front that comes back (and is written below) is a valid pareto
       front of exactly the work committed so far *)
    let interrupt =
      match front_out with
      | None -> None
      | Some _ ->
        let hit = Atomic.make false in
        Sys.set_signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Atomic.set hit true));
        Some (fun () -> Atomic.get hit)
    in
    let r = Conex.Explore.run ~config ?interrupt w in
    status_end status_out;
    ledger_record run_dir ~kind:"explore"
      ~config_kv:
        [
          ("workload", w.Mx_trace.Workload.name);
          ("scale", string_of_int scale);
          ("seed", string_of_int seed);
          ("reduced", string_of_bool reduced);
          ( "policies",
            match policies with
            | None -> "default"
            | Some ps ->
              String.concat ","
                (List.map Mx_mem.Params.policy_to_string ps) );
        ]
      ~sched_kv:
        [
          ("jobs", string_of_int (max 1 jobs));
          ("shards", string_of_int shards);
          ("cache_size", string_of_int cache_size);
        ]
      r;
    Printf.printf
      "%s: %d estimates -> %d simulations -> %d pareto designs (%.1fs)%s\n\n"
      name r.Conex.Explore.n_estimates r.Conex.Explore.n_simulations
      (List.length r.Conex.Explore.pareto_cost_perf)
      r.Conex.Explore.wall_seconds
      (if r.Conex.Explore.interrupted then
         " [interrupted: committed prefix only]"
       else "");
    persist_end cache_dir;
    if plot then
      print_string
        (Conex.Report.ascii_scatter ~x:Conex.Design.cost ~y:Conex.Design.latency
           ~highlight:r.Conex.Explore.pareto_cost_perf
           r.Conex.Explore.simulated);
    (match scenario with
    | None ->
      Conex.Report.print_designs ~title:"cost/performance pareto designs:"
        r.Conex.Explore.pareto_cost_perf
    | Some sc ->
      Conex.Report.print_designs
        ~title:(Conex.Scenario.to_string sc ^ " designs:")
        (Conex.Scenario.select sc r.Conex.Explore.simulated));
    Option.iter
      (fun path ->
        Conex.Report.save_csv r.Conex.Explore.simulated ~path;
        Printf.printf "\n%d simulated designs exported to %s\n"
          (List.length r.Conex.Explore.simulated)
          path)
      csv;
    Option.iter
      (fun path ->
        Conex.Report.save_csv r.Conex.Explore.pareto_cost_perf ~path;
        Printf.printf "\n%d pareto designs exported to %s%s\n"
          (List.length r.Conex.Explore.pareto_cost_perf)
          path
          (if r.Conex.Explore.interrupted then
             " (anytime front of the committed prefix)"
           else ""))
      front_out;
    if bus_report then begin
      match List.rev r.Conex.Explore.pareto_cost_perf with
      | [] -> ()
      | best :: _ ->
        let _, stats =
          Mx_sim.Cycle_sim.run_traced ~workload:w ~arch:best.Conex.Design.mem
            ~conn:best.Conex.Design.conn ()
        in
        Printf.printf "\nbus utilisation of the best design (%s):\n"
          (Conex.Design.id best);
        let t =
          Mx_util.Table.create
            ~headers:
              [ "component"; "carries"; "txns"; "busy [cy]"; "waits [cy]";
                "utilisation" ]
        in
        List.iter
          (fun (b : Mx_sim.Cycle_sim.bus_stat) ->
            Mx_util.Table.add_row t
              [
                b.Mx_sim.Cycle_sim.component;
                b.Mx_sim.Cycle_sim.carries;
                string_of_int b.Mx_sim.Cycle_sim.txns;
                string_of_int b.Mx_sim.Cycle_sim.busy_cycles;
                string_of_int b.Mx_sim.Cycle_sim.wait_cycles;
                Printf.sprintf "%.1f%%"
                  (100.0 *. b.Mx_sim.Cycle_sim.utilization);
              ])
          stats;
        Mx_util.Table.print t
    end;
    events_end events_out chrome_out;
    metrics_end metrics trace_out chrome_out
  in
  let plot_arg =
    Arg.(value & flag & info [ "plot" ] ~doc:"Print an ASCII scatter plot.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Export all simulated designs as CSV.")
  in
  let front_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "front-out" ] ~docv:"FILE"
          ~doc:
            "Export the cost/performance pareto front as CSV, and make the \
             run $(i,anytime): SIGINT stops the exploration at the next \
             commit boundary instead of killing it, and the exported front \
             is a valid pareto front of exactly the work committed so far.")
  in
  let bus_report_arg =
    Arg.(
      value & flag
      & info [ "bus-report" ]
          ~doc:"Print per-component utilisation of the best pareto design.")
  in
  let policies_arg =
    let doc =
      "Comma-separated replacement policies crossed onto every cache of the \
       catalogue, widening the design space (same capacity, different policy \
       = different pareto point).  Accepts policy names \
       ($(b,true_lru), $(b,fifo), $(b,tree_plru), $(b,qlru_h11_m1), \
       $(b,qlru_h00_m0), $(b,mru_n)) and CPU presets ($(b,core2), \
       $(b,nehalem), $(b,sandybridge), $(b,haswell), $(b,skylake), \
       $(b,coffeelake)).  Duplicate policies (aliasing presets) are run \
       once.  Default: true_lru only, the pre-policy behaviour."
    in
    Arg.(
      value & opt (some string) None
      & info [ "policies" ] ~docv:"LIST" ~doc)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Full two-phase ConEx exploration")
    Term.(
      const run $ workload_arg $ scale_arg $ seed_arg $ reduced_arg $ jobs_arg
      $ shards_arg $ cache_size_arg $ cache_dir_arg $ policies_arg
      $ scenario_arg $ plot_arg $ trace_in_arg $ csv_arg $ front_out_arg
      $ bus_report_arg $ metrics_arg $ trace_out_arg $ events_out_arg
      $ chrome_out_arg $ status_out_arg $ status_interval_arg $ stall_after_arg
      $ run_dir_arg)

(* -- select: re-select from a saved CSV ---------------------------------- *)

let select_cmd =
  let run path scenario =
    let sc = parse_scenario scenario in
    let content =
      let ic =
        try open_in path with Sys_error msg -> die_io "cannot read CSV: %s" msg
      in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          really_input_string ic n)
    in
    let designs = Conex.Report.parse_csv content in
    if designs = [] then die_io "no data rows in %s" path;
    let keep (_, c, l, e) =
      match sc with
      | Conex.Scenario.Power_constrained v -> e <= v
      | Conex.Scenario.Cost_constrained v -> c <= v
      | Conex.Scenario.Perf_constrained v -> l <= v
    in
    let x, y =
      match sc with
      | Conex.Scenario.Power_constrained _ ->
        ((fun (_, c, _, _) -> c), fun (_, _, l, _) -> l)
      | Conex.Scenario.Cost_constrained _ ->
        ((fun (_, _, l, _) -> l), fun (_, _, _, e) -> e)
      | Conex.Scenario.Perf_constrained _ ->
        ((fun (_, c, _, _) -> c), fun (_, _, _, e) -> e)
    in
    let front = designs |> List.filter keep |> Mx_util.Pareto.front2 ~x ~y in
    Printf.printf "%s over %d saved designs:\n"
      (Conex.Scenario.to_string sc) (List.length designs);
    List.iter
      (fun (id, c, l, e) ->
        Printf.printf "  %8.0f gates  %6.2f cy  %6.2f nJ   %s\n" c l e id)
      front
  in
  let csv_in_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"CSV produced by 'explore --csv'.")
  in
  let scen_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario" ] ~docv:"KIND=V"
          ~doc:"power=<nJ> | cost=<gates> | perf=<cycles>.")
  in
  Cmd.v
    (Cmd.info "select"
       ~doc:"Constrained re-selection over previously exported designs")
    Term.(const run $ csv_in_arg $ scen_arg)

(* -- strategies ---------------------------------------------------------- *)

let strategies_cmd =
  let run name scale seed jobs shards full_budget cache_size cache_dir metrics
      trace_out events_out chrome_out status_out status_interval stall_after =
    check_workload_name name;
    if full_budget <= 0 then
      die_usage "--full-budget must be positive (got %d)" full_budget;
    List.iter validate_out_path
      [ trace_out; events_out; chrome_out; status_out ];
    let w = make_workload name ~scale ~seed in
    Mx_sim.Eval.set_cache_capacity cache_size;
    persist_begin cache_dir;
    metrics_begin metrics trace_out chrome_out;
    events_begin events_out chrome_out;
    status_begin status_out status_interval stall_after None;
    let config = config_of_reduced ~shards true jobs in
    let full =
      try Conex.Strategy.run ~config ~full_budget Conex.Strategy.Full w
      with Conex.Strategy.Full_infeasible { projected_sims; budget } ->
        die_usage
          "full strategy infeasible: %d projected simulations exceed the \
           budget of %d (raise --full-budget or shrink the catalogue)"
          projected_sims budget
    in
    List.iter
      (fun kind ->
        let o = Conex.Strategy.run ~config kind w in
        let r = Conex.Coverage.eval ~reference:full o in
        Format.printf "%a@." Conex.Coverage.pp r)
      [ Conex.Strategy.Pruned; Conex.Strategy.Neighborhood ];
    let rf = Conex.Coverage.eval ~reference:full full in
    Format.printf "%a@." Conex.Coverage.pp rf;
    persist_end cache_dir;
    status_end status_out;
    events_end events_out chrome_out;
    metrics_end metrics trace_out chrome_out
  in
  let full_budget_arg =
    let doc =
      "Simulation budget for the Full strategy: the run aborts (exit 2, \
       before any simulation) when the projected number of full simulations \
       exceeds $(docv)."
    in
    Arg.(value & opt int 300_000 & info [ "full-budget" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "strategies"
       ~doc:"Compare Pruned / Neighborhood / Full exploration strategies")
    Term.(
      const run $ workload_arg $ scale_arg $ seed_arg $ jobs_arg $ shards_arg
      $ full_budget_arg $ cache_size_arg $ cache_dir_arg $ metrics_arg
      $ trace_out_arg $ events_out_arg $ chrome_out_arg $ status_out_arg
      $ status_interval_arg $ stall_after_arg)

(* -- serve: long-running JSONL evaluation front-end ----------------------- *)

(* One JSON object per line in, one per line out.  Ops:

     {"op": "ping", "id": 1}
     {"op": "explore", "id": 2, "workload": "mixed",
      "scale": 12000, "seed": 7, "reduced": true}
     {"op": "stats", "id": 3}
     {"op": "shutdown", "id": 4}

   A malformed line or an unknown/invalid request produces a
   per-request {"status": "error"} response — never process death (the
   per-request [die_usage] discipline of the batch commands would kill
   every other client's session).  Responses to identical explore
   requests are deduplicated through a single-flight response cache, so
   a duplicate is answered byte-identically (modulo the "dedup" flag
   and the caller's "id") without re-running the funnel. *)

module Serve = struct
  module J = Mx_util.Json

  let str s = "\"" ^ J.escape s ^ "\""

  (* request ids are echoed verbatim; anything non-scalar is nulled *)
  let render_id = function
    | Some (J.Num f) -> J.number f
    | Some (J.Str s) -> str s
    | Some (J.Bool b) -> string_of_bool b
    | _ -> "null"

  let response ~id fields =
    "{\"id\": " ^ render_id id ^ ", "
    ^ String.concat ", " fields
    ^ "}"

  let error ~id fmt =
    Printf.ksprintf
      (fun msg ->
        response ~id [ "\"status\": \"error\""; "\"error\": " ^ str msg ])
      fmt

  type counters = {
    mutable requests : int;
    mutable ok : int;
    mutable errors : int;
    mutable dedup : int;
  }

  let metric name = Mx_util.Metrics.incr Mx_util.Metrics.global name

  (* the deterministic part of an explore response: everything but the
     caller's id and the dedup flag.  This exact string is what the
     response cache stores, so duplicates answer byte-identically. *)
  let explore_body ~jobs ~shards ~workload ~scale ~seed ~reduced () =
    let w = make_workload workload ~scale ~seed in
    let config = config_of_reduced ~shards reduced jobs in
    let r = Conex.Explore.run ~config w in
    let front =
      r.Conex.Explore.pareto_cost_perf
      |> List.map (fun d ->
             Printf.sprintf
               "{\"design\": %s, \"cost_gates\": %d, \"avg_mem_latency\": %s, \
                \"avg_energy_nj\": %s}"
               (str (Conex.Design.id d))
               d.Conex.Design.cost_gates
               (J.number (Conex.Design.latency d))
               (J.number (Conex.Design.energy d)))
      |> String.concat ", "
    in
    Printf.sprintf
      "\"status\": \"ok\", \"op\": \"explore\", \"workload\": %s, \"scale\": \
       %d, \"seed\": %d, \"reduced\": %b, \"n_estimates\": %d, \
       \"n_simulations\": %d, \"front\": [%s]"
      (str workload) scale seed reduced r.Conex.Explore.n_estimates
      r.Conex.Explore.n_simulations front

  let stats_body c =
    let serve =
      Printf.sprintf
        "\"serve\": {\"requests\": %d, \"ok\": %d, \"errors\": %d, \"dedup\": \
         %d}"
        c.requests c.ok c.errors c.dedup
    in
    let mc = Mx_sim.Eval.cache_stats () in
    let eval_cache =
      Printf.sprintf "\"eval_cache\": {\"entries\": %d, \"hits\": %d, \
                      \"misses\": %d}"
        mc.Mx_util.Memo_cache.size mc.Mx_util.Memo_cache.hits
        mc.Mx_util.Memo_cache.misses
    in
    let persist =
      match Mx_sim.Eval.persist_stats () with
      | None -> "\"persist\": null"
      | Some s ->
        Printf.sprintf
          "\"persist\": {\"entries\": %d, \"hits\": %d, \"writes\": %d, \
           \"recovered\": %d}"
          s.Mx_util.Persist_cache.entries s.Mx_util.Persist_cache.get_hits
          s.Mx_util.Persist_cache.appended s.Mx_util.Persist_cache.recovered
    in
    String.concat ", "
      [ "\"status\": \"ok\""; "\"op\": \"stats\""; serve; eval_cache; persist ]

  (* handle one request line; returns the response and whether to keep
     serving.  Every failure path is a per-request error response. *)
  let handle ~counters:c ~resp_cache ~jobs ~shards line =
    c.requests <- c.requests + 1;
    metric "serve.requests";
    let fail ~id fmt =
      Printf.ksprintf
        (fun msg ->
          c.errors <- c.errors + 1;
          metric "serve.errors";
          (error ~id "%s" msg, `Continue))
        fmt
    in
    let ok ~id ?(extra = []) body =
      c.ok <- c.ok + 1;
      metric "serve.ok";
      (response ~id (extra @ [ body ]), `Continue)
    in
    match J.parse line with
    | Error msg -> fail ~id:None "malformed request: %s" msg
    | Ok req -> (
      let id = J.member "id" req in
      match Option.bind (J.member "op" req) J.to_string_opt with
      | None -> fail ~id "missing or non-string \"op\""
      | Some "ping" -> ok ~id "\"status\": \"ok\", \"op\": \"ping\""
      | Some "stats" -> ok ~id (stats_body c)
      | Some "shutdown" ->
        c.ok <- c.ok + 1;
        metric "serve.ok";
        (response ~id [ "\"status\": \"ok\""; "\"op\": \"shutdown\"" ],
         `Shutdown)
      | Some "explore" -> (
        let workload =
          match Option.bind (J.member "workload" req) J.to_string_opt with
          | Some w -> w
          | None -> ""
        in
        let int_field name default =
          match Option.bind (J.member name req) J.to_int_opt with
          | Some v -> v
          | None -> default
        in
        let scale = int_field "scale" 12_000 in
        let seed = int_field "seed" 7 in
        let reduced =
          match Option.bind (J.member "reduced" req) J.to_bool_opt with
          | Some b -> b
          | None -> true
        in
        if not (List.mem workload workload_names) then
          fail ~id "unknown workload %S (expected %s)" workload
            (String.concat "|" workload_names)
        else if scale <= 0 then fail ~id "scale must be positive (got %d)" scale
        else
          let fp =
            Printf.sprintf "explore|%s|%d|%d|%b" workload scale seed reduced
          in
          match
            Mx_util.Memo_cache.find_or_compute_prov resp_cache ~key:fp
              (explore_body ~jobs ~shards ~workload ~scale ~seed ~reduced)
          with
          | body, deduped ->
            if deduped then begin
              c.dedup <- c.dedup + 1;
              metric "serve.dedup"
            end;
            ok ~id
              ~extra:[ Printf.sprintf "\"dedup\": %b" deduped ]
              body
          | exception exn -> fail ~id "explore failed: %s" (Printexc.to_string exn))
      | Some other -> fail ~id "unknown op %S" other)
end

let serve_cmd =
  let run cache_dir socket jobs shards cache_size =
    if shards <= 0 then die_usage "--shards must be positive (got %d)" shards;
    let jobs = max 1 jobs in
    Mx_sim.Eval.set_cache_capacity cache_size;
    persist_begin cache_dir;
    let counters =
      { Serve.requests = 0; ok = 0; errors = 0; dedup = 0 }
    in
    let resp_cache : string Mx_util.Memo_cache.t =
      Mx_util.Memo_cache.create ~metrics_prefix:"serve.cache" ~capacity:4096 ()
    in
    let stop = ref false in
    let serve_channel ic oc =
      let eof = ref false in
      while not (!stop || !eof) do
        match input_line ic with
        | exception End_of_file -> eof := true
        | line when String.trim line = "" -> ()
        | line ->
          let resp, verdict =
            Serve.handle ~counters ~resp_cache ~jobs ~shards line
          in
          output_string oc resp;
          output_char oc '\n';
          flush oc;
          if verdict = `Shutdown then stop := true
      done
    in
    (match socket with
    | None -> serve_channel stdin stdout
    | Some path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 8
       with Unix.Unix_error (e, _, _) ->
         die_io "cannot bind socket %s: %s" path (Unix.error_message e));
      prerr_endline ("serving on " ^ path);
      while not !stop do
        let client, _ = Unix.accept fd in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (try serve_channel ic oc with Sys_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ())
      done;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path);
    (* graceful shutdown: flush and seal the active segment, and keep
       stdout clean — it is the protocol stream *)
    Option.iter
      (fun dir ->
        (match Mx_sim.Eval.persist_stats () with
        | Some s ->
          Printf.eprintf
            "persistent cache: %d disk hits, %d writes, %d recovered (dir %s)\n"
            s.Mx_util.Persist_cache.get_hits s.Mx_util.Persist_cache.appended
            s.Mx_util.Persist_cache.recovered dir
        | None -> ());
        Mx_sim.Eval.close_persist ())
      cache_dir
  in
  let socket_arg =
    let doc =
      "Accept requests on a Unix domain socket bound at $(docv) (connections \
       are served one at a time) instead of reading stdin.  The socket file \
       is created on start and removed on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running evaluation front-end: JSONL requests on stdin (or a \
          Unix socket) are answered on stdout, one response per line.  \
          Identical explore requests are deduplicated through a \
          single-flight response cache, sub-evaluations share the process's \
          two cache tiers, and with --cache-dir every result lands in the \
          persistent store, which a graceful shutdown (the \"shutdown\" op \
          or EOF) flushes and seals.")
    Term.(
      const run $ cache_dir_arg $ socket_arg $ jobs_arg $ shards_arg
      $ cache_size_arg)

(* -- explain: funnel reconstruction from a saved event log --------------- *)

let explain_cmd =
  let run events_path design =
    match Mx_util.Event_log.load_jsonl ~path:events_path with
    | Error msg -> die_io "cannot load events: %s" msg
    | Ok { Mx_util.Event_log.events; truncated } -> (
      match design with
      | None -> print_string (Conex.Explain.summary ~truncated events)
      | Some key -> (
        match Conex.Explain.lifecycle events ~key with
        | Ok s -> print_string s
        | Error msg -> die_usage "%s" msg))
  in
  let events_in_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"JSONL event log produced by 'explore --events-out'.")
  in
  let design_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "design" ] ~docv:"KEY"
          ~doc:
            "Show the full lifecycle of one design instead of the funnel \
             summary.  KEY is a structural key (or unique prefix) as printed \
             in the log's 'design' attributes.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Reconstruct an exploration funnel from a saved event log")
    Term.(const run $ events_in_arg $ design_arg)

(* -- status: render a live status snapshot ------------------------------- *)

let status_cmd =
  let run path json =
    let text =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error msg -> die_io "cannot read status file: %s" msg
    in
    match Mx_util.Snapshot.of_json text with
    | Error msg -> die_io "cannot parse status file %s: %s" path msg
    | Ok s ->
      print_string
        (if json then Mx_util.Snapshot.to_json s
         else Mx_util.Snapshot.to_text s)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Status snapshot written by 'explore --status-out'.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the snapshot document as JSON instead of text.")
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Render a live status snapshot (written on a cadence by a running \
          'explore --status-out'): phase, shard progress with ETA, eval \
          throughput, cache hit rate, per-domain utilization and the stall \
          flag.  Reads are safe at any moment — snapshots are published \
          atomically.")
    Term.(const run $ file_arg $ json_arg)

(* -- runs: the persistent run ledger ------------------------------------- *)

let runs_list_cmd =
  let run dir =
    match Conex.Ledger.list ~dir with
    | Error msg -> die_io "cannot list ledger %s: %s" dir msg
    | Ok [] -> Printf.printf "no run manifests in %s\n" dir
    | Ok entries ->
      let t =
        Mx_util.Table.create
          ~headers:
            [ "manifest"; "run id"; "kind"; "workload"; "wall [s]"; "front";
              "cache hits"; "flags" ]
      in
      List.iter
        (fun (name, (m : Conex.Ledger.manifest)) ->
          Mx_util.Table.add_row t
            [
              name;
              m.Conex.Ledger.run_id;
              m.Conex.Ledger.kind;
              m.Conex.Ledger.workload_name;
              Printf.sprintf "%.2f" m.Conex.Ledger.wall_seconds;
              string_of_int (List.length m.Conex.Ledger.front);
              Printf.sprintf "%.1f%%" (100.0 *. Conex.Ledger.cache_hit_rate m);
              (if m.Conex.Ledger.interrupted then "interrupted" else "");
            ])
        entries;
      Mx_util.Table.print t
  in
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Ledger directory populated by 'explore --run-dir'.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the run manifests in a ledger directory")
    Term.(const run $ dir_arg)

let runs_diff_cmd =
  let run a_path b_path max_wall_ratio max_hit_drop min_front_coverage =
    if max_wall_ratio <= 0.0 then
      die_usage "--max-wall-ratio must be positive (got %g)" max_wall_ratio;
    if min_front_coverage < 0.0 || min_front_coverage > 1.0 then
      die_usage "--min-front-coverage must be in [0, 1] (got %g)"
        min_front_coverage;
    let load path =
      match Conex.Ledger.load ~path with
      | Ok m -> m
      | Error msg -> die_io "cannot load manifest: %s" msg
    in
    let a = load a_path and b = load b_path in
    let thresholds =
      { Conex.Ledger.max_wall_ratio; max_hit_drop; min_front_coverage }
    in
    let d = Conex.Ledger.compare_runs ~thresholds a b in
    print_string (Conex.Ledger.render_diff d);
    if Conex.Ledger.regressed d then exit 1
  in
  let manifest_pos i name =
    Arg.(
      required
      & pos i (some string) None
      & info [] ~docv:name ~doc:("Run manifest " ^ name ^ " (a JSON file)."))
  in
  let max_wall_ratio_arg =
    Arg.(
      value & opt float 1.25
      & info [ "max-wall-ratio" ] ~docv:"X"
          ~doc:
            "Flag a wall-time regression when B takes more than $(docv) \
             times A's wall time.")
  in
  let max_hit_drop_arg =
    Arg.(
      value & opt float 10.0
      & info [ "max-hit-drop" ] ~docv:"PP"
          ~doc:
            "Flag a cache regression when B's hit rate drops more than \
             $(docv) percentage points below A's.")
  in
  let min_front_coverage_arg =
    Arg.(
      value & opt float 0.99
      & info [ "min-front-coverage" ] ~docv:"FRACTION"
          ~doc:
            "Flag a front regression when B's front covers (weakly \
             dominates) less than this fraction of A's front points.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two run manifests and flag regressions (wall time, cache \
          hit rate, front coverage) against thresholds.  Exits 1 when any \
          threshold trips, 0 otherwise.")
    Term.(
      const run
      $ manifest_pos 0 "A"
      $ manifest_pos 1 "B"
      $ max_wall_ratio_arg $ max_hit_drop_arg $ min_front_coverage_arg)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:
         "Inspect the persistent run ledger written by 'explore --run-dir' \
          and the bench harness")
    [ runs_list_cmd; runs_diff_cmd ]

(* -- check: the model-based correctness harness -------------------------- *)

let check_cmd =
  let module Suites = Mx_check.Suites in
  let module Runner = Mx_check.Runner in
  let run suite seed count list jobs =
    if list then begin
      List.iter print_endline Suites.names;
      exit 0
    end;
    if count <= 0 then die_usage "--count must be positive (got %d)" count;
    if jobs <= 0 then die_usage "--jobs must be positive (got %d)" jobs;
    let suites =
      match suite with
      | None -> Suites.all ~jobs ()
      | Some name -> (
        match Suites.find ~jobs name with
        | Some props -> [ (name, props) ]
        | None ->
          die_usage "unknown suite %S (expected %s)" name
            (String.concat "|" Suites.names))
    in
    let fixed = Runner.env_fixed () in
    (match fixed with
    | Some (s, z) ->
      Printf.printf
        "replaying the fixed case CONEX_CHECK_SEED=%d CONEX_CHECK_SIZE=%d\n" s
        z
    | None -> ());
    let failed = ref false in
    List.iter
      (fun (name, props) ->
        let r = Runner.run_suite ?fixed ~master:seed ~count (name, props) in
        if r.Runner.failures = [] then
          Printf.printf "ok   %-12s %3d properties  %5d cases\n%!" name
            r.Runner.props r.Runner.cases
        else begin
          failed := true;
          Printf.printf "FAIL %-12s %3d properties  %5d cases  %d failing\n%!"
            name r.Runner.props r.Runner.cases
            (List.length r.Runner.failures);
          List.iter
            (fun (f : Runner.failure) ->
              Printf.printf "  property: %s\n" f.Runner.prop_name;
              Printf.printf "    %s\n" f.Runner.message;
              if f.Runner.shrunk_from > f.Runner.size then
                Printf.printf "    shrunk from size %d to size %d\n"
                  f.Runner.shrunk_from f.Runner.size;
              Printf.printf "    repro: %s\n%!" (Runner.repro ~suite:name f))
            r.Runner.failures
        end)
      suites;
    if !failed then exit 1
  in
  let suite_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"NAME"
          ~doc:
            "Run a single suite instead of all of them (see --list for the \
             names).")
  in
  let check_seed_arg =
    let doc =
      "Master seed; every case seed is derived from it, so one integer \
       reproduces a whole run."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc =
      "Case budget per property (properties with cost c run count/c cases, \
       at least one)."
    in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc)
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"Print the suite names and exit.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the model-based correctness harness (reference oracles, \
          invariants, metamorphic properties) over generated inputs.  Exits \
          0 when every property holds, 1 with a shrunk, reproducible \
          counterexample otherwise.")
    Term.(
      const run $ suite_arg $ check_seed_arg $ count_arg $ list_arg $ jobs_arg)

(* -- trace: record / compact / inspect / stat ---------------------------- *)

let format_enum =
  Arg.enum
    [ ("text", Mx_trace.Trace_io.Text); ("binary", Mx_trace.Trace_io.Binary) ]

let trace_file_size path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> in_channel_length ic)
  with Sys_error msg -> die_io "cannot read %s: %s" path msg

let load_trace_file path =
  try Mx_trace.Trace_io.load ~path with
  | Sys_error msg -> die_io "cannot load trace: %s" msg
  | Mx_trace.Trace_io.Parse_error { line; message } ->
    die_io "cannot load trace %s: line %d: %s" path line message

let open_trace_stream path =
  try Mx_trace.Trace_io.open_stream ~path with
  | Sys_error msg -> die_io "cannot open trace: %s" msg
  | Mx_trace.Trace_io.Parse_error { line; message } ->
    die_io "cannot open trace %s: line %d: %s" path line message

let detect_trace_format path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let magic = Mx_trace.Trace_codec.magic in
        let n = min (String.length magic) (in_channel_length ic) in
        if really_input_string ic n = magic then Mx_trace.Trace_io.Binary
        else Mx_trace.Trace_io.Text)
  with Sys_error msg -> die_io "cannot read %s: %s" path msg

let bytes_per_access ~bytes ~accesses =
  float_of_int bytes /. float_of_int (max 1 accesses)

let chunk_cap_arg =
  let doc =
    "Chunk capacity of the binary format, in accesses (smaller chunks seek \
     finer, larger chunks compress slightly better)."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

let check_chunk_cap = function
  | Some c when c <= 0 -> die_usage "--chunk must be positive (got %d)" c
  | _ -> ()

let trace_record_cmd =
  let run name scale seed out format chunk_cap =
    check_workload_name name;
    check_chunk_cap chunk_cap;
    validate_out_path (Some out);
    let w = make_workload name ~scale ~seed in
    (try Mx_trace.Trace_io.save ~format ?chunk_cap w ~path:out
     with Sys_error msg -> die_io "cannot save trace: %s" msg);
    let n = Mx_trace.Workload.access_count w in
    let bytes = trace_file_size out in
    Printf.printf "%s: %d accesses -> %s (%d bytes, %.2f bytes/access)\n" name
      n out bytes
      (bytes_per_access ~bytes ~accesses:n)
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let format_arg =
    Arg.(
      value
      & opt format_enum Mx_trace.Trace_io.Binary
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,binary) (default) or $(b,text).")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Generate a workload and save its trace to a file")
    Term.(
      const run $ workload_arg $ scale_arg $ seed_arg $ out_arg $ format_arg
      $ chunk_cap_arg)

let trace_compact_cmd =
  let run inp out format chunk_cap =
    check_chunk_cap chunk_cap;
    validate_out_path (Some out);
    let w = load_trace_file inp in
    (try Mx_trace.Trace_io.save ~format ?chunk_cap w ~path:out
     with Sys_error msg -> die_io "cannot save trace: %s" msg);
    let before = trace_file_size inp and after = trace_file_size out in
    Printf.printf "%s (%d bytes) -> %s (%d bytes, %.2fx)\n" inp before out
      after
      (float_of_int after /. float_of_int (max 1 before))
  in
  let in_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Input trace file (either format).")
  in
  let out_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output trace file.")
  in
  let to_arg =
    Arg.(
      value
      & opt format_enum Mx_trace.Trace_io.Binary
      & info [ "to" ] ~docv:"FORMAT"
          ~doc:"Target format: $(b,binary) (default) or $(b,text).")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Re-encode a trace file (text <-> compact binary)")
    Term.(const run $ in_arg $ out_arg $ to_arg $ chunk_cap_arg)

let trace_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Trace file (either format).")

let trace_inspect_cmd =
  let run path =
    let fmt = detect_trace_format path in
    let bytes = trace_file_size path in
    match fmt with
    | Mx_trace.Trace_io.Binary ->
      (* header + footer index only: constant time, no chunk decode *)
      let sw = open_trace_stream path in
      let st = sw.Mx_trace.Workload.s_stream in
      let index_bytes =
        (Mx_trace.Trace_stream.io_stats st).Mx_trace.Trace_stream.bytes_read
      in
      let n = Mx_trace.Trace_stream.length st in
      Printf.printf "format:    binary (MXTB v%d)\n"
        Mx_trace.Trace_codec.version;
      Printf.printf "workload:  %s\n" sw.Mx_trace.Workload.s_name;
      Printf.printf "cpu_ops:   %d\n" sw.Mx_trace.Workload.s_cpu_ops;
      Printf.printf "accesses:  %d\n" n;
      Printf.printf "chunks:    %d x %d accesses\n"
        (Mx_trace.Trace_stream.chunk_count st)
        (Mx_trace.Trace_stream.chunk_cap st);
      Printf.printf "file:      %d bytes (%.2f bytes/access, %d header+index)\n"
        bytes
        (bytes_per_access ~bytes ~accesses:n)
        index_bytes;
      List.iter
        (fun (r : Mx_trace.Region.t) ->
          Printf.printf "region %d: %s base=0x%x size=%d elem=%d hint=%s\n"
            r.Mx_trace.Region.id r.Mx_trace.Region.name r.Mx_trace.Region.base
            r.Mx_trace.Region.size r.Mx_trace.Region.elem_size
            (Mx_trace.Region.pattern_to_string r.Mx_trace.Region.hint))
        sw.Mx_trace.Workload.s_regions;
      Mx_trace.Trace_stream.close st
    | Mx_trace.Trace_io.Text ->
      let w = load_trace_file path in
      let n = Mx_trace.Workload.access_count w in
      Printf.printf "format:    text (memorex-trace v1)\n";
      Printf.printf "workload:  %s\n" w.Mx_trace.Workload.name;
      Printf.printf "cpu_ops:   %d\n" w.Mx_trace.Workload.cpu_ops;
      Printf.printf "accesses:  %d\n" n;
      Printf.printf "file:      %d bytes (%.2f bytes/access)\n" bytes
        (bytes_per_access ~bytes ~accesses:n);
      List.iter
        (fun (r : Mx_trace.Region.t) ->
          Printf.printf "region %d: %s base=0x%x size=%d elem=%d hint=%s\n"
            r.Mx_trace.Region.id r.Mx_trace.Region.name r.Mx_trace.Region.base
            r.Mx_trace.Region.size r.Mx_trace.Region.elem_size
            (Mx_trace.Region.pattern_to_string r.Mx_trace.Region.hint))
        w.Mx_trace.Workload.regions
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Print a trace file's header and chunk index without decoding the \
          accesses")
    Term.(const run $ trace_path_arg)

let trace_stat_cmd =
  let run path =
    let sw = open_trace_stream path in
    let st = sw.Mx_trace.Workload.s_stream in
    let n = Mx_trace.Trace_stream.length st in
    let reads = ref 0 and writes = ref 0 and traffic = ref 0 in
    let per_region = Hashtbl.create 16 in
    Mx_trace.Trace_stream.iter_packed st ~f:(fun ~addr:_ ~size ~kind ~region ->
        (match kind with
        | Mx_trace.Access.Read -> incr reads
        | Mx_trace.Access.Write -> incr writes);
        traffic := !traffic + size;
        let c, b =
          match Hashtbl.find_opt per_region region with
          | Some v -> v
          | None ->
            let v = (ref 0, ref 0) in
            Hashtbl.add per_region region v;
            v
        in
        incr c;
        b := !b + size);
    Mx_trace.Trace_stream.close st;
    let bytes = trace_file_size path in
    Printf.printf "%s: %d accesses (%d reads, %d writes), %d bytes of traffic\n"
      sw.Mx_trace.Workload.s_name n !reads !writes !traffic;
    Printf.printf "file: %d bytes, %.2f bytes/access\n" bytes
      (bytes_per_access ~bytes ~accesses:n);
    let t =
      Mx_util.Table.create
        ~headers:[ "region"; "accesses"; "share"; "traffic [B]" ]
    in
    let region_name id =
      match
        List.find_opt
          (fun (r : Mx_trace.Region.t) -> r.Mx_trace.Region.id = id)
          sw.Mx_trace.Workload.s_regions
      with
      | Some r -> r.Mx_trace.Region.name
      | None -> Printf.sprintf "#%d" id
    in
    Hashtbl.fold (fun id v acc -> (id, v) :: acc) per_region []
    |> List.sort compare
    |> List.iter (fun (id, (c, b)) ->
           Mx_util.Table.add_row t
             [
               region_name id;
               string_of_int !c;
               Printf.sprintf "%.1f%%"
                 (100.0 *. float_of_int !c /. float_of_int (max 1 n));
               string_of_int !b;
             ]);
    Mx_util.Table.print t
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Stream through a trace file and print access statistics")
    Term.(const run $ trace_path_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record, compact and inspect trace files (text and compact binary \
          formats)")
    [ trace_record_cmd; trace_compact_cmd; trace_inspect_cmd; trace_stat_cmd ]

let main_cmd =
  let doc = "Memory system connectivity exploration (ConEx, DATE 2002)" in
  Cmd.group
    (Cmd.info "conex" ~version:"1.0.0" ~doc)
    [
      profile_cmd; apex_cmd; explore_cmd; select_cmd; strategies_cmd;
      serve_cmd; explain_cmd; status_cmd; runs_cmd; check_cmd; trace_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
