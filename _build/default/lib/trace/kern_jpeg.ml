(* Baseline-JPEG-shaped encoder: real integer DCT-II butterflies over
   8x8 blocks of a synthetic image, quantisation, zig-zag, RLE and a
   hashed Huffman-table lookup.  All data-structure references traced. *)

module Prng = Mx_util.Prng

let name = "jpeg"

let image_w = 512
let image_h = 512
let block = 8
let huff_size = 512

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  image : Region.t;
  work : Region.t;
  qtable : Region.t;
  zigzag : Region.t;
  huff : Region.t;
  bitstream : Region.t;
  pixels : int array;
  coeffs : int array; (* 64-entry working block *)
  quant : int array;
  zz : int array;
  mutable out_pos : int;
  mutable block_x : int;
  mutable block_y : int;
}

(* standard luminance quantisation table (flattened) *)
let q_luma =
  [|
    16; 11; 10; 16; 24; 40; 51; 61; 12; 12; 14; 19; 26; 58; 60; 55; 14; 13;
    16; 24; 40; 57; 69; 56; 14; 17; 22; 29; 51; 87; 80; 62; 18; 22; 37; 56;
    68; 109; 103; 77; 24; 35; 55; 64; 81; 104; 113; 92; 49; 64; 78; 87; 103;
    121; 120; 101; 72; 92; 95; 98; 112; 100; 103; 99;
  |]

let zigzag_order =
  [|
    0; 1; 8; 16; 9; 2; 3; 10; 17; 24; 32; 25; 18; 11; 4; 5; 12; 19; 26; 33;
    40; 48; 41; 34; 27; 20; 13; 6; 7; 14; 21; 28; 35; 42; 49; 56; 57; 50;
    43; 36; 29; 22; 15; 23; 30; 37; 44; 51; 58; 59; 52; 45; 38; 31; 39; 46;
    53; 60; 61; 54; 47; 55; 62; 63;
  |]

let synth_image rng =
  (* smooth gradients + texture: enough energy in low frequencies that
     RLE actually compresses *)
  Array.init (image_w * image_h) (fun i ->
      let x = i mod image_w and y = i / image_w in
      let v =
        128
        + int_of_float (60.0 *. sin (float_of_int x /. 37.0))
        + int_of_float (40.0 *. cos (float_of_int y /. 23.0))
        + Prng.int rng ~bound:17 - 8
      in
      max 0 (min 255 v))

(* one-dimensional integer DCT-II on 8 samples in place (classic
   Loeffler-style staging, coarse integer arithmetic) *)
let dct8 (v : int array) off stride e =
  let g i = v.(off + (i * stride)) in
  let s i x = v.(off + (i * stride)) <- x in
  let a0 = g 0 + g 7 and a7 = g 0 - g 7 in
  let a1 = g 1 + g 6 and a6 = g 1 - g 6 in
  let a2 = g 2 + g 5 and a5 = g 2 - g 5 in
  let a3 = g 3 + g 4 and a4 = g 3 - g 4 in
  let b0 = a0 + a3 and b3 = a0 - a3 in
  let b1 = a1 + a2 and b2 = a1 - a2 in
  s 0 (b0 + b1);
  s 4 (b0 - b1);
  s 2 ((b2 * 54) / 128 + (b3 * 130) / 128);
  s 6 ((b3 * 54) / 128 - (b2 * 130) / 128);
  let c4 = (a4 * 70) / 128 + (a7 * 126) / 128
  and c7 = (a7 * 70) / 128 - (a4 * 126) / 128
  and c5 = (a5 * 100) / 128 + (a6 * 100) / 128
  and c6 = (a6 * 100) / 128 - (a5 * 100) / 128 in
  s 1 (c4 + c5);
  s 5 (c4 - c5);
  s 3 (c7 + c6);
  s 7 (c7 - c6);
  Workload.Emitter.ops e 24

let encode_block st =
  let e = st.e in
  let bx = st.block_x * block and by = st.block_y * block in
  (* fetch the 8x8 tile from the raster *)
  for r = 0 to block - 1 do
    for c = 0 to block - 1 do
      let idx = ((by + r) * image_w) + bx + c in
      Workload.Emitter.read e st.image idx;
      st.coeffs.((r * block) + c) <- st.pixels.(idx) - 128;
      Workload.Emitter.write e st.work ((r * block) + c)
    done
  done;
  (* 2-D DCT: rows then columns over the hot working block *)
  for r = 0 to block - 1 do
    for c = 0 to block - 1 do
      Workload.Emitter.read e st.work ((r * block) + c)
    done;
    dct8 st.coeffs (r * block) 1 e;
    for c = 0 to block - 1 do
      Workload.Emitter.write e st.work ((r * block) + c)
    done
  done;
  for c = 0 to block - 1 do
    for r = 0 to block - 1 do
      Workload.Emitter.read e st.work ((r * block) + c)
    done;
    dct8 st.coeffs c block e;
    for r = 0 to block - 1 do
      Workload.Emitter.write e st.work ((r * block) + c)
    done
  done;
  (* quantise + zig-zag + RLE + Huffman lookups *)
  let run = ref 0 in
  for k = 0 to 63 do
    Workload.Emitter.read e st.zigzag k;
    let pos = st.zz.(k) in
    Workload.Emitter.read e st.work pos;
    Workload.Emitter.read e st.qtable pos;
    let q = st.coeffs.(pos) / max 1 st.quant.(pos) in
    Workload.Emitter.ops e 3;
    if q = 0 then incr run
    else begin
      (* (run, level) symbol through the Huffman table *)
      let sym = abs ((!run * 31) + (q * 7)) mod huff_size in
      Workload.Emitter.read e st.huff sym;
      Workload.Emitter.write e st.bitstream
        (st.out_pos mod (st.bitstream.Region.size / 2));
      st.out_pos <- st.out_pos + 1;
      run := 0
    end
  done;
  (* end-of-block symbol *)
  Workload.Emitter.read e st.huff 0;
  Workload.Emitter.write e st.bitstream
    (st.out_pos mod (st.bitstream.Region.size / 2));
  st.out_pos <- st.out_pos + 1;
  (* advance to the next block in raster order *)
  st.block_x <- st.block_x + 1;
  if st.block_x >= image_w / block then begin
    st.block_x <- 0;
    st.block_y <- (st.block_y + 1) mod (image_h / block)
  end

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_jpeg.generate: scale must be positive";
  let lay = Layout.create () in
  let image =
    Layout.alloc lay ~name:"image" ~elems:(image_w * image_h) ~elem_size:1
      ~hint:Region.Stream
  and work =
    Layout.alloc lay ~name:"work" ~elems:64 ~elem_size:2 ~hint:Region.Indexed
  and qtable =
    Layout.alloc lay ~name:"qtable" ~elems:64 ~elem_size:2 ~hint:Region.Indexed
  and zigzag =
    Layout.alloc lay ~name:"zigzag" ~elems:64 ~elem_size:1 ~hint:Region.Indexed
  and huff =
    Layout.alloc lay ~name:"huff" ~elems:huff_size ~elem_size:4
      ~hint:Region.Random_access
  and bitstream =
    Layout.alloc lay ~name:"bitstream" ~elems:(64 * 1024) ~elem_size:2
      ~hint:Region.Stream
  in
  let rng = Prng.create ~seed in
  let st =
    {
      e = Workload.Emitter.create ();
      rng;
      image;
      work;
      qtable;
      zigzag;
      huff;
      bitstream;
      pixels = synth_image rng;
      coeffs = Array.make 64 0;
      quant = q_luma;
      zz = zigzag_order;
      out_pos = 0;
      block_x = 0;
      block_y = 0;
    }
  in
  while Workload.Emitter.trace_length st.e < scale do
    encode_block st
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
