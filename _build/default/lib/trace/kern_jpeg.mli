(** A JPEG-style image encoder workload (multimedia class).

    Per 8x8 block: raster fetch from the image, level shift, an integer
    8x8 DCT (real row/column butterflies), quantisation through a hot
    table, zig-zag reordering, run-length coding and Huffman-table
    lookups into the output bitstream.

    Region mix: a large input raster (stream with 8-line locality), a
    tiny hot working block and coefficient tables (Indexed), a Huffman
    code table (Random_access) and the output bitstream (stream).  This
    is the "multimedia" pattern class the paper's introduction motivates
    alongside compress/vocoder. *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** Encode blocks until at least [scale] accesses are traced.
    @raise Invalid_argument if [scale <= 0]. *)
