let block_bytes = 32

type region_stats = {
  region : Region.t;
  reads : int;
  writes : int;
  bytes : int;
  footprint : int;
  seq_frac : float;
  reuse : float;
  detected : Region.pattern;
}

type t = {
  workload : Workload.t;
  per_region : region_stats array;
  total_accesses : int;
  total_bytes : int;
  read_frac : float;
}

type acc = {
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_bytes : int;
  mutable a_seq : int;
  mutable a_last : int; (* last address, -1 before the first access *)
  blocks : (int, int) Hashtbl.t;
}

let classify (r : Region.t) acc =
  let total = acc.a_reads + acc.a_writes in
  if total = 0 then Region.Mixed
  else begin
    let footprint = Hashtbl.length acc.blocks * block_bytes in
    let reuse = float_of_int total /. float_of_int (max 1 (Hashtbl.length acc.blocks)) in
    let seq_frac = float_of_int acc.a_seq /. float_of_int total in
    (* A pure stream re-touches each block at most block/elem times
       (<= 32); a genuinely hot array shows reuse far beyond that. *)
    if footprint <= 2048 && reuse >= 64.0 then Region.Indexed
    else if seq_frac >= 0.6 then Region.Stream
    else if seq_frac <= 0.25 then Region.Random_access
    else Region.Mixed
  end
  |> fun detected ->
  ignore r;
  detected

let analyze (w : Workload.t) =
  let nregions = List.length w.Workload.regions in
  let by_id = Array.make nregions None in
  List.iter
    (fun (r : Region.t) ->
      if r.id < 0 || r.id >= nregions then
        invalid_arg "Profile.analyze: non-contiguous region ids";
      by_id.(r.id) <- Some r)
    w.Workload.regions;
  let accs =
    Array.init nregions (fun _ ->
        {
          a_reads = 0;
          a_writes = 0;
          a_bytes = 0;
          a_seq = 0;
          a_last = -1;
          blocks = Hashtbl.create 64;
        })
  in
  let total_accesses = ref 0 and total_bytes = ref 0 and total_reads = ref 0 in
  Trace.iter_packed w.Workload.trace ~f:(fun ~addr ~size ~kind ~region ->
      if region >= nregions then
        invalid_arg "Profile.analyze: trace references undeclared region";
      let a = accs.(region) in
      (match kind with
      | Access.Read ->
        a.a_reads <- a.a_reads + 1;
        incr total_reads
      | Access.Write -> a.a_writes <- a.a_writes + 1);
      a.a_bytes <- a.a_bytes + size;
      let elem =
        match by_id.(region) with Some r -> r.Region.elem_size | None -> 4
      in
      if a.a_last >= 0 then begin
        let stride = addr - a.a_last in
        if stride >= 0 && stride <= 2 * elem then a.a_seq <- a.a_seq + 1
      end;
      a.a_last <- addr;
      let blk = addr / block_bytes in
      (match Hashtbl.find_opt a.blocks blk with
      | Some n -> Hashtbl.replace a.blocks blk (n + 1)
      | None -> Hashtbl.add a.blocks blk 1);
      incr total_accesses;
      total_bytes := !total_bytes + size);
  let per_region =
    Array.mapi
      (fun i a ->
        let region =
          match by_id.(i) with
          | Some r -> r
          | None ->
            invalid_arg "Profile.analyze: missing region declaration"
        in
        let total = a.a_reads + a.a_writes in
        let nblocks = max 1 (Hashtbl.length a.blocks) in
        {
          region;
          reads = a.a_reads;
          writes = a.a_writes;
          bytes = a.a_bytes;
          footprint = Hashtbl.length a.blocks * block_bytes;
          seq_frac =
            (if total = 0 then 0.0
             else float_of_int a.a_seq /. float_of_int total);
          reuse = float_of_int total /. float_of_int nblocks;
          detected = classify region a;
        })
      accs
  in
  {
    workload = w;
    per_region;
    total_accesses = !total_accesses;
    total_bytes = !total_bytes;
    read_frac =
      (if !total_accesses = 0 then 0.0
       else float_of_int !total_reads /. float_of_int !total_accesses);
  }

let stats t (r : Region.t) =
  if r.id < 0 || r.id >= Array.length t.per_region then
    invalid_arg "Profile.stats: unknown region";
  t.per_region.(r.id)

let pattern t (r : Region.t) =
  match r.hint with
  | Region.Self_indirect -> Region.Self_indirect
  | _ -> (stats t r).detected

let bandwidth_share t r =
  if t.total_bytes = 0 then 0.0
  else float_of_int (stats t r).bytes /. float_of_int t.total_bytes

let pp_summary fmt t =
  Format.fprintf fmt "workload %s: %d accesses, %d bytes, %.1f%% reads@."
    t.workload.Workload.name t.total_accesses t.total_bytes
    (100.0 *. t.read_frac);
  Array.iter
    (fun s ->
      Format.fprintf fmt
        "  %-10s %8d R %8d W  %9dB traffic  %8dB fp  seq %.2f reuse %6.1f  -> %s@."
        s.region.Region.name s.reads s.writes s.bytes s.footprint s.seq_frac
        s.reuse
        (Region.pattern_to_string s.detected))
    t.per_region
