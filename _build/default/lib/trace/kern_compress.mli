(** The [compress] workload (stand-in for SPEC95 129.compress).

    A faithful LZW compressor/decompressor pair instrumented at the
    data-structure level.  It reproduces the access-pattern mix the
    paper exploits for this benchmark:

    - [input], [codes], [decout]: sequential streams;
    - [htab]/[codetab]: large hash tables probed pseudo-randomly
      (open addressing with secondary probing, as in compress.c);
    - [chains]: the prefix/suffix code table, walked by the decoder via
      {e self-indirect} references — the value loaded at [chains\[code\]]
      is the next code to load, exactly the pattern the paper's
      linked-list-DMA module targets;
    - [stack]: a small hot decode stack.

    The synthetic input has LZ-style redundancy (zipf symbols plus
    repeated phrases) so the dictionary actually fills and chains grow. *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** [generate ~scale ~seed] runs the kernel until the trace holds at
    least [scale] accesses (the final size slightly overshoots; the
    kernel always finishes the byte it is processing).
    @raise Invalid_argument if [scale <= 0]. *)
