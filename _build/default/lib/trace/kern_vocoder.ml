(* GSM 06.10-style full-rate encoder skeleton.  The arithmetic is the
   real fixed-point shape of the standard (autocorrelation, Schur
   recursion, LTP cross-correlation search, RPE decimation) over
   synthetic speech; only the bit-exact details are simplified.  Every
   array reference is traced. *)

module Prng = Mx_util.Prng

let name = "vocoder"

let frame_len = 160
let subframes = 4
let sub_len = 40
let lpc_order = 8
let ltp_min = 40
let ltp_max = 120
let qlut_size = 1024

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  speech_in : Region.t;
  frame_buf : Region.t;
  lpc_coef : Region.t;
  st_state : Region.t;
  ltp_hist : Region.t;
  qlut : Region.t;
  params_out : Region.t;
  frame : int array;
  hist : int array;
  coef : int array;
  mutable in_pos : int;
  mutable out_pos : int;
  mutable phase : float;
}

let emit_out st =
  Workload.Emitter.write st.e st.params_out
    (st.out_pos mod (st.params_out.Region.size / 2));
  st.out_pos <- st.out_pos + 1

(* synthetic speech: two drifting sinusoids + noise, vaguely voiced *)
let next_sample st =
  st.phase <- st.phase +. 0.07 +. (0.01 *. Prng.float st.rng);
  let v =
    (3000.0 *. sin st.phase)
    +. (1200.0 *. sin (2.3 *. st.phase))
    +. Prng.gaussian st.rng ~mu:0.0 ~sigma:200.0
  in
  int_of_float v

let load_frame st =
  for n = 0 to frame_len - 1 do
    Workload.Emitter.read st.e st.speech_in
      (st.in_pos mod (st.speech_in.Region.size / 2));
    st.in_pos <- st.in_pos + 1;
    let s = next_sample st in
    st.frame.(n) <- s;
    Workload.Emitter.write st.e st.frame_buf n;
    Workload.Emitter.ops st.e 2
  done

let autocorrelation st =
  (* acf[k] = sum_n s[n] * s[n-k]; the frame buffer is re-read once per
     lag, the dominant hot-array pattern of the encoder *)
  let acf = Array.make (lpc_order + 1) 0 in
  for k = 0 to lpc_order do
    let acc = ref 0 in
    for n = k to frame_len - 1 do
      Workload.Emitter.read st.e st.frame_buf n;
      Workload.Emitter.read st.e st.frame_buf (n - k);
      acc := !acc + (st.frame.(n) / 64 * (st.frame.(n - k) / 64));
      Workload.Emitter.ops st.e 2
    done;
    acf.(k) <- !acc
  done;
  acf

let schur st acf =
  (* reflection coefficients from the autocorrelation sequence *)
  let p = Array.copy acf and k = Array.make lpc_order 0 in
  for i = 0 to lpc_order - 1 do
    if p.(0) <> 0 then k.(i) <- -(p.(i + 1) * 32768 / max 1 (abs p.(0)));
    for j = 0 to lpc_order - i - 2 do
      p.(j + 1) <- p.(j + 1) + (k.(i) * p.(j) / 32768);
      Workload.Emitter.ops st.e 3
    done;
    st.coef.(i) <- k.(i);
    Workload.Emitter.write st.e st.lpc_coef i
  done

let quantize st v =
  (* table-driven quantiser: hashed probe into the LUT *)
  let idx = abs (v * 2654435761) mod qlut_size in
  Workload.Emitter.read st.e st.qlut idx;
  Workload.Emitter.ops st.e 1;
  idx land 63

let short_term_filter st =
  for n = 0 to frame_len - 1 do
    Workload.Emitter.read st.e st.frame_buf n;
    let acc = ref st.frame.(n) in
    for i = 0 to lpc_order - 1 do
      Workload.Emitter.read st.e st.lpc_coef i;
      Workload.Emitter.read st.e st.st_state i;
      acc := !acc + (st.coef.(i) / 256);
      Workload.Emitter.ops st.e 2
    done;
    Workload.Emitter.write st.e st.st_state (n mod lpc_order);
    st.frame.(n) <- !acc
  done

let ltp_search st sub =
  (* exhaustive lag search over the reconstructed-history window *)
  let base = sub * sub_len in
  let best_lag = ref ltp_min and best_corr = ref min_int in
  for lag = ltp_min to ltp_max do
    let corr = ref 0 in
    for n = 0 to sub_len - 1 do
      Workload.Emitter.read st.e st.frame_buf (base + n);
      Workload.Emitter.read st.e st.ltp_hist (ltp_max + n - lag);
      corr :=
        !corr + (st.frame.(base + n) / 64 * (st.hist.(ltp_max + n - lag) / 64));
      Workload.Emitter.ops st.e 2
    done;
    if !corr > !best_corr then begin
      best_corr := !corr;
      best_lag := lag
    end
  done;
  (* update history with this subframe *)
  for n = 0 to sub_len - 1 do
    let h = (ltp_max + n) mod (ltp_max + sub_len) in
    Workload.Emitter.write st.e st.ltp_hist h;
    st.hist.(h) <- st.frame.(base + n);
    Workload.Emitter.ops st.e 1
  done;
  !best_lag

let rpe_encode st sub lag =
  let base = sub * sub_len in
  (* 3:1 decimated grid selection: three candidate grids, pick max energy *)
  let best_grid = ref 0 and best_energy = ref min_int in
  for grid = 0 to 2 do
    let energy = ref 0 in
    let n = ref grid in
    while !n < sub_len do
      Workload.Emitter.read st.e st.frame_buf (base + !n);
      energy := !energy + (st.frame.(base + !n) / 64 * (st.frame.(base + !n) / 64));
      Workload.Emitter.ops st.e 2;
      n := !n + 3
    done;
    if !energy > !best_energy then begin
      best_energy := !energy;
      best_grid := grid
    end
  done;
  (* quantise the 13 selected pulses + side info *)
  let n = ref !best_grid in
  while !n < sub_len do
    let q = quantize st st.frame.(base + !n) in
    ignore q;
    emit_out st;
    n := !n + 3
  done;
  emit_out st;
  (* lag + grid side info *)
  ignore lag

let encode_frame st =
  load_frame st;
  let acf = autocorrelation st in
  schur st acf;
  (* LAR parameters out *)
  for i = 0 to lpc_order - 1 do
    Workload.Emitter.read st.e st.lpc_coef i;
    let q = quantize st st.coef.(i) in
    ignore q;
    emit_out st
  done;
  short_term_filter st;
  for sub = 0 to subframes - 1 do
    let lag = ltp_search st sub in
    rpe_encode st sub lag
  done

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_vocoder.generate: scale must be positive";
  let lay = Layout.create () in
  let speech_in =
    Layout.alloc lay ~name:"speech_in" ~elems:(64 * 1024) ~elem_size:2
      ~hint:Region.Stream
  and frame_buf =
    Layout.alloc lay ~name:"frame_buf" ~elems:frame_len ~elem_size:2
      ~hint:Region.Indexed
  and lpc_coef =
    Layout.alloc lay ~name:"lpc_coef" ~elems:lpc_order ~elem_size:2
      ~hint:Region.Indexed
  and st_state =
    Layout.alloc lay ~name:"st_state" ~elems:lpc_order ~elem_size:2
      ~hint:Region.Indexed
  and ltp_hist =
    Layout.alloc lay ~name:"ltp_hist" ~elems:(ltp_max + sub_len) ~elem_size:2
      ~hint:Region.Indexed
  and qlut =
    Layout.alloc lay ~name:"qlut" ~elems:qlut_size ~elem_size:2
      ~hint:Region.Random_access
  and params_out =
    Layout.alloc lay ~name:"params_out" ~elems:(16 * 1024) ~elem_size:2
      ~hint:Region.Stream
  in
  let st =
    {
      e = Workload.Emitter.create ();
      rng = Prng.create ~seed;
      speech_in;
      frame_buf;
      lpc_coef;
      st_state;
      ltp_hist;
      qlut;
      params_out;
      frame = Array.make frame_len 0;
      hist = Array.make (ltp_max + sub_len) 0;
      coef = Array.make lpc_order 0;
      in_pos = 0;
      out_pos = 0;
      phase = 0.0;
    }
  in
  while Workload.Emitter.trace_length st.e < scale do
    encode_frame st
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
