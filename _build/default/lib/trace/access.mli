(** A single memory reference as seen by the CPU.

    MemorEx is trace-driven: workload kernels ({!Kern_compress},
    {!Kern_li}, {!Kern_vocoder}, {!Synthetic}) emit a stream of accesses,
    and every downstream stage — profiling, APEX, ConEx, the cycle
    simulator — consumes that stream.  This mirrors the paper's setup
    where SHADE produced the reference stream for SIMPRESS. *)

type kind = Read | Write

type t = {
  addr : int;  (** byte address *)
  size : int;  (** access width in bytes: 1, 2, 4 or 8 *)
  kind : kind;
  region : int;  (** id of the data-structure region being referenced *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val size_code : int -> int
(** Encode an access width (1/2/4/8 bytes) into a 2-bit code.
    @raise Invalid_argument for any other width. *)

val size_of_code : int -> int
(** Inverse of {!size_code} for codes 0..3. *)
