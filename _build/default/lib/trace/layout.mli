(** Address-space layout for workload regions.

    A simple bump allocator over the (off-chip) physical address space.
    Regions are aligned and padded so that distinct regions never share
    a cache line, which keeps miss attribution per data structure exact
    — the property APEX depends on. *)

type t

val create : ?base:int -> ?align:int -> unit -> t
(** [create ~base ~align ()] starts allocating at [base] (default
    [0x1000_0000], a typical off-chip DRAM window) with alignment
    [align] bytes (default 64, a safe upper bound on the cache lines
    explored).  @raise Invalid_argument if [align] is not a power of
    two. *)

val alloc :
  t -> name:string -> elems:int -> elem_size:int -> hint:Region.pattern ->
  Region.t
(** Allocate a region of [elems * elem_size] bytes (rounded up to the
    alignment), assigning the next region id (0, 1, 2, ...). *)

val regions : t -> Region.t list
(** All regions allocated so far, in id order. *)

val find : t -> addr:int -> Region.t option
(** Region containing [addr], if any. *)
