(* Dijkstra over an adjacency-list graph with an explicit binary heap.
   Edge lists are real linked cells ((target, weight, next) records laid
   out in one arena in insertion order), so traversal is genuine pointer
   chasing. *)

module Prng = Mx_util.Prng

let name = "dijkstra"

let n_nodes = 1024
let avg_degree = 6
let nil = -1

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  nodes : Region.t; (* head pointer per node *)
  edges : Region.t; (* edge cells: (target, weight, next) *)
  dist : Region.t;
  heap : Region.t;
  head : int array;
  edge_target : int array;
  edge_weight : int array;
  edge_next : int array;
  distance : int array;
  heap_node : int array;
  heap_key : int array;
  mutable heap_len : int;
}

(* -- binary heap (traced) ------------------------------------------- *)

let heap_swap st i j =
  let tn = st.heap_node.(i) and tk = st.heap_key.(i) in
  st.heap_node.(i) <- st.heap_node.(j);
  st.heap_key.(i) <- st.heap_key.(j);
  st.heap_node.(j) <- tn;
  st.heap_key.(j) <- tk;
  Workload.Emitter.write st.e st.heap i;
  Workload.Emitter.write st.e st.heap j

let rec sift_up st i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    Workload.Emitter.read st.e st.heap parent;
    Workload.Emitter.read st.e st.heap i;
    Workload.Emitter.ops st.e 2;
    if st.heap_key.(i) < st.heap_key.(parent) then begin
      heap_swap st i parent;
      sift_up st parent
    end
  end

let rec sift_down st i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < st.heap_len then begin
    Workload.Emitter.read st.e st.heap l;
    if st.heap_key.(l) < st.heap_key.(!best) then best := l
  end;
  if r < st.heap_len then begin
    Workload.Emitter.read st.e st.heap r;
    if st.heap_key.(r) < st.heap_key.(!best) then best := r
  end;
  Workload.Emitter.ops st.e 3;
  if !best <> i then begin
    heap_swap st i !best;
    sift_down st !best
  end

let heap_push st node key =
  let i = st.heap_len in
  if i < Array.length st.heap_node then begin
    st.heap_node.(i) <- node;
    st.heap_key.(i) <- key;
    st.heap_len <- st.heap_len + 1;
    Workload.Emitter.write st.e st.heap i;
    sift_up st i
  end

let heap_pop st =
  if st.heap_len = 0 then None
  else begin
    Workload.Emitter.read st.e st.heap 0;
    let node = st.heap_node.(0) and key = st.heap_key.(0) in
    st.heap_len <- st.heap_len - 1;
    st.heap_node.(0) <- st.heap_node.(st.heap_len);
    st.heap_key.(0) <- st.heap_key.(st.heap_len);
    Workload.Emitter.write st.e st.heap 0;
    sift_down st 0;
    Some (node, key)
  end

(* -- graph construction ---------------------------------------------- *)

let build_graph st =
  let n_edges = Array.length st.edge_target in
  let cursor = ref 0 in
  (* a ring backbone keeps the graph connected, then random extra edges;
     edge cells are allocated in shuffled order so "next" pointers jump
     around the arena like a real mutated heap *)
  let add_edge u v w =
    if !cursor < n_edges then begin
      let cell = !cursor in
      incr cursor;
      st.edge_target.(cell) <- v;
      st.edge_weight.(cell) <- w;
      st.edge_next.(cell) <- st.head.(u);
      st.head.(u) <- cell
    end
  in
  for u = 0 to n_nodes - 1 do
    add_edge u ((u + 1) mod n_nodes) (1 + Prng.int st.rng ~bound:9)
  done;
  while !cursor < n_edges do
    let u = Prng.int st.rng ~bound:n_nodes in
    let v = Prng.int st.rng ~bound:n_nodes in
    if u <> v then add_edge u v (1 + Prng.int st.rng ~bound:99)
  done

(* -- the search -------------------------------------------------------- *)

let dijkstra st source =
  Array.fill st.distance 0 n_nodes max_int;
  st.heap_len <- 0;
  st.distance.(source) <- 0;
  Workload.Emitter.write st.e st.dist source;
  heap_push st source 0;
  let budget = ref (n_nodes * 2) in
  let continue = ref true in
  while !continue && !budget > 0 do
    decr budget;
    match heap_pop st with
    | None -> continue := false
    | Some (u, key) ->
      Workload.Emitter.read st.e st.dist u;
      if key <= st.distance.(u) then begin
        (* chase the adjacency list: self-indirect loads on the arena *)
        Workload.Emitter.read st.e st.nodes u;
        let cell = ref st.head.(u) in
        while !cell <> nil do
          Workload.Emitter.read st.e st.edges !cell;
          let v = st.edge_target.(!cell)
          and w = st.edge_weight.(!cell) in
          let nd = key + w in
          Workload.Emitter.read st.e st.dist v;
          Workload.Emitter.ops st.e 3;
          if nd < st.distance.(v) then begin
            st.distance.(v) <- nd;
            Workload.Emitter.write st.e st.dist v;
            heap_push st v nd
          end;
          cell := st.edge_next.(!cell)
        done
      end
  done

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_graph.generate: scale must be positive";
  let n_edges = n_nodes * avg_degree in
  let lay = Layout.create () in
  let nodes =
    Layout.alloc lay ~name:"nodes" ~elems:n_nodes ~elem_size:4
      ~hint:Region.Random_access
  and edges =
    Layout.alloc lay ~name:"edges" ~elems:n_edges ~elem_size:8
      ~hint:Region.Self_indirect
  and dist =
    Layout.alloc lay ~name:"dist" ~elems:n_nodes ~elem_size:4
      ~hint:Region.Random_access
  and heap =
    Layout.alloc lay ~name:"heap" ~elems:n_nodes ~elem_size:8
      ~hint:Region.Indexed
  in
  let st =
    {
      e = Workload.Emitter.create ();
      rng = Prng.create ~seed;
      nodes;
      edges;
      dist;
      heap;
      head = Array.make n_nodes nil;
      edge_target = Array.make n_edges 0;
      edge_weight = Array.make n_edges 0;
      edge_next = Array.make n_edges nil;
      distance = Array.make n_nodes max_int;
      heap_node = Array.make n_nodes 0;
      heap_key = Array.make n_nodes 0;
      heap_len = 0;
    }
  in
  build_graph st;
  while Workload.Emitter.trace_length st.e < scale do
    dijkstra st (Prng.int st.rng ~bound:n_nodes)
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
