(** Workload (trace + region table) persistence.

    A simple line-oriented text format so users can bring traces from
    external tools (or ship a captured trace with a bug report) and so
    long traces need not be regenerated for every experiment:

    {v
    # memorex-trace v1
    workload <name>
    cpu_ops <count>
    region <id> <name> <base-hex> <size> <elem_size> <pattern>
    ...
    trace <count>
    R <addr-hex> <size> <region-id>
    W <addr-hex> <size> <region-id>
    ...
    v} *)

exception Parse_error of { line : int; message : string }

val save : Workload.t -> path:string -> unit
(** Write a workload to [path] (overwrites). *)

val load : path:string -> Workload.t
(** @raise Parse_error on malformed input; @raise Sys_error on I/O
    failures. *)

val to_string : Workload.t -> string
(** In-memory serialisation (used by [save] and the tests). *)

val of_string : string -> Workload.t
(** @raise Parse_error as for [load]. *)
