(** The [li] workload (stand-in for SPEC95 130.li, the xlisp
    interpreter).

    A miniature list-processing engine over a real cons-cell heap:

    - [cells]: the cons heap; built by bump allocation, then traversed
      by cdr-chasing ({e self-indirect}), and periodically mark/swept by
      a stop-the-world GC (mark = pointer chasing, sweep = sequential);
    - [symtab]: open-addressed symbol table, pseudo-random probes;
    - [env]: small hot environment/binding array;
    - [prog]: the interpreted token stream (sequential);
    - [result]: output stream.

    As in the paper, the dominant access pattern is pointer-chasing over
    a heap much larger than any sensible cache, which is what makes the
    linked-list DMA modules profitable and the [Full] exploration space
    large. *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** Run the interpreter until at least [scale] accesses are traced.
    @raise Invalid_argument if [scale <= 0]. *)
