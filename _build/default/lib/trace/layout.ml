type t = {
  align : int;
  mutable cursor : int;
  mutable regs : Region.t list; (* reversed *)
  mutable next_id : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(base = 0x1000_0000) ?(align = 64) () =
  if not (is_pow2 align) then invalid_arg "Layout.create: align not a power of 2";
  { align; cursor = base; regs = []; next_id = 0 }

let round_up v a = (v + a - 1) land lnot (a - 1)

let alloc t ~name ~elems ~elem_size ~hint =
  if elems <= 0 || elem_size <= 0 then
    invalid_arg "Layout.alloc: non-positive region dimensions";
  let size = round_up (elems * elem_size) t.align in
  let r =
    {
      Region.id = t.next_id;
      name;
      base = t.cursor;
      size;
      elem_size;
      hint;
    }
  in
  t.cursor <- t.cursor + size;
  t.next_id <- t.next_id + 1;
  t.regs <- r :: t.regs;
  r

let regions t = List.rev t.regs

let find t ~addr = List.find_opt (fun r -> Region.contains r addr) (regions t)
