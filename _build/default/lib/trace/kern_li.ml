(* A miniature lisp-ish list engine with a real two-word cons heap, a
   mark/sweep collector and an interned symbol table.  Every cell,
   symbol-table and environment touch is traced. *)

module Prng = Mx_util.Prng

let name = "li"

let heap_cells = 24 * 1024
let symtab_size = 4093 (* prime, open addressing *)
let env_slots = 256
let nil = -1

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  cells : Region.t;
  symtab : Region.t;
  env : Region.t;
  prog : Region.t;
  result : Region.t;
  car : int array;
  cdr : int array;
  marked : Bytes.t;
  symbols : int array;
  mutable free : int; (* head of the free list *)
  mutable live_roots : int list; (* protected list heads *)
  mutable prog_pos : int;
  mutable out_pos : int;
}

let read_cell st i =
  Workload.Emitter.read st.e st.cells i;
  (st.car.(i), st.cdr.(i))

let write_cell st i ~car ~cdr =
  Workload.Emitter.write st.e st.cells i;
  st.car.(i) <- car;
  st.cdr.(i) <- cdr

(* -- allocation ---------------------------------------------------- *)

let build_free_list st =
  for i = 0 to heap_cells - 2 do
    st.car.(i) <- 0;
    st.cdr.(i) <- i + 1
  done;
  st.car.(heap_cells - 1) <- 0;
  st.cdr.(heap_cells - 1) <- nil;
  st.free <- 0

exception Heap_exhausted

let cons st ~car ~cdr =
  if st.free = nil then raise Heap_exhausted;
  let cell = st.free in
  let _, next = read_cell st cell in
  st.free <- next;
  write_cell st cell ~car ~cdr;
  Workload.Emitter.ops st.e 2;
  cell

(* -- garbage collection -------------------------------------------- *)

let rec mark st cell =
  if cell <> nil && Bytes.get st.marked cell = '\000' then begin
    Bytes.set st.marked cell '\001';
    let car, cdr = read_cell st cell in
    Workload.Emitter.ops st.e 2;
    (* car holds a symbol payload (non-pointer) for leaves, or a cell
       index for nested lists, distinguished by tag bit *)
    if car land 1 = 0 && car / 2 < heap_cells && car >= 0 then mark st (car / 2);
    mark st cdr
  end

let sweep st =
  Bytes.fill st.marked 0 heap_cells '\000';
  List.iter (fun root -> mark st root) st.live_roots;
  (* sequential sweep rebuilding the free list *)
  let free = ref nil in
  for i = heap_cells - 1 downto 0 do
    if Bytes.get st.marked i = '\000' then begin
      Workload.Emitter.write st.e st.cells i;
      st.cdr.(i) <- !free;
      free := i
    end
  done;
  st.free <- !free;
  if st.free = nil then begin
    (* heap entirely live: drop every root and rebuild *)
    st.live_roots <- [];
    build_free_list st
  end

let cons_gc st ~car ~cdr =
  match cons st ~car ~cdr with
  | cell -> cell
  | exception Heap_exhausted ->
    sweep st;
    cons st ~car ~cdr

(* -- symbol interning ---------------------------------------------- *)

let intern st sym =
  let h = ref (abs (sym * 2654435761) mod symtab_size) in
  let rec probe tries =
    Workload.Emitter.read st.e st.symtab !h;
    if st.symbols.(!h) = sym then !h
    else if st.symbols.(!h) = -1 || tries > 6 then begin
      Workload.Emitter.write st.e st.symtab !h;
      st.symbols.(!h) <- sym;
      !h
    end
    else begin
      h := (!h + 1) mod symtab_size;
      Workload.Emitter.ops st.e 1;
      probe (tries + 1)
    end
  in
  probe 0

(* -- interpreter steps ---------------------------------------------- *)

let next_token st =
  Workload.Emitter.read st.e st.prog (st.prog_pos mod (st.prog.Region.size / 2));
  st.prog_pos <- st.prog_pos + 1;
  Prng.zipf st.rng ~n:512 ~s:1.05

let build_list st len =
  let head = ref nil in
  for _ = 1 to len do
    let sym = next_token st in
    let slot = intern st sym in
    Workload.Emitter.read st.e st.env (slot mod env_slots);
    (* leaf payload tagged with low bit set *)
    head := cons_gc st ~car:((sym * 2) + 1) ~cdr:!head
  done;
  !head

let traverse st head =
  (* cdr-chasing walk: the textbook self-indirect pattern *)
  let count = ref 0 in
  let cell = ref head in
  while !cell <> nil do
    let _, cdr = read_cell st !cell in
    Workload.Emitter.ops st.e 1;
    cell := cdr;
    incr count
  done;
  !count

let map_list st head =
  (* allocate a fresh list of the same spine *)
  let out = ref nil in
  let cell = ref head in
  while !cell <> nil do
    let car, cdr = read_cell st !cell in
    out := cons_gc st ~car ~cdr:!out;
    Workload.Emitter.ops st.e 2;
    cell := cdr
  done;
  !out

let emit_result st v =
  Workload.Emitter.write st.e st.result (st.out_pos mod (st.result.Region.size / 4));
  Workload.Emitter.ops st.e 1;
  ignore v;
  st.out_pos <- st.out_pos + 1

let step st =
  let op = Prng.int st.rng ~bound:10 in
  let pick_root () =
    match st.live_roots with
    | [] -> nil
    | roots -> List.nth roots (Prng.int st.rng ~bound:(List.length roots))
  in
  if op < 4 then begin
    (* build a fresh list and keep it live *)
    let len = 4 + Prng.zipf st.rng ~n:120 ~s:0.9 in
    let l = build_list st len in
    st.live_roots <- l :: st.live_roots;
    if List.length st.live_roots > 48 then
      st.live_roots <-
        List.filteri (fun i _ -> i < 40) st.live_roots
  end
  else if op < 8 then begin
    let r = pick_root () in
    if r <> nil then emit_result st (traverse st r)
  end
  else begin
    let r = pick_root () in
    if r <> nil then begin
      let l = map_list st r in
      st.live_roots <- l :: st.live_roots
    end
  end

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_li.generate: scale must be positive";
  let lay = Layout.create () in
  let cells =
    Layout.alloc lay ~name:"cells" ~elems:heap_cells ~elem_size:8
      ~hint:Region.Self_indirect
  and symtab =
    Layout.alloc lay ~name:"symtab" ~elems:symtab_size ~elem_size:4
      ~hint:Region.Random_access
  and env =
    Layout.alloc lay ~name:"env" ~elems:env_slots ~elem_size:4
      ~hint:Region.Indexed
  and prog =
    Layout.alloc lay ~name:"prog" ~elems:(64 * 1024) ~elem_size:2
      ~hint:Region.Stream
  and result =
    Layout.alloc lay ~name:"result" ~elems:(32 * 1024) ~elem_size:4
      ~hint:Region.Stream
  in
  let st =
    {
      e = Workload.Emitter.create ();
      rng = Prng.create ~seed;
      cells;
      symtab;
      env;
      prog;
      result;
      car = Array.make heap_cells 0;
      cdr = Array.make heap_cells nil;
      marked = Bytes.make heap_cells '\000';
      symbols = Array.make symtab_size (-1);
      free = 0;
      live_roots = [];
      prog_pos = 0;
      out_pos = 0;
    }
  in
  build_free_list st;
  while Workload.Emitter.trace_length st.e < scale do
    step st
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
