(** Configurable synthetic workload generator.

    Used by the test suite (where ground truth must be known exactly),
    by the ablation benches, and by the "bring your own workload"
    example.  Each region spec describes one data structure and how the
    synthetic program touches it; the generator interleaves accesses
    according to the [share] weights. *)

type spec = {
  region_name : string;
  elems : int;
  elem_size : int;
  hint : Region.pattern;
      (** which reference pattern to synthesise over the region *)
  share : float;  (** relative access weight, must be > 0 *)
  write_frac : float;  (** fraction of accesses that are writes *)
  skew : float;
      (** zipf exponent for [Indexed]/[Random_access] regions; ignored
          for streams and pointer chases *)
}

val spec :
  ?elem_size:int -> ?write_frac:float -> ?skew:float -> ?share:float ->
  name:string -> elems:int -> Region.pattern -> spec
(** Convenience constructor with defaults [elem_size = 4],
    [write_frac = 0.3], [skew = 0.8], [share = 1.0]. *)

val generate :
  name:string -> specs:spec list -> scale:int -> seed:int -> Workload.t
(** [generate ~name ~specs ~scale ~seed] emits exactly [scale] accesses.
    @raise Invalid_argument on an empty spec list, non-positive scale or
    a non-positive share. *)
