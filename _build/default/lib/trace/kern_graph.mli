(** A graph-traversal workload (pointer-chasing class, like li).

    Dijkstra-style shortest-path search over an adjacency-list graph
    stored as real linked structures: a node table (random access keyed
    by the frontier), per-node edge lists chased pointer-by-pointer
    ({e self-indirect} — the linked-list DMA's target pattern), a binary
    heap priority queue (hot, indexed) and a distance table.

    The paper's li benchmark shows how pointer-dominated workloads
    benefit from self-indirect DMA modules; this kernel provides a
    second, independent workload in the same class with a very different
    algorithm. *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** Run single-source searches from random sources until at least
    [scale] accesses are traced.
    @raise Invalid_argument if [scale <= 0]. *)
