(* Iterative radix-2 DIT FFT over fixed-point complex frames.  The
   arithmetic is real (scaled integers); every buffer and twiddle access
   is traced. *)

module Prng = Mx_util.Prng

let name = "fft"

let n_points = 4096
let log2n = 12

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  input : Region.t;
  buf : Region.t; (* interleaved re/im, 2 * n_points elements *)
  twiddle : Region.t;
  output : Region.t;
  re : int array;
  im : int array;
  tw_re : int array;
  tw_im : int array;
  mutable in_pos : int;
  mutable out_pos : int;
}

let bit_reverse x bits =
  let r = ref 0 and v = ref x in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!v land 1);
    v := !v lsr 1
  done;
  !r

let load_frame st =
  for i = 0 to n_points - 1 do
    Workload.Emitter.read st.e st.input
      (st.in_pos mod (st.input.Region.size / 2));
    st.in_pos <- st.in_pos + 1;
    st.re.(i) <-
      int_of_float (1000.0 *. sin (float_of_int i /. 5.0))
      + Prng.int st.rng ~bound:101 - 50;
    st.im.(i) <- 0;
    Workload.Emitter.write st.e st.buf (2 * i);
    Workload.Emitter.write st.e st.buf ((2 * i) + 1);
    Workload.Emitter.ops st.e 2
  done

let bit_reversal_pass st =
  for i = 0 to n_points - 1 do
    let j = bit_reverse i log2n in
    if j > i then begin
      Workload.Emitter.read st.e st.buf (2 * i);
      Workload.Emitter.read st.e st.buf (2 * j);
      let tr = st.re.(i) and ti = st.im.(i) in
      st.re.(i) <- st.re.(j);
      st.im.(i) <- st.im.(j);
      st.re.(j) <- tr;
      st.im.(j) <- ti;
      Workload.Emitter.write st.e st.buf (2 * i);
      Workload.Emitter.write st.e st.buf (2 * j);
      Workload.Emitter.ops st.e 3
    end
  done

let butterfly_stages st =
  let len = ref 2 in
  while !len <= n_points do
    let half = !len / 2 in
    let step = n_points / !len in
    let i = ref 0 in
    while !i < n_points do
      for k = 0 to half - 1 do
        let tw_idx = k * step in
        Workload.Emitter.read st.e st.twiddle tw_idx;
        let a = !i + k and b = !i + k + half in
        Workload.Emitter.read st.e st.buf (2 * a);
        Workload.Emitter.read st.e st.buf (2 * b);
        let wr = st.tw_re.(tw_idx) and wi = st.tw_im.(tw_idx) in
        let xr = ((st.re.(b) * wr) - (st.im.(b) * wi)) / 1024
        and xi = ((st.re.(b) * wi) + (st.im.(b) * wr)) / 1024 in
        st.re.(b) <- st.re.(a) - xr;
        st.im.(b) <- st.im.(a) - xi;
        st.re.(a) <- st.re.(a) + xr;
        st.im.(a) <- st.im.(a) + xi;
        Workload.Emitter.write st.e st.buf (2 * a);
        Workload.Emitter.write st.e st.buf (2 * b);
        Workload.Emitter.ops st.e 10
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let store_frame st =
  for i = 0 to n_points - 1 do
    Workload.Emitter.read st.e st.buf (2 * i);
    Workload.Emitter.write st.e st.output
      (st.out_pos mod (st.output.Region.size / 4));
    st.out_pos <- st.out_pos + 1;
    Workload.Emitter.ops st.e 1
  done

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_fft.generate: scale must be positive";
  let lay = Layout.create () in
  let input =
    Layout.alloc lay ~name:"input" ~elems:(32 * 1024) ~elem_size:2
      ~hint:Region.Stream
  and buf =
    Layout.alloc lay ~name:"buf" ~elems:(2 * n_points) ~elem_size:4
      ~hint:Region.Mixed
  and twiddle =
    Layout.alloc lay ~name:"twiddle" ~elems:(n_points / 2) ~elem_size:4
      ~hint:Region.Indexed
  and output =
    Layout.alloc lay ~name:"output" ~elems:(16 * 1024) ~elem_size:4
      ~hint:Region.Stream
  in
  let st =
    {
      e = Workload.Emitter.create ();
      rng = Prng.create ~seed;
      input;
      buf;
      twiddle;
      output;
      re = Array.make n_points 0;
      im = Array.make n_points 0;
      tw_re =
        Array.init (n_points / 2) (fun k ->
            int_of_float
              (1024.0 *. cos (-2.0 *. Float.pi *. float_of_int k /. float_of_int n_points)));
      tw_im =
        Array.init (n_points / 2) (fun k ->
            int_of_float
              (1024.0 *. sin (-2.0 *. Float.pi *. float_of_int k /. float_of_int n_points)));
      in_pos = 0;
      out_pos = 0;
    }
  in
  while Workload.Emitter.trace_length st.e < scale do
    load_frame st;
    bit_reversal_pass st;
    butterfly_stages st;
    store_frame st
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
