type pattern = Stream | Self_indirect | Indexed | Random_access | Mixed

type t = {
  id : int;
  name : string;
  base : int;
  size : int;
  elem_size : int;
  hint : pattern;
}

let pattern_to_string = function
  | Stream -> "stream"
  | Self_indirect -> "self-indirect"
  | Indexed -> "indexed"
  | Random_access -> "random"
  | Mixed -> "mixed"

let pp fmt r =
  Format.fprintf fmt "%s#%d[%#x..%#x, elem %dB, %s]" r.name r.id r.base
    (r.base + r.size - 1)
    r.elem_size
    (pattern_to_string r.hint)

let contains r addr = addr >= r.base && addr < r.base + r.size

let elem_addr r i =
  let a = r.base + (i * r.elem_size) in
  if i < 0 || a + r.elem_size > r.base + r.size then
    invalid_arg
      (Printf.sprintf "Region.elem_addr: element %d outside %s" i r.name);
  a
