(** Trace profiling: per-region statistics and access-pattern
    classification.

    This is the first stage of both APEX and ConEx.  For each region it
    measures traffic, footprint and stride behaviour, and classifies the
    observed pattern.  [pattern] combines the trace evidence with the
    kernel's semantic hint in the same way APEX combines profile data
    with compiler knowledge: trace evidence decides between
    stream/indexed/random, while self-indirection — invisible in a raw
    address stream — comes from the hint. *)

type region_stats = {
  region : Region.t;
  reads : int;
  writes : int;
  bytes : int;  (** CPU-side traffic to/from this region *)
  footprint : int;  (** distinct 32-byte blocks touched, in bytes *)
  seq_frac : float;
      (** fraction of accesses at a short positive stride from the
          previous access to the same region *)
  reuse : float;
      (** mean accesses per distinct block — temporal reuse measure *)
  detected : Region.pattern;  (** classification from trace evidence only *)
}

type t = {
  workload : Workload.t;
  per_region : region_stats array;  (** indexed by region id *)
  total_accesses : int;
  total_bytes : int;
  read_frac : float;
}

val analyze : Workload.t -> t
(** Single pass over the trace.  @raise Invalid_argument if the trace
    references a region id the workload does not declare. *)

val pattern : t -> Region.t -> Region.pattern
(** Effective pattern for APEX/ConEx decisions: the kernel hint when it
    is [Self_indirect] (semantic knowledge), otherwise the detected
    pattern. *)

val stats : t -> Region.t -> region_stats
(** @raise Invalid_argument for an unknown region. *)

val bandwidth_share : t -> Region.t -> float
(** Fraction of total CPU-side bytes going to this region — the raw
    material for BRG arc weights. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable per-region table. *)
