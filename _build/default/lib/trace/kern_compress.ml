(* LZW compress/decompress in the style of compress.c (SPEC95 129.compress):
   open-addressed hash table with secondary probing on the encode side,
   prefix-chain unwinding with an explicit stack on the decode side.  All
   data-structure references are emitted to the trace. *)

module Prng = Mx_util.Prng

let name = "compress"

let hsize = 69001 (* 95% occupancy table size used by compress.c *)
let code_limit = 65536
let first_free = 257 (* 0..255 literals, 256 = clear code *)
let alphabet = 32
let input_chunk = 8192

type state = {
  e : Workload.Emitter.e;
  rng : Prng.t;
  (* regions *)
  input : Region.t;
  codes : Region.t;
  decout : Region.t;
  htab : Region.t;
  codetab : Region.t;
  chains : Region.t;
  stack : Region.t;
  (* encoder tables (semantic values; the trace carries the addresses) *)
  h_fcode : int array;
  h_code : int array;
  (* decoder tables *)
  prefix : int array;
  suffix : int array;
  mutable free_ent : int;
  (* emitted code stream kept for the decode pass *)
  mutable out_codes : int list; (* reversed *)
  mutable out_len : int;
}

let make_input st len =
  (* Zipf symbols with occasional phrase repetition: enough redundancy
     that LZW builds deep chains. *)
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    if !pos > 64 && Prng.bool st.rng ~p:0.35 then begin
      (* copy an earlier phrase *)
      let plen = 4 + Prng.int st.rng ~bound:28 in
      let src = Prng.int st.rng ~bound:(!pos - plen - 1 |> max 1) in
      let n = min plen (len - !pos) in
      Bytes.blit buf src buf !pos n;
      pos := !pos + n
    end
    else begin
      let sym = Prng.zipf st.rng ~n:alphabet ~s:1.35 in
      Bytes.set buf !pos (Char.chr (32 + sym));
      incr pos
    end
  done;
  buf

let hash fcode = (fcode lsl 8) lxor (fcode lsr 4)

(* Encode one chunk of input, emitting htab/codetab probe traffic and the
   output code stream. *)
let encode st buf =
  let e = st.e in
  let emit_code code =
    Workload.Emitter.write e st.codes (st.out_len mod (st.codes.Region.size / 2));
    st.out_codes <- code :: st.out_codes;
    st.out_len <- st.out_len + 1
  in
  let len = Bytes.length buf in
  let ent = ref (Char.code (Bytes.get buf 0)) in
  Workload.Emitter.read e st.input 0;
  for i = 1 to len - 1 do
    let c = Char.code (Bytes.get buf i) in
    Workload.Emitter.read e st.input (i mod (st.input.Region.size));
    let fcode = (c lsl 16) + !ent in
    let h = ref (hash fcode mod hsize) in
    if !h < 0 then h := !h + hsize;
    Workload.Emitter.ops e 4;
    let disp = if !h = 0 then 1 else hsize - !h in
    let rec probe tries =
      Workload.Emitter.read e st.htab !h;
      if st.h_fcode.(!h) = fcode then begin
        (* hit: continue the current string *)
        Workload.Emitter.read e st.codetab !h;
        ent := st.h_code.(!h);
        true
      end
      else if st.h_fcode.(!h) = -1 || tries > 8 then false
      else begin
        h := !h - disp;
        if !h < 0 then h := !h + hsize;
        Workload.Emitter.ops e 2;
        probe (tries + 1)
      end
    in
    if not (probe 0) then begin
      emit_code !ent;
      if st.free_ent < code_limit then begin
        (* record the new string in both encoder and decoder tables *)
        Workload.Emitter.write e st.htab !h;
        Workload.Emitter.write e st.codetab !h;
        st.h_fcode.(!h) <- fcode;
        st.h_code.(!h) <- st.free_ent;
        st.prefix.(st.free_ent) <- !ent;
        st.suffix.(st.free_ent) <- c;
        Workload.Emitter.write e st.chains st.free_ent;
        st.free_ent <- st.free_ent + 1
      end;
      ent := c
    end;
    Workload.Emitter.ops e 3
  done;
  emit_code !ent

(* Decode the accumulated code stream: prefix-chain walking (self-indirect
   loads on [chains]) plus stack pushes/pops and sequential output. *)
let decode st =
  let e = st.e in
  let codes = Array.of_list (List.rev st.out_codes) in
  let stack_cap = st.stack.Region.size in
  let out = ref 0 in
  let code_slots = st.codes.Region.size / 2 in
  Array.iteri
    (fun i code ->
      Workload.Emitter.read e st.codes (i mod code_slots);
      let sp = ref 0 in
      let c = ref code in
      while !c >= 256 && !sp < stack_cap - 1 do
        (* self-indirect: the loaded prefix value is the next address *)
        Workload.Emitter.read e st.chains !c;
        Workload.Emitter.write e st.stack !sp;
        ignore st.suffix.(!c);
        c := st.prefix.(!c);
        incr sp;
        Workload.Emitter.ops e 2
      done;
      Workload.Emitter.write e st.stack !sp;
      incr sp;
      (* unwind the stack to the output stream *)
      while !sp > 0 do
        decr sp;
        Workload.Emitter.read e st.stack !sp;
        Workload.Emitter.write e st.decout (!out mod st.decout.Region.size);
        incr out;
        Workload.Emitter.ops e 1
      done)
    codes

let generate ~scale ~seed =
  if scale <= 0 then invalid_arg "Kern_compress.generate: scale must be positive";
  let lay = Layout.create () in
  let input =
    Layout.alloc lay ~name:"input" ~elems:(256 * 1024) ~elem_size:1
      ~hint:Region.Stream
  and codes =
    Layout.alloc lay ~name:"codes" ~elems:(128 * 1024) ~elem_size:2
      ~hint:Region.Stream
  and decout =
    Layout.alloc lay ~name:"decout" ~elems:(256 * 1024) ~elem_size:1
      ~hint:Region.Stream
  and htab =
    Layout.alloc lay ~name:"htab" ~elems:hsize ~elem_size:8
      ~hint:Region.Random_access
  and codetab =
    Layout.alloc lay ~name:"codetab" ~elems:hsize ~elem_size:2
      ~hint:Region.Random_access
  and chains =
    Layout.alloc lay ~name:"chains" ~elems:code_limit ~elem_size:4
      ~hint:Region.Self_indirect
  and stack =
    Layout.alloc lay ~name:"stack" ~elems:4096 ~elem_size:1
      ~hint:Region.Indexed
  in
  let st =
    {
      e = Workload.Emitter.create ();
      rng = Prng.create ~seed;
      input;
      codes;
      decout;
      htab;
      codetab;
      chains;
      stack;
      h_fcode = Array.make hsize (-1);
      h_code = Array.make hsize 0;
      prefix = Array.make code_limit 0;
      suffix = Array.make code_limit 0;
      free_ent = first_free;
      out_codes = [];
      out_len = 0;
    }
  in
  (* Alternate encode/decode rounds until the trace is big enough; each
     round encodes a fresh chunk and decodes everything emitted so far,
     as 129.compress alternates compression and decompression passes. *)
  while Workload.Emitter.trace_length st.e < scale do
    let chunk = make_input st input_chunk in
    encode st chunk;
    decode st;
    st.out_codes <- [];
    st.out_len <- 0
  done;
  Workload.Emitter.finish st.e ~name ~regions:(Layout.regions lay)
