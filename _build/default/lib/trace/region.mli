(** Data-structure regions.

    APEX reasons about an application's {e data structures} (arrays,
    hash tables, linked lists, streams) rather than raw addresses; each
    kernel therefore declares the regions it touches, and every trace
    access carries its region id.  The [hint] records the semantic
    access pattern the kernel knows it performs on the region — this
    stands in for the compiler-level access-pattern extraction of the
    APEX paper (the trace-level {!Profile} classifier must agree with it
    on well-formed kernels, which the test suite checks). *)

type pattern =
  | Stream  (** strictly or almost strictly sequential, little reuse *)
  | Self_indirect
      (** pointer-chasing where the loaded value determines the next
          address: linked lists, LZW prefix chains *)
  | Indexed  (** small hot array with heavy reuse (e.g. coefficients) *)
  | Random_access  (** hash tables, codebooks: no exploitable order *)
  | Mixed  (** none of the above dominates *)

type t = {
  id : int;
  name : string;
  base : int;  (** base byte address assigned by {!Layout} *)
  size : int;  (** footprint in bytes *)
  elem_size : int;  (** natural element width in bytes *)
  hint : pattern;
}

val pattern_to_string : pattern -> string
val pp : Format.formatter -> t -> unit

val contains : t -> int -> bool
(** [contains r addr] is true when [addr] falls inside [r]'s range. *)

val elem_addr : t -> int -> int
(** [elem_addr r i] is the byte address of element [i].
    @raise Invalid_argument if the element lies outside the region. *)
