exception Parse_error of { line : int; message : string }

let fail ~line message = raise (Parse_error { line; message })

let pattern_to_tag = function
  | Region.Stream -> "stream"
  | Region.Self_indirect -> "self-indirect"
  | Region.Indexed -> "indexed"
  | Region.Random_access -> "random"
  | Region.Mixed -> "mixed"

let pattern_of_tag ~line = function
  | "stream" -> Region.Stream
  | "self-indirect" -> Region.Self_indirect
  | "indexed" -> Region.Indexed
  | "random" -> Region.Random_access
  | "mixed" -> Region.Mixed
  | tag -> fail ~line (Printf.sprintf "unknown pattern %S" tag)

let to_string (w : Workload.t) =
  let buf = Buffer.create (Trace.length w.Workload.trace * 16) in
  Buffer.add_string buf "# memorex-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "workload %s\n" w.Workload.name);
  Buffer.add_string buf (Printf.sprintf "cpu_ops %d\n" w.Workload.cpu_ops);
  List.iter
    (fun (r : Region.t) ->
      Buffer.add_string buf
        (Printf.sprintf "region %d %s 0x%x %d %d %s\n" r.Region.id
           r.Region.name r.Region.base r.Region.size r.Region.elem_size
           (pattern_to_tag r.Region.hint)))
    w.Workload.regions;
  Buffer.add_string buf
    (Printf.sprintf "trace %d\n" (Trace.length w.Workload.trace));
  Trace.iter_packed w.Workload.trace ~f:(fun ~addr ~size ~kind ~region ->
      Buffer.add_string buf
        (Printf.sprintf "%c 0x%x %d %d\n"
           (match kind with Access.Read -> 'R' | Access.Write -> 'W')
           addr size region));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let name = ref None and cpu_ops = ref 0 in
  let regions = ref [] in
  let trace = Trace.create () in
  let expected = ref (-1) in
  let lineno = ref 0 in
  let parse_int ~line v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail ~line (Printf.sprintf "expected an integer, got %S" v)
  in
  List.iter
    (fun raw ->
      incr lineno;
      let line = !lineno in
      let l = String.trim raw in
      if l = "" || l.[0] = '#' then ()
      else
        match String.split_on_char ' ' l with
        | [ "workload"; n ] -> name := Some n
        | [ "cpu_ops"; n ] -> cpu_ops := parse_int ~line n
        | [ "region"; id; rname; base; size; elem; hint ] ->
          regions :=
            {
              Region.id = parse_int ~line id;
              name = rname;
              base = parse_int ~line base;
              size = parse_int ~line size;
              elem_size = parse_int ~line elem;
              hint = pattern_of_tag ~line hint;
            }
            :: !regions
        | [ "trace"; n ] -> expected := parse_int ~line n
        | [ kind; addr; size; region ] when kind = "R" || kind = "W" ->
          Trace.add trace ~addr:(parse_int ~line addr)
            ~size:(parse_int ~line size)
            ~kind:(if kind = "R" then Access.Read else Access.Write)
            ~region:(parse_int ~line region)
        | _ -> fail ~line (Printf.sprintf "unrecognised line %S" l))
    lines;
  let name =
    match !name with
    | Some n -> n
    | None -> fail ~line:0 "missing 'workload' header"
  in
  if !expected >= 0 && Trace.length trace <> !expected then
    fail ~line:0
      (Printf.sprintf "trace length mismatch: header says %d, found %d"
         !expected (Trace.length trace));
  let regions =
    List.sort (fun (a : Region.t) b -> compare a.Region.id b.Region.id) !regions
  in
  List.iteri
    (fun i (r : Region.t) ->
      if r.Region.id <> i then
        fail ~line:0 (Printf.sprintf "region ids not contiguous at %d" i))
    regions;
  { Workload.name; regions; trace; cpu_ops = !cpu_ops }

let save w ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string w))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
