module Prng = Mx_util.Prng

type spec = {
  region_name : string;
  elems : int;
  elem_size : int;
  hint : Region.pattern;
  share : float;
  write_frac : float;
  skew : float;
}

let spec ?(elem_size = 4) ?(write_frac = 0.3) ?(skew = 0.8) ?(share = 1.0)
    ~name ~elems hint =
  { region_name = name; elems; elem_size; hint; share; write_frac; skew }

(* Per-region generator state: a cursor for streams/pointer-chases and,
   for Self_indirect, a random derangement to chase through. *)
type rstate = {
  sp : spec;
  region : Region.t;
  rng : Prng.t;
  mutable cursor : int;
  chase : int array; (* empty unless Self_indirect *)
}

let make_chase rng elems =
  (* random cyclic permutation: a single cycle through all elements, so
     the chase never gets stuck in a short loop *)
  let order = Array.init elems (fun i -> i) in
  Prng.shuffle rng order;
  let next = Array.make elems 0 in
  for i = 0 to elems - 1 do
    next.(order.(i)) <- order.((i + 1) mod elems)
  done;
  next

let next_index rs =
  match rs.sp.hint with
  | Region.Stream ->
    let i = rs.cursor in
    rs.cursor <- (rs.cursor + 1) mod rs.sp.elems;
    i
  | Region.Self_indirect ->
    let i = rs.cursor in
    rs.cursor <- rs.chase.(i);
    i
  | Region.Indexed -> Prng.zipf rs.rng ~n:rs.sp.elems ~s:(max 0.5 rs.sp.skew)
  | Region.Random_access ->
    if rs.sp.skew > 0.0 && rs.sp.skew < 0.5 then
      Prng.int rs.rng ~bound:rs.sp.elems
    else Prng.zipf rs.rng ~n:rs.sp.elems ~s:(rs.sp.skew *. 0.5)
  | Region.Mixed ->
    if Prng.bool rs.rng ~p:0.5 then begin
      let i = rs.cursor in
      rs.cursor <- (rs.cursor + 1) mod rs.sp.elems;
      i
    end
    else Prng.int rs.rng ~bound:rs.sp.elems

let generate ~name ~specs ~scale ~seed =
  if specs = [] then invalid_arg "Synthetic.generate: empty spec list";
  if scale <= 0 then invalid_arg "Synthetic.generate: scale must be positive";
  List.iter
    (fun s ->
      if s.share <= 0.0 then
        invalid_arg "Synthetic.generate: shares must be positive")
    specs;
  let master = Prng.create ~seed in
  let lay = Layout.create () in
  let states =
    List.map
      (fun sp ->
        let region =
          Layout.alloc lay ~name:sp.region_name ~elems:sp.elems
            ~elem_size:sp.elem_size ~hint:sp.hint
        in
        let rng = Prng.split master in
        let chase =
          match sp.hint with
          | Region.Self_indirect -> make_chase rng sp.elems
          | _ -> [||]
        in
        { sp; region; rng; cursor = 0; chase })
      specs
  in
  let states = Array.of_list states in
  let cum =
    let total = Array.fold_left (fun a rs -> a +. rs.sp.share) 0.0 states in
    let acc = ref 0.0 in
    Array.map
      (fun rs ->
        acc := !acc +. (rs.sp.share /. total);
        !acc)
      states
  in
  let pick_region u =
    let rec go i = if i >= Array.length cum - 1 || u <= cum.(i) then i else go (i + 1) in
    go 0
  in
  let e = Workload.Emitter.create () in
  for _ = 1 to scale do
    let rs = states.(pick_region (Prng.float master)) in
    let idx = next_index rs in
    if Prng.bool rs.rng ~p:rs.sp.write_frac then
      Workload.Emitter.write e rs.region idx
    else Workload.Emitter.read e rs.region idx;
    Workload.Emitter.ops e (1 + Prng.int master ~bound:3)
  done;
  Workload.Emitter.finish e ~name ~regions:(Layout.regions lay)
