lib/trace/kern_li.ml: Array Bytes Layout List Mx_util Region Workload
