lib/trace/synthetic.mli: Region Workload
