lib/trace/kern_graph.ml: Array Layout Mx_util Region Workload
