lib/trace/profile.mli: Format Region Workload
