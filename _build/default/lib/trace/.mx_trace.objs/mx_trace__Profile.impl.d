lib/trace/profile.ml: Access Array Format Hashtbl List Region Trace Workload
