lib/trace/region.ml: Format Printf
