lib/trace/kern_vocoder.ml: Array Layout Mx_util Region Workload
