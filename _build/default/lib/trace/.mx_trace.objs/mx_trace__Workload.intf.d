lib/trace/workload.mli: Region Trace
