lib/trace/kern_li.mli: Workload
