lib/trace/region.mli: Format
