lib/trace/workload.ml: Access List Printf Region Trace
