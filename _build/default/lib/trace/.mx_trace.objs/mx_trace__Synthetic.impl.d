lib/trace/synthetic.ml: Array Layout List Mx_util Region Workload
