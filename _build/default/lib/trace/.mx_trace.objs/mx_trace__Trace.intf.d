lib/trace/trace.mli: Access
