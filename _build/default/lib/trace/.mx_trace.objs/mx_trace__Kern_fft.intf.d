lib/trace/kern_fft.mli: Workload
