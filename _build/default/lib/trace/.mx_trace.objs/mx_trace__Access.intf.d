lib/trace/access.mli: Format
