lib/trace/kern_jpeg.ml: Array Layout Mx_util Region Workload
