lib/trace/trace_io.mli: Workload
