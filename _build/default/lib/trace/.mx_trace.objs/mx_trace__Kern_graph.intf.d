lib/trace/kern_graph.mli: Workload
