lib/trace/kern_jpeg.mli: Workload
