lib/trace/layout.mli: Region
