lib/trace/access.ml: Format Printf
