lib/trace/kern_fft.ml: Array Float Layout Mx_util Region Workload
