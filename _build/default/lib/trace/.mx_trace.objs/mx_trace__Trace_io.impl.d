lib/trace/trace_io.ml: Access Buffer Fun List Printf Region String Trace Workload
