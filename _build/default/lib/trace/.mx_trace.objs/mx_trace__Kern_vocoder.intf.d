lib/trace/kern_vocoder.mli: Workload
