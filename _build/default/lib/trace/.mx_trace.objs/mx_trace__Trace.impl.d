lib/trace/trace.ml: Access Array
