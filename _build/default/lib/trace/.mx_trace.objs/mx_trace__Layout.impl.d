lib/trace/layout.ml: List Region
