lib/trace/kern_compress.mli: Workload
