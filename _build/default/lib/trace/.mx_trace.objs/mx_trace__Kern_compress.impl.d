lib/trace/kern_compress.ml: Array Bytes Char Layout List Mx_util Region Workload
