(** A radix-2 FFT workload (scientific class).

    Iterative in-place decimation-in-time FFT over 4096-point frames:
    bit-reversal permutation (large-stride scattered accesses over the
    working buffer), butterfly stages with doubling strides, a hot
    twiddle-factor table, and streaming input/output.

    The stage-dependent strides make this a stress test for the stream
    buffer (early stages look sequential, late stages do not) and for
    cache line-size choices — the "scientific applications" class of
    the paper's evaluation. *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** Transform frames until at least [scale] accesses are traced.
    @raise Invalid_argument if [scale <= 0]. *)
