type kind = Read | Write

type t = { addr : int; size : int; kind : kind; region : int }

let kind_to_string = function Read -> "R" | Write -> "W"

let pp fmt a =
  Format.fprintf fmt "%s %#x (%dB, r%d)" (kind_to_string a.kind) a.addr a.size
    a.region

let size_code = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | n -> invalid_arg (Printf.sprintf "Access.size_code: bad width %d" n)

let size_of_code = function
  | 0 -> 1
  | 1 -> 2
  | 2 -> 4
  | 3 -> 8
  | c -> invalid_arg (Printf.sprintf "Access.size_of_code: bad code %d" c)
