(** The [vocoder] workload (stand-in for the paper's GSM voice encoder).

    A frame-based GSM-06.10-style speech encoder skeleton: per 160-sample
    frame it performs preprocessing, LPC autocorrelation + Schur
    recursion, short-term filtering, and per-40-sample-subframe long-term
    prediction search plus RPE grid selection and quantisation.

    Region mix:
    - [speech_in] / [params_out]: pure streams;
    - [frame_buf], [lpc_coef], [st_state], [ltp_hist]: small hot arrays
      with massive reuse (the Indexed pattern — SRAM-mappable);
    - [qlut]: quantiser/codebook lookup table, pseudo-random reads.

    Compared to compress/li the footprint is tiny, which is why the
    paper's vocoder architectures cost ~3-6x less and the Full
    exploration terminates quickly (Table 2). *)

val name : string

val generate : scale:int -> seed:int -> Workload.t
(** Encode frames until at least [scale] accesses are traced.
    @raise Invalid_argument if [scale <= 0]. *)
