(** Plain-text table rendering for the CLI, the examples and the bench
    harness (which reprints the paper's tables). *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with one header row; every subsequent row must have the same
    arity.  Numeric-looking cells default to right alignment unless
    overridden with [set_align]. *)

val set_align : t -> align list -> unit
(** Explicit per-column alignment; @raise Invalid_argument on arity
    mismatch. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on arity mismatch. *)

val add_rule : t -> unit
(** Insert a horizontal rule (used to separate benchmark groups, as the
    paper's Table 1 separates compress / li / vocoder). *)

val render : t -> string
(** Render with box-drawing in ASCII ([+-|]). *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
