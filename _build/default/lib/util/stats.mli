(** Small statistics helpers shared by the profiler, the estimators and
    the reporting code. *)

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val variance : t -> float
  (** Population variance; 0.0 for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)
end

val mean : float list -> float
(** 0.0 on the empty list. *)

val percentile : float list -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,100\]], nearest-rank method.
    @raise Invalid_argument on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0.0 on the empty list. *)

val ratio_pct : float -> float -> float
(** [ratio_pct a b] is [100 * (b - a) / b]: the percentage improvement of
    [a] over [b] when lower is better.  0.0 when [b = 0]. *)
