(** Pareto-front machinery for multi-objective design-space exploration.

    All objectives are minimised: costs, latencies and energies are all
    "lower is better".  A design [a] {e dominates} [b] when [a] is no
    worse than [b] on every axis and strictly better on at least one.
    A design is on the pareto front of a set when no member dominates
    it — the paper's definition (Section 6, footnote 3). *)

type 'a axis = 'a -> float
(** An objective projection; lower values are better. *)

val dominates : axes:'a axis list -> 'a -> 'a -> bool
(** [dominates ~axes a b] is true iff [a] dominates [b]. *)

val front : axes:'a axis list -> 'a list -> 'a list
(** [front ~axes designs] returns the non-dominated subset, preserving
    first-occurrence order.  Duplicate objective vectors are all kept
    (they dominate nothing and are dominated by nothing). *)

val front2 : x:'a axis -> y:'a axis -> 'a list -> 'a list
(** Two-objective front, returned sorted by increasing [x].  O(n log n)
    sweep rather than the generic O(n^2) filter. *)

val sort_by : 'a axis -> 'a list -> 'a list
(** Stable ascending sort by one axis. *)

(** Coverage of a reference front by an explored point set — the metric
    of the paper's Table 2. *)
module Coverage : sig
  type report = {
    total : int;          (** size of the reference pareto front *)
    found : int;          (** reference points matched exactly *)
    coverage_pct : float; (** [100 * found / total]; 100.0 when [total = 0] *)
    avg_dist_pct : float array;
        (** per-axis average percentile deviation between each {e missed}
            reference point and the explored point nearest to it
            (normalised Euclidean nearest); length = number of axes;
            all zeros when nothing is missed *)
  }

  val eval :
    axes:'a axis list ->
    equal:('a -> 'a -> bool) ->
    reference:'a list ->
    explored:'a list ->
    report
  (** [eval ~axes ~equal ~reference ~explored] measures how well
      [explored] covers the [reference] front.  [equal] decides whether
      an explored design {e is} a given reference design (typically
      structural equality on the architecture, not on metrics).
      @raise Invalid_argument if [explored] is empty while some
      reference point is missed. *)
end
