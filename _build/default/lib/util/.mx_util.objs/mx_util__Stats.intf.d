lib/util/stats.mli:
