lib/util/pareto.ml: Array Float List
