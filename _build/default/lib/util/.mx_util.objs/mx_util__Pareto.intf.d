lib/util/pareto.mli:
