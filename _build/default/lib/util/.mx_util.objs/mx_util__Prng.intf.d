lib/util/prng.mli:
