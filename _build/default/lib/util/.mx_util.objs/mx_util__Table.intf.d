lib/util/table.mli:
