lib/util/table.ml: Array Buffer List String
