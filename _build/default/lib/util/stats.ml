module Running = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mu in
    t.mu <- t.mu +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mu));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mu
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.lo
  let max t = t.hi
end

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  a.(idx)

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (s /. float_of_int (List.length xs))

let ratio_pct a b = if b = 0.0 then 0.0 else 100.0 *. (b -. a) /. b
