type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  arity : int;
  mutable rows : row list; (* reversed *)
  mutable aligns : align list option;
}

let create ~headers =
  { headers; arity = List.length headers; rows = []; aligns = None }

let set_align t aligns =
  if List.length aligns <> t.arity then
    invalid_arg "Table.set_align: arity mismatch";
  t.aligns <- Some aligns

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = '%' || c = 'e')
       s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cs)
    rows;
  let aligns =
    match t.aligns with
    | Some a -> Array.of_list a
    | None ->
      (* Column is right-aligned when every data cell looks numeric. *)
      let a = Array.make t.arity Right in
      Array.iteri
        (fun i _ ->
          let all_num =
            List.for_all
              (function
                | Rule -> true
                | Cells cs -> looks_numeric (List.nth cs i))
              rows
            && rows <> []
          in
          a.(i) <- (if all_num then Right else Left))
        a;
      a
  in
  let buf = Buffer.create 1024 in
  let pad s w al =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match al with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells al_override =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let al = match al_override with Some a -> a | None -> aligns.(i) in
        Buffer.add_string buf (" " ^ pad c widths.(i) al ^ " ");
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers (Some Left);
  rule ();
  List.iter (function Rule -> rule () | Cells cs -> line cs None) rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
