type 'a axis = 'a -> float

let dominates ~axes a b =
  let no_worse = List.for_all (fun f -> f a <= f b) axes in
  let strictly = List.exists (fun f -> f a < f b) axes in
  no_worse && strictly

let front ~axes designs =
  let arr = Array.of_list designs in
  let n = Array.length arr in
  let kept = ref [] in
  for i = n - 1 downto 0 do
    let d = arr.(i) in
    let dominated = ref false in
    for j = 0 to n - 1 do
      if (not !dominated) && j <> i && dominates ~axes arr.(j) d then
        dominated := true
    done;
    if not !dominated then kept := d :: !kept
  done;
  !kept

let sort_by f l = List.stable_sort (fun a b -> Float.compare (f a) (f b)) l

let front2 ~x ~y designs =
  (* Sweep by increasing x, then increasing y; a point survives iff its y
     is strictly below every y seen so far (equal-x points: only the best
     y survives unless tied). *)
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare (x a) (x b) with
        | 0 -> Float.compare (y a) (y b)
        | c -> c)
      designs
  in
  let rec sweep best_y acc = function
    | [] -> List.rev acc
    | d :: rest ->
      if y d < best_y then sweep (y d) (d :: acc) rest
      else if y d = best_y && best_y < infinity then
        (* keep ties on y only when x also ties with the last kept point *)
        (match acc with
        | last :: _ when x last = x d -> sweep best_y (d :: acc) rest
        | _ -> sweep best_y acc rest)
      else sweep best_y acc rest
  in
  sweep infinity [] sorted

module Coverage = struct
  type report = {
    total : int;
    found : int;
    coverage_pct : float;
    avg_dist_pct : float array;
  }

  let eval ~axes ~equal ~reference ~explored =
    let naxes = List.length axes in
    let total = List.length reference in
    let missed =
      List.filter (fun r -> not (List.exists (equal r) explored)) reference
    in
    let found = total - List.length missed in
    let avg_dist = Array.make naxes 0.0 in
    (if missed <> [] then begin
       if explored = [] then
         invalid_arg "Pareto.Coverage.eval: empty explored set with misses";
       (* Normalise each axis by the reference front's span so the
          nearest-neighbour search is scale-free. *)
       let spans =
         List.map
           (fun f ->
             let vs = List.map f reference in
             let lo = List.fold_left Float.min infinity vs in
             let hi = List.fold_left Float.max neg_infinity vs in
             let s = hi -. lo in
             if s <= 0.0 then 1.0 else s)
           axes
       in
       let dist2 a b =
         List.fold_left2
           (fun acc f s ->
             let d = (f a -. f b) /. s in
             acc +. (d *. d))
           0.0 axes spans
       in
       List.iter
         (fun r ->
           let nearest =
             List.fold_left
               (fun best e ->
                 match best with
                 | None -> Some e
                 | Some b -> if dist2 r e < dist2 r b then Some e else best)
               None explored
           in
           match nearest with
           | None -> assert false
           | Some e ->
             List.iteri
               (fun i f ->
                 let rv = f r in
                 let denom = if Float.abs rv > 1e-12 then Float.abs rv else 1.0 in
                 avg_dist.(i) <-
                   avg_dist.(i) +. (100.0 *. Float.abs (f e -. rv) /. denom))
               axes)
         missed;
       let m = float_of_int (List.length missed) in
       Array.iteri (fun i v -> avg_dist.(i) <- v /. m) avg_dist
     end);
    {
      total;
      found;
      coverage_pct =
        (if total = 0 then 100.0
         else 100.0 *. float_of_int found /. float_of_int total);
      avg_dist_pct = avg_dist;
    }
end
