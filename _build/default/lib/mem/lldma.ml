type t = {
  p : Params.lldma;
  mutable last_now : int; (* -1 before the first access *)
  mutable chasing : bool;
  mutable n_access : int;
  mutable n_miss : int;
}

type result = { hit : bool; fetched_elems : int }

let create p =
  if p.Params.ll_entries <= 0 || p.Params.ll_elem <= 0 || p.Params.ll_max_gap <= 0
  then invalid_arg "Lldma.create: non-positive geometry";
  { p; last_now = -1; chasing = false; n_access = 0; n_miss = 0 }

let params t = t.p

let access t ~now ~write =
  if now < t.last_now then invalid_arg "Lldma.access: time went backwards";
  t.n_access <- t.n_access + 1;
  let gap = if t.last_now < 0 then max_int else now - t.last_now in
  t.last_now <- now;
  if gap <= t.p.Params.ll_max_gap && t.chasing then begin
    (* chase continues: the DMA already holds this element and fetches
       the next one behind the scenes *)
    { hit = true; fetched_elems = 1 }
  end
  else begin
    t.n_miss <- t.n_miss + 1;
    t.chasing <- true;
    (* chase (re)start: fetch the head element; writes establish a new
       construction burst which the buffer absorbs *)
    { hit = false; fetched_elems = (if write then 0 else 1) }
  end

let accesses t = t.n_access
let misses t = t.n_miss

let miss_ratio t =
  if t.n_access = 0 then 0.0
  else float_of_int t.n_miss /. float_of_int t.n_access

let reset t =
  t.last_now <- -1;
  t.chasing <- false;
  t.n_access <- 0;
  t.n_miss <- 0
