(** Parameter records for every module in the memory IP library.

    These are the "IP datasheet" values APEX mixes and matches.  All
    latencies are in CPU cycles; sizes in bytes.  The library instances
    in {!Module_lib} provide the standard catalogue explored by the
    paper-scale experiments. *)

type cache = {
  c_size : int;  (** total data capacity in bytes; power of two *)
  c_line : int;  (** line size in bytes; power of two *)
  c_assoc : int;  (** associativity; [c_size / c_line] must be divisible *)
  c_latency : int;  (** hit latency, cycles *)
}

type sram = {
  s_size : int;  (** scratchpad capacity in bytes *)
  s_latency : int;  (** access latency, cycles *)
}

type stream_buffer = {
  sb_streams : int;  (** number of concurrent stream slots *)
  sb_line : int;  (** fetch granularity in bytes *)
  sb_depth : int;  (** prefetch depth in lines per stream *)
  sb_latency : int;  (** hit latency, cycles *)
}

type lldma = {
  ll_entries : int;  (** element buffer capacity *)
  ll_elem : int;  (** element size the DMA is programmed for, bytes *)
  ll_max_gap : int;
      (** how many intervening CPU accesses the DMA can tolerate while
          staying ahead of a pointer chase; beyond this the chase is
          considered restarted (miss) *)
  ll_latency : int;  (** hit latency, cycles *)
}

type victim = {
  v_entries : int;  (** fully-associative victim-cache lines *)
  v_latency : int;  (** extra cycles on a victim hit *)
}

type write_buffer = {
  wb_entries : int;  (** coalescing line-granular slots *)
  wb_drain : int;
      (** one slot drains to DRAM every [wb_drain] CPU accesses *)
}

type dram = {
  d_banks : int;
  d_row : int;  (** row-buffer size in bytes *)
  d_cas : int;  (** column access, cycles (row hit) *)
  d_rcd : int;  (** RAS-to-CAS, cycles *)
  d_rp : int;  (** precharge, cycles *)
}

val validate_cache : cache -> unit
(** @raise Invalid_argument on a malformed geometry. *)

val validate_dram : dram -> unit
val validate_victim : victim -> unit
val validate_write_buffer : write_buffer -> unit
val pp_cache : Format.formatter -> cache -> unit
val pp_sram : Format.formatter -> sram -> unit
val pp_stream_buffer : Format.formatter -> stream_buffer -> unit
val pp_lldma : Format.formatter -> lldma -> unit
val pp_victim : Format.formatter -> victim -> unit
val pp_write_buffer : Format.formatter -> write_buffer -> unit
