type slot = {
  mutable lo_line : int; (* first resident line number; -1 = empty *)
  mutable hi_line : int; (* last prefetched line number *)
  mutable last_use : int;
}

type t = {
  p : Params.stream_buffer;
  slots : slot array;
  mutable stamp : int;
  mutable n_access : int;
  mutable n_miss : int;
}

type result = { hit : bool; fetched_lines : int }

let create p =
  if p.Params.sb_streams <= 0 || p.Params.sb_line <= 0 || p.Params.sb_depth <= 0
  then invalid_arg "Stream_buffer.create: non-positive geometry";
  {
    p;
    slots =
      Array.init p.Params.sb_streams (fun _ ->
          { lo_line = -1; hi_line = -1; last_use = 0 });
    stamp = 0;
    n_access = 0;
    n_miss = 0;
  }

let params t = t.p

let access t ~addr ~write =
  ignore write;
  t.n_access <- t.n_access + 1;
  t.stamp <- t.stamp + 1;
  let line = addr / t.p.Params.sb_line in
  let found = ref None in
  Array.iter
    (fun s ->
      if s.lo_line >= 0 && line >= s.lo_line && line <= s.hi_line then
        found := Some s)
    t.slots;
  match !found with
  | Some s ->
    s.last_use <- t.stamp;
    (* advance the window when the stream moves past its first line *)
    let fetched =
      if line > s.lo_line then begin
        let advance = line - s.lo_line in
        s.lo_line <- line;
        let new_hi = line + t.p.Params.sb_depth - 1 in
        let fetched = max 0 (new_hi - s.hi_line) in
        s.hi_line <- max s.hi_line new_hi;
        ignore advance;
        fetched
      end
      else 0
    in
    { hit = true; fetched_lines = fetched }
  | None ->
    t.n_miss <- t.n_miss + 1;
    (* allocate the LRU slot to this new stream *)
    let victim = ref t.slots.(0) in
    Array.iter (fun s -> if s.last_use < !victim.last_use then victim := s) t.slots;
    !victim.lo_line <- line;
    !victim.hi_line <- line + t.p.Params.sb_depth - 1;
    !victim.last_use <- t.stamp;
    { hit = false; fetched_lines = t.p.Params.sb_depth }

let accesses t = t.n_access
let misses t = t.n_miss

let miss_ratio t =
  if t.n_access = 0 then 0.0
  else float_of_int t.n_miss /. float_of_int t.n_access

let reset t =
  Array.iter
    (fun s ->
      s.lo_line <- -1;
      s.hi_line <- -1;
      s.last_use <- 0)
    t.slots;
  t.stamp <- 0;
  t.n_access <- 0;
  t.n_miss <- 0
