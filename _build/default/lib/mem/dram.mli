(** Off-chip DRAM with per-bank open-row (row-buffer) policy.

    Returns the {e core} access latency only; serialization over the
    off-chip bus is the connectivity architecture's contribution and is
    modelled by the simulator on top of this. *)

type t

val create : Params.dram -> t
(** @raise Invalid_argument via {!Params.validate_dram}. *)

val params : t -> Params.dram

val access : t -> addr:int -> int
(** Latency in DRAM-side cycles for a transfer starting at [addr]:
    [d_cas] on a row hit, [d_rp + d_rcd + d_cas] on a row conflict
    ([d_rcd + d_cas] on an idle bank). *)

val row_hits : t -> int
val row_misses : t -> int
val reset : t -> unit
