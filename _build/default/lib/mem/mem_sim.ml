type serving = By_cache | By_sram | By_sbuf | By_lldma | By_dram_direct

type outcome = {
  serving : serving;
  hit : bool;
  dram_bytes : int;
  dram_txns : int;
  dram_critical : bool;
  l2_bytes : int;
  l2_txns : int;
  l2_critical : bool;
  extra_latency : int;
  extra_energy : float;
}

type t = {
  arch : Mem_arch.t;
  cache : Cache.t option;
  l2 : Cache.t option;
  sbuf : Stream_buffer.t option;
  lldma : Lldma.t option;
  victim : Victim_cache.t option;
  wbuf : Write_buffer.t option;
  dram : Dram.t;
  (* counters indexed by serving (5 classes) *)
  cpu_acc : int array;
  cpu_cnt : int array;
  dram_acc : int array;
  dram_txn : int array;
  miss_cnt : int array;
  mutable n_access : int;
  mutable n_hit : int;
  mutable n_demand_miss : int;
  mutable dram_total : int;
  mutable n_victim_hit : int;
  mutable n_wbuf_stall : int;
  mutable n_l2_access : int;
  mutable n_l2_hit : int;
  mutable l2_bytes_acc : int;
  mutable l2_txns_acc : int;
}

let serving_index = function
  | By_cache -> 0
  | By_sram -> 1
  | By_sbuf -> 2
  | By_lldma -> 3
  | By_dram_direct -> 4

let create (arch : Mem_arch.t) ~regions =
  List.iter
    (fun (r : Mx_trace.Region.t) ->
      if r.id >= Array.length arch.Mem_arch.bindings then
        invalid_arg "Mem_sim.create: region id outside binding table")
    regions;
  {
    arch;
    cache = Option.map Cache.create arch.Mem_arch.cache;
    l2 = Option.map Cache.create arch.Mem_arch.l2;
    sbuf = Option.map Stream_buffer.create arch.Mem_arch.sbuf;
    lldma = Option.map Lldma.create arch.Mem_arch.lldma;
    victim = Option.map Victim_cache.create arch.Mem_arch.victim;
    wbuf = Option.map Write_buffer.create arch.Mem_arch.wbuf;
    dram = Dram.create Module_lib.default_dram;
    cpu_acc = Array.make 5 0;
    cpu_cnt = Array.make 5 0;
    dram_acc = Array.make 5 0;
    dram_txn = Array.make 5 0;
    miss_cnt = Array.make 5 0;
    n_access = 0;
    n_hit = 0;
    n_demand_miss = 0;
    dram_total = 0;
    n_victim_hit = 0;
    n_wbuf_stall = 0;
    n_l2_access = 0;
    n_l2_hit = 0;
    l2_bytes_acc = 0;
    l2_txns_acc = 0;
  }

let arch t = t.arch
let dram t = t.dram

let record t serving ~size ~(o : outcome) =
  let i = serving_index serving in
  t.cpu_acc.(i) <- t.cpu_acc.(i) + size;
  t.cpu_cnt.(i) <- t.cpu_cnt.(i) + 1;
  t.dram_acc.(i) <- t.dram_acc.(i) + o.dram_bytes;
  t.dram_txn.(i) <- t.dram_txn.(i) + o.dram_txns;
  t.n_access <- t.n_access + 1;
  if o.hit then t.n_hit <- t.n_hit + 1;
  if o.dram_critical then begin
    t.n_demand_miss <- t.n_demand_miss + 1;
    t.miss_cnt.(i) <- t.miss_cnt.(i) + 1
  end;
  t.l2_bytes_acc <- t.l2_bytes_acc + o.l2_bytes;
  t.l2_txns_acc <- t.l2_txns_acc + o.l2_txns;
  t.dram_total <- t.dram_total + o.dram_bytes

let base serving ~hit ~dram_bytes ~dram_txns ~dram_critical =
  { serving; hit; dram_bytes; dram_txns; dram_critical; l2_bytes = 0;
    l2_txns = 0; l2_critical = false; extra_latency = 0; extra_energy = 0.0 }

let access t ~now ~addr ~size ~write ~region =
  let binding = Mem_arch.binding_of t.arch ~region in
  let o =
    match binding with
    | Mem_arch.To_sram ->
      base By_sram ~hit:true ~dram_bytes:0 ~dram_txns:0 ~dram_critical:false
    | Mem_arch.To_sbuf ->
      let sb = Option.get t.sbuf in
      let r = Stream_buffer.access sb ~addr ~write in
      let line = (Stream_buffer.params sb).Params.sb_line in
      if r.Stream_buffer.hit then
        base By_sbuf ~hit:true
          ~dram_bytes:(r.Stream_buffer.fetched_lines * line)
          ~dram_txns:(if r.Stream_buffer.fetched_lines > 0 then 1 else 0)
          ~dram_critical:false
      else
        base By_sbuf ~hit:false
          ~dram_bytes:(r.Stream_buffer.fetched_lines * line) ~dram_txns:1
          ~dram_critical:true
    | Mem_arch.To_lldma ->
      let ll = Option.get t.lldma in
      let r = Lldma.access ll ~now ~write in
      let elem = (Lldma.params ll).Params.ll_elem in
      if r.Lldma.hit then
        base By_lldma ~hit:true ~dram_bytes:(r.Lldma.fetched_elems * elem)
          ~dram_txns:(if r.Lldma.fetched_elems > 0 then 1 else 0)
          ~dram_critical:false
      else
        base By_lldma ~hit:false ~dram_bytes:(r.Lldma.fetched_elems * elem)
          ~dram_txns:r.Lldma.fetched_elems
          ~dram_critical:(r.Lldma.fetched_elems > 0)
    | Mem_arch.To_cache -> (
      match t.cache with
      | Some c -> (
        let r = Cache.access c ~addr ~write in
        let line = (Cache.params c).Params.c_line in
        (* clean evictions feed the victim buffer *)
        (match (t.victim, r.Cache.evicted_line) with
        | Some v, Some el when not r.Cache.writeback ->
          Victim_cache.insert v ~line:el
        | _ -> ());
        if r.Cache.hit then
          base By_cache ~hit:true ~dram_bytes:0 ~dram_txns:0
            ~dram_critical:false
        else
          match t.victim with
          | Some v when Victim_cache.probe v ~line:(addr / line) ->
            (* conflict miss recovered on-chip: swap back, no DRAM *)
            t.n_victim_hit <- t.n_victim_hit + 1;
            {
              (base By_cache ~hit:true ~dram_bytes:0 ~dram_txns:0
                 ~dram_critical:false)
              with
              extra_latency = (Victim_cache.params v).Params.v_latency;
              extra_energy = Energy_model.victim_probe;
            }
          | victim_opt -> (
            let probe_energy =
              if victim_opt <> None then Energy_model.victim_probe else 0.0
            in
            let wb = if r.Cache.writeback then line else 0 in
            match t.l2 with
            | None ->
              {
                (base By_cache ~hit:false ~dram_bytes:(line + wb)
                   ~dram_txns:(if r.Cache.writeback then 2 else 1)
                   ~dram_critical:true)
                with
                extra_energy = probe_energy;
              }
            | Some l2 ->
              let l2_line = (Cache.params l2).Params.c_line in
              t.n_l2_access <- t.n_l2_access + 1;
              (* the dirty L1 line drains into the L2 *)
              let wb_dram_bytes = ref 0 and wb_dram_txns = ref 0 in
              (match (r.Cache.writeback, r.Cache.evicted_line) with
              | true, Some el ->
                let wr = Cache.access l2 ~addr:(el * line) ~write:true in
                if not wr.Cache.hit then begin
                  wb_dram_bytes := l2_line;
                  incr wb_dram_txns;
                  if wr.Cache.writeback then begin
                    wb_dram_bytes := !wb_dram_bytes + l2_line;
                    incr wb_dram_txns
                  end
                end
              | _ -> ());
              (* demand fill through the L2 *)
              let dr = Cache.access l2 ~addr ~write:false in
              let l2_energy =
                Energy_model.cache_access (Cache.params l2) ~write:false
              in
              if dr.Cache.hit then begin
                t.n_l2_hit <- t.n_l2_hit + 1;
                {
                  (base By_cache ~hit:true ~dram_bytes:!wb_dram_bytes
                     ~dram_txns:!wb_dram_txns ~dram_critical:false)
                  with
                  l2_bytes = line + wb;
                  l2_txns = (if wb > 0 then 2 else 1);
                  l2_critical = true;
                  extra_energy = probe_energy +. l2_energy;
                }
              end
              else begin
                let dram = ref (l2_line + !wb_dram_bytes)
                and txns = ref (1 + !wb_dram_txns) in
                if dr.Cache.writeback then begin
                  dram := !dram + l2_line;
                  incr txns
                end;
                {
                  (base By_cache ~hit:false ~dram_bytes:!dram ~dram_txns:!txns
                     ~dram_critical:true)
                  with
                  l2_bytes = line + wb;
                  l2_txns = (if wb > 0 then 2 else 1);
                  l2_critical = true;
                  extra_energy = probe_energy +. l2_energy;
                }
              end))
      | None -> (
        (* no cache: direct off-chip access, optionally through the
           posted-write buffer *)
        match t.wbuf with
        | Some wb ->
          let line16 = addr / 16 in
          if write then (
            match Write_buffer.write wb ~now ~line:line16 with
            | `Absorbed | `Coalesced ->
              {
                (base By_dram_direct ~hit:false ~dram_bytes:size ~dram_txns:1
                   ~dram_critical:false)
                with
                extra_energy = Energy_model.write_buffer_access;
              }
            | `Stall ->
              t.n_wbuf_stall <- t.n_wbuf_stall + 1;
              base By_dram_direct ~hit:false ~dram_bytes:size ~dram_txns:1
                ~dram_critical:true)
          else if Write_buffer.read_forward wb ~now ~line:line16 then
            {
              (base By_dram_direct ~hit:true ~dram_bytes:0 ~dram_txns:0
                 ~dram_critical:false)
              with
              extra_energy = Energy_model.write_buffer_access;
            }
          else
            base By_dram_direct ~hit:false ~dram_bytes:size ~dram_txns:1
              ~dram_critical:true
        | None ->
          base By_dram_direct ~hit:false ~dram_bytes:size ~dram_txns:1
            ~dram_critical:true))
  in
  record t o.serving ~size ~o;
  o

type stats = {
  accesses : int;
  on_chip_hits : int;
  demand_misses : int;
  dram_bytes_total : int;
  cpu_bytes : serving -> int;
  cpu_accesses : serving -> int;
  dram_bytes_by : serving -> int;
  dram_txns_by : serving -> int;
  demand_misses_by : serving -> int;
  victim_hits : int;
  wbuf_stalls : int;
  l2_accesses : int;
  l2_hits : int;
  l2_bytes_total : int;
  l2_txns_total : int;
}

let snapshot t =
  let cpu = Array.copy t.cpu_acc and dr = Array.copy t.dram_acc in
  let cnt = Array.copy t.cpu_cnt and txn = Array.copy t.dram_txn in
  let mis = Array.copy t.miss_cnt in
  {
    accesses = t.n_access;
    on_chip_hits = t.n_hit;
    demand_misses = t.n_demand_miss;
    dram_bytes_total = t.dram_total;
    cpu_bytes = (fun s -> cpu.(serving_index s));
    cpu_accesses = (fun s -> cnt.(serving_index s));
    dram_bytes_by = (fun s -> dr.(serving_index s));
    dram_txns_by = (fun s -> txn.(serving_index s));
    demand_misses_by = (fun s -> mis.(serving_index s));
    victim_hits = t.n_victim_hit;
    wbuf_stalls = t.n_wbuf_stall;
    l2_accesses = t.n_l2_access;
    l2_hits = t.n_l2_hit;
    l2_bytes_total = t.l2_bytes_acc;
    l2_txns_total = t.l2_txns_acc;
  }

let run t trace =
  let i = ref 0 in
  Mx_trace.Trace.iter_packed trace ~f:(fun ~addr ~size ~kind ~region ->
      let write = kind = Mx_trace.Access.Write in
      ignore (access t ~now:!i ~addr ~size ~write ~region);
      incr i);
  snapshot t

let miss_ratio s =
  if s.accesses = 0 then 0.0
  else float_of_int s.demand_misses /. float_of_int s.accesses
