(** Linked-list / self-indirect DMA module.

    Models the paper's DMA-like memory module that "brings predictable,
    well-known data structures (such as lists) closer to the CPU": a
    hardware pointer-chaser that dereferences the structure's own link
    fields ahead of the CPU.

    Timing model (causal, trace-driven): while the CPU is inside a
    traversal the DMA stays ahead, because each element it fetches
    contains the pointer to the next one.  The module therefore scores a
    {e hit} when the access continues a chase — i.e. the previous access
    to the DMA-mapped region happened at most [ll_max_gap] CPU accesses
    ago.  A larger gap means the CPU left the traversal (a new chain is
    starting, as at each LZW code or each fresh list), which the DMA
    cannot predict: that access misses and restarts the chase.  Writes
    during a chase (list construction) hit the element buffer and drain
    to DRAM as bursts. *)

type t

type result = {
  hit : bool;
  fetched_elems : int;  (** elements pulled from DRAM by this access *)
}

val create : Params.lldma -> t
(** @raise Invalid_argument on non-positive geometry. *)

val params : t -> Params.lldma

val access : t -> now:int -> write:bool -> result
(** [now] is the global CPU access index, used to measure the gap since
    the previous access to this module.  Must be non-decreasing;
    @raise Invalid_argument when time goes backwards. *)

val accesses : t -> int
val misses : t -> int
val miss_ratio : t -> float
val reset : t -> unit
