type t = {
  p : Params.write_buffer;
  slots : int array; (* buffered line numbers; -1 = free *)
  mutable last_drain : int; (* access index of the last drain event *)
  mutable n_stall : int;
}

let create p =
  Params.validate_write_buffer p;
  { p; slots = Array.make p.Params.wb_entries (-1); last_drain = 0; n_stall = 0 }

let params t = t.p

let drain t ~now =
  (* retire one slot per wb_drain accesses, oldest first (slot order is a
     good-enough FIFO proxy at this granularity) *)
  let due = (now - t.last_drain) / t.p.Params.wb_drain in
  if due > 0 then begin
    t.last_drain <- t.last_drain + (due * t.p.Params.wb_drain);
    let remaining = ref due in
    Array.iteri
      (fun i l ->
        if !remaining > 0 && l <> -1 then begin
          t.slots.(i) <- -1;
          decr remaining
        end)
      t.slots
  end

let write t ~now ~line =
  drain t ~now;
  let existing = ref None and free = ref None in
  Array.iteri
    (fun i l ->
      if l = line && !existing = None then existing := Some i
      else if l = -1 && !free = None then free := Some i)
    t.slots;
  match (!existing, !free) with
  | Some _, _ -> `Coalesced
  | None, Some i ->
    t.slots.(i) <- line;
    `Absorbed
  | None, None ->
    t.n_stall <- t.n_stall + 1;
    `Stall

let read_forward t ~now ~line =
  drain t ~now;
  Array.exists (fun l -> l = line) t.slots

let occupancy t ~now =
  drain t ~now;
  Array.fold_left (fun acc l -> if l = -1 then acc else acc + 1) 0 t.slots

let stalls t = t.n_stall

let reset t =
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  t.last_drain <- 0;
  t.n_stall <- 0
