(** Set-associative write-back, write-allocate cache with true LRU.

    The workhorse on-chip module of every traditional architecture in
    the paper (designs [a]/[b] of Fig. 6 are cache-only).  The simulator
    is state-accurate: hits, misses, fills and dirty evictions are all
    derived from the actual tag array, so miss ratios respond correctly
    to size, line and associativity changes. *)

type t

type result = {
  hit : bool;
  fill : bool;  (** a line was fetched from the next level *)
  writeback : bool;  (** a dirty line was evicted to the next level *)
  evicted_line : int option;
      (** global line number of the displaced line, if any (feeds the
          victim cache) *)
}

val create : Params.cache -> t
(** @raise Invalid_argument via {!Params.validate_cache}. *)

val params : t -> Params.cache

val access : t -> addr:int -> write:bool -> result
(** One CPU reference.  Aligned internally to the line size. *)

val reset : t -> unit
(** Invalidate all lines (drops dirty data — used between independent
    experiment runs only). *)

val accesses : t -> int
val misses : t -> int

val miss_ratio : t -> float
(** 0.0 before any access. *)

val writebacks : t -> int
