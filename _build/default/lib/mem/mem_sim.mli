(** Module-level routing simulation.

    Instantiates the stateful module simulators of a {!Mem_arch} and
    routes each trace access to its serving module, reporting hits,
    misses and the off-chip traffic each access causes.  This is the
    paper's "Profile the Memory Modules Architecture" step: BRG arc
    bandwidths, miss ratios and energy all derive from it; the cycle
    simulator layers connectivity timing on the same events. *)

type t

(** Which module serves an access — also identifies the CPU-side
    channel it travels on. *)
type serving = By_cache | By_sram | By_sbuf | By_lldma | By_dram_direct

type outcome = {
  serving : serving;
  hit : bool;
      (** true when served on-chip without an off-chip transfer on the
          critical path ([By_sram] is always a hit; [By_dram_direct]
          never is) *)
  dram_bytes : int;
      (** bytes moved between the serving module and DRAM because of
          this access (line fills, writebacks, prefetches) *)
  dram_txns : int;  (** number of distinct off-chip bursts *)
  dram_critical : bool;
      (** true when the CPU waits for the off-chip transfer (demand
          miss); false for prefetches/writebacks that overlap *)
  l2_bytes : int;
      (** bytes moved between the L1 cache and the L2 because of this
          access (fills and L1 writebacks); 0 without an L2 *)
  l2_txns : int;  (** distinct L1<->L2 bursts *)
  l2_critical : bool;
      (** true when the CPU waits on the L1<->L2 transfer (any L1
          demand miss when an L2 exists) *)
  extra_latency : int;
      (** additional on-chip cycles beyond the serving module's base
          latency (victim-buffer hit recovery) *)
  extra_energy : float;
      (** additional nJ beyond the serving module's access energy
          (victim probes, write-buffer CAM) *)
}

val create : Mem_arch.t -> regions:Mx_trace.Region.t list -> t
(** Fresh simulation state.  @raise Invalid_argument when a region id
    exceeds the architecture's binding table. *)

val arch : t -> Mem_arch.t

val access :
  t -> now:int -> addr:int -> size:int -> write:bool -> region:int -> outcome
(** Route one access.  [now] is the CPU access index (monotone). *)

val dram : t -> Dram.t
(** The shared off-chip DRAM model (row-buffer state). *)

(** Aggregate counters after a run. *)
type stats = {
  accesses : int;
  on_chip_hits : int;
  demand_misses : int;  (** accesses whose critical path went off-chip *)
  dram_bytes_total : int;
  cpu_bytes : serving -> int;  (** CPU-side bytes per serving module *)
  cpu_accesses : serving -> int;  (** CPU-side accesses per serving module *)
  dram_bytes_by : serving -> int;
      (** module-to-DRAM bytes per serving module *)
  dram_txns_by : serving -> int;
      (** module-to-DRAM bursts per serving module *)
  demand_misses_by : serving -> int;
      (** CPU-blocking misses per serving module *)
  victim_hits : int;  (** misses recovered by the victim buffer *)
  wbuf_stalls : int;  (** stores that found the write buffer full *)
  l2_accesses : int;  (** L1 demand misses that probed the L2 *)
  l2_hits : int;  (** of which served on-chip by the L2 *)
  l2_bytes_total : int;  (** total L1<->L2 traffic *)
  l2_txns_total : int;
}

val snapshot : t -> stats
(** Current counters (cheap copy); usable mid-run. *)

val run : t -> Mx_trace.Trace.t -> stats
(** Convenience: route a whole trace and summarise.  Uses
    {!Trace.iter_packed}; the per-access outcomes are folded into the
    stats and not retained. *)

val miss_ratio : stats -> float
(** Demand misses / accesses — the paper's Fig. 3 Y axis ("accesses to
    off-chip memory are misses"). *)
