type t = {
  p : Params.dram;
  open_rows : int array; (* per bank; -1 = precharged *)
  mutable n_hit : int;
  mutable n_miss : int;
}

let create p =
  Params.validate_dram p;
  { p; open_rows = Array.make p.Params.d_banks (-1); n_hit = 0; n_miss = 0 }

let params t = t.p

let access t ~addr =
  let row = addr / t.p.Params.d_row in
  let bank = row land (t.p.Params.d_banks - 1) in
  if t.open_rows.(bank) = row then begin
    t.n_hit <- t.n_hit + 1;
    t.p.Params.d_cas
  end
  else begin
    t.n_miss <- t.n_miss + 1;
    let was_open = t.open_rows.(bank) <> -1 in
    t.open_rows.(bank) <- row;
    (if was_open then t.p.Params.d_rp else 0) + t.p.Params.d_rcd + t.p.Params.d_cas
  end

let row_hits t = t.n_hit
let row_misses t = t.n_miss

let reset t =
  Array.fill t.open_rows 0 (Array.length t.open_rows) (-1);
  t.n_hit <- 0;
  t.n_miss <- 0
