lib/mem/stream_buffer.ml: Array Params
