lib/mem/module_lib.mli: Params
