lib/mem/cache.ml: Array Params
