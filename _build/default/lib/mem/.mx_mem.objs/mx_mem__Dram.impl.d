lib/mem/dram.ml: Array Params
