lib/mem/energy_model.mli: Params
