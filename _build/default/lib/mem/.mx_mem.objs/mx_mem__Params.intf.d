lib/mem/params.mli: Format
