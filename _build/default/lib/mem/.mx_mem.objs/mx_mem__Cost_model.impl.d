lib/mem/cost_model.ml: Params
