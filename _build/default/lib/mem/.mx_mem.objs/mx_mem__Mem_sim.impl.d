lib/mem/mem_sim.ml: Array Cache Dram Energy_model List Lldma Mem_arch Module_lib Mx_trace Option Params Stream_buffer Victim_cache Write_buffer
