lib/mem/stream_buffer.mli: Params
