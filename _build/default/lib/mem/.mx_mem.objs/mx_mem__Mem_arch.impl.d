lib/mem/mem_arch.ml: Array Cost_model Format List Option Params Printf String
