lib/mem/dram.mli: Params
