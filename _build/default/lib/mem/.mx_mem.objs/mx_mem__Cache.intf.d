lib/mem/cache.mli: Params
