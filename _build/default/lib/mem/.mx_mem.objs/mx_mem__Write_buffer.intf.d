lib/mem/write_buffer.mli: Params
