lib/mem/module_lib.ml: Params
