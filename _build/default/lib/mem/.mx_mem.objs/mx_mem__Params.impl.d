lib/mem/params.ml: Format
