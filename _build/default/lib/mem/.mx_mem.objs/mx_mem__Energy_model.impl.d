lib/mem/energy_model.ml: Float Params
