lib/mem/cost_model.mli: Params
