lib/mem/lldma.mli: Params
