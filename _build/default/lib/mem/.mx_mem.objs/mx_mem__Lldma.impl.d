lib/mem/lldma.ml: Params
