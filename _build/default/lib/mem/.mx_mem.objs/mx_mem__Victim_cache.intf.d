lib/mem/victim_cache.mli: Params
