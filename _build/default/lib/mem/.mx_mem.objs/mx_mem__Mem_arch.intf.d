lib/mem/mem_arch.mli: Format Params
