lib/mem/write_buffer.ml: Array Params
