lib/mem/victim_cache.ml: Array Params
