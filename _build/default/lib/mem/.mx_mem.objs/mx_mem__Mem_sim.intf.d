lib/mem/mem_sim.mli: Dram Mem_arch Mx_trace
