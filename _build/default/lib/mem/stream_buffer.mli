(** Stream buffer: a small prefetching FIFO for sequential regions
    (Jouppi-style), one of the paper's "novel memory modules".

    Each of [sb_streams] slots tracks one sequential stream: a hit is an
    access falling in a line the slot has already prefetched; crossing
    into the next line triggers the next prefetch so a steady stream
    stays resident.  A non-sequential access (re)allocates the
    least-recently-used slot and refetches [sb_depth] lines. *)

type t

type result = {
  hit : bool;
  fetched_lines : int;  (** lines pulled from DRAM by this access *)
}

val create : Params.stream_buffer -> t
(** @raise Invalid_argument on non-positive geometry. *)

val params : t -> Params.stream_buffer
val access : t -> addr:int -> write:bool -> result
val accesses : t -> int
val misses : t -> int
val miss_ratio : t -> float
val reset : t -> unit
