(** Victim cache (Jouppi): a small fully-associative buffer holding
    lines recently evicted from the main cache, recovering conflict
    misses without an off-chip round trip.

    Policy implemented here: clean evictions enter the buffer (dirty
    lines are written back immediately, as in the base design); on a
    main-cache miss the buffer is probed, and a hit returns the line to
    the cache at [v_latency] extra cycles with no DRAM traffic. *)

type t

val create : Params.victim -> t
(** @raise Invalid_argument via {!Params.validate_victim}. *)

val params : t -> Params.victim

val probe : t -> line:int -> bool
(** [probe t ~line] — is the (line-granular) address resident?  A hit
    removes the line (it moves back into the main cache). *)

val insert : t -> line:int -> unit
(** Add an evicted line, displacing the LRU entry when full. *)

val hits : t -> int
val probes : t -> int
val reset : t -> unit
