type t = {
  p : Params.victim;
  lines : int array; (* -1 = empty *)
  stamps : int array;
  mutable clock : int;
  mutable n_probe : int;
  mutable n_hit : int;
}

let create p =
  Params.validate_victim p;
  {
    p;
    lines = Array.make p.Params.v_entries (-1);
    stamps = Array.make p.Params.v_entries 0;
    clock = 0;
    n_probe = 0;
    n_hit = 0;
  }

let params t = t.p

let probe t ~line =
  t.n_probe <- t.n_probe + 1;
  let found = ref false in
  Array.iteri
    (fun i l ->
      if (not !found) && l = line then begin
        found := true;
        t.lines.(i) <- -1 (* the line returns to the main cache *)
      end)
    t.lines;
  if !found then t.n_hit <- t.n_hit + 1;
  !found

let insert t ~line =
  t.clock <- t.clock + 1;
  (* prefer an empty slot, else evict the LRU *)
  let victim = ref 0 in
  (try
     Array.iteri
       (fun i l ->
         if l = -1 then begin
           victim := i;
           raise Exit
         end)
       t.lines;
     Array.iteri
       (fun i _ -> if t.stamps.(i) < t.stamps.(!victim) then victim := i)
       t.lines
   with Exit -> ());
  t.lines.(!victim) <- line;
  t.stamps.(!victim) <- t.clock

let hits t = t.n_hit
let probes t = t.n_probe

let reset t =
  Array.fill t.lines 0 (Array.length t.lines) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.n_probe <- 0;
  t.n_hit <- 0
