(** Posted-write buffer: absorbs CPU-side stores to off-chip memory so
    the CPU does not stall, draining to DRAM in the background.

    Line-granular coalescing slots; one slot drains every [wb_drain]
    CPU accesses.  Reads that hit a buffered line are forwarded from
    the buffer.  When all slots are full an incoming store stalls
    (behaves like an unbuffered write). *)

type t

val create : Params.write_buffer -> t
(** @raise Invalid_argument via {!Params.validate_write_buffer}. *)

val params : t -> Params.write_buffer

val write : t -> now:int -> line:int -> [ `Absorbed | `Coalesced | `Stall ]
(** Post a store to a line at access-index [now].  [`Coalesced] means
    the line already had a slot; [`Absorbed] allocated a new slot;
    [`Stall] means the buffer was full. *)

val read_forward : t -> now:int -> line:int -> bool
(** Does a load hit a buffered (not-yet-drained) line? *)

val occupancy : t -> now:int -> int
(** Slots still occupied at access-index [now] (after draining). *)

val stalls : t -> int
val reset : t -> unit
