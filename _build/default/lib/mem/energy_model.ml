let log2f x = log x /. log 2.0

let size_term ~size ~base_kb =
  (* slow growth with array size, floored at zero for tiny arrays *)
  Float.max 0.0 (log2f (float_of_int size /. (base_kb *. 1024.0)))

let cache_access (c : Params.cache) ~write =
  let e = 0.30 +. (0.08 *. size_term ~size:c.c_size ~base_kb:4.0) in
  if write then e *. 1.2 else e

let sram_access ~size = 0.15 +. (0.05 *. size_term ~size ~base_kb:1.0)

let stream_buffer_access (_ : Params.stream_buffer) = 0.20
let lldma_access (_ : Params.lldma) = 0.25
let victim_probe = 0.10
let write_buffer_access = 0.05

let dram_activation = 70.0
let dram_per_byte = 0.35

let dram_access ~bytes = dram_activation +. (dram_per_byte *. float_of_int bytes)

let dram_traffic ~txns ~bytes =
  (float_of_int txns *. dram_activation)
  +. (dram_per_byte *. float_of_int bytes)
