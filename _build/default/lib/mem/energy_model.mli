(** Per-access energy model in nanojoules, in the style of the
    Catthoor et al. memory power models the paper cites.

    On-chip access energy grows slowly (logarithmically) with array
    size; off-chip DRAM accesses carry a large fixed activation cost
    plus a per-byte transfer cost, which is why in the paper the total
    energy per access is dominated by the memory modules (through their
    miss traffic) rather than by the connectivity. *)

val cache_access : Params.cache -> write:bool -> float
val sram_access : size:int -> float
val stream_buffer_access : Params.stream_buffer -> float
val lldma_access : Params.lldma -> float
val victim_probe : float
(** Per-probe energy of the victim buffer's CAM. *)

val write_buffer_access : float

val dram_access : bytes:int -> float
(** Activation + per-byte core energy for one off-chip burst (bus I/O
    energy is accounted by the connectivity model). *)

val dram_traffic : txns:int -> bytes:int -> float
(** Energy of [txns] bursts moving [bytes] in total: one activation per
    burst plus the per-byte cost. *)
