(** Constrained design selection — Section 5, Phase II of the paper.

    Cost, performance and power are mutually incompatible goals; the
    paper resolves the 3-objective selection through three scenarios,
    each treating one metric as a hard constraint and computing the
    pareto front over the other two:

    - {e power-constrained}: energy <= threshold, cost/performance
      pareto;
    - {e cost-constrained}: cost <= threshold, performance/power
      pareto;
    - {e performance-constrained}: latency <= threshold, cost/power
      pareto. *)

type t =
  | Power_constrained of float  (** max average nJ per access *)
  | Cost_constrained of float  (** max gates *)
  | Perf_constrained of float  (** max average memory latency, cycles *)

val to_string : t -> string

val select : t -> Design.t list -> Design.t list
(** Filter by the constraint, then return the pareto front over the two
    free objectives, sorted by the first of them.  Designs violating
    the constraint are dropped even if nothing else survives. *)

val frontier_axes : t -> (Design.t -> float) * (Design.t -> float)
(** The two free objectives of a scenario (x, y), for reporting. *)
