(** Pareto-coverage accounting for Table 2 of the paper.

    Compares a heuristic strategy's simulated designs against the true
    pareto front established by the Full strategy: what fraction of the
    true front was found exactly (by architecture identity), and — for
    the missed points — how far away (percent, per axis) the nearest
    explored design lands. *)

type report = {
  strategy : Strategy.kind;
  wall_seconds : float;
  n_estimates : int;
  n_simulations : int;
  coverage_pct : float;
  avg_cost_dist_pct : float;
  avg_perf_dist_pct : float;
  avg_energy_dist_pct : float;
}

val eval : reference:Strategy.outcome -> Strategy.outcome -> report
(** [eval ~reference outcome]: [reference] must be the Full strategy's
    outcome (its cost/perf pareto front is the ground truth).
    @raise Invalid_argument when [reference] is not a [Full] outcome. *)

val pp : Format.formatter -> report -> unit
