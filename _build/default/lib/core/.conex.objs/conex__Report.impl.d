lib/core/report.ml: Array Buffer Char Design Float Fun List Mx_connect Mx_mem Mx_sim Mx_util Printf String
