lib/core/explore.ml: Array Design List Mx_apex Mx_connect Mx_sim Mx_trace Mx_util Unix
