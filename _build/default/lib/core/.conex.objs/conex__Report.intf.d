lib/core/report.mli: Design Mx_util
