lib/core/strategy.mli: Design Explore Mx_trace
