lib/core/explore.mli: Design Mx_apex Mx_connect Mx_trace
