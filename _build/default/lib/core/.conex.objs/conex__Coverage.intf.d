lib/core/coverage.mli: Format Strategy
