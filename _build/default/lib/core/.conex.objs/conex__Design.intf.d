lib/core/design.mli: Format Mx_connect Mx_mem Mx_sim
