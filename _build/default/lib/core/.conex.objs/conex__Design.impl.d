lib/core/design.ml: Format Mx_connect Mx_mem Mx_sim
