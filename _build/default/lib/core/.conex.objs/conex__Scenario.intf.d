lib/core/scenario.mli: Design
