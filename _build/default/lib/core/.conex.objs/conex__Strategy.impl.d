lib/core/strategy.ml: Design Explore Float List Mx_apex Mx_connect Mx_sim Mx_trace Mx_util Unix
