lib/core/scenario.ml: Design List Mx_util Printf
