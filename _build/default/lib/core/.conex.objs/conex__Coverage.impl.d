lib/core/coverage.ml: Array Design Format Mx_util Strategy
