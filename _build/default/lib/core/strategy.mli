(** The three exploration strategies compared in the paper's Table 2.

    - {e Pruned}: the ConEx heuristic — only APEX's most promising
      memory architectures reach connectivity exploration, and only each
      architecture's locally-promising estimates reach full simulation.
    - {e Neighborhood}: Pruned, plus the estimate-space neighbours of
      every locally selected point, and the un-thinned APEX pareto
      front — a wider net for modest extra time.
    - {e Full}: brute force — every candidate memory architecture and
      every feasible connectivity assignment is fully simulated; defines
      the true pareto front but is often infeasible (the paper ran a
      month for compress and could not finish li). *)

type kind = Pruned | Neighborhood | Full

exception Full_infeasible of { projected_sims : int; budget : int }
(** Raised when the Full strategy would exceed its simulation budget —
    the paper's "Full simulation was infeasible" case (li). *)

type outcome = {
  kind : kind;
  designs : Design.t list;  (** all fully simulated designs *)
  pareto_cost_perf : Design.t list;
  n_estimates : int;
  n_simulations : int;
  wall_seconds : float;
}

val kind_to_string : kind -> string

val run :
  ?config:Explore.config ->
  ?neighbors:int ->
  ?full_budget:int ->
  kind ->
  Mx_trace.Workload.t ->
  outcome
(** [run kind workload] executes one strategy.  [neighbors] (default 2)
    is the per-point neighbour count for [Neighborhood]; [full_budget]
    (default 300_000) caps the Full strategy's simulation count.
    @raise Full_infeasible as described above. *)
