type report = {
  strategy : Strategy.kind;
  wall_seconds : float;
  n_estimates : int;
  n_simulations : int;
  coverage_pct : float;
  avg_cost_dist_pct : float;
  avg_perf_dist_pct : float;
  avg_energy_dist_pct : float;
}

let eval ~(reference : Strategy.outcome) (o : Strategy.outcome) =
  if reference.Strategy.kind <> Strategy.Full then
    invalid_arg "Coverage.eval: reference must be the Full strategy";
  let axes = [ Design.cost; Design.latency; Design.energy ] in
  let c =
    Mx_util.Pareto.Coverage.eval ~axes ~equal:Design.equal_structure
      ~reference:reference.Strategy.pareto_cost_perf
      ~explored:o.Strategy.designs
  in
  let dist i =
    if Array.length c.Mx_util.Pareto.Coverage.avg_dist_pct > i then
      c.Mx_util.Pareto.Coverage.avg_dist_pct.(i)
    else 0.0
  in
  {
    strategy = o.Strategy.kind;
    wall_seconds = o.Strategy.wall_seconds;
    n_estimates = o.Strategy.n_estimates;
    n_simulations = o.Strategy.n_simulations;
    coverage_pct = c.Mx_util.Pareto.Coverage.coverage_pct;
    avg_cost_dist_pct = dist 0;
    avg_perf_dist_pct = dist 1;
    avg_energy_dist_pct = dist 2;
  }

let pp fmt r =
  Format.fprintf fmt
    "%-12s %7.2fs  %6d est  %6d sim  coverage %5.1f%%  dist c/p/e %.2f%% / \
     %.2f%% / %.2f%%"
    (Strategy.kind_to_string r.strategy)
    r.wall_seconds r.n_estimates r.n_simulations r.coverage_pct
    r.avg_cost_dist_pct r.avg_perf_dist_pct r.avg_energy_dist_pct
