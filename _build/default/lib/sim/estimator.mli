(** Fast analytic cost/performance/power estimation for Phase I of
    ConEx.

    Uses the one-time module-level profile of a memory architecture
    (miss ratios, per-channel transaction counts and sizes — all
    connectivity-independent) plus reservation-table-derived service
    times for each connectivity component, and closes the loop with a
    small fixed-point iteration on total execution time:

    - component utilisation  rho_j = busy_j / T,
    - queueing wait          W_j ~ S_j/2 * rho_j / (1 - rho_j),
    - average latency        L = sum over serving classes of
                                 (wait + transaction + module latency +
                                  miss-rate * off-chip path),
    - total time             T = accesses * (1 + ops/access) + accesses*L.

    No trace replay: thousands of connectivity candidates per memory
    architecture are estimated from one profile, which is what lets the
    Pruned search skip full simulation of the design space.  Absolute
    accuracy is deliberately traded for speed; its {e fidelity}
    (relative ordering) is validated against the cycle simulator in the
    test suite. *)

val estimate :
  workload:Mx_trace.Workload.t ->
  arch:Mx_mem.Mem_arch.t ->
  profile:Mx_mem.Mem_sim.stats ->
  conn:Mx_connect.Conn_arch.t ->
  Sim_result.t
(** @raise Invalid_argument when the profile saw no accesses or the
    connectivity misses a needed channel. *)
