type t = {
  accesses : int;
  cycles : int;
  total_mem_latency : int;
  avg_mem_latency : float;
  avg_energy_nj : float;
  miss_ratio : float;
  bus_wait_cycles : int;
  dram_bytes : int;
  exact : bool;
}

let pp fmt r =
  Format.fprintf fmt
    "%s: %d accesses, %d cycles, avg mem latency %.2f cy, avg energy %.2f \
     nJ, miss %.3f, bus wait %d cy"
    (if r.exact then "sim" else "est")
    r.accesses r.cycles r.avg_mem_latency r.avg_energy_nj r.miss_ratio
    r.bus_wait_cycles
