lib/sim/estimator.ml: Array Float List Mx_connect Mx_mem Mx_trace Printf Sim_result
