lib/sim/sim_result.mli: Format
