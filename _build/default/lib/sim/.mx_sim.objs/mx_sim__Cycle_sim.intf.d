lib/sim/cycle_sim.mli: Mx_connect Mx_mem Mx_trace Sim_result
