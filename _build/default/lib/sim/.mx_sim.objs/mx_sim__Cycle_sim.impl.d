lib/sim/cycle_sim.ml: Array List Mx_connect Mx_mem Mx_trace Printf Sim_result
