lib/sim/sim_result.ml: Format
