lib/apex/explore.mli: Mx_mem Mx_trace
