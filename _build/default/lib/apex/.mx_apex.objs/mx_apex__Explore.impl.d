lib/apex/explore.ml: Array Float List Mx_mem Mx_trace Mx_util Option Printf String
