(** APEX: Access Pattern-based Memory Modules Exploration.

    Reimplementation of the paper's memory-module exploration stage
    (Grun/Dutt/Nicolau, ISSS'01 — reference [12] of the ConEx paper),
    which produces the selected memory-module architectures that ConEx
    starts from (the labelled points of Fig. 3).

    For the profiled access patterns of an application it enumerates
    combinations of IP-library modules — cache configurations,
    scratchpad SRAM mapping of small hot regions, stream buffers for
    sequential regions, linked-list DMAs for self-indirect regions —
    evaluates each candidate's cost (gates) and overall miss ratio
    (off-chip accesses / total accesses) under a simple connectivity
    model, and keeps the cost/miss-ratio pareto front. *)

type candidate = {
  arch : Mx_mem.Mem_arch.t;
  cost_gates : int;
  miss_ratio : float;
  profile : Mx_mem.Mem_sim.stats;
      (** the module-level profile of this architecture — exactly what
          ConEx's BRG construction needs, so it is computed once here *)
}

type config = {
  caches : Mx_mem.Params.cache list;
  include_no_cache : bool;
      (** also try architectures with no cache at all (viable when the
          mapped modules cover almost all traffic, as in vocoder) *)
  sbufs : Mx_mem.Params.stream_buffer list;
  lldmas : Mx_mem.Params.lldma list;
  l2s : Mx_mem.Params.cache list;
      (** second-level cache options tried behind compatible caches *)
  victims : Mx_mem.Params.victim list;
      (** victim-buffer options tried behind each cache candidate *)
  write_buffers : Mx_mem.Params.write_buffer list;
      (** posted-write-buffer options tried on cache-less candidates *)
  sram_budget : int;  (** max scratchpad bytes (0 disables SRAM mapping) *)
  max_selected : int;  (** architectures handed to ConEx (paper: 5) *)
}

val default_config : config
(** Full module library, 16 KB scratchpad budget, 5 selected designs. *)

val reduced_config : config
(** Smaller catalogue for tests and for experiments whose Full
    enumeration must terminate quickly (Table 2). *)

val candidates : config -> Mx_trace.Profile.t -> Mx_mem.Mem_arch.t list
(** The candidate architectures implied by the profiled patterns; no
    evaluation. *)

val evaluate :
  Mx_trace.Profile.t -> Mx_mem.Mem_arch.t -> candidate
(** Replay the trace through the architecture's modules (simple
    connectivity assumed) and measure cost and miss ratio. *)

val explore : ?config:config -> Mx_trace.Profile.t -> candidate list
(** [candidates] + [evaluate] for each, in enumeration order. *)

val pareto : candidate list -> candidate list
(** Cost/miss-ratio pareto front, sorted by increasing cost. *)

val select : ?config:config -> Mx_trace.Profile.t -> candidate list
(** The full APEX stage: explore, prune to the pareto front, drop
    designs "many times worse than the best" (the paper's own filter),
    and thin to [max_selected] representative points (always keeping
    both extremes).  A traditional cache-only architecture is always
    included as the baseline — the paper's designs a/b — so the result
    may hold [max_selected + 1] entries.  This is the input to ConEx. *)
