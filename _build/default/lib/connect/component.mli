(** The connectivity IP library: datasheet records for every component
    class the paper explores — dedicated point-to-point links,
    MUX-based connections, the three AMBA buses (APB, ASB, AHB) and
    off-chip buses.

    Timing semantics (all in CPU cycles):
    - a transaction of [b] bytes occupies the component for
      [base_latency + ceil(b / width) * cycles_per_beat] cycles
      end-to-end;
    - a {e pipelined} component can start the next transaction after
      its first beat completes (AHB overlapped address/data phases); a
      non-pipelined one is busy for the whole transaction;
    - a {e split-transaction} component releases the bus while the
      far side (DRAM) is working; otherwise the bus is held during the
      DRAM access;
    - [arb_overhead] is added once per transaction whenever more than
      one channel shares the component. *)

type kind =
  | Dedicated
  | Mux
  | Amba_apb
  | Amba_asb
  | Amba_ahb
  | Amba_ml_ahb
      (** multi-layer AHB: parallel layers remove trunk arbitration at a
          steep wire-area cost (ARM's 2001 extension; explored here as
          the paper's natural "beyond a single bus" direction) *)
  | Offchip_bus

type t = {
  kind : kind;
  name : string;
  width : int;  (** data width in bytes *)
  base_latency : int;
  cycles_per_beat : int;
  arb_overhead : int;
  pipelined : bool;
  split_txn : bool;
  max_channels : int;  (** fan-in capacity: channels one instance can carry *)
  offchip : bool;  (** true iff it can cross the chip boundary *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val beats : t -> bytes:int -> int
(** Number of data beats for a transfer of [bytes] (at least 1). *)

val txn_latency : t -> bytes:int -> contended:bool -> int
(** End-to-end cycles for one transaction, including arbitration when
    [contended]. *)

val occupancy : t -> bytes:int -> int
(** Cycles the component is unavailable to other masters for this
    transaction (smaller than {!txn_latency} for pipelined
    components). *)

val library : t list
(** The standard catalogue used by the experiments. *)

val onchip_library : t list
val offchip_library : t list

val by_name : string -> t
(** @raise Not_found for an unknown component name. *)
