let choices ~onchip ~offchip (cl : Cluster.t) =
  let pool = if cl.Cluster.offchip then offchip else onchip in
  List.filter (Conn_arch.feasible cl) pool

let enumerate ?(max_designs = max_int) ~onchip ~offchip clusters =
  let per_cluster = List.map (fun cl -> (cl, choices ~onchip ~offchip cl)) clusters in
  if List.exists (fun (_, cs) -> cs = []) per_cluster then []
  else begin
    let out = ref [] and count = ref 0 in
    let rec go acc = function
      | [] ->
        if !count < max_designs then begin
          out := Conn_arch.make (List.rev acc) :: !out;
          incr count
        end
      | (cl, cs) :: rest ->
        List.iter (fun c -> if !count < max_designs then go ((cl, c) :: acc) rest) cs
    in
    go [] per_cluster;
    List.rev !out
  end

let enumerate_levels ?(order = Cluster.Lowest_bandwidth_first)
    ?(max_designs_per_level = max_int) ~onchip ~offchip channels =
  let seen = Hashtbl.create 64 in
  Cluster.levels_ordered order channels
  |> List.concat_map (fun level ->
         enumerate ~max_designs:max_designs_per_level ~onchip ~offchip level)
  |> List.filter (fun arch ->
         let key = Conn_arch.describe arch in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)

let count_levels channels = List.length (Cluster.levels channels)
