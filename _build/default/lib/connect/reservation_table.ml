type slot = { resource : int; offset : int; duration : int }

type template = slot list

(* Per-resource sorted interval lists (start, stop), half-open. *)
type t = { intervals : (int * int) list array }

let create ~n_resources =
  if n_resources <= 0 then
    invalid_arg "Reservation_table.create: need at least one resource";
  { intervals = Array.make n_resources [] }

let overlaps (a0, a1) (b0, b1) = a0 < b1 && b0 < a1

let fits t ~at template =
  List.for_all
    (fun s ->
      if s.resource < 0 || s.resource >= Array.length t.intervals then
        invalid_arg "Reservation_table.fits: bad resource index";
      if s.duration <= 0 then true
      else
        let iv = (at + s.offset, at + s.offset + s.duration) in
        not (List.exists (overlaps iv) t.intervals.(s.resource)))
    template

let reserve t ~at template =
  if not (fits t ~at template) then
    invalid_arg "Reservation_table.reserve: conflict";
  List.iter
    (fun s ->
      if s.duration > 0 then
        t.intervals.(s.resource) <-
          (at + s.offset, at + s.offset + s.duration) :: t.intervals.(s.resource))
    template

let earliest_fit t ~from template =
  (* candidate starts: [from] plus every reserved interval end shifted by
     each slot offset; one of these is the earliest feasible start *)
  let candidates = ref [ from ] in
  List.iter
    (fun s ->
      if s.duration > 0 then
        List.iter
          (fun (_, stop) ->
            let c = stop - s.offset in
            if c >= from then candidates := c :: !candidates)
          t.intervals.(s.resource))
    template;
  let sorted = List.sort_uniq compare !candidates in
  match List.find_opt (fun at -> fits t ~at template) sorted with
  | Some at -> at
  | None ->
    (* cannot happen: the largest candidate is past every reservation *)
    assert false

let release_before t cycle =
  Array.iteri
    (fun i ivs -> t.intervals.(i) <- List.filter (fun (_, stop) -> stop >= cycle) ivs)
    t.intervals

(* Resource 0: arbitration/address stage.  Resource 1: data path. *)
let template_for (c : Component.t) ~bytes =
  let nbeats = Component.beats c ~bytes in
  let data = nbeats * c.cycles_per_beat in
  if c.pipelined then
    [
      { resource = 0; offset = 0; duration = max 1 c.base_latency };
      { resource = 1; offset = c.base_latency; duration = data };
    ]
  else [ { resource = 0; offset = 0; duration = c.base_latency + data } ]

let latency_of template =
  List.fold_left (fun acc s -> max acc (s.offset + s.duration)) 0 template

let initiation_interval c ~bytes =
  let t = create ~n_resources:2 in
  let tpl = template_for c ~bytes in
  reserve t ~at:0 tpl;
  earliest_fit t ~from:0 tpl
