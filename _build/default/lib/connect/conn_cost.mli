(** Cost (gates) and energy (nJ) models for connectivity components,
    after the wire-area models the paper takes from Chen et al. and
    Deng & Maly.

    Point-to-point structures (dedicated links, MUX trees) buy latency
    with long private wires: area grows with fan-in and width.  Shared
    buses amortise one trunk over many ports but pay arbitration.
    Off-chip buses are pad-dominated: expensive per beat in energy,
    fixed pad area in gates.  Connectivity cost is small next to the
    memory modules (hundreds to a few thousand gates versus hundreds of
    thousands), matching the small cost deltas between connectivity
    variants in the paper's Table 1. *)

val cost_gates : Component.t -> channels:int -> int
(** Area of one component instance carrying [channels] channels.
    @raise Invalid_argument when [channels] exceeds the component's
    fan-in capacity or is non-positive. *)

val energy_per_byte : Component.t -> float
(** Switching energy per payload byte moved across the component. *)

val wire_overhead_note : string
(** One-line provenance note for reports. *)
