type node = Cpu | Cache | L2 | Sram | Sbuf | Lldma | Dram

type t = { src : node; dst : node; bandwidth : float; txn_bytes : float }

let node_to_string = function
  | Cpu -> "CPU"
  | Cache -> "cache"
  | L2 -> "L2"
  | Sram -> "SRAM"
  | Sbuf -> "sbuf"
  | Lldma -> "lldma"
  | Dram -> "DRAM"

let endpoints_to_string c =
  Printf.sprintf "%s<->%s" (node_to_string c.src) (node_to_string c.dst)

let crosses_chip c = c.src = Dram || c.dst = Dram

let same_endpoints a b =
  (a.src = b.src && a.dst = b.dst) || (a.src = b.dst && a.dst = b.src)

let pp fmt c =
  Format.fprintf fmt "%s (%.4f B/slot, %.1f B/txn)" (endpoints_to_string c)
    c.bandwidth c.txn_bytes
