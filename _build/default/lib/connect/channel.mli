(** Communication channels: the arcs of the Bandwidth Requirement
    Graph.

    A channel connects two cores of the system (Fig. 2 of the paper:
    CPU, cache, SRAM, stream buffer, DMA modules, off-chip DRAM).  A
    channel {e crosses the chip boundary} when one endpoint is the
    off-chip DRAM; such channels can only be implemented by off-chip
    bus components. *)

type node = Cpu | Cache | L2 | Sram | Sbuf | Lldma | Dram

type t = {
  src : node;
  dst : node;
  bandwidth : float;
      (** average bytes transferred per CPU access slot — the BRG arc
          label *)
  txn_bytes : float;  (** average bytes per transaction on this channel *)
}

val node_to_string : node -> string
val endpoints_to_string : t -> string

val crosses_chip : t -> bool
(** True when either endpoint is [Dram]. *)

val same_endpoints : t -> t -> bool
val pp : Format.formatter -> t -> unit
