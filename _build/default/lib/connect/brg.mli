(** Bandwidth Requirement Graph construction.

    The BRG's nodes are the cores of the memory architecture (CPU,
    cache, SRAM, stream buffer, linked-list DMA, off-chip DRAM); its
    arcs are the communication channels between them, labelled with the
    average bandwidth the profiled application demands of each channel
    (bytes per CPU access slot).  Built from a {!Mx_mem.Mem_sim.stats}
    profile of a memory-modules architecture, exactly as the paper's
    [ConnectivityExploration] procedure begins. *)

type t = {
  arch : Mx_mem.Mem_arch.t;
  channels : Channel.t list;  (** only channels with non-zero traffic *)
  accesses : int;  (** trace length the bandwidths are normalised by *)
}

val build : Mx_mem.Mem_arch.t -> Mx_mem.Mem_sim.stats -> t
(** @raise Invalid_argument when the profile saw no accesses. *)

val onchip_channels : t -> Channel.t list
val offchip_channels : t -> Channel.t list
val pp : Format.formatter -> t -> unit
