lib/connect/component.ml: Format List
