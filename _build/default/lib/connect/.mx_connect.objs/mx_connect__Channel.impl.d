lib/connect/channel.ml: Format Printf
