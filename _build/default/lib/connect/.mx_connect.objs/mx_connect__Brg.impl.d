lib/connect/brg.ml: Channel Format List Mx_mem
