lib/connect/cluster.ml: Channel Float Format List Mx_util Printf String
