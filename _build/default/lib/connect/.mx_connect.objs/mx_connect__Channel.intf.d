lib/connect/channel.mli: Format
