lib/connect/component.mli: Format
