lib/connect/conn_arch.mli: Channel Cluster Component Format
