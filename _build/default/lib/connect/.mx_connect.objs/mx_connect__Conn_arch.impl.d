lib/connect/conn_arch.ml: Channel Cluster Component Conn_cost Format List Printf String
