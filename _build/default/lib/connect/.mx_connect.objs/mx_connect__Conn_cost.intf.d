lib/connect/conn_cost.mli: Component
