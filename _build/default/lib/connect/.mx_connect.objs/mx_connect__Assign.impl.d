lib/connect/assign.ml: Cluster Conn_arch Hashtbl List
