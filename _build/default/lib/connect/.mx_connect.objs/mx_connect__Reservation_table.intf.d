lib/connect/reservation_table.mli: Component
