lib/connect/reservation_table.ml: Array Component List
