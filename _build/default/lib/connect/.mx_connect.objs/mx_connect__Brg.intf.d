lib/connect/brg.mli: Channel Format Mx_mem
