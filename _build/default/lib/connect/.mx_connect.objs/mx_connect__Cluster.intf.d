lib/connect/cluster.mli: Channel Format
