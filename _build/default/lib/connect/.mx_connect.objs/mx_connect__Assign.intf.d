lib/connect/assign.mli: Channel Cluster Component Conn_arch
