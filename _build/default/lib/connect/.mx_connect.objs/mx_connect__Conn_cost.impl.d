lib/connect/conn_cost.ml: Component
