type t = {
  arch : Mx_mem.Mem_arch.t;
  channels : Channel.t list;
  accesses : int;
}

let node_of_serving = function
  | Mx_mem.Mem_sim.By_cache -> Channel.Cache
  | Mx_mem.Mem_sim.By_sram -> Channel.Sram
  | Mx_mem.Mem_sim.By_sbuf -> Channel.Sbuf
  | Mx_mem.Mem_sim.By_lldma -> Channel.Lldma
  | Mx_mem.Mem_sim.By_dram_direct -> Channel.Dram

let build arch (s : Mx_mem.Mem_sim.stats) =
  if s.accesses = 0 then invalid_arg "Brg.build: profile saw no accesses";
  let n = float_of_int s.accesses in
  let servings =
    [
      Mx_mem.Mem_sim.By_cache;
      Mx_mem.Mem_sim.By_sram;
      Mx_mem.Mem_sim.By_sbuf;
      Mx_mem.Mem_sim.By_lldma;
      Mx_mem.Mem_sim.By_dram_direct;
    ]
  in
  let l2_channels =
    if s.Mx_mem.Mem_sim.l2_txns_total = 0 then []
    else
      [
        {
          Channel.src = Channel.Cache;
          dst = Channel.L2;
          bandwidth = float_of_int s.Mx_mem.Mem_sim.l2_bytes_total /. n;
          txn_bytes =
            float_of_int s.Mx_mem.Mem_sim.l2_bytes_total
            /. float_of_int s.Mx_mem.Mem_sim.l2_txns_total;
        };
      ]
  in
  let channels =
    List.concat_map
      (fun sv ->
        let node = node_of_serving sv in
        let cpu_side =
          let bytes = s.cpu_bytes sv and count = s.cpu_accesses sv in
          if count = 0 then []
          else
            [
              {
                Channel.src = Channel.Cpu;
                dst = node;
                bandwidth = float_of_int bytes /. n;
                txn_bytes = float_of_int bytes /. float_of_int count;
              };
            ]
        in
        let dram_side =
          let bytes = s.dram_bytes_by sv and txns = s.dram_txns_by sv in
          (* By_dram_direct's CPU channel already reaches DRAM; with an
             L2 the cache's off-chip traffic flows from the L2 instead *)
          let src =
            if
              node = Channel.Cache
              && s.Mx_mem.Mem_sim.l2_txns_total > 0
            then Channel.L2
            else node
          in
          if txns = 0 || node = Channel.Dram then []
          else
            [
              {
                Channel.src;
                dst = Channel.Dram;
                bandwidth = float_of_int bytes /. n;
                txn_bytes = float_of_int bytes /. float_of_int txns;
              };
            ]
        in
        cpu_side @ dram_side)
      servings
  in
  { arch; channels = l2_channels @ channels; accesses = s.accesses }

let onchip_channels t =
  List.filter (fun c -> not (Channel.crosses_chip c)) t.channels

let offchip_channels t = List.filter Channel.crosses_chip t.channels

let pp fmt t =
  Format.fprintf fmt "BRG for %s (%d accesses):@." t.arch.Mx_mem.Mem_arch.label
    t.accesses;
  List.iter (fun c -> Format.fprintf fmt "  %a@." Channel.pp c) t.channels
