type kind =
  | Dedicated
  | Mux
  | Amba_apb
  | Amba_asb
  | Amba_ahb
  | Amba_ml_ahb
  | Offchip_bus

type t = {
  kind : kind;
  name : string;
  width : int;
  base_latency : int;
  cycles_per_beat : int;
  arb_overhead : int;
  pipelined : bool;
  split_txn : bool;
  max_channels : int;
  offchip : bool;
}

let kind_to_string = function
  | Dedicated -> "dedicated"
  | Mux -> "mux"
  | Amba_apb -> "AMBA APB"
  | Amba_asb -> "AMBA ASB"
  | Amba_ahb -> "AMBA AHB"
  | Amba_ml_ahb -> "AMBA multi-layer AHB"
  | Offchip_bus -> "off-chip bus"

let pp fmt c =
  Format.fprintf fmt "%s (%s, %dB wide)" c.name (kind_to_string c.kind) c.width

let beats c ~bytes = max 1 ((bytes + c.width - 1) / c.width)

let txn_latency c ~bytes ~contended =
  let arb = if contended then c.arb_overhead else 0 in
  c.base_latency + (beats c ~bytes * c.cycles_per_beat) + arb

let occupancy c ~bytes =
  if c.pipelined then
    (* overlapped phases: a new transaction can enter every beat train *)
    beats c ~bytes * c.cycles_per_beat
  else c.base_latency + (beats c ~bytes * c.cycles_per_beat)

let mk kind name width base beat arb ~pipe ~split ~maxch ~off =
  {
    kind;
    name;
    width;
    base_latency = base;
    cycles_per_beat = beat;
    arb_overhead = arb;
    pipelined = pipe;
    split_txn = split;
    max_channels = maxch;
    offchip = off;
  }

let library =
  [
    (* point-to-point links: zero arbitration, costly wires *)
    mk Dedicated "ded32" 4 0 1 0 ~pipe:true ~split:false ~maxch:1 ~off:false;
    mk Dedicated "ded64" 8 0 1 0 ~pipe:true ~split:false ~maxch:1 ~off:false;
    (* MUX-based connection: static select, small fan-in *)
    mk Mux "mux32" 4 0 1 1 ~pipe:false ~split:false ~maxch:4 ~off:false;
    (* AMBA peripheral bus: cheap, slow (setup + enable per beat) *)
    mk Amba_apb "apb32" 4 2 2 1 ~pipe:false ~split:false ~maxch:16 ~off:false;
    (* AMBA system bus: single outstanding transaction *)
    mk Amba_asb "asb32" 4 1 1 2 ~pipe:false ~split:false ~maxch:8 ~off:false;
    (* AMBA high-performance bus: pipelined, split transactions *)
    mk Amba_ahb "ahb32" 4 1 1 1 ~pipe:true ~split:true ~maxch:8 ~off:false;
    mk Amba_ahb "ahb64" 8 1 1 1 ~pipe:true ~split:true ~maxch:8 ~off:false;
    (* multi-layer AHB: per-layer point-to-point trunks, no shared-bus
       arbitration penalty *)
    mk Amba_ml_ahb "mlahb32" 4 1 1 0 ~pipe:true ~split:true ~maxch:8
      ~off:false;
    (* off-chip buses: pad-limited width, slower I/O clock *)
    mk Offchip_bus "off8" 1 2 3 1 ~pipe:false ~split:false ~maxch:4 ~off:true;
    mk Offchip_bus "off16" 2 2 3 1 ~pipe:false ~split:false ~maxch:4 ~off:true;
    mk Offchip_bus "off32" 4 2 3 1 ~pipe:false ~split:false ~maxch:4 ~off:true;
  ]

let onchip_library = List.filter (fun c -> not c.offchip) library
let offchip_library = List.filter (fun c -> c.offchip) library

let by_name name =
  match List.find_opt (fun c -> c.name = name) library with
  | Some c -> c
  | None -> raise Not_found
