let cost_gates (c : Component.t) ~channels =
  if channels <= 0 then invalid_arg "Conn_cost.cost_gates: no channels";
  if channels > c.max_channels then
    invalid_arg "Conn_cost.cost_gates: fan-in capacity exceeded";
  let bits = c.width * 8 in
  match c.kind with
  | Component.Dedicated ->
    (* private long wires, no arbitration *)
    (bits * 180) + 100
  | Component.Mux ->
    (* per-source wires into a mux tree plus select logic *)
    (channels * bits * 140) + (bits * 60) + 300
  | Component.Amba_apb -> 800 + (channels * bits * 25) + (bits * 80)
  | Component.Amba_asb -> 1500 + (channels * bits * 30) + (bits * 90)
  | Component.Amba_ahb ->
    (* pipelined arbiter + split-transaction bookkeeping *)
    3500 + (channels * bits * 35) + (bits * 100)
  | Component.Amba_ml_ahb ->
    (* one full-width layer (trunk + mux matrix) per connected channel *)
    5000 + (channels * bits * 150) + (bits * 120)
  | Component.Offchip_bus ->
    (* pad ring share + board-level driver control *)
    1000 + (bits * 250) + (channels * bits * 20)

let energy_per_byte (c : Component.t) =
  match c.kind with
  | Component.Dedicated -> 0.08 (* long point-to-point wires *)
  | Component.Mux -> 0.05
  | Component.Amba_apb -> 0.03 (* low-power peripheral bus *)
  | Component.Amba_asb -> 0.05
  | Component.Amba_ahb -> 0.07 (* heavier trunk loading *)
  | Component.Amba_ml_ahb -> 0.10 (* many parallel trunks *)
  | Component.Offchip_bus -> 0.50 (* pad and trace capacitance *)

let wire_overhead_note =
  "wire area per Chen et al. (ICCAD'99) / Deng-Maly (ISPD'01) style \
   gate-equivalent models; calibrated to early-2000s 0.18um libraries"
