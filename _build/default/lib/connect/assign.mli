(** Enumeration of feasible cluster-to-component assignments.

    For one clustering level, the candidate connectivity architectures
    are the cartesian product of each cluster's feasible component
    choices.  [enumerate_levels] walks every clustering level of a BRG,
    which is exactly the design space the [do/while] loop of the
    paper's [ConnectivityExploration] procedure visits. *)

val choices :
  onchip:Component.t list -> offchip:Component.t list -> Cluster.t ->
  Component.t list
(** Feasible components for one cluster (respecting fan-in and chip
    boundary). *)

val enumerate :
  ?max_designs:int ->
  onchip:Component.t list ->
  offchip:Component.t list ->
  Cluster.t list ->
  Conn_arch.t list
(** All feasible assignments for one clustering level, capped at
    [max_designs] (default unlimited) to bound pathological products.
    Returns [] when some cluster has no feasible component. *)

val enumerate_levels :
  ?order:Cluster.order ->
  ?max_designs_per_level:int ->
  onchip:Component.t list ->
  offchip:Component.t list ->
  Channel.t list ->
  Conn_arch.t list
(** Union over every clustering level, deduplicated by
    {!Conn_arch.describe}.  [order] selects the merge policy (default
    {!Cluster.Lowest_bandwidth_first}, the paper's heuristic). *)

val count_levels : Channel.t list -> int
(** Number of clustering levels for a channel set (diagnostics and
    Table 2's exploration-size accounting). *)
