(** Hierarchical clustering of BRG arcs into logical connections.

    The heart of the ConEx search-space construction (Section 5): start
    with every channel in its own logical connection, then repeatedly
    merge the two lowest-bandwidth clusters into a larger one, labelled
    with the cumulative bandwidth.  Every clustering level is a
    candidate sharing structure whose feasible component assignments
    are then enumerated.

    Chip-boundary discipline: channels that cross the chip boundary can
    only share a connection with other boundary-crossing channels (an
    on-chip wire cannot reach the DRAM pins), so merges never mix the
    two classes. *)

type t = {
  channels : Channel.t list;  (** the arcs implemented by this connection *)
  bandwidth : float;  (** cumulative bytes per CPU access slot *)
  offchip : bool;  (** true when the cluster crosses the chip boundary *)
}

val of_channel : Channel.t -> t
val initial : Channel.t list -> t list
(** Finest level: one cluster per channel. *)

val merge : t -> t -> t
(** @raise Invalid_argument when mixing on-chip and off-chip. *)

val merge_step : t list -> t list option
(** One hierarchical step: merge the two lowest-bandwidth clusters of
    the same boundary class; [None] when no legal pair remains. *)

val levels : Channel.t list -> t list list
(** All clustering levels from finest (one channel per cluster) to
    coarsest (no legal merge left).  Empty input yields one empty
    level. *)

type order =
  | Lowest_bandwidth_first  (** the paper's heuristic *)
  | Highest_bandwidth_first  (** inverted, for ablation *)
  | Random_order of int  (** seeded random pairs, for ablation *)

val merge_step_ordered : order -> t list -> t list option
(** {!merge_step} under an explicit merge-order policy; used by the
    clustering-order ablation bench.  [Lowest_bandwidth_first] is
    exactly {!merge_step}. *)

val levels_ordered : order -> Channel.t list -> t list list
(** {!levels} under an explicit merge-order policy. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
