(** Reservation tables (RTGEN-style).

    The paper uses reservation tables to model latency, pipelining and
    resource conflicts in the connectivity and memory architecture.  A
    component is a set of numbered resources (arbitration/address stage,
    data path); a transaction is a {e template} of per-resource busy
    intervals relative to its start cycle.  Scheduling a transaction
    means finding the earliest start at which its template does not
    collide with previously reserved intervals.

    {!Component.txn_latency}/{!Component.occupancy} are the closed-form
    views of the same templates; the test suite checks that both views
    agree on every library component, and the analytic estimator's
    service times are derived from templates via {!latency_of} and
    {!initiation_interval}. *)

type slot = { resource : int; offset : int; duration : int }

type template = slot list

type t

val create : n_resources:int -> t
(** Empty table.  @raise Invalid_argument for non-positive count. *)

val fits : t -> at:int -> template -> bool
(** Does the template collide with existing reservations when started
    at cycle [at]? *)

val reserve : t -> at:int -> template -> unit
(** @raise Invalid_argument when the template does not fit. *)

val earliest_fit : t -> from:int -> template -> int
(** Smallest start cycle [>= from] at which the template fits. *)

val release_before : t -> int -> unit
(** Drop reservations that end before the given cycle (sliding
    window — keeps long simulations O(outstanding) per query). *)

val template_for : Component.t -> bytes:int -> template
(** The transaction template of a library component: pipelined
    components split the address/arbitration stage from the data path
    so back-to-back transactions overlap; non-pipelined components hold
    a single resource for the whole transaction. *)

val latency_of : template -> int
(** Completion time of a template started at 0. *)

val initiation_interval : Component.t -> bytes:int -> int
(** Minimum cycles between back-to-back transactions of this shape,
    measured by scheduling two against an empty table. *)
