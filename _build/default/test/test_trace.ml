module Access = Mx_trace.Access
module Trace = Mx_trace.Trace
module Layout = Mx_trace.Layout
module Region = Mx_trace.Region

(* -- Access ---------------------------------------------------------- *)

let test_size_codes_roundtrip () =
  List.iter
    (fun s -> Helpers.check_int "roundtrip" s (Access.size_of_code (Access.size_code s)))
    [ 1; 2; 4; 8 ]

let test_size_code_rejects () =
  Alcotest.check_raises "width 3"
    (Invalid_argument "Access.size_code: bad width 3") (fun () ->
      ignore (Access.size_code 3))

(* -- Trace ----------------------------------------------------------- *)

let test_add_get () =
  let t = Trace.create () in
  Trace.add t ~addr:0x1000 ~size:4 ~kind:Access.Read ~region:2;
  Trace.add t ~addr:0x2000 ~size:1 ~kind:Access.Write ~region:5;
  Helpers.check_int "length" 2 (Trace.length t);
  let a0 = Trace.get t 0 and a1 = Trace.get t 1 in
  Helpers.check_int "addr0" 0x1000 a0.Access.addr;
  Helpers.check_int "size0" 4 a0.Access.size;
  Helpers.check_true "kind0" (a0.Access.kind = Access.Read);
  Helpers.check_int "region0" 2 a0.Access.region;
  Helpers.check_int "addr1" 0x2000 a1.Access.addr;
  Helpers.check_true "kind1" (a1.Access.kind = Access.Write);
  Helpers.check_int "region1" 5 a1.Access.region

let test_get_out_of_bounds () =
  let t = Trace.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get: index out of bounds")
    (fun () -> ignore (Trace.get t 0))

let test_growth () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 999 do
    Trace.add t ~addr:i ~size:2 ~kind:Access.Read ~region:0
  done;
  Helpers.check_int "grown length" 1000 (Trace.length t);
  Helpers.check_int "last addr" 999 (Trace.get t 999).Access.addr

let test_iter_matches_packed () =
  let t = Trace.create () in
  for i = 0 to 99 do
    Trace.add t ~addr:(i * 8) ~size:(if i mod 2 = 0 then 4 else 8)
      ~kind:(if i mod 3 = 0 then Access.Write else Access.Read)
      ~region:(i mod 7)
  done;
  let via_iter = ref [] and via_packed = ref [] in
  Trace.iter t ~f:(fun a ->
      via_iter := (a.Access.addr, a.Access.size, a.Access.kind, a.Access.region) :: !via_iter);
  Trace.iter_packed t ~f:(fun ~addr ~size ~kind ~region ->
      via_packed := (addr, size, kind, region) :: !via_packed);
  Helpers.check_true "iter = iter_packed" (!via_iter = !via_packed)

let test_iteri_indices () =
  let t = Trace.create () in
  for i = 0 to 9 do
    Trace.add t ~addr:i ~size:1 ~kind:Access.Read ~region:0
  done;
  let seen = ref [] in
  Trace.iteri_packed t ~f:(fun i ~addr ~size:_ ~kind:_ ~region:_ ->
      seen := (i, addr) :: !seen);
  Helpers.check_true "indices match addresses"
    (List.for_all (fun (i, a) -> i = a) !seen);
  Helpers.check_int "count" 10 (List.length !seen)

let test_sub () =
  let t = Trace.create () in
  for i = 0 to 99 do
    Trace.add t ~addr:i ~size:1 ~kind:Access.Read ~region:0
  done;
  let s = Trace.sub t ~pos:10 ~len:5 in
  Helpers.check_int "sub length" 5 (Trace.length s);
  Helpers.check_int "sub first" 10 (Trace.get s 0).Access.addr;
  Helpers.check_int "sub last" 14 (Trace.get s 4).Access.addr

let test_sub_bounds () =
  let t = Trace.create () in
  Trace.add t ~addr:0 ~size:1 ~kind:Access.Read ~region:0;
  Alcotest.check_raises "oob sub" (Invalid_argument "Trace.sub: window out of bounds")
    (fun () -> ignore (Trace.sub t ~pos:0 ~len:2))

let test_total_bytes () =
  let t = Trace.create () in
  Trace.add t ~addr:0 ~size:4 ~kind:Access.Read ~region:0;
  Trace.add t ~addr:0 ~size:8 ~kind:Access.Write ~region:0;
  Helpers.check_int "bytes" 12 (Trace.total_bytes t)

(* -- Layout / Region -------------------------------------------------- *)

let test_layout_alloc () =
  let lay = Layout.create ~base:0x1000 ~align:64 () in
  let a = Layout.alloc lay ~name:"a" ~elems:10 ~elem_size:4 ~hint:Region.Stream in
  let b = Layout.alloc lay ~name:"b" ~elems:100 ~elem_size:8 ~hint:Region.Indexed in
  Helpers.check_int "a base" 0x1000 a.Region.base;
  Helpers.check_int "a id" 0 a.Region.id;
  Helpers.check_int "b id" 1 b.Region.id;
  Helpers.check_true "b starts after a"
    (b.Region.base >= a.Region.base + a.Region.size);
  Helpers.check_int "alignment" 0 (b.Region.base mod 64)

let test_layout_no_overlap () =
  let lay = Layout.create () in
  let rs =
    List.init 10 (fun i ->
        Layout.alloc lay ~name:(Printf.sprintf "r%d" i) ~elems:(i + 1)
          ~elem_size:4 ~hint:Region.Stream)
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Helpers.check_true "disjoint"
              (a.Region.base + a.Region.size <= b.Region.base
              || b.Region.base + b.Region.size <= a.Region.base))
        rs)
    rs

let test_layout_find () =
  let lay = Layout.create () in
  let a = Layout.alloc lay ~name:"a" ~elems:16 ~elem_size:4 ~hint:Region.Stream in
  (match Layout.find lay ~addr:(a.Region.base + 8) with
  | Some r -> Helpers.check_int "found a" a.Region.id r.Region.id
  | None -> Alcotest.fail "expected to find region");
  Helpers.check_true "miss below base" (Layout.find lay ~addr:0 = None)

let test_layout_bad_align () =
  Alcotest.check_raises "align 3"
    (Invalid_argument "Layout.create: align not a power of 2") (fun () ->
      ignore (Layout.create ~align:3 ()))

let test_region_elem_addr () =
  let lay = Layout.create ~base:0x100 ~align:64 () in
  let r = Layout.alloc lay ~name:"r" ~elems:4 ~elem_size:8 ~hint:Region.Stream in
  Helpers.check_int "elem 0" 0x100 (Region.elem_addr r 0);
  Helpers.check_int "elem 3" (0x100 + 24) (Region.elem_addr r 3)

let test_region_elem_addr_oob () =
  let lay = Layout.create ~base:0x100 ~align:32 () in
  let r = Layout.alloc lay ~name:"r" ~elems:4 ~elem_size:8 ~hint:Region.Stream in
  Helpers.check_true "contains last byte"
    (Region.contains r (0x100 + 31));
  Alcotest.check_raises "element past end"
    (Invalid_argument "Region.elem_addr: element 4 outside r") (fun () ->
      ignore (Region.elem_addr r 4))

let qcheck_trace_roundtrip =
  QCheck.Test.make ~name:"trace add/get roundtrip"
    QCheck.(
      list_of_size (Gen.int_range 1 200)
        (quad (int_range 0 0xFFFFFF) (int_range 0 3) bool (int_range 0 1000)))
    (fun entries ->
      let t = Trace.create () in
      List.iter
        (fun (addr, szc, w, region) ->
          Trace.add t ~addr ~size:(Access.size_of_code szc)
            ~kind:(if w then Access.Write else Access.Read)
            ~region)
        entries;
      List.for_all2
        (fun (addr, szc, w, region) i ->
          let a = Trace.get t i in
          a.Access.addr = addr
          && a.Access.size = Access.size_of_code szc
          && a.Access.kind = (if w then Access.Write else Access.Read)
          && a.Access.region = region)
        entries
        (List.init (List.length entries) (fun i -> i)))

let suite =
  ( "trace",
    [
      Alcotest.test_case "size codes" `Quick test_size_codes_roundtrip;
      Alcotest.test_case "size code rejects" `Quick test_size_code_rejects;
      Alcotest.test_case "add/get" `Quick test_add_get;
      Alcotest.test_case "get oob" `Quick test_get_out_of_bounds;
      Alcotest.test_case "growth" `Quick test_growth;
      Alcotest.test_case "iter = packed" `Quick test_iter_matches_packed;
      Alcotest.test_case "iteri indices" `Quick test_iteri_indices;
      Alcotest.test_case "sub" `Quick test_sub;
      Alcotest.test_case "sub bounds" `Quick test_sub_bounds;
      Alcotest.test_case "total bytes" `Quick test_total_bytes;
      Alcotest.test_case "layout alloc" `Quick test_layout_alloc;
      Alcotest.test_case "layout no overlap" `Quick test_layout_no_overlap;
      Alcotest.test_case "layout find" `Quick test_layout_find;
      Alcotest.test_case "layout bad align" `Quick test_layout_bad_align;
      Alcotest.test_case "region elem addr" `Quick test_region_elem_addr;
      Alcotest.test_case "region elem oob" `Quick test_region_elem_addr_oob;
      QCheck_alcotest.to_alcotest qcheck_trace_roundtrip;
    ] )
