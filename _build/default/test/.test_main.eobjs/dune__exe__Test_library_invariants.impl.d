test/test_library_invariants.ml: Alcotest Conex Helpers List Mx_connect Mx_mem Mx_trace
