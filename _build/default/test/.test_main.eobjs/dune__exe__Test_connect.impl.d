test/test_connect.ml: Alcotest Helpers List Mx_connect Mx_mem Printf
