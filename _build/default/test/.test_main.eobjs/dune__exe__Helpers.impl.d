test/helpers.ml: Alcotest Array List Mx_connect Mx_mem Mx_trace
