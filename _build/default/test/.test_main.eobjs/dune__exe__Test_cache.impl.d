test/test_cache.ml: Alcotest Gen Helpers List Mx_mem Mx_util QCheck QCheck_alcotest
