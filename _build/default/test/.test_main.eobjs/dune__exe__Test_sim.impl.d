test/test_sim.ml: Alcotest Float Helpers List Mx_connect Mx_sim Mx_trace Unix
