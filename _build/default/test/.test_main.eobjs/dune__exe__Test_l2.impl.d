test/test_l2.ml: Alcotest Array Helpers List Mx_apex Mx_connect Mx_mem Mx_sim Mx_trace
