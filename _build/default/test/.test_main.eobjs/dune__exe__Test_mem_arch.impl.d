test/test_mem_arch.ml: Alcotest Array Helpers List Mx_mem Mx_trace String
