test/test_table.ml: Alcotest Helpers List Mx_util String
