test/test_kernels.ml: Alcotest Hashtbl Helpers List Mx_trace
