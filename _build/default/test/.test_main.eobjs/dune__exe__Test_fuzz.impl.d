test/test_fuzz.ml: Array Float Helpers List Mx_connect Mx_mem Mx_sim Mx_trace Printf QCheck QCheck_alcotest
