test/test_pareto.ml: Alcotest Array Float Gen Helpers List Mx_util QCheck QCheck_alcotest
