test/test_apex.ml: Alcotest Float Helpers List Mx_apex Mx_mem Mx_trace
