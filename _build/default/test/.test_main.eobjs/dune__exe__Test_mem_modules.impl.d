test/test_mem_modules.ml: Alcotest Helpers Mx_mem Mx_util
