test/test_extensions2.ml: Alcotest Conex Filename Fun Helpers List Mx_connect Mx_mem Mx_sim Mx_trace Printf String Sys
