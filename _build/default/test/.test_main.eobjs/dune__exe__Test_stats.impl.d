test/test_stats.ml: Alcotest Float Gen Helpers List Mx_util QCheck QCheck_alcotest
