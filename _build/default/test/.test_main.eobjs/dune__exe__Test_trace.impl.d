test/test_trace.ml: Alcotest Gen Helpers List Mx_trace Printf QCheck QCheck_alcotest
