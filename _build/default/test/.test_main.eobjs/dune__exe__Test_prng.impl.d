test/test_prng.ml: Alcotest Array Float Helpers Mx_util QCheck QCheck_alcotest
