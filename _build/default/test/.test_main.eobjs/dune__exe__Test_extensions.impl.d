test/test_extensions.ml: Alcotest Helpers List Mx_connect Mx_mem Mx_sim Mx_trace
