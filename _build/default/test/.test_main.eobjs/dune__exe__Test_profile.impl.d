test/test_profile.ml: Alcotest Array Helpers List Mx_trace
