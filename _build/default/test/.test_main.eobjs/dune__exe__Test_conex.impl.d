test/test_conex.ml: Alcotest Conex Helpers Lazy List Mx_apex Mx_connect Mx_mem Mx_sim Mx_util String
