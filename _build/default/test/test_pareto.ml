module Pareto = Mx_util.Pareto

type pt = { x : float; y : float; z : float }

let px p = p.x
let py p = p.y
let pz p = p.z
let mk x y z = { x; y; z }

let test_dominates_basic () =
  let a = mk 1.0 1.0 1.0 and b = mk 2.0 2.0 2.0 in
  Helpers.check_true "a dominates b" (Pareto.dominates ~axes:[ px; py; pz ] a b);
  Helpers.check_true "b does not dominate a"
    (not (Pareto.dominates ~axes:[ px; py; pz ] b a))

let test_dominates_requires_strict () =
  let a = mk 1.0 1.0 1.0 in
  Helpers.check_true "no self-domination"
    (not (Pareto.dominates ~axes:[ px; py; pz ] a (mk 1.0 1.0 1.0)))

let test_dominates_incomparable () =
  let a = mk 1.0 2.0 0.0 and b = mk 2.0 1.0 0.0 in
  Helpers.check_true "incomparable a b" (not (Pareto.dominates ~axes:[ px; py ] a b));
  Helpers.check_true "incomparable b a" (not (Pareto.dominates ~axes:[ px; py ] b a))

let test_front_simple () =
  let pts = [ mk 1.0 3.0 0.0; mk 2.0 2.0 0.0; mk 3.0 1.0 0.0; mk 3.0 3.0 0.0 ] in
  let f = Pareto.front ~axes:[ px; py ] pts in
  Helpers.check_int "front size" 3 (List.length f);
  Helpers.check_true "dominated point removed"
    (not (List.exists (fun p -> p.x = 3.0 && p.y = 3.0) f))

let test_front_keeps_duplicates () =
  let pts = [ mk 1.0 1.0 0.0; mk 1.0 1.0 0.0 ] in
  Helpers.check_int "duplicates kept" 2
    (List.length (Pareto.front ~axes:[ px; py ] pts))

let test_front_empty () =
  Helpers.check_int "empty front" 0 (List.length (Pareto.front ~axes:[ px ] []))

let test_front2_sorted () =
  let pts = [ mk 3.0 1.0 0.0; mk 1.0 3.0 0.0; mk 2.0 2.0 0.0; mk 2.5 2.5 0.0 ] in
  let f = Pareto.front2 ~x:px ~y:py pts in
  Helpers.check_int "front2 size" 3 (List.length f);
  let xs = List.map px f in
  Helpers.check_true "sorted by x" (xs = List.sort compare xs)

let test_front2_equals_front () =
  let pts =
    List.init 50 (fun i ->
        let f = float_of_int i in
        mk (Float.rem (f *. 7.3) 11.0) (Float.rem (f *. 3.7) 13.0) 0.0)
  in
  let a =
    Pareto.front2 ~x:px ~y:py pts |> List.map (fun p -> (p.x, p.y))
  and b =
    Pareto.front ~axes:[ px; py ] pts
    |> List.map (fun p -> (p.x, p.y))
    |> List.sort compare
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "front2 agrees with generic front" (List.sort compare a) b

let test_sort_by () =
  let pts = [ mk 3.0 0.0 0.0; mk 1.0 0.0 0.0; mk 2.0 0.0 0.0 ] in
  Alcotest.(check (list (float 1e-9)))
    "ascending" [ 1.0; 2.0; 3.0 ]
    (List.map px (Pareto.sort_by px pts))

let test_coverage_full () =
  let ref_pts = [ mk 1.0 3.0 0.0; mk 2.0 2.0 0.0 ] in
  let r =
    Pareto.Coverage.eval ~axes:[ px; py ]
      ~equal:(fun a b -> a.x = b.x && a.y = b.y)
      ~reference:ref_pts ~explored:ref_pts
  in
  Helpers.check_float "100% coverage" 100.0 r.Pareto.Coverage.coverage_pct;
  Helpers.check_float "zero distance" 0.0 r.Pareto.Coverage.avg_dist_pct.(0)

let test_coverage_partial () =
  let ref_pts = [ mk 10.0 30.0 0.0; mk 20.0 20.0 0.0 ] in
  let explored = [ mk 10.0 30.0 0.0; mk 22.0 20.0 0.0 ] in
  let r =
    Pareto.Coverage.eval ~axes:[ px; py ]
      ~equal:(fun a b -> a.x = b.x && a.y = b.y)
      ~reference:ref_pts ~explored
  in
  Helpers.check_float "50% coverage" 50.0 r.Pareto.Coverage.coverage_pct;
  (* nearest to (20,20) is (22,20): 10% off on x, 0% on y *)
  Helpers.check_float "x distance 10%" 10.0 r.Pareto.Coverage.avg_dist_pct.(0);
  Helpers.check_float "y distance 0%" 0.0 r.Pareto.Coverage.avg_dist_pct.(1)

let test_coverage_empty_reference () =
  let r =
    Pareto.Coverage.eval ~axes:[ px ]
      ~equal:(fun _ _ -> false)
      ~reference:[] ~explored:[ mk 1.0 0.0 0.0 ]
  in
  Helpers.check_float "empty reference = 100%" 100.0 r.Pareto.Coverage.coverage_pct

let qcheck_front_members_not_dominated =
  let gen =
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
  in
  QCheck.Test.make ~name:"no front member is dominated by any input" gen
    (fun pts ->
      let pts = List.map (fun (x, y) -> mk x y 0.0) pts in
      let f = Pareto.front ~axes:[ px; py ] pts in
      List.for_all
        (fun m ->
          not (List.exists (fun p -> Pareto.dominates ~axes:[ px; py ] p m) pts))
        f)

let qcheck_front_covers_inputs =
  let gen =
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
  in
  QCheck.Test.make ~name:"every input is dominated by or on the front" gen
    (fun pts ->
      let pts = List.map (fun (x, y) -> mk x y 0.0) pts in
      let f = Pareto.front ~axes:[ px; py ] pts in
      List.for_all
        (fun p ->
          List.exists
            (fun m ->
              (m.x = p.x && m.y = p.y)
              || Pareto.dominates ~axes:[ px; py ] m p)
            f)
        pts)

let suite =
  ( "pareto",
    [
      Alcotest.test_case "dominates basic" `Quick test_dominates_basic;
      Alcotest.test_case "dominates strict" `Quick test_dominates_requires_strict;
      Alcotest.test_case "incomparable" `Quick test_dominates_incomparable;
      Alcotest.test_case "front simple" `Quick test_front_simple;
      Alcotest.test_case "front duplicates" `Quick test_front_keeps_duplicates;
      Alcotest.test_case "front empty" `Quick test_front_empty;
      Alcotest.test_case "front2 sorted" `Quick test_front2_sorted;
      Alcotest.test_case "front2 = front" `Quick test_front2_equals_front;
      Alcotest.test_case "sort_by" `Quick test_sort_by;
      Alcotest.test_case "coverage full" `Quick test_coverage_full;
      Alcotest.test_case "coverage partial" `Quick test_coverage_partial;
      Alcotest.test_case "coverage empty ref" `Quick test_coverage_empty_reference;
      QCheck_alcotest.to_alcotest qcheck_front_members_not_dominated;
      QCheck_alcotest.to_alcotest qcheck_front_covers_inputs;
    ] )
