module Profile = Mx_trace.Profile
module Region = Mx_trace.Region
module Workload = Mx_trace.Workload
module Synthetic = Mx_trace.Synthetic

let analyze_mixed () = Profile.analyze (Helpers.mixed_workload ())

let test_totals_consistent () =
  let p = analyze_mixed () in
  let sum =
    Array.fold_left
      (fun acc (s : Profile.region_stats) -> acc + s.reads + s.writes)
      0 p.Profile.per_region
  in
  Helpers.check_int "per-region sums to total" p.Profile.total_accesses sum;
  let bytes =
    Array.fold_left
      (fun acc (s : Profile.region_stats) -> acc + s.bytes)
      0 p.Profile.per_region
  in
  Helpers.check_int "bytes consistent" p.Profile.total_bytes bytes

let test_read_frac_range () =
  let p = analyze_mixed () in
  Helpers.check_true "read fraction sane"
    (p.Profile.read_frac > 0.0 && p.Profile.read_frac < 1.0)

let test_stream_detection () =
  let p = analyze_mixed () in
  let w = p.Profile.workload in
  let s = Profile.stats p (Workload.region_by_name w "stream") in
  Helpers.check_true "stream detected" (s.Profile.detected = Region.Stream)

let test_indexed_detection () =
  let p = analyze_mixed () in
  let w = p.Profile.workload in
  let s = Profile.stats p (Workload.region_by_name w "hot") in
  Helpers.check_true "hot array detected as indexed"
    (s.Profile.detected = Region.Indexed)

let test_random_detection () =
  let p = analyze_mixed () in
  let w = p.Profile.workload in
  let s = Profile.stats p (Workload.region_by_name w "table") in
  Helpers.check_true "hash table detected as random"
    (s.Profile.detected = Region.Random_access)

let test_self_indirect_via_hint () =
  let p = analyze_mixed () in
  let w = p.Profile.workload in
  let r = Workload.region_by_name w "list" in
  Helpers.check_true "pattern honours the semantic hint"
    (Profile.pattern p r = Region.Self_indirect)

let test_bandwidth_share_sums_to_one () =
  let p = analyze_mixed () in
  let total =
    List.fold_left
      (fun acc r -> acc +. Profile.bandwidth_share p r)
      0.0 p.Profile.workload.Workload.regions
  in
  Alcotest.(check (float 1e-6)) "shares sum to 1" 1.0 total

let test_footprint_bounded_by_region () =
  let p = analyze_mixed () in
  Array.iter
    (fun (s : Profile.region_stats) ->
      Helpers.check_true "footprint <= region size + block slack"
        (s.Profile.footprint <= s.Profile.region.Region.size + 64))
    p.Profile.per_region

let test_untouched_region_zero () =
  (* a region declared but never accessed *)
  let w =
    Synthetic.generate ~name:"partial" ~scale:100 ~seed:3
      ~specs:
        [
          Synthetic.spec ~name:"used" ~elems:64 Region.Stream;
          Synthetic.spec ~name:"unused" ~elems:64 ~share:1e-9 Region.Stream;
        ]
  in
  let p = Profile.analyze w in
  let u = Profile.stats p (Workload.region_by_name w "unused") in
  (* with share 1e-9 the region receives (essentially) nothing *)
  Helpers.check_true "unused region nearly silent" (u.Profile.reads + u.Profile.writes <= 1)

let test_stats_unknown_region_rejected () =
  let p = analyze_mixed () in
  let fake =
    { Region.id = 999; name = "fake"; base = 0; size = 64; elem_size = 4;
      hint = Region.Stream }
  in
  Helpers.check_true "unknown region rejected"
    (try
       ignore (Profile.stats p fake);
       false
     with Invalid_argument _ -> true)

let test_reuse_of_hot_region_high () =
  let p = analyze_mixed () in
  let w = p.Profile.workload in
  let hot = Profile.stats p (Workload.region_by_name w "hot") in
  let table = Profile.stats p (Workload.region_by_name w "table") in
  Helpers.check_true "hot reuse beats table reuse"
    (hot.Profile.reuse > table.Profile.reuse)

let suite =
  ( "profile",
    [
      Alcotest.test_case "totals consistent" `Quick test_totals_consistent;
      Alcotest.test_case "read fraction" `Quick test_read_frac_range;
      Alcotest.test_case "stream detection" `Quick test_stream_detection;
      Alcotest.test_case "indexed detection" `Quick test_indexed_detection;
      Alcotest.test_case "random detection" `Quick test_random_detection;
      Alcotest.test_case "self-indirect hint" `Quick test_self_indirect_via_hint;
      Alcotest.test_case "bandwidth shares" `Quick test_bandwidth_share_sums_to_one;
      Alcotest.test_case "footprint bounded" `Quick test_footprint_bounded_by_region;
      Alcotest.test_case "untouched region" `Quick test_untouched_region_zero;
      Alcotest.test_case "unknown region rejected" `Quick test_stats_unknown_region_rejected;
      Alcotest.test_case "reuse ordering" `Quick test_reuse_of_hot_region_high;
    ] )
