(* Randomised whole-pipeline properties: arbitrary synthetic workloads
   and arbitrary (valid) architectures must never crash the flow, and
   core invariants must hold everywhere.  Uses qcheck generators over
   the configuration space rather than hand-picked cases. *)

module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Region = Mx_trace.Region
module Synthetic = Mx_trace.Synthetic

(* -- generators -------------------------------------------------------- *)

let pattern_gen =
  QCheck.Gen.oneofl
    [ Region.Stream; Region.Indexed; Region.Random_access;
      Region.Self_indirect; Region.Mixed ]

let spec_gen =
  QCheck.Gen.(
    map3
      (fun pat elems (share, wf) ->
        Synthetic.spec
          ~name:(Printf.sprintf "r%d" elems)
          ~elems ~share ~write_frac:wf pat)
      pattern_gen
      (int_range 16 4096)
      (pair (float_range 0.1 4.0) (float_range 0.0 1.0)))

let workload_gen =
  QCheck.Gen.(
    map2
      (fun seed specs ->
        (* region names must be distinct for region_by_name users, but
           the pipeline itself only needs distinct ids, which Layout
           provides *)
        Synthetic.generate ~name:"fuzz" ~specs ~scale:1500 ~seed)
      (int_range 0 10_000)
      (list_size (int_range 1 5) spec_gen))

let cache_gen =
  QCheck.Gen.(
    map3
      (fun size_log line_log assoc_log ->
        let size = 1 lsl size_log and line = 1 lsl line_log in
        let assoc = 1 lsl assoc_log in
        let assoc = min assoc (size / line) in
        { Params.c_size = size; c_line = line; c_assoc = assoc; c_latency = 1 })
      (int_range 9 14) (int_range 4 6) (int_range 0 2))

let arch_gen =
  QCheck.Gen.(
    map3
      (fun cache use_sbuf use_lldma ->
        fun (w : Mx_trace.Workload.t) ->
          let regions = w.Mx_trace.Workload.regions in
          let bindings = Array.make (List.length regions) Mem_arch.To_cache in
          let sbuf =
            if use_sbuf then Some (List.hd Mx_mem.Module_lib.stream_buffers)
            else None
          and lldma =
            if use_lldma then Some (List.hd Mx_mem.Module_lib.lldmas) else None
          in
          List.iter
            (fun (r : Region.t) ->
              match r.Region.hint with
              | Region.Stream when sbuf <> None ->
                bindings.(r.Region.id) <- Mem_arch.To_sbuf
              | Region.Self_indirect when lldma <> None ->
                bindings.(r.Region.id) <- Mem_arch.To_lldma
              | _ -> ())
            regions;
          Mem_arch.make ~label:"fuzz" ~cache ?sbuf ?lldma ~bindings ())
      cache_gen bool bool)

let pipeline_gen = QCheck.Gen.pair workload_gen arch_gen

let pipeline_arb =
  QCheck.make pipeline_gen
    ~print:(fun (w, _) ->
      Printf.sprintf "workload with %d regions, %d accesses"
        (List.length w.Mx_trace.Workload.regions)
        (Mx_trace.Trace.length w.Mx_trace.Workload.trace))

(* -- properties ------------------------------------------------------- *)

let prop_stats_partition =
  QCheck.Test.make ~count:40 ~name:"fuzz: per-serving stats partition the trace"
    pipeline_arb
    (fun (w, mk_arch) ->
      let arch = mk_arch w in
      let s = Helpers.profile_of arch w in
      let total =
        List.fold_left
          (fun acc sv -> acc + s.Mem_sim.cpu_accesses sv)
          0
          [ Mem_sim.By_cache; Mem_sim.By_sram; Mem_sim.By_sbuf;
            Mem_sim.By_lldma; Mem_sim.By_dram_direct ]
      in
      total = s.Mem_sim.accesses
      && s.Mem_sim.demand_misses <= s.Mem_sim.accesses)

let prop_sim_runs_and_is_sane =
  QCheck.Test.make ~count:25 ~name:"fuzz: cycle sim finite and positive"
    pipeline_arb
    (fun (w, mk_arch) ->
      let arch = mk_arch w in
      let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
      let conn = Helpers.naive_conn brg in
      let r = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
      Float.is_finite r.Mx_sim.Sim_result.avg_mem_latency
      && r.Mx_sim.Sim_result.avg_mem_latency > 0.0
      && Float.is_finite r.Mx_sim.Sim_result.avg_energy_nj
      && r.Mx_sim.Sim_result.avg_energy_nj >= 0.0
      && r.Mx_sim.Sim_result.cycles >= r.Mx_sim.Sim_result.accesses)

let prop_sim_deterministic =
  QCheck.Test.make ~count:15 ~name:"fuzz: cycle sim deterministic" pipeline_arb
    (fun (w, mk_arch) ->
      let arch = mk_arch w in
      let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
      let conn = Helpers.naive_conn brg in
      let a = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn ()
      and b = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
      a.Mx_sim.Sim_result.cycles = b.Mx_sim.Sim_result.cycles
      && a.Mx_sim.Sim_result.avg_mem_latency = b.Mx_sim.Sim_result.avg_mem_latency)

let prop_estimator_finite =
  QCheck.Test.make ~count:25 ~name:"fuzz: estimator finite on any pipeline"
    pipeline_arb
    (fun (w, mk_arch) ->
      let arch = mk_arch w in
      let profile = Helpers.profile_of arch w in
      let brg = Mx_connect.Brg.build arch profile in
      let e =
        Mx_sim.Estimator.estimate ~workload:w ~arch ~profile
          ~conn:(Helpers.naive_conn brg)
      in
      Float.is_finite e.Mx_sim.Sim_result.avg_mem_latency
      && e.Mx_sim.Sim_result.avg_mem_latency > 0.0
      && Float.is_finite e.Mx_sim.Sim_result.avg_energy_nj)

let prop_enumeration_feasible =
  QCheck.Test.make ~count:20
    ~name:"fuzz: every enumerated assignment is internally feasible"
    pipeline_arb
    (fun (w, mk_arch) ->
      let arch = mk_arch w in
      let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
      let conns =
        Mx_connect.Assign.enumerate_levels ~max_designs_per_level:64
          ~onchip:Mx_connect.Component.onchip_library
          ~offchip:Mx_connect.Component.offchip_library
          brg.Mx_connect.Brg.channels
      in
      conns <> []
      && List.for_all
           (fun (c : Mx_connect.Conn_arch.t) ->
             List.for_all
               (fun (b : Mx_connect.Conn_arch.binding) ->
                 Mx_connect.Conn_arch.feasible b.Mx_connect.Conn_arch.cluster
                   b.Mx_connect.Conn_arch.component)
               c.Mx_connect.Conn_arch.bindings)
           conns)

let prop_trace_io_roundtrip =
  QCheck.Test.make ~count:20 ~name:"fuzz: trace save/load roundtrip"
    pipeline_arb
    (fun (w, _) ->
      let w2 = Mx_trace.Trace_io.of_string (Mx_trace.Trace_io.to_string w) in
      Mx_trace.Trace.length w2.Mx_trace.Workload.trace
      = Mx_trace.Trace.length w.Mx_trace.Workload.trace
      && w2.Mx_trace.Workload.regions = w.Mx_trace.Workload.regions)

let suite =
  ( "fuzz",
    List.map QCheck_alcotest.to_alcotest
      [
        prop_stats_partition;
        prop_sim_runs_and_is_sane;
        prop_sim_deterministic;
        prop_estimator_finite;
        prop_enumeration_feasible;
        prop_trace_io_roundtrip;
      ] )
