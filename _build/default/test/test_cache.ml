module Cache = Mx_mem.Cache
module Params = Mx_mem.Params

let mk ?(size = 1024) ?(line = 16) ?(assoc = 2) () =
  Cache.create { Params.c_size = size; c_line = line; c_assoc = assoc; c_latency = 1 }

let test_cold_miss_then_hit () =
  let c = mk () in
  let r1 = Cache.access c ~addr:0x1000 ~write:false in
  Helpers.check_true "cold miss" (not r1.Cache.hit);
  Helpers.check_true "fill on miss" r1.Cache.fill;
  let r2 = Cache.access c ~addr:0x1004 ~write:false in
  Helpers.check_true "same line hits" r2.Cache.hit

let test_line_granularity () =
  let c = mk ~line:16 () in
  ignore (Cache.access c ~addr:0x1000 ~write:false);
  Helpers.check_true "last byte of line hits"
    (Cache.access c ~addr:0x100F ~write:false).Cache.hit;
  Helpers.check_true "next line misses"
    (not (Cache.access c ~addr:0x1010 ~write:false).Cache.hit)

let test_lru_eviction () =
  (* 2-way set: fill both ways, touch the first, insert a third: the
     second (least recently used) must be evicted *)
  let c = mk ~size:1024 ~line:16 ~assoc:2 () in
  let sets = 1024 / 16 / 2 in
  let stride = sets * 16 in
  let a0 = 0 and a1 = stride and a2 = 2 * stride in
  ignore (Cache.access c ~addr:a0 ~write:false);
  ignore (Cache.access c ~addr:a1 ~write:false);
  ignore (Cache.access c ~addr:a0 ~write:false); (* refresh a0 *)
  ignore (Cache.access c ~addr:a2 ~write:false); (* evicts a1 *)
  Helpers.check_true "a0 survives" (Cache.access c ~addr:a0 ~write:false).Cache.hit;
  Helpers.check_true "a1 evicted"
    (not (Cache.access c ~addr:a1 ~write:false).Cache.hit)

let test_writeback_only_when_dirty () =
  let c = mk ~size:256 ~line:16 ~assoc:1 () in
  let sets = 256 / 16 in
  let stride = sets * 16 in
  (* clean line evicted: no writeback *)
  ignore (Cache.access c ~addr:0 ~write:false);
  let r = Cache.access c ~addr:stride ~write:false in
  Helpers.check_true "clean eviction, no writeback" (not r.Cache.writeback);
  (* dirty line evicted: writeback *)
  ignore (Cache.access c ~addr:0 ~write:true);
  let r = Cache.access c ~addr:stride ~write:false in
  Helpers.check_true "dirty eviction writes back" r.Cache.writeback

let test_write_allocate () =
  let c = mk () in
  let r = Cache.access c ~addr:0x42 ~write:true in
  Helpers.check_true "write miss fills" r.Cache.fill;
  Helpers.check_true "write then read hits"
    (Cache.access c ~addr:0x42 ~write:false).Cache.hit

let test_counters () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:4096 ~write:false);
  Helpers.check_int "accesses" 3 (Cache.accesses c);
  Helpers.check_int "misses" 2 (Cache.misses c);
  Alcotest.(check (float 1e-9)) "miss ratio" (2.0 /. 3.0) (Cache.miss_ratio c)

let test_reset () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:true);
  Cache.reset c;
  Helpers.check_int "counters cleared" 0 (Cache.accesses c);
  Helpers.check_true "state cleared"
    (not (Cache.access c ~addr:0 ~write:false).Cache.hit)

let test_bigger_cache_fewer_misses () =
  let small = mk ~size:512 () and big = mk ~size:8192 () in
  let g = Mx_util.Prng.create ~seed:99 in
  for _ = 1 to 5000 do
    let addr = Mx_util.Prng.zipf g ~n:512 ~s:1.0 * 16 in
    ignore (Cache.access small ~addr ~write:false);
    ignore (Cache.access big ~addr ~write:false)
  done;
  Helpers.check_true "monotone in size"
    (Cache.misses big <= Cache.misses small)

let test_higher_assoc_no_conflicts () =
  (* k+1 conflicting lines thrash a k-way set but fit in 2k ways *)
  let a2 = mk ~size:1024 ~line:16 ~assoc:2 ()
  and a4 = mk ~size:1024 ~line:16 ~assoc:4 () in
  let sets2 = 1024 / 16 / 2 in
  let addrs = List.init 3 (fun i -> i * sets2 * 16) in
  for _ = 1 to 50 do
    List.iter
      (fun addr ->
        ignore (Cache.access a2 ~addr ~write:false);
        ignore (Cache.access a4 ~addr ~write:false))
      addrs
  done;
  Helpers.check_true "4-way absorbs the conflict set"
    (Cache.misses a4 < Cache.misses a2)

let test_geometry_validation () =
  List.iter
    (fun (size, line, assoc) ->
      Helpers.check_true "bad geometry rejected"
        (try
           ignore
             (Cache.create
                { Params.c_size = size; c_line = line; c_assoc = assoc;
                  c_latency = 1 });
           false
         with Invalid_argument _ -> true))
    [ (1000, 16, 2); (1024, 24, 2); (1024, 16, 0); (16, 32, 1) ]

let test_full_assoc_working_set () =
  (* a working set exactly the cache size never misses after warmup *)
  let c = mk ~size:256 ~line:16 ~assoc:16 () in
  let addrs = List.init 16 (fun i -> i * 16) in
  List.iter (fun addr -> ignore (Cache.access c ~addr ~write:false)) addrs;
  let before = Cache.misses c in
  for _ = 1 to 10 do
    List.iter (fun addr -> ignore (Cache.access c ~addr ~write:false)) addrs
  done;
  Helpers.check_int "no misses after warmup" before (Cache.misses c)

let qcheck_hit_ratio_bounds =
  QCheck.Test.make ~name:"cache miss count never exceeds access count"
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 100_000))
    (fun addrs ->
      let c = mk () in
      List.iter (fun addr -> ignore (Cache.access c ~addr ~write:false)) addrs;
      Cache.misses c <= Cache.accesses c
      && Cache.accesses c = List.length addrs)

let qcheck_repeat_access_hits =
  QCheck.Test.make ~name:"immediately repeated access always hits"
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 1_000_000))
    (fun addrs ->
      let c = mk () in
      List.for_all
        (fun addr ->
          ignore (Cache.access c ~addr ~write:false);
          (Cache.access c ~addr ~write:false).Cache.hit)
        addrs)

let suite =
  ( "cache",
    [
      Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
      Alcotest.test_case "line granularity" `Quick test_line_granularity;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "writeback when dirty" `Quick test_writeback_only_when_dirty;
      Alcotest.test_case "write allocate" `Quick test_write_allocate;
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "size monotone" `Quick test_bigger_cache_fewer_misses;
      Alcotest.test_case "associativity" `Quick test_higher_assoc_no_conflicts;
      Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
      Alcotest.test_case "resident set" `Quick test_full_assoc_working_set;
      QCheck_alcotest.to_alcotest qcheck_hit_ratio_bounds;
      QCheck_alcotest.to_alcotest qcheck_repeat_access_hits;
    ] )
