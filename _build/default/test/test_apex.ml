module Explore = Mx_apex.Explore
module Mem_arch = Mx_mem.Mem_arch
module Region = Mx_trace.Region

let profile () = Mx_trace.Profile.analyze (Helpers.mixed_workload ())

let test_candidates_nonempty () =
  let cands = Explore.candidates Explore.reduced_config (profile ()) in
  Helpers.check_true "candidates exist" (List.length cands > 4)

let test_candidates_respect_patterns () =
  let p = profile () in
  let cands = Explore.candidates Explore.default_config p in
  (* whenever an architecture has a stream buffer, the stream regions are
     bound to it *)
  let w = p.Mx_trace.Profile.workload in
  let stream = Mx_trace.Workload.region_by_name w "stream" in
  List.iter
    (fun (a : Mem_arch.t) ->
      if a.Mem_arch.sbuf <> None then
        Helpers.check_true "stream region on sbuf"
          (Mem_arch.binding_of a ~region:stream.Region.id = Mem_arch.To_sbuf))
    cands

let test_no_empty_architecture () =
  let cands = Explore.candidates Explore.default_config (profile ()) in
  List.iter
    (fun (a : Mem_arch.t) ->
      Helpers.check_true "at least one module"
        (a.Mem_arch.cache <> None || a.Mem_arch.sbuf <> None
        || a.Mem_arch.lldma <> None || a.Mem_arch.sram <> None))
    cands

let test_evaluate_counts () =
  let p = profile () in
  let arch = List.hd (Explore.candidates Explore.reduced_config p) in
  let c = Explore.evaluate p arch in
  Helpers.check_true "miss ratio in range"
    (c.Explore.miss_ratio >= 0.0 && c.Explore.miss_ratio <= 1.0);
  Helpers.check_int "cost matches architecture" (Mem_arch.cost_gates arch)
    c.Explore.cost_gates;
  Helpers.check_int "profile covers the trace"
    p.Mx_trace.Profile.total_accesses c.Explore.profile.Mx_mem.Mem_sim.accesses

let test_pareto_is_front () =
  let p = profile () in
  let all = Explore.explore ~config:Explore.reduced_config p in
  let front = Explore.pareto all in
  Helpers.check_true "front nonempty" (front <> []);
  (* no member dominated by any candidate *)
  List.iter
    (fun (m : Explore.candidate) ->
      Helpers.check_true "front member undominated"
        (not
           (List.exists
              (fun (c : Explore.candidate) ->
                c.Explore.cost_gates <= m.Explore.cost_gates
                && c.Explore.miss_ratio <= m.Explore.miss_ratio
                && (c.Explore.cost_gates < m.Explore.cost_gates
                   || c.Explore.miss_ratio < m.Explore.miss_ratio))
              all)))
    front

let test_select_cap_and_order () =
  let p = profile () in
  let sel = Explore.select ~config:Explore.reduced_config p in
  Helpers.check_true "at most max_selected + baseline"
    (List.length sel <= Explore.reduced_config.Explore.max_selected + 1);
  Helpers.check_true "a traditional cache-only baseline is included"
    (List.exists
       (fun (c : Explore.candidate) ->
         c.Explore.arch.Mem_arch.cache <> None
         && c.Explore.arch.Mem_arch.sbuf = None
         && c.Explore.arch.Mem_arch.lldma = None
         && c.Explore.arch.Mem_arch.sram = None)
       sel);
  let costs = List.map (fun c -> c.Explore.cost_gates) sel in
  Helpers.check_true "sorted by cost" (costs = List.sort compare costs)

let test_select_deterministic () =
  let p = profile () in
  let l1 = Explore.select ~config:Explore.reduced_config p
  and l2 = Explore.select ~config:Explore.reduced_config p in
  Helpers.check_true "same labels"
    (List.map (fun c -> c.Explore.arch.Mem_arch.label) l1
    = List.map (fun c -> c.Explore.arch.Mem_arch.label) l2)

let test_select_excludes_degenerate () =
  let p = profile () in
  let sel = Explore.select ~config:Explore.default_config p in
  let best =
    List.fold_left (fun acc c -> Float.min acc c.Explore.miss_ratio) infinity sel
  in
  List.iter
    (fun c ->
      Helpers.check_true "within the promising band"
        (c.Explore.miss_ratio <= Float.max (2.0 *. best) (best +. 0.02)))
    sel

let suite =
  ( "apex",
    [
      Alcotest.test_case "candidates nonempty" `Quick test_candidates_nonempty;
      Alcotest.test_case "patterns respected" `Quick test_candidates_respect_patterns;
      Alcotest.test_case "no empty arch" `Quick test_no_empty_architecture;
      Alcotest.test_case "evaluate counts" `Quick test_evaluate_counts;
      Alcotest.test_case "pareto is a front" `Slow test_pareto_is_front;
      Alcotest.test_case "select cap/order" `Slow test_select_cap_and_order;
      Alcotest.test_case "select deterministic" `Slow test_select_deterministic;
      Alcotest.test_case "select band" `Slow test_select_excludes_degenerate;
    ] )
