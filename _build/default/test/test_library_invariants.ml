(* Catalogue-wide invariants: every entry of the memory and connectivity
   IP libraries must be well-formed and consistently priced, and the
   whole flow must hold together on every built-in kernel. *)

module Component = Mx_connect.Component
module Conn_cost = Mx_connect.Conn_cost
module Params = Mx_mem.Params

let test_memory_catalogue_valid () =
  List.iter Params.validate_cache Mx_mem.Module_lib.caches;
  List.iter Params.validate_cache Mx_mem.Module_lib.l2_caches;
  List.iter Params.validate_victim Mx_mem.Module_lib.victims;
  List.iter Params.validate_write_buffer Mx_mem.Module_lib.write_buffers;
  Params.validate_dram Mx_mem.Module_lib.default_dram

let test_memory_catalogue_costs_positive () =
  List.iter
    (fun c -> Helpers.check_true "cache cost > 0" (Mx_mem.Cost_model.cache c > 0))
    (Mx_mem.Module_lib.caches @ Mx_mem.Module_lib.l2_caches);
  List.iter
    (fun s ->
      Helpers.check_true "sbuf cost > 0" (Mx_mem.Cost_model.stream_buffer s > 0))
    Mx_mem.Module_lib.stream_buffers;
  List.iter
    (fun l -> Helpers.check_true "lldma cost > 0" (Mx_mem.Cost_model.lldma l > 0))
    Mx_mem.Module_lib.lldmas

let test_cache_catalogue_cost_monotone () =
  (* within the catalogue, strictly larger caches cost more *)
  List.iter
    (fun (a : Params.cache) ->
      List.iter
        (fun (b : Params.cache) ->
          if
            a.Params.c_size < b.Params.c_size
            && a.Params.c_line = b.Params.c_line
            && a.Params.c_assoc = b.Params.c_assoc
          then
            Helpers.check_true "bigger cache, bigger cost"
              (Mx_mem.Cost_model.cache a < Mx_mem.Cost_model.cache b))
        Mx_mem.Module_lib.caches)
    Mx_mem.Module_lib.caches

let test_component_names_unique () =
  let names = List.map (fun (c : Component.t) -> c.Component.name) Component.library in
  Helpers.check_int "unique component names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_component_costs_and_energy () =
  List.iter
    (fun (c : Component.t) ->
      Helpers.check_true (c.Component.name ^ " cost > 0")
        (Conn_cost.cost_gates c ~channels:1 > 0);
      Helpers.check_true (c.Component.name ^ " energy > 0")
        (Conn_cost.energy_per_byte c > 0.0);
      Helpers.check_true (c.Component.name ^ " timing sane")
        (c.Component.cycles_per_beat >= 1 && c.Component.base_latency >= 0))
    Component.library

let test_every_component_latency_consistent () =
  (* latency is non-decreasing in transfer size for every component *)
  List.iter
    (fun (c : Component.t) ->
      let l s = Component.txn_latency c ~bytes:s ~contended:false in
      Helpers.check_true (c.Component.name ^ " latency monotone in size")
        (l 4 <= l 8 && l 8 <= l 32 && l 32 <= l 64))
    Component.library

let test_offchip_slower_per_byte () =
  (* an off-chip bus never moves a 32-byte burst faster than the same
     width on-chip AMBA bus *)
  let off = Component.by_name "off32" and ahb = Component.by_name "ahb32" in
  Helpers.check_true "pads are slower"
    (Component.txn_latency off ~bytes:32 ~contended:false
    >= Component.txn_latency ahb ~bytes:32 ~contended:false)

(* whole-flow sanity on every built-in kernel at a small scale *)
let all_kernels =
  [
    ("compress", Mx_trace.Kern_compress.generate);
    ("li", Mx_trace.Kern_li.generate);
    ("vocoder", Mx_trace.Kern_vocoder.generate);
    ("jpeg", Mx_trace.Kern_jpeg.generate);
    ("fft", Mx_trace.Kern_fft.generate);
    ("dijkstra", Mx_trace.Kern_graph.generate);
  ]

let test_conex_runs_on_every_kernel () =
  List.iter
    (fun (name, gen) ->
      let w = gen ~scale:5000 ~seed:11 in
      let r = Conex.Explore.run ~config:Conex.Explore.reduced_config w in
      Helpers.check_true (name ^ ": pareto front found")
        (r.Conex.Explore.pareto_cost_perf <> []);
      Helpers.check_true (name ^ ": estimates dominate simulations")
        (r.Conex.Explore.n_estimates > r.Conex.Explore.n_simulations))
    all_kernels

let suite =
  ( "library-invariants",
    [
      Alcotest.test_case "memory catalogue valid" `Quick test_memory_catalogue_valid;
      Alcotest.test_case "memory costs positive" `Quick test_memory_catalogue_costs_positive;
      Alcotest.test_case "cache cost monotone" `Quick test_cache_catalogue_cost_monotone;
      Alcotest.test_case "component names unique" `Quick test_component_names_unique;
      Alcotest.test_case "component costs/energy" `Quick test_component_costs_and_energy;
      Alcotest.test_case "latency monotone" `Quick test_every_component_latency_consistent;
      Alcotest.test_case "off-chip slower" `Quick test_offchip_slower_per_byte;
      Alcotest.test_case "conex on every kernel" `Slow test_conex_runs_on_every_kernel;
    ] )
