module Workload = Mx_trace.Workload
module Trace = Mx_trace.Trace
module Region = Mx_trace.Region
module Access = Mx_trace.Access

let kernels =
  [
    ("compress", Mx_trace.Kern_compress.generate);
    ("li", Mx_trace.Kern_li.generate);
    ("vocoder", Mx_trace.Kern_vocoder.generate);
  ]

let for_each_kernel f () =
  List.iter (fun (name, gen) -> f name (gen ~scale:15000 ~seed:42)) kernels

let test_scale_reached =
  for_each_kernel (fun name w ->
      Helpers.check_true (name ^ " reaches scale")
        (Trace.length w.Workload.trace >= 15000))

let test_deterministic () =
  List.iter
    (fun (name, gen) ->
      let a = gen ~scale:5000 ~seed:7 and b = gen ~scale:5000 ~seed:7 in
      Helpers.check_int (name ^ " deterministic length")
        (Trace.length a.Workload.trace)
        (Trace.length b.Workload.trace);
      let n = Trace.length a.Workload.trace in
      let same = ref true in
      for i = 0 to n - 1 do
        if Trace.get a.Workload.trace i <> Trace.get b.Workload.trace i then
          same := false
      done;
      Helpers.check_true (name ^ " deterministic content") !same)
    kernels

let test_seed_changes_trace () =
  List.iter
    (fun (name, gen) ->
      let a = gen ~scale:5000 ~seed:7 and b = gen ~scale:5000 ~seed:8 in
      let differs =
        Trace.length a.Workload.trace <> Trace.length b.Workload.trace
        ||
        let n = Trace.length a.Workload.trace in
        let d = ref false in
        for i = 0 to n - 1 do
          if Trace.get a.Workload.trace i <> Trace.get b.Workload.trace i then
            d := true
        done;
        !d
      in
      Helpers.check_true (name ^ " seed-sensitive") differs)
    kernels

let test_accesses_inside_regions =
  for_each_kernel (fun name w ->
      let ok = ref true in
      Trace.iter w.Workload.trace ~f:(fun a ->
          let r = List.nth w.Workload.regions a.Access.region in
          if not (Region.contains r a.Access.addr) then ok := false);
      Helpers.check_true (name ^ " addresses inside declared regions") !ok)

let test_region_ids_contiguous =
  for_each_kernel (fun name w ->
      List.iteri
        (fun i (r : Region.t) ->
          Helpers.check_int (name ^ " region id order") i r.Region.id)
        w.Workload.regions)

let test_cpu_ops_positive =
  for_each_kernel (fun name w ->
      Helpers.check_true (name ^ " has compute work") (w.Workload.cpu_ops > 0))

let test_compress_has_expected_regions () =
  let w = Mx_trace.Kern_compress.generate ~scale:5000 ~seed:1 in
  List.iter
    (fun n -> ignore (Workload.region_by_name w n))
    [ "input"; "codes"; "decout"; "htab"; "codetab"; "chains"; "stack" ]

let test_compress_chain_region_self_indirect () =
  let w = Mx_trace.Kern_compress.generate ~scale:5000 ~seed:1 in
  let r = Workload.region_by_name w "chains" in
  Helpers.check_true "chains hinted self-indirect"
    (r.Region.hint = Region.Self_indirect)

let test_li_has_expected_regions () =
  let w = Mx_trace.Kern_li.generate ~scale:5000 ~seed:1 in
  List.iter
    (fun n -> ignore (Workload.region_by_name w n))
    [ "cells"; "symtab"; "env"; "prog"; "result" ]

let test_li_cells_dominate () =
  let w = Mx_trace.Kern_li.generate ~scale:20000 ~seed:1 in
  let p = Mx_trace.Profile.analyze w in
  let cells = Mx_trace.Profile.stats p (Workload.region_by_name w "cells") in
  let total = p.Mx_trace.Profile.total_accesses in
  Helpers.check_true "cons heap is the dominant region"
    (cells.Mx_trace.Profile.reads + cells.Mx_trace.Profile.writes > total / 4)

let test_vocoder_has_expected_regions () =
  let w = Mx_trace.Kern_vocoder.generate ~scale:5000 ~seed:1 in
  List.iter
    (fun n -> ignore (Workload.region_by_name w n))
    [ "speech_in"; "frame_buf"; "lpc_coef"; "st_state"; "ltp_hist"; "qlut";
      "params_out" ]

let test_vocoder_mostly_reads () =
  let w = Mx_trace.Kern_vocoder.generate ~scale:20000 ~seed:1 in
  let p = Mx_trace.Profile.analyze w in
  Helpers.check_true "DSP kernel is read-dominated"
    (p.Mx_trace.Profile.read_frac > 0.8)

let test_vocoder_small_footprint () =
  let w = Mx_trace.Kern_vocoder.generate ~scale:20000 ~seed:1 in
  let p = Mx_trace.Profile.analyze w in
  let hot = Mx_trace.Profile.stats p (Workload.region_by_name w "frame_buf") in
  Helpers.check_true "frame buffer is small and hot"
    (hot.Mx_trace.Profile.footprint <= 512 && hot.Mx_trace.Profile.reuse > 100.0)

let test_scale_rejects_nonpositive () =
  List.iter
    (fun (_, gen) ->
      Helpers.check_true "rejects scale 0"
        (try
           ignore (gen ~scale:0 ~seed:1);
           false
         with Invalid_argument _ -> true))
    kernels

(* -- synthetic ------------------------------------------------------- *)

let test_synthetic_exact_scale () =
  let w = Helpers.mixed_workload ~scale:5000 () in
  Helpers.check_int "exact scale" 5000 (Trace.length w.Workload.trace)

let test_synthetic_stream_is_sequential () =
  let w = Helpers.stream_workload () in
  let p = Mx_trace.Profile.analyze w in
  let s = Mx_trace.Profile.stats p (Workload.region_by_name w "in") in
  Helpers.check_true "stream detected"
    (s.Mx_trace.Profile.detected = Region.Stream);
  Helpers.check_true "high seq fraction" (s.Mx_trace.Profile.seq_frac > 0.9)

let test_synthetic_write_frac_respected () =
  let w = Helpers.stream_workload () in
  let p = Mx_trace.Profile.analyze w in
  let r = Mx_trace.Profile.stats p (Workload.region_by_name w "out") in
  Helpers.check_int "write-only stream has no reads" 0 r.Mx_trace.Profile.reads

let test_synthetic_rejects_empty_specs () =
  Helpers.check_true "empty specs rejected"
    (try
       ignore (Mx_trace.Synthetic.generate ~name:"x" ~specs:[] ~scale:10 ~seed:1);
       false
     with Invalid_argument _ -> true)

let test_synthetic_chase_is_permutation () =
  (* every element of a self-indirect region is eventually visited *)
  let w =
    Mx_trace.Synthetic.generate ~name:"chase" ~scale:4000 ~seed:5
      ~specs:[ Mx_trace.Synthetic.spec ~name:"l" ~elems:64 ~write_frac:0.0
                 Region.Self_indirect ]
  in
  let seen = Hashtbl.create 64 in
  Trace.iter w.Workload.trace ~f:(fun a -> Hashtbl.replace seen a.Access.addr ());
  Helpers.check_int "all 64 elements visited" 64 (Hashtbl.length seen)

let suite =
  ( "kernels",
    [
      Alcotest.test_case "scale reached" `Slow test_scale_reached;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_trace;
      Alcotest.test_case "accesses in regions" `Slow test_accesses_inside_regions;
      Alcotest.test_case "region ids contiguous" `Quick test_region_ids_contiguous;
      Alcotest.test_case "cpu ops positive" `Quick test_cpu_ops_positive;
      Alcotest.test_case "compress regions" `Quick test_compress_has_expected_regions;
      Alcotest.test_case "compress chains hint" `Quick test_compress_chain_region_self_indirect;
      Alcotest.test_case "li regions" `Quick test_li_has_expected_regions;
      Alcotest.test_case "li cells dominate" `Quick test_li_cells_dominate;
      Alcotest.test_case "vocoder regions" `Quick test_vocoder_has_expected_regions;
      Alcotest.test_case "vocoder read-heavy" `Quick test_vocoder_mostly_reads;
      Alcotest.test_case "vocoder hot frame buffer" `Quick test_vocoder_small_footprint;
      Alcotest.test_case "scale validation" `Quick test_scale_rejects_nonpositive;
      Alcotest.test_case "synthetic exact scale" `Quick test_synthetic_exact_scale;
      Alcotest.test_case "synthetic stream" `Quick test_synthetic_stream_is_sequential;
      Alcotest.test_case "synthetic write frac" `Quick test_synthetic_write_frac_respected;
      Alcotest.test_case "synthetic empty specs" `Quick test_synthetic_rejects_empty_specs;
      Alcotest.test_case "synthetic chase permutation" `Quick test_synthetic_chase_is_permutation;
    ] )
