(* Tests for the extension features: clustering merge-order policies,
   the multi-layer AHB component, and failure injection on degenerate
   inputs. *)

module Channel = Mx_connect.Channel
module Component = Mx_connect.Component
module Cluster = Mx_connect.Cluster
module Assign = Mx_connect.Assign
module Brg = Mx_connect.Brg
module Conn_cost = Mx_connect.Conn_cost

let ch ?(bw = 1.0) src dst =
  { Channel.src; dst; bandwidth = bw; txn_bytes = 4.0 }

let channels =
  [
    ch ~bw:0.1 Channel.Cpu Channel.Sram;
    ch ~bw:0.2 Channel.Cpu Channel.Sbuf;
    ch ~bw:4.0 Channel.Cpu Channel.Cache;
    ch ~bw:1.0 Channel.Cache Channel.Dram;
    ch ~bw:0.5 Channel.Sbuf Channel.Dram;
  ]

(* -- merge orders -------------------------------------------------------- *)

let test_orders_same_level_count () =
  let n_levels order = List.length (Cluster.levels_ordered order channels) in
  let reference = n_levels Cluster.Lowest_bandwidth_first in
  List.iter
    (fun order ->
      Helpers.check_int "merge count independent of order" reference
        (n_levels order))
    [ Cluster.Highest_bandwidth_first; Cluster.Random_order 1;
      Cluster.Random_order 99 ]

let test_highest_first_picks_big_pair () =
  match
    Cluster.merge_step_ordered Cluster.Highest_bandwidth_first
      (Cluster.initial channels)
  with
  | None -> Alcotest.fail "expected a merge"
  | Some next ->
    let merged = List.find (fun c -> List.length c.Cluster.channels = 2) next in
    (* the two highest on-chip bandwidths are 4.0 and 0.2 *)
    Alcotest.(check (float 1e-9)) "merged the top pair" 4.2
      merged.Cluster.bandwidth

let test_random_order_deterministic () =
  let run seed =
    Cluster.levels_ordered (Cluster.Random_order seed) channels
    |> List.map (List.map Cluster.describe)
  in
  Helpers.check_true "same seed, same clustering" (run 5 = run 5)

let test_orders_preserve_boundary_discipline () =
  List.iter
    (fun order ->
      List.iter
        (fun level ->
          List.iter
            (fun cl ->
              let off = List.filter Channel.crosses_chip cl.Cluster.channels in
              Helpers.check_true "homogeneous clusters"
                (off = [] || List.length off = List.length cl.Cluster.channels))
            level)
        (Cluster.levels_ordered order channels))
    [ Cluster.Highest_bandwidth_first; Cluster.Random_order 3 ]

let test_enumerate_levels_order_param () =
  let count order =
    List.length
      (Assign.enumerate_levels ~order ~onchip:Component.onchip_library
         ~offchip:Component.offchip_library channels)
  in
  Helpers.check_true "all orders produce designs"
    (count Cluster.Lowest_bandwidth_first > 0
    && count Cluster.Highest_bandwidth_first > 0
    && count (Cluster.Random_order 1) > 0)

(* -- multi-layer AHB ------------------------------------------------------ *)

let test_mlahb_in_library () =
  let c = Component.by_name "mlahb32" in
  Helpers.check_true "kind" (c.Component.kind = Component.Amba_ml_ahb);
  Helpers.check_true "on-chip" (not c.Component.offchip)

let test_mlahb_no_arbitration_penalty () =
  let ml = Component.by_name "mlahb32" in
  Helpers.check_int "contended = uncontended"
    (Component.txn_latency ml ~bytes:4 ~contended:false)
    (Component.txn_latency ml ~bytes:4 ~contended:true)

let test_mlahb_costs_more_than_ahb () =
  let ml = Component.by_name "mlahb32" and ahb = Component.by_name "ahb32" in
  Helpers.check_true "parallel layers cost extra area"
    (Conn_cost.cost_gates ml ~channels:4 > Conn_cost.cost_gates ahb ~channels:4)

let test_mlahb_rt_consistency () =
  let ml = Component.by_name "mlahb32" in
  List.iter
    (fun bytes ->
      Helpers.check_int "RT latency agrees"
        (Component.txn_latency ml ~bytes ~contended:false)
        (Mx_connect.Reservation_table.latency_of
           (Mx_connect.Reservation_table.template_for ml ~bytes)))
    [ 4; 32 ]

(* -- failure injection ----------------------------------------------------- *)

let test_empty_trace_profile () =
  let w =
    {
      Mx_trace.Workload.name = "empty";
      regions = [];
      trace = Mx_trace.Trace.create ();
      cpu_ops = 0;
    }
  in
  let p = Mx_trace.Profile.analyze w in
  Helpers.check_int "no accesses" 0 p.Mx_trace.Profile.total_accesses

let test_brg_empty_profile_rejected () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let arch = Helpers.cache_only_arch w in
  let empty_stats =
    Mx_mem.Mem_sim.run
      (Mx_mem.Mem_sim.create arch ~regions:w.Mx_trace.Workload.regions)
      (Mx_trace.Trace.create ())
  in
  Helpers.check_true "empty BRG rejected"
    (try
       ignore (Brg.build arch empty_stats);
       false
     with Invalid_argument _ -> true)

let test_cycle_sim_empty_trace () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  let empty =
    { w with Mx_trace.Workload.trace = Mx_trace.Trace.create (); cpu_ops = 0 }
  in
  let r =
    Mx_sim.Cycle_sim.run ~workload:empty ~arch ~conn:(Helpers.naive_conn brg) ()
  in
  Helpers.check_int "zero accesses" 0 r.Mx_sim.Sim_result.accesses;
  Helpers.check_float "zero latency" 0.0 r.Mx_sim.Sim_result.avg_mem_latency

let test_single_access_trace () =
  let w = Helpers.mixed_workload ~scale:1 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  let r =
    Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn:(Helpers.naive_conn brg) ()
  in
  Helpers.check_int "one access" 1 r.Mx_sim.Sim_result.accesses;
  Helpers.check_true "positive latency" (r.Mx_sim.Sim_result.avg_mem_latency > 0.0)

let test_cluster_levels_empty_input () =
  Helpers.check_int "one empty level" 1 (List.length (Cluster.levels []));
  Helpers.check_int "empty level is empty" 0
    (List.length (List.hd (Cluster.levels [])))

let suite =
  ( "extensions",
    [
      Alcotest.test_case "orders: level counts" `Quick test_orders_same_level_count;
      Alcotest.test_case "highest-first pair" `Quick test_highest_first_picks_big_pair;
      Alcotest.test_case "random order deterministic" `Quick test_random_order_deterministic;
      Alcotest.test_case "orders keep boundary" `Quick test_orders_preserve_boundary_discipline;
      Alcotest.test_case "enumerate ~order" `Quick test_enumerate_levels_order_param;
      Alcotest.test_case "mlahb in library" `Quick test_mlahb_in_library;
      Alcotest.test_case "mlahb no arbitration" `Quick test_mlahb_no_arbitration_penalty;
      Alcotest.test_case "mlahb cost premium" `Quick test_mlahb_costs_more_than_ahb;
      Alcotest.test_case "mlahb RT consistency" `Quick test_mlahb_rt_consistency;
      Alcotest.test_case "empty trace profile" `Quick test_empty_trace_profile;
      Alcotest.test_case "empty BRG rejected" `Quick test_brg_empty_profile_rejected;
      Alcotest.test_case "cycle sim empty trace" `Quick test_cycle_sim_empty_trace;
      Alcotest.test_case "single access" `Quick test_single_access_trace;
      Alcotest.test_case "empty clustering" `Quick test_cluster_levels_empty_input;
    ] )
