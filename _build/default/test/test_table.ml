module Table = Mx_util.Table

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_contains_rows () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "x"; "y" ];
  let s = Table.render t in
  Helpers.check_true "row cell present" (contains s " x ");
  Helpers.check_true "header present" (contains s " a ")

let test_arity_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_align_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "bad align"
    (Invalid_argument "Table.set_align: arity mismatch") (fun () ->
      Table.set_align t [ Table.Left ])

let test_numeric_right_alignment () =
  let t = Table.create ~headers:[ "metric"; "count" ] in
  Table.add_row t [ "misses"; "5" ];
  Table.add_row t [ "hits"; "1234" ];
  let s = Table.render t in
  (* the numeric column pads on the left: " 5 |" preceded by spaces *)
  Helpers.check_true "right aligned number" (contains s "    5 |")

let test_rule_renders () =
  let t = Table.create ~headers:[ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let rules = List.filter (fun l -> String.length l > 0 && l.[0] = '+') lines in
  (* top, under-header, inner, bottom *)
  Helpers.check_int "rule count" 4 (List.length rules)

let test_wide_cells_expand () =
  let t = Table.create ~headers:[ "h" ] in
  Table.add_row t [ "a-much-longer-cell" ];
  let s = Table.render t in
  Helpers.check_true "long cell fits" (contains s "a-much-longer-cell")

let suite =
  ( "table",
    [
      Alcotest.test_case "contains rows" `Quick test_contains_rows;
      Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
      Alcotest.test_case "align mismatch" `Quick test_align_mismatch;
      Alcotest.test_case "numeric right align" `Quick test_numeric_right_alignment;
      Alcotest.test_case "rules render" `Quick test_rule_renders;
      Alcotest.test_case "wide cells" `Quick test_wide_cells_expand;
    ] )
