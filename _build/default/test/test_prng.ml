module Prng = Mx_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Helpers.check_true "same stream" (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then distinct := true
  done;
  Helpers.check_true "different seeds diverge" !distinct

let test_copy_independent () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Helpers.check_true "copy continues identically"
    (Prng.next_int64 a = Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing a does not advance b *)
  let a2 = Prng.next_int64 a and b2 = Prng.next_int64 b in
  Helpers.check_true "copies are independent" (a2 <> b2)

let test_split_independent () =
  let g = Prng.create ~seed:5 in
  let h = Prng.split g in
  let seen_equal = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 g = Prng.next_int64 h then incr seen_equal
  done;
  Helpers.check_int "split streams do not mirror" 0 !seen_equal

let test_int_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int g ~bound:17 in
    Helpers.check_true "0 <= v < bound" (v >= 0 && v < 17)
  done

let test_int_rejects_bad_bound () =
  let g = Prng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g ~bound:0))

let test_int_in_inclusive () =
  let g = Prng.create ~seed:3 in
  let lo_seen = ref false and hi_seen = ref false in
  for _ = 1 to 2000 do
    let v = Prng.int_in g ~lo:2 ~hi:5 in
    Helpers.check_true "within [2,5]" (v >= 2 && v <= 5);
    if v = 2 then lo_seen := true;
    if v = 5 then hi_seen := true
  done;
  Helpers.check_true "lo reachable" !lo_seen;
  Helpers.check_true "hi reachable" !hi_seen

let test_float_unit_interval () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    Helpers.check_true "in [0,1)" (v >= 0.0 && v < 1.0)
  done

let test_float_mean () =
  let g = Prng.create ~seed:13 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float g
  done;
  let mean = !acc /. float_of_int n in
  Helpers.check_true "mean near 0.5" (Float.abs (mean -. 0.5) < 0.02)

let test_bool_extremes () =
  let g = Prng.create ~seed:17 in
  for _ = 1 to 50 do
    Helpers.check_true "p=1 always true" (Prng.bool g ~p:1.0);
    Helpers.check_true "p=0 always false" (not (Prng.bool g ~p:0.0))
  done

let test_shuffle_permutation () =
  let g = Prng.create ~seed:19 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_pick_singleton () =
  let g = Prng.create ~seed:23 in
  Helpers.check_int "pick of singleton" 7 (Prng.pick g [| 7 |])

let test_pick_empty_rejected () =
  let g = Prng.create ~seed:23 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let test_zipf_bounds_and_skew () =
  let g = Prng.create ~seed:29 in
  let n = 50 in
  let counts = Array.make n 0 in
  for _ = 1 to 20000 do
    let v = Prng.zipf g ~n ~s:1.2 in
    Helpers.check_true "rank in range" (v >= 0 && v < n);
    counts.(v) <- counts.(v) + 1
  done;
  Helpers.check_true "rank 0 dominates rank 10" (counts.(0) > counts.(10));
  Helpers.check_true "rank 0 dominates last rank"
    (counts.(0) > 10 * max 1 counts.(n - 1))

let test_geometric_mean () =
  let g = Prng.create ~seed:31 in
  let n = 20000 and p = 0.25 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Prng.geometric g ~p
  done;
  let mean = float_of_int !acc /. float_of_int n in
  (* expected (1-p)/p = 3 *)
  Helpers.check_true "geometric mean near 3" (Float.abs (mean -. 3.0) < 0.25)

let test_gaussian_moments () =
  let g = Prng.create ~seed:37 in
  let n = 20000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian g ~mu:5.0 ~sigma:2.0 in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Helpers.check_true "gaussian mean" (Float.abs (mean -. 5.0) < 0.1);
  Helpers.check_true "gaussian variance" (Float.abs (var -. 4.0) < 0.3)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"int bound respected for arbitrary bounds"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g ~bound in
      v >= 0 && v < bound)

let qcheck_zipf_in_range =
  QCheck.Test.make ~name:"zipf rank always within [0,n)"
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let g = Prng.create ~seed in
      let v = Prng.zipf g ~n ~s:1.1 in
      v >= 0 && v < n)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
      Alcotest.test_case "int_in inclusive" `Quick test_int_in_inclusive;
      Alcotest.test_case "float in [0,1)" `Quick test_float_unit_interval;
      Alcotest.test_case "float mean" `Quick test_float_mean;
      Alcotest.test_case "bool extremes" `Quick test_bool_extremes;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "pick singleton" `Quick test_pick_singleton;
      Alcotest.test_case "pick empty rejected" `Quick test_pick_empty_rejected;
      Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
      Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      QCheck_alcotest.to_alcotest qcheck_int_in_range;
      QCheck_alcotest.to_alcotest qcheck_zipf_in_range;
    ] )
