(* Cycle simulator, analytic estimator, time sampling. *)

module Cycle_sim = Mx_sim.Cycle_sim
module Estimator = Mx_sim.Estimator
module Sim_result = Mx_sim.Sim_result
module Brg = Mx_connect.Brg
module Component = Mx_connect.Component
module Cluster = Mx_connect.Cluster
module Conn_arch = Mx_connect.Conn_arch

let setup ?(rich = false) () =
  let w = Helpers.mixed_workload () in
  let arch = if rich then Helpers.rich_arch w else Helpers.cache_only_arch w in
  let profile = Helpers.profile_of arch w in
  let brg = Brg.build arch profile in
  (w, arch, profile, brg)

let test_sim_basic_sanity () =
  let w, arch, _, brg = setup () in
  let r = Cycle_sim.run ~workload:w ~arch ~conn:(Helpers.naive_conn brg) () in
  Helpers.check_int "all accesses simulated"
    (Mx_trace.Trace.length w.Mx_trace.Workload.trace)
    r.Sim_result.accesses;
  Helpers.check_true "latency positive" (r.Sim_result.avg_mem_latency > 0.0);
  Helpers.check_true "energy positive" (r.Sim_result.avg_energy_nj > 0.0);
  Helpers.check_true "cycles >= accesses" (r.Sim_result.cycles >= r.Sim_result.accesses);
  Helpers.check_true "exact flag" r.Sim_result.exact

let test_sim_deterministic () =
  let w, arch, _, brg = setup () in
  let conn = Helpers.naive_conn brg in
  let r1 = Cycle_sim.run ~workload:w ~arch ~conn ()
  and r2 = Cycle_sim.run ~workload:w ~arch ~conn () in
  Helpers.check_int "same cycles" r1.Sim_result.cycles r2.Sim_result.cycles;
  Helpers.check_float "same latency" r1.Sim_result.avg_mem_latency
    r2.Sim_result.avg_mem_latency

let test_dedicated_beats_shared () =
  let w, arch, _, brg = setup ~rich:true () in
  let fast = Cycle_sim.run ~workload:w ~arch ~conn:(Helpers.naive_conn brg) () in
  let slow = Cycle_sim.run ~workload:w ~arch ~conn:(Helpers.shared_conn brg) () in
  Helpers.check_true "dedicated links never slower"
    (fast.Sim_result.avg_mem_latency <= slow.Sim_result.avg_mem_latency +. 0.01)

let test_wider_offchip_bus_faster () =
  let w, arch, _, brg = setup () in
  let with_bus name =
    let pairs =
      List.map
        (fun ch ->
          let cl = Cluster.of_channel ch in
          let comp =
            if cl.Cluster.offchip then Component.by_name name
            else Component.by_name "ded32"
          in
          (cl, comp))
        brg.Brg.channels
    in
    Cycle_sim.run ~workload:w ~arch ~conn:(Conn_arch.make pairs) ()
  in
  let narrow = with_bus "off8" and wide = with_bus "off32" in
  Helpers.check_true "wider off-chip bus reduces latency"
    (wide.Sim_result.avg_mem_latency < narrow.Sim_result.avg_mem_latency)

let test_missing_channel_rejected () =
  let w, arch, _, brg = setup () in
  (* drop the off-chip binding entirely *)
  let onchip_only =
    Conn_arch.make
      (List.filter_map
         (fun ch ->
           if Mx_connect.Channel.crosses_chip ch then None
           else Some (Cluster.of_channel ch, Component.by_name "ded32"))
         brg.Brg.channels)
  in
  Helpers.check_true "unimplemented channel rejected"
    (try
       ignore (Cycle_sim.run ~workload:w ~arch ~conn:onchip_only ());
       false
     with Invalid_argument _ -> true)

let test_sampling_close_to_exact () =
  let w, arch, _, brg = setup () in
  let conn = Helpers.naive_conn brg in
  let exact = Cycle_sim.run ~workload:w ~arch ~conn () in
  let sampled =
    Cycle_sim.run ~sample:(500, 4500) ~workload:w ~arch ~conn ()
  in
  Helpers.check_true "sampled result not exact flag" (not sampled.Sim_result.exact);
  let rel =
    Float.abs
      (sampled.Sim_result.avg_mem_latency -. exact.Sim_result.avg_mem_latency)
    /. exact.Sim_result.avg_mem_latency
  in
  Helpers.check_true "sampling within 25% of exact" (rel < 0.25);
  Helpers.check_float "miss ratio exact under sampling"
    exact.Sim_result.miss_ratio sampled.Sim_result.miss_ratio

let test_sampling_validation () =
  let w, arch, _, brg = setup () in
  Helpers.check_true "bad windows rejected"
    (try
       ignore
         (Cycle_sim.run ~sample:(0, 10) ~workload:w ~arch
            ~conn:(Helpers.naive_conn brg) ());
       false
     with Invalid_argument _ -> true)

(* -- estimator ----------------------------------------------------------- *)

let test_estimator_positive_and_marked () =
  let w, arch, profile, brg = setup () in
  let e =
    Estimator.estimate ~workload:w ~arch ~profile ~conn:(Helpers.naive_conn brg)
  in
  Helpers.check_true "not exact" (not e.Sim_result.exact);
  Helpers.check_true "latency positive" (e.Sim_result.avg_mem_latency > 0.0);
  Helpers.check_true "energy positive" (e.Sim_result.avg_energy_nj > 0.0)

let test_estimator_absolute_accuracy () =
  (* the paper does not require high absolute accuracy, but the estimate
     should land within a factor of two of the simulator *)
  let w, arch, profile, brg = setup () in
  List.iter
    (fun conn ->
      let e = Estimator.estimate ~workload:w ~arch ~profile ~conn in
      let s = Cycle_sim.run ~workload:w ~arch ~conn () in
      let ratio = e.Sim_result.avg_mem_latency /. s.Sim_result.avg_mem_latency in
      Helpers.check_true "within 2x" (ratio > 0.5 && ratio < 2.0))
    [ Helpers.naive_conn brg; Helpers.shared_conn brg ]

let test_estimator_fidelity_ordering () =
  (* fidelity: the estimator must order a clearly-fast design before a
     clearly-slow one (dedicated+wide vs everything-on-one-narrow-bus) *)
  let w, arch, profile, brg = setup ~rich:true () in
  let fast_e =
    Estimator.estimate ~workload:w ~arch ~profile ~conn:(Helpers.naive_conn brg)
  and slow_conn =
    let onchip = Brg.onchip_channels brg and offchip = Brg.offchip_channels brg in
    let merge_all cs =
      List.fold_left
        (fun acc c -> Cluster.merge acc (Cluster.of_channel c))
        (Cluster.of_channel (List.hd cs))
        (List.tl cs)
    in
    Conn_arch.make
      [
        (merge_all onchip, Component.by_name "apb32");
        (merge_all offchip, Component.by_name "off8");
      ]
  in
  let slow_e = Estimator.estimate ~workload:w ~arch ~profile ~conn:slow_conn in
  Helpers.check_true "estimator orders fast < slow"
    (fast_e.Sim_result.avg_mem_latency < slow_e.Sim_result.avg_mem_latency)

let test_estimator_energy_close_to_sim () =
  (* energy is contention-free, so the estimate should track simulation
     tightly *)
  let w, arch, profile, brg = setup () in
  let conn = Helpers.naive_conn brg in
  let e = Estimator.estimate ~workload:w ~arch ~profile ~conn in
  let s = Cycle_sim.run ~workload:w ~arch ~conn () in
  let rel =
    Float.abs (e.Sim_result.avg_energy_nj -. s.Sim_result.avg_energy_nj)
    /. s.Sim_result.avg_energy_nj
  in
  Helpers.check_true "energy estimate within 20%" (rel < 0.20)

let test_estimator_much_faster_than_sim () =
  let w, arch, profile, brg = setup () in
  let conn = Helpers.naive_conn brg in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 20 do
      ignore (f ())
    done;
    Unix.gettimeofday () -. t0
  in
  let t_est = time (fun () -> Estimator.estimate ~workload:w ~arch ~profile ~conn)
  and t_sim = time (fun () -> Cycle_sim.run ~workload:w ~arch ~conn ()) in
  Helpers.check_true "estimation at least 5x faster" (t_est *. 5.0 < t_sim)

let suite =
  ( "sim",
    [
      Alcotest.test_case "basic sanity" `Quick test_sim_basic_sanity;
      Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
      Alcotest.test_case "dedicated beats shared" `Quick test_dedicated_beats_shared;
      Alcotest.test_case "wider bus faster" `Quick test_wider_offchip_bus_faster;
      Alcotest.test_case "missing channel" `Quick test_missing_channel_rejected;
      Alcotest.test_case "sampling accuracy" `Quick test_sampling_close_to_exact;
      Alcotest.test_case "sampling validation" `Quick test_sampling_validation;
      Alcotest.test_case "estimator sanity" `Quick test_estimator_positive_and_marked;
      Alcotest.test_case "estimator accuracy" `Quick test_estimator_absolute_accuracy;
      Alcotest.test_case "estimator fidelity" `Quick test_estimator_fidelity_ordering;
      Alcotest.test_case "estimator energy" `Quick test_estimator_energy_close_to_sim;
      Alcotest.test_case "estimator speed" `Slow test_estimator_much_faster_than_sim;
    ] )
