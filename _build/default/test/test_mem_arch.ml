module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Params = Mx_mem.Params
module Region = Mx_trace.Region
module Workload = Mx_trace.Workload

let test_make_validates_bindings () =
  Helpers.check_true "sbuf binding without sbuf rejected"
    (try
       ignore
         (Mem_arch.make ~label:"bad" ~cache:Helpers.small_cache
            ~bindings:[| Mem_arch.To_sbuf |] ());
       false
     with Invalid_argument _ -> true)

let test_to_cache_allowed_without_cache () =
  let a = Mem_arch.make ~label:"dram-only" ~bindings:[| Mem_arch.To_cache |] () in
  Helpers.check_true "no modules" (not (Mem_arch.has_module a Mem_arch.To_cache))

let test_cost_is_sum_of_modules () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let rich = Helpers.rich_arch w in
  let expected =
    Mx_mem.Cost_model.cache Helpers.small_cache
    + Mx_mem.Cost_model.stream_buffer Helpers.default_sbuf
    + Mx_mem.Cost_model.lldma Helpers.default_lldma
    + (match rich.Mem_arch.sram with
      | Some s -> Mx_mem.Cost_model.sram s
      | None -> 0)
  in
  Helpers.check_int "cost = sum" expected (Mem_arch.cost_gates rich)

let test_binding_of_bounds () =
  let a = Mem_arch.make ~label:"x" ~bindings:[| Mem_arch.To_cache |] () in
  Helpers.check_true "oob binding rejected"
    (try
       ignore (Mem_arch.binding_of a ~region:1);
       false
     with Invalid_argument _ -> true)

let test_describe_mentions_modules () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let rich = Helpers.rich_arch w in
  let d = Mem_arch.describe rich in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length d in
        let rec go i = i + nl <= hl && (String.sub d i nl = needle || go (i + 1)) in
        go 0
      in
      Helpers.check_true ("describe mentions " ^ needle) found)
    [ "cache"; "sbuf"; "lldma"; "sram" ]

(* -- mem_sim ----------------------------------------------------------- *)

let test_sram_always_hits () =
  let w = Helpers.mixed_workload () in
  let m = Mem_sim.create (Helpers.rich_arch w) ~regions:w.Workload.regions in
  let hot = Workload.region_by_name w "hot" in
  let o =
    Mem_sim.access m ~now:0 ~addr:hot.Region.base ~size:4 ~write:false
      ~region:hot.Region.id
  in
  Helpers.check_true "sram hit" (o.Mem_sim.serving = Mem_sim.By_sram && o.Mem_sim.hit);
  Helpers.check_int "no dram traffic" 0 o.Mem_sim.dram_bytes

let test_direct_dram_when_no_cache () =
  let w = Helpers.mixed_workload () in
  let arch =
    Mem_arch.make ~label:"none"
      ~bindings:(Array.make (List.length w.Workload.regions) Mem_arch.To_cache)
      ()
  in
  let m = Mem_sim.create arch ~regions:w.Workload.regions in
  let r = List.hd w.Workload.regions in
  let o =
    Mem_sim.access m ~now:0 ~addr:r.Region.base ~size:4 ~write:false
      ~region:r.Region.id
  in
  Helpers.check_true "direct service" (o.Mem_sim.serving = Mem_sim.By_dram_direct);
  Helpers.check_true "critical" o.Mem_sim.dram_critical;
  Helpers.check_int "size bytes moved" 4 o.Mem_sim.dram_bytes

let test_cache_miss_traffic_is_line () =
  let w = Helpers.mixed_workload () in
  let arch = Helpers.cache_only_arch w in
  let m = Mem_sim.create arch ~regions:w.Workload.regions in
  let r = List.hd w.Workload.regions in
  let o =
    Mem_sim.access m ~now:0 ~addr:r.Region.base ~size:4 ~write:false
      ~region:r.Region.id
  in
  Helpers.check_true "cold miss" (not o.Mem_sim.hit);
  Helpers.check_int "line fill" Helpers.small_cache.Params.c_line o.Mem_sim.dram_bytes

let test_stats_add_up () =
  let w = Helpers.mixed_workload () in
  let arch = Helpers.rich_arch w in
  let m = Mem_sim.create arch ~regions:w.Workload.regions in
  let s = Mem_sim.run m w.Workload.trace in
  Helpers.check_int "accesses" (Mx_trace.Trace.length w.Workload.trace)
    s.Mem_sim.accesses;
  let cpu_total =
    List.fold_left
      (fun acc sv -> acc + s.Mem_sim.cpu_accesses sv)
      0
      [ Mem_sim.By_cache; Mem_sim.By_sram; Mem_sim.By_sbuf; Mem_sim.By_lldma;
        Mem_sim.By_dram_direct ]
  in
  Helpers.check_int "per-serving accesses partition the trace" s.Mem_sim.accesses
    cpu_total;
  Helpers.check_true "miss ratio in [0,1]"
    (Mem_sim.miss_ratio s >= 0.0 && Mem_sim.miss_ratio s <= 1.0);
  Helpers.check_true "hits + demand misses <= accesses"
    (s.Mem_sim.on_chip_hits + s.Mem_sim.demand_misses <= s.Mem_sim.accesses)

let test_rich_beats_cache_only_on_mixed () =
  let w = Helpers.mixed_workload () in
  let cache_only = Helpers.profile_of (Helpers.cache_only_arch w) w in
  let rich = Helpers.profile_of (Helpers.rich_arch w) w in
  Helpers.check_true "dedicated modules reduce demand misses"
    (Mem_sim.miss_ratio rich <= Mem_sim.miss_ratio cache_only)

let test_create_validates_regions () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let arch = Mem_arch.make ~label:"small" ~bindings:[| Mem_arch.To_cache |] () in
  Helpers.check_true "binding table too small rejected"
    (try
       ignore (Mem_sim.create arch ~regions:w.Workload.regions);
       false
     with Invalid_argument _ -> true)

let test_dram_bytes_total_consistent () =
  let w = Helpers.mixed_workload () in
  let s = Helpers.profile_of (Helpers.rich_arch w) w in
  let by_class =
    List.fold_left
      (fun acc sv -> acc + s.Mem_sim.dram_bytes_by sv)
      0
      [ Mem_sim.By_cache; Mem_sim.By_sram; Mem_sim.By_sbuf; Mem_sim.By_lldma;
        Mem_sim.By_dram_direct ]
  in
  Helpers.check_int "dram bytes partition" s.Mem_sim.dram_bytes_total by_class

let suite =
  ( "mem-arch",
    [
      Alcotest.test_case "binding validation" `Quick test_make_validates_bindings;
      Alcotest.test_case "cache-less allowed" `Quick test_to_cache_allowed_without_cache;
      Alcotest.test_case "cost is sum" `Quick test_cost_is_sum_of_modules;
      Alcotest.test_case "binding bounds" `Quick test_binding_of_bounds;
      Alcotest.test_case "describe" `Quick test_describe_mentions_modules;
      Alcotest.test_case "sram always hits" `Quick test_sram_always_hits;
      Alcotest.test_case "direct dram" `Quick test_direct_dram_when_no_cache;
      Alcotest.test_case "miss traffic = line" `Quick test_cache_miss_traffic_is_line;
      Alcotest.test_case "stats add up" `Quick test_stats_add_up;
      Alcotest.test_case "rich beats cache-only" `Quick test_rich_beats_cache_only_on_mixed;
      Alcotest.test_case "region validation" `Quick test_create_validates_regions;
      Alcotest.test_case "dram bytes partition" `Quick test_dram_bytes_total_consistent;
    ] )
