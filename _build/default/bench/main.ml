(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus bechamel micro-benchmarks.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig3    -- one experiment
     dune exec bench/main.exe -- micro   -- micro-benchmarks only       *)

let usage () =
  print_endline
    "usage: main.exe [fig3|fig4|fig6|table1|table2|ablation|micro|all]";
  exit 2

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "fig3" -> Experiments.fig3 ()
  | "fig4" -> Experiments.fig4 ()
  | "fig6" -> Experiments.fig6 ()
  | "table1" -> Experiments.table1 ()
  | "table2" -> Experiments.table2 ()
  | "ablation" -> Ablation.all ()
  | "micro" -> Micro.run ()
  | "all" ->
    Experiments.all ();
    Ablation.all ();
    Micro.run ()
  | _ -> usage ()
