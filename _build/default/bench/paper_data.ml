(* Reference numbers transcribed from the paper (Grun/Dutt/Nicolau,
   DATE 2002), used to print paper-vs-measured comparisons. *)

(* Table 1: selected cost/performance designs.
   (cost [gates], avg memory latency [cycles], avg energy [nJ]) *)
let table1 : (string * (int * float * float) list) list =
  [
    ( "compress",
      [
        (480775, 69.66, 13.24);
        (512232, 62.76, 13.52);
        (512332, 9.69, 13.80);
        (512532, 8.35, 14.36);
        (519388, 7.49, 14.44);
        (561112, 7.34, 14.39);
        (604941, 6.80, 14.47);
        (649849, 6.60, 14.39);
        (664029, 6.19, 14.46);
        (760543, 6.05, 14.47);
        (793971, 6.03, 14.54);
        (862176, 6.01, 14.31);
        (895604, 5.99, 14.38);
      ] );
    ( "li",
      [
        (480775, 57.59, 10.42);
        (494992, 57.48, 10.43);
        (512232, 50.29, 10.70);
        (512332, 9.18, 10.98);
        (512532, 7.76, 11.54);
        (605767, 6.97, 11.57);
        (664029, 6.87, 11.58);
        (760543, 6.84, 11.59);
      ] );
    ( "vocoder",
      [
        (156806, 16.37, 5.05);
        (169370, 13.28, 5.33);
        (169481, 5.09, 5.61);
        (169703, 3.60, 6.17);
        (175865, 3.40, 6.43);
      ] );
  ]

(* Table 2: pareto coverage per strategy.
   (time as reported, coverage %, avg cost / perf / energy distance %) *)
type coverage_row = {
  time : string;
  coverage_pct : float;
  cost_dist : float;
  perf_dist : float;
  energy_dist : float;
}

let table2 : (string * (string * coverage_row) list) list =
  [
    ( "compress",
      [
        ( "Pruned",
          { time = "2 days"; coverage_pct = 50.0; cost_dist = 0.84;
            perf_dist = 0.77; energy_dist = 0.42 } );
        ( "Neighborhood",
          { time = "2 weeks"; coverage_pct = 65.0; cost_dist = 0.59;
            perf_dist = 0.60; energy_dist = 0.28 } );
        ( "Full",
          { time = "1 month"; coverage_pct = 100.0; cost_dist = 0.0;
            perf_dist = 0.0; energy_dist = 0.0 } );
      ] );
    ( "vocoder",
      [
        ( "Pruned",
          { time = "24 min"; coverage_pct = 83.0; cost_dist = 0.29;
            perf_dist = 2.96; energy_dist = 0.92 } );
        ( "Neighborhood",
          { time = "29 min"; coverage_pct = 100.0; cost_dist = 0.0;
            perf_dist = 0.0; energy_dist = 0.0 } );
        ( "Full",
          { time = "50 min"; coverage_pct = 100.0; cost_dist = 0.0;
            perf_dist = 0.0; energy_dist = 0.0 } );
      ] );
  ]

(* Fig. 4: compress average memory latency improves 10.6 -> 6.7 cycles
   (~36%) across the explored connectivity space. *)
let fig4_latency_worst = 10.6
let fig4_latency_best = 6.7
let fig4_improvement_pct = 36.0

(* Fig. 6 narrative anchors: improvements of the annotated novel
   architectures over (b), the best traditional cache design. *)
let fig6_c_improvement_pct = 10.0
let fig6_g_improvement_pct = 26.0
let fig6_g_cost_increase_pct = 30.0
let fig6_k_improvement_pct = 30.0
