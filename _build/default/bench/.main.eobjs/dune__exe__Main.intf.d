bench/main.mli:
