bench/micro.ml: Analyze Array Bechamel Benchmark Float Instance Lazy List Measure Mx_apex Mx_connect Mx_mem Mx_sim Mx_trace Mx_util Printf Staged Test Time Toolkit
