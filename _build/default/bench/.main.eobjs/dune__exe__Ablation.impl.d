bench/ablation.ml: Array Conex Experiments Float Lazy List Mx_apex Mx_connect Mx_mem Mx_sim Mx_trace Mx_util Printf Unix
