bench/main.ml: Ablation Array Experiments Micro Sys
