bench/experiments.ml: Conex Float Hashtbl Lazy List Mx_apex Mx_connect Mx_mem Mx_trace Mx_util Paper_data Printf
