(* Bring-your-own-workload walkthrough.

   Two ways to feed MemorEx:

   1. describe the data structures and their access patterns with
      Mx_trace.Synthetic (fast, declarative) — shown here with a
      JPEG-encoder-like workload;
   2. instrument a real algorithm with Workload.Emitter — shown here
      with a tiny histogram-equalisation kernel.

   Run with:  dune exec examples/custom_workload.exe *)

module Region = Mx_trace.Region
module Synthetic = Mx_trace.Synthetic
module Emitter = Mx_trace.Workload.Emitter

(* -- 1. declarative: a JPEG-encoder-shaped workload ----------------- *)

let jpeg_like () =
  Synthetic.generate ~name:"jpeg-like" ~scale:60_000 ~seed:2026
    ~specs:
      [
        (* raster-order pixel input *)
        Synthetic.spec ~name:"pixels" ~elems:(64 * 1024) ~elem_size:1
          ~share:3.0 ~write_frac:0.0 Region.Stream;
        (* 8x8 working block: tiny and extremely hot *)
        Synthetic.spec ~name:"block" ~elems:64 ~elem_size:2 ~share:4.0
          ~write_frac:0.5 ~skew:0.6 Region.Indexed;
        (* quantisation + zig-zag tables: hot constants *)
        Synthetic.spec ~name:"tables" ~elems:128 ~elem_size:2 ~share:1.5
          ~write_frac:0.0 ~skew:0.7 Region.Indexed;
        (* Huffman code lookup: scattered *)
        Synthetic.spec ~name:"huffman" ~elems:4096 ~elem_size:4 ~share:1.0
          ~write_frac:0.0 ~skew:1.0 Region.Random_access;
        (* entropy-coded output *)
        Synthetic.spec ~name:"bitstream" ~elems:(32 * 1024) ~elem_size:1
          ~share:1.0 ~write_frac:1.0 Region.Stream;
      ]

(* -- 2. instrumented: histogram equalisation over an image ---------- *)

let histogram_kernel () =
  let lay = Mx_trace.Layout.create () in
  let image =
    Mx_trace.Layout.alloc lay ~name:"image" ~elems:(32 * 1024) ~elem_size:1
      ~hint:Region.Stream
  and histogram =
    Mx_trace.Layout.alloc lay ~name:"histogram" ~elems:256 ~elem_size:4
      ~hint:Region.Indexed
  and out =
    Mx_trace.Layout.alloc lay ~name:"out" ~elems:(32 * 1024) ~elem_size:1
      ~hint:Region.Stream
  in
  let e = Emitter.create () in
  let rng = Mx_util.Prng.create ~seed:5 in
  let pixels = Array.init (32 * 1024) (fun _ -> Mx_util.Prng.zipf rng ~n:256 ~s:0.7) in
  let hist = Array.make 256 0 in
  (* pass 1: build the histogram *)
  Array.iteri
    (fun i p ->
      Emitter.read e image i;
      Emitter.read e histogram p;
      hist.(p) <- hist.(p) + 1;
      Emitter.write e histogram p;
      Emitter.ops e 2)
    pixels;
  (* prefix sums (tiny, in registers) *)
  for i = 1 to 255 do
    hist.(i) <- hist.(i) + hist.(i - 1);
    Emitter.ops e 1
  done;
  (* pass 2: remap the image *)
  Array.iteri
    (fun i p ->
      Emitter.read e image i;
      Emitter.read e histogram p;
      Emitter.write e out i;
      Emitter.ops e 3)
    pixels;
  Emitter.finish e ~name:"histeq" ~regions:(Mx_trace.Layout.regions lay)

let explore w =
  Printf.printf "==== %s ====\n" w.Mx_trace.Workload.name;
  let profile = Mx_trace.Profile.analyze w in
  Format.printf "%a@." Mx_trace.Profile.pp_summary profile;
  let r = Conex.Explore.run ~config:Conex.Explore.reduced_config w in
  Conex.Report.print_designs ~title:"cost/perf pareto:"
    r.Conex.Explore.pareto_cost_perf;
  print_newline ()

let () =
  explore (jpeg_like ());
  explore (histogram_kernel ())
