examples/media_suite.mli:
