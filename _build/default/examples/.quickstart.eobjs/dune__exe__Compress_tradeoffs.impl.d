examples/compress_tradeoffs.ml: Conex Format List Mx_apex Mx_mem Mx_trace Mx_util Printf
