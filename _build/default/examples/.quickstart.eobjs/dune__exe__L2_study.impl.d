examples/l2_study.ml: Array Float List Mx_connect Mx_mem Mx_sim Mx_trace Mx_util Printf
