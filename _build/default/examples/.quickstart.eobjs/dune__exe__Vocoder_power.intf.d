examples/vocoder_power.mli:
