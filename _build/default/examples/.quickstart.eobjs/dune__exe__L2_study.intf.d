examples/l2_study.mli:
