examples/custom_workload.ml: Array Conex Format Mx_trace Mx_util Printf
