examples/media_suite.ml: Conex Filename List Mx_mem Mx_trace Printf String
