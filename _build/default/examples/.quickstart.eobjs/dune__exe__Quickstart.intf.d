examples/quickstart.mli:
