examples/vocoder_power.ml: Conex List Mx_trace Mx_util Printf
