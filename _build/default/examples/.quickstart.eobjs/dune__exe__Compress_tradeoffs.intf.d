examples/compress_tradeoffs.mli:
