examples/quickstart.ml: Conex Mx_trace Printf
