(* Quickstart: explore memory + connectivity architectures for one
   workload and print the most promising designs.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Get a workload.  Built-in kernels: compress, li, vocoder — or
     bring your own via Mx_trace.Synthetic / Workload.Emitter. *)
  let workload = Mx_trace.Kern_compress.generate ~scale:60_000 ~seed:42 in
  Printf.printf "workload: %s (%d memory accesses)\n" workload.Mx_trace.Workload.name
    (Mx_trace.Workload.access_count workload);

  (* 2. Run the full two-phase ConEx exploration.  The reduced config
     keeps the catalogue small so this finishes in a couple of seconds;
     use Conex.Explore.default_config for the full library. *)
  let result = Conex.Explore.run ~config:Conex.Explore.reduced_config workload in
  Printf.printf
    "explored %d connectivity candidates by estimation, simulated %d, in %.1fs\n\n"
    result.Conex.Explore.n_estimates result.Conex.Explore.n_simulations
    result.Conex.Explore.wall_seconds;

  (* 3. The cost/performance pareto front is the designer's menu. *)
  Conex.Report.print_designs ~title:"Most promising designs (cost/perf pareto):"
    result.Conex.Explore.pareto_cost_perf;

  (* 4. Metrics of any single design are one call away. *)
  match result.Conex.Explore.pareto_cost_perf with
  | best :: _ ->
    Printf.printf "\ncheapest pareto design: %s\n  %.2f cycles/access, %.2f nJ/access\n"
      (Conex.Design.id best)
      (Conex.Design.latency best)
      (Conex.Design.energy best)
  | [] -> print_endline "no designs found"
