(* A small product-planning study across the extended workload suite:
   which single memory + connectivity configuration serves a multimedia
   SoC that must run JPEG encoding, an FFT, and graph search?

   Demonstrates: the extra kernels (jpeg / fft / dijkstra), per-workload
   exploration, cross-workload comparison of the winners, and CSV export
   for external analysis.

   Run with:  dune exec examples/media_suite.exe *)

module Design = Conex.Design

let kernels =
  [
    ("jpeg", Mx_trace.Kern_jpeg.generate);
    ("fft", Mx_trace.Kern_fft.generate);
    ("dijkstra", Mx_trace.Kern_graph.generate);
  ]

let () =
  let results =
    List.map
      (fun (name, gen) ->
        let w = gen ~scale:60_000 ~seed:21 in
        let r = Conex.Explore.run ~config:Conex.Explore.reduced_config w in
        Printf.printf "%-9s %5d estimates -> %3d simulated -> %2d pareto (%.1fs)\n"
          name r.Conex.Explore.n_estimates r.Conex.Explore.n_simulations
          (List.length r.Conex.Explore.pareto_cost_perf)
          r.Conex.Explore.wall_seconds;
        (name, r))
      kernels
  in
  print_newline ();

  (* per-workload winners at a shared gate budget *)
  let budget = 300_000.0 in
  Printf.printf "best design under a %.0f-gate budget, per workload:\n" budget;
  List.iter
    (fun (name, r) ->
      match
        Conex.Scenario.select (Conex.Scenario.Cost_constrained budget)
          r.Conex.Explore.simulated
      with
      | best :: _ ->
        Printf.printf "  %-9s %6.2f cy  %5.2f nJ   %s\n" name
          (Design.latency best) (Design.energy best) (Design.id best)
      | [] -> Printf.printf "  %-9s (nothing under budget)\n" name)
    results;

  (* would one memory architecture serve all three?  compare the memory
     labels of each workload's budget winner *)
  print_newline ();
  let labels =
    List.filter_map
      (fun (_, r) ->
        match
          Conex.Scenario.select (Conex.Scenario.Cost_constrained budget)
            r.Conex.Explore.simulated
        with
        | best :: _ -> Some best.Design.mem.Mx_mem.Mem_arch.label
        | [] -> None)
      results
  in
  (match List.sort_uniq compare labels with
  | [ one ] ->
    Printf.printf "a single memory architecture (%s) wins for all workloads\n" one
  | several ->
    Printf.printf
      "the workloads prefer different memory architectures (%s): a shared \
       SoC would need the compromise point or a superset configuration\n"
      (String.concat ", " several));

  (* export everything for spreadsheet analysis *)
  let all = List.concat_map (fun (_, r) -> r.Conex.Explore.simulated) results in
  let path = Filename.temp_file "media_suite" ".csv" in
  Conex.Report.save_csv all ~path;
  Printf.printf "\n%d designs exported to %s\n" (List.length all) path
