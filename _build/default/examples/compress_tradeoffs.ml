(* The paper's running example (Section 4): cost/performance trade-offs
   for the compress benchmark, end to end.

   - stage 1 (APEX): the memory-modules pareto, as in Fig. 3;
   - stage 2 (ConEx): the combined memory+connectivity exploration, as
     in Fig. 4, with the annotated pareto designs of Fig. 6.

   Run with:  dune exec examples/compress_tradeoffs.exe *)

let () =
  let workload = Mx_trace.Kern_compress.generate ~scale:100_000 ~seed:7 in
  let profile = Mx_trace.Profile.analyze workload in
  Format.printf "%a@." Mx_trace.Profile.pp_summary profile;

  (* -- APEX: memory modules exploration (Fig. 3) ------------------- *)
  let selected = Mx_apex.Explore.select profile in
  print_endline "APEX-selected memory modules architectures (Fig. 3 points 1-5):";
  List.iteri
    (fun i (c : Mx_apex.Explore.candidate) ->
      Printf.printf "  %d. %-16s %8d gates   miss ratio %.4f\n" (i + 1)
        c.Mx_apex.Explore.arch.Mx_mem.Mem_arch.label c.Mx_apex.Explore.cost_gates
        c.Mx_apex.Explore.miss_ratio)
    selected;

  (* -- ConEx: connectivity exploration (Figs. 4 and 6) -------------- *)
  let result = Conex.Explore.run workload in
  Printf.printf
    "\nConEx: %d estimated candidates -> %d simulated -> %d pareto designs\n\n"
    result.Conex.Explore.n_estimates result.Conex.Explore.n_simulations
    (List.length result.Conex.Explore.pareto_cost_perf);
  print_endline "Exploration cloud, cost (x) vs average memory latency (y):";
  print_string
    (Conex.Report.ascii_scatter ~x:Conex.Design.cost ~y:Conex.Design.latency
       ~highlight:result.Conex.Explore.pareto_cost_perf
       result.Conex.Explore.simulated);

  print_endline "\nAnnotated pareto architectures (as in Fig. 6):";
  let annotated = Conex.Report.annotate result.Conex.Explore.pareto_cost_perf in
  let baseline =
    (* the best "traditional" pure-cache design, the paper's point (b) *)
    List.filter
      (fun (_, d) ->
        d.Conex.Design.mem.Mx_mem.Mem_arch.sbuf = None
        && d.Conex.Design.mem.Mx_mem.Mem_arch.lldma = None
        && d.Conex.Design.mem.Mx_mem.Mem_arch.sram = None)
      annotated
  in
  List.iter
    (fun (label, d) ->
      Printf.printf "  %s: %8d gates  %6.2f cy  %5.2f nJ   %s\n" label
        d.Conex.Design.cost_gates (Conex.Design.latency d)
        (Conex.Design.energy d) (Conex.Design.id d))
    annotated;
  (match (annotated, List.rev annotated) with
  | (_, cheapest) :: _, (_, best) :: _ ->
    Printf.printf
      "\nbest design improves average memory latency by %.0f%% over the \
       cheapest pareto design\n"
      (Mx_util.Stats.ratio_pct
         (Conex.Design.latency best)
         (Conex.Design.latency cheapest))
  | _ -> ());
  match baseline with
  | (bl, b) :: _ ->
    let best = List.hd (List.rev annotated) |> snd in
    Printf.printf
      "novel-module designs improve %.0f%% over the best traditional \
       cache-only design (%s)\n"
      (Mx_util.Stats.ratio_pct (Conex.Design.latency best) (Conex.Design.latency b))
      bl
  | [] ->
    print_endline
      "note: no pure-cache design on this run's pareto front (all fronts \
       used stream buffers or DMAs)"
