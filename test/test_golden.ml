(* Golden regression pins for the exploration funnel: number of Phase I
   estimates, Phase II simulations, and global pareto-front size per
   kernel workload on the reduced catalogue.

   These values are exact and deterministic (fixed seed, fixed
   catalogue, and Explore.run is bit-identical at every jobs level).
   They WILL move when the estimator, the catalogues, the clustering or
   the synthesis change — that is the point: a diff here means the
   funnel shape changed, and the new values must be re-pinned
   deliberately, with the change explained in the PR. *)

module Explore = Conex.Explore

let scale = 4000
let seed = 7

let config ?(shards = 1) ~jobs () =
  {
    Explore.reduced_config with
    Explore.apex =
      { Mx_apex.Explore.reduced_config with Mx_apex.Explore.max_selected = 3 };
    jobs;
    shards;
  }

(* name, generator, (n_estimates, n_simulations, pareto front size) *)
let pins =
  [
    ("compress", Mx_trace.Kern_compress.generate, (112, 26, 9));
    ("vocoder", Mx_trace.Kern_vocoder.generate, (204, 27, 5));
    ("dijkstra", Mx_trace.Kern_graph.generate, (40, 15, 9));
  ]

let check_pin ?shards ~jobs (name, gen, (est, sim, front)) () =
  let w = gen ~scale ~seed in
  let r = Explore.run ~config:(config ?shards ~jobs ()) w in
  Helpers.check_int (name ^ ": n_estimates") est r.Explore.n_estimates;
  Helpers.check_int (name ^ ": n_simulations") sim r.Explore.n_simulations;
  Helpers.check_int (name ^ ": pareto front size") front
    (List.length r.Explore.pareto_cost_perf);
  (* internal consistency, independent of the pinned values *)
  Helpers.check_int "estimated list matches the counter"
    r.Explore.n_estimates
    (List.length r.Explore.estimated);
  Helpers.check_int "simulated list matches the counter"
    r.Explore.n_simulations
    (List.length r.Explore.simulated);
  Helpers.check_true "funnel narrows"
    (r.Explore.n_estimates >= r.Explore.n_simulations
    && r.Explore.n_simulations >= List.length r.Explore.pareto_cost_perf)

(* The pins hold at every jobs level AND every shard count: Explore.run
   is bit-identical serial and parallel, and the shard work-queue merges
   back into the monolithic design stream, so the same numbers are
   checked under all three regimes. *)
let suite =
  ( "golden",
    List.map
      (fun ((name, _, _) as pin) ->
        Alcotest.test_case ("funnel: " ^ name) `Slow (check_pin ~jobs:1 pin))
      pins
    @ List.map
        (fun ((name, _, _) as pin) ->
          Alcotest.test_case
            (Printf.sprintf "funnel: %s (jobs=%d)" name Helpers.test_jobs)
            `Slow
            (check_pin ~jobs:Helpers.test_jobs pin))
        pins
    @ List.map
        (fun ((name, _, _) as pin) ->
          Alcotest.test_case
            (Printf.sprintf "funnel: %s (shards=4)" name)
            `Slow
            (check_pin ~shards:4 ~jobs:1 pin))
        pins )
