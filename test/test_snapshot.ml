(* Mx_util.Snapshot: the live-telemetry document and its ambient
   tracker — JSON roundtrip, the canonical/exempt split, atomic
   publication (a concurrent reader never observes a torn file), stall
   detection, and jobs-parity of every progress counter. *)

module Snapshot = Mx_util.Snapshot
module Explore = Conex.Explore

let sample =
  {
    Snapshot.version = Snapshot.schema_version;
    phase = "explore.phase2";
    progress =
      {
        Snapshot.shards_planned = 8;
        shards_committed = 3;
        evals_committed = 120;
        archive_size = 17;
      };
    timing =
      {
        Snapshot.elapsed_s = 2.5;
        eval_rate = 48.0;
        eta_s = Some 4.2;
        last_commit_age_s = 0.1;
        stalled = false;
      };
    cache = { Snapshot.hits = 30; misses = 90; hit_rate = 0.25 };
    domains =
      [
        { Snapshot.dom_id = 0; busy_s = 2.0; utilization = 0.8 };
        { Snapshot.dom_id = 1; busy_s = 1.5; utilization = 0.6 };
      ];
  }

let test_json_roundtrip () =
  match Snapshot.of_json (Snapshot.to_json sample) with
  | Error m -> Alcotest.failf "roundtrip parse failed: %s" m
  | Ok s ->
    Helpers.check_true "progress survives" (s.Snapshot.progress = sample.Snapshot.progress);
    Helpers.check_true "phase survives" (s.Snapshot.phase = sample.Snapshot.phase);
    Helpers.check_true "cache survives" (s.Snapshot.cache = sample.Snapshot.cache);
    Helpers.check_true "eta survives"
      (s.Snapshot.timing.Snapshot.eta_s = Some 4.2);
    Helpers.check_true "domains survive" (s.Snapshot.domains = sample.Snapshot.domains)

let test_canonical_excludes_exempt () =
  let c = Snapshot.canonical_json sample in
  List.iter
    (fun needle ->
      Helpers.check_true
        (Printf.sprintf "canonical has no %s" needle)
        (not (Test_metrics.contains ~needle c)))
    [ "timing"; "cache"; "sched"; "elapsed"; "busy_s" ];
  List.iter
    (fun needle ->
      Helpers.check_true
        (Printf.sprintf "canonical keeps %s" needle)
        (Test_metrics.contains ~needle c))
    [ "version"; "phase"; "shards_planned"; "evals_committed"; "archive_size" ];
  (* two snapshots differing only in exempt fields are canonically equal *)
  let other =
    {
      sample with
      Snapshot.timing =
        {
          Snapshot.elapsed_s = 99.0;
          eval_rate = 1.0;
          eta_s = None;
          last_commit_age_s = 50.0;
          stalled = true;
        };
      cache = { Snapshot.hits = 0; misses = 1; hit_rate = 0.0 };
      domains = [];
    }
  in
  Helpers.check_true "canonical ignores exempt sections"
    (Snapshot.canonical_json sample = Snapshot.canonical_json other)

let test_text_rendering () =
  let t = Snapshot.to_text sample in
  List.iter
    (fun needle ->
      Helpers.check_true
        (Printf.sprintf "text mentions %s" needle)
        (Test_metrics.contains ~needle t))
    [ "explore.phase2"; "3/8"; "archive 17"; "hit rate"; "ETA" ];
  let stalled =
    {
      sample with
      Snapshot.timing = { sample.Snapshot.timing with Snapshot.stalled = true };
    }
  in
  Helpers.check_true "stall is loud"
    (Test_metrics.contains ~needle:"STALLED" (Snapshot.to_text stalled))

let temp_status () = Filename.temp_file "conex_status" ".json"

let with_tracker ?(interval = 0.05) ?(stall_after = 30.0) f =
  let path = temp_status () in
  Snapshot.start ~interval ~stall_after ~path ();
  Fun.protect
    ~finally:(fun () ->
      Snapshot.finish ();
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f path)

let test_tracker_lifecycle () =
  Helpers.check_true "inactive at start" (not (Snapshot.active ()));
  with_tracker (fun path ->
      Helpers.check_true "active" (Snapshot.active ());
      Snapshot.set_phase "p1";
      Snapshot.add_shards_planned 4;
      Snapshot.shard_committed ~archive:2 ();
      Snapshot.eval_committed ~by:10 ();
      let s = Snapshot.capture () in
      Helpers.check_true "phase ticked" (s.Snapshot.phase = "p1");
      Helpers.check_int "planned" 4 s.Snapshot.progress.Snapshot.shards_planned;
      Helpers.check_int "committed" 1
        s.Snapshot.progress.Snapshot.shards_committed;
      Helpers.check_int "evals" 10 s.Snapshot.progress.Snapshot.evals_committed;
      Helpers.check_int "archive" 2 s.Snapshot.progress.Snapshot.archive_size;
      Helpers.check_true "eta projected from the plan"
        (s.Snapshot.timing.Snapshot.eta_s <> None);
      Snapshot.write_now ();
      let text = In_channel.with_open_text path In_channel.input_all in
      match Snapshot.of_json text with
      | Error m -> Alcotest.failf "status file unreadable: %s" m
      | Ok s ->
        Helpers.check_int "file agrees" 10
          s.Snapshot.progress.Snapshot.evals_committed);
  Helpers.check_true "inactive after finish" (not (Snapshot.active ()));
  (* ticks after finish are no-ops *)
  Snapshot.eval_committed ();
  Helpers.check_int "no tracking while inactive" 0
    (Snapshot.capture ()).Snapshot.progress.Snapshot.evals_committed

let test_stall_detection () =
  with_tracker ~stall_after:0.01 (fun _ ->
      Snapshot.shard_committed ();
      Unix.sleepf 0.05;
      let s = Snapshot.capture () in
      Helpers.check_true "stalled after quiet period"
        s.Snapshot.timing.Snapshot.stalled;
      Snapshot.shard_committed ();
      let s = Snapshot.capture () in
      Helpers.check_true "commit clears the stall"
        (not s.Snapshot.timing.Snapshot.stalled))

(* A reader hammering the status file while the watchdog and the main
   domain keep publishing must only ever see complete documents:
   rename-based publication means a torn read is a bug, not bad luck. *)
let test_atomic_publication () =
  with_tracker ~interval:0.05 (fun path ->
      Snapshot.set_phase "atomicity";
      Snapshot.add_shards_planned 1000;
      let stop = Atomic.make false in
      let torn = Atomic.make 0 in
      let seen = Atomic.make 0 in
      let reader =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              (match In_channel.with_open_text path In_channel.input_all with
              | "" -> () (* only before the very first publication *)
              | text -> (
                Atomic.incr seen;
                match Snapshot.of_json text with
                | Ok _ -> ()
                | Error _ -> Atomic.incr torn)
              | exception Sys_error _ -> ());
              Domain.cpu_relax ()
            done)
      in
      for i = 1 to 500 do
        Snapshot.shard_committed ~archive:i ();
        Snapshot.eval_committed ~by:3 ();
        if i mod 50 = 0 then Snapshot.write_now ()
      done;
      Unix.sleepf 0.15;
      Atomic.set stop true;
      Domain.join reader;
      Helpers.check_int "no torn reads" 0 (Atomic.get torn);
      Helpers.check_true "reader actually read something"
        (Atomic.get seen > 0))

(* The determinism contract: every progress counter (the canonical
   part) is identical between a serial and a parallel run of the same
   exploration; only timing/cache/sched may differ. *)
let parity_config jobs =
  {
    Explore.reduced_config with
    Explore.apex =
      { Mx_apex.Explore.reduced_config with Mx_apex.Explore.max_selected = 2 };
    jobs;
    shards = 3;
  }

let run_with_tracker jobs w =
  Mx_sim.Eval.clear_cache ();
  Helpers.with_global_metrics (fun () ->
      with_tracker (fun _ ->
          let _r = Explore.run ~config:(parity_config jobs) w in
          Snapshot.canonical_json (Snapshot.capture ())))

let test_jobs_parity () =
  let w = Helpers.mixed_workload ~scale:3000 () in
  let c1 = run_with_tracker 1 w in
  let c2 = run_with_tracker 2 w in
  let cn = run_with_tracker Helpers.test_jobs w in
  if not (c1 = c2 && c2 = cn) then
    Alcotest.failf
      "canonical snapshot diverges across jobs levels:\njobs=1: %sjobs=2: \
       %sjobs=%d: %s"
      c1 c2 Helpers.test_jobs cn;
  Helpers.check_true "progress is non-trivial"
    (Test_metrics.contains ~needle:"shards_committed" c1
    && not (Test_metrics.contains ~needle:"\"shards_committed\": 0" c1))

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "canonical excludes exempt sections" `Quick
        test_canonical_excludes_exempt;
      Alcotest.test_case "text rendering" `Quick test_text_rendering;
      Alcotest.test_case "tracker lifecycle" `Quick test_tracker_lifecycle;
      Alcotest.test_case "stall detection" `Quick test_stall_detection;
      Alcotest.test_case "atomic publication" `Slow test_atomic_publication;
      Alcotest.test_case "progress parity at jobs 1/2/N" `Slow
        test_jobs_parity;
    ] )
