(* Mx_util.Memo_cache: hit/miss accounting, LRU eviction, the disabled
   (capacity 0) mode, failure transparency, and the single-flight
   guarantee under Task_pool parallelism. *)

module Memo_cache = Mx_util.Memo_cache
module Metrics = Mx_util.Metrics

let fresh ?metrics_prefix ?registry ~capacity () =
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  Memo_cache.create ~registry ?metrics_prefix ~capacity ()

let test_miss_then_hit () =
  let c = fresh ~capacity:8 () in
  let computes = ref 0 in
  let f () =
    incr computes;
    42
  in
  Helpers.check_int "first lookup computes" 42
    (Memo_cache.find_or_compute c ~key:"k" f);
  Helpers.check_int "second lookup served from cache" 42
    (Memo_cache.find_or_compute c ~key:"k" f);
  Helpers.check_int "computed exactly once" 1 !computes;
  let s = Memo_cache.stats c in
  Helpers.check_int "one hit" 1 s.Memo_cache.hits;
  Helpers.check_int "one miss" 1 s.Memo_cache.misses;
  Helpers.check_int "one resident entry" 1 s.Memo_cache.size

let test_distinct_keys_distinct_entries () =
  let c = fresh ~capacity:8 () in
  let v key = Memo_cache.find_or_compute c ~key (fun () -> String.length key) in
  Helpers.check_int "a" 1 (v "a");
  Helpers.check_int "bb" 2 (v "bb");
  Helpers.check_int "a again" 1 (v "a");
  Helpers.check_int "two entries" 2 (Memo_cache.length c)

let test_peek () =
  let c = fresh ~capacity:8 () in
  Helpers.check_true "peek on empty finds nothing"
    (Memo_cache.peek c ~key:"k" = None);
  Helpers.check_int "peek miss not counted as hit" 0
    (Memo_cache.stats c).Memo_cache.hits;
  ignore (Memo_cache.find_or_compute c ~key:"k" (fun () -> 7));
  Helpers.check_true "peek finds the cached value"
    (Memo_cache.peek c ~key:"k" = Some 7);
  Helpers.check_int "peek success counted as hit" 1
    (Memo_cache.stats c).Memo_cache.hits

let test_capacity_zero_disables () =
  let c = fresh ~capacity:0 () in
  let computes = ref 0 in
  let f () =
    incr computes;
    1
  in
  ignore (Memo_cache.find_or_compute c ~key:"k" f);
  ignore (Memo_cache.find_or_compute c ~key:"k" f);
  Helpers.check_true "disabled cache reports disabled"
    (not (Memo_cache.enabled c));
  Helpers.check_int "every lookup recomputes" 2 !computes;
  Helpers.check_int "nothing retained" 0 (Memo_cache.length c);
  Helpers.check_int "lookups counted as misses" 2
    (Memo_cache.stats c).Memo_cache.misses

let test_lru_eviction () =
  let c = fresh ~capacity:2 () in
  let computes = Hashtbl.create 8 in
  let f key () =
    Hashtbl.replace computes key (1 + Option.value ~default:0 (Hashtbl.find_opt computes key));
    key
  in
  ignore (Memo_cache.find_or_compute c ~key:"a" (f "a"));
  ignore (Memo_cache.find_or_compute c ~key:"b" (f "b"));
  (* refresh a so b becomes the LRU victim *)
  ignore (Memo_cache.find_or_compute c ~key:"a" (f "a"));
  ignore (Memo_cache.find_or_compute c ~key:"c" (f "c"));
  Helpers.check_int "capacity respected" 2 (Memo_cache.length c);
  Helpers.check_int "one eviction" 1 (Memo_cache.stats c).Memo_cache.evictions;
  Helpers.check_true "a survived (recently used)"
    (Memo_cache.peek c ~key:"a" <> None);
  Helpers.check_true "b evicted (least recently used)"
    (Memo_cache.peek c ~key:"b" = None);
  ignore (Memo_cache.find_or_compute c ~key:"b" (f "b"));
  Helpers.check_int "b recomputed after eviction" 2 (Hashtbl.find computes "b");
  Helpers.check_int "a never recomputed" 1 (Hashtbl.find computes "a")

let test_failure_not_cached () =
  let c = fresh ~capacity:8 () in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts = 1 then failwith "transient";
    99
  in
  (try ignore (Memo_cache.find_or_compute c ~key:"k" flaky)
   with Failure _ -> ());
  Helpers.check_int "failed entry not retained" 0 (Memo_cache.length c);
  Helpers.check_int "retry recomputes and succeeds" 99
    (Memo_cache.find_or_compute c ~key:"k" flaky);
  Helpers.check_int "two attempts" 2 !attempts

let test_clear_keeps_counters () =
  let c = fresh ~capacity:8 () in
  ignore (Memo_cache.find_or_compute c ~key:"k" (fun () -> 1));
  ignore (Memo_cache.find_or_compute c ~key:"k" (fun () -> 1));
  Memo_cache.clear c;
  Helpers.check_int "entries dropped" 0 (Memo_cache.length c);
  let s = Memo_cache.stats c in
  Helpers.check_int "hits kept across clear" 1 s.Memo_cache.hits;
  Helpers.check_int "misses kept across clear" 1 s.Memo_cache.misses

let test_metrics_recording () =
  let registry = Metrics.create ~enabled:true () in
  let c = fresh ~registry ~metrics_prefix:"eval.cache" ~capacity:1 () in
  ignore (Memo_cache.find_or_compute c ~key:"a" (fun () -> 1));
  ignore (Memo_cache.find_or_compute c ~key:"a" (fun () -> 1));
  ignore (Memo_cache.find_or_compute c ~key:"b" (fun () -> 2));
  Helpers.check_int "hits counter" 1
    (Metrics.counter_value registry "eval.cache.hits");
  Helpers.check_int "misses counter" 2
    (Metrics.counter_value registry "eval.cache.misses");
  Helpers.check_int "evictions counter" 1
    (Metrics.counter_value registry "eval.cache.evictions")

(* The single-flight property: many domains racing on a small key set
   still compute each key exactly once. *)
let test_single_flight_parallel () =
  let c = fresh ~capacity:64 () in
  let computes = Atomic.make 0 in
  let n = 200 and keys = 8 in
  let results =
    Mx_util.Task_pool.parallel_map ~jobs:Helpers.test_jobs ~chunk:1
      (fun i ->
        let key = "k" ^ string_of_int (i mod keys) in
        Memo_cache.find_or_compute c ~key (fun () ->
            Atomic.incr computes;
            (* widen the race window so waiters actually park *)
            for _ = 1 to 10_000 do
              Domain.cpu_relax ()
            done;
            i mod keys))
      (List.init n Fun.id)
  in
  Helpers.check_int "every key computed exactly once" keys
    (Atomic.get computes);
  Helpers.check_true "every caller observed its key's value"
    (List.for_all2 (fun i v -> v = i mod keys) (List.init n Fun.id) results);
  let s = Memo_cache.stats c in
  Helpers.check_int "misses = unique keys" keys s.Memo_cache.misses;
  Helpers.check_int "hits = remaining lookups" (n - keys) s.Memo_cache.hits

(* Evicting under parallel load never loses correctness, only reuse. *)
let test_parallel_eviction_stress () =
  let c = fresh ~capacity:4 () in
  let results =
    Mx_util.Task_pool.parallel_map ~jobs:Helpers.test_jobs ~chunk:4
      (fun i ->
        let key = "k" ^ string_of_int (i mod 16) in
        Memo_cache.find_or_compute c ~key (fun () -> i mod 16))
      (List.init 400 Fun.id)
  in
  Helpers.check_true "all values correct under eviction pressure"
    (List.for_all2 (fun i v -> v = i mod 16) (List.init 400 Fun.id) results);
  Helpers.check_true "capacity bound held"
    (Memo_cache.length c <= 4)

let suite =
  ( "memo_cache",
    [
      Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
      Alcotest.test_case "distinct keys" `Quick
        test_distinct_keys_distinct_entries;
      Alcotest.test_case "peek" `Quick test_peek;
      Alcotest.test_case "capacity 0 disables" `Quick
        test_capacity_zero_disables;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "failures not cached" `Quick test_failure_not_cached;
      Alcotest.test_case "clear keeps counters" `Quick
        test_clear_keeps_counters;
      Alcotest.test_case "metrics recording" `Quick test_metrics_recording;
      Alcotest.test_case "single-flight under parallelism" `Quick
        test_single_flight_parallel;
      Alcotest.test_case "parallel eviction stress" `Quick
        test_parallel_eviction_stress;
    ] )
