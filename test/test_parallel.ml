(* Task_pool.parallel_map semantics (ordering, exceptions, chunking,
   serial fallback) and the exploration determinism guarantee: Explore.run
   returns byte-identical results at every jobs level. *)

module Task_pool = Mx_util.Task_pool
module Design = Conex.Design
module Explore = Conex.Explore

exception Boom of int

(* -- parallel_map --------------------------------------------------------- *)

let test_jobs1_spawns_nothing () =
  let before = Task_pool.pool_size () in
  let r = Task_pool.parallel_map ~jobs:1 ~chunk:4 (fun x -> x + 1) [ 1; 2; 3 ] in
  Helpers.check_true "jobs=1 maps correctly" (r = [ 2; 3; 4 ]);
  Helpers.check_int "jobs=1 spawns no domains" before (Task_pool.pool_size ())

let test_ordering () =
  let xs = List.init 1000 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun (jobs, chunk) ->
      Helpers.check_true
        (Printf.sprintf "jobs=%d chunk=%d preserves order" jobs chunk)
        (Task_pool.parallel_map ~jobs ~chunk (fun x -> x * x) xs = expect))
    [ (2, 1); (4, 7); (4, 64); (8, 1000); (3, 5000) ]

let test_empty_list () =
  Helpers.check_true "empty input"
    (Task_pool.parallel_map ~jobs:4 ~chunk:3 succ [] = [])

let test_singleton () =
  Helpers.check_true "singleton input"
    (Task_pool.parallel_map ~jobs:4 ~chunk:3 succ [ 41 ] = [ 42 ])

let test_list_shorter_than_jobs () =
  Helpers.check_true "2 elements, 8 jobs"
    (Task_pool.parallel_map ~jobs:8 ~chunk:1 succ [ 1; 2 ] = [ 2; 3 ])

let test_chunk_clamped () =
  (* chunk <= 0 is clamped to 1, chunk > length is one big chunk *)
  Helpers.check_true "chunk=0 clamps"
    (Task_pool.parallel_map ~jobs:2 ~chunk:0 succ [ 1; 2; 3 ] = [ 2; 3; 4 ]);
  Helpers.check_true "chunk larger than list"
    (Task_pool.parallel_map ~jobs:2 ~chunk:100 succ [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_negative_jobs_rejected () =
  Helpers.check_true "jobs < 0 rejected"
    (try
       ignore (Task_pool.parallel_map ~jobs:(-1) ~chunk:1 succ [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_exception_propagates () =
  let xs = List.init 40 Fun.id in
  Helpers.check_true "worker exception re-raised in caller"
    (try
       ignore
         (Task_pool.parallel_map ~jobs:4 ~chunk:3
            (fun x -> if x = 13 then raise (Boom x) else x)
            xs);
       false
     with Boom 13 -> true)

let test_first_exception_wins () =
  (* two failing elements in different chunks: the one earliest in input
     order is the one reported *)
  let xs = List.init 40 Fun.id in
  Helpers.check_true "first error in input order reported"
    (try
       ignore
         (Task_pool.parallel_map ~jobs:4 ~chunk:2
            (fun x -> if x = 11 || x = 37 then raise (Boom x) else x)
            xs);
       false
     with Boom n -> n = 11)

let test_nested_call_degrades () =
  (* parallel_map from inside a worker must not deadlock the pool *)
  let outer =
    Task_pool.parallel_map ~jobs:4 ~chunk:1
      (fun x ->
        Task_pool.parallel_map ~jobs:4 ~chunk:1 (fun y -> x * y) [ 1; 2; 3 ])
      [ 1; 2 ]
  in
  Helpers.check_true "nested map correct" (outer = [ [ 1; 2; 3 ]; [ 2; 4; 6 ] ])

let test_pool_reused () =
  ignore (Task_pool.parallel_map ~jobs:3 ~chunk:1 succ (List.init 16 Fun.id));
  let size1 = Task_pool.pool_size () in
  ignore (Task_pool.parallel_map ~jobs:3 ~chunk:1 succ (List.init 16 Fun.id));
  Helpers.check_int "pool does not grow on repeat calls" size1
    (Task_pool.pool_size ())

(* -- thin_by_cost regression ---------------------------------------------- *)

let fake_result lat =
  {
    Mx_sim.Sim_result.accesses = 100;
    cycles = 100;
    total_mem_latency = 100;
    avg_mem_latency = lat;
    avg_energy_nj = 1.0;
    miss_ratio = 0.1;
    bus_wait_cycles = 0;
    dram_bytes = 0;
    exact = false;
  }

let some_designs () =
  let w = Helpers.mixed_workload ~scale:2000 () in
  List.map
    (fun cache ->
      let arch = Helpers.cache_only_arch ~cache w in
      let profile = Helpers.profile_of arch w in
      let conn = Helpers.naive_conn (Mx_connect.Brg.build arch profile) in
      Design.make ~workload_name:"thin" ~mem:arch ~conn
        ~est:(fake_result 10.0) ())
    [ Helpers.tiny_cache; Helpers.small_cache ]

let test_thin_keep1_no_division_by_zero () =
  (* regression: keep = 1 with n > 1 divided by keep - 1 = 0 *)
  let designs = some_designs () in
  match Explore.thin_by_cost ~keep:1 designs with
  | [ d ] ->
    let cheapest =
      List.fold_left (fun acc x -> Float.min acc (Design.cost x)) infinity
        designs
    in
    Helpers.check_true "keeps the single cheapest design"
      (Design.cost d = cheapest)
  | other ->
    Alcotest.failf "thin_by_cost ~keep:1 returned %d designs"
      (List.length other)

let test_thin_keep_bounds () =
  let designs = some_designs () in
  Helpers.check_int "keep=0 is identity" (List.length designs)
    (List.length (Explore.thin_by_cost ~keep:0 designs));
  Helpers.check_int "keep>=n is identity" (List.length designs)
    (List.length (Explore.thin_by_cost ~keep:10 designs))

(* -- Explore.run determinism: serial vs parallel --------------------------- *)

let small_config jobs =
  {
    Explore.reduced_config with
    Explore.apex =
      { Mx_apex.Explore.reduced_config with Mx_apex.Explore.max_selected = 3 };
    jobs;
  }

let strip_wall (r : Explore.result) =
  (* wall_seconds is the only field allowed to differ between runs *)
  ( r.Explore.estimated,
    r.Explore.simulated,
    r.Explore.pareto_cost_perf,
    r.Explore.n_estimates,
    r.Explore.n_simulations,
    List.map (fun (c : Mx_apex.Explore.candidate) -> c.Mx_apex.Explore.arch)
      r.Explore.apex_selected )

(* Both arms must run against a cold result cache: a warm cache would
   serve the second run from the first one's entries — in the sampled
   case even promoting the refine pass's exact results into the sampled
   phase — so the two arms would no longer compute the same thing. *)
let cold_run config w =
  Mx_sim.Eval.clear_cache ();
  Explore.run ~config w

let test_run_parallel_matches_serial () =
  let w = Helpers.mixed_workload ~scale:6000 () in
  let serial = cold_run (small_config 1) w in
  let parallel = cold_run (small_config 4) w in
  Helpers.check_true "results byte-identical at jobs=4"
    (strip_wall serial = strip_wall parallel)

let test_run_sampled_refine_parallel_matches_serial () =
  (* exercises the sampled + refine_top re-simulation pass too *)
  let w = Helpers.mixed_workload ~scale:6000 () in
  let with_sampling jobs =
    { (small_config jobs) with Explore.sample = Some (500, 1500); refine_top = 4 }
  in
  let serial = cold_run (with_sampling 1) w in
  let parallel = cold_run (with_sampling 3) w in
  Helpers.check_true "sampled+refined results byte-identical"
    (strip_wall serial = strip_wall parallel)

(* -- parallel_map_commit --------------------------------------------------- *)

(* Commits must arrive on the calling domain, in input order, exactly
   once each — whatever the jobs/chunk split. *)
let test_commit_ordered () =
  let xs = List.init 500 Fun.id in
  List.iter
    (fun (jobs, chunk) ->
      let caller = Domain.self () in
      let seen = ref [] in
      let n =
        Task_pool.parallel_map_commit ~jobs ~chunk
          ~commit:(fun i x y ->
            Helpers.check_true "commit runs on the calling domain"
              (Domain.self () = caller);
            Helpers.check_int "index matches element" i x;
            seen := y :: !seen)
          (fun x -> x * 3)
          xs
      in
      Helpers.check_int
        (Printf.sprintf "jobs=%d chunk=%d commits everything" jobs chunk)
        (List.length xs) n;
      Helpers.check_true "commits in input order"
        (List.rev !seen = List.map (fun x -> x * 3) xs))
    [ (1, 4); (2, 1); (4, 7); (4, 64); (8, 500) ]

let test_commit_stop_prefix () =
  let xs = List.init 200 Fun.id in
  List.iter
    (fun jobs ->
      let seen = ref [] in
      let committed = ref 0 in
      let stop () = !committed >= 20 in
      let n =
        Task_pool.parallel_map_commit ~jobs ~chunk:3
          ~should_stop:stop
          ~commit:(fun _ x _ ->
            incr committed;
            seen := x :: !seen)
          Fun.id xs
      in
      Helpers.check_int
        (Printf.sprintf "jobs=%d stops after the requested prefix" jobs)
        20 n;
      Helpers.check_true "the committed prefix is the input prefix"
        (List.rev !seen = List.filteri (fun i _ -> i < 20) xs))
    [ 1; 4 ]

let test_commit_exception_keeps_prefix () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let seen = ref [] in
      match
        Task_pool.parallel_map_commit ~jobs ~chunk:1
          ~commit:(fun _ x _ -> seen := x :: !seen)
          (fun x -> if x = 41 then raise (Boom x) else x)
          xs
      with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Boom 41 ->
        Helpers.check_true
          (Printf.sprintf "jobs=%d preserves the clean committed prefix" jobs)
          (List.rev !seen = List.filteri (fun i _ -> i < 41) xs))
    [ 1; 4 ]

let test_commit_empty_and_negative () =
  Helpers.check_int "empty input commits nothing" 0
    (Task_pool.parallel_map_commit ~jobs:4 ~chunk:3
       ~commit:(fun _ _ _ -> Alcotest.fail "no commit expected")
       succ []);
  Helpers.check_true "jobs < 0 rejected"
    (try
       ignore
         (Task_pool.parallel_map_commit ~jobs:(-1) ~chunk:1
            ~commit:(fun _ _ _ -> ())
            succ [ 1 ]);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "parallel",
    [
      Alcotest.test_case "jobs=1 spawns nothing" `Quick test_jobs1_spawns_nothing;
      Alcotest.test_case "ordering preserved" `Quick test_ordering;
      Alcotest.test_case "empty list" `Quick test_empty_list;
      Alcotest.test_case "singleton" `Quick test_singleton;
      Alcotest.test_case "shorter than jobs" `Quick test_list_shorter_than_jobs;
      Alcotest.test_case "chunk clamped" `Quick test_chunk_clamped;
      Alcotest.test_case "negative jobs" `Quick test_negative_jobs_rejected;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "first exception wins" `Quick test_first_exception_wins;
      Alcotest.test_case "nested call degrades" `Quick test_nested_call_degrades;
      Alcotest.test_case "pool reused" `Quick test_pool_reused;
      Alcotest.test_case "commit ordered" `Quick test_commit_ordered;
      Alcotest.test_case "commit stop prefix" `Quick test_commit_stop_prefix;
      Alcotest.test_case "commit exception prefix" `Quick
        test_commit_exception_keeps_prefix;
      Alcotest.test_case "commit edge cases" `Quick
        test_commit_empty_and_negative;
      Alcotest.test_case "thin_by_cost keep=1" `Quick test_thin_keep1_no_division_by_zero;
      Alcotest.test_case "thin_by_cost bounds" `Quick test_thin_keep_bounds;
      Alcotest.test_case "serial = parallel" `Slow test_run_parallel_matches_serial;
      Alcotest.test_case "serial = parallel (sampled)" `Slow
        test_run_sampled_refine_parallel_matches_serial;
    ] )
