(* Two-level cache hierarchy tests: validation, simulation semantics,
   BRG channels, cycle-sim timing and APEX exploration. *)

module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Brg = Mx_connect.Brg
module Channel = Mx_connect.Channel

let l1 = { Params.c_size = 2048; c_line = 32; c_assoc = 2; c_latency = 1; c_policy = Params.default_policy }
let l2p = { Params.c_size = 16384; c_line = 64; c_assoc = 4; c_latency = 4; c_policy = Params.default_policy }

let with_l2 w =
  Mem_arch.make ~label:"l1+l2" ~cache:l1 ~l2:l2p
    ~bindings:
      (Array.make (List.length w.Mx_trace.Workload.regions) Mem_arch.To_cache)
    ()

let l1_only w =
  Mem_arch.make ~label:"l1" ~cache:l1
    ~bindings:
      (Array.make (List.length w.Mx_trace.Workload.regions) Mem_arch.To_cache)
    ()

let test_validation () =
  Helpers.check_true "L2 without L1 rejected"
    (try
       ignore (Mem_arch.make ~label:"x" ~l2:l2p ~bindings:[| Mem_arch.To_cache |] ());
       false
     with Invalid_argument _ -> true);
  Helpers.check_true "L2 smaller than L1 rejected"
    (try
       ignore
         (Mem_arch.make ~label:"x" ~cache:l2p ~l2:l1
            ~bindings:[| Mem_arch.To_cache |] ());
       false
     with Invalid_argument _ -> true)

let test_cost_includes_l2 () =
  let w = Helpers.mixed_workload ~scale:100 () in
  Helpers.check_int "cost adds the L2 array"
    (Mem_arch.cost_gates (l1_only w) + Mx_mem.Cost_model.cache l2p)
    (Mem_arch.cost_gates (with_l2 w))

let test_l2_reduces_offchip_misses () =
  let w = Helpers.mixed_workload () in
  let s1 = Helpers.profile_of (l1_only w) w in
  let s2 = Helpers.profile_of (with_l2 w) w in
  Helpers.check_true "L2 absorbs off-chip misses"
    (Mem_sim.miss_ratio s2 < Mem_sim.miss_ratio s1);
  Helpers.check_true "L2 sees the L1 miss stream"
    (s2.Mem_sim.l2_accesses > 0);
  Helpers.check_true "some L2 hits" (s2.Mem_sim.l2_hits > 0);
  Helpers.check_true "L1<->L2 traffic recorded" (s2.Mem_sim.l2_bytes_total > 0)

let test_l2_hit_is_onchip () =
  (* repeated conflict pair: misses L1 (same set), hits L2 after warmup *)
  let regions =
    [ { Mx_trace.Region.id = 0; name = "a"; base = 0; size = 1 lsl 20;
        elem_size = 4; hint = Mx_trace.Region.Random_access } ]
  in
  let arch =
    Mem_arch.make ~label:"x" ~cache:l1 ~l2:l2p ~bindings:[| Mem_arch.To_cache |] ()
  in
  let m = Mem_sim.create arch ~regions in
  let stride = 2048 in
  (* warm both lines into L2 *)
  ignore (Mem_sim.access m ~now:0 ~addr:0 ~size:4 ~write:false ~region:0);
  ignore (Mem_sim.access m ~now:1 ~addr:stride ~size:4 ~write:false ~region:0);
  ignore (Mem_sim.access m ~now:2 ~addr:(2 * stride) ~size:4 ~write:false ~region:0);
  (* 2-way set now overflows; this one misses L1 but hits L2 *)
  let o = Mem_sim.access m ~now:3 ~addr:0 ~size:4 ~write:false ~region:0 in
  Helpers.check_true "L2 hit served on-chip" o.Mem_sim.hit;
  Helpers.check_true "no off-chip critical transfer" (not o.Mem_sim.dram_critical);
  Helpers.check_true "L1<->L2 transfer happened" (o.Mem_sim.l2_bytes > 0)

let test_brg_has_l2_channels () =
  let w = Helpers.mixed_workload () in
  let arch = with_l2 w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  let has src dst =
    List.exists
      (fun c -> c.Channel.src = src && c.Channel.dst = dst)
      brg.Brg.channels
  in
  Helpers.check_true "cache<->L2 channel" (has Channel.Cache Channel.L2);
  Helpers.check_true "L2<->DRAM channel" (has Channel.L2 Channel.Dram);
  Helpers.check_true "no direct cache<->DRAM channel"
    (not (has Channel.Cache Channel.Dram))

let test_cycle_sim_with_l2 () =
  let w = Helpers.mixed_workload () in
  let arch = with_l2 w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  let conn = Helpers.naive_conn brg in
  let r = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
  Helpers.check_true "latency positive" (r.Mx_sim.Sim_result.avg_mem_latency > 0.0);
  (* dropping the cache<->L2 binding must be rejected *)
  let missing =
    Mx_connect.Conn_arch.make
      (List.filter_map
         (fun ch ->
           if ch.Channel.src = Channel.Cache && ch.Channel.dst = Channel.L2 then
             None
           else
             Some
               ( Mx_connect.Cluster.of_channel ch,
                 if Channel.crosses_chip ch then
                   Mx_connect.Component.by_name "off32"
                 else Mx_connect.Component.by_name "ded32" ))
         brg.Brg.channels)
  in
  Helpers.check_true "missing L2 channel rejected"
    (try
       ignore (Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn:missing ());
       false
     with Invalid_argument _ -> true)

let test_estimator_with_l2 () =
  let w = Helpers.mixed_workload () in
  let arch = with_l2 w in
  let profile = Helpers.profile_of arch w in
  let brg = Brg.build arch profile in
  let conn = Helpers.naive_conn brg in
  let e = Mx_sim.Estimator.estimate ~workload:w ~arch ~profile ~conn in
  let s = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
  let ratio =
    e.Mx_sim.Sim_result.avg_mem_latency /. s.Mx_sim.Sim_result.avg_mem_latency
  in
  (* the tiny L1 + saturated off-chip bus is the estimator's worst case
     (the queueing approximation clamps utilisation); the search only
     needs fidelity, but the estimate should stay within ~2.5x here *)
  Helpers.check_true "estimate within 2.5x of simulation"
    (ratio > 0.4 && ratio < 2.5)

let test_apex_explores_l2 () =
  let p = Mx_trace.Profile.analyze (Helpers.mixed_workload ()) in
  let config =
    {
      Mx_apex.Explore.reduced_config with
      Mx_apex.Explore.l2s = [ l2p ];
      caches = [ l1 ];
    }
  in
  let cands = Mx_apex.Explore.candidates config p in
  Helpers.check_true "some candidates carry an L2"
    (List.exists (fun (a : Mem_arch.t) -> a.Mem_arch.l2 <> None) cands);
  Helpers.check_true "plain-L1 candidates remain"
    (List.exists
       (fun (a : Mem_arch.t) ->
         a.Mem_arch.cache <> None && a.Mem_arch.l2 = None)
       cands)

let test_apex_l2_size_filter () =
  (* an L2 smaller than the cache must not be offered *)
  let p = Mx_trace.Profile.analyze (Helpers.mixed_workload ~scale:2000 ()) in
  let big_l1 = { Params.c_size = 32768; c_line = 32; c_assoc = 2; c_latency = 2; c_policy = Params.default_policy } in
  let config =
    {
      Mx_apex.Explore.reduced_config with
      Mx_apex.Explore.l2s = [ l2p ] (* 16 KB < 32 KB L1 *);
      caches = [ big_l1 ];
    }
  in
  List.iter
    (fun (a : Mem_arch.t) ->
      Helpers.check_true "undersized L2 filtered out" (a.Mem_arch.l2 = None))
    (Mx_apex.Explore.candidates config p)

let suite =
  ( "l2",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "cost includes L2" `Quick test_cost_includes_l2;
      Alcotest.test_case "L2 reduces misses" `Quick test_l2_reduces_offchip_misses;
      Alcotest.test_case "L2 hit is on-chip" `Quick test_l2_hit_is_onchip;
      Alcotest.test_case "BRG L2 channels" `Quick test_brg_has_l2_channels;
      Alcotest.test_case "cycle sim with L2" `Quick test_cycle_sim_with_l2;
      Alcotest.test_case "estimator with L2" `Quick test_estimator_with_l2;
      Alcotest.test_case "APEX explores L2" `Quick test_apex_explores_l2;
      Alcotest.test_case "APEX size filter" `Quick test_apex_l2_size_filter;
    ] )
