(* Shared builders for the test suites: small deterministic workloads
   and standard architectures, kept tiny so `dune runtest` stays fast. *)

module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Region = Mx_trace.Region
module Synthetic = Mx_trace.Synthetic

let seed = 1234

(* Parallel arm of serial-vs-parallel comparisons; CI overrides it to
   exercise a different domain count (MEMOREX_TEST_JOBS=2). *)
let test_jobs =
  match Option.bind (Sys.getenv_opt "MEMOREX_TEST_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 4

(* Run [f] with the ambient metrics registry enabled and clean, then
   disable and clear it again so no other suite sees leftovers. *)
let with_global_metrics f =
  let m = Mx_util.Metrics.global in
  Mx_util.Metrics.reset m;
  Mx_util.Metrics.set_enabled m true;
  Fun.protect
    ~finally:(fun () ->
      Mx_util.Metrics.set_enabled m false;
      Mx_util.Metrics.reset m)
    f

let tiny_cache =
  { Params.c_size = 1024; c_line = 16; c_assoc = 2; c_latency = 1; c_policy = Params.default_policy }

let small_cache =
  { Params.c_size = 4096; c_line = 32; c_assoc = 2; c_latency = 1; c_policy = Params.default_policy }

let default_sbuf = List.hd Mx_mem.Module_lib.stream_buffers
let default_lldma = List.hd Mx_mem.Module_lib.lldmas

(* A mixed synthetic workload exercising every pattern class. *)
let mixed_workload ?(scale = 20000) () =
  Synthetic.generate ~name:"mixed" ~scale ~seed
    ~specs:
      [
        Synthetic.spec ~name:"stream" ~elems:4096 ~share:2.0 Region.Stream;
        Synthetic.spec ~name:"hot" ~elems:64 ~share:2.0 ~skew:1.2
          Region.Indexed;
        Synthetic.spec ~name:"table" ~elems:8192 ~share:1.5 ~skew:0.2
          Region.Random_access;
        Synthetic.spec ~name:"list" ~elems:4096 ~share:1.5
          Region.Self_indirect;
      ]

(* Streams-only workload (stream buffer coverage). *)
let stream_workload ?(scale = 8000) () =
  Synthetic.generate ~name:"streams" ~scale ~seed
    ~specs:
      [
        Synthetic.spec ~name:"in" ~elems:4096 ~write_frac:0.0 Region.Stream;
        Synthetic.spec ~name:"out" ~elems:4096 ~write_frac:1.0 Region.Stream;
      ]

(* All-default bindings architecture over a workload's regions. *)
let cache_only_arch ?(cache = small_cache) (w : Mx_trace.Workload.t) =
  Mem_arch.make ~label:"cache-only" ~cache
    ~bindings:
      (Array.make (List.length w.Mx_trace.Workload.regions) Mem_arch.To_cache)
    ()

(* Rich architecture: cache + sbuf + lldma + sram bound by region hint. *)
let rich_arch (w : Mx_trace.Workload.t) =
  let regions = w.Mx_trace.Workload.regions in
  let bindings = Array.make (List.length regions) Mem_arch.To_cache in
  let sram_bytes = ref 0 in
  List.iter
    (fun (r : Region.t) ->
      match r.hint with
      | Region.Stream -> bindings.(r.id) <- Mem_arch.To_sbuf
      | Region.Self_indirect -> bindings.(r.id) <- Mem_arch.To_lldma
      | Region.Indexed ->
        bindings.(r.id) <- Mem_arch.To_sram;
        sram_bytes := !sram_bytes + r.size
      | Region.Random_access | Region.Mixed -> ())
    regions;
  let sram =
    if !sram_bytes > 0 then Some (Mx_mem.Module_lib.sram_for_bytes !sram_bytes)
    else None
  in
  Mem_arch.make ~label:"rich" ~cache:small_cache ~sbuf:default_sbuf
    ~lldma:default_lldma ?sram ~bindings ()

let profile_of arch (w : Mx_trace.Workload.t) =
  let m = Mx_mem.Mem_sim.create arch ~regions:w.Mx_trace.Workload.regions in
  Mx_mem.Mem_sim.run m w.Mx_trace.Workload.trace

(* A naive connectivity: every BRG channel on its own component (cheap
   to build in tests). *)
let naive_conn (brg : Mx_connect.Brg.t) =
  let pairs =
    List.map
      (fun ch ->
        let cl = Mx_connect.Cluster.of_channel ch in
        let comp =
          if cl.Mx_connect.Cluster.offchip then
            Mx_connect.Component.by_name "off32"
          else Mx_connect.Component.by_name "ded32"
        in
        (cl, comp))
      brg.Mx_connect.Brg.channels
  in
  Mx_connect.Conn_arch.make pairs

(* Single shared buses: one AHB for everything on-chip, one off-chip
   bus for everything else. *)
let shared_conn (brg : Mx_connect.Brg.t) =
  let onchip = Mx_connect.Brg.onchip_channels brg
  and offchip = Mx_connect.Brg.offchip_channels brg in
  let pairs =
    (if onchip = [] then []
     else
       [
         ( List.fold_left
             (fun acc ch -> Mx_connect.Cluster.merge acc (Mx_connect.Cluster.of_channel ch))
             (Mx_connect.Cluster.of_channel (List.hd onchip))
             (List.tl onchip),
           Mx_connect.Component.by_name "ahb32" );
       ])
    @
    if offchip = [] then []
    else
      [
        ( List.fold_left
            (fun acc ch -> Mx_connect.Cluster.merge acc (Mx_connect.Cluster.of_channel ch))
            (Mx_connect.Cluster.of_channel (List.hd offchip))
            (List.tl offchip),
          Mx_connect.Component.by_name "off32" );
      ]
  in
  Mx_connect.Conn_arch.make pairs

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = check_bool msg true b
