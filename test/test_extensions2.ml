(* Tests for the second extension wave: new kernels, victim cache,
   write buffer, trace persistence, CSV export, workload concatenation
   and the non-blocking CPU model. *)

module Params = Mx_mem.Params
module Victim = Mx_mem.Victim_cache
module Wbuf = Mx_mem.Write_buffer
module Mem_arch = Mx_mem.Mem_arch
module Mem_sim = Mx_mem.Mem_sim
module Workload = Mx_trace.Workload
module Trace_io = Mx_trace.Trace_io
module Region = Mx_trace.Region

(* -- new kernels ----------------------------------------------------- *)

let new_kernels =
  [
    ("jpeg", Mx_trace.Kern_jpeg.generate);
    ("fft", Mx_trace.Kern_fft.generate);
    ("dijkstra", Mx_trace.Kern_graph.generate);
  ]

let test_new_kernels_basics () =
  List.iter
    (fun (name, gen) ->
      let w = gen ~scale:12000 ~seed:3 in
      Helpers.check_true (name ^ " reaches scale")
        (Mx_trace.Trace.length w.Workload.trace >= 12000);
      Helpers.check_true (name ^ " has compute work") (w.Workload.cpu_ops > 0);
      let ok = ref true in
      Mx_trace.Trace.iter w.Workload.trace ~f:(fun a ->
          let r = List.nth w.Workload.regions a.Mx_trace.Access.region in
          if not (Region.contains r a.Mx_trace.Access.addr) then ok := false);
      Helpers.check_true (name ^ " addresses within regions") !ok)
    new_kernels

let test_new_kernels_deterministic () =
  List.iter
    (fun (name, gen) ->
      let a = gen ~scale:6000 ~seed:5 and b = gen ~scale:6000 ~seed:5 in
      Helpers.check_int (name ^ " deterministic")
        (Mx_trace.Trace.length a.Workload.trace)
        (Mx_trace.Trace.length b.Workload.trace))
    new_kernels

let test_jpeg_hot_block () =
  let w = Mx_trace.Kern_jpeg.generate ~scale:20000 ~seed:3 in
  let p = Mx_trace.Profile.analyze w in
  let work = Mx_trace.Profile.stats p (Workload.region_by_name w "work") in
  Helpers.check_true "DCT working block is hot and tiny"
    (work.Mx_trace.Profile.footprint <= 256
    && work.Mx_trace.Profile.detected = Region.Indexed)

let test_fft_strided_buffer () =
  let w = Mx_trace.Kern_fft.generate ~scale:40000 ~seed:3 in
  let p = Mx_trace.Profile.analyze w in
  let buf = Mx_trace.Profile.stats p (Workload.region_by_name w "buf") in
  (* butterflies touch the whole frame repeatedly but not sequentially *)
  Helpers.check_true "fft buffer is neither stream nor hot-indexed"
    (buf.Mx_trace.Profile.detected = Region.Random_access
    || buf.Mx_trace.Profile.detected = Region.Mixed)

let test_dijkstra_edges_chased () =
  let w = Mx_trace.Kern_graph.generate ~scale:30000 ~seed:3 in
  let p = Mx_trace.Profile.analyze w in
  let edges = Workload.region_by_name w "edges" in
  Helpers.check_true "edge arena is self-indirect by hint"
    (Mx_trace.Profile.pattern p edges = Region.Self_indirect)

(* -- victim cache ----------------------------------------------------- *)

let victim_params = { Params.v_entries = 4; v_latency = 1 }

let test_victim_probe_insert () =
  let v = Victim.create victim_params in
  Helpers.check_true "empty probe misses" (not (Victim.probe v ~line:42));
  Victim.insert v ~line:42;
  Helpers.check_true "inserted line hits" (Victim.probe v ~line:42);
  (* the probe removed it (swap back into the main cache) *)
  Helpers.check_true "probe consumes the line" (not (Victim.probe v ~line:42))

let test_victim_lru_displacement () =
  let v = Victim.create victim_params in
  List.iter (fun l -> Victim.insert v ~line:l) [ 1; 2; 3; 4; 5 ];
  Helpers.check_true "oldest displaced" (not (Victim.probe v ~line:1));
  Helpers.check_true "newest resident" (Victim.probe v ~line:5)

let test_victim_reduces_conflict_misses () =
  (* a conflict working set that thrashes a direct-mapped cache is fully
     recovered by a victim buffer *)
  let regions =
    [ { Region.id = 0; name = "a"; base = 0; size = 1 lsl 20; elem_size = 4;
        hint = Region.Random_access } ]
  in
  let cache = { Params.c_size = 1024; c_line = 16; c_assoc = 1; c_latency = 1; c_policy = Params.default_policy } in
  let bindings = [| Mem_arch.To_cache |] in
  let plain = Mem_arch.make ~label:"plain" ~cache ~bindings () in
  let with_v =
    Mem_arch.make ~label:"victim" ~cache ~victim:victim_params ~bindings ()
  in
  let trace = Mx_trace.Trace.create () in
  (* two lines mapping to the same set, alternating *)
  for _ = 1 to 200 do
    Mx_trace.Trace.add trace ~addr:0 ~size:4 ~kind:Mx_trace.Access.Read ~region:0;
    Mx_trace.Trace.add trace ~addr:1024 ~size:4 ~kind:Mx_trace.Access.Read
      ~region:0
  done;
  let run arch =
    Mem_sim.run (Mem_sim.create arch ~regions) trace
  in
  let s_plain = run plain and s_victim = run with_v in
  Helpers.check_true "plain cache thrashes"
    (s_plain.Mem_sim.demand_misses > 300);
  Helpers.check_true "victim recovers the conflicts"
    (s_victim.Mem_sim.demand_misses < 10);
  Helpers.check_true "victim hits counted" (s_victim.Mem_sim.victim_hits > 300)

let test_victim_requires_cache () =
  Helpers.check_true "victim without cache rejected"
    (try
       ignore
         (Mem_arch.make ~label:"bad" ~victim:victim_params
            ~bindings:[| Mem_arch.To_cache |] ());
       false
     with Invalid_argument _ -> true)

(* -- write buffer ------------------------------------------------------ *)

let wb_params = { Params.wb_entries = 2; wb_drain = 10 }

let test_wbuf_absorb_and_stall () =
  let b = Wbuf.create wb_params in
  Helpers.check_true "first store absorbed" (Wbuf.write b ~now:0 ~line:1 = `Absorbed);
  Helpers.check_true "same line coalesces" (Wbuf.write b ~now:1 ~line:1 = `Coalesced);
  Helpers.check_true "second line absorbed" (Wbuf.write b ~now:2 ~line:2 = `Absorbed);
  Helpers.check_true "third line stalls" (Wbuf.write b ~now:3 ~line:3 = `Stall);
  Helpers.check_int "stall counted" 1 (Wbuf.stalls b)

let test_wbuf_drains_over_time () =
  let b = Wbuf.create wb_params in
  ignore (Wbuf.write b ~now:0 ~line:1);
  ignore (Wbuf.write b ~now:0 ~line:2);
  Helpers.check_int "full" 2 (Wbuf.occupancy b ~now:0);
  Helpers.check_int "one drained" 1 (Wbuf.occupancy b ~now:10);
  Helpers.check_int "both drained" 0 (Wbuf.occupancy b ~now:20);
  Helpers.check_true "room again" (Wbuf.write b ~now:21 ~line:3 = `Absorbed)

let test_wbuf_read_forwarding () =
  let b = Wbuf.create wb_params in
  ignore (Wbuf.write b ~now:0 ~line:7);
  Helpers.check_true "buffered line forwards" (Wbuf.read_forward b ~now:1 ~line:7);
  Helpers.check_true "other line does not" (not (Wbuf.read_forward b ~now:1 ~line:8))

let test_wbuf_unstalls_direct_writes () =
  (* a cache-less architecture with a write buffer posts its stores *)
  let regions =
    [ { Region.id = 0; name = "out"; base = 0; size = 65536; elem_size = 4;
        hint = Region.Stream } ]
  in
  let bindings = [| Mem_arch.To_cache |] in
  let plain = Mem_arch.make ~label:"plain" ~bindings () in
  let with_wb =
    Mem_arch.make ~label:"wbuf"
      ~wbuf:{ Params.wb_entries = 8; wb_drain = 1 } ~bindings ()
  in
  let trace = Mx_trace.Trace.create () in
  for i = 0 to 499 do
    Mx_trace.Trace.add trace ~addr:(i * 64) ~size:4 ~kind:Mx_trace.Access.Write
      ~region:0
  done;
  let run arch = Mem_sim.run (Mem_sim.create arch ~regions) trace in
  let s_plain = run plain and s_wb = run with_wb in
  Helpers.check_int "unbuffered stores all stall" 500
    s_plain.Mem_sim.demand_misses;
  Helpers.check_true "buffered stores mostly posted"
    (s_wb.Mem_sim.demand_misses < 100)

(* note: with MSHR overlap the CPU issues faster, so buses see more
   pressure; "never slower" only holds up to a small contention
   epsilon *)

(* -- trace persistence ---------------------------------------------------- *)

let test_trace_io_roundtrip () =
  let w = Helpers.mixed_workload ~scale:2000 () in
  let w2 = Trace_io.of_string (Trace_io.to_string w) in
  Helpers.check_true "name" (w2.Workload.name = w.Workload.name);
  Helpers.check_int "cpu_ops" w.Workload.cpu_ops w2.Workload.cpu_ops;
  Helpers.check_true "regions" (w2.Workload.regions = w.Workload.regions);
  Helpers.check_int "trace length"
    (Mx_trace.Trace.length w.Workload.trace)
    (Mx_trace.Trace.length w2.Workload.trace);
  let same = ref true in
  for i = 0 to Mx_trace.Trace.length w.Workload.trace - 1 do
    if Mx_trace.Trace.get w.Workload.trace i <> Mx_trace.Trace.get w2.Workload.trace i
    then same := false
  done;
  Helpers.check_true "identical accesses" !same

let test_trace_io_file_roundtrip () =
  let w = Helpers.stream_workload ~scale:500 () in
  let path = Filename.temp_file "mxtrace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save w ~path;
      let w2 = Trace_io.load ~path in
      Helpers.check_int "file roundtrip length"
        (Mx_trace.Trace.length w.Workload.trace)
        (Mx_trace.Trace.length w2.Workload.trace))

let expect_parse_error s =
  try
    ignore (Trace_io.of_string s);
    false
  with Trace_io.Parse_error _ -> true

let test_trace_io_rejects_garbage () =
  Helpers.check_true "missing header" (expect_parse_error "R 0x0 4 0\n");
  Helpers.check_true "bad line"
    (expect_parse_error "workload x\nnot a line at all extra words here\n");
  Helpers.check_true "bad integer" (expect_parse_error "workload x\ncpu_ops ten\n");
  Helpers.check_true "bad pattern"
    (expect_parse_error "workload x\nregion 0 r 0x0 64 4 zigzag\n");
  Helpers.check_true "length mismatch"
    (expect_parse_error "workload x\ntrace 5\nR 0x0 4 0\n")

(* -- workload concat ----------------------------------------------------- *)

let test_concat () =
  let a = Helpers.stream_workload ~scale:300 ()
  and b = Helpers.stream_workload ~scale:200 () in
  let c = Workload.concat ~name:"phases" [ a; b ] in
  Helpers.check_int "lengths add" 500 (Mx_trace.Trace.length c.Workload.trace);
  Helpers.check_int "cpu ops add" (a.Workload.cpu_ops + b.Workload.cpu_ops)
    c.Workload.cpu_ops;
  Helpers.check_true "empty rejected"
    (try
       ignore (Workload.concat ~name:"x" []);
       false
     with Invalid_argument _ -> true);
  let other = Helpers.mixed_workload ~scale:100 () in
  Helpers.check_true "mismatched regions rejected"
    (try
       ignore (Workload.concat ~name:"x" [ a; other ]);
       false
     with Invalid_argument _ -> true)

(* -- CSV export ------------------------------------------------------------ *)

let test_csv_export () =
  let w = Helpers.mixed_workload ~scale:4000 () in
  let r = Conex.Explore.run ~config:Conex.Explore.reduced_config w in
  let csv = Conex.Report.to_csv r.Conex.Explore.simulated in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Helpers.check_int "one row per design + header"
    (List.length r.Conex.Explore.simulated + 1)
    (List.length lines);
  Helpers.check_true "header present"
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 8 = "workload");
  (* quoted connectivity fields keep the comma count consistent *)
  List.iter
    (fun line ->
      let in_quotes = ref false and commas = ref 0 in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = ',' && not !in_quotes then incr commas)
        line;
      Helpers.check_int "7 separators per row" 7 !commas)
    lines

(* -- non-blocking CPU -------------------------------------------------------- *)

let test_overlap_never_slower () =
  let w = Helpers.mixed_workload ~scale:6000 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
  let conn = Helpers.naive_conn brg in
  let blocking = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
  List.iter
    (fun mlp ->
      let o =
        Mx_sim.Cycle_sim.run ~cpu:(Mx_sim.Cycle_sim.Overlap mlp) ~workload:w
          ~arch ~conn ()
      in
      Helpers.check_true
        (Printf.sprintf "mlp %d not meaningfully slower" mlp)
        (o.Mx_sim.Sim_result.avg_mem_latency
        <= blocking.Mx_sim.Sim_result.avg_mem_latency *. 1.05 +. 0.1))
    [ 1; 2; 8 ]

let test_overlap_monotone_in_mshrs () =
  let w = Helpers.mixed_workload ~scale:6000 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
  let conn = Helpers.naive_conn brg in
  let lat mlp =
    (Mx_sim.Cycle_sim.run ~cpu:(Mx_sim.Cycle_sim.Overlap mlp) ~workload:w ~arch
       ~conn ())
      .Mx_sim.Sim_result.avg_mem_latency
  in
  Helpers.check_true "more MSHRs never meaningfully hurt"
    (lat 8 <= lat 1 *. 1.05 +. 0.1)

let test_run_traced_consistency () =
  let w = Helpers.mixed_workload ~scale:6000 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
  let conn = Helpers.naive_conn brg in
  let r1 = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
  let r2, stats = Mx_sim.Cycle_sim.run_traced ~workload:w ~arch ~conn () in
  Helpers.check_float "run = run_traced" r1.Mx_sim.Sim_result.avg_mem_latency
    r2.Mx_sim.Sim_result.avg_mem_latency;
  Helpers.check_int "one stat per binding"
    (List.length conn.Mx_connect.Conn_arch.bindings)
    (List.length stats);
  List.iter
    (fun (b : Mx_sim.Cycle_sim.bus_stat) ->
      Helpers.check_true "utilisation in [0,1]"
        (b.Mx_sim.Cycle_sim.utilization >= 0.0
        && b.Mx_sim.Cycle_sim.utilization <= 1.0);
      Helpers.check_true "txns non-negative" (b.Mx_sim.Cycle_sim.txns >= 0))
    stats;
  let total_waits =
    List.fold_left
      (fun acc (b : Mx_sim.Cycle_sim.bus_stat) ->
        acc + b.Mx_sim.Cycle_sim.wait_cycles)
      0 stats
  in
  Helpers.check_int "waits partition bus_wait_cycles"
    r2.Mx_sim.Sim_result.bus_wait_cycles total_waits

let test_refine_top_exactness () =
  (* with sampling + refinement, the pareto designs end up exact *)
  let w = Helpers.mixed_workload ~scale:8000 () in
  let config =
    { Conex.Explore.reduced_config with
      Conex.Explore.sample = Some (500, 4500);
      refine_top = 4 }
  in
  let r = Conex.Explore.run ~config w in
  let refined =
    List.filteri (fun i _ -> i < 4) r.Conex.Explore.pareto_cost_perf
  in
  Helpers.check_true "refined front designs carry exact metrics"
    (refined <> []
    && List.for_all
         (fun (d : Conex.Design.t) ->
           (Conex.Design.best_result d).Mx_sim.Sim_result.exact)
         refined)

let test_overlap_validation () =
  let w = Helpers.mixed_workload ~scale:100 () in
  let arch = Helpers.cache_only_arch w in
  let brg = Mx_connect.Brg.build arch (Helpers.profile_of arch w) in
  Helpers.check_true "0 MSHRs rejected"
    (try
       ignore
         (Mx_sim.Cycle_sim.run ~cpu:(Mx_sim.Cycle_sim.Overlap 0) ~workload:w
            ~arch ~conn:(Helpers.naive_conn brg) ());
       false
     with Invalid_argument _ -> true)

let suite =
  ( "extensions2",
    [
      Alcotest.test_case "new kernels basics" `Slow test_new_kernels_basics;
      Alcotest.test_case "new kernels deterministic" `Quick test_new_kernels_deterministic;
      Alcotest.test_case "jpeg hot block" `Quick test_jpeg_hot_block;
      Alcotest.test_case "fft strided buffer" `Quick test_fft_strided_buffer;
      Alcotest.test_case "dijkstra edges" `Quick test_dijkstra_edges_chased;
      Alcotest.test_case "victim probe/insert" `Quick test_victim_probe_insert;
      Alcotest.test_case "victim LRU" `Quick test_victim_lru_displacement;
      Alcotest.test_case "victim recovers conflicts" `Quick test_victim_reduces_conflict_misses;
      Alcotest.test_case "victim needs cache" `Quick test_victim_requires_cache;
      Alcotest.test_case "wbuf absorb/stall" `Quick test_wbuf_absorb_and_stall;
      Alcotest.test_case "wbuf drains" `Quick test_wbuf_drains_over_time;
      Alcotest.test_case "wbuf forwarding" `Quick test_wbuf_read_forwarding;
      Alcotest.test_case "wbuf posts stores" `Quick test_wbuf_unstalls_direct_writes;
      Alcotest.test_case "trace io roundtrip" `Quick test_trace_io_roundtrip;
      Alcotest.test_case "trace io file" `Quick test_trace_io_file_roundtrip;
      Alcotest.test_case "trace io errors" `Quick test_trace_io_rejects_garbage;
      Alcotest.test_case "workload concat" `Quick test_concat;
      Alcotest.test_case "csv export" `Slow test_csv_export;
      Alcotest.test_case "overlap never slower" `Quick test_overlap_never_slower;
      Alcotest.test_case "overlap monotone" `Quick test_overlap_monotone_in_mshrs;
      Alcotest.test_case "overlap validation" `Quick test_overlap_validation;
      Alcotest.test_case "run_traced consistency" `Quick test_run_traced_consistency;
      Alcotest.test_case "refine_top exactness" `Slow test_refine_top_exactness;
    ] )
