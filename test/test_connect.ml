(* Components, reservation tables, BRG, clustering, assignment. *)

module Channel = Mx_connect.Channel
module Component = Mx_connect.Component
module Rt = Mx_connect.Reservation_table
module Brg = Mx_connect.Brg
module Cluster = Mx_connect.Cluster
module Assign = Mx_connect.Assign
module Conn_arch = Mx_connect.Conn_arch
module Conn_cost = Mx_connect.Conn_cost

let ch ?(bw = 1.0) src dst =
  { Channel.src; dst; bandwidth = bw; txn_bytes = 4.0 }

(* -- channels ---------------------------------------------------------- *)

let test_crosses_chip () =
  Helpers.check_true "cache-dram crosses"
    (Channel.crosses_chip (ch Channel.Cache Channel.Dram));
  Helpers.check_true "cpu-cache does not"
    (not (Channel.crosses_chip (ch Channel.Cpu Channel.Cache)))

let test_same_endpoints_symmetric () =
  let a = ch Channel.Cpu Channel.Cache and b = ch Channel.Cache Channel.Cpu in
  Helpers.check_true "direction-insensitive" (Channel.same_endpoints a b)

(* -- components -------------------------------------------------------- *)

let test_library_sane () =
  Helpers.check_true "library non-empty" (List.length Component.library >= 8);
  List.iter
    (fun (c : Component.t) ->
      Helpers.check_true (c.Component.name ^ " width positive") (c.Component.width > 0);
      Helpers.check_true (c.Component.name ^ " fanin positive")
        (c.Component.max_channels >= 1))
    Component.library

let test_partition_onchip_offchip () =
  Helpers.check_int "partition"
    (List.length Component.library)
    (List.length Component.onchip_library + List.length Component.offchip_library)

let test_beats () =
  let ahb = Component.by_name "ahb32" in
  Helpers.check_int "1 beat for 4B on 32-bit" 1 (Component.beats ahb ~bytes:4);
  Helpers.check_int "8 beats for 32B" 8 (Component.beats ahb ~bytes:32);
  Helpers.check_int "at least 1 beat" 1 (Component.beats ahb ~bytes:0)

let test_txn_latency_contention_premium () =
  let asb = Component.by_name "asb32" in
  Helpers.check_true "arbitration adds latency"
    (Component.txn_latency asb ~bytes:4 ~contended:true
    > Component.txn_latency asb ~bytes:4 ~contended:false)

let test_pipelined_occupancy_lower () =
  let ahb = Component.by_name "ahb32" and asb = Component.by_name "asb32" in
  Helpers.check_true "pipelined bus frees earlier"
    (Component.occupancy ahb ~bytes:32 < Component.occupancy asb ~bytes:32 + 1)

let test_by_name_unknown () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Component.by_name "no-such-bus"))

(* -- reservation tables ------------------------------------------------ *)

let test_rt_reserve_conflict () =
  let t = Rt.create ~n_resources:1 in
  let tpl = [ { Rt.resource = 0; offset = 0; duration = 4 } ] in
  Rt.reserve t ~at:0 tpl;
  Helpers.check_true "overlap rejected" (not (Rt.fits t ~at:2 tpl));
  Helpers.check_true "after free" (Rt.fits t ~at:4 tpl)

let test_rt_earliest_fit () =
  let t = Rt.create ~n_resources:1 in
  let tpl = [ { Rt.resource = 0; offset = 0; duration = 3 } ] in
  Rt.reserve t ~at:5 tpl;
  Helpers.check_int "before the busy window" 0 (Rt.earliest_fit t ~from:0 tpl);
  Helpers.check_int "pushed past the busy window" 8 (Rt.earliest_fit t ~from:4 tpl)

let test_rt_release_before () =
  let t = Rt.create ~n_resources:1 in
  let tpl = [ { Rt.resource = 0; offset = 0; duration = 2 } ] in
  Rt.reserve t ~at:0 tpl;
  Rt.release_before t 10;
  Helpers.check_true "old reservation dropped" (Rt.fits t ~at:0 tpl)

let test_rt_template_agrees_with_component () =
  (* the RT view and the closed-form view must agree on every library
     component for a range of sizes *)
  List.iter
    (fun (c : Component.t) ->
      List.iter
        (fun bytes ->
          let tpl = Rt.template_for c ~bytes in
          Helpers.check_int
            (Printf.sprintf "%s latency (%dB)" c.Component.name bytes)
            (Component.txn_latency c ~bytes ~contended:false)
            (Rt.latency_of tpl);
          Helpers.check_int
            (Printf.sprintf "%s occupancy (%dB)" c.Component.name bytes)
            (Component.occupancy c ~bytes)
            (Rt.initiation_interval c ~bytes))
        [ 1; 4; 8; 32; 64 ])
    Component.library

let test_rt_validation () =
  Helpers.check_true "bad resource count rejected"
    (try
       ignore (Rt.create ~n_resources:0);
       false
     with Invalid_argument _ -> true)

(* -- clustering --------------------------------------------------------- *)

let channels_4 =
  [
    ch ~bw:0.1 Channel.Cpu Channel.Sram;
    ch ~bw:0.2 Channel.Cpu Channel.Sbuf;
    ch ~bw:4.0 Channel.Cpu Channel.Cache;
    ch ~bw:1.0 Channel.Cache Channel.Dram;
  ]

let test_cluster_initial () =
  let cls = Cluster.initial channels_4 in
  Helpers.check_int "one per channel" 4 (List.length cls)

let test_cluster_merge_lowest_first () =
  let cls = Cluster.initial channels_4 in
  match Cluster.merge_step cls with
  | None -> Alcotest.fail "expected a merge"
  | Some next ->
    Helpers.check_int "one fewer cluster" 3 (List.length next);
    (* the merged cluster holds the two lowest-bandwidth on-chip arcs *)
    let merged = List.find (fun c -> List.length c.Cluster.channels = 2) next in
    Alcotest.(check (float 1e-9)) "cumulative bandwidth" 0.3 merged.Cluster.bandwidth

let test_cluster_never_mixes_boundary () =
  let levels = Cluster.levels channels_4 in
  List.iter
    (fun level ->
      List.iter
        (fun cl ->
          let all_off =
            List.for_all Channel.crosses_chip cl.Cluster.channels
          and none_off =
            List.for_all (fun c -> not (Channel.crosses_chip c)) cl.Cluster.channels
          in
          Helpers.check_true "homogeneous boundary class" (all_off || none_off))
        level)
    levels

let test_cluster_levels_count () =
  (* 3 on-chip arcs merge twice; 1 off-chip arc cannot merge: 3 levels *)
  Helpers.check_int "level count" 3 (List.length (Cluster.levels channels_4));
  Helpers.check_int "count_levels agrees" 3 (Assign.count_levels channels_4)

let test_cluster_merge_rejects_mixed () =
  let on = Cluster.of_channel (ch Channel.Cpu Channel.Cache)
  and off = Cluster.of_channel (ch Channel.Cache Channel.Dram) in
  Helpers.check_true "mixed merge rejected"
    (try
       ignore (Cluster.merge on off);
       false
     with Invalid_argument _ -> true)

let test_levels_preserve_channels () =
  List.iter
    (fun level ->
      let n =
        List.fold_left (fun acc c -> acc + List.length c.Cluster.channels) 0 level
      in
      Helpers.check_int "channels preserved" 4 n)
    (Cluster.levels channels_4)

(* -- assignment --------------------------------------------------------- *)

let test_choices_respect_boundary () =
  let off_cl = Cluster.of_channel (ch Channel.Cache Channel.Dram) in
  let cs =
    Assign.choices ~onchip:Component.onchip_library
      ~offchip:Component.offchip_library off_cl
  in
  Helpers.check_true "only off-chip components"
    (List.for_all (fun (c : Component.t) -> c.Component.offchip) cs)

let test_choices_respect_fanin () =
  let big =
    List.fold_left
      (fun acc c -> Cluster.merge acc (Cluster.of_channel c))
      (Cluster.of_channel (ch Channel.Cpu Channel.Cache))
      [ ch Channel.Cpu Channel.Sram; ch Channel.Cpu Channel.Sbuf ]
  in
  let cs =
    Assign.choices ~onchip:Component.onchip_library
      ~offchip:Component.offchip_library big
  in
  Helpers.check_true "dedicated excluded for multi-channel cluster"
    (List.for_all (fun (c : Component.t) -> c.Component.kind <> Component.Dedicated) cs)

let test_enumerate_size () =
  let cls = Cluster.initial [ ch Channel.Cpu Channel.Cache; ch Channel.Cache Channel.Dram ] in
  let archs =
    Assign.enumerate ~onchip:Component.onchip_library
      ~offchip:Component.offchip_library cls
  in
  Helpers.check_int "cartesian product"
    (List.length Component.onchip_library * List.length Component.offchip_library)
    (List.length archs)

let test_enumerate_cap () =
  let cls = Cluster.initial [ ch Channel.Cpu Channel.Cache; ch Channel.Cache Channel.Dram ] in
  let archs =
    Assign.enumerate ~max_designs:5 ~onchip:Component.onchip_library
      ~offchip:Component.offchip_library cls
  in
  Helpers.check_int "capped" 5 (List.length archs)

let test_enumerate_levels_dedup () =
  let archs =
    Assign.enumerate_levels ~onchip:Component.onchip_library
      ~offchip:Component.offchip_library channels_4
  in
  let ids = List.map Conn_arch.describe archs in
  Helpers.check_int "no duplicates"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_enumerate_empty_when_infeasible () =
  let off_cl = Cluster.of_channel (ch Channel.Cache Channel.Dram) in
  Helpers.check_int "no feasible assignment -> empty" 0
    (List.length
       (Assign.enumerate ~onchip:Component.onchip_library ~offchip:[] [ off_cl ]))

(* -- conn_arch / conn_cost ---------------------------------------------- *)

let test_conn_arch_rejects_infeasible () =
  let off_cl = Cluster.of_channel (ch Channel.Cache Channel.Dram) in
  Helpers.check_true "on-chip component for off-chip cluster rejected"
    (try
       ignore (Conn_arch.make [ (off_cl, Component.by_name "ahb32") ]);
       false
     with Invalid_argument _ -> true)

let test_conn_arch_lookup_and_sharers () =
  let c1 = ch Channel.Cpu Channel.Cache and c2 = ch Channel.Cpu Channel.Sram in
  let cl = Cluster.merge (Cluster.of_channel c1) (Cluster.of_channel c2) in
  let arch = Conn_arch.make [ (cl, Component.by_name "ahb32") ] in
  Helpers.check_int "two sharers" 2 (Conn_arch.sharers arch c1);
  let b = Conn_arch.lookup arch c2 in
  Helpers.check_true "lookup finds the bus"
    (b.Conn_arch.component.Component.name = "ahb32")

let test_conn_arch_lookup_missing () =
  let cl = Cluster.of_channel (ch Channel.Cpu Channel.Cache) in
  let arch = Conn_arch.make [ (cl, Component.by_name "ded32") ] in
  Alcotest.check_raises "missing channel" Not_found (fun () ->
      ignore (Conn_arch.lookup arch (ch Channel.Cpu Channel.Sram)))

let test_conn_cost_grows_with_ports () =
  let ahb = Component.by_name "ahb32" in
  Helpers.check_true "more ports cost more"
    (Conn_cost.cost_gates ahb ~channels:4 > Conn_cost.cost_gates ahb ~channels:1)

let test_conn_cost_fanin_guard () =
  let ded = Component.by_name "ded32" in
  Helpers.check_true "fan-in overflow rejected"
    (try
       ignore (Conn_cost.cost_gates ded ~channels:2);
       false
     with Invalid_argument _ -> true)

let test_conn_cost_small_vs_memory () =
  (* connectivity is 1-2 orders of magnitude below memory modules *)
  let ahb = Component.by_name "ahb32" in
  Helpers.check_true "connectivity << 32KB cache"
    (Conn_cost.cost_gates ahb ~channels:8 * 10
    < Mx_mem.Cost_model.cache
        { Mx_mem.Params.c_size = 32768; c_line = 32; c_assoc = 2; c_latency = 2; c_policy = Mx_mem.Params.default_policy })

let test_offchip_energy_premium () =
  Helpers.check_true "off-chip beats cost the most"
    (Conn_cost.energy_per_byte (Component.by_name "off32")
    > Conn_cost.energy_per_byte (Component.by_name "ahb32"))

(* -- BRG ----------------------------------------------------------------- *)

let test_brg_cache_only () =
  let w = Helpers.mixed_workload () in
  let arch = Helpers.cache_only_arch w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  Helpers.check_int "two channels (cpu-cache, cache-dram)" 2
    (List.length brg.Brg.channels);
  Helpers.check_int "one on-chip" 1 (List.length (Brg.onchip_channels brg));
  Helpers.check_int "one off-chip" 1 (List.length (Brg.offchip_channels brg))

let test_brg_rich_channels () =
  let w = Helpers.mixed_workload () in
  let arch = Helpers.rich_arch w in
  let brg = Brg.build arch (Helpers.profile_of arch w) in
  (* cpu<->{cache,sram,sbuf,lldma} + {cache,sbuf,lldma}<->dram *)
  Helpers.check_int "seven channels" 7 (List.length brg.Brg.channels);
  List.iter
    (fun c ->
      Helpers.check_true "positive bandwidth" (c.Channel.bandwidth > 0.0);
      Helpers.check_true "positive txn size" (c.Channel.txn_bytes > 0.0))
    brg.Brg.channels

let test_brg_bandwidth_reflects_traffic () =
  let w = Helpers.mixed_workload () in
  let arch = Helpers.cache_only_arch w in
  let stats = Helpers.profile_of arch w in
  let brg = Brg.build arch stats in
  let cpu_side =
    List.find (fun c -> not (Channel.crosses_chip c)) brg.Brg.channels
  in
  let expected =
    float_of_int (stats.Mx_mem.Mem_sim.cpu_bytes Mx_mem.Mem_sim.By_cache)
    /. float_of_int stats.Mx_mem.Mem_sim.accesses
  in
  Alcotest.(check (float 1e-9)) "bandwidth = bytes/slot" expected
    cpu_side.Channel.bandwidth

let suite =
  ( "connect",
    [
      Alcotest.test_case "crosses chip" `Quick test_crosses_chip;
      Alcotest.test_case "endpoints symmetric" `Quick test_same_endpoints_symmetric;
      Alcotest.test_case "library sane" `Quick test_library_sane;
      Alcotest.test_case "on/off partition" `Quick test_partition_onchip_offchip;
      Alcotest.test_case "beats" `Quick test_beats;
      Alcotest.test_case "contention premium" `Quick test_txn_latency_contention_premium;
      Alcotest.test_case "pipelined occupancy" `Quick test_pipelined_occupancy_lower;
      Alcotest.test_case "by_name unknown" `Quick test_by_name_unknown;
      Alcotest.test_case "rt conflict" `Quick test_rt_reserve_conflict;
      Alcotest.test_case "rt earliest fit" `Quick test_rt_earliest_fit;
      Alcotest.test_case "rt release" `Quick test_rt_release_before;
      Alcotest.test_case "rt = closed form" `Quick test_rt_template_agrees_with_component;
      Alcotest.test_case "rt validation" `Quick test_rt_validation;
      Alcotest.test_case "cluster initial" `Quick test_cluster_initial;
      Alcotest.test_case "merge lowest" `Quick test_cluster_merge_lowest_first;
      Alcotest.test_case "boundary discipline" `Quick test_cluster_never_mixes_boundary;
      Alcotest.test_case "level count" `Quick test_cluster_levels_count;
      Alcotest.test_case "mixed merge rejected" `Quick test_cluster_merge_rejects_mixed;
      Alcotest.test_case "levels preserve channels" `Quick test_levels_preserve_channels;
      Alcotest.test_case "choices boundary" `Quick test_choices_respect_boundary;
      Alcotest.test_case "choices fanin" `Quick test_choices_respect_fanin;
      Alcotest.test_case "enumerate size" `Quick test_enumerate_size;
      Alcotest.test_case "enumerate cap" `Quick test_enumerate_cap;
      Alcotest.test_case "levels dedup" `Quick test_enumerate_levels_dedup;
      Alcotest.test_case "infeasible empty" `Quick test_enumerate_empty_when_infeasible;
      Alcotest.test_case "conn_arch feasibility" `Quick test_conn_arch_rejects_infeasible;
      Alcotest.test_case "lookup & sharers" `Quick test_conn_arch_lookup_and_sharers;
      Alcotest.test_case "lookup missing" `Quick test_conn_arch_lookup_missing;
      Alcotest.test_case "cost grows with ports" `Quick test_conn_cost_grows_with_ports;
      Alcotest.test_case "fanin guard" `Quick test_conn_cost_fanin_guard;
      Alcotest.test_case "connectivity << memory" `Quick test_conn_cost_small_vs_memory;
      Alcotest.test_case "off-chip energy" `Quick test_offchip_energy_premium;
      Alcotest.test_case "brg cache-only" `Quick test_brg_cache_only;
      Alcotest.test_case "brg rich" `Quick test_brg_rich_channels;
      Alcotest.test_case "brg bandwidth" `Quick test_brg_bandwidth_reflects_traffic;
    ] )
