(* The correctness harness itself: runner mechanics (shrinking,
   determinism, reproduction seeds), generator determinism, oracle
   sanity on hand-checked inputs, and the Trace_io / Synthetic edge
   cases (empty trace, single region, maximal region). *)

module Runner = Mx_check.Runner
module Suites = Mx_check.Suites
module Gen = Mx_check.Gen
module Oracle = Mx_check.Oracle
module Prng = Mx_util.Prng
module Workload = Mx_trace.Workload
module Trace = Mx_trace.Trace
module Synthetic = Mx_trace.Synthetic

(* Shared by test_properties and test_fuzz: run one harness suite and
   fail with the CLI reproduction line on the first counterexample. *)
let fail_on_counterexamples suite_name (r : Runner.report) =
  match r.Runner.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: %s (shrunk from size %d to %d)\n  repro: %s"
      f.Runner.prop_name f.Runner.message f.Runner.shrunk_from f.Runner.size
      (Runner.repro ~suite:suite_name f)

let run_check_suite ?(count = 150) name =
  match Suites.find name with
  | None -> Alcotest.failf "unknown check suite %S" name
  | Some props ->
    fail_on_counterexamples name
      (Runner.run_suite ~master:0xC0DE ~count (name, props))

(* Per-property variant: each harness property becomes its own alcotest
   case, so `dune runtest` lists and times every property individually
   and one counterexample no longer hides the rest of its suite.
   Seeds are unchanged — {!Runner.case_seed} depends on the property
   name, not on which siblings run alongside it — so a repro line from
   here replays identically under `conex check --suite`. *)
let check_prop_cases ?(count = 150) name =
  match Suites.find name with
  | None ->
    [
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.failf "unknown check suite %S" name);
    ]
  | Some props ->
    List.map
      (fun (p : Runner.prop) ->
        Alcotest.test_case
          (name ^ ": " ^ p.Runner.name)
          `Quick
          (fun () ->
            fail_on_counterexamples name
              (Runner.run_suite ~master:0xC0DE ~count (name, [ p ]))))
      props

(* -- runner mechanics --------------------------------------------------- *)

let test_selftest_shrinks () =
  match Suites.find "selftest" with
  | None -> Alcotest.fail "selftest suite is not resolvable by name"
  | Some props -> (
    let r = Runner.run_suite ~master:42 ~count:50 ("selftest", props) in
    match r.Runner.failures with
    | [ f ] ->
      (* sizes cycle 1, 2, ...: size 1 passes (stddev of one sample is
         0 under both oracles), so the first failure is at size 2 and
         scanning smaller sizes cannot shrink it further *)
      Helpers.check_int "minimal failing size" 2 f.Runner.size;
      Helpers.check_true "shrunk-from size is recorded"
        (f.Runner.shrunk_from >= f.Runner.size);
      Helpers.check_true "repro line carries the seed"
        (Test_metrics.contains
           ~needle:(Printf.sprintf "CONEX_CHECK_SEED=%d" f.Runner.seed)
           (Runner.repro ~suite:"selftest" f))
    | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs))

let test_replacement_selftest_fails () =
  (* the hidden broken-oracle suite (true-LRU cache vs a promotion-blind
     FIFO oracle) must be caught by the differential harness, shrink,
     and print a usable reproduction line — the end-to-end proof that a
     broken policy cannot slip through the replacement suite *)
  match Suites.find "replacement-selftest" with
  | None -> Alcotest.fail "replacement-selftest suite is not resolvable"
  | Some props -> (
    let r = Runner.run_suite ~master:42 ~count:50 ("replacement-selftest", props) in
    match r.Runner.failures with
    | [ f ] ->
      Helpers.check_true "divergence message names both sides"
        (Test_metrics.contains ~needle:"cache" f.Runner.message
        && Test_metrics.contains ~needle:"oracle" f.Runner.message);
      Helpers.check_true "counterexample was shrunk"
        (f.Runner.shrunk_from >= f.Runner.size);
      Helpers.check_true "repro line carries the seed"
        (Test_metrics.contains
           ~needle:(Printf.sprintf "CONEX_CHECK_SEED=%d" f.Runner.seed)
           (Runner.repro ~suite:"replacement-selftest" f))
    | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs))

let test_runner_deterministic () =
  match Suites.find "stats" with
  | None -> Alcotest.fail "stats suite missing"
  | Some props ->
    let run () = Runner.run_suite ~master:7 ~count:60 ("stats", props) in
    let a = run () and b = run () in
    Helpers.check_int "same case count" a.Runner.cases b.Runner.cases;
    Helpers.check_int "no failures" 0 (List.length a.Runner.failures);
    Helpers.check_true "identical reports" (a = b)

let test_case_seed_pure () =
  let s i = Runner.case_seed ~master:42 ~prop_name:"p" i in
  Helpers.check_int "pure function of (master, prop, i)" (s 3) (s 3);
  Helpers.check_true "distinct across case indices" (s 0 <> s 1);
  Helpers.check_true "distinct across property names"
    (Runner.case_seed ~master:42 ~prop_name:"q" 0 <> s 0);
  Helpers.check_true "non-negative (usable as a PRNG seed)"
    (List.for_all (fun i -> s i >= 0) [ 0; 1; 2; 3; 4 ])

let test_fixed_mode_skips_shrinking () =
  let p =
    Runner.prop "fails at every size" (fun ~seed:_ ~size ->
        Runner.failf "size %d" size)
  in
  let r = Runner.run_suite ~fixed:(9, 5) ~master:0 ~count:100 ("one", [ p ]) in
  match r.Runner.failures with
  | [ f ] ->
    Helpers.check_int "fixed seed is used" 9 f.Runner.seed;
    Helpers.check_int "fixed size is used" 5 f.Runner.size;
    Helpers.check_int "no shrinking in fixed mode" 5 f.Runner.shrunk_from
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_uncaught_exception_is_a_failure () =
  let p =
    Runner.prop "raises" (fun ~seed:_ ~size:_ -> failwith "boom")
  in
  let r = Runner.run_suite ~master:1 ~count:5 ("one", [ p ]) in
  match r.Runner.failures with
  | [ f ] ->
    Helpers.check_true "message names the exception"
      (Test_metrics.contains ~needle:"boom" f.Runner.message)
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_env_fixed () =
  Unix.putenv "CONEX_CHECK_SEED" "123";
  Unix.putenv "CONEX_CHECK_SIZE" "4";
  Helpers.check_true "seed and size read from the environment"
    (Runner.env_fixed () = Some (123, 4));
  Unix.putenv "CONEX_CHECK_SIZE" "junk";
  Helpers.check_true "unparsable size falls back to 1"
    (Runner.env_fixed () = Some (123, 1));
  Unix.putenv "CONEX_CHECK_SEED" "junk";
  Helpers.check_true "unparsable seed disables the override"
    (Runner.env_fixed () = None)

(* -- generator determinism ---------------------------------------------- *)

let test_generators_deterministic () =
  let fp ~seed ~size =
    Workload.fingerprint (Gen.workload (Prng.create ~seed) ~size)
  in
  Helpers.check_true "same (seed, size) regenerates the same workload"
    (fp ~seed:11 ~size:3 = fp ~seed:11 ~size:3);
  Helpers.check_true "different seeds diverge"
    (fp ~seed:11 ~size:3 <> fp ~seed:12 ~size:3);
  let chans ~seed = Gen.channels (Prng.create ~seed) ~size:4 in
  Helpers.check_true "channel generator is deterministic"
    (chans ~seed:5 = chans ~seed:5)

(* -- oracle sanity on hand-checked inputs -------------------------------- *)

let test_oracle_percentile_known () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  (* nearest-rank over the sorted list [1;2;3;4] *)
  List.iter
    (fun (p, want) ->
      Helpers.check_true
        (Printf.sprintf "oracle percentile %.0f" p)
        (Oracle.percentile xs ~p = Some want);
      Helpers.check_true
        (Printf.sprintf "stats percentile %.0f agrees" p)
        (Mx_util.Stats.percentile xs ~p = Some want))
    [ (0.0, 1.0); (50.0, 2.0); (75.0, 3.0); (100.0, 4.0) ]

let test_oracle_pareto_known () =
  let pts = [ [| 1.0; 3.0 |]; [| 2.0; 2.0 |]; [| 3.0; 3.0 |]; [| 1.0; 3.0 |] ] in
  let axes = [ (fun (p : float array) -> p.(0)); (fun p -> p.(1)) ] in
  (* (3,3) is dominated by (2,2); the duplicate (1,3) points survive *)
  Helpers.check_int "oracle front size" 3
    (List.length (Oracle.pareto_front ~axes pts));
  Helpers.check_true "production front agrees"
    (Mx_util.Pareto.front ~axes pts = Oracle.pareto_front ~axes pts)

(* -- Trace_io / Synthetic edge cases ------------------------------------- *)

let roundtrip w = Mx_trace.Trace_io.of_string (Mx_trace.Trace_io.to_string w)

let test_empty_trace_roundtrip () =
  let e = Workload.Emitter.create () in
  Workload.Emitter.ops e 25;
  let w = Workload.Emitter.finish e ~name:"empty" ~regions:[] in
  Helpers.check_int "no accesses" 0 (Trace.length w.Workload.trace);
  let w2 = roundtrip w in
  Helpers.check_true "empty workload survives the round-trip"
    (Workload.fingerprint w2 = Workload.fingerprint w);
  Helpers.check_int "cpu_ops preserved" 25 w2.Workload.cpu_ops

let test_single_region_roundtrip () =
  let w =
    Synthetic.generate ~name:"one" ~scale:300 ~seed:3
      ~specs:[ Synthetic.spec ~name:"only" ~elems:64 Mx_trace.Region.Stream ]
  in
  Helpers.check_int "one region" 1 (List.length w.Workload.regions);
  Helpers.check_true "single-region workload survives the round-trip"
    (Workload.fingerprint (roundtrip w) = Workload.fingerprint w)

let test_max_size_region_roundtrip () =
  (* one very large region (1 MiB of 4-byte elements) next to a tiny one *)
  let w =
    Synthetic.generate ~name:"big" ~scale:400 ~seed:5
      ~specs:
        [
          Synthetic.spec ~name:"huge" ~elems:262_144
            Mx_trace.Region.Random_access;
          Synthetic.spec ~name:"tiny" ~elems:16 Mx_trace.Region.Indexed;
        ]
  in
  let huge = Workload.region_by_name w "huge" in
  Helpers.check_int "region size is elems * elem_size" (262_144 * 4)
    huge.Mx_trace.Region.size;
  Helpers.check_true "large-region workload survives the round-trip"
    (Workload.fingerprint (roundtrip w) = Workload.fingerprint w)

let test_synthetic_rejects_degenerate_inputs () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Helpers.check_true "empty spec list is rejected"
    (raises (fun () ->
         ignore (Synthetic.generate ~name:"x" ~specs:[] ~scale:10 ~seed:0)));
  Helpers.check_true "non-positive scale is rejected"
    (raises (fun () ->
         ignore
           (Synthetic.generate ~name:"x"
              ~specs:[ Synthetic.spec ~name:"r" ~elems:8 Mx_trace.Region.Stream ]
              ~scale:0 ~seed:0)))

let suite =
  ( "check-harness",
    [
      Alcotest.test_case "selftest shrinks to size 2" `Quick
        test_selftest_shrinks;
      Alcotest.test_case "replacement selftest caught" `Quick
        test_replacement_selftest_fails;
      Alcotest.test_case "runner deterministic" `Quick
        test_runner_deterministic;
      Alcotest.test_case "case_seed pure" `Quick test_case_seed_pure;
      Alcotest.test_case "fixed mode skips shrinking" `Quick
        test_fixed_mode_skips_shrinking;
      Alcotest.test_case "uncaught exception becomes failure" `Quick
        test_uncaught_exception_is_a_failure;
      Alcotest.test_case "env_fixed parsing" `Quick test_env_fixed;
      Alcotest.test_case "generators deterministic" `Quick
        test_generators_deterministic;
      Alcotest.test_case "oracle percentile (known)" `Quick
        test_oracle_percentile_known;
      Alcotest.test_case "oracle pareto (known)" `Quick
        test_oracle_pareto_known;
      Alcotest.test_case "empty-trace round-trip" `Quick
        test_empty_trace_roundtrip;
      Alcotest.test_case "single-region round-trip" `Quick
        test_single_region_roundtrip;
      Alcotest.test_case "max-size-region round-trip" `Quick
        test_max_size_region_roundtrip;
      Alcotest.test_case "synthetic rejects degenerate inputs" `Quick
        test_synthetic_rejects_degenerate_inputs;
    ] )
