(* Structural fingerprints (mem / conn / workload), Design.structural_key,
   and the Mx_sim.Eval engine: fidelity-aware caching, Exact->Sampled
   promotion, Estimate isolation, and cached-vs-fresh byte-identity of
   whole explorations at several jobs levels. *)

module Params = Mx_mem.Params
module Mem_arch = Mx_mem.Mem_arch
module Conn_arch = Mx_connect.Conn_arch
module Cluster = Mx_connect.Cluster
module Component = Mx_connect.Component
module Eval = Mx_sim.Eval
module Explore = Conex.Explore
module Design = Conex.Design

(* Every Eval test leaves the process-wide cache cold and at its default
   capacity so suite order never matters. *)
let with_pristine_cache f =
  Eval.set_cache_capacity Eval.default_cache_capacity;
  Fun.protect
    ~finally:(fun () -> Eval.set_cache_capacity Eval.default_cache_capacity)
    f

(* -- memory fingerprints --------------------------------------------------- *)

let base_arch ?(label = "base") () =
  Mem_arch.make ~label ~cache:Helpers.small_cache ~sbuf:Helpers.default_sbuf
    ~lldma:Helpers.default_lldma
    ~sram:{ Params.s_size = 4096; s_latency = 1 }
    ~bindings:
      [| Mem_arch.To_cache; Mem_arch.To_sbuf; Mem_arch.To_lldma;
         Mem_arch.To_sram |]
    ()

let test_mem_fingerprint_ignores_label () =
  Alcotest.(check string)
    "same structure, different label"
    (Mem_arch.fingerprint (base_arch ~label:"a" ()))
    (Mem_arch.fingerprint (base_arch ~label:"b" ()))

let test_mem_fingerprint_sensitivity () =
  let fp = Mem_arch.fingerprint (base_arch ()) in
  let sram = { Params.s_size = 4096; s_latency = 1 } in
  let bindings () =
    [| Mem_arch.To_cache; Mem_arch.To_sbuf; Mem_arch.To_lldma;
       Mem_arch.To_sram |]
  in
  let variants =
    [
      ( "cache size",
        Mem_arch.make ~label:"v"
          ~cache:{ Helpers.small_cache with Params.c_size = 8192 }
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~bindings:(bindings ()) () );
      ( "cache line",
        Mem_arch.make ~label:"v"
          ~cache:{ Helpers.small_cache with Params.c_line = 16 }
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~bindings:(bindings ()) () );
      ( "cache assoc",
        Mem_arch.make ~label:"v"
          ~cache:{ Helpers.small_cache with Params.c_assoc = 4 }
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~bindings:(bindings ()) () );
      ( "cache latency",
        Mem_arch.make ~label:"v"
          ~cache:{ Helpers.small_cache with Params.c_latency = 2 }
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~bindings:(bindings ()) () );
      ( "sbuf streams",
        Mem_arch.make ~label:"v" ~cache:Helpers.small_cache
          ~sbuf:
            {
              Helpers.default_sbuf with
              Params.sb_streams = Helpers.default_sbuf.Params.sb_streams + 1;
            }
          ~lldma:Helpers.default_lldma ~sram ~bindings:(bindings ()) () );
      ( "lldma entries",
        Mem_arch.make ~label:"v" ~cache:Helpers.small_cache
          ~sbuf:Helpers.default_sbuf
          ~lldma:
            {
              Helpers.default_lldma with
              Params.ll_entries = Helpers.default_lldma.Params.ll_entries + 1;
            }
          ~sram ~bindings:(bindings ()) () );
      ( "sram size",
        Mem_arch.make ~label:"v" ~cache:Helpers.small_cache
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma
          ~sram:{ Params.s_size = 8192; s_latency = 1 }
          ~bindings:(bindings ()) () );
      ( "absent module",
        Mem_arch.make ~label:"v" ~cache:Helpers.small_cache
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~victim:{ Params.v_entries = 4; v_latency = 1 }
          ~bindings:(bindings ()) () );
      ( "binding table",
        Mem_arch.make ~label:"v" ~cache:Helpers.small_cache
          ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma ~sram
          ~bindings:
            [| Mem_arch.To_cache; Mem_arch.To_cache; Mem_arch.To_lldma;
               Mem_arch.To_sram |]
          () );
    ]
  in
  List.iter
    (fun (what, arch) ->
      Helpers.check_true (what ^ " changes the fingerprint")
        (Mem_arch.fingerprint arch <> fp))
    variants

let test_mem_fingerprint_policy_distinct () =
  (* replacement policy is design identity: every policy yields its own
     fingerprint on an otherwise identical architecture *)
  let fp policy =
    Mem_arch.fingerprint
      (Mem_arch.make ~label:"p"
         ~cache:{ Helpers.small_cache with Params.c_policy = policy }
         ~sbuf:Helpers.default_sbuf ~lldma:Helpers.default_lldma
         ~sram:{ Params.s_size = 4096; s_latency = 1 }
         ~bindings:
           [| Mem_arch.To_cache; Mem_arch.To_sbuf; Mem_arch.To_lldma;
              Mem_arch.To_sram |]
         ())
  in
  let fps = List.map fp Params.all_policies in
  Helpers.check_int "one fingerprint per policy"
    (List.length Params.all_policies)
    (List.length (List.sort_uniq compare fps))

(* -- connectivity fingerprints --------------------------------------------- *)

let conn_pairs () =
  let w = Helpers.mixed_workload ~scale:4000 () in
  let arch = Helpers.rich_arch w in
  let profile = Helpers.profile_of arch w in
  let brg = Mx_connect.Brg.build arch profile in
  List.map
    (fun ch ->
      let cl = Cluster.of_channel ch in
      let comp =
        if cl.Cluster.offchip then Component.by_name "off32"
        else Component.by_name "ded32"
      in
      (cl, comp))
    brg.Mx_connect.Brg.channels

let test_conn_fingerprint_order_insensitive () =
  let pairs = conn_pairs () in
  Alcotest.(check string)
    "binding order does not matter"
    (Conn_arch.fingerprint (Conn_arch.make pairs))
    (Conn_arch.fingerprint (Conn_arch.make (List.rev pairs)))

let test_conn_fingerprint_component_sensitive () =
  let pairs = conn_pairs () in
  let swapped =
    List.map
      (fun ((cl : Cluster.t), comp) ->
        if cl.Cluster.offchip then (cl, comp)
        else (cl, Component.by_name "ahb32"))
      pairs
  in
  Helpers.check_true "changing a component changes the fingerprint"
    (Conn_arch.fingerprint (Conn_arch.make pairs)
    <> Conn_arch.fingerprint (Conn_arch.make swapped))

(* -- workload fingerprints ------------------------------------------------- *)

let test_workload_fingerprint_stable () =
  Alcotest.(check string)
    "same generator, same fingerprint"
    (Mx_trace.Workload.fingerprint (Helpers.mixed_workload ~scale:4000 ()))
    (Mx_trace.Workload.fingerprint (Helpers.mixed_workload ~scale:4000 ()))

let test_workload_fingerprint_sensitivity () =
  let fp = Mx_trace.Workload.fingerprint (Helpers.mixed_workload ~scale:4000 ()) in
  Helpers.check_true "trace length changes it"
    (Mx_trace.Workload.fingerprint (Helpers.mixed_workload ~scale:4100 ()) <> fp);
  Helpers.check_true "different content (other kernel) changes it"
    (Mx_trace.Workload.fingerprint (Helpers.stream_workload ~scale:4000 ()) <> fp)

let test_trace_content_hash_one_access () =
  let mk extra =
    let t = Mx_trace.Trace.create () in
    Mx_trace.Trace.add t ~addr:0x1000 ~size:4 ~kind:Mx_trace.Access.Read
      ~region:0;
    Mx_trace.Trace.add t ~addr:(0x2000 + extra) ~size:4
      ~kind:Mx_trace.Access.Read ~region:0;
    Mx_trace.Trace.content_hash t
  in
  Helpers.check_true "hash is non-negative" (mk 0 >= 0);
  Helpers.check_true "single-address change flips the hash" (mk 0 <> mk 4)

(* -- Design.structural_key ------------------------------------------------- *)

let design_pair () =
  let w = Helpers.mixed_workload ~scale:4000 () in
  let arch = Helpers.rich_arch w in
  let profile = Helpers.profile_of arch w in
  let brg = Mx_connect.Brg.build arch profile in
  let conn = Helpers.naive_conn brg in
  let d = Design.make ~workload_name:"mixed" ~mem:arch ~conn () in
  (w, arch, profile, brg, conn, d)

let test_structural_key_ignores_results () =
  let w, arch, _, _, conn, d = design_pair () in
  let sim = Mx_sim.Cycle_sim.run ~workload:w ~arch ~conn () in
  let d' = Design.with_sim d sim in
  Helpers.check_true "sim result does not change the key"
    (Design.structural_key d = Design.structural_key d');
  Helpers.check_true "equal_structure sees through evaluation state"
    (Design.equal_structure d d')

let test_structural_key_distinguishes_conns () =
  let _, arch, _, brg, conn, d = design_pair () in
  let shared = Helpers.shared_conn brg in
  let d2 = Design.make ~workload_name:"mixed" ~mem:arch ~conn:shared () in
  Helpers.check_true "different connectivity, different key"
    (Design.structural_key d <> Design.structural_key d2);
  Helpers.check_true "fingerprints agree with equal_structure"
    (not (Design.equal_structure d d2));
  ignore conn

(* -- the evaluation engine ------------------------------------------------- *)

let eval_fixture () =
  let w = Helpers.mixed_workload ~scale:4000 () in
  let arch = Helpers.rich_arch w in
  let profile = Helpers.profile_of arch w in
  let brg = Mx_connect.Brg.build arch profile in
  let conn = Helpers.naive_conn brg in
  (w, arch, profile, conn)

let test_eval_exact_cached () =
  with_pristine_cache @@ fun () ->
  let w, arch, _, conn = eval_fixture () in
  let s0 = Eval.cache_stats () in
  let r1 = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
  let r2 = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
  let s1 = Eval.cache_stats () in
  Helpers.check_true "second evaluation is the cached first"
    (r1 = r2 && r1.Mx_sim.Sim_result.exact);
  Helpers.check_int "one miss" 1
    (s1.Mx_util.Memo_cache.misses - s0.Mx_util.Memo_cache.misses);
  Helpers.check_int "one hit" 1
    (s1.Mx_util.Memo_cache.hits - s0.Mx_util.Memo_cache.hits)

let test_eval_exact_promotes_to_sampled () =
  with_pristine_cache @@ fun () ->
  let w, arch, _, conn = eval_fixture () in
  let exact = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
  let s0 = Eval.cache_stats () in
  let sampled =
    Eval.eval ~fidelity:(Eval.Sampled (500, 1500)) ~workload:w ~arch ~conn ()
  in
  let s1 = Eval.cache_stats () in
  Helpers.check_true "sampled request served by the exact result"
    (sampled = exact);
  Helpers.check_int "promotion is a hit, not a recompute" 0
    (s1.Mx_util.Memo_cache.misses - s0.Mx_util.Memo_cache.misses)

let test_eval_sampled_does_not_serve_exact () =
  with_pristine_cache @@ fun () ->
  let w, arch, _, conn = eval_fixture () in
  let sampled =
    Eval.eval ~fidelity:(Eval.Sampled (500, 1500)) ~workload:w ~arch ~conn ()
  in
  let exact = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
  Helpers.check_true "lower fidelity never satisfies a higher request"
    (exact.Mx_sim.Sim_result.exact && not sampled.Mx_sim.Sim_result.exact)

let test_eval_estimate_isolated () =
  with_pristine_cache @@ fun () ->
  let w, arch, profile, conn = eval_fixture () in
  let exact = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch ~conn () in
  let est =
    Eval.eval ~fidelity:Eval.Estimate ~workload:w ~arch ~profile ~conn ()
  in
  Helpers.check_true "estimate computed by the estimator, not promoted"
    (not est.Mx_sim.Sim_result.exact);
  Helpers.check_true "exact entry untouched"
    (exact.Mx_sim.Sim_result.exact);
  Alcotest.(check string)
    "estimate equals a direct estimator call"
    (Format.asprintf "%a" Mx_sim.Sim_result.pp
       (Mx_sim.Estimator.estimate ~workload:w ~arch ~profile ~conn))
    (Format.asprintf "%a" Mx_sim.Sim_result.pp est)

let test_eval_estimate_requires_profile () =
  with_pristine_cache @@ fun () ->
  let w, arch, _, conn = eval_fixture () in
  Alcotest.check_raises "Estimate without ~profile rejected"
    (Invalid_argument "Eval.eval: Estimate fidelity requires ~profile")
    (fun () ->
      ignore (Eval.eval ~fidelity:Eval.Estimate ~workload:w ~arch ~conn ()))

let test_eval_distinct_sample_windows_distinct () =
  with_pristine_cache @@ fun () ->
  let w, arch, _, conn = eval_fixture () in
  let s0 = Eval.cache_stats () in
  ignore
    (Eval.eval ~fidelity:(Eval.Sampled (500, 1500)) ~workload:w ~arch ~conn ());
  ignore
    (Eval.eval ~fidelity:(Eval.Sampled (1000, 9000)) ~workload:w ~arch ~conn ());
  let s1 = Eval.cache_stats () in
  Helpers.check_int "different windows are different entries" 2
    (s1.Mx_util.Memo_cache.misses - s0.Mx_util.Memo_cache.misses)

let test_eval_policy_keyed_separately () =
  (* designs differing only in replacement policy must land in distinct
     memo entries: no stale cross-policy cache hits *)
  with_pristine_cache @@ fun () ->
  let w = Helpers.mixed_workload ~scale:4000 () in
  let arch_of policy =
    Helpers.cache_only_arch
      ~cache:
        { Helpers.small_cache with Params.c_assoc = 4; c_policy = policy }
      w
  in
  let arch_lru = arch_of Params.True_lru
  and arch_fifo = arch_of Params.Fifo in
  let profile = Helpers.profile_of arch_lru w in
  let brg = Mx_connect.Brg.build arch_lru profile in
  let conn = Helpers.naive_conn brg in
  let s0 = Eval.cache_stats () in
  let r1 = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch:arch_lru ~conn () in
  let r2 = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch:arch_fifo ~conn () in
  let s1 = Eval.cache_stats () in
  Helpers.check_int "two policies, two entries" 2
    (s1.Mx_util.Memo_cache.misses - s0.Mx_util.Memo_cache.misses);
  Helpers.check_int "no cross-policy hit" 0
    (s1.Mx_util.Memo_cache.hits - s0.Mx_util.Memo_cache.hits);
  let r1' = Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch:arch_lru ~conn ()
  and r2' =
    Eval.eval ~fidelity:Eval.Exact ~workload:w ~arch:arch_fifo ~conn ()
  in
  let s2 = Eval.cache_stats () in
  Helpers.check_int "warm lookups hit per policy" 2
    (s2.Mx_util.Memo_cache.hits - s1.Mx_util.Memo_cache.hits);
  Helpers.check_true "each policy is served its own result"
    (r1 = r1' && r2 = r2')

(* -- cached vs fresh whole explorations ------------------------------------ *)

let small_config jobs =
  {
    Explore.reduced_config with
    Explore.apex =
      { Mx_apex.Explore.reduced_config with Mx_apex.Explore.max_selected = 3 };
    jobs;
  }

let strip_wall (r : Explore.result) =
  ( r.Explore.estimated,
    r.Explore.simulated,
    r.Explore.pareto_cost_perf,
    r.Explore.n_estimates,
    r.Explore.n_simulations )

(* A full exploration must produce byte-identical designs whether the
   cache is disabled, cold, or fully warm — at every jobs level.  The
   workloads are PRNG-driven: different seeds exercise different design
   spaces. *)
let test_explore_cache_transparent () =
  with_pristine_cache @@ fun () ->
  List.iter
    (fun seed ->
      let w =
        Mx_trace.Synthetic.generate ~name:"t" ~scale:3000 ~seed
          ~specs:
            [
              Mx_trace.Synthetic.spec ~name:"stream" ~elems:2048 ~share:2.0
                Mx_trace.Region.Stream;
              Mx_trace.Synthetic.spec ~name:"hot" ~elems:64 ~share:1.5
                ~skew:1.1 Mx_trace.Region.Indexed;
              Mx_trace.Synthetic.spec ~name:"list" ~elems:2048 ~share:1.0
                Mx_trace.Region.Self_indirect;
            ]
      in
      List.iter
        (fun jobs ->
          Eval.set_cache_capacity 0;
          let uncached = Explore.run ~config:(small_config jobs) w in
          Eval.set_cache_capacity Eval.default_cache_capacity;
          let cold = Explore.run ~config:(small_config jobs) w in
          let warm = Explore.run ~config:(small_config jobs) w in
          let hits = (Eval.cache_stats ()).Mx_util.Memo_cache.hits in
          Helpers.check_true
            (Printf.sprintf "seed %d jobs %d: cold run = uncached run" seed
               jobs)
            (strip_wall cold = strip_wall uncached);
          Helpers.check_true
            (Printf.sprintf "seed %d jobs %d: warm run = uncached run" seed
               jobs)
            (strip_wall warm = strip_wall uncached);
          Helpers.check_true
            (Printf.sprintf "seed %d jobs %d: warm run hit the cache" seed
               jobs)
            (hits > 0))
        [ 1; Helpers.test_jobs ])
    [ 11; 42 ]

let suite =
  ( "eval",
    [
      Alcotest.test_case "mem fingerprint ignores label" `Quick
        test_mem_fingerprint_ignores_label;
      Alcotest.test_case "mem fingerprint sensitivity" `Quick
        test_mem_fingerprint_sensitivity;
      Alcotest.test_case "mem fingerprint per policy" `Quick
        test_mem_fingerprint_policy_distinct;
      Alcotest.test_case "conn fingerprint order-insensitive" `Quick
        test_conn_fingerprint_order_insensitive;
      Alcotest.test_case "conn fingerprint component-sensitive" `Quick
        test_conn_fingerprint_component_sensitive;
      Alcotest.test_case "workload fingerprint stable" `Quick
        test_workload_fingerprint_stable;
      Alcotest.test_case "workload fingerprint sensitivity" `Quick
        test_workload_fingerprint_sensitivity;
      Alcotest.test_case "trace content hash" `Quick
        test_trace_content_hash_one_access;
      Alcotest.test_case "structural key ignores results" `Quick
        test_structural_key_ignores_results;
      Alcotest.test_case "structural key distinguishes conns" `Quick
        test_structural_key_distinguishes_conns;
      Alcotest.test_case "exact evaluation cached" `Quick
        test_eval_exact_cached;
      Alcotest.test_case "exact promotes to sampled" `Quick
        test_eval_exact_promotes_to_sampled;
      Alcotest.test_case "sampled never serves exact" `Quick
        test_eval_sampled_does_not_serve_exact;
      Alcotest.test_case "estimate isolated from simulator" `Quick
        test_eval_estimate_isolated;
      Alcotest.test_case "estimate requires profile" `Quick
        test_eval_estimate_requires_profile;
      Alcotest.test_case "sample windows keyed separately" `Quick
        test_eval_distinct_sample_windows_distinct;
      Alcotest.test_case "policies keyed separately" `Quick
        test_eval_policy_keyed_separately;
      Alcotest.test_case "exploration cache-transparent" `Slow
        test_explore_cache_transparent;
    ] )
