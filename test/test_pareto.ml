module Pareto = Mx_util.Pareto

type pt = { x : float; y : float; z : float }

let px p = p.x
let py p = p.y
let pz p = p.z
let mk x y z = { x; y; z }

let test_dominates_basic () =
  let a = mk 1.0 1.0 1.0 and b = mk 2.0 2.0 2.0 in
  Helpers.check_true "a dominates b" (Pareto.dominates ~axes:[ px; py; pz ] a b);
  Helpers.check_true "b does not dominate a"
    (not (Pareto.dominates ~axes:[ px; py; pz ] b a))

let test_dominates_requires_strict () =
  let a = mk 1.0 1.0 1.0 in
  Helpers.check_true "no self-domination"
    (not (Pareto.dominates ~axes:[ px; py; pz ] a (mk 1.0 1.0 1.0)))

let test_dominates_incomparable () =
  let a = mk 1.0 2.0 0.0 and b = mk 2.0 1.0 0.0 in
  Helpers.check_true "incomparable a b" (not (Pareto.dominates ~axes:[ px; py ] a b));
  Helpers.check_true "incomparable b a" (not (Pareto.dominates ~axes:[ px; py ] b a))

let test_front_simple () =
  let pts = [ mk 1.0 3.0 0.0; mk 2.0 2.0 0.0; mk 3.0 1.0 0.0; mk 3.0 3.0 0.0 ] in
  let f = Pareto.front ~axes:[ px; py ] pts in
  Helpers.check_int "front size" 3 (List.length f);
  Helpers.check_true "dominated point removed"
    (not (List.exists (fun p -> p.x = 3.0 && p.y = 3.0) f))

let test_front_keeps_duplicates () =
  let pts = [ mk 1.0 1.0 0.0; mk 1.0 1.0 0.0 ] in
  Helpers.check_int "duplicates kept" 2
    (List.length (Pareto.front ~axes:[ px; py ] pts))

let test_front_empty () =
  Helpers.check_int "empty front" 0 (List.length (Pareto.front ~axes:[ px ] []))

let test_front2_sorted () =
  let pts = [ mk 3.0 1.0 0.0; mk 1.0 3.0 0.0; mk 2.0 2.0 0.0; mk 2.5 2.5 0.0 ] in
  let f = Pareto.front2 ~x:px ~y:py pts in
  Helpers.check_int "front2 size" 3 (List.length f);
  let xs = List.map px f in
  Helpers.check_true "sorted by x" (xs = List.sort compare xs)

let test_front2_equals_front () =
  let pts =
    List.init 50 (fun i ->
        let f = float_of_int i in
        mk (Float.rem (f *. 7.3) 11.0) (Float.rem (f *. 3.7) 13.0) 0.0)
  in
  let a =
    Pareto.front2 ~x:px ~y:py pts |> List.map (fun p -> (p.x, p.y))
  and b =
    Pareto.front ~axes:[ px; py ] pts
    |> List.map (fun p -> (p.x, p.y))
    |> List.sort compare
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "front2 agrees with generic front" (List.sort compare a) b

let test_sort_by () =
  let pts = [ mk 3.0 0.0 0.0; mk 1.0 0.0 0.0; mk 2.0 0.0 0.0 ] in
  Alcotest.(check (list (float 1e-9)))
    "ascending" [ 1.0; 2.0; 3.0 ]
    (List.map px (Pareto.sort_by px pts))

let test_coverage_full () =
  let ref_pts = [ mk 1.0 3.0 0.0; mk 2.0 2.0 0.0 ] in
  let r =
    Pareto.Coverage.eval ~axes:[ px; py ]
      ~equal:(fun a b -> a.x = b.x && a.y = b.y)
      ~reference:ref_pts ~explored:ref_pts
  in
  Helpers.check_float "100% coverage" 100.0 r.Pareto.Coverage.coverage_pct;
  Helpers.check_float "zero distance" 0.0 r.Pareto.Coverage.avg_dist_pct.(0)

let test_coverage_partial () =
  let ref_pts = [ mk 10.0 30.0 0.0; mk 20.0 20.0 0.0 ] in
  let explored = [ mk 10.0 30.0 0.0; mk 22.0 20.0 0.0 ] in
  let r =
    Pareto.Coverage.eval ~axes:[ px; py ]
      ~equal:(fun a b -> a.x = b.x && a.y = b.y)
      ~reference:ref_pts ~explored
  in
  Helpers.check_float "50% coverage" 50.0 r.Pareto.Coverage.coverage_pct;
  (* nearest to (20,20) is (22,20): 10% off on x, 0% on y *)
  Helpers.check_float "x distance 10%" 10.0 r.Pareto.Coverage.avg_dist_pct.(0);
  Helpers.check_float "y distance 0%" 0.0 r.Pareto.Coverage.avg_dist_pct.(1)

let test_coverage_empty_reference () =
  let r =
    Pareto.Coverage.eval ~axes:[ px ]
      ~equal:(fun _ _ -> false)
      ~reference:[] ~explored:[ mk 1.0 0.0 0.0 ]
  in
  Helpers.check_float "empty reference = 100%" 100.0 r.Pareto.Coverage.coverage_pct

let test_coverage_empty_explored () =
  (* an empty exploration covers nothing: 0% and zero distances, never
     an exception (the distance average has no sample to draw from) *)
  let ref_pts = [ mk 1.0 3.0 0.0; mk 2.0 2.0 0.0 ] in
  let r =
    Pareto.Coverage.eval ~axes:[ px; py ]
      ~equal:(fun a b -> a.x = b.x && a.y = b.y)
      ~reference:ref_pts ~explored:[]
  in
  Helpers.check_float "0% coverage" 0.0 r.Pareto.Coverage.coverage_pct;
  Helpers.check_float "x distance 0" 0.0 r.Pareto.Coverage.avg_dist_pct.(0);
  Helpers.check_float "y distance 0" 0.0 r.Pareto.Coverage.avg_dist_pct.(1)

(* -- archive -------------------------------------------------------------- *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_archive_create_validates () =
  expect_invalid "empty axes" (fun () ->
      Pareto.Archive.create ~axes:([] : (pt -> float) list) ());
  expect_invalid "negative eps" (fun () ->
      Pareto.Archive.create ~axes:[ px ] ~eps:(-0.1) ());
  expect_invalid "zero capacity" (fun () ->
      Pareto.Archive.create ~axes:[ px ] ~capacity:0 ())

let test_archive_insert_basics () =
  let a = Pareto.Archive.create ~axes:[ px; py ] () in
  (match Pareto.Archive.insert a (mk 2.0 2.0 0.0) with
  | Pareto.Archive.Added { removed = []; evicted = [] } -> ()
  | _ -> Alcotest.fail "first insert should add cleanly");
  (match Pareto.Archive.insert a (mk 3.0 3.0 0.0) with
  | Pareto.Archive.Rejected -> ()
  | _ -> Alcotest.fail "dominated insert should be rejected");
  (match Pareto.Archive.insert a (mk 1.0 1.0 0.0) with
  | Pareto.Archive.Added { removed = [ r ]; evicted = [] } ->
    Helpers.check_true "displaced the dominated member"
      (r.x = 2.0 && r.y = 2.0)
  | _ -> Alcotest.fail "dominating insert should displace the member");
  Helpers.check_int "one member" 1 (Pareto.Archive.size a);
  let s = Pareto.Archive.stats a in
  Helpers.check_int "inserts" 2 s.Pareto.Archive.inserts;
  Helpers.check_int "rejects" 1 s.Pareto.Archive.rejects;
  Helpers.check_int "removed" 1 s.Pareto.Archive.removed

let test_archive_front_matches_front2 () =
  let pts =
    List.init 60 (fun i ->
        let f = float_of_int i in
        mk (Float.rem (f *. 7.3) 11.0) (Float.rem (f *. 3.7) 13.0) 0.0)
  in
  let a = Pareto.Archive.of_list ~axes:[ px; py ] pts in
  Alcotest.(check (list (pair (float 1e-12) (float 1e-12))))
    "archive front = front2"
    (List.map (fun p -> (p.x, p.y)) (Pareto.front2 ~x:px ~y:py pts))
    (List.map (fun p -> (p.x, p.y)) (Pareto.Archive.front a))

let test_archive_eps_thins () =
  (* at eps = 0.5, member (1,1) covers any point it is within 1.5x of
     on both axes *)
  let a = Pareto.Archive.create ~axes:[ px; py ] ~eps:0.5 () in
  ignore (Pareto.Archive.insert a (mk 1.0 1.0 0.0));
  (match Pareto.Archive.insert a (mk 1.4 1.4 0.0) with
  | Pareto.Archive.Rejected -> ()
  | _ -> Alcotest.fail "eps-dominated point should be rejected");
  (match Pareto.Archive.insert a (mk 0.5 2.0 0.0) with
  | Pareto.Archive.Added _ -> ()
  | _ -> Alcotest.fail "point outside the eps box should be added");
  Helpers.check_int "two members" 2 (Pareto.Archive.size a)

let test_archive_capacity_evicts_crowded () =
  let a = Pareto.Archive.create ~axes:[ px; py ] ~capacity:3 () in
  (* four mutually non-dominated points; the crowded interior one goes,
     never an extreme *)
  List.iter
    (fun p -> ignore (Pareto.Archive.insert a p))
    [ mk 0.0 3.0 0.0; mk 1.0 2.0 0.0; mk 1.1 1.9 0.0; mk 3.0 0.0 0.0 ];
  Helpers.check_int "capacity respected" 3 (Pareto.Archive.size a);
  let f = Pareto.Archive.front a in
  Helpers.check_true "extremes survive"
    (List.exists (fun p -> p.x = 0.0) f && List.exists (fun p -> p.x = 3.0) f);
  Helpers.check_int "one eviction counted" 1
    (Pareto.Archive.stats a).Pareto.Archive.evicted

let qcheck_front_members_not_dominated =
  let gen =
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
  in
  QCheck.Test.make ~name:"no front member is dominated by any input" gen
    (fun pts ->
      let pts = List.map (fun (x, y) -> mk x y 0.0) pts in
      let f = Pareto.front ~axes:[ px; py ] pts in
      List.for_all
        (fun m ->
          not (List.exists (fun p -> Pareto.dominates ~axes:[ px; py ] p m) pts))
        f)

let qcheck_front_covers_inputs =
  let gen =
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
  in
  QCheck.Test.make ~name:"every input is dominated by or on the front" gen
    (fun pts ->
      let pts = List.map (fun (x, y) -> mk x y 0.0) pts in
      let f = Pareto.front ~axes:[ px; py ] pts in
      List.for_all
        (fun p ->
          List.exists
            (fun m ->
              (m.x = p.x && m.y = p.y)
              || Pareto.dominates ~axes:[ px; py ] m p)
            f)
        pts)

let suite =
  ( "pareto",
    [
      Alcotest.test_case "dominates basic" `Quick test_dominates_basic;
      Alcotest.test_case "dominates strict" `Quick test_dominates_requires_strict;
      Alcotest.test_case "incomparable" `Quick test_dominates_incomparable;
      Alcotest.test_case "front simple" `Quick test_front_simple;
      Alcotest.test_case "front duplicates" `Quick test_front_keeps_duplicates;
      Alcotest.test_case "front empty" `Quick test_front_empty;
      Alcotest.test_case "front2 sorted" `Quick test_front2_sorted;
      Alcotest.test_case "front2 = front" `Quick test_front2_equals_front;
      Alcotest.test_case "sort_by" `Quick test_sort_by;
      Alcotest.test_case "coverage full" `Quick test_coverage_full;
      Alcotest.test_case "coverage partial" `Quick test_coverage_partial;
      Alcotest.test_case "coverage empty ref" `Quick test_coverage_empty_reference;
      Alcotest.test_case "coverage empty explored" `Quick
        test_coverage_empty_explored;
      Alcotest.test_case "archive create validates" `Quick
        test_archive_create_validates;
      Alcotest.test_case "archive insert basics" `Quick
        test_archive_insert_basics;
      Alcotest.test_case "archive front = front2" `Quick
        test_archive_front_matches_front2;
      Alcotest.test_case "archive eps thins" `Quick test_archive_eps_thins;
      Alcotest.test_case "archive capacity evicts" `Quick
        test_archive_capacity_evicts_crowded;
      QCheck_alcotest.to_alcotest qcheck_front_members_not_dominated;
      QCheck_alcotest.to_alcotest qcheck_front_covers_inputs;
    ] )
